module github.com/hpcsim/t2hx

go 1.22
