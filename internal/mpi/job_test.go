package mpi

import (
	"math"
	"strings"
	"testing"

	"github.com/hpcsim/t2hx/internal/fabric"
	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// testFabric builds a 4x4 HyperX (T=2, 32 nodes) with DFSSSP and zero
// overheads for exact arithmetic, unless withOverheads is set.
func testFabric(t *testing.T, withOverheads bool) (*topo.HyperX, *fabric.Fabric) {
	t.Helper()
	hx := topo.NewHyperX(topo.HyperXConfig{
		S: []int{4, 4}, T: 2, Bandwidth: 1e9, Latency: 100 * sim.Nanosecond,
	})
	tb, err := route.DFSSSP(hx.Graph, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := fabric.Params{}
	if withOverheads {
		p = fabric.DefaultParams()
	}
	return hx, fabric.New(sim.NewEngine(), tb, p, 1)
}

func run(t *testing.T, f *fabric.Fabric, ranks []topo.NodeID, progs []*Program) Result {
	t.Helper()
	res, err := Run(f, "test", ranks, progs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPingPong(t *testing.T) {
	hx, f := testFabric(t, false)
	ranks := hx.Terminals()[:2]
	b := NewBuilder(2)
	b.Progs[0].Send(1, 1000, 1)
	b.Progs[1].Recv(0, 1)
	b.Progs[1].Send(0, 1000, 2)
	b.Progs[0].Recv(1, 2)
	res := run(t, f, ranks, b.Progs)
	if res.Elapsed <= 0 {
		t.Fatalf("elapsed = %v", res.Elapsed)
	}
	if f.Messages != 2 {
		t.Errorf("messages = %d, want 2", f.Messages)
	}
}

func TestEagerSendCompletesLocally(t *testing.T) {
	hx, f := testFabric(t, false)
	ranks := hx.Terminals()[:2]
	b := NewBuilder(2)
	// Rank 0 sends eagerly and finishes before rank 1 even posts its recv
	// (rank 1 computes first).
	b.Progs[0].Send(1, 8, 1)
	b.Progs[1].Compute(1.0) // 1 simulated second
	b.Progs[1].Recv(0, 1)
	res := run(t, f, ranks, b.Progs)
	// The job ends when rank 1 finishes (~1s), but never deadlocks.
	if res.Elapsed < 1.0 {
		t.Errorf("elapsed = %v, want >= 1s (compute)", res.Elapsed)
	}
}

func TestRendezvousWaitsForReceiver(t *testing.T) {
	hx, f := testFabric(t, false)
	ranks := hx.Terminals()[:2]
	b := NewBuilder(2)
	size := int64(1e6) // >> eager threshold; 1 MB at 1 GB/s = 1 ms
	b.Progs[0].Send(1, size, 1)
	b.Progs[1].Compute(0.5)
	b.Progs[1].Recv(0, 1)
	res := run(t, f, ranks, b.Progs)
	// Transfer cannot start before t=0.5: total >= 0.5 + 1ms.
	if res.Elapsed < 0.501 {
		t.Errorf("elapsed = %v; rendezvous started before recv was posted", res.Elapsed)
	}
}

func TestUnmatchedRecvDeadlocks(t *testing.T) {
	hx, f := testFabric(t, false)
	ranks := hx.Terminals()[:2]
	b := NewBuilder(2)
	b.Progs[0].Recv(1, 99) // never sent
	_, err := Run(f, "dead", ranks, b.Progs, Options{})
	if err == nil {
		t.Fatal("deadlock not detected")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("error = %v, want deadlock report", err)
	}
}

func TestAnySourceMatching(t *testing.T) {
	hx, f := testFabric(t, false)
	ranks := hx.Terminals()[:3]
	b := NewBuilder(3)
	b.Progs[1].Send(0, 64, 7)
	b.Progs[2].Send(0, 64, 7)
	b.Progs[0].Recv(AnySource, 7)
	b.Progs[0].Recv(AnySource, 7)
	run(t, f, ranks, b.Progs)
}

func TestTagSelectivity(t *testing.T) {
	hx, f := testFabric(t, false)
	ranks := hx.Terminals()[:2]
	b := NewBuilder(2)
	// Two messages with different tags, received in reverse order.
	b.Progs[0].Send(1, 64, 1)
	b.Progs[0].Send(1, 64, 2)
	b.Progs[1].Recv(0, 2)
	b.Progs[1].Recv(0, 1)
	run(t, f, ranks, b.Progs)
}

func TestBarrierSynchronizes(t *testing.T) {
	hx, f := testFabric(t, false)
	n := 8
	ranks := hx.Terminals()[:n]
	b := NewBuilder(n)
	// Rank 3 computes 1s before the barrier; everyone must leave after 1s.
	b.ComputeRank(3, 1.0)
	b.Barrier()
	res := run(t, f, ranks, b.Progs)
	if res.Elapsed < 1.0 {
		t.Errorf("barrier released early: %v", res.Elapsed)
	}
}

func TestBcastDeliversToAll(t *testing.T) {
	hx, f := testFabric(t, false)
	for _, n := range []int{2, 3, 4, 7, 8, 16} {
		b := NewBuilder(n)
		b.Bcast(0, 4096)
		if _, err := Run(f, "bcast", hx.Terminals()[:n], b.Progs, Options{}); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBcastNonZeroRoot(t *testing.T) {
	hx, f := testFabric(t, false)
	b := NewBuilder(7)
	b.Bcast(3, 1024)
	run(t, f, hx.Terminals()[:7], b.Progs)
}

func TestReduceCompletes(t *testing.T) {
	hx, f := testFabric(t, false)
	for _, n := range []int{2, 5, 8, 13} {
		b := NewBuilder(n)
		b.Reduce(0, 8192)
		if _, err := Run(f, "reduce", hx.Terminals()[:n], b.Progs, Options{}); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestAllreduceBothAlgorithms(t *testing.T) {
	hx, f := testFabric(t, false)
	for _, n := range []int{2, 3, 4, 6, 8, 12} {
		for _, size := range []int64{256, 1 << 20} {
			b := NewBuilder(n)
			b.Allreduce(size)
			if _, err := Run(f, "allreduce", hx.Terminals()[:n], b.Progs, Options{}); err != nil {
				t.Fatalf("n=%d size=%d: %v", n, size, err)
			}
		}
	}
}

func TestGatherScatterAllgatherAlltoall(t *testing.T) {
	hx, f := testFabric(t, false)
	n := 9
	b := NewBuilder(n)
	b.Gather(0, 1024)
	b.Scatter(0, 1024)
	b.Allgather(512)
	b.Alltoall(256)
	run(t, f, hx.Terminals()[:n], b.Progs)
}

func TestAlltoallvSkewed(t *testing.T) {
	hx, f := testFabric(t, false)
	n := 5
	sizes := make([][]int64, n)
	for i := range sizes {
		sizes[i] = make([]int64, n)
		for j := range sizes[i] {
			if i != j && (i+j)%2 == 0 {
				sizes[i][j] = int64(1000 * (i + 1))
			}
		}
	}
	b := NewBuilder(n)
	b.Alltoallv(sizes)
	run(t, f, hx.Terminals()[:n], b.Progs)
}

func TestRingAllreduceBandwidthOptimal(t *testing.T) {
	// On a contention-free fabric, ring allreduce of S bytes over n ranks
	// moves 2(n-1) chunks of S/n: wall time ~ 2(n-1)/n * S/B per rank.
	hx, f := testFabric(t, false)
	n := 4
	size := int64(4 << 20)
	b := NewBuilder(n)
	b.RingAllreduce(size)
	// Place the 4 ranks on 4 distinct switches in one row: ring neighbors
	// are directly connected.
	var ranks []topo.NodeID
	for x := 0; x < 4; x++ {
		ranks = append(ranks, hx.TerminalsOf(hx.SwitchAt(x, 0))[0])
	}
	res := run(t, f, ranks, b.Progs)
	chunk := float64(size / int64(n))
	ideal := 2 * float64(n-1) * chunk / 1e9
	if float64(res.Elapsed) < ideal*0.9 {
		t.Errorf("ring allreduce faster than physics: %v < %v", res.Elapsed, ideal)
	}
	if float64(res.Elapsed) > ideal*2.5 {
		t.Errorf("ring allreduce too slow: %v vs ideal %v", res.Elapsed, ideal)
	}
}

func TestComputeJitterChangesElapsed(t *testing.T) {
	hx, f := testFabric(t, false)
	mk := func() []*Program {
		b := NewBuilder(2)
		b.Compute(1.0)
		b.Barrier()
		return b.Progs
	}
	r1, err := Run(f, "j1", hx.Terminals()[:2], mk(), Options{ComputeJitterSigma: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	hx2, f2 := testFabric(t, false)
	r2, err := Run(f2, "j2", hx2.Terminals()[:2], mk(), Options{ComputeJitterSigma: 0.05, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Elapsed == r2.Elapsed {
		t.Error("different jitter seeds produced identical timings")
	}
	if math.Abs(float64(r1.Elapsed)-1.0) > 0.5 {
		t.Errorf("jittered compute way off: %v", r1.Elapsed)
	}
}

func TestConcurrentJobsOnSharedFabric(t *testing.T) {
	hx, f := testFabric(t, false)
	terms := hx.Terminals()
	mk := func(size int64) []*Program {
		b := NewBuilder(4)
		b.Alltoall(size)
		return b.Progs
	}
	var done int
	for j := 0; j < 3; j++ {
		ranks := terms[j*4 : j*4+4]
		if _, err := Launch(f, "cap", ranks, mk(100_000), Options{}, func(Result) { done++ }); err != nil {
			t.Fatal(err)
		}
	}
	f.Eng.Run()
	if done != 3 {
		t.Errorf("completed jobs = %d, want 3", done)
	}
}

func TestSendrecvRingNoDeadlock(t *testing.T) {
	// Classic test: everyone Sendrecv around a ring with rendezvous-size
	// messages must not deadlock (nonblocking under the hood).
	hx, f := testFabric(t, false)
	n := 16
	b := NewBuilder(n)
	tag := int32(5)
	for r := 0; r < n; r++ {
		b.Progs[r].Sendrecv(Rank((r+1)%n), 1<<20, tag, Rank((r-1+n)%n), tag)
	}
	run(t, f, hx.Terminals()[:n], b.Progs)
}

func TestResultTiming(t *testing.T) {
	hx, f := testFabric(t, false)
	b := NewBuilder(2)
	b.Compute(2.5)
	res := run(t, f, hx.Terminals()[:2], b.Progs)
	if math.Abs(float64(res.Elapsed)-2.5) > 1e-9 {
		t.Errorf("elapsed = %v, want 2.5", res.Elapsed)
	}
}
