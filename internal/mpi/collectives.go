package mpi

import (
	"github.com/hpcsim/t2hx/internal/sim"
)

// ReduceBytePerSec is the local reduction throughput used to cost the
// arithmetic of Reduce/Allreduce steps (Westmere-class memory-bound
// summation).
const ReduceBytePerSec = 5e9

// AllreduceRingThreshold switches Allreduce from recursive doubling (low
// latency, log2 n rounds of full-size messages) to the bandwidth-optimal
// ring (2(n-1) steps of size/n), mirroring OpenMPI's tuned decision.
const AllreduceRingThreshold int64 = 64 * 1024

// Builder composes collective operations into per-rank programs. All
// builder methods expand the collective into point-to-point ops for every
// rank of the communicator, using a fresh tag so phases cannot
// cross-match. Group carves out sub-communicators (process-grid rows and
// columns, FFT pencils, ...) sharing the same tag space.
type Builder struct {
	Progs []*Program
	world []Rank
	tag   int32
}

// NewBuilder returns a builder for n ranks with empty programs.
func NewBuilder(n int) *Builder {
	b := &Builder{Progs: make([]*Program, n), world: make([]Rank, n)}
	for i := range b.Progs {
		b.Progs[i] = &Program{}
		b.world[i] = Rank(i)
	}
	return b
}

// N reports the communicator size.
func (b *Builder) N() int { return len(b.Progs) }

func (b *Builder) nextTag() int32 {
	b.tag++
	return b.tag
}

// NextTag hands out a fresh message tag; exported for packages composing
// custom point-to-point patterns (halo exchanges, pipelines) on top of
// Builder programs without colliding with collective tags.
func (b *Builder) NextTag() int32 { return b.nextTag() }

func reduceCost(bytes int64) sim.Duration {
	return sim.Duration(float64(bytes) / ReduceBytePerSec)
}

// Group is a sub-communicator: collective methods address virtual ranks
// 0..len-1 mapped onto the parent communicator's ranks.
type Group struct {
	b     *Builder
	ranks []Rank
}

// Group returns a sub-communicator over the given world ranks.
func (b *Builder) Group(ranks ...Rank) Group {
	return Group{b: b, ranks: ranks}
}

// N reports the group size.
func (g Group) N() int { return len(g.ranks) }

func (g Group) prog(v int) *Program { return g.b.Progs[g.ranks[v]] }
func (g Group) real(v int) Rank     { return g.ranks[v] }

// --- world-communicator wrappers ---

// Compute adds a computation phase of d to every rank.
func (b *Builder) Compute(d sim.Duration) {
	for _, p := range b.Progs {
		p.Compute(d)
	}
}

// ComputeRank adds a computation phase to one rank.
func (b *Builder) ComputeRank(r Rank, d sim.Duration) {
	b.Progs[r].Compute(d)
}

// P2P adds a single blocking send/recv pair between two ranks.
func (b *Builder) P2P(src, dst Rank, size int64) {
	tag := b.nextTag()
	b.Progs[src].Send(dst, size, tag)
	b.Progs[dst].Recv(src, tag)
}

// Barrier is the dissemination barrier over the world communicator.
func (b *Builder) Barrier() { b.Group(b.world...).Barrier() }

// Bcast broadcasts size bytes from root over a binomial tree.
func (b *Builder) Bcast(root Rank, size int64) { b.Group(b.world...).Bcast(int(root), size) }

// Reduce reduces size bytes to root over a binomial tree.
func (b *Builder) Reduce(root Rank, size int64) { b.Group(b.world...).Reduce(int(root), size) }

// Allreduce picks recursive doubling for small payloads and the ring for
// large ones.
func (b *Builder) Allreduce(size int64) { b.Group(b.world...).Allreduce(size) }

// RecursiveDoublingAllreduce forces the latency-optimal algorithm.
func (b *Builder) RecursiveDoublingAllreduce(size int64) {
	b.Group(b.world...).RecursiveDoublingAllreduce(size)
}

// RingAllreduce forces the bandwidth-optimal ring (Baidu's DeepBench
// allreduce, Sec. 4.1).
func (b *Builder) RingAllreduce(size int64) { b.Group(b.world...).RingAllreduce(size) }

// Gather collects size bytes from every rank at root (linear).
func (b *Builder) Gather(root Rank, size int64) { b.Group(b.world...).Gather(int(root), size) }

// Scatter distributes size bytes from root to every rank (linear).
func (b *Builder) Scatter(root Rank, size int64) { b.Group(b.world...).Scatter(int(root), size) }

// Allgather is the ring algorithm over the world communicator.
func (b *Builder) Allgather(size int64) { b.Group(b.world...).Allgather(size) }

// Alltoall exchanges size bytes between every rank pair (pairwise).
func (b *Builder) Alltoall(size int64) { b.Group(b.world...).Alltoall(size) }

// Alltoallv exchanges sizes[r][peer] bytes pairwise.
func (b *Builder) Alltoallv(sizes [][]int64) { b.Group(b.world...).Alltoallv(sizes) }

// --- group algorithms ---

// Barrier is the dissemination barrier: ceil(log2 n) rounds of 1-byte
// sendrecv with stride 2^k.
func (g Group) Barrier() {
	n := g.N()
	if n < 2 {
		return
	}
	for k := 1; k < n; k *= 2 {
		tag := g.b.nextTag()
		for v := 0; v < n; v++ {
			to := g.real((v + k) % n)
			from := g.real((v - k + n) % n)
			g.prog(v).Sendrecv(to, 1, tag, from, tag)
		}
	}
}

// Bcast broadcasts size bytes from virtual rank root over a binomial tree.
func (g Group) Bcast(root int, size int64) {
	n := g.N()
	if n < 2 || size <= 0 {
		return
	}
	tag := g.b.nextTag()
	for v := 0; v < n; v++ {
		r := (v + root) % n
		if v != 0 {
			parent := v & (v - 1)
			g.prog(r).Recv(g.real((parent+root)%n), tag)
		}
		low := v & (-v)
		if v == 0 {
			low = n
		}
		for k := 1; k < low && v+k < n; k *= 2 {
			g.prog(r).Send(g.real((v+k+root)%n), size, tag)
		}
	}
}

// Reduce reduces size bytes to virtual rank root over a binomial tree
// (reverse of Bcast) with per-step arithmetic cost.
func (g Group) Reduce(root int, size int64) {
	n := g.N()
	if n < 2 || size <= 0 {
		return
	}
	tag := g.b.nextTag()
	for v := n - 1; v >= 0; v-- {
		r := (v + root) % n
		low := v & (-v)
		if v == 0 {
			low = n
		}
		var ks []int
		for k := 1; k < low && v+k < n; k *= 2 {
			ks = append(ks, k)
		}
		for i := len(ks) - 1; i >= 0; i-- {
			g.prog(r).Recv(g.real((v+ks[i]+root)%n), tag)
			g.prog(r).Compute(reduceCost(size))
		}
		if v != 0 {
			parent := v & (v - 1)
			g.prog(r).Send(g.real((parent+root)%n), size, tag)
		}
	}
}

// Allreduce picks recursive doubling below AllreduceRingThreshold and the
// ring above.
func (g Group) Allreduce(size int64) {
	if size >= AllreduceRingThreshold && g.N() > 2 {
		g.RingAllreduce(size)
		return
	}
	g.RecursiveDoublingAllreduce(size)
}

// RecursiveDoublingAllreduce: log2 n rounds of full-size exchange; non
// power-of-two sizes use the standard pre/post folding steps.
func (g Group) RecursiveDoublingAllreduce(size int64) {
	n := g.N()
	if n < 2 || size <= 0 {
		return
	}
	pof2 := 1
	for pof2*2 <= n {
		pof2 *= 2
	}
	rem := n - pof2
	tag := g.b.nextTag()
	// Fold: ranks [0, 2*rem) pair up; odd ones send to even and idle.
	for i := 0; i < rem; i++ {
		hi, lo := 2*i+1, 2*i
		g.prog(hi).Send(g.real(lo), size, tag)
		g.prog(lo).Recv(g.real(hi), tag)
		g.prog(lo).Compute(reduceCost(size))
	}
	active := func(v int) int {
		if v < rem {
			return 2 * v
		}
		return v + rem
	}
	for k := 1; k < pof2; k *= 2 {
		tag := g.b.nextTag()
		for v := 0; v < pof2; v++ {
			peer := g.real(active(v ^ k))
			p := g.prog(active(v))
			p.Sendrecv(peer, size, tag, peer, tag)
			p.Compute(reduceCost(size))
		}
	}
	tag2 := g.b.nextTag()
	for i := 0; i < rem; i++ {
		hi, lo := 2*i+1, 2*i
		g.prog(lo).Send(g.real(hi), size, tag2)
		g.prog(hi).Recv(g.real(lo), tag2)
	}
}

// RingAllreduce is the bandwidth-optimal ring: a reduce-scatter ring of
// n-1 steps with size/n chunks followed by an allgather ring.
func (g Group) RingAllreduce(size int64) {
	n := g.N()
	if n < 2 || size <= 0 {
		return
	}
	chunk := size / int64(n)
	if chunk < 1 {
		chunk = 1
	}
	for phase := 0; phase < 2; phase++ {
		for step := 0; step < n-1; step++ {
			tag := g.b.nextTag()
			for v := 0; v < n; v++ {
				next := g.real((v + 1) % n)
				prev := g.real((v - 1 + n) % n)
				p := g.prog(v)
				hr := p.Irecv(prev, tag)
				hs := p.Isend(next, chunk, tag)
				p.Wait(hr, hs)
				if phase == 0 {
					p.Compute(reduceCost(chunk))
				}
			}
		}
	}
}

// Gather collects size bytes from every group rank at virtual root
// (linear, the OpenMPI basic algorithm at these communicator sizes).
func (g Group) Gather(root int, size int64) {
	n := g.N()
	if n < 2 || size <= 0 {
		return
	}
	tag := g.b.nextTag()
	rootProg := g.prog(root)
	var hs []int32
	for v := 0; v < n; v++ {
		if v == root {
			continue
		}
		g.prog(v).Send(g.real(root), size, tag)
		hs = append(hs, rootProg.Irecv(g.real(v), tag))
	}
	rootProg.Wait(hs...)
}

// Scatter distributes size bytes from virtual root to every group rank
// (linear).
func (g Group) Scatter(root int, size int64) {
	n := g.N()
	if n < 2 || size <= 0 {
		return
	}
	tag := g.b.nextTag()
	rootProg := g.prog(root)
	var hs []int32
	for v := 0; v < n; v++ {
		if v == root {
			continue
		}
		hs = append(hs, rootProg.Isend(g.real(v), size, tag))
		g.prog(v).Recv(g.real(root), tag)
	}
	rootProg.Wait(hs...)
}

// Allgather is the ring algorithm: n-1 steps forwarding size-byte blocks.
func (g Group) Allgather(size int64) {
	n := g.N()
	if n < 2 || size <= 0 {
		return
	}
	for step := 0; step < n-1; step++ {
		tag := g.b.nextTag()
		for v := 0; v < n; v++ {
			next := g.real((v + 1) % n)
			prev := g.real((v - 1 + n) % n)
			p := g.prog(v)
			hr := p.Irecv(prev, tag)
			hs := p.Isend(next, size, tag)
			p.Wait(hr, hs)
		}
	}
}

// Alltoall exchanges size bytes between every group rank pair with the
// pairwise algorithm: n-1 rounds, in round k rank v exchanges with
// (v+k) mod n and (v-k) mod n.
func (g Group) Alltoall(size int64) {
	n := g.N()
	if n < 2 || size <= 0 {
		return
	}
	for k := 1; k < n; k++ {
		tag := g.b.nextTag()
		for v := 0; v < n; v++ {
			to := g.real((v + k) % n)
			from := g.real((v - k + n) % n)
			g.prog(v).Sendrecv(to, size, tag, from, tag)
		}
	}
}

// Alltoallv exchanges sizes[v][peer] bytes pairwise (virtual-rank
// indexed).
func (g Group) Alltoallv(sizes [][]int64) {
	n := g.N()
	for k := 1; k < n; k++ {
		tag := g.b.nextTag()
		for v := 0; v < n; v++ {
			to := (v + k) % n
			from := (v - k + n) % n
			p := g.prog(v)
			var hs []int32
			if sizes[v][to] > 0 {
				hs = append(hs, p.Isend(g.real(to), sizes[v][to], tag))
			}
			if sizes[from][v] > 0 {
				hs = append(hs, p.Irecv(g.real(from), tag))
			}
			if len(hs) > 0 {
				p.Wait(hs...)
			}
		}
	}
}
