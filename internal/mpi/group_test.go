package mpi

import "testing"

func TestGroupCollectivesDisjoint(t *testing.T) {
	hx, f := testFabric(t, false)
	n := 12
	b := NewBuilder(n)
	// Two disjoint groups run independent collectives concurrently.
	g1 := b.Group(0, 1, 2, 3, 4, 5)
	g2 := b.Group(6, 7, 8, 9, 10, 11)
	g1.Alltoall(4096)
	g2.Bcast(0, 4096)
	g1.Allreduce(128)
	g2.Allreduce(1 << 20)
	run(t, f, hx.Terminals()[:n], b.Progs)
}

func TestGroupRowColumnDecomposition(t *testing.T) {
	// 3x4 process grid: alltoall along rows, then allreduce down columns —
	// the Qbox/SWFFT pattern.
	hx, f := testFabric(t, false)
	rows, cols := 3, 4
	b := NewBuilder(rows * cols)
	for r := 0; r < rows; r++ {
		var g []Rank
		for c := 0; c < cols; c++ {
			g = append(g, Rank(r*cols+c))
		}
		b.Group(g...).Alltoall(2048)
	}
	for c := 0; c < cols; c++ {
		var g []Rank
		for r := 0; r < rows; r++ {
			g = append(g, Rank(r*cols+c))
		}
		b.Group(g...).Allreduce(1024)
	}
	run(t, f, hx.Terminals()[:rows*cols], b.Progs)
}

func TestGroupSingletonIsNoop(t *testing.T) {
	hx, f := testFabric(t, false)
	b := NewBuilder(2)
	b.Group(0).Barrier()
	b.Group(1).Alltoall(100)
	b.Group(0).Allreduce(100)
	res := run(t, f, hx.Terminals()[:2], b.Progs)
	if res.Elapsed != 0 {
		t.Errorf("singleton collectives should be free, elapsed = %v", res.Elapsed)
	}
}

func TestGroupNonContiguousRanks(t *testing.T) {
	hx, f := testFabric(t, false)
	b := NewBuilder(8)
	b.Group(7, 2, 5, 0).RingAllreduce(1 << 20)
	run(t, f, hx.Terminals()[:8], b.Progs)
}
