package mpi

import (
	"fmt"

	"github.com/hpcsim/t2hx/internal/fabric"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// DefaultEagerThreshold is the eager/rendezvous protocol switch: messages
// below it are buffered and sent immediately (send completes locally);
// larger messages wait for the matching receive, OpenMPI-style.
const DefaultEagerThreshold int64 = 12 * 1024

// DefaultRendezvousDelay approximates the RTS/CTS handshake round trip of
// the rendezvous protocol.
const DefaultRendezvousDelay sim.Duration = 2400 * sim.Nanosecond

// Options tune job execution.
type Options struct {
	EagerThreshold  int64
	RendezvousDelay sim.Duration
	// ComputeJitterSigma is the lognormal sigma applied to every compute
	// phase, modelling OS noise and run-to-run variability (Sec. 4.4.5 ran
	// everything 10 times for exactly this reason). 0 disables jitter.
	ComputeJitterSigma float64
	// Seed drives the jitter stream.
	Seed uint64
}

// Result reports a finished job.
type Result struct {
	Start, End sim.Time
	// Elapsed is End-Start: the job's makespan.
	Elapsed sim.Duration
}

// Job is a set of rank programs bound to terminals, executing on a shared
// transport — a single-plane Fabric or a multi-plane MultiFabric; the MPI
// layer only needs the Messenger surface. Multiple jobs may run
// concurrently on one transport (the capacity evaluation of Sec. 4.4.2).
type Job struct {
	Name  string
	Ranks []topo.NodeID // rank -> terminal
	Progs []*Program

	f      fabric.Messenger
	opts   Options
	rng    *sim.Rand
	onDone func(Result)

	start   sim.Time
	pending int // ranks not yet finished
	state   []rankState
	result  Result
	done    bool
}

type rankState struct {
	pc        int
	blocked   bool
	completed []bool // per handle
	waiting   []int32

	// Matching state (this rank as receiver).
	posted    []postedRecv
	available []availMsg
}

type postedRecv struct {
	src    Rank
	tag    int32
	handle int32
}

// availMsg is a matchable message: either an eager message that already
// arrived, or a rendezvous RTS awaiting its receive.
type availMsg struct {
	src  Rank
	tag  int32
	size int64
	// rendezvous: the send completes at delivery.
	rendezvous bool
	sendHandle int32
}

// Launch starts a job on f at the current simulated time; onDone fires when
// every rank has finished its program. The returned Job can be inspected
// after completion.
func Launch(f fabric.Messenger, name string, ranks []topo.NodeID, progs []*Program, opts Options, onDone func(Result)) (*Job, error) {
	if len(ranks) != len(progs) {
		return nil, fmt.Errorf("mpi: %d ranks but %d programs", len(ranks), len(progs))
	}
	if opts.EagerThreshold == 0 {
		opts.EagerThreshold = DefaultEagerThreshold
	}
	if opts.RendezvousDelay == 0 {
		opts.RendezvousDelay = DefaultRendezvousDelay
	}
	j := &Job{
		Name: name, Ranks: ranks, Progs: progs,
		f: f, opts: opts, rng: sim.NewRand(opts.Seed ^ 0xa5a5a5a5),
		onDone:  onDone,
		start:   f.Engine().Now(),
		pending: len(ranks),
		state:   make([]rankState, len(ranks)),
	}
	for i := range j.state {
		j.state[i].completed = make([]bool, progs[i].numHandles)
	}
	for r := range ranks {
		j.advance(Rank(r))
	}
	j.checkDone()
	return j, nil
}

// Run executes a single job to completion on a fresh engine and returns its
// result — the capability-run entry point.
func Run(f fabric.Messenger, name string, ranks []topo.NodeID, progs []*Program, opts Options) (Result, error) {
	var res Result
	j, err := Launch(f, name, ranks, progs, opts, func(r Result) { res = r })
	if err != nil {
		return res, err
	}
	f.Engine().Run()
	if !j.done {
		return res, fmt.Errorf("mpi: job %q deadlocked: %s", name, j.stuckReport())
	}
	return res, nil
}

// stuckReport describes which ranks are blocked where (deadlock
// diagnostics). For a rank stuck in a Wait, it names the unfinished
// Isend/Irecv the wait covers.
func (j *Job) stuckReport() string {
	for r := range j.state {
		st := &j.state[r]
		if st.pc >= len(j.Progs[r].Ops) {
			continue
		}
		op := j.Progs[r].Ops[st.pc]
		if op.Kind == OpWait {
			for _, h := range op.Handles {
				if st.completed[h] {
					continue
				}
				for _, cand := range j.Progs[r].Ops {
					if (cand.Kind == OpISend || cand.Kind == OpIRecv) && cand.Handle == h {
						return fmt.Sprintf("rank %d blocked at op %d waiting for %v (peer=%d tag=%d size=%d)",
							r, st.pc, cand.Kind, cand.Peer, cand.Tag, cand.Size)
					}
				}
			}
		}
		return fmt.Sprintf("rank %d blocked at op %d (%v peer=%d tag=%d)",
			r, st.pc, op.Kind, op.Peer, op.Tag)
	}
	return "no blocked rank found"
}

// advance executes ops of rank r until it blocks or finishes.
func (j *Job) advance(r Rank) {
	st := &j.state[r]
	st.blocked = false
	prog := j.Progs[r]
	for st.pc < len(prog.Ops) {
		op := &prog.Ops[st.pc]
		switch op.Kind {
		case OpISend:
			st.pc++
			j.execSend(r, op)
		case OpIRecv:
			st.pc++
			j.execRecv(r, op)
		case OpWait:
			if j.allDone(st, op.Handles) {
				st.pc++
				continue
			}
			st.blocked = true
			st.waiting = op.Handles
			return
		case OpCompute:
			st.pc++
			d := op.Dur
			if j.opts.ComputeJitterSigma > 0 && d > 0 {
				d = sim.Duration(float64(d) * j.rng.LogNormalFactor(j.opts.ComputeJitterSigma))
			}
			st.blocked = true
			st.waiting = nil
			j.f.Engine().After(d, func(*sim.Engine) {
				j.advance(r)
				j.checkDone()
			})
			return
		}
	}
	// Program finished.
	j.pending--
}

func (j *Job) allDone(st *rankState, hs []int32) bool {
	for _, h := range hs {
		if !st.completed[h] {
			return false
		}
	}
	return true
}

// complete marks a handle done and unblocks the rank if it was waiting on
// it.
func (j *Job) complete(r Rank, h int32) {
	st := &j.state[r]
	st.completed[h] = true
	if st.blocked && st.waiting != nil && j.allDone(st, st.waiting) {
		st.pc++ // move past the satisfied Wait
		j.advance(r)
	}
	j.checkDone()
}

func (j *Job) checkDone() {
	if j.done || j.pending > 0 {
		return
	}
	j.done = true
	j.result = Result{
		Start:   j.start,
		End:     j.f.Engine().Now(),
		Elapsed: j.f.Engine().Now() - j.start,
	}
	if j.onDone != nil {
		j.onDone(j.result)
	}
}

// Done reports whether the job has finished; Result is valid then.
func (j *Job) Done() bool { return j.done }

// Result returns the finished job's timing.
func (j *Job) Result() Result { return j.result }

// execSend handles OpISend.
func (j *Job) execSend(r Rank, op *Op) {
	dst := op.Peer
	if dst < 0 || int(dst) >= len(j.Ranks) {
		panic(fmt.Sprintf("mpi: rank %d sends to invalid rank %d", r, dst))
	}
	if op.Size < j.opts.EagerThreshold {
		// Eager: local completion immediately; data flies now.
		j.state[r].completed[op.Handle] = true
		size, tag, src := op.Size, op.Tag, r
		j.f.Send(j.Ranks[r], j.Ranks[dst], size, func(sim.Time) {
			j.arrived(dst, availMsg{src: src, tag: tag, size: size})
		})
		return
	}
	// Rendezvous: announce, transfer when matched.
	j.arrived(dst, availMsg{src: r, tag: op.Tag, size: op.Size, rendezvous: true, sendHandle: op.Handle})
}

// execRecv handles OpIRecv: match available messages first, else post.
func (j *Job) execRecv(r Rank, op *Op) {
	st := &j.state[r]
	for i := range st.available {
		m := st.available[i]
		if matches(op.Peer, op.Tag, m.src, m.tag) {
			st.available = append(st.available[:i], st.available[i+1:]...)
			j.consume(r, m, op.Handle)
			return
		}
	}
	st.posted = append(st.posted, postedRecv{src: op.Peer, tag: op.Tag, handle: op.Handle})
}

// arrived is called when a message becomes matchable at receiver rank r:
// eager data delivery or rendezvous ready-to-send.
func (j *Job) arrived(r Rank, m availMsg) {
	st := &j.state[r]
	for i := range st.posted {
		p := st.posted[i]
		if matches(p.src, p.tag, m.src, m.tag) {
			st.posted = append(st.posted[:i], st.posted[i+1:]...)
			j.consume(r, m, p.handle)
			return
		}
	}
	st.available = append(st.available, m)
}

// consume completes the match: eager messages finish the recv immediately
// (the data is here); rendezvous messages start the bulk transfer.
func (j *Job) consume(r Rank, m availMsg, recvHandle int32) {
	if !m.rendezvous {
		j.complete(r, recvHandle)
		return
	}
	src := m.src
	sendHandle := m.sendHandle
	j.f.Engine().After(j.opts.RendezvousDelay, func(*sim.Engine) {
		j.f.Send(j.Ranks[src], j.Ranks[r], m.size, func(sim.Time) {
			j.complete(src, sendHandle)
			j.complete(r, recvHandle)
		})
	})
}

func matches(wantSrc Rank, wantTag int32, src Rank, tag int32) bool {
	return (wantSrc == AnySource || wantSrc == src) && wantTag == tag
}
