// Package mpi models MPI ranks as per-rank operation programs executed on a
// fabric: non-blocking point-to-point ops (Isend/Irecv/Wait), compute
// phases, and the collective algorithms OpenMPI-class libraries use at the
// paper's scales (binomial broadcast/reduce, recursive-doubling and ring
// allreduce, linear gather/scatter, ring allgather, pairwise alltoall,
// dissemination barrier). Collectives are expanded into point-to-point
// programs at build time, so the paper's traffic patterns hit the simulated
// network exactly as they would hit the real one.
package mpi

import (
	"fmt"

	"github.com/hpcsim/t2hx/internal/sim"
)

// Rank is an MPI rank within a job.
type Rank int32

// AnySource matches any sending rank (MPI_ANY_SOURCE).
const AnySource Rank = -1

// OpKind enumerates program operations.
type OpKind uint8

const (
	// OpISend posts a non-blocking send of Size bytes to Peer with Tag.
	OpISend OpKind = iota
	// OpIRecv posts a non-blocking receive from Peer (or AnySource) with
	// Tag.
	OpIRecv
	// OpWait blocks until all Handles have completed.
	OpWait
	// OpCompute blocks the rank for Dur of (jittered) computation.
	OpCompute
)

func (k OpKind) String() string {
	switch k {
	case OpISend:
		return "isend"
	case OpIRecv:
		return "irecv"
	case OpWait:
		return "wait"
	default:
		return "compute"
	}
}

// Op is one program step.
type Op struct {
	Kind    OpKind
	Peer    Rank
	Size    int64
	Tag     int32
	Handle  int32   // result handle of OpISend/OpIRecv
	Handles []int32 // OpWait
	Dur     sim.Duration
}

// Program is the op sequence of one rank.
type Program struct {
	Ops        []Op
	numHandles int32
}

// Isend appends a non-blocking send and returns its handle.
func (p *Program) Isend(dst Rank, size int64, tag int32) int32 {
	h := p.numHandles
	p.numHandles++
	p.Ops = append(p.Ops, Op{Kind: OpISend, Peer: dst, Size: size, Tag: tag, Handle: h})
	return h
}

// Irecv appends a non-blocking receive and returns its handle.
func (p *Program) Irecv(src Rank, tag int32) int32 {
	h := p.numHandles
	p.numHandles++
	p.Ops = append(p.Ops, Op{Kind: OpIRecv, Peer: src, Tag: tag, Handle: h})
	return h
}

// Wait appends a wait on the given handles.
func (p *Program) Wait(handles ...int32) {
	hs := append([]int32{}, handles...)
	p.Ops = append(p.Ops, Op{Kind: OpWait, Handles: hs})
}

// Send is a blocking send: Isend + Wait.
func (p *Program) Send(dst Rank, size int64, tag int32) {
	p.Wait(p.Isend(dst, size, tag))
}

// Recv is a blocking receive: Irecv + Wait.
func (p *Program) Recv(src Rank, tag int32) {
	p.Wait(p.Irecv(src, tag))
}

// Sendrecv posts both and waits for both (MPI_Sendrecv).
func (p *Program) Sendrecv(dst Rank, size int64, stag int32, src Rank, rtag int32) {
	hs := p.Isend(dst, size, stag)
	hr := p.Irecv(src, rtag)
	p.Wait(hs, hr)
}

// Compute appends a computation phase.
func (p *Program) Compute(d sim.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("mpi: negative compute duration %v", d))
	}
	p.Ops = append(p.Ops, Op{Kind: OpCompute, Dur: d})
}

// Steps reports the number of ops.
func (p *Program) Steps() int { return len(p.Ops) }
