package mpi

import (
	"testing"

	"github.com/hpcsim/t2hx/internal/sim"
)

func TestEagerThresholdOption(t *testing.T) {
	// With a tiny eager threshold, a 100-byte send becomes rendezvous and
	// must wait for the receiver.
	hx, f := testFabric(t, false)
	b := NewBuilder(2)
	b.Progs[0].Send(1, 100, 1)
	b.Progs[1].Compute(1.0)
	b.Progs[1].Recv(0, 1)
	res, err := Run(f, "rdv", hx.Terminals()[:2], b.Progs, Options{EagerThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed < 1.0 {
		t.Errorf("send completed before recv was posted: %v", res.Elapsed)
	}
	// With a huge threshold the same program finishes when the compute
	// does (eager sender is long gone).
	hx2, f2 := testFabric(t, false)
	b2 := NewBuilder(2)
	b2.Progs[0].Send(1, 100, 1)
	b2.Progs[1].Compute(1.0)
	b2.Progs[1].Recv(0, 1)
	res2, err := Run(f2, "eager", hx2.Terminals()[:2], b2.Progs, Options{EagerThreshold: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Elapsed > res.Elapsed {
		t.Errorf("eager run slower than rendezvous: %v vs %v", res2.Elapsed, res.Elapsed)
	}
}

func TestRendezvousDelayOption(t *testing.T) {
	mk := func(delay sim.Duration) sim.Duration {
		hx, f := testFabric(t, false)
		b := NewBuilder(2)
		b.Progs[0].Send(1, 1<<20, 1)
		b.Progs[1].Recv(0, 1)
		res, err := Run(f, "rdvdelay", hx.Terminals()[:2], b.Progs, Options{RendezvousDelay: delay})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	fast := mk(1 * sim.Microsecond)
	slow := mk(1 * sim.Millisecond)
	if slow <= fast {
		t.Errorf("rendezvous delay had no effect: %v vs %v", slow, fast)
	}
	if d := float64(slow - fast); d < 0.9e-3 || d > 1.2e-3 {
		t.Errorf("delay delta = %v, want ~1ms", d)
	}
}

func TestJobStuckReportNamesRankAndOp(t *testing.T) {
	hx, f := testFabric(t, false)
	b := NewBuilder(2)
	b.Progs[1].Recv(0, 42)
	_, err := Run(f, "stuck", hx.Terminals()[:2], b.Progs, Options{})
	if err == nil {
		t.Fatal("expected deadlock")
	}
	msg := err.Error()
	for _, want := range []string{"rank 1", "tag=42"} {
		if !contains(msg, want) {
			t.Errorf("stuck report %q missing %q", msg, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		(len(s) > 0 && indexOf(s, sub) >= 0))
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestLaunchValidatesShape(t *testing.T) {
	hx, f := testFabric(t, false)
	b := NewBuilder(3)
	if _, err := Launch(f, "bad", hx.Terminals()[:2], b.Progs, Options{}, nil); err == nil {
		t.Error("rank/program count mismatch accepted")
	}
}

func TestJobDoneAccessors(t *testing.T) {
	hx, f := testFabric(t, false)
	b := NewBuilder(2)
	b.Compute(1.0)
	j, err := Launch(f, "acc", hx.Terminals()[:2], b.Progs, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if j.Done() {
		t.Error("job done before engine ran")
	}
	f.Eng.Run()
	if !j.Done() {
		t.Fatal("job not done after run")
	}
	if j.Result().Elapsed < 1.0 {
		t.Errorf("result elapsed = %v", j.Result().Elapsed)
	}
}
