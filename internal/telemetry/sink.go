package telemetry

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// Sinks are the streaming half of the observability layer: instead of
// retaining every per-message record until the run ends (PR 2's buffered
// model, which caps run size at available memory), a Collector with a sink
// attached writes each record the moment it closes and forgets it. The
// only per-run state left in memory is O(1): integer histogram buckets,
// channel counters, and the open-message slot table (bounded by the number
// of concurrently in-flight messages, not by run length).
//
// Sinks buffer boundedly (a fixed-size bufio window) and flush periodically
// (every FlushEvery records), so `tail -f | jq` sees a long sweep's lines
// while it runs. Errors are sticky: the first write/flush failure is
// latched, every later Write returns it, and Close reports it — export
// code cannot silently drop lines on a full disk.
//
// Sinks are not concurrency-safe (the simulation is single-threaded, and
// parallel sweep cells each own their collector and sink); CountSink is
// the exception so tests can share one across workers.

// Line is one self-describing export record — anything that serializes to
// a JSONL object with a "kind" discriminator field.
type Line interface {
	// LineKind reports the record's "kind" value ("run", "msg", "chan",
	// "hist", "trace", "progress", ...).
	LineKind() string
}

// Sink consumes export lines as they are produced.
type Sink interface {
	// Write appends one record. After a failure every subsequent call
	// returns the first error.
	Write(Line) error
	// Flush pushes buffered records to the underlying writer.
	Flush() error
	// Close flushes, releases the underlying writer (closing it when it
	// is an io.Closer) and returns the first error the sink saw.
	Close() error
}

// defaultFlushEvery is the record cadence of automatic flushes.
const defaultFlushEvery = 256

// sinkBufSize bounds each sink's in-memory buffering.
const sinkBufSize = 64 << 10

// closeUnderlying closes w when it is an io.Closer (files), else no-ops
// (bytes.Buffer, io.Discard).
func closeUnderlying(w io.Writer) error {
	if c, ok := w.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// JSONLSink streams lines as JSON objects, one per line — the same
// grep/jq-friendly format the buffered WriteMetricsJSONL produces, minus
// the requirement to hold the run in memory.
type JSONLSink struct {
	under  io.Writer
	w      *bufio.Writer
	enc    *json.Encoder
	every  int
	unread int // records since the last flush
	err    error
	closed bool
}

// NewJSONLSink wraps w with bounded buffering and the default flush
// cadence. If w is an io.Closer, Close closes it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriterSize(w, sinkBufSize)
	return &JSONLSink{under: w, w: bw, enc: json.NewEncoder(bw), every: defaultFlushEvery}
}

// FlushEvery sets the automatic flush cadence in records (<= 0 restores
// the default) and returns the sink for chaining.
func (s *JSONLSink) FlushEvery(n int) *JSONLSink {
	if n <= 0 {
		n = defaultFlushEvery
	}
	s.every = n
	return s
}

// Write encodes one line.
func (s *JSONLSink) Write(l Line) error {
	if s.err != nil {
		return s.err
	}
	if err := s.enc.Encode(l); err != nil {
		s.err = err
		return err
	}
	s.unread++
	if s.unread >= s.every {
		return s.Flush()
	}
	return nil
}

// Flush pushes buffered lines through to the underlying writer.
func (s *JSONLSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	s.unread = 0
	if err := s.w.Flush(); err != nil {
		s.err = err
	}
	return s.err
}

// Close flushes and closes the underlying writer.
func (s *JSONLSink) Close() error {
	if s.closed {
		return s.err
	}
	s.closed = true
	s.Flush()
	if err := closeUnderlying(s.under); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// MsgCSVSink streams "msg" lines as CSV rows for spreadsheet/pandas
// consumption; lines of any other kind pass through uncounted (a Tee can
// feed it the full stream). The header row is written lazily with the
// first record.
type MsgCSVSink struct {
	under  io.Writer
	w      *csv.Writer
	wrote  bool
	unread int
	every  int
	err    error
	closed bool
}

// NewMsgCSVSink wraps w. If w is an io.Closer, Close closes it.
func NewMsgCSVSink(w io.Writer) *MsgCSVSink {
	return &MsgCSVSink{under: w, w: csv.NewWriter(bufio.NewWriterSize(w, sinkBufSize)), every: defaultFlushEvery}
}

var msgCSVHeader = []string{
	"plane", "src", "dst", "size", "issued_s", "wired_s", "finished_s",
	"fct_s", "hops", "retries", "delivered", "redispatched",
}

// Write appends one msg line as a CSV row.
func (s *MsgCSVSink) Write(l Line) error {
	if s.err != nil {
		return s.err
	}
	m, ok := l.(msgLine)
	if !ok {
		return nil
	}
	if !s.wrote {
		s.wrote = true
		if err := s.w.Write(msgCSVHeader); err != nil {
			s.err = err
			return err
		}
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }
	row := []string{
		strconv.Itoa(m.Plane),
		strconv.Itoa(int(m.Src)), strconv.Itoa(int(m.Dst)),
		strconv.FormatInt(m.Size, 10),
		g(m.Issued), g(m.Wired), g(m.Finished), g(m.FCT),
		strconv.Itoa(m.Hops), strconv.Itoa(m.Retries),
		strconv.FormatBool(m.Delivered), strconv.FormatBool(m.Redispatched),
	}
	if err := s.w.Write(row); err != nil {
		s.err = err
		return err
	}
	s.unread++
	if s.unread >= s.every {
		return s.Flush()
	}
	return nil
}

// Flush pushes buffered rows through to the underlying writer.
func (s *MsgCSVSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	s.unread = 0
	s.w.Flush()
	if err := s.w.Error(); err != nil {
		s.err = err
	}
	return s.err
}

// Close flushes and closes the underlying writer.
func (s *MsgCSVSink) Close() error {
	if s.closed {
		return s.err
	}
	s.closed = true
	s.Flush()
	if err := closeUnderlying(s.under); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// TraceSink streams Chrome trace_event JSON: the document envelope is
// opened on the first event and sealed by Close, so a multi-hour run's
// timeline goes to disk incrementally instead of accumulating in the
// collector. Only "trace" lines are accepted.
type TraceSink struct {
	under  io.Writer
	w      *bufio.Writer
	wrote  bool
	unread int
	every  int
	err    error
	closed bool
}

// NewTraceSink wraps w. If w is an io.Closer, Close closes it.
func NewTraceSink(w io.Writer) *TraceSink {
	return &TraceSink{under: w, w: bufio.NewWriterSize(w, sinkBufSize), every: defaultFlushEvery}
}

// Write appends one trace event to the document.
func (s *TraceSink) Write(l Line) error {
	if s.err != nil {
		return s.err
	}
	ev, ok := l.(traceEvent)
	if !ok {
		s.err = fmt.Errorf("telemetry: trace sink got %q line", l.LineKind())
		return s.err
	}
	raw, err := json.Marshal(ev)
	if err != nil {
		s.err = err
		return err
	}
	sep := ",\n"
	if !s.wrote {
		s.wrote = true
		sep = "{\"traceEvents\":[\n"
	}
	if _, err := s.w.WriteString(sep); err != nil {
		s.err = err
		return err
	}
	if _, err := s.w.Write(raw); err != nil {
		s.err = err
		return err
	}
	s.unread++
	if s.unread >= s.every {
		return s.Flush()
	}
	return nil
}

// Flush pushes buffered events through to the underlying writer.
func (s *TraceSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	s.unread = 0
	if err := s.w.Flush(); err != nil {
		s.err = err
	}
	return s.err
}

// Close seals the trace_event document and closes the underlying writer.
func (s *TraceSink) Close() error {
	if s.closed {
		return s.err
	}
	s.closed = true
	if s.err == nil {
		tail := "\n],\"displayTimeUnit\":\"ms\"}\n"
		if !s.wrote {
			tail = "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}\n"
		}
		if _, err := s.w.WriteString(tail); err != nil {
			s.err = err
		}
	}
	s.Flush()
	if err := closeUnderlying(s.under); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// CountSink counts lines by kind and discards them — the null sink. It
// measures a stream (tests, ablations, dry runs) at zero serialization
// cost and, unlike the other sinks, is safe for concurrent use.
type CountSink struct {
	mu      sync.Mutex
	kinds   map[string]uint64
	flushes int
	closes  int
}

// NewCountSink returns an empty counting sink.
func NewCountSink() *CountSink { return &CountSink{kinds: make(map[string]uint64)} }

// Write counts the line's kind.
func (s *CountSink) Write(l Line) error {
	s.mu.Lock()
	s.kinds[l.LineKind()]++
	s.mu.Unlock()
	return nil
}

// Flush counts the call.
func (s *CountSink) Flush() error {
	s.mu.Lock()
	s.flushes++
	s.mu.Unlock()
	return nil
}

// Close counts the call.
func (s *CountSink) Close() error {
	s.mu.Lock()
	s.closes++
	s.mu.Unlock()
	return nil
}

// Count reports how many lines of kind were written.
func (s *CountSink) Count(kind string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.kinds[kind]
}

// Total reports the total line count over all kinds.
func (s *CountSink) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n uint64
	for _, c := range s.kinds {
		n += c
	}
	return n
}

// Closes reports how many times Close was called (sink lifecycle tests).
func (s *CountSink) Closes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closes
}

// Tee fans every line out to all sinks; the first error from any sink is
// returned (all sinks still receive every call).
type teeSink struct{ sinks []Sink }

// Tee combines sinks, e.g. a JSONL stream plus a CSV side-channel.
func Tee(sinks ...Sink) Sink { return &teeSink{sinks: sinks} }

func (t *teeSink) Write(l Line) error {
	var first error
	for _, s := range t.sinks {
		if err := s.Write(l); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (t *teeSink) Flush() error {
	var first error
	for _, s := range t.sinks {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (t *teeSink) Close() error {
	var first error
	for _, s := range t.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
