package telemetry

import (
	"sort"

	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// ChannelCounters is the IB-style counter set, one slot per directed fabric
// channel (2 per link). The flow network feeds it on every rate-recompute
// interval, so the integrals are exact for the flow model:
//
//   - XmitData[c]: bytes that crossed channel c — the PortXmitData
//     analogue (IB counts 4-byte lanes; we keep bytes).
//   - XmitWait[c]: accumulated time flows bottlenecked at c spent below
//     their bottleneck-free rate, weighted by the stalled fraction — the
//     PortXmitWait analogue (ticks with data queued but no credit).
//   - ActiveHWM[c]: high-watermark of concurrent flows crossing c.
//
// Flows also traverse virtual per-node (PCIe/HCA) channels; those fall
// outside the fabric channel range and their wait time is accumulated in
// HCAWait instead, separating host-side from fabric-side contention.
type ChannelCounters struct {
	g *topo.Graph

	XmitData  []float64      // bytes, indexed by topo.ChannelID
	XmitWait  []sim.Duration // seconds
	ActiveHWM []int32

	// HCAWait aggregates wait time attributed to per-node aggregate
	// bandwidth channels (host bottleneck, not a fabric cable).
	HCAWait sim.Duration

	// flush, when set (flow.SetCounters wires it to Network.FlushCounters),
	// forces the flow network's lazily-deferred rate integrals before a
	// read: flows only credit their intervals when their own rate changes,
	// so any accessor below flushes first to make the counters exact as of
	// the current instant (DESIGN.md §13). Readers going straight to the
	// exported slices must call Flush themselves.
	flush func()
}

// NewChannelCounters sizes the counter set for g's channels.
func NewChannelCounters(g *topo.Graph) *ChannelCounters {
	n := 2 * len(g.Links)
	return &ChannelCounters{
		g:         g,
		XmitData:  make([]float64, n),
		XmitWait:  make([]sim.Duration, n),
		ActiveHWM: make([]int32, n),
	}
}

// SetFlusher registers the producer's integration barrier; nil detaches.
func (cc *ChannelCounters) SetFlusher(f func()) { cc.flush = f }

// Flush forces every outstanding lazily-deferred interval into the
// counters. Called implicitly by the read accessors; exported for readers
// that index the counter slices directly.
func (cc *ChannelCounters) Flush() {
	if cc.flush != nil {
		cc.flush()
	}
}

// AddXmit credits bytes to a channel. Out-of-range channels (virtual node
// channels) are ignored: they model host DMA, not a cable.
func (cc *ChannelCounters) AddXmit(c topo.ChannelID, bytes float64) {
	if int(c) < len(cc.XmitData) {
		cc.XmitData[c] += bytes
	}
}

// AddWait credits stalled time to the flow's bottleneck channel, or to the
// HCA aggregate for node channels.
func (cc *ChannelCounters) AddWait(c topo.ChannelID, d sim.Duration) {
	if int(c) < len(cc.XmitWait) {
		cc.XmitWait[c] += d
	} else {
		cc.HCAWait += d
	}
}

// NoteActive raises the concurrent-flow high-watermark of a channel.
func (cc *ChannelCounters) NoteActive(c topo.ChannelID, n int) {
	if int(c) < len(cc.ActiveHWM) && int32(n) > cc.ActiveHWM[c] {
		cc.ActiveHWM[c] = int32(n)
	}
}

// TotalXmitData sums transmitted bytes over all fabric channels — the
// left-hand side of the conservation identity.
func (cc *ChannelCounters) TotalXmitData() float64 {
	cc.Flush()
	var sum float64
	for _, b := range cc.XmitData {
		sum += b
	}
	return sum
}

// MaxWait returns the largest per-channel wait and the channel holding it
// (-1 when all zero).
func (cc *ChannelCounters) MaxWait() (topo.ChannelID, sim.Duration) {
	cc.Flush()
	best := topo.ChannelID(-1)
	var w sim.Duration
	for c, d := range cc.XmitWait {
		if d > w {
			w = d
			best = topo.ChannelID(c)
		}
	}
	return best, w
}

// MaxActive returns the highest concurrent-flow watermark over all fabric
// channels, maintained for every PML (Fabric.MaxChannelOccupancy surfaces
// it fabric-side, replacing the removed AdaptiveStats accessor).
func (cc *ChannelCounters) MaxActive() int32 {
	cc.Flush()
	var m int32
	for _, v := range cc.ActiveHWM {
		if v > m {
			m = v
		}
	}
	return m
}

// HotLink is one row of the paper-style counter readout.
type HotLink struct {
	Channel topo.ChannelID
	// From/To label the channel's endpoints.
	From, To string
	// Bytes is XmitData; Wait is XmitWait; HWM the concurrent-flow
	// high-watermark.
	Bytes float64
	Wait  sim.Duration
	HWM   int32
	// Utilization is Bytes/(capacity*elapsed) for the elapsed passed to
	// HotLinks; 0 when elapsed is 0.
	Utilization float64
}

// HotLinks returns the top-n channels ranked by wait time (then bytes) —
// the `ibqueryerrors`/perfquery-style readout the paper used to find hot
// Fat-Tree uplinks. Channels with zero traffic are skipped.
func (cc *ChannelCounters) HotLinks(n int, elapsed sim.Duration) []HotLink {
	cc.Flush()
	var out []HotLink
	for c := range cc.XmitData {
		if cc.XmitData[c] == 0 && cc.XmitWait[c] == 0 {
			continue
		}
		cid := topo.ChannelID(c)
		l := cc.g.Link(cid)
		h := HotLink{
			Channel: cid,
			From:    cc.g.Nodes[cc.g.ChannelFrom(cid)].Label,
			To:      cc.g.Nodes[cc.g.ChannelTo(cid)].Label,
			Bytes:   cc.XmitData[c],
			Wait:    cc.XmitWait[c],
			HWM:     cc.ActiveHWM[c],
		}
		if elapsed > 0 && l.Bandwidth > 0 {
			h.Utilization = h.Bytes / (l.Bandwidth * float64(elapsed))
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Wait != out[j].Wait {
			return out[i].Wait > out[j].Wait
		}
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Channel < out[j].Channel
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// SwitchMatrix folds the directed channel counters into a switch x switch
// byte matrix: cell (i, j) holds the bytes sent from switch i to switch j
// over their direct links (parallel links summed). Terminal links are
// excluded. The index is the graph's switch creation order.
func (cc *ChannelCounters) SwitchMatrix() [][]float64 {
	cc.Flush()
	sws := cc.g.Switches()
	idx := make(map[topo.NodeID]int, len(sws))
	for i, s := range sws {
		idx[s] = i
	}
	m := make([][]float64, len(sws))
	for i := range m {
		m[i] = make([]float64, len(sws))
	}
	for c, b := range cc.XmitData {
		if b == 0 {
			continue
		}
		cid := topo.ChannelID(c)
		fi, fok := idx[cc.g.ChannelFrom(cid)]
		ti, tok := idx[cc.g.ChannelTo(cid)]
		if fok && tok {
			m[fi][ti] += b
		}
	}
	return m
}
