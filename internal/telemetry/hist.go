package telemetry

import "math/bits"

// Hist is a mergeable log-bucketed (HDR-style) histogram over non-negative
// samples. It replaces the sorted-slice percentile path for streaming runs,
// where per-message records leave memory the moment they close: the
// distribution survives as a few KB of integer bucket counts instead of an
// O(messages) float slice.
//
// Samples are quantized to integer "ticks" (value x Scale, rounded) and
// bucketed with the HDR scheme: ticks below 2^HistSubBits land in exact
// unit buckets; above, each power of two is split into 2^HistSubBits
// sub-buckets, bounding the relative bucket width by 2^-HistSubBits
// (~1.6%). Every counter is an integer, so merging histograms — across
// sweep cells, worker shards, or exported JSONL documents — is exactly
// commutative and associative: any merge order produces bit-identical
// state, which is what makes -j1 and -jN sweep snapshots comparable byte
// for byte (floats would accumulate in completion order and diverge).
//
// A Hist is not concurrency-safe; like the Collector it lives inside one
// single-threaded simulation. Cross-worker aggregation merges finished
// histograms in deterministic (cell-index) order after the pool drains.
type Hist struct {
	// Name labels the distribution in exported "hist" lines ("fct",
	// "queue_depth", "xmit_wait").
	Name string
	// Unit is the sample unit after dividing ticks by Scale ("s", "events").
	Unit string
	// Scale converts samples to ticks (1e9 for seconds -> nanoseconds;
	// 1 for naturally integer samples like queue depths).
	Scale float64

	count    uint64
	sumTicks uint64
	minTick  uint64
	maxTick  uint64
	counts   []uint64 // dense, indexed by bucketIndex; grown on demand
}

const (
	// HistSubBits fixes the resolution: 2^6 = 64 sub-buckets per power of
	// two, so any recorded tick is reproduced within a relative error of
	// 2^-6 (plus at most half a tick of quantization).
	HistSubBits = 6
	histSubCount = 1 << HistSubBits
)

// NewHist builds an empty histogram.
func NewHist(name, unit string, scale float64) *Hist {
	if scale <= 0 {
		scale = 1
	}
	return &Hist{Name: name, Unit: unit, Scale: scale}
}

// bucketIndex maps a tick to its bucket. Ticks below histSubCount are
// exact; above, the top HistSubBits+1 significant bits select the bucket.
func bucketIndex(u uint64) int {
	if u < histSubCount {
		return int(u)
	}
	h := bits.Len64(u) - 1 // u in [2^h, 2^(h+1)), h >= HistSubBits
	shift := uint(h - HistSubBits)
	return int(uint64(h-HistSubBits+1)<<HistSubBits + (u >> shift) - histSubCount)
}

// bucketMid returns the representative tick of bucket i: the exact value
// for unit buckets, the midpoint otherwise.
func bucketMid(i int) uint64 {
	if i < histSubCount {
		return uint64(i)
	}
	shift := uint(i>>HistSubBits) - 1 // bucket ordinal >= 1
	sub := uint64(i & (histSubCount - 1))
	lo := (histSubCount + sub) << shift
	return lo + uint64(1)<<shift/2
}

// Observe records one sample in the histogram's unit.
func (h *Hist) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	h.ObserveTick(uint64(v*h.Scale + 0.5))
}

// ObserveTick records one pre-quantized sample.
func (h *Hist) ObserveTick(u uint64) {
	i := bucketIndex(u)
	if i >= len(h.counts) {
		grown := make([]uint64, i+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[i]++
	h.sumTicks += u
	if h.count == 0 || u < h.minTick {
		h.minTick = u
	}
	if u > h.maxTick {
		h.maxTick = u
	}
	h.count++
}

// Count reports the number of recorded samples.
func (h *Hist) Count() uint64 { return h.count }

// Sum reports the exact sample sum (in units; the underlying tick sum is
// an integer, so it is merge-order independent).
func (h *Hist) Sum() float64 { return float64(h.sumTicks) / h.Scale }

// Mean reports the exact sample mean, 0 when empty.
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sumTicks) / float64(h.count) / h.Scale
}

// Min and Max report the exact extreme samples (0 when empty).
func (h *Hist) Min() float64 { return float64(h.minTick) / h.Scale }
func (h *Hist) Max() float64 { return float64(h.maxTick) / h.Scale }

// Quantile returns the q-quantile (nearest rank) with relative error
// bounded by 2^-HistSubBits plus half-tick quantization. Results are
// clamped to the exact [Min, Max] envelope.
func (h *Hist) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.count-1))
	// The extreme ranks are the min/max samples, which are tracked
	// exactly — no need to settle for a bucket midpoint.
	if rank == 0 {
		return h.Min()
	}
	if rank >= h.count-1 {
		return h.Max()
	}
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum > rank {
			u := bucketMid(i)
			if u < h.minTick {
				u = h.minTick
			}
			if u > h.maxTick {
				u = h.maxTick
			}
			return float64(u) / h.Scale
		}
	}
	return float64(h.maxTick) / h.Scale
}

// Merge folds o into h. The two histograms must agree on Scale (same tick
// quantization); Name/Unit are kept from h. Merging is commutative and
// associative: bucket counts, the tick sum and the extrema are integers,
// so any merge order yields bit-identical state.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.count == 0 {
		return
	}
	if o.Scale != h.Scale {
		panic("telemetry: merging histograms with different scales")
	}
	if len(o.counts) > len(h.counts) {
		grown := make([]uint64, len(o.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.count == 0 || o.minTick < h.minTick {
		h.minTick = o.minTick
	}
	if o.maxTick > h.maxTick {
		h.maxTick = o.maxTick
	}
	h.count += o.count
	h.sumTicks += o.sumTicks
}

// Clone returns an independent copy.
func (h *Hist) Clone() *Hist {
	c := *h
	c.counts = append([]uint64(nil), h.counts...)
	return &c
}

// HistSnapshot is the compact exportable state: sparse sorted bucket
// indexes with their counts plus the exact integer aggregates. Two
// histograms built from the same multiset of ticks produce byte-identical
// snapshots regardless of observation or merge order.
type HistSnapshot struct {
	Name     string   `json:"name"`
	Unit     string   `json:"unit"`
	Scale    float64  `json:"scale"`
	SubBits  int      `json:"sub_bits"`
	Count    uint64   `json:"count"`
	SumTicks uint64   `json:"sum_ticks"`
	MinTick  uint64   `json:"min_tick"`
	MaxTick  uint64   `json:"max_tick"`
	Buckets  []int32  `json:"buckets"`
	Counts   []uint64 `json:"counts"`
}

// Snapshot extracts the exportable state (buckets ascending, zero buckets
// skipped).
func (h *Hist) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Name: h.Name, Unit: h.Unit, Scale: h.Scale, SubBits: HistSubBits,
		Count: h.count, SumTicks: h.sumTicks, MinTick: h.minTick, MaxTick: h.maxTick,
		Buckets: []int32{}, Counts: []uint64{},
	}
	for i, c := range h.counts {
		if c != 0 {
			s.Buckets = append(s.Buckets, int32(i))
			s.Counts = append(s.Counts, c)
		}
	}
	return s
}

// HistFromSnapshot rebuilds a histogram from exported state, so JSONL
// "hist" lines from different shards/runs can be re-merged offline.
func HistFromSnapshot(s HistSnapshot) *Hist {
	h := NewHist(s.Name, s.Unit, s.Scale)
	h.count, h.sumTicks, h.minTick, h.maxTick = s.Count, s.SumTicks, s.MinTick, s.MaxTick
	for k, i := range s.Buckets {
		if int(i) >= len(h.counts) {
			grown := make([]uint64, i+1)
			copy(grown, h.counts)
			h.counts = grown
		}
		h.counts[i] = s.Counts[k]
	}
	return h
}
