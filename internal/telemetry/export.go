package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"github.com/hpcsim/t2hx/internal/sim"
)

// JSONL export: one self-describing object per line, distinguished by a
// "kind" field — a "run" summary first, then one "msg" line per recorded
// message and one "chan" line per fabric channel that saw traffic. The
// format is grep/jq-friendly and append-mergeable across runs.

type runLine struct {
	Kind      string  `json:"kind"` // "run"
	Plane     int     `json:"plane"`
	PlaneName string  `json:"plane_name,omitempty"`
	Messages  int     `json:"messages"`
	Delivered int     `json:"delivered"`
	Bytes     float64 `json:"bytes"`
	BytesHops float64 `json:"bytes_hops"`
	XmitData  float64 `json:"xmit_data_total"`
	FCTp50    float64 `json:"fct_p50_s"`
	FCTp95    float64 `json:"fct_p95_s"`
	FCTp99    float64 `json:"fct_p99_s"`
	FCTMax    float64 `json:"fct_max_s"`
	HCAWaitS  float64 `json:"hca_wait_s"`
	Events    uint64  `json:"engine_events"`
	MaxQueue  int     `json:"engine_max_queue"`
}

type msgLine struct {
	Kind         string  `json:"kind"` // "msg"
	Plane        int     `json:"plane"`
	Src          int32   `json:"src"`
	Dst          int32   `json:"dst"`
	Size         int64   `json:"size"`
	Issued       float64 `json:"issued_s"`
	Wired        float64 `json:"wired_s"`
	Finished     float64 `json:"finished_s"`
	FCT          float64 `json:"fct_s"`
	Hops         int     `json:"hops"`
	Retries      int     `json:"retries,omitempty"`
	Delivered    bool    `json:"delivered"`
	Redispatched bool    `json:"redispatched,omitempty"`
}

type chanLine struct {
	Kind     string  `json:"kind"` // "chan"
	Plane    int     `json:"plane"`
	Channel  int32   `json:"channel"`
	From     string  `json:"from"`
	To       string  `json:"to"`
	XmitData float64 `json:"xmit_data"`
	XmitWait float64 `json:"xmit_wait_s"`
	HWM      int32   `json:"active_hwm"`
}

// WriteMetricsJSONL writes the run summary, message records and channel
// counters as JSON lines.
func (c *Collector) WriteMetricsJSONL(w io.Writer) error {
	return c.writeMetrics(json.NewEncoder(w))
}

// writeMetrics streams the collector's lines onto an existing encoder, so
// Multi can interleave several planes into one document.
func (c *Collector) writeMetrics(enc *json.Encoder) error {
	s := c.FCTSummary()
	run := runLine{
		Kind: "run", Plane: c.Plane, PlaneName: c.PlaneName,
		Messages: s.N, Delivered: s.Delivered,
		Bytes: s.Bytes, BytesHops: s.BytesHops,
		FCTp50: float64(s.P50), FCTp95: float64(s.P95),
		FCTp99: float64(s.P99), FCTMax: float64(s.Max),
		Events: c.EventsProcessed(), MaxQueue: c.MaxQueueDepth,
	}
	if c.Chans != nil {
		run.XmitData = c.Chans.TotalXmitData()
		run.HCAWaitS = float64(c.Chans.HCAWait)
	}
	if err := enc.Encode(run); err != nil {
		return err
	}
	for i := range c.Msgs {
		r := &c.Msgs[i]
		if err := enc.Encode(msgLine{
			Kind: "msg", Plane: c.Plane, Src: int32(r.Src), Dst: int32(r.Dst), Size: r.Size,
			Issued: float64(r.Issued), Wired: float64(r.Wired),
			Finished: float64(r.Finished), FCT: float64(r.FCT()),
			Hops: r.Hops, Retries: r.Retries, Delivered: r.Delivered,
			Redispatched: r.Redispatched,
		}); err != nil {
			return err
		}
	}
	if c.Chans != nil {
		for _, h := range c.Chans.HotLinks(0, 0) {
			if err := enc.Encode(chanLine{
				Kind: "chan", Plane: c.Plane, Channel: int32(h.Channel), From: h.From, To: h.To,
				XmitData: h.Bytes, XmitWait: float64(h.Wait), HWM: h.HWM,
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteChannelCSV writes the per-channel counters as CSV (channels with
// traffic only), for spreadsheet/pandas consumption.
func (c *Collector) WriteChannelCSV(w io.Writer) error {
	if c.Chans == nil {
		return fmt.Errorf("telemetry: channel counters not enabled")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"channel", "from", "to", "xmit_data_bytes", "xmit_wait_s", "active_hwm"}); err != nil {
		return err
	}
	for _, h := range c.Chans.HotLinks(0, 0) {
		rec := []string{
			strconv.Itoa(int(h.Channel)), h.From, h.To,
			strconv.FormatFloat(h.Bytes, 'g', 10, 64),
			strconv.FormatFloat(float64(h.Wait), 'g', 10, 64),
			strconv.Itoa(int(h.HWM)),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FprintHotLinks renders the paper-style top-n counter readout (the
// PortXmitData/PortXmitWait table read off TSUBAME2's switches) to w.
func FprintHotLinks(w io.Writer, cc *ChannelCounters, n int, elapsed sim.Duration) {
	hot := cc.HotLinks(n, elapsed)
	fmt.Fprintf(w, "top %d channels by XmitWait (of %d with traffic):\n", len(hot), len(cc.HotLinks(0, 0)))
	fmt.Fprintf(w, "  %-24s %-24s %12s %12s %6s %6s\n", "from", "to", "XmitData", "XmitWait", "util", "flows")
	for _, h := range hot {
		fmt.Fprintf(w, "  %-24s %-24s %10.1fMB %10.3fms %5.1f%% %6d\n",
			h.From, h.To, h.Bytes/1e6, 1e3*float64(h.Wait), 100*h.Utilization, h.HWM)
	}
	if cc.HCAWait > 0 {
		fmt.Fprintf(w, "  (HCA/node-bandwidth wait, not on any cable: %.3fms)\n", 1e3*float64(cc.HCAWait))
	}
}
