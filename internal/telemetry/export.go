package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"github.com/hpcsim/t2hx/internal/sim"
)

// JSONL export: one self-describing object per line, distinguished by a
// "kind" field — a "run" summary, one "msg" line per recorded message, one
// "hist" line per distribution (FCT, engine queue depth, per-channel
// XmitWait), and one "chan" line per fabric channel that saw traffic. The
// format is grep/jq-friendly and append-mergeable across runs.
//
// Buffered exports (WriteMetricsJSONL) put the "run" line first; streaming
// exports necessarily invert that — "msg" lines appear as messages finish,
// and FinishStream appends "hist", "chan" and finally "run" when the run's
// totals are known. Consumers must key on "kind", not position.

type runLine struct {
	Kind      string  `json:"kind"` // "run"
	Plane     int     `json:"plane"`
	PlaneName string  `json:"plane_name,omitempty"`
	Messages  int     `json:"messages"`
	Delivered int     `json:"delivered"`
	Bytes     float64 `json:"bytes"`
	BytesHops float64 `json:"bytes_hops"`
	XmitData  float64 `json:"xmit_data_total"`
	FCTp50    float64 `json:"fct_p50_s"`
	FCTp95    float64 `json:"fct_p95_s"`
	FCTp99    float64 `json:"fct_p99_s"`
	FCTMax    float64 `json:"fct_max_s"`
	HCAWaitS  float64 `json:"hca_wait_s"`
	Events    uint64  `json:"engine_events"`
	MaxQueue  int     `json:"engine_max_queue"`
}

func (runLine) LineKind() string { return "run" }

type msgLine struct {
	Kind         string  `json:"kind"` // "msg"
	Plane        int     `json:"plane"`
	Src          int32   `json:"src"`
	Dst          int32   `json:"dst"`
	Size         int64   `json:"size"`
	Issued       float64 `json:"issued_s"`
	Wired        float64 `json:"wired_s"`
	Finished     float64 `json:"finished_s"`
	FCT          float64 `json:"fct_s"`
	Hops         int     `json:"hops"`
	Retries      int     `json:"retries,omitempty"`
	Delivered    bool    `json:"delivered"`
	Redispatched bool    `json:"redispatched,omitempty"`
}

func (msgLine) LineKind() string { return "msg" }

type chanLine struct {
	Kind     string  `json:"kind"` // "chan"
	Plane    int     `json:"plane"`
	Channel  int32   `json:"channel"`
	From     string  `json:"from"`
	To       string  `json:"to"`
	XmitData float64 `json:"xmit_data"`
	XmitWait float64 `json:"xmit_wait_s"`
	HWM      int32   `json:"active_hwm"`
}

func (chanLine) LineKind() string { return "chan" }

// histLine is one exported distribution: the convenience percentiles plus
// the full mergeable bucket state (see HistSnapshot), so offline tooling
// can re-merge shards from several runs or planes and recompute any
// quantile.
type histLine struct {
	Kind  string  `json:"kind"` // "hist"
	Plane int     `json:"plane"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Mean  float64 `json:"mean"`
	HistSnapshot
}

func (histLine) LineKind() string { return "hist" }

// makeMsgLine renders a closed record as its export line.
func makeMsgLine(plane int, r *MsgRecord) msgLine {
	return msgLine{
		Kind: "msg", Plane: plane, Src: int32(r.Src), Dst: int32(r.Dst), Size: r.Size,
		Issued: float64(r.Issued), Wired: float64(r.Wired),
		Finished: float64(r.Finished), FCT: float64(r.FCT()),
		Hops: r.Hops, Retries: r.Retries, Delivered: r.Delivered,
		Redispatched: r.Redispatched,
	}
}

// makeHistLine renders a histogram with its convenience percentiles.
func makeHistLine(plane int, h *Hist) histLine {
	return histLine{
		Kind: "hist", Plane: plane,
		P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
		Mean: h.Mean(), HistSnapshot: h.Snapshot(),
	}
}

// makeRunLine reduces the collector to its summary line.
func (c *Collector) makeRunLine() runLine {
	s := c.FCTSummary()
	run := runLine{
		Kind: "run", Plane: c.Plane, PlaneName: c.PlaneName,
		Messages: s.N, Delivered: s.Delivered,
		Bytes: s.Bytes, BytesHops: s.BytesHops,
		FCTp50: float64(s.P50), FCTp95: float64(s.P95),
		FCTp99: float64(s.P99), FCTMax: float64(s.Max),
		Events: c.EventsProcessed(), MaxQueue: c.MaxQueueDepth,
	}
	if c.Chans != nil {
		run.XmitData = c.Chans.TotalXmitData() // flushes outstanding integrals
		run.HCAWaitS = float64(c.Chans.HCAWait)
	}
	return run
}

// histLines assembles the collector's distribution lines: FCT (when
// message recording is on), engine queue depth (when an engine ran), and
// the per-channel XmitWait distribution derived from the counters.
func (c *Collector) histLines() []histLine {
	var out []histLine
	if c.FCTHist != nil && c.FCTHist.Count() > 0 {
		out = append(out, makeHistLine(c.Plane, c.FCTHist))
	}
	if c.QueueHist != nil && c.QueueHist.Count() > 0 {
		out = append(out, makeHistLine(c.Plane, c.QueueHist))
	}
	if c.Chans != nil {
		c.Chans.Flush() // reading the XmitWait slice directly
		xw := NewHist("xmit_wait", "s", 1e9)
		for _, w := range c.Chans.XmitWait {
			if w > 0 {
				xw.Observe(float64(w))
			}
		}
		if xw.Count() > 0 {
			out = append(out, makeHistLine(c.Plane, xw))
		}
	}
	return out
}

// chanLines assembles the per-channel counter lines (channels with
// traffic only).
func (c *Collector) chanLines() []chanLine {
	if c.Chans == nil {
		return nil
	}
	hot := c.Chans.HotLinks(0, 0)
	out := make([]chanLine, 0, len(hot))
	for _, h := range hot {
		out = append(out, chanLine{
			Kind: "chan", Plane: c.Plane, Channel: int32(h.Channel), From: h.From, To: h.To,
			XmitData: h.Bytes, XmitWait: float64(h.Wait), HWM: h.HWM,
		})
	}
	return out
}

// WriteMetricsJSONL writes the run summary, message records, distribution
// lines and channel counters as JSON lines (buffered export; requires a
// retaining collector for the msg lines).
func (c *Collector) WriteMetricsJSONL(w io.Writer) error {
	return c.writeMetrics(json.NewEncoder(w))
}

// writeMetrics streams the collector's lines onto an existing encoder, so
// Multi can interleave several planes into one document.
func (c *Collector) writeMetrics(enc *json.Encoder) error {
	if err := enc.Encode(c.makeRunLine()); err != nil {
		return err
	}
	for i := range c.Msgs {
		if err := enc.Encode(makeMsgLine(c.Plane, &c.Msgs[i])); err != nil {
			return err
		}
	}
	for _, hl := range c.histLines() {
		if err := enc.Encode(hl); err != nil {
			return err
		}
	}
	for _, cl := range c.chanLines() {
		if err := enc.Encode(cl); err != nil {
			return err
		}
	}
	return nil
}

// writeStreamFooter emits the trailing summary lines of a streaming
// export ("hist", "chan", then "run") through the sink.
func (c *Collector) writeStreamFooter() {
	for _, hl := range c.histLines() {
		c.emit(hl)
	}
	for _, cl := range c.chanLines() {
		c.emit(cl)
	}
	c.emit(c.makeRunLine())
}

// FinishStream completes a streaming export: the trailing summary lines,
// a final flush, and the sink's Close. It returns the first error the
// export saw — including write failures latched mid-run — so callers can
// exit non-zero instead of shipping a silently truncated metrics file. A
// collector without a sink returns nil.
func (c *Collector) FinishStream() error {
	if c.sink == nil {
		return nil
	}
	c.writeStreamFooter()
	err := c.sinkErr
	if cerr := c.sink.Close(); err == nil {
		err = cerr
	}
	c.sink = nil
	return err
}

// WriteChannelCSV writes the per-channel counters as CSV (channels with
// traffic only), for spreadsheet/pandas consumption.
func (c *Collector) WriteChannelCSV(w io.Writer) error {
	if c.Chans == nil {
		return fmt.Errorf("telemetry: channel counters not enabled")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"channel", "from", "to", "xmit_data_bytes", "xmit_wait_s", "active_hwm"}); err != nil {
		return err
	}
	for _, h := range c.Chans.HotLinks(0, 0) {
		rec := []string{
			strconv.Itoa(int(h.Channel)), h.From, h.To,
			strconv.FormatFloat(h.Bytes, 'g', 10, 64),
			strconv.FormatFloat(float64(h.Wait), 'g', 10, 64),
			strconv.Itoa(int(h.HWM)),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FprintHotLinks renders the paper-style top-n counter readout (the
// PortXmitData/PortXmitWait table read off TSUBAME2's switches) to w,
// reporting the first write error instead of dropping rows silently.
func FprintHotLinks(w io.Writer, cc *ChannelCounters, n int, elapsed sim.Duration) error {
	hot := cc.HotLinks(n, elapsed)
	if _, err := fmt.Fprintf(w, "top %d channels by XmitWait (of %d with traffic):\n", len(hot), len(cc.HotLinks(0, 0))); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-24s %-24s %12s %12s %6s %6s\n", "from", "to", "XmitData", "XmitWait", "util", "flows"); err != nil {
		return err
	}
	for _, h := range hot {
		if _, err := fmt.Fprintf(w, "  %-24s %-24s %10.1fMB %10.3fms %5.1f%% %6d\n",
			h.From, h.To, h.Bytes/1e6, 1e3*float64(h.Wait), 100*h.Utilization, h.HWM); err != nil {
			return err
		}
	}
	if cc.HCAWait > 0 {
		if _, err := fmt.Fprintf(w, "  (HCA/node-bandwidth wait, not on any cable: %.3fms)\n", 1e3*float64(cc.HCAWait)); err != nil {
			return err
		}
	}
	return nil
}
