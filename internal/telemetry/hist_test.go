package telemetry

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// histSamples draws a deterministic heavy-tailed sample set resembling FCT
// distributions (many small values, a long tail).
func histSamples(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Exp(rng.NormFloat64()*2 - 8) // lognormal around ~0.3ms
	}
	return out
}

func TestHistBucketIndexMonotonic(t *testing.T) {
	prev := -1
	for u := uint64(0); u < 1<<16; u++ {
		i := bucketIndex(u)
		if i < prev {
			t.Fatalf("bucketIndex not monotonic at %d: %d < %d", u, i, prev)
		}
		prev = i
		if u < histSubCount && bucketMid(i) != u {
			t.Fatalf("tick %d below 2^%d not exact: mid %d", u, HistSubBits, bucketMid(i))
		}
	}
}

func TestHistBucketMidWithinBucket(t *testing.T) {
	for _, u := range []uint64{0, 1, 63, 64, 65, 1000, 1 << 20, 1<<40 + 12345} {
		i := bucketIndex(u)
		mid := bucketMid(i)
		if bucketIndex(mid) != i {
			t.Fatalf("mid %d of bucket %d (tick %d) falls in bucket %d", mid, i, u, bucketIndex(mid))
		}
		if rel := math.Abs(float64(mid)-float64(u)) / math.Max(float64(u), 1); rel > math.Pow(2, -HistSubBits) {
			t.Fatalf("tick %d: mid %d off by rel %.4g > 2^-%d", u, mid, rel, HistSubBits)
		}
	}
}

// TestHistMergeDeterminism is the -j1 ≡ -jN foundation: splitting a sample
// set into shards and merging them in any order must produce bit-identical
// histogram state.
func TestHistMergeDeterminism(t *testing.T) {
	samples := histSamples(10000, 1)
	const shards = 8

	build := func(order []int) HistSnapshot {
		hs := make([]*Hist, shards)
		for i := range hs {
			hs[i] = NewHist("fct", "s", 1e9)
		}
		for i, v := range samples {
			hs[i%shards].Observe(v)
		}
		merged := NewHist("fct", "s", 1e9)
		for _, k := range order {
			merged.Merge(hs[k])
		}
		return merged.Snapshot()
	}

	base := []int{0, 1, 2, 3, 4, 5, 6, 7}
	want := build(base)
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		order := append([]int(nil), base...)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		got := build(order)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("merge order %v produced different snapshot", order)
		}
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(gotJSON) != string(wantJSON) {
			t.Fatalf("merge order %v produced different snapshot bytes", order)
		}
	}

	// Sharded state must also equal direct observation of the full set.
	direct := NewHist("fct", "s", 1e9)
	for _, v := range samples {
		direct.Observe(v)
	}
	if !reflect.DeepEqual(direct.Snapshot(), want) {
		t.Fatal("sharded merge differs from direct observation")
	}
}

// TestHistQuantileErrorBound checks the advertised accuracy against the
// exact nearest-rank quantile of the quantized sample set.
func TestHistQuantileErrorBound(t *testing.T) {
	for _, n := range []int{1, 10, 100, 1000, 10000} {
		samples := histSamples(n, int64(n))
		h := NewHist("fct", "s", 1e9)
		ticks := make([]uint64, n)
		for i, v := range samples {
			h.Observe(v)
			ticks[i] = uint64(v*1e9 + 0.5)
		}
		sort.Slice(ticks, func(i, j int) bool { return ticks[i] < ticks[j] })
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
			exact := float64(ticks[int(q*float64(n-1))]) / 1e9
			got := h.Quantile(q)
			// Bucket width bounds the relative error; half a tick the
			// absolute quantization error.
			tol := exact*math.Pow(2, -HistSubBits) + 1.0/1e9
			if math.Abs(got-exact) > tol {
				t.Fatalf("n=%d q=%.2f: got %.6g, exact %.6g (err %.3g > tol %.3g)",
					n, q, got, exact, math.Abs(got-exact), tol)
			}
		}
		if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
			t.Fatalf("n=%d: quantile envelope [%g, %g] != [min %g, max %g]",
				n, h.Quantile(0), h.Quantile(1), h.Min(), h.Max())
		}
	}
}

func TestHistExactAggregates(t *testing.T) {
	samples := []float64{1e-6, 2e-6, 3e-6, 4e-6}
	h := NewHist("fct", "s", 1e9)
	var sum float64
	for _, v := range samples {
		h.Observe(v)
		sum += v
	}
	if h.Count() != 4 {
		t.Fatalf("count %d", h.Count())
	}
	if math.Abs(h.Sum()-sum) > 1e-12 {
		t.Fatalf("sum %g != %g", h.Sum(), sum)
	}
	if math.Abs(h.Mean()-sum/4) > 1e-12 {
		t.Fatalf("mean %g != %g", h.Mean(), sum/4)
	}
	if h.Min() != 1e-6 || h.Max() != 4e-6 {
		t.Fatalf("min/max %g/%g", h.Min(), h.Max())
	}
}

func TestHistSnapshotRoundTrip(t *testing.T) {
	h := NewHist("queue_depth", "events", 1)
	for _, u := range []uint64{0, 0, 1, 5, 63, 64, 100, 1 << 20} {
		h.ObserveTick(u)
	}
	snap := h.Snapshot()
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded HistSnapshot
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	back := HistFromSnapshot(decoded)
	if !reflect.DeepEqual(back.Snapshot(), snap) {
		t.Fatal("snapshot -> JSON -> hist -> snapshot round trip diverged")
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if back.Quantile(q) != h.Quantile(q) {
			t.Fatalf("q=%.2f: %g != %g after round trip", q, back.Quantile(q), h.Quantile(q))
		}
	}
}

func TestHistMergeScaleMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging different scales did not panic")
		}
	}()
	a := NewHist("a", "s", 1e9)
	b := NewHist("b", "s", 1e6)
	b.Observe(1)
	a.Merge(b)
}
