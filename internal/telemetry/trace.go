package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/hpcsim/t2hx/internal/sim"
)

// The event trace uses the Chrome trace_event JSON-array format, loadable
// in chrome://tracing and Perfetto: each event carries a phase ("X" =
// complete span with duration, "i" = instant), microsecond timestamps, and
// a (pid, tid) lane. We map layers to pids (1 = fabric traffic, 2 = subnet
// manager / faults) and, for messages, the source terminal index to tid so
// each sender renders as its own lane.

const (
	// TracePidFabric is the trace process lane for message traffic.
	TracePidFabric = 1
	// TracePidSM is the trace process lane for faults and SM sweeps.
	TracePidSM = 2
	// TracePlaneStride separates the pid lanes of successive planes of a
	// multi-plane machine: plane p's fabric traffic renders as pid
	// TracePidFabric + p*TracePlaneStride, its subnet manager as
	// TracePidSM + p*TracePlaneStride. The stride is applied inside
	// Span/Instant from the collector's Plane field, so every layer that
	// traces through a plane's collector lands on that plane's lanes.
	TracePlaneStride = 10
)

type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

func (traceEvent) LineKind() string { return "trace" }

func usec(t sim.Time) float64 { return 1e6 * float64(t) }

// SetTraceSink streams trace events out as they are recorded instead of
// buffering the timeline: the pid-lane metadata goes out immediately, every
// later Span/Instant follows, and FinishTraceStream seals the document.
// Unless Opts.Retain is set, events are no longer kept in memory (TraceLen
// stays 0). Pair it with a TraceSink for a valid Chrome trace_event file.
func (c *Collector) SetTraceSink(s Sink) {
	c.traceSink = s
	if s != nil {
		for _, ev := range c.metaEvents() {
			c.emitTrace(ev)
		}
	}
}

// emitTrace routes one event to the trace sink and/or the in-memory buffer.
func (c *Collector) emitTrace(ev traceEvent) {
	if c.traceSink != nil {
		if c.traceErr == nil {
			if err := c.traceSink.Write(ev); err != nil {
				c.traceErr = err
			}
		}
		if !c.Opts.Retain {
			return
		}
	}
	c.trace = append(c.trace, ev)
}

// FinishTraceStream seals the streaming trace document and closes the
// sink, returning the first error the trace export saw. A collector
// without a trace sink returns nil.
func (c *Collector) FinishTraceStream() error {
	if c.traceSink == nil {
		return nil
	}
	err := c.traceErr
	if cerr := c.traceSink.Close(); err == nil {
		err = cerr
	}
	c.traceSink = nil
	return err
}

// Span records a completed interval [start, end] on the given lane.
func (c *Collector) Span(pid, tid int, cat, name string, start, end sim.Time, args map[string]any) {
	if c == nil || !c.Opts.Trace {
		return
	}
	c.emitTrace(traceEvent{
		Name: name, Cat: cat, Ph: "X",
		Ts: usec(start), Dur: usec(end - start),
		Pid: pid + TracePlaneStride*c.Plane, Tid: tid, Args: args,
	})
}

// Instant records a point event on the given lane.
func (c *Collector) Instant(pid, tid int, cat, name string, at sim.Time, args map[string]any) {
	if c == nil || !c.Opts.Trace {
		return
	}
	c.emitTrace(traceEvent{
		Name: name, Cat: cat, Ph: "i", S: "t",
		Ts: usec(at), Pid: pid + TracePlaneStride*c.Plane, Tid: tid, Args: args,
	})
}

// traceMsg emits a closed message record as a lifecycle span on the
// sender's lane.
func (c *Collector) traceMsg(r *MsgRecord) {
	if !c.Opts.Trace {
		return
	}
	name := fmt.Sprintf("msg %d->%d", r.Src, r.Dst)
	cat := "msg"
	switch {
	case r.Redispatched:
		cat = "msg-redispatched"
	case !r.Delivered:
		cat = "msg-lost"
	}
	args := map[string]any{"bytes": r.Size, "hops": r.Hops}
	if r.Retries > 0 {
		args["retries"] = r.Retries
	}
	c.Span(TracePidFabric, int(r.Src), cat, name, r.Issued, r.Finished, args)
}

// TraceLen reports the number of buffered trace events.
func (c *Collector) TraceLen() int {
	if c == nil {
		return 0
	}
	return len(c.trace)
}

// metaEvents names the collector's pid lanes with "M"-phase process_name
// metadata, so Perfetto shows "fabric [hyperx]" instead of a bare pid.
func (c *Collector) metaEvents() []traceEvent {
	if !c.Opts.Trace {
		return nil
	}
	suffix := ""
	if c.PlaneName != "" {
		suffix = " [" + c.PlaneName + "]"
	}
	name := func(n string) map[string]any { return map[string]any{"name": n + suffix} }
	return []traceEvent{
		{Name: "process_name", Ph: "M", Pid: TracePidFabric + TracePlaneStride*c.Plane, Args: name("fabric")},
		{Name: "process_name", Ph: "M", Pid: TracePidSM + TracePlaneStride*c.Plane, Args: name("subnet-manager")},
	}
}

// WriteTrace emits the buffered timeline as Chrome trace_event JSON
// (object form with a traceEvents array, displayTimeUnit ms).
func (c *Collector) WriteTrace(w io.Writer) error {
	return writeTraceDoc(w, append(c.metaEvents(), c.trace...))
}

// writeTraceDoc encodes a trace_event document around any event list.
func writeTraceDoc(w io.Writer, events []traceEvent) error {
	if events == nil {
		events = []traceEvent{}
	}
	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{events, "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
