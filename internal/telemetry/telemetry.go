// Package telemetry is the observability layer of the simulated fabric:
// InfiniBand-style per-channel counters (PortXmitData/PortXmitWait
// analogues), per-message flow-completion records, a Chrome
// trace_event-compatible event trace, and JSONL/CSV export.
//
// Domke et al. diagnosed the HyperX-vs-Fat-Tree congestion behaviour on the
// real TSUBAME2 by reading exactly these counters off the switches; this
// package gives the simulator the same lens. A Collector is attached to a
// fabric with (*fabric.Fabric).AttachTelemetry; every layer it observes
// (sim engine, flow network, fabric, subnet manager) carries a nil-checked
// hook, so a fabric without a collector pays nothing.
//
// Counters are sampled on the flow network's rate-recompute events — the
// instants at which per-flow rates change — so the byte and wait-time
// integrals are exact, not polled approximations. The central invariant
// (tested in telemetry's integration tests) is conservation: the sum of
// XmitData over all fabric channels equals the sum over delivered messages
// of bytes x path-hops.
package telemetry

import (
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// Options select what a Collector records.
type Options struct {
	// Counters enables the per-channel IB-style counter set. On by
	// default via New.
	Counters bool
	// Messages enables per-message records (FCT distributions).
	Messages bool
	// Trace enables the Chrome trace_event timeline (message lifecycle
	// spans, fault instants, subnet-manager sweeps).
	Trace bool
}

// All enables every recording surface.
func All() Options { return Options{Counters: true, Messages: true, Trace: true} }

// Collector accumulates one run's observability data. It is not
// concurrency-safe: the simulation is single-threaded by construction.
type Collector struct {
	Opts Options

	// Plane identifies the network plane this collector observes (0 for
	// single-plane machines) and PlaneName its display label. On
	// multi-plane machines each plane gets its own collector (see Multi);
	// the plane id is threaded through trace pid lanes and exported rows
	// so per-plane traffic stays separable after export.
	Plane     int
	PlaneName string

	// Chans is the per-channel counter set; nil when Opts.Counters is
	// false.
	Chans *ChannelCounters
	// Msgs holds one record per submitted message when Opts.Messages is
	// set.
	Msgs []MsgRecord

	trace []traceEvent

	// MaxQueueDepth is the high-watermark of the engine's pending-event
	// queue, sampled per executed event when an engine is attached.
	MaxQueueDepth int

	eng *sim.Engine
}

// New builds a collector over g's channels with the given options.
func New(g *topo.Graph, opts Options) *Collector {
	c := &Collector{Opts: opts}
	if opts.Counters {
		c.Chans = NewChannelCounters(g)
	}
	return c
}

// AttachEngine hooks the collector into the event loop to sample queue
// depth. The fabric's AttachTelemetry calls this; standalone users may too.
func (c *Collector) AttachEngine(eng *sim.Engine) {
	c.eng = eng
	eng.OnStep = func(_ sim.Time, pending int) {
		if pending > c.MaxQueueDepth {
			c.MaxQueueDepth = pending
		}
	}
}

// EventsProcessed reports the attached engine's executed-event count, or 0
// without an engine.
func (c *Collector) EventsProcessed() uint64 {
	if c.eng == nil {
		return 0
	}
	return c.eng.Processed
}

// Now reports the attached engine's current simulated time — after a run,
// the elapsed makespan the utilization columns normalize by.
func (c *Collector) Now() sim.Time {
	if c.eng == nil {
		return 0
	}
	return c.eng.Now()
}
