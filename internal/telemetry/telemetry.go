// Package telemetry is the observability layer of the simulated fabric:
// InfiniBand-style per-channel counters (PortXmitData/PortXmitWait
// analogues), per-message flow-completion records, a Chrome
// trace_event-compatible event trace, and JSONL/CSV export.
//
// Domke et al. diagnosed the HyperX-vs-Fat-Tree congestion behaviour on the
// real TSUBAME2 by reading exactly these counters off the switches; this
// package gives the simulator the same lens. A Collector is attached to a
// fabric with (*fabric.Fabric).AttachTelemetry; every layer it observes
// (sim engine, flow network, fabric, subnet manager) carries a nil-checked
// hook, so a fabric without a collector pays nothing.
//
// Counters are sampled on the flow network's rate-recompute events — the
// instants at which per-flow rates change — so the byte and wait-time
// integrals are exact, not polled approximations. The central invariant
// (tested in telemetry's integration tests) is conservation: the sum of
// XmitData over all fabric channels equals the sum over delivered messages
// of bytes x path-hops.
package telemetry

import (
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// Options select what a Collector records.
type Options struct {
	// Counters enables the per-channel IB-style counter set. On by
	// default via New.
	Counters bool
	// Messages enables per-message records (FCT distributions).
	Messages bool
	// Trace enables the Chrome trace_event timeline (message lifecycle
	// spans, fault instants, subnet-manager sweeps).
	Trace bool
	// Retain keeps closed message records (and trace events) in memory
	// even when a sink is attached — the buffered pre-sink API that tests
	// and the figure pipelines scan after the run. Without a sink,
	// retention is implied and this flag is ignored.
	Retain bool
}

// All enables every recording surface.
func All() Options { return Options{Counters: true, Messages: true, Trace: true} }

// Collector accumulates one run's observability data. It is not
// concurrency-safe: the simulation is single-threaded by construction.
type Collector struct {
	Opts Options

	// Plane identifies the network plane this collector observes (0 for
	// single-plane machines) and PlaneName its display label. On
	// multi-plane machines each plane gets its own collector (see Multi);
	// the plane id is threaded through trace pid lanes and exported rows
	// so per-plane traffic stays separable after export.
	Plane     int
	PlaneName string

	// Chans is the per-channel counter set; nil when Opts.Counters is
	// false.
	Chans *ChannelCounters
	// Msgs holds one record per submitted message when Opts.Messages is
	// set and the collector retains (no sink, or Opts.Retain). With a
	// sink attached and retention off, closed records leave memory as
	// "msg" lines and Msgs stays empty.
	Msgs []MsgRecord

	// FCTHist is the mergeable completion-time distribution of delivered
	// messages (unit seconds); nil unless Opts.Messages. It is maintained
	// in both retained and streaming modes, so percentile lines survive
	// runs whose per-message records do not.
	FCTHist *Hist
	// QueueHist is the engine pending-event-queue depth distribution,
	// sampled per executed event once an engine is attached.
	QueueHist *Hist

	trace []traceEvent

	// MaxQueueDepth is the high-watermark of the engine's pending-event
	// queue, sampled per executed event when an engine is attached.
	MaxQueueDepth int

	eng *sim.Engine

	// Streaming state: sink receives closed records as lines; traceSink
	// receives trace events. sinkErr latches the first write failure
	// (surfaced by FinishStream / SinkErr). retain mirrors "no sink or
	// Opts.Retain". open/freeSlots form the O(concurrent-messages) slot
	// table replacing Msgs in streaming mode.
	sink      Sink
	traceSink Sink
	sinkErr   error
	traceErr  error
	retain    bool
	open      []MsgRecord
	freeSlots []int
	agg       streamAgg
}

// streamAgg accumulates the run-summary aggregates that the retained path
// would recompute by scanning Msgs; in streaming mode it is the only
// per-run message state besides the histograms.
type streamAgg struct {
	started   int
	delivered int
	bytes     float64
	bytesHops float64
	fctSum    float64
	fctMax    float64
}

// New builds a collector over g's channels with the given options.
func New(g *topo.Graph, opts Options) *Collector {
	c := &Collector{Opts: opts, retain: true}
	if opts.Counters {
		c.Chans = NewChannelCounters(g)
	}
	if opts.Messages {
		c.FCTHist = NewHist("fct", "s", 1e9)
	}
	c.QueueHist = NewHist("queue_depth", "events", 1)
	return c
}

// SetSink attaches a streaming sink: every message record is written as a
// "msg" line the moment it closes, and FinishStream appends the trailing
// "hist"/"chan"/"run" summary lines. Unless Opts.Retain is set, records
// are no longer kept in Msgs — memory stays O(concurrently in-flight
// messages) for arbitrarily long runs. Attach before traffic starts;
// write errors latch into SinkErr and surface from FinishStream.
func (c *Collector) SetSink(s Sink) {
	c.sink = s
	c.retain = s == nil || c.Opts.Retain
}

// SinkErr reports the first error the attached sink returned, or nil.
func (c *Collector) SinkErr() error { return c.sinkErr }

// emit writes one line to the sink, latching the first failure.
func (c *Collector) emit(l Line) {
	if c.sink == nil || c.sinkErr != nil {
		return
	}
	if err := c.sink.Write(l); err != nil {
		c.sinkErr = err
	}
}

// AttachEngine hooks the collector into the event loop to sample queue
// depth. The fabric's AttachTelemetry calls this; standalone users may too.
func (c *Collector) AttachEngine(eng *sim.Engine) {
	c.eng = eng
	qh := c.QueueHist
	eng.OnStep = func(_ sim.Time, pending int) {
		if pending > c.MaxQueueDepth {
			c.MaxQueueDepth = pending
		}
		qh.ObserveTick(uint64(pending))
	}
}

// EventsProcessed reports the attached engine's executed-event count, or 0
// without an engine.
func (c *Collector) EventsProcessed() uint64 {
	if c.eng == nil {
		return 0
	}
	return c.eng.Processed
}

// Now reports the attached engine's current simulated time — after a run,
// the elapsed makespan the utilization columns normalize by.
func (c *Collector) Now() sim.Time {
	if c.eng == nil {
		return 0
	}
	return c.eng.Now()
}
