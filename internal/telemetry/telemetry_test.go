package telemetry_test

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"github.com/hpcsim/t2hx/internal/exp"
	"github.com/hpcsim/t2hx/internal/fabric"
	"github.com/hpcsim/t2hx/internal/flow"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/telemetry"
	"github.com/hpcsim/t2hx/internal/workloads"
)

// runWithCollector executes one trial of build on the combo's small plane
// with a fresh collector attached and returns it.
func runWithCollector(t *testing.T, combo exp.Combo, n int, opts telemetry.Options,
	build func(n int) (*workloads.Instance, error)) *telemetry.Collector {
	t.Helper()
	m, err := exp.BuildMachine(combo, exp.MachineConfig{Small: true, Degrade: true, Seed: 1})
	if err != nil {
		t.Fatalf("BuildMachine(%s): %v", combo.Name, err)
	}
	var col *telemetry.Collector
	_, _, err = exp.RunTrials(exp.TrialSpec{
		Machine: m, Nodes: n, Trials: 1, Seed: 1, Build: build,
		Attach: func(_ int, msgr fabric.Messenger) {
			col = telemetry.New(m.G, opts)
			msgr.(*fabric.Fabric).AttachTelemetry(col)
		},
	})
	if err != nil {
		t.Fatalf("RunTrials(%s): %v", combo.Name, err)
	}
	if col == nil {
		t.Fatal("Attach hook never ran")
	}
	return col
}

// TestConservationAcrossCombos checks the package's central invariant on
// every paper combo: the sum of XmitData over all fabric channels equals
// the sum over delivered messages of bytes x path-hops.
func TestConservationAcrossCombos(t *testing.T) {
	for _, combo := range exp.PaperCombos() {
		combo := combo
		t.Run(combo.Name, func(t *testing.T) {
			col := runWithCollector(t, combo, 16, telemetry.All(),
				func(n int) (*workloads.Instance, error) {
					return workloads.BuildIMB("alltoall", n, 64<<10)
				})
			sum := col.FCTSummary()
			if sum.N == 0 || sum.Delivered != sum.N {
				t.Fatalf("want all messages delivered, got %d of %d", sum.Delivered, sum.N)
			}
			got := col.Chans.TotalXmitData()
			want := sum.BytesHops
			if want == 0 {
				t.Fatal("no bytes-hops accumulated")
			}
			if rel := math.Abs(got-want) / want; rel > 1e-6 {
				t.Fatalf("conservation violated: XmitData sum %.6g, bytes*hops %.6g (rel %.3g)",
					got, want, rel)
			}
		})
	}
}

// TestXmitWaitIffContention checks the PortXmitWait analogue fires exactly
// when contention exists: positive under the paper's 7-to-1 incast, zero
// for an uncontended single stream.
func TestXmitWaitIffContention(t *testing.T) {
	hx := exp.PaperCombos()[2]
	incast := func(n int) func(int) (*workloads.Instance, error) {
		return func(int) (*workloads.Instance, error) { return workloads.BuildIncast(n, 1<<20) }
	}

	col := runWithCollector(t, hx, 8, telemetry.All(), incast(8))
	if _, w := col.Chans.MaxWait(); w <= 0 {
		t.Fatalf("7-to-1 incast: want positive max XmitWait, got %v", w)
	}

	col = runWithCollector(t, hx, 2, telemetry.All(), incast(2))
	if c, w := col.Chans.MaxWait(); w != 0 {
		t.Fatalf("single uncontended stream: want zero XmitWait, got %v on channel %d", w, c)
	}
	if col.Chans.HCAWait != 0 {
		t.Fatalf("single uncontended stream: want zero HCAWait, got %v", col.Chans.HCAWait)
	}
}

// TestFatTreeHotterThanHyperX reproduces the paper's counter diagnosis on
// the small planes: under concurrent per-switch-group incasts the fat-tree
// funnels flows through shared downward links, so its hottest channel
// accumulates strictly more XmitWait than any HyperX channel.
func TestFatTreeHotterThanHyperX(t *testing.T) {
	build := func(int) (*workloads.Instance, error) {
		return workloads.BuildGroupedIncast(32, 4, 1<<20)
	}
	ft := runWithCollector(t, exp.PaperCombos()[0], 32, telemetry.All(), build)
	hx := runWithCollector(t, exp.PaperCombos()[2], 32, telemetry.All(), build)
	_, ftWait := ft.Chans.MaxWait()
	_, hxWait := hx.Chans.MaxWait()
	if ftWait <= hxWait {
		t.Fatalf("want Fat-Tree max XmitWait > HyperX, got FT %v vs HX %v", ftWait, hxWait)
	}
}

// TestActiveHWM checks the concurrent-flow high-watermark sees the incast
// convergence (7 flows into the receiver's delivery channel).
func TestActiveHWM(t *testing.T) {
	col := runWithCollector(t, exp.PaperCombos()[2], 8, telemetry.All(),
		func(int) (*workloads.Instance, error) { return workloads.BuildIncast(8, 1<<20) })
	if got := col.Chans.MaxActive(); got != 7 {
		t.Fatalf("7-to-1 incast: want max concurrent flows 7, got %d", got)
	}
}

// TestTraceAndMetricsExport round-trips the Chrome trace and JSONL
// outputs: the trace must be valid trace_event JSON with one span per
// message, and every JSONL line must parse with the run line repeating the
// conservation identity.
func TestTraceAndMetricsExport(t *testing.T) {
	col := runWithCollector(t, exp.PaperCombos()[0], 8, telemetry.All(),
		func(n int) (*workloads.Instance, error) {
			return workloads.BuildIMB("alltoall", n, 64<<10)
		})

	var buf bytes.Buffer
	if err := col.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "" || ev.Name == "" {
			t.Fatalf("trace event missing ph/name: %+v", ev)
		}
	}

	buf.Reset()
	if err := col.WriteMetricsJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var run struct {
		Kind      string  `json:"kind"`
		XmitData  float64 `json:"xmit_data_total"`
		BytesHops float64 `json:"bytes_hops"`
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	kinds := map[string]int{}
	for _, line := range lines {
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		kinds[probe.Kind]++
		if probe.Kind == "run" {
			if err := json.Unmarshal([]byte(line), &run); err != nil {
				t.Fatal(err)
			}
		}
	}
	if kinds["run"] != 1 || kinds["msg"] == 0 || kinds["chan"] == 0 {
		t.Fatalf("want one run line plus msg and chan lines, got %v", kinds)
	}
	if run.BytesHops == 0 || math.Abs(run.XmitData-run.BytesHops)/run.BytesHops > 1e-6 {
		t.Fatalf("run line conservation: xmit_data_total %.6g vs bytes_hops %.6g",
			run.XmitData, run.BytesHops)
	}
}

// TestFaultScenarioTrace checks the SM's life shows up on the timeline:
// fault-injection instants and sweep spans.
func TestFaultScenarioTrace(t *testing.T) {
	m, err := exp.BuildMachine(exp.PaperCombos()[2], exp.MachineConfig{Small: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.New(m.G, telemetry.All())
	_, err = exp.RunFaultScenario(exp.FaultSpec{
		Machine: m, Nodes: 16, Failures: 2, Seed: 5, Telemetry: col,
		Build: func(n int) (*workloads.Instance, error) {
			return workloads.BuildIMB("alltoall", n, 256<<10)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := col.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Cat string `json:"cat"`
			Pid int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	cats := map[string]int{}
	for _, ev := range tr.TraceEvents {
		cats[ev.Cat]++
	}
	if cats["fault"] == 0 {
		t.Fatalf("want fault instants on the SM timeline, got categories %v", cats)
	}
	if cats["sm"] == 0 {
		t.Fatalf("want SM sweep spans on the timeline, got categories %v", cats)
	}
}

// TestFCTSummaryPercentiles pins the percentile math on a hand-built
// record set.
func TestFCTSummaryPercentiles(t *testing.T) {
	col := telemetry.New(nil, telemetry.Options{Messages: true})
	for i := 1; i <= 100; i++ {
		rec := col.StartMsg(0, 1, 10, 0)
		col.MsgWired(rec, 0)
		col.MsgDelivered(rec, sim.Time(i)*sim.Time(sim.Millisecond), 3, false)
	}
	s := col.FCTSummary()
	if s.N != 100 || s.Delivered != 100 {
		t.Fatalf("want 100 delivered records, got %d/%d", s.Delivered, s.N)
	}
	approx := func(got, want sim.Duration) bool {
		return math.Abs(float64(got-want)) < 1e-9
	}
	if !approx(s.P50, 50.5*sim.Millisecond) {
		t.Errorf("p50 = %v, want 50.5ms", s.P50)
	}
	if !approx(s.P99, 99.01*sim.Millisecond) {
		t.Errorf("p99 = %v, want 99.01ms", s.P99)
	}
	if !approx(s.Max, 100*sim.Millisecond) {
		t.Errorf("max = %v, want 100ms", s.Max)
	}
	if s.BytesHops != 100*10*3 {
		t.Errorf("bytes*hops = %v, want 3000", s.BytesHops)
	}
}

// TestDisabledCollectorIsInert checks the zero-cost path: a nil collector
// accepts every hook without recording or panicking.
func TestDisabledCollectorIsInert(t *testing.T) {
	var col *telemetry.Collector
	rec := col.StartMsg(0, 1, 10, 0)
	if rec != -1 {
		t.Fatalf("nil collector StartMsg: want -1, got %d", rec)
	}
	col.MsgWired(rec, 0)
	col.MsgDelivered(rec, 0, 2, false)
	col.MsgRetry(rec)
	col.MsgGiveUp(rec, 0)
	col.Span(1, 0, "cat", "name", 0, 1, nil)
	col.Instant(1, 0, "cat", "name", 0, nil)
	if col.TraceLen() != 0 {
		t.Fatal("nil collector recorded trace events")
	}
}

// runWithSolverCollector is runWithCollector with the flow solver pinned
// before traffic starts.
func runWithSolverCollector(t *testing.T, s flow.Solver, n int,
	build func(n int) (*workloads.Instance, error)) *telemetry.Collector {
	t.Helper()
	combo := exp.PaperCombos()[2] // HyperX
	m, err := exp.BuildMachine(combo, exp.MachineConfig{Small: true, Degrade: true, Seed: 1})
	if err != nil {
		t.Fatalf("BuildMachine(%s): %v", combo.Name, err)
	}
	var col *telemetry.Collector
	_, _, err = exp.RunTrials(exp.TrialSpec{
		Machine: m, Nodes: n, Trials: 1, Seed: 1, Build: build,
		Attach: func(_ int, msgr fabric.Messenger) {
			f := msgr.(*fabric.Fabric)
			f.Net.SetSolver(s)
			col = telemetry.New(m.G, telemetry.All())
			f.AttachTelemetry(col)
		},
	})
	if err != nil {
		t.Fatalf("RunTrials(%s): %v", combo.Name, err)
	}
	return col
}

// TestConservationUnderPartialRecomputes drives the incremental solver
// through a workload of four disjoint incast groups — exactly the shape
// where its dirty-region recompute touches only a fraction of the fabric
// per settle — and checks that (a) the bytes x hops identity still holds
// and (b) every counter integral matches a reference-solver run of the
// same workload. This is the telemetry-facing face of the solver
// equivalence property: conservation must survive partial recomputes.
func TestConservationUnderPartialRecomputes(t *testing.T) {
	build := func(int) (*workloads.Instance, error) {
		return workloads.BuildGroupedIncast(32, 4, 1<<20)
	}
	inc := runWithSolverCollector(t, flow.SolverIncremental, 32, build)
	ref := runWithSolverCollector(t, flow.SolverReference, 32, build)

	for name, col := range map[string]*telemetry.Collector{"incremental": inc, "reference": ref} {
		sum := col.FCTSummary()
		if sum.N == 0 || sum.Delivered != sum.N {
			t.Fatalf("%s: want all messages delivered, got %d of %d", name, sum.Delivered, sum.N)
		}
		got, want := col.Chans.TotalXmitData(), sum.BytesHops
		if want == 0 || math.Abs(got-want)/want > 1e-6 {
			t.Fatalf("%s: conservation violated: XmitData sum %.6g, bytes*hops %.6g",
				name, got, want)
		}
	}

	for c := range ref.Chans.XmitData {
		rd, id := ref.Chans.XmitData[c], inc.Chans.XmitData[c]
		if math.Abs(id-rd) > 1e-6+1e-6*math.Abs(rd) {
			t.Errorf("channel %d: XmitData %v (incremental) vs %v (reference)", c, id, rd)
		}
		rw, iw := float64(ref.Chans.XmitWait[c]), float64(inc.Chans.XmitWait[c])
		if math.Abs(iw-rw) > 1e-9+1e-6*math.Abs(rw) {
			t.Errorf("channel %d: XmitWait %v (incremental) vs %v (reference)", c, iw, rw)
		}
		if inc.Chans.ActiveHWM[c] != ref.Chans.ActiveHWM[c] {
			t.Errorf("channel %d: ActiveHWM %d vs %d",
				c, inc.Chans.ActiveHWM[c], ref.Chans.ActiveHWM[c])
		}
	}
	if math.Abs(float64(inc.Chans.HCAWait-ref.Chans.HCAWait)) > 1e-9+1e-6*math.Abs(float64(ref.Chans.HCAWait)) {
		t.Errorf("HCAWait %v (incremental) vs %v (reference)", inc.Chans.HCAWait, ref.Chans.HCAWait)
	}
}
