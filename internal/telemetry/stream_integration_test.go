package telemetry_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/hpcsim/t2hx/internal/exp"
	"github.com/hpcsim/t2hx/internal/fabric"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/telemetry"
	"github.com/hpcsim/t2hx/internal/workloads"
)

// TestStreamingRealRun drives a full simulated collective with a JSONL
// sink attached: every finished message must appear as a streamed line,
// the collector must retain nothing, and the footer totals must match.
func TestStreamingRealRun(t *testing.T) {
	combo := exp.PaperCombos()[0]
	m, err := exp.BuildMachine(combo, exp.MachineConfig{Small: true, Degrade: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	count := telemetry.NewCountSink()
	var col *telemetry.Collector
	_, _, err = exp.RunTrials(exp.TrialSpec{
		Machine: m, Nodes: 16, Trials: 1, Seed: 1,
		Build: func(n int) (*workloads.Instance, error) {
			return workloads.BuildIMB("alltoall", n, 64<<10)
		},
		Attach: func(_ int, msgr fabric.Messenger) {
			col = telemetry.New(m.G, telemetry.All())
			col.SetSink(telemetry.Tee(count, telemetry.NewJSONLSink(&buf)))
			msgr.(*fabric.Fabric).AttachTelemetry(col)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Msgs) != 0 {
		t.Fatalf("streaming run retained %d records", len(col.Msgs))
	}
	sum := col.FCTSummary()
	if sum.N == 0 || sum.Delivered != sum.N {
		t.Fatalf("want all delivered, got %d of %d", sum.Delivered, sum.N)
	}
	if err := col.FinishStream(); err != nil {
		t.Fatal(err)
	}
	if got := count.Count("msg"); got != uint64(sum.N) {
		t.Fatalf("streamed %d msg lines for %d messages", got, sum.N)
	}
	if count.Closes() != 1 {
		t.Fatalf("sink closed %d times", count.Closes())
	}

	// The run footer is the last line and its totals match the stream.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var footer struct {
		Kind     string `json:"kind"`
		Messages int    `json:"messages"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &footer); err != nil {
		t.Fatal(err)
	}
	if footer.Kind != "run" || footer.Messages != sum.N {
		t.Fatalf("footer kind=%q messages=%d, want run/%d", footer.Kind, footer.Messages, sum.N)
	}
}

// TestStreamingFaultTeardown streams telemetry through a faulted run —
// link failures mid-flight force redispatches and SM sweeps, exercising
// the reopen/recycle path of the open-slot table. The stream must stay
// consistent: one line per finished message attempt, no sink errors, one
// Close.
func TestStreamingFaultTeardown(t *testing.T) {
	combo := exp.PaperCombos()[0]
	m, err := exp.BuildMachine(combo, exp.MachineConfig{Small: true, Degrade: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	count := telemetry.NewCountSink()
	col := telemetry.New(m.G, telemetry.All())
	col.SetSink(count)
	res, err := exp.RunFaultScenario(exp.FaultSpec{
		Machine:   m,
		Nodes:     len(m.G.Terminals()),
		Failures:  2,
		Seed:      5,
		Detect:    50 * sim.Microsecond,
		Sweep:     100 * sim.Microsecond,
		Telemetry: col,
		Build: func(n int) (*workloads.Instance, error) {
			return workloads.BuildIMB("alltoall", n, 32<<10)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != res.Messages {
		t.Fatalf("delivered %d of %d", res.Delivered, res.Messages)
	}
	if col.SinkErr() != nil {
		t.Fatalf("sink error during faulted run: %v", col.SinkErr())
	}
	if len(col.Msgs) != 0 {
		t.Fatalf("faulted streaming run retained %d records", len(col.Msgs))
	}
	sum := col.FCTSummary()
	if got := count.Count("msg"); got != uint64(sum.N) {
		t.Fatalf("streamed %d msg lines, summary counted %d", got, sum.N)
	}
	// Redispatches close one record and open another, so the stream holds
	// at least one line per delivered message plus one per redispatch.
	if uint64(sum.N) < res.Messages {
		t.Fatalf("summary N %d below %d workload messages", sum.N, res.Messages)
	}
	if err := col.FinishStream(); err != nil {
		t.Fatal(err)
	}
	if count.Closes() != 1 {
		t.Fatalf("sink closed %d times", count.Closes())
	}
	if count.Count("run") != 1 || count.Count("hist") == 0 || count.Count("chan") == 0 {
		t.Fatalf("footer lines run=%d hist=%d chan=%d",
			count.Count("run"), count.Count("hist"), count.Count("chan"))
	}
}
