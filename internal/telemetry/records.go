package telemetry

import (
	"sort"

	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// MsgRecord is the lifecycle of one fabric message: issued when the
// application posted the send, wired when the (final) transfer attempt hit
// the flow network, finished when the last byte arrived. Retries counts
// re-sends forced by faults or unroutable tables; Hops is the channel
// count of the delivering path (terminal links included, 0 for loopback).
type MsgRecord struct {
	Src, Dst  topo.NodeID
	Size      int64
	Issued    sim.Time
	Wired     sim.Time
	Finished  sim.Time
	Hops      int
	Retries   int
	Delivered bool
	Loopback  bool
	// Redispatched marks a message that left this plane for a sibling
	// plane of a MultiFabric; its delivery is recorded by the collector
	// of the plane that carried it.
	Redispatched bool
}

// FCT is the message's flow completion time (issue to delivery); 0 for
// undelivered messages.
func (r MsgRecord) FCT() sim.Duration {
	if !r.Delivered {
		return 0
	}
	return r.Finished - r.Issued
}

// StartMsg opens a record and returns its index, or -1 when message
// recording is off (callers pass the index back into the other Msg hooks,
// which all tolerate -1, so the fabric needs no second nil-check). In
// retained mode the index addresses Msgs; in streaming mode it addresses
// the open-slot table, whose slots are recycled as records close.
func (c *Collector) StartMsg(src, dst topo.NodeID, size int64, now sim.Time) int {
	if c == nil || !c.Opts.Messages {
		return -1
	}
	c.agg.started++
	r := MsgRecord{Src: src, Dst: dst, Size: size, Issued: now, Wired: -1}
	if c.retain {
		c.Msgs = append(c.Msgs, r)
		return len(c.Msgs) - 1
	}
	if k := len(c.freeSlots); k > 0 {
		slot := c.freeSlots[k-1]
		c.freeSlots = c.freeSlots[:k-1]
		c.open[slot] = r
		return slot
	}
	c.open = append(c.open, r)
	return len(c.open) - 1
}

// msgAt resolves a live record index against the active storage mode.
func (c *Collector) msgAt(rec int) *MsgRecord {
	if c.retain {
		return &c.Msgs[rec]
	}
	return &c.open[rec]
}

// MsgWired stamps the instant a transfer attempt reached the wire.
func (c *Collector) MsgWired(rec int, now sim.Time) {
	if rec >= 0 {
		c.msgAt(rec).Wired = now
	}
}

// MsgRetry counts one failed delivery attempt.
func (c *Collector) MsgRetry(rec int) {
	if rec >= 0 {
		c.msgAt(rec).Retries++
	}
}

// closeMsg finalizes a record: histogram and aggregate updates, the trace
// span, the streamed "msg" line, and (streaming mode) slot recycling.
func (c *Collector) closeMsg(rec int, r *MsgRecord) {
	if r.Delivered {
		c.agg.delivered++
		c.agg.bytes += float64(r.Size)
		c.agg.bytesHops += float64(r.Size) * float64(r.Hops)
		fct := float64(r.FCT())
		c.agg.fctSum += fct
		if fct > c.agg.fctMax {
			c.agg.fctMax = fct
		}
		c.FCTHist.Observe(fct)
	}
	c.traceMsg(r)
	if c.sink != nil {
		c.emit(makeMsgLine(c.Plane, r))
	}
	if !c.retain {
		c.freeSlots = append(c.freeSlots, rec)
	}
}

// MsgDelivered closes a record and, with tracing on, emits the message's
// lifecycle span.
func (c *Collector) MsgDelivered(rec int, now sim.Time, hops int, loopback bool) {
	if rec < 0 {
		return
	}
	r := c.msgAt(rec)
	r.Finished = now
	r.Hops = hops
	r.Delivered = true
	r.Loopback = loopback
	c.closeMsg(rec, r)
}

// MsgRedispatched closes a record for a message handed to a sibling
// plane; the receiving plane's collector opens a fresh record for it.
func (c *Collector) MsgRedispatched(rec int, now sim.Time) {
	if rec < 0 {
		return
	}
	r := c.msgAt(rec)
	r.Finished = now
	r.Redispatched = true
	c.closeMsg(rec, r)
}

// MsgGiveUp closes a record for a message dropped after its retry budget.
func (c *Collector) MsgGiveUp(rec int, now sim.Time) {
	if rec < 0 {
		return
	}
	r := c.msgAt(rec)
	r.Finished = now
	c.closeMsg(rec, r)
}

// Summary holds the FCT distribution statistics the paper-adjacent work
// (FatPaths, fault-tolerant HyperX routing) reports.
type Summary struct {
	N         int
	Delivered int
	Mean      sim.Duration
	P50       sim.Duration
	P95       sim.Duration
	P99       sim.Duration
	Max       sim.Duration
	// Bytes is the delivered payload; BytesHops the conservation
	// right-hand side (sum of bytes x hops over delivered messages).
	Bytes     float64
	BytesHops float64
}

// FCTSummary reduces the message records to completion-time percentiles and
// the conservation right-hand side. In retained mode the percentiles are
// exact (interpolated over the sorted record set, the historical path the
// figure pipelines pin); in streaming mode the records are gone, so the
// percentiles come from the mergeable FCT histogram (nearest rank, relative
// error <= 2^-HistSubBits) while N/Delivered/Bytes/Mean/Max stay exact via
// the running aggregates.
func (c *Collector) FCTSummary() Summary {
	if !c.retain {
		return c.streamSummary()
	}
	s := Summary{N: len(c.Msgs)}
	var fcts []float64
	for i := range c.Msgs {
		r := &c.Msgs[i]
		if !r.Delivered {
			continue
		}
		s.Delivered++
		s.Bytes += float64(r.Size)
		s.BytesHops += float64(r.Size) * float64(r.Hops)
		fcts = append(fcts, float64(r.FCT()))
	}
	if len(fcts) == 0 {
		return s
	}
	sort.Float64s(fcts)
	var sum float64
	for _, v := range fcts {
		sum += v
	}
	s.Mean = sim.Duration(sum / float64(len(fcts)))
	s.P50 = sim.Duration(percentile(fcts, 0.50))
	s.P95 = sim.Duration(percentile(fcts, 0.95))
	s.P99 = sim.Duration(percentile(fcts, 0.99))
	s.Max = sim.Duration(fcts[len(fcts)-1])
	return s
}

// streamSummary assembles the Summary from the streaming aggregates and
// the FCT histogram.
func (c *Collector) streamSummary() Summary {
	s := Summary{
		N: c.agg.started, Delivered: c.agg.delivered,
		Bytes: c.agg.bytes, BytesHops: c.agg.bytesHops,
	}
	if c.agg.delivered == 0 {
		return s
	}
	s.Mean = sim.Duration(c.agg.fctSum / float64(c.agg.delivered))
	s.P50 = sim.Duration(c.FCTHist.Quantile(0.50))
	s.P95 = sim.Duration(c.FCTHist.Quantile(0.95))
	s.P99 = sim.Duration(c.FCTHist.Quantile(0.99))
	s.Max = sim.Duration(c.agg.fctMax)
	return s
}

// percentile linearly interpolates over a sorted slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := p * float64(len(sorted)-1)
	lo := int(idx)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[lo]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
