package telemetry_test

import (
	"math"
	"testing"

	"github.com/hpcsim/t2hx/internal/fabric"
	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/telemetry"
	"github.com/hpcsim/t2hx/internal/topo"
)

// flushRun executes a fixed overlapping-traffic workload over a 4x4 HyperX
// with counters attached, optionally failing a link mid-run (with the retry
// layer on, so every message still delivers) and optionally probing the
// counters mid-run at the given instants. The probes call the reading
// accessors — TotalXmitData, MaxWait, MaxActive — which force the flow
// network's lazily-deferred rate integrals (the FlushCounters barrier).
// They must be pure observations: the run's dynamics and final counters
// cannot depend on whether, or how often, anyone looked.
func flushRun(t *testing.T, withFault bool, probes []sim.Duration) (*telemetry.Collector, *fabric.Fabric, sim.Time) {
	t.Helper()
	hx := topo.NewHyperX(topo.HyperXConfig{
		S: []int{4, 4}, T: 1,
		Bandwidth: topo.QDRBandwidth, Latency: topo.QDRLinkLatency,
	})
	tb, err := route.SSSP(hx.Graph, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	f := fabric.New(eng, tb, fabric.DefaultParams(), 1)
	col := telemetry.New(hx.Graph, telemetry.Options{Counters: true, Messages: true})
	f.AttachTelemetry(col)
	f.EnableResilience(fabric.Resilience{RetryBackoff: 10 * sim.Microsecond, MaxRetries: 16})

	// Staggered, overlapping transfers: enough concurrency that most probe
	// instants land with several flows mid-interval (deferred integrals
	// outstanding on many channels).
	terms := hx.Terminals()
	n := len(terms)
	const msgs = 60
	var lastAt sim.Time
	for i := 0; i < msgs; i++ {
		src := terms[i%n]
		dst := terms[(i*5+3)%n] // (i*5+3)-i = 4i+3 is odd, never ≡ 0 mod 16
		size := int64(1<<15 + i*4096)
		eng.Schedule(sim.Time(i)*7*sim.Microsecond, func(*sim.Engine) {
			f.Send(src, dst, size, func(at sim.Time) {
				if at > lastAt {
					lastAt = at
				}
			})
		})
	}

	if withFault {
		// Mid-run teardown: a switch-to-switch cable on a busy path dies
		// while transfers stream across it; the bounded-retry layer re-sends
		// the victims once the repaired tables land.
		path, err := f.Tables.Path(terms[0], f.Tables.BaseLID[f.Tables.TermIndex(terms[3])])
		if err != nil {
			t.Fatal(err)
		}
		victim := hx.Graph.Link(path[1])
		eng.Schedule(150*sim.Microsecond, func(*sim.Engine) {
			victim.Down = true
			f.FailChannels(func(c topo.ChannelID) bool { return hx.Graph.Link(c) == victim })
		})
		eng.Schedule(250*sim.Microsecond, func(*sim.Engine) {
			nt, err := route.SSSP(hx.Graph, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := f.SwapTables(nt); err != nil {
				t.Fatal(err)
			}
		})
	}

	for _, at := range probes {
		eng.Schedule(at, func(*sim.Engine) {
			// Reading accessors flush implicitly; touch all three counter
			// families plus a raw-slice read behind an explicit barrier.
			col.Chans.TotalXmitData()
			col.Chans.MaxWait()
			col.Chans.MaxActive()
			f.FlushCounters()
			_ = col.Chans.XmitData[0]
		})
	}

	eng.Run()
	if f.Delivered != msgs {
		t.Fatalf("delivered %d of %d messages (fault=%v)", f.Delivered, msgs, withFault)
	}
	return col, f, lastAt
}

// TestMidRunFlushEquivalence is the observer-effect property for the lazy
// counter integration: a run probed mid-flight at many instants — including
// during a fault teardown — must end with the same clock, deliveries, and
// per-channel counters as the identical run nobody looked at. ActiveHWM is
// exact; the byte/wait integrals are compared at ulp-level tolerance, since
// a flush merely splits one piecewise-constant interval's accumulation into
// two float additions.
func TestMidRunFlushEquivalence(t *testing.T) {
	probes := []sim.Duration{
		30 * sim.Microsecond, 90 * sim.Microsecond,
		149 * sim.Microsecond, // one event before the fault instant
		151 * sim.Microsecond, // right after teardown, retries pending
		260 * sim.Microsecond, // after the table swap
		400 * sim.Microsecond, 700 * sim.Microsecond,
	}
	for _, tc := range []struct {
		name      string
		withFault bool
	}{
		{"healthy", false},
		{"fault-teardown", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			blind, fb, blindLast := flushRun(t, tc.withFault, nil)
			probed, fp, probedLast := flushRun(t, tc.withFault, probes)

			// Eng.Now() ends at the last event either run executed — the
			// probed run's clock legitimately ends at its final probe. The
			// dynamics invariant is the last DELIVERY instant, bit-exact.
			if blindLast != probedLast {
				t.Errorf("probed run's last delivery at %v, blind at %v (probes altered the dynamics)",
					probedLast, blindLast)
			}
			if fb.Delivered != fp.Delivered || fb.DeliveredBytes != fp.DeliveredBytes {
				t.Errorf("probed delivered %d/%g, blind %d/%g",
					fp.Delivered, fp.DeliveredBytes, fb.Delivered, fb.DeliveredBytes)
			}
			if fb.Retries != fp.Retries {
				t.Errorf("probed run retried %d times, blind %d", fp.Retries, fb.Retries)
			}

			b, p := blind.Chans, probed.Chans
			b.Flush()
			p.Flush()
			for c := range b.XmitData {
				if !closeRel(b.XmitData[c], p.XmitData[c], 1e-9) {
					t.Errorf("channel %d XmitData: blind %.6f, probed %.6f", c, b.XmitData[c], p.XmitData[c])
				}
				if !closeRel(float64(b.XmitWait[c]), float64(p.XmitWait[c]), 1e-9) {
					t.Errorf("channel %d XmitWait: blind %v, probed %v", c, b.XmitWait[c], p.XmitWait[c])
				}
				if b.ActiveHWM[c] != p.ActiveHWM[c] {
					t.Errorf("channel %d ActiveHWM: blind %d, probed %d", c, b.ActiveHWM[c], p.ActiveHWM[c])
				}
			}
			if !closeRel(float64(b.HCAWait), float64(p.HCAWait), 1e-9) {
				t.Errorf("HCAWait: blind %v, probed %v", b.HCAWait, p.HCAWait)
			}
			if !closeRel(b.TotalXmitData(), p.TotalXmitData(), 1e-9) {
				t.Errorf("TotalXmitData: blind %.6f, probed %.6f", b.TotalXmitData(), p.TotalXmitData())
			}
		})
	}
}

// TestFailChannelsIsFlushBarrier pins the snapshot contract of the fault
// path: FailChannels flushes before any teardown, so at the fault instant
// the RAW counter slices (no accessor, no explicit Flush) are already exact
// — summing XmitData directly must agree bit-for-bit with the flushing
// TotalXmitData accessor, and re-flushing at the same instant adds nothing.
func TestFailChannelsIsFlushBarrier(t *testing.T) {
	hx := topo.NewHyperX(topo.HyperXConfig{
		S: []int{4, 4}, T: 1,
		Bandwidth: topo.QDRBandwidth, Latency: topo.QDRLinkLatency,
	})
	tb, err := route.SSSP(hx.Graph, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	f := fabric.New(eng, tb, fabric.DefaultParams(), 1)
	col := telemetry.New(hx.Graph, telemetry.Options{Counters: true})
	f.AttachTelemetry(col)
	f.EnableResilience(fabric.Resilience{RetryBackoff: 10 * sim.Microsecond, MaxRetries: 8})

	terms := hx.Terminals()
	for i := 0; i < 12; i++ {
		f.Send(terms[i], terms[(i+5)%len(terms)], 1<<20, func(sim.Time) {})
	}
	path, err := f.Tables.Path(terms[0], f.Tables.BaseLID[f.Tables.TermIndex(terms[5])])
	if err != nil {
		t.Fatal(err)
	}
	victim := hx.Graph.Link(path[1])

	checked := false
	eng.Schedule(50*sim.Microsecond, func(*sim.Engine) {
		victim.Down = true
		f.FailChannels(func(c topo.ChannelID) bool { return hx.Graph.Link(c) == victim })
		var raw float64
		for _, b := range col.Chans.XmitData {
			raw += b
		}
		if raw <= 0 {
			t.Errorf("raw XmitData sum %.0f at the fault instant, want > 0 (50us of streaming crossed the fabric)", raw)
		}
		if flushed := col.Chans.TotalXmitData(); flushed != raw {
			t.Errorf("FailChannels left deferred integrals behind: raw sum %.10f, post-flush %.10f", raw, flushed)
		}
		checked = true
	})
	eng.Schedule(200*sim.Microsecond, func(*sim.Engine) {
		nt, err := route.SSSP(hx.Graph, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.SwapTables(nt); err != nil {
			t.Fatal(err)
		}
	})
	eng.Run()
	if !checked {
		t.Fatal("fault event never ran")
	}
	if f.Delivered != 12 {
		t.Errorf("delivered %d of 12 after repair", f.Delivered)
	}
}

// closeRel reports a ≈ b within relative tolerance rel (with a tiny
// absolute floor for near-zero values).
func closeRel(a, b, rel float64) bool {
	d := math.Abs(a - b)
	return d <= 1e-12+rel*math.Max(math.Abs(a), math.Abs(b))
}
