package telemetry

import (
	"encoding/json"
	"io"
	"sort"

	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// Multi bundles one Collector per plane of a multi-plane machine and
// merges their exports. Per-plane counters stay separate — each plane has
// its own graph and channel ID space — while the machine-level summary,
// the JSONL stream and the Chrome trace interleave all planes with the
// plane id stamped on every row and pid lane. Attach it with
// (*fabric.MultiFabric).AttachTelemetry.
type Multi struct {
	Planes []*Collector
}

// NewMulti builds one collector per plane over the planes' graphs, wiring
// plane ids and display names (names may be shorter than gs).
func NewMulti(gs []*topo.Graph, names []string, opts Options) *Multi {
	m := &Multi{}
	for i, g := range gs {
		c := New(g, opts)
		c.Plane = i
		if i < len(names) {
			c.PlaneName = names[i]
		}
		m.Planes = append(m.Planes, c)
	}
	return m
}

// ForPlane returns plane p's collector.
func (m *Multi) ForPlane(p int) *Collector { return m.Planes[p] }

// SetSink attaches one shared streaming sink to every plane's collector:
// "msg" lines from all planes interleave in completion order (each stamped
// with its plane id), and FinishStream appends per-plane footers plus the
// machine-level summary before closing the sink once.
func (m *Multi) SetSink(s Sink) {
	for _, c := range m.Planes {
		c.SetSink(s)
	}
}

// SetTraceSink attaches one shared streaming trace sink to every plane
// (each plane's lane metadata is emitted immediately); close it with
// FinishTraceStream.
func (m *Multi) SetTraceSink(s Sink) {
	for _, c := range m.Planes {
		c.SetTraceSink(s)
	}
}

// FinishStream completes a shared streaming export: every plane's
// "hist"/"chan"/"run" footer, the machine summary line last, then one
// Close on the shared sink. Returns the first error any plane latched.
func (m *Multi) FinishStream() error {
	var sink Sink
	var first error
	for _, c := range m.Planes {
		if c.sink == nil {
			continue
		}
		sink = c.sink
		c.writeStreamFooter()
		if first == nil {
			first = c.sinkErr
		}
		c.sink = nil
	}
	if sink == nil {
		return first
	}
	if err := sink.Write(m.makeMachineLine()); err != nil && first == nil {
		first = err
	}
	if err := sink.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// FinishTraceStream seals the shared streaming trace document with a
// single Close, returning the first error any plane's trace export saw.
func (m *Multi) FinishTraceStream() error {
	var sink Sink
	var first error
	for _, c := range m.Planes {
		if c.traceSink == nil {
			continue
		}
		sink = c.traceSink
		if first == nil {
			first = c.traceErr
		}
		c.traceSink = nil
	}
	if sink == nil {
		return first
	}
	if err := sink.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// SinkErr reports the first error any plane's sink latched, or nil.
func (m *Multi) SinkErr() error {
	for _, c := range m.Planes {
		if err := c.SinkErr(); err != nil {
			return err
		}
	}
	return nil
}

// TotalXmitData sums transmitted bytes over every plane's channel set —
// the left-hand side of the machine-level conservation identity
// (ΣXmitData == Σ bytes×hops over delivered messages, all planes).
func (m *Multi) TotalXmitData() float64 {
	var total float64
	for _, c := range m.Planes {
		if c.Chans != nil {
			total += c.Chans.TotalXmitData()
		}
	}
	return total
}

// FCTSummary merges every plane's delivered-message records into one
// machine-level completion-time distribution. Records closed as
// redispatched are plane-local bookkeeping (the carrying plane holds the
// delivered record) and are excluded from N like any undelivered record
// is from the percentiles. When the planes stream (records not retained),
// the summary merges the planes' FCT histograms instead — the merge is
// order-independent, so the machine percentiles match what an offline
// re-merge of the exported per-plane "hist" lines would give.
func (m *Multi) FCTSummary() Summary {
	for _, c := range m.Planes {
		if !c.retain {
			return m.streamSummary()
		}
	}
	var s Summary
	var fcts []float64
	for _, c := range m.Planes {
		s.N += len(c.Msgs)
		for i := range c.Msgs {
			r := &c.Msgs[i]
			if !r.Delivered {
				continue
			}
			s.Delivered++
			s.Bytes += float64(r.Size)
			s.BytesHops += float64(r.Size) * float64(r.Hops)
			fcts = append(fcts, float64(r.FCT()))
		}
	}
	if len(fcts) == 0 {
		return s
	}
	sort.Float64s(fcts)
	var sum float64
	for _, v := range fcts {
		sum += v
	}
	s.Mean = sim.Duration(sum / float64(len(fcts)))
	s.P50 = sim.Duration(percentile(fcts, 0.50))
	s.P95 = sim.Duration(percentile(fcts, 0.95))
	s.P99 = sim.Duration(percentile(fcts, 0.99))
	s.Max = sim.Duration(fcts[len(fcts)-1])
	return s
}

// streamSummary assembles the machine summary from the planes' streaming
// aggregates and their merged FCT histograms.
func (m *Multi) streamSummary() Summary {
	var s Summary
	var fctSum, fctMax float64
	merged := NewHist("fct", "s", 1e9)
	for _, c := range m.Planes {
		s.N += c.agg.started
		s.Delivered += c.agg.delivered
		s.Bytes += c.agg.bytes
		s.BytesHops += c.agg.bytesHops
		fctSum += c.agg.fctSum
		if c.agg.fctMax > fctMax {
			fctMax = c.agg.fctMax
		}
		if c.FCTHist != nil {
			merged.Merge(c.FCTHist)
		}
	}
	if s.Delivered == 0 {
		return s
	}
	s.Mean = sim.Duration(fctSum / float64(s.Delivered))
	s.P50 = sim.Duration(merged.Quantile(0.50))
	s.P95 = sim.Duration(merged.Quantile(0.95))
	s.P99 = sim.Duration(merged.Quantile(0.99))
	s.Max = sim.Duration(fctMax)
	return s
}

// WriteTrace merges every plane's timeline (each on its own pid lanes,
// see TracePlaneStride) into one Chrome trace_event document.
func (m *Multi) WriteTrace(w io.Writer) error {
	var events []traceEvent
	for _, c := range m.Planes {
		events = append(events, c.metaEvents()...)
		events = append(events, c.trace...)
	}
	return writeTraceDoc(w, events)
}

// machineLine is the machine-level summary row of a multi-plane export.
type machineLine struct {
	Kind      string  `json:"kind"` // "machine"
	Planes    int     `json:"planes"`
	Messages  int     `json:"messages"`
	Delivered int     `json:"delivered"`
	Bytes     float64 `json:"bytes"`
	BytesHops float64 `json:"bytes_hops"`
	XmitData  float64 `json:"xmit_data_total"`
	FCTp50    float64 `json:"fct_p50_s"`
	FCTp99    float64 `json:"fct_p99_s"`
}

func (machineLine) LineKind() string { return "machine" }

// makeMachineLine reduces the machine to its summary line.
func (m *Multi) makeMachineLine() machineLine {
	s := m.FCTSummary()
	return machineLine{
		Kind: "machine", Planes: len(m.Planes),
		Messages: s.N, Delivered: s.Delivered,
		Bytes: s.Bytes, BytesHops: s.BytesHops,
		XmitData: m.TotalXmitData(),
		FCTp50:   float64(s.P50), FCTp99: float64(s.P99),
	}
}

// WriteMetricsJSONL writes a machine-level summary line ("kind":
// "machine") followed by every plane's full line stream; per-plane lines
// carry their plane id.
func (m *Multi) WriteMetricsJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(m.makeMachineLine()); err != nil {
		return err
	}
	for _, c := range m.Planes {
		if err := c.writeMetrics(enc); err != nil {
			return err
		}
	}
	return nil
}
