package telemetry

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"github.com/hpcsim/t2hx/internal/sim"
)

// countingWriter counts underlying Write calls — each one is a sink flush
// reaching the OS layer.
type countingWriter struct {
	buf    bytes.Buffer
	writes int
	closes int
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.buf.Write(p)
}

func (w *countingWriter) Close() error {
	w.closes++
	return nil
}

// failingWriter accepts allow bytes, then fails every call.
type failingWriter struct {
	allow int
	seen  int
}

var errDiskFull = errors.New("disk full")

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.seen+len(p) > w.allow {
		return 0, errDiskFull
	}
	w.seen += len(p)
	return len(p), nil
}

func testMsgLine(i int) msgLine {
	return msgLine{Kind: "msg", Plane: 0, Src: int32(i), Dst: int32(i + 1), Size: 4096, FCT: 1e-5, Delivered: true}
}

func TestJSONLSinkFlushCadence(t *testing.T) {
	w := &countingWriter{}
	s := NewJSONLSink(w).FlushEvery(4)
	for i := 0; i < 3; i++ {
		if err := s.Write(testMsgLine(i)); err != nil {
			t.Fatal(err)
		}
	}
	if w.writes != 0 {
		t.Fatalf("3 records (< cadence 4) already reached the writer %d times", w.writes)
	}
	if err := s.Write(testMsgLine(3)); err != nil {
		t.Fatal(err)
	}
	if w.writes == 0 {
		t.Fatal("4th record did not trigger the periodic flush")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if w.closes != 1 {
		t.Fatalf("underlying writer closed %d times, want 1", w.closes)
	}
	lines := strings.Split(strings.TrimSpace(w.buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d JSONL lines, want 4", len(lines))
	}
	for _, l := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", l, err)
		}
		if m["kind"] != "msg" {
			t.Fatalf("kind %v, want msg", m["kind"])
		}
	}
}

func TestJSONLSinkStickyError(t *testing.T) {
	s := NewJSONLSink(&failingWriter{allow: 0}).FlushEvery(1)
	if err := s.Write(testMsgLine(0)); !errors.Is(err, errDiskFull) {
		t.Fatalf("first write error = %v, want disk full", err)
	}
	// Every later call reports the same latched failure.
	if err := s.Write(testMsgLine(1)); !errors.Is(err, errDiskFull) {
		t.Fatalf("later write error = %v, want latched disk full", err)
	}
	if err := s.Flush(); !errors.Is(err, errDiskFull) {
		t.Fatalf("flush error = %v, want latched disk full", err)
	}
	if err := s.Close(); !errors.Is(err, errDiskFull) {
		t.Fatalf("close error = %v, want latched disk full", err)
	}
}

func TestMsgCSVSink(t *testing.T) {
	w := &countingWriter{}
	s := NewMsgCSVSink(w)
	for i := 0; i < 3; i++ {
		if err := s.Write(testMsgLine(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Non-msg kinds pass through silently, so a Tee can feed the full
	// stream.
	if err := s.Write(runLine{Kind: "run"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&w.buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // header + 3 msgs
		t.Fatalf("%d CSV rows, want 4", len(rows))
	}
	if got := strings.Join(rows[0], ","); got != strings.Join(msgCSVHeader, ",") {
		t.Fatalf("header %q", got)
	}
	if rows[1][1] != "0" || rows[1][2] != "1" {
		t.Fatalf("first row src/dst = %s/%s", rows[1][1], rows[1][2])
	}
}

func TestTraceSinkProducesValidDoc(t *testing.T) {
	w := &countingWriter{}
	s := NewTraceSink(w)
	for i := 0; i < 3; i++ {
		if err := s.Write(traceEvent{Name: fmt.Sprintf("ev%d", i), Ph: "X", Pid: 1, Tid: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(w.buf.Bytes(), &doc); err != nil {
		t.Fatalf("streamed trace is not a valid trace_event doc: %v", err)
	}
	if len(doc.TraceEvents) != 3 || doc.DisplayTimeUnit != "ms" {
		t.Fatalf("doc has %d events, unit %q", len(doc.TraceEvents), doc.DisplayTimeUnit)
	}
}

func TestTraceSinkEmptyDocAndWrongKind(t *testing.T) {
	var empty bytes.Buffer
	s := NewTraceSink(&empty)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(empty.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace doc invalid: %v", err)
	}

	s2 := NewTraceSink(&bytes.Buffer{})
	if err := s2.Write(runLine{Kind: "run"}); err == nil {
		t.Fatal("trace sink accepted a run line")
	}
}

func TestCountSinkAndTee(t *testing.T) {
	count := NewCountSink()
	var jsonl bytes.Buffer
	tee := Tee(count, NewJSONLSink(&jsonl))
	for i := 0; i < 5; i++ {
		if err := tee.Write(testMsgLine(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tee.Write(runLine{Kind: "run"}); err != nil {
		t.Fatal(err)
	}
	if err := tee.Close(); err != nil {
		t.Fatal(err)
	}
	if count.Count("msg") != 5 || count.Count("run") != 1 || count.Total() != 6 {
		t.Fatalf("counts msg=%d run=%d total=%d", count.Count("msg"), count.Count("run"), count.Total())
	}
	if count.Closes() != 1 {
		t.Fatalf("%d closes", count.Closes())
	}
	if n := strings.Count(jsonl.String(), "\n"); n != 6 {
		t.Fatalf("tee's JSONL side saw %d lines, want 6", n)
	}
}

// drive pushes synthetic message lifecycles through a collector with at
// most `window` concurrently open records.
func drive(c *Collector, msgs, window int) {
	type openMsg struct{ rec int }
	var open []openMsg
	for i := 0; i < msgs; i++ {
		rec := c.StartMsg(1, 2, 4096, 0)
		c.MsgWired(rec, 0)
		open = append(open, openMsg{rec})
		if len(open) >= window {
			c.MsgDelivered(open[0].rec, 1e-5, 2, false)
			open = open[1:]
		}
	}
	for _, o := range open {
		c.MsgDelivered(o.rec, 1e-5, 2, false)
	}
}

// TestCollectorStreamingIsO1 is the tentpole's memory guarantee: with a
// sink attached and retention off, an arbitrarily long run keeps only the
// open-slot table in memory.
func TestCollectorStreamingIsO1(t *testing.T) {
	count := NewCountSink()
	c := New(nil, Options{Messages: true})
	c.SetSink(count)
	const msgs, window = 10000, 4
	drive(c, msgs, window)
	if len(c.Msgs) != 0 {
		t.Fatalf("streaming collector retained %d records", len(c.Msgs))
	}
	if len(c.open) > window {
		t.Fatalf("open-slot table grew to %d, want <= in-flight window %d", len(c.open), window)
	}
	if got := count.Count("msg"); got != msgs {
		t.Fatalf("sink saw %d msg lines, want %d", got, msgs)
	}
	s := c.FCTSummary()
	if s.N != msgs || s.Delivered != msgs {
		t.Fatalf("stream summary %d/%d, want %d/%d", s.Delivered, s.N, msgs, msgs)
	}
	if err := c.FinishStream(); err != nil {
		t.Fatal(err)
	}
	if count.Count("run") != 1 || count.Count("hist") == 0 {
		t.Fatalf("footer lines: run=%d hist=%d", count.Count("run"), count.Count("hist"))
	}
	if count.Closes() != 1 {
		t.Fatalf("%d closes", count.Closes())
	}
}

// TestStreamingMatchesBufferedSummary drives identical lifecycles through
// a retained and a streaming collector: the exact aggregates must agree
// exactly, the percentiles within the histogram's error bound.
func TestStreamingMatchesBufferedSummary(t *testing.T) {
	buffered := New(nil, Options{Messages: true})
	streaming := New(nil, Options{Messages: true})
	streaming.SetSink(NewCountSink())

	for _, c := range []*Collector{buffered, streaming} {
		for i := 0; i < 500; i++ {
			rec := c.StartMsg(1, 2, 1024, 0)
			fct := sim.Time(1e-6 * float64(1+i%100))
			c.MsgDelivered(rec, fct, 3, false)
		}
	}
	b, s := buffered.FCTSummary(), streaming.FCTSummary()
	if b.N != s.N || b.Delivered != s.Delivered || b.Bytes != s.Bytes || b.BytesHops != s.BytesHops {
		t.Fatalf("exact aggregates diverge: buffered %+v streaming %+v", b, s)
	}
	// The streaming mean/max come from integer nanosecond ticks, so they
	// agree with the float path only up to half-tick quantization.
	if math.Abs(float64(b.Mean-s.Mean)) > 1e-9 || math.Abs(float64(b.Max-s.Max)) > 1e-9 {
		t.Fatalf("mean/max diverge: %v/%v vs %v/%v", b.Mean, b.Max, s.Mean, s.Max)
	}
	relOK := func(a, b float64) bool {
		if b == 0 {
			return a == 0
		}
		d := a - b
		if d < 0 {
			d = -d
		}
		return d/b <= 0.02 + 1e-9 // 2^-6 bucket + interpolation-vs-rank slack
	}
	if !relOK(float64(s.P50), float64(b.P50)) || !relOK(float64(s.P99), float64(b.P99)) {
		t.Fatalf("percentiles outside bound: buffered p50=%v p99=%v, streaming p50=%v p99=%v",
			b.P50, b.P99, s.P50, s.P99)
	}
}

// TestRetainWithSink keeps the buffered API alongside a stream when
// Options.Retain is set.
func TestRetainWithSink(t *testing.T) {
	count := NewCountSink()
	c := New(nil, Options{Messages: true, Retain: true})
	c.SetSink(count)
	drive(c, 100, 4)
	if len(c.Msgs) != 100 {
		t.Fatalf("retaining collector kept %d records, want 100", len(c.Msgs))
	}
	if count.Count("msg") != 100 {
		t.Fatalf("sink saw %d msg lines, want 100", count.Count("msg"))
	}
}

// TestCollectorSinkErrorLatches: a failing sink mid-run surfaces from
// FinishStream instead of being dropped.
func TestCollectorSinkErrorLatches(t *testing.T) {
	c := New(nil, Options{Messages: true})
	c.SetSink(NewJSONLSink(&failingWriter{allow: 0}).FlushEvery(1))
	drive(c, 10, 2)
	if c.SinkErr() == nil {
		t.Fatal("write failures did not latch")
	}
	if err := c.FinishStream(); !errors.Is(err, errDiskFull) {
		t.Fatalf("FinishStream = %v, want disk full", err)
	}
}

// TestStreamFooterOrdering: streamed docs carry msg lines first and end
// with hist/chan/run footers, all self-describing.
func TestStreamFooterOrdering(t *testing.T) {
	var buf bytes.Buffer
	c := New(nil, Options{Messages: true})
	c.SetSink(NewJSONLSink(&buf))
	drive(c, 50, 4)
	if err := c.FinishStream(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var kinds []string
	for _, l := range lines {
		var m struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("bad line %q: %v", l, err)
		}
		kinds = append(kinds, m.Kind)
	}
	if kinds[len(kinds)-1] != "run" {
		t.Fatalf("last streamed line is %q, want run", kinds[len(kinds)-1])
	}
	for i, k := range kinds[:50] {
		if k != "msg" {
			t.Fatalf("line %d is %q, want msg", i, k)
		}
	}
	if !strings.Contains(strings.Join(kinds, ","), "hist") {
		t.Fatal("no hist line in streamed footer")
	}
}
