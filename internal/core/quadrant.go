// Package core implements PARX — Pattern-Aware Routing for 2-D HyperX
// topologies — the primary contribution of Domke et al. (SC '19, Sec. 3.2).
//
// PARX abuses InfiniBand's LMC multi-LID feature to give every node pair a
// concurrent choice between minimal and non-minimal static routes: each HCA
// port is assigned 4 LIDs (LMC=2), and while computing the forwarding
// tables toward LID_i the engine virtually removes all links inside one
// half of the HyperX (rules R1-R4), forcing detours for some quadrant
// combinations and guaranteeing minimal paths for others. The MPI layer
// then picks the destination LID by message size (Table 1): small messages
// take minimal paths for latency, large messages take the detour paths to
// spread load over the additional dimension-links. Route computation is
// communication-demand aware (SAR-style), and a final DFSSSP-style
// virtual-lane assignment makes the whole path set deadlock-free.
package core

import "fmt"

// Quadrant identifies one quarter of an even-dimension 2-D HyperX
// (Sec. 3.2.1, Fig. 3). The geometry follows from Table 1's minimal-path
// entries: Q0 is left-top, Q1 left-bottom, Q2 right-bottom, Q3 right-top.
type Quadrant uint8

const (
	Q0 Quadrant = iota // left, top
	Q1                 // left, bottom
	Q2                 // right, bottom
	Q3                 // right, top
)

func (q Quadrant) String() string { return fmt.Sprintf("Q%d", uint8(q)) }

// Left reports whether the quadrant lies in the left half (dimension 0).
func (q Quadrant) Left() bool { return q == Q0 || q == Q1 }

// Top reports whether the quadrant lies in the top half (dimension 1).
func (q Quadrant) Top() bool { return q == Q0 || q == Q3 }

// QuadrantOf maps 2-D switch coordinates to their quadrant given the
// lattice shape.
func QuadrantOf(coord []int, shape []int) Quadrant {
	left := coord[0] < shape[0]/2
	top := coord[1] < shape[1]/2
	switch {
	case left && top:
		return Q0
	case left:
		return Q1
	case !left && !top:
		return Q2
	default:
		return Q3
	}
}

// Half identifies the region whose internal links rule R1-R4 removes while
// routing toward one of the four destination LIDs.
type Half uint8

const (
	LeftHalf Half = iota
	RightHalf
	TopHalf
	BottomHalf
)

func (h Half) String() string {
	switch h {
	case LeftHalf:
		return "left"
	case RightHalf:
		return "right"
	case TopHalf:
		return "top"
	default:
		return "bottom"
	}
}

// RuleFor returns the half removed when routing toward LID offset x
// (Sec. 3.2.1): R1: LID0 -> left, R2: LID1 -> right, R3: LID2 -> top,
// R4: LID3 -> bottom.
func RuleFor(lidOffset uint8) Half {
	switch lidOffset {
	case 0:
		return LeftHalf
	case 1:
		return RightHalf
	case 2:
		return TopHalf
	case 3:
		return BottomHalf
	}
	panic("core: PARX uses exactly 4 LIDs per port (LMC=2)")
}

// InHalf reports whether 2-D coordinates lie inside the half.
func InHalf(coord []int, shape []int, h Half) bool {
	switch h {
	case LeftHalf:
		return coord[0] < shape[0]/2
	case RightHalf:
		return coord[0] >= shape[0]/2
	case TopHalf:
		return coord[1] < shape[1]/2
	default:
		return coord[1] >= shape[1]/2
	}
}

// lidTableSmall is Table 1a: the valid destination-LID offsets x for small
// messages, indexed [src quadrant][dst quadrant]. Where two choices exist
// the PML picks one at random (Sec. 3.2.4).
var lidTableSmall = [4][4][]uint8{
	Q0: {Q0: {1, 3}, Q1: {1}, Q2: {0, 2}, Q3: {3}},
	Q1: {Q0: {1}, Q1: {1, 2}, Q2: {2}, Q3: {0, 3}},
	Q2: {Q0: {1, 3}, Q1: {2}, Q2: {0, 2}, Q3: {0}},
	Q3: {Q0: {3}, Q1: {1, 2}, Q2: {0}, Q3: {0, 3}},
}

// lidTableLarge is Table 1b: the offsets for large messages, forcing
// non-minimal detours where possible.
var lidTableLarge = [4][4][]uint8{
	Q0: {Q0: {0, 2}, Q1: {0}, Q2: {0, 2}, Q3: {2}},
	Q1: {Q0: {0}, Q1: {0, 3}, Q2: {3}, Q3: {0, 3}},
	Q2: {Q0: {1, 3}, Q1: {3}, Q2: {1, 3}, Q3: {1}},
	Q3: {Q0: {2}, Q1: {1, 2}, Q2: {1}, Q3: {1, 2}},
}

// LIDChoices returns the valid destination-LID offsets per Table 1.
func LIDChoices(src, dst Quadrant, large bool) []uint8 {
	if large {
		return lidTableLarge[src][dst]
	}
	return lidTableSmall[src][dst]
}
