package core_test

import (
	"fmt"

	"github.com/hpcsim/t2hx/internal/core"
	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// ExamplePARX routes a small even-dimension 2-D HyperX with PARX and shows
// the minimal/non-minimal path pair the LMC multi-pathing provides.
func ExamplePARX() {
	hx := topo.NewHyperX(topo.HyperXConfig{
		S: []int{4, 4}, T: 1,
		Bandwidth: topo.QDRBandwidth, Latency: topo.QDRLinkLatency,
	})
	tables, err := core.PARX(hx, core.Config{MaxVL: 8})
	if err != nil {
		panic(err)
	}
	src := hx.TerminalsOf(hx.SwitchAt(0, 0))[0]
	dst := hx.TerminalsOf(hx.SwitchAt(1, 0))[0] // same quadrant, adjacent
	small := core.LIDChoices(core.Q0, core.Q0, false)[0]
	large := core.LIDChoices(core.Q0, core.Q0, true)[0]
	ps, _ := tables.Path(src, tables.LIDFor(dst, small))
	pl, _ := tables.Path(src, tables.LIDFor(dst, large))
	fmt.Printf("small-message LID%d: %d switch hop(s)\n", small, route.SwitchHops(ps))
	fmt.Printf("large-message LID%d: %d switch hop(s)\n", large, route.SwitchHops(pl))
	// Output:
	// small-message LID1: 1 switch hop(s)
	// large-message LID0: 2 switch hop(s)
}

// ExampleSelectLIDOffset shows the bfo PML's Table-1 selection.
func ExampleSelectLIDOffset() {
	r := sim.NewRand(7)
	fmt.Println("Q0->Q1, 64 B: LID", core.SelectLIDOffset(core.Q0, core.Q1, 64, core.DefaultThreshold, r))
	fmt.Println("Q0->Q1, 1 MiB: LID", core.SelectLIDOffset(core.Q0, core.Q1, 1<<20, core.DefaultThreshold, r))
	// Output:
	// Q0->Q1, 64 B: LID 1
	// Q0->Q1, 1 MiB: LID 0
}
