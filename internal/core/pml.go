package core

import (
	"github.com/hpcsim/t2hx/internal/sim"
)

// DefaultThreshold is the small/large message boundary in bytes determined
// with Multi-PingPong and mpiGraph probes on the real system (Sec. 3.2.4):
// messages of 512 bytes and above are routed over the non-minimal LIDs.
const DefaultThreshold int64 = 512

// SelectLIDOffset implements the modified bfo point-to-point messaging
// layer's destination-LID selection (Sec. 3.2.4): given the source and
// destination quadrants and the message size, pick the LID offset x from
// Table 1, choosing randomly when two alternatives are listed.
func SelectLIDOffset(src, dst Quadrant, size, threshold int64, r *sim.Rand) uint8 {
	choices := LIDChoices(src, dst, size >= threshold)
	if len(choices) == 1 {
		return choices[0]
	}
	return choices[r.Intn(len(choices))]
}
