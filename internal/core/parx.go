package core

import (
	"fmt"

	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/topo"
)

// LMC is PARX's LID mask control: 2^2 = 4 virtual LIDs per port, one per
// rule R1-R4.
const LMC uint8 = 2

// QuadrantBlock is the LID block size per quadrant (Sec. 3.2.1, footnote 5:
// Q0 := 0...999, Q1 := 1000...1999, ...), so the PML can identify a port's
// quadrant as floor(LID/1000).
const QuadrantBlock = 1000

// Demands is the normalized communication-demand matrix ingested by PARX:
// Demands[src][dst] in [0,255] where 0 means no traffic and 255 the highest
// recorded demand between two ranks/nodes (Sec. 3.2.3). Indices are
// terminal indices in graph order. A nil matrix routes
// workload-obliviously (every path weighs +1, like DFSSSP).
type Demands [][]uint8

// Config tunes the PARX engine.
type Config struct {
	// MaxVL is the virtual-lane budget; the paper's QDR hardware has 8 and
	// PARX needed 5-8 depending on the ingested profile (footnote 8).
	MaxVL int
	// Demands is the optional communication profile.
	Demands Demands
}

// PARX computes pattern-aware routing tables for a 2-D HyperX with even
// dimensions, implementing Algorithm 1:
//
//  1. assign quadrant-coded base LIDs (LMC=2),
//  2. for every destination and every LID offset i, compute balanced
//     shortest paths on the graph with rule R_i's half removed,
//  3. weight the balancing by the normalized communication demands,
//     processing destinations with recorded demands first,
//  4. assign all paths (including all virtual LIDs) to virtual lanes with
//     acyclic channel-dependency graphs.
//
// The returned tables are fault-tolerant in the limited sense of footnote
// 7: when a rule disconnects a destination (possible on degraded fabrics),
// that LID falls back to unmasked shortest paths.
func PARX(hx *topo.HyperX, cfg Config) (*route.Tables, error) {
	if hx.Dims() != 2 {
		return nil, fmt.Errorf("core: PARX prototype supports exactly 2-D HyperX, got %d-D", hx.Dims())
	}
	shape := hx.Cfg.S
	if shape[0]%2 != 0 || shape[1]%2 != 0 {
		return nil, fmt.Errorf("core: PARX needs even dimensions, got %dx%d", shape[0], shape[1])
	}
	if cfg.MaxVL <= 0 {
		cfg.MaxVL = 8
	}
	if cfg.Demands != nil && len(cfg.Demands) != hx.NumTerminals() {
		return nil, fmt.Errorf("core: demand matrix is %dx, fabric has %d terminals",
			len(cfg.Demands), hx.NumTerminals())
	}

	policy, err := quadrantLIDPolicy(hx)
	if err != nil {
		return nil, err
	}
	t := route.NewTables(hx.Graph, "parx", LMC, policy)

	terms := hx.Terminals()
	// Destination order: demand destinations first (Algorithm 1 optimizes
	// the listed nodes before filling in the rest).
	order := make([]int, 0, len(terms))
	var hasDemand []bool
	if cfg.Demands != nil {
		hasDemand = make([]bool, len(terms))
		for _, row := range cfg.Demands {
			for di, w := range row {
				if w > 0 {
					hasDemand[di] = true
				}
			}
		}
		for i := range terms {
			if hasDemand[i] {
				order = append(order, i)
			}
		}
		for i := range terms {
			if !hasDemand[i] {
				order = append(order, i)
			}
		}
	} else {
		for i := range terms {
			order = append(order, i)
		}
	}

	opts := route.SSSPOptions{
		DstOrder: order,
		MaskFor: func(_ topo.NodeID, lidOffset uint8) route.LinkMask {
			half := RuleFor(lidOffset)
			return func(l *topo.Link) bool {
				a, b := hx.Nodes[l.A], hx.Nodes[l.B]
				if a.Kind != topo.Switch || b.Kind != topo.Switch {
					return true
				}
				// Remove links with BOTH endpoints inside the half;
				// half-crossing links survive so every switch stays
				// attached to the rest of the fabric.
				return !(InHalf(a.Coord, shape, half) && InHalf(b.Coord, shape, half))
			}
		},
	}
	if cfg.Demands != nil {
		opts.PathWeight = func(src, dst topo.NodeID) float64 {
			di := hx.TerminalIndex(dst)
			w := cfg.Demands[hx.TerminalIndex(src)][di]
			if w > 0 {
				return float64(w)
			}
			if hasDemand[di] {
				// Algorithm 1's first loop updates weights ONLY for the
				// demand pairs of a demand destination — other sources
				// toward it contribute nothing.
				return 0
			}
			// Second loop ("all other nodes"): +1 per path.
			return 1
		}
	}
	if err := route.SSSPCore(t, opts); err != nil {
		return nil, err
	}
	if err := route.AssignVLs(t, cfg.MaxVL); err != nil {
		return nil, err
	}
	t.Freeze()
	return t, nil
}

// quadrantLIDPolicy assigns base LIDs in quadrant blocks: the k-th terminal
// of quadrant q gets base LID q*1000 + 4*(k+1).
func quadrantLIDPolicy(hx *topo.HyperX) (route.LIDPolicy, error) {
	span := 1 << LMC
	counts := [4]int{}
	bases := make(map[topo.NodeID]route.LID, hx.NumTerminals())
	for _, tm := range hx.Terminals() {
		q := QuadrantOf(hx.Coord(tm), hx.Cfg.S)
		base := route.LID(int(q)*QuadrantBlock + span*(counts[q]+1))
		if int(base) >= (int(q)+1)*QuadrantBlock {
			return nil, fmt.Errorf("core: quadrant %v overflows its %d-LID block", q, QuadrantBlock)
		}
		bases[tm] = base
		counts[q]++
	}
	return func(_ int, term topo.NodeID) route.LID {
		return bases[term]
	}, nil
}

// QuadrantOfLID recovers the quadrant from a PARX LID, the way the modified
// bfo PML does on the real system: q := floor(LID/1000) (footnote 9).
func QuadrantOfLID(lid route.LID) Quadrant {
	return Quadrant(int(lid) / QuadrantBlock % 4)
}

// QuadrantOfTerminal returns the quadrant of a terminal on the HyperX.
func QuadrantOfTerminal(hx *topo.HyperX, tm topo.NodeID) Quadrant {
	return QuadrantOf(hx.Coord(tm), hx.Cfg.S)
}
