package core

import (
	"testing"

	"github.com/hpcsim/t2hx/internal/sim"
)

func TestQuadrantGeometry(t *testing.T) {
	shape := []int{12, 8}
	cases := []struct {
		coord []int
		want  Quadrant
	}{
		{[]int{0, 0}, Q0},  // left-top
		{[]int{5, 3}, Q0},  // still left-top
		{[]int{0, 4}, Q1},  // left-bottom
		{[]int{5, 7}, Q1},  //
		{[]int{6, 4}, Q2},  // right-bottom
		{[]int{11, 7}, Q2}, //
		{[]int{6, 0}, Q3},  // right-top
		{[]int{11, 3}, Q3}, //
	}
	for _, c := range cases {
		if got := QuadrantOf(c.coord, shape); got != c.want {
			t.Errorf("QuadrantOf(%v) = %v, want %v", c.coord, got, c.want)
		}
	}
}

func TestQuadrantHalfMembership(t *testing.T) {
	shape := []int{4, 4}
	// Q0 (left-top) must be inside left and top halves only.
	coord := []int{0, 0}
	if !InHalf(coord, shape, LeftHalf) || !InHalf(coord, shape, TopHalf) {
		t.Error("Q0 coordinate not in left/top halves")
	}
	if InHalf(coord, shape, RightHalf) || InHalf(coord, shape, BottomHalf) {
		t.Error("Q0 coordinate leaked into right/bottom halves")
	}
}

func TestRuleForMapping(t *testing.T) {
	// Sec. 3.2.1: R1..R4 map LID0..LID3 to left/right/top/bottom.
	want := []Half{LeftHalf, RightHalf, TopHalf, BottomHalf}
	for off := uint8(0); off < 4; off++ {
		if got := RuleFor(off); got != want[off] {
			t.Errorf("RuleFor(%d) = %v, want %v", off, got, want[off])
		}
	}
}

// quadrantHalf reports whether quadrant q intersects half h.
func quadrantInHalf(q Quadrant, h Half) bool {
	switch h {
	case LeftHalf:
		return q.Left()
	case RightHalf:
		return !q.Left()
	case TopHalf:
		return q.Top()
	default:
		return !q.Top()
	}
}

// Table 1a invariant: for small messages, the removed half must contain
// NEITHER a shared region that breaks minimality. Precisely: if src and dst
// share a half (same column or row of quadrants), the removal must not
// touch that shared half; if they are diagonal, any listed choice keeps a
// minimal two-hop route (always true since only half-internal links are
// removed).
func TestTable1SmallPreservesMinimality(t *testing.T) {
	for s := Q0; s <= Q3; s++ {
		for d := Q0; d <= Q3; d++ {
			for _, x := range LIDChoices(s, d, false) {
				h := RuleFor(x)
				shareLR := s.Left() == d.Left()
				shareTB := s.Top() == d.Top()
				if shareLR && (h == LeftHalf || h == RightHalf) && quadrantInHalf(s, h) {
					t.Errorf("small %v->%v choice %d removes the shared %v half", s, d, x, h)
				}
				if shareTB && (h == TopHalf || h == BottomHalf) && quadrantInHalf(s, h) {
					t.Errorf("small %v->%v choice %d removes the shared %v half", s, d, x, h)
				}
			}
		}
	}
}

// Table 1b invariant: for large messages between non-diagonal quadrant
// pairs, the removal must hit the shared half, forcing the detour.
func TestTable1LargeForcesDetour(t *testing.T) {
	for s := Q0; s <= Q3; s++ {
		for d := Q0; d <= Q3; d++ {
			diag := s.Left() != d.Left() && s.Top() != d.Top()
			if diag {
				continue
			}
			for _, x := range LIDChoices(s, d, true) {
				h := RuleFor(x)
				// The removed half must contain both src and dst (their
				// shared half) so intra-half traffic detours.
				if !(quadrantInHalf(s, h) && quadrantInHalf(d, h)) {
					t.Errorf("large %v->%v choice %d removes %v, which does not cover both", s, d, x, h)
				}
			}
		}
	}
}

// Criterion 3 of Sec. 3.2: for ALL quadrant pairs both a small and a large
// choice exist.
func TestTable1ChoiceExistsForAllPairs(t *testing.T) {
	for s := Q0; s <= Q3; s++ {
		for d := Q0; d <= Q3; d++ {
			if len(LIDChoices(s, d, false)) == 0 {
				t.Errorf("no small choice for %v->%v", s, d)
			}
			if len(LIDChoices(s, d, true)) == 0 {
				t.Errorf("no large choice for %v->%v", s, d)
			}
		}
	}
}

// Reproduce Table 1 literally (the paper's published matrix).
func TestTable1MatchesPaper(t *testing.T) {
	small := [4][4][]uint8{
		{{1, 3}, {1}, {0, 2}, {3}},
		{{1}, {1, 2}, {2}, {0, 3}},
		{{1, 3}, {2}, {0, 2}, {0}},
		{{3}, {1, 2}, {0}, {0, 3}},
	}
	large := [4][4][]uint8{
		{{0, 2}, {0}, {0, 2}, {2}},
		{{0}, {0, 3}, {3}, {0, 3}},
		{{1, 3}, {3}, {1, 3}, {1}},
		{{2}, {1, 2}, {1}, {1, 2}},
	}
	for s := 0; s < 4; s++ {
		for d := 0; d < 4; d++ {
			if !equalU8(LIDChoices(Quadrant(s), Quadrant(d), false), small[s][d]) {
				t.Errorf("Table 1a [%d][%d] = %v, want %v", s, d,
					LIDChoices(Quadrant(s), Quadrant(d), false), small[s][d])
			}
			if !equalU8(LIDChoices(Quadrant(s), Quadrant(d), true), large[s][d]) {
				t.Errorf("Table 1b [%d][%d] = %v, want %v", s, d,
					LIDChoices(Quadrant(s), Quadrant(d), true), large[s][d])
			}
		}
	}
}

func equalU8(a, b []uint8) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSelectLIDOffsetRespectsThreshold(t *testing.T) {
	r := sim.NewRand(1)
	// 511 bytes -> small table; 512 -> large (Sec. 3.2.4).
	for i := 0; i < 100; i++ {
		x := SelectLIDOffset(Q0, Q1, 511, DefaultThreshold, r)
		if x != 1 {
			t.Fatalf("small Q0->Q1 offset = %d, want 1", x)
		}
		x = SelectLIDOffset(Q0, Q1, 512, DefaultThreshold, r)
		if x != 0 {
			t.Fatalf("large Q0->Q1 offset = %d, want 0", x)
		}
	}
}

func TestSelectLIDOffsetRandomizesAlternatives(t *testing.T) {
	r := sim.NewRand(2)
	seen := map[uint8]int{}
	for i := 0; i < 200; i++ {
		seen[SelectLIDOffset(Q0, Q0, 1, DefaultThreshold, r)]++
	}
	if seen[1] == 0 || seen[3] == 0 {
		t.Errorf("alternatives not randomized: %v", seen)
	}
	if len(seen) != 2 {
		t.Errorf("unexpected offsets: %v", seen)
	}
}
