package core

import (
	"testing"

	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/topo"
)

func testHX(t *testing.T) *topo.HyperX {
	t.Helper()
	return topo.NewHyperX(topo.HyperXConfig{S: []int{6, 4}, T: 2, Bandwidth: 1e9, Latency: 1e-7})
}

func TestPARXRejectsBadShapes(t *testing.T) {
	hx3 := topo.NewHyperX(topo.HyperXConfig{S: []int{2, 2, 2}, T: 1, Bandwidth: 1e9, Latency: 1e-7})
	if _, err := PARX(hx3, Config{}); err == nil {
		t.Error("3-D HyperX accepted; PARX prototype is 2-D only")
	}
	odd := topo.NewHyperX(topo.HyperXConfig{S: []int{3, 4}, T: 1, Bandwidth: 1e9, Latency: 1e-7})
	if _, err := PARX(odd, Config{}); err == nil {
		t.Error("odd dimension accepted; PARX needs even dimensions")
	}
}

func TestPARXQuadrantLIDPolicy(t *testing.T) {
	hx := testHX(t)
	tb, err := PARX(hx, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range hx.Terminals() {
		q := QuadrantOfTerminal(hx, tm)
		base := tb.LIDFor(tm, 0)
		if QuadrantOfLID(base) != q {
			t.Fatalf("terminal in %v got base LID %d (block %v)", q, base, QuadrantOfLID(base))
		}
		if int(base)%4 != 0 {
			t.Fatalf("base LID %d not 4-aligned for LMC=2", base)
		}
	}
}

func TestPARXReachableAndDeadlockFree(t *testing.T) {
	hx := testHX(t)
	tb, err := PARX(hx, Config{MaxVL: 8})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := route.Validate(tb)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unreachable != 0 {
		t.Fatalf("%d unreachable (src,LID) paths", rep.Unreachable)
	}
	if !rep.DeadlockFree {
		t.Fatalf("PARX not deadlock-free on %d VLs", rep.VLs)
	}
	if rep.VLs > 8 {
		t.Fatalf("PARX used %d VLs, hardware limit is 8", rep.VLs)
	}
	want := hx.NumTerminals() * (hx.NumTerminals() - 1) * 4
	if rep.Paths != want {
		t.Errorf("paths = %d, want %d (all 4 LIDs)", rep.Paths, want)
	}
}

// The defining property (criteria 1+2 of Sec. 3.2): for a same-quadrant
// pair, the small-message LID gives a minimal path while the large-message
// LID detours.
func TestPARXMinimalAndDetourPathsCoexist(t *testing.T) {
	hx := testHX(t)
	tb, err := PARX(hx, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Pick two terminals on different switches, both in Q0 and in the same
	// row (adjacent switches): minimal distance is 1 switch hop.
	src := hx.TerminalsOf(hx.SwitchAt(0, 0))[0]
	dst := hx.TerminalsOf(hx.SwitchAt(1, 0))[0]
	if QuadrantOfTerminal(hx, src) != Q0 || QuadrantOfTerminal(hx, dst) != Q0 {
		t.Fatal("test setup: terminals not in Q0")
	}
	// Small choice 1 or 3: minimal (1 hop).
	for _, off := range LIDChoices(Q0, Q0, false) {
		p, err := tb.Path(src, tb.LIDFor(dst, off))
		if err != nil {
			t.Fatal(err)
		}
		if h := route.SwitchHops(p); h != 1 {
			t.Errorf("small LID%d path has %d switch hops, want 1 (minimal)", off, h)
		}
	}
	// Large choice 0 (remove left half; both are in the left half) must
	// detour: > 1 switch hop.
	detours := 0
	for _, off := range LIDChoices(Q0, Q0, true) {
		p, err := tb.Path(src, tb.LIDFor(dst, off))
		if err != nil {
			t.Fatal(err)
		}
		if route.SwitchHops(p) > 1 {
			detours++
		}
	}
	if detours == 0 {
		t.Error("no large-message LID produced a non-minimal path")
	}
}

// Non-minimal routing must increase the aggregate bandwidth between two
// adjacent switches: under PARX the 4 LIDs of the T*T pairs use more than
// the single direct cable.
func TestPARXSpreadsAdjacentSwitchTraffic(t *testing.T) {
	hx := testHX(t)
	tb, err := PARX(hx, Config{})
	if err != nil {
		t.Fatal(err)
	}
	swA, swB := hx.SwitchAt(0, 0), hx.SwitchAt(1, 0)
	first := make(map[topo.ChannelID]bool)
	for _, src := range hx.TerminalsOf(swA) {
		for _, dst := range hx.TerminalsOf(swB) {
			for off := uint8(0); off < 4; off++ {
				p, err := tb.Path(src, tb.LIDFor(dst, off))
				if err != nil {
					t.Fatal(err)
				}
				// First switch-switch channel out of swA.
				if len(p) >= 2 {
					first[p[1]] = true
				}
			}
		}
	}
	if len(first) < 2 {
		t.Errorf("all PARX paths leave swA over %d channel(s); want spread over >= 2", len(first))
	}
}

func TestPARXDemandIngestion(t *testing.T) {
	hx := testHX(t)
	n := hx.NumTerminals()
	// A demand matrix with one hot pair.
	d := make(Demands, n)
	for i := range d {
		d[i] = make([]uint8, n)
	}
	d[0][1] = 255
	tb, err := PARX(hx, Config{Demands: d})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := route.Validate(tb)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unreachable != 0 || !rep.DeadlockFree {
		t.Fatalf("demand-driven PARX invalid: %+v", rep)
	}
}

func TestPARXDemandMatrixSizeChecked(t *testing.T) {
	hx := testHX(t)
	if _, err := PARX(hx, Config{Demands: make(Demands, 3)}); err == nil {
		t.Error("wrong-size demand matrix accepted")
	}
}

func TestPARXOnDegradedFabric(t *testing.T) {
	hx := testHX(t)
	topo.DegradeSwitchLinks(hx.Graph, 5, 11)
	tb, err := PARX(hx, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := route.Validate(tb)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unreachable != 0 {
		t.Fatalf("degraded PARX left %d unreachable paths (fallback broken)", rep.Unreachable)
	}
	if !rep.DeadlockFree {
		t.Fatal("degraded PARX not deadlock-free")
	}
}

func TestPARXDeterministic(t *testing.T) {
	hx1, hx2 := testHX(t), testHX(t)
	t1, err := PARX(hx1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := PARX(hx2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range hx1.Terminals() {
		for j := range hx1.Terminals() {
			if i == j {
				continue
			}
			for off := uint8(0); off < 4; off++ {
				lid := t1.BaseLID[j] + route.LID(off)
				p1, _ := t1.Path(src, lid)
				p2, _ := t2.Path(hx2.Terminals()[i], lid)
				if len(p1) != len(p2) {
					t.Fatalf("non-deterministic PARX path for (%d,%d,LID%d)", i, j, off)
				}
				for k := range p1 {
					if p1[k] != p2[k] {
						t.Fatalf("non-deterministic PARX path for (%d,%d,LID%d)", i, j, off)
					}
				}
			}
		}
	}
}

func TestPARXOnPaperHyperX(t *testing.T) {
	if testing.Short() {
		t.Skip("large fabric")
	}
	hx := topo.NewPaperHyperX(true, 42)
	tb, err := PARX(hx, Config{MaxVL: 8})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := route.Validate(tb)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unreachable != 0 {
		t.Fatalf("%d unreachable paths on paper HyperX", rep.Unreachable)
	}
	if !rep.DeadlockFree {
		t.Fatal("PARX not deadlock-free on paper HyperX")
	}
	// Footnote 8: PARX needs 5-8 VLs on the real system; our path set must
	// also stay within the 8-VL hardware budget.
	if rep.VLs > 8 {
		t.Errorf("PARX used %d VLs, above the QDR hardware limit", rep.VLs)
	}
	t.Logf("PARX on 12x8: VLs=%d maxLoad=%d avgHops=%.2f", rep.VLs, rep.MaxChannelLoad, rep.AvgSwitchHops)
}
