package place

import (
	"testing"
	"testing/quick"

	"github.com/hpcsim/t2hx/internal/topo"
)

func terms(n int) []topo.NodeID {
	out := make([]topo.NodeID, n)
	for i := range out {
		out[i] = topo.NodeID(i + 100)
	}
	return out
}

func TestLinearIsPrefix(t *testing.T) {
	ts := terms(20)
	got, err := Place(Linear, ts, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range got {
		if id != ts[i] {
			t.Fatalf("linear[%d] = %d, want %d", i, id, ts[i])
		}
	}
}

func TestPlaceRejectsBadN(t *testing.T) {
	ts := terms(4)
	if _, err := Place(Linear, ts, 0, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Place(Linear, ts, 5, 0); err == nil {
		t.Error("n>len accepted")
	}
	if _, err := Place(Strategy("bogus"), ts, 2, 0); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func noDuplicates(t *testing.T, got []topo.NodeID) {
	t.Helper()
	seen := map[topo.NodeID]bool{}
	for _, id := range got {
		if seen[id] {
			t.Fatalf("duplicate node %d in placement", id)
		}
		seen[id] = true
	}
}

func TestClusteredProperties(t *testing.T) {
	f := func(seed uint64) bool {
		ts := terms(100)
		got, err := Place(Clustered, ts, 60, seed)
		if err != nil || len(got) != 60 {
			return false
		}
		seen := map[topo.NodeID]bool{}
		for _, id := range got {
			if seen[id] {
				return false
			}
			seen[id] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestClusteredMostlyConsecutive(t *testing.T) {
	ts := terms(1000)
	got, err := Place(Clustered, ts, 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	noDuplicates(t, got)
	// With p=0.8 the expected stride is 1.25: the majority of consecutive
	// rank pairs should sit on adjacent hostfile slots.
	adjacent := 0
	for i := 1; i < len(got); i++ {
		if got[i] == got[i-1]+1 {
			adjacent++
		}
	}
	if frac := float64(adjacent) / float64(len(got)-1); frac < 0.6 {
		t.Errorf("adjacent fraction = %.2f, want >= 0.6 for p=0.8", frac)
	}
}

func TestClusteredFullMachine(t *testing.T) {
	// Requesting every node must still succeed (wrap-around path).
	ts := terms(50)
	got, err := Place(Clustered, ts, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	noDuplicates(t, got)
	if len(got) != 50 {
		t.Fatalf("len = %d, want 50", len(got))
	}
}

func TestRandomCoversAndPermutes(t *testing.T) {
	ts := terms(64)
	got, err := Place(Random, ts, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	noDuplicates(t, got)
	// Should not be the identity placement.
	same := 0
	for i := range got {
		if got[i] == ts[i] {
			same++
		}
	}
	if same > 16 {
		t.Errorf("random placement too close to linear: %d fixed points", same)
	}
}

func TestPlacementsDeterministicPerSeed(t *testing.T) {
	ts := terms(128)
	for _, s := range []Strategy{Clustered, Random} {
		a, _ := Place(s, ts, 50, 9)
		b, _ := Place(s, ts, 50, 9)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: same seed, different placement", s)
			}
		}
		c, _ := Place(s, ts, 50, 10)
		diff := false
		for i := range a {
			if a[i] != c[i] {
				diff = true
			}
		}
		if !diff {
			t.Errorf("%s: different seeds gave identical placement", s)
		}
	}
}
