// Package place implements the MPI rank-to-node placement strategies of
// Sec. 4.4.3: linear (ranks on consecutive nodes, the common scheduler
// behaviour), clustered (consecutive with geometrically distributed gaps,
// simulating a fragmented production system), and random (the bottleneck
// mitigation of Sec. 3.1).
package place

import (
	"fmt"

	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// Strategy names a placement scheme.
type Strategy string

const (
	Linear    Strategy = "linear"
	Clustered Strategy = "clustered"
	Random    Strategy = "random"
)

// ClusteredP is the success probability of the geometric stride draw: the
// paper picked 80%.
const ClusteredP = 0.8

// Place selects n terminals from the fabric's terminal list (hostfile
// order) for ranks 0..n-1 using the given strategy and seed.
func Place(s Strategy, terms []topo.NodeID, n int, seed uint64) ([]topo.NodeID, error) {
	if n < 1 || n > len(terms) {
		return nil, fmt.Errorf("place: need 1 <= n <= %d, got %d", len(terms), n)
	}
	switch s {
	case Linear:
		return append([]topo.NodeID{}, terms[:n]...), nil
	case Clustered:
		return clustered(terms, n, seed), nil
	case Random:
		return random(terms, n, seed), nil
	}
	return nil, fmt.Errorf("place: unknown strategy %q", s)
}

// clustered draws the stride from node n_i to n_j from a geometric
// distribution with p = 0.8, i.e. j := i + delta (Sec. 4.4.3); when the
// hostfile runs out it wraps to the lowest unused node, like a scheduler
// backfilling a fragmented machine.
func clustered(terms []topo.NodeID, n int, seed uint64) []topo.NodeID {
	rng := sim.NewRand(seed)
	used := make([]bool, len(terms))
	out := make([]topo.NodeID, 0, n)
	pos := 0
	used[0] = true
	out = append(out, terms[0])
	for len(out) < n {
		pos += rng.Geometric(ClusteredP)
		if pos >= len(terms) {
			// Wrap: take the first unused slot.
			pos = 0
			for pos < len(terms) && used[pos] {
				pos++
			}
		}
		// Skip used slots forward.
		for pos < len(terms) && used[pos] {
			pos++
		}
		if pos >= len(terms) {
			pos = 0
			for pos < len(terms) && used[pos] {
				pos++
			}
		}
		used[pos] = true
		out = append(out, terms[pos])
	}
	return out
}

// random assigns ranks to a uniformly random subset of nodes in random
// order (Sec. 3.1).
func random(terms []topo.NodeID, n int, seed uint64) []topo.NodeID {
	rng := sim.NewRand(seed)
	perm := rng.Perm(len(terms))
	out := make([]topo.NodeID, n)
	for i := 0; i < n; i++ {
		out[i] = terms[perm[i]]
	}
	return out
}
