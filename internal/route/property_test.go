package route

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// Property: on random fault-free HyperX shapes, SSSP paths are minimal —
// the switch-hop count equals the number of differing lattice coordinates.
func TestSSSPMinimalityProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		s0 := 2 + int(a)%4
		s1 := 2 + int(b)%3
		T := 1 + int(c)%2
		hx := topo.NewHyperX(topo.HyperXConfig{S: []int{s0, s1}, T: T, Bandwidth: 1e9, Latency: 1e-7})
		tb, err := SSSP(hx.Graph, 0)
		if err != nil {
			return false
		}
		for i, src := range hx.Terminals() {
			for j, dst := range hx.Terminals() {
				if i == j {
					continue
				}
				p, err := tb.Path(src, tb.BaseLID[j])
				if err != nil {
					return false
				}
				cs, cd := hx.Coord(src), hx.Coord(dst)
				want := 0
				for d := range cs {
					if cs[d] != cd[d] {
						want++
					}
				}
				if SwitchHops(p) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: under progressive random degradation, every engine either
// routes all pairs (validated loop- and deadlock-free) or reports an
// error — never a silent bad table. hxmin is the deliberate exception to
// full reachability: its restricted escapes may strand pairs on a connected
// fabric, but it must say so (nonzero Unreachable, zero loops) and stay
// deadlock-free on its single lane.
func TestEnginesUnderProgressiveFailure(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		hx := topo.NewHyperX(topo.HyperXConfig{S: []int{4, 4}, T: 1, Bandwidth: 1e9, Latency: 1e-7})
		for round := 0; round < 5; round++ {
			topo.DegradeSwitchLinks(hx.Graph, 5, seed+uint64(round)*17)
			engines := map[string]func() (*Tables, error){
				"sssp":   func() (*Tables, error) { return SSSP(hx.Graph, 0) },
				"dfsssp": func() (*Tables, error) { return DFSSSP(hx.Graph, 0, 8) },
				"updown": func() (*Tables, error) { return UpDown(hx.Graph, 0) },
				"lash":   func() (*Tables, error) { return LASH(hx.Graph, 0, 8) },
				"hxmin":  func() (*Tables, error) { return HXMin(hx, 0) },
				"hxnm":   func() (*Tables, error) { return HXNonMin(hx, 0, 8) },
			}
			for name, mk := range engines {
				tb, err := mk()
				if err != nil {
					continue // explicit failure is acceptable
				}
				rep, err := Validate(tb)
				if err != nil {
					t.Fatalf("%s seed=%d round=%d: %v", name, seed, round, err)
				}
				if rep.Unreachable > 0 && name != "hxmin" {
					t.Errorf("%s seed=%d round=%d: %d unreachable with no error",
						name, seed, round, rep.Unreachable)
				}
				if name == "hxmin" && hasForwardingLoop(tb) {
					t.Errorf("hxmin seed=%d round=%d: forwarding loop", seed, round)
				}
				if !rep.DeadlockFree {
					t.Errorf("%s seed=%d round=%d: deadlock-prone table", name, seed, round)
				}
				if margin := DeadlockMargin(tb, 512); margin < 0 || margin > 1 {
					t.Errorf("%s seed=%d round=%d: margin %g out of [0,1]", name, seed, round, margin)
				}
			}
		}
	}
}

// Property: the subnet manager's re-sweep invariant. Random fabrics are
// degraded in successive waves — the runtime failure sequence a fault
// schedule produces — and after every wave each engine must rebuild tables
// that still route all pairs loop-free (a loop shows up as an unreachable
// pair in Validate's walk) and deadlock-free, while never using a down
// link. Connectivity-preserving degradation means "explicit error" is not
// an acceptable outcome here, unlike TestEnginesUnderProgressiveFailure.
func TestReSweepInvariantProperty(t *testing.T) {
	f := func(seed uint64, pickTree bool) bool {
		var g *topo.Graph
		var ft *topo.FatTree
		var hx *topo.HyperX
		if pickTree {
			ft = topo.NewKaryNTree(3, 3, 1e9, 1e-7)
			g = ft.Graph
		} else {
			hx = topo.NewHyperX(topo.HyperXConfig{S: []int{4, 4}, T: 1, Bandwidth: 1e9, Latency: 1e-7})
			g = hx.Graph
		}
		engines := map[string]func() (*Tables, error){
			"sssp":   func() (*Tables, error) { return SSSP(g, 0) },
			"dfsssp": func() (*Tables, error) { return DFSSSP(g, 0, 8) },
			"updown": func() (*Tables, error) { return UpDown(g, 0) },
			"lash":   func() (*Tables, error) { return LASH(g, 0, 8) },
			"nue":    func() (*Tables, error) { return Nue(g, 0, 2) },
		}
		if pickTree {
			engines["ftree"] = func() (*Tables, error) { return FTree(ft, 0) }
		} else {
			engines["hxmin"] = func() (*Tables, error) { return HXMin(hx, 0) }
			engines["hxnm"] = func() (*Tables, error) { return HXNonMin(hx, 0, 8) }
		}
		for wave := 0; wave < 3; wave++ {
			// Each wave fails 1-3 more links at "runtime"; shortfall just
			// means the fabric is saturated with faults, which is fine.
			topo.DegradeSwitchLinks(g, 1+int(seed>>uint(wave*2))%3, seed+uint64(wave)*31)
			for name, mk := range engines {
				tb, err := mk()
				if err != nil {
					// Nue at 2 VLs can legitimately run out of cycle-free
					// parents on degraded fabrics; the SM rejects such a
					// sweep and keeps the old tables. Every other engine
					// must always rebuild.
					if name == "nue" {
						continue
					}
					t.Logf("seed=%d wave=%d %s: rebuild failed: %v", seed, wave, name, err)
					return false
				}
				rep, err := Validate(tb)
				if err != nil {
					t.Logf("seed=%d wave=%d %s: validate: %v", seed, wave, name, err)
					return false
				}
				// ftree is restricted to intact up/down ancestor chains, and
				// hxmin to low-coordinate in-line escapes, so degradation may
				// strand pairs for them (the SM reports those as unreachable);
				// every other path-based engine — including the non-minimal
				// fault-tolerant hxnm — must reach all pairs on a connected
				// fabric. Loops are never acceptable.
				lossy := name == "ftree" || name == "hxmin"
				if rep.Unreachable > 0 && !lossy {
					t.Logf("seed=%d wave=%d %s: %d unreachable/looping pairs", seed, wave, name, rep.Unreachable)
					return false
				}
				if lossy && hasForwardingLoop(tb) {
					t.Logf("seed=%d wave=%d %s: forwarding loop", seed, wave, name)
					return false
				}
				if !rep.DeadlockFree {
					t.Logf("seed=%d wave=%d %s: deadlock-prone rebuild", seed, wave, name)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// hasForwardingLoop walks every (src, dst-LID) pair and reports whether any
// hits the MaxHops loop guard (as opposed to a missing LFT entry, which is
// mere unreachability).
func hasForwardingLoop(tb *Tables) bool {
	g := tb.G
	terms := g.Terminals()
	span := 1 << tb.LMC
	for _, src := range terms {
		for di := range terms {
			for off := 0; off < span; off++ {
				_, err := tb.Path(src, tb.BaseLID[di]+LID(off))
				if err != nil && strings.Contains(err.Error(), "loop") {
					return true
				}
			}
		}
	}
	return false
}

// Property: FTree forwarding is deterministic and consistent — walking the
// LFT from any intermediate switch toward a destination always terminates
// at the right leaf.
func TestFTreeForwardingConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		ft := topo.NewKaryNTree(3, 3, 1e9, 1e-7)
		topo.DegradeSwitchLinks(ft.Graph, int(seed%15), seed)
		tb, err := FTree(ft, 0)
		if err != nil {
			return false
		}
		r := sim.NewRand(seed)
		g := ft.Graph
		terms := g.Terminals()
		for k := 0; k < 50; k++ {
			dst := terms[r.Intn(len(terms))]
			lid := tb.BaseLID[tb.TermIndex(dst)]
			sw := g.Switches()[r.Intn(g.NumSwitches())]
			cur := sw
			for hop := 0; ; hop++ {
				if hop > MaxHops {
					return false
				}
				c := tb.NextHop(cur, lid)
				if c == NoChannel {
					break // unreachable from this switch: acceptable on faults
				}
				next := g.ChannelTo(c)
				if next == dst {
					break
				}
				if g.Nodes[next].Kind != topo.Switch {
					return false // delivered to the wrong terminal
				}
				cur = next
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
