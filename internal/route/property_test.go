package route

import (
	"testing"
	"testing/quick"

	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// Property: on random fault-free HyperX shapes, SSSP paths are minimal —
// the switch-hop count equals the number of differing lattice coordinates.
func TestSSSPMinimalityProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		s0 := 2 + int(a)%4
		s1 := 2 + int(b)%3
		T := 1 + int(c)%2
		hx := topo.NewHyperX(topo.HyperXConfig{S: []int{s0, s1}, T: T, Bandwidth: 1e9, Latency: 1e-7})
		tb, err := SSSP(hx.Graph, 0)
		if err != nil {
			return false
		}
		for i, src := range hx.Terminals() {
			for j, dst := range hx.Terminals() {
				if i == j {
					continue
				}
				p, err := tb.Path(src, tb.BaseLID[j])
				if err != nil {
					return false
				}
				cs, cd := hx.Coord(src), hx.Coord(dst)
				want := 0
				for d := range cs {
					if cs[d] != cd[d] {
						want++
					}
				}
				if SwitchHops(p) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: under progressive random degradation, every engine either
// routes all pairs (validated loop- and deadlock-free) or reports an
// error — never a silent bad table.
func TestEnginesUnderProgressiveFailure(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		hx := topo.NewHyperX(topo.HyperXConfig{S: []int{4, 4}, T: 1, Bandwidth: 1e9, Latency: 1e-7})
		for round := 0; round < 5; round++ {
			topo.DegradeSwitchLinks(hx.Graph, 5, seed+uint64(round)*17)
			engines := map[string]func() (*Tables, error){
				"sssp":   func() (*Tables, error) { return SSSP(hx.Graph, 0) },
				"dfsssp": func() (*Tables, error) { return DFSSSP(hx.Graph, 0, 8) },
				"updown": func() (*Tables, error) { return UpDown(hx.Graph, 0) },
				"lash":   func() (*Tables, error) { return LASH(hx.Graph, 0, 8) },
			}
			for name, mk := range engines {
				tb, err := mk()
				if err != nil {
					continue // explicit failure is acceptable
				}
				rep, err := Validate(tb)
				if err != nil {
					t.Fatalf("%s seed=%d round=%d: %v", name, seed, round, err)
				}
				if rep.Unreachable > 0 {
					t.Errorf("%s seed=%d round=%d: %d unreachable with no error",
						name, seed, round, rep.Unreachable)
				}
				if !rep.DeadlockFree {
					t.Errorf("%s seed=%d round=%d: deadlock-prone table", name, seed, round)
				}
			}
		}
	}
}

// Property: FTree forwarding is deterministic and consistent — walking the
// LFT from any intermediate switch toward a destination always terminates
// at the right leaf.
func TestFTreeForwardingConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		ft := topo.NewKaryNTree(3, 3, 1e9, 1e-7)
		topo.DegradeSwitchLinks(ft.Graph, int(seed%15), seed)
		tb, err := FTree(ft, 0)
		if err != nil {
			return false
		}
		r := sim.NewRand(seed)
		g := ft.Graph
		terms := g.Terminals()
		for k := 0; k < 50; k++ {
			dst := terms[r.Intn(len(terms))]
			lid := tb.BaseLID[tb.TermIndex(dst)]
			sw := g.Switches()[r.Intn(g.NumSwitches())]
			cur := sw
			for hop := 0; ; hop++ {
				if hop > MaxHops {
					return false
				}
				c := tb.NextHop(cur, lid)
				if c == NoChannel {
					break // unreachable from this switch: acceptable on faults
				}
				next := g.ChannelTo(c)
				if next == dst {
					break
				}
				if g.Nodes[next].Kind != topo.Switch {
					return false // delivered to the wrong terminal
				}
				cur = next
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
