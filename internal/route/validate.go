package route

import (
	"fmt"

	"github.com/hpcsim/t2hx/internal/topo"
)

// Report summarizes a routing validation pass.
type Report struct {
	Engine        string
	Paths         int
	Unreachable   int
	MaxSwitchHops int
	AvgSwitchHops float64
	// MaxChannelLoad is the maximum number of (src,dstLID) paths crossing
	// any single switch-to-switch channel — the static congestion measure
	// behind the paper's "up to seven traffic streams may share a single
	// cable" observation.
	MaxChannelLoad int
	DeadlockFree   bool
	VLs            int
}

// Validate walks every (src terminal, dst LID) pair through the forwarding
// tables, checking reachability and loop-freedom, accumulating hop and
// channel-load statistics, and re-verifying per-VL CDG acyclicity.
func Validate(t *Tables) (Report, error) {
	g := t.G
	terms := g.Terminals()
	span := 1 << t.LMC
	rep := Report{Engine: t.Engine, VLs: max(t.NumVL, 1)}
	load := make([]int, 2*len(g.Links))
	isSwitch := SwitchChannelPred(g)
	layers := make([]*CDG, rep.VLs)
	for i := range layers {
		layers[i] = NewCDG()
	}
	totalHops := 0
	for _, src := range terms {
		for di, dst := range terms {
			if src == dst {
				continue
			}
			for off := 0; off < span; off++ {
				lid := t.BaseLID[di] + LID(off)
				p, err := t.Path(src, lid)
				if err != nil {
					rep.Unreachable++
					continue
				}
				rep.Paths++
				h := SwitchHops(p)
				totalHops += h
				if h > rep.MaxSwitchHops {
					rep.MaxSwitchHops = h
				}
				for _, c := range p {
					if isSwitch(c) {
						load[c]++
					}
				}
				vl := t.SL(src, lid)
				if int(vl) >= len(layers) {
					return rep, fmt.Errorf("route: SL %d beyond NumVL %d", vl, rep.VLs)
				}
				layers[vl].AddPath(p, isSwitch)
			}
		}
	}
	for _, l := range load {
		if l > rep.MaxChannelLoad {
			rep.MaxChannelLoad = l
		}
	}
	if rep.Paths > 0 {
		rep.AvgSwitchHops = float64(totalHops) / float64(rep.Paths)
	}
	rep.DeadlockFree = true
	for _, layer := range layers {
		if !layer.Acyclic() {
			rep.DeadlockFree = false
		}
	}
	return rep, nil
}

// ChannelLoads returns the per-channel path counts for base-LID routing —
// the static oversubscription map behind Fig. 1's bottleneck analysis.
func ChannelLoads(t *Tables) []int {
	g := t.G
	load := make([]int, 2*len(g.Links))
	isSwitch := SwitchChannelPred(g)
	for _, src := range g.Terminals() {
		for di, dst := range g.Terminals() {
			if src == dst {
				continue
			}
			p, err := t.Path(src, t.BaseLID[di])
			if err != nil {
				continue
			}
			for _, c := range p {
				if isSwitch(c) {
					load[c]++
				}
			}
		}
	}
	return load
}

// DefaultMarginSamples bounds the candidate dependencies DeadlockMargin
// inspects per lane; degraded sweeps inspect thousands of variants, so the
// measure is sampled rather than exhaustive.
const DefaultMarginSamples = 2048

// DeadlockMargin measures a routing's CDG cycle slack: across every
// candidate channel dependency the topology could still add (an incoming
// and an outgoing live switch channel meeting at a switch, not a U-turn
// over the same link), the fraction whose addition would keep that lane's
// CDG acyclic. 1.0 means every lane could absorb any new dependency — the
// routing is far from deadlock; 0.0 means some lane can absorb none — one
// more dependency pattern would close a cycle. The minimum over lanes is
// returned, since the weakest lane bounds how much rerouting a re-sweep can
// tolerate before needing more VLs. Candidates already present as edges are
// excluded (they are spent slack). When candidates exceed maxSamples
// (<= 0 selects DefaultMarginSamples), a deterministic stride sample is
// scored instead.
func DeadlockMargin(t *Tables, maxSamples int) float64 {
	if maxSamples <= 0 {
		maxSamples = DefaultMarginSamples
	}
	g := t.G
	terms := g.Terminals()
	span := 1 << t.LMC
	isSwitch := SwitchChannelPred(g)
	layers := make([]*CDG, max(t.NumVL, 1))
	for i := range layers {
		layers[i] = NewCDG()
	}
	for _, src := range terms {
		for di := range terms {
			for off := 0; off < span; off++ {
				lid := t.BaseLID[di] + LID(off)
				if t.OwnerOf(lid) < 0 || terms[di] == src {
					continue
				}
				p, err := t.Path(src, lid)
				if err != nil {
					continue // unreachable pairs contribute no dependencies
				}
				vl := int(t.SL(src, lid))
				if vl >= len(layers) {
					continue // Validate flags this; the margin just skips it
				}
				layers[vl].AddPath(p, isSwitch)
			}
		}
	}
	var cands [][2]topo.ChannelID
	for _, b := range g.Switches() {
		var ins, outs []topo.ChannelID
		for _, l := range g.Nodes[b].Ports {
			if l == nil || l.Down {
				continue
			}
			o := l.Other(b)
			if g.Nodes[o].Kind != topo.Switch {
				continue
			}
			ins = append(ins, l.Channel(o))
			outs = append(outs, l.Channel(b))
		}
		for _, c1 := range ins {
			for _, c2 := range outs {
				if c1/2 == c2/2 {
					continue // U-turn back over the same link
				}
				cands = append(cands, [2]topo.ChannelID{c1, c2})
			}
		}
	}
	if len(cands) == 0 {
		return 1
	}
	sample := cands
	if len(cands) > maxSamples {
		sample = make([][2]topo.ChannelID, maxSamples)
		for k := range sample {
			sample[k] = cands[k*len(cands)/maxSamples]
		}
	}
	margin := 1.0
	for _, lane := range layers {
		absent, addable := 0, 0
		for _, p := range sample {
			if lane.HasEdge(p[0], p[1]) {
				continue
			}
			absent++
			if !lane.CanReach(p[1], p[0]) {
				addable++
			}
		}
		var m float64
		if absent > 0 {
			m = float64(addable) / float64(absent)
		}
		if m < margin {
			margin = m
		}
	}
	return margin
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
