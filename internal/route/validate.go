package route

import "fmt"

// Report summarizes a routing validation pass.
type Report struct {
	Engine        string
	Paths         int
	Unreachable   int
	MaxSwitchHops int
	AvgSwitchHops float64
	// MaxChannelLoad is the maximum number of (src,dstLID) paths crossing
	// any single switch-to-switch channel — the static congestion measure
	// behind the paper's "up to seven traffic streams may share a single
	// cable" observation.
	MaxChannelLoad int
	DeadlockFree   bool
	VLs            int
}

// Validate walks every (src terminal, dst LID) pair through the forwarding
// tables, checking reachability and loop-freedom, accumulating hop and
// channel-load statistics, and re-verifying per-VL CDG acyclicity.
func Validate(t *Tables) (Report, error) {
	g := t.G
	terms := g.Terminals()
	span := 1 << t.LMC
	rep := Report{Engine: t.Engine, VLs: max(t.NumVL, 1)}
	load := make([]int, 2*len(g.Links))
	isSwitch := SwitchChannelPred(g)
	layers := make([]*CDG, rep.VLs)
	for i := range layers {
		layers[i] = NewCDG()
	}
	totalHops := 0
	for _, src := range terms {
		for di, dst := range terms {
			if src == dst {
				continue
			}
			for off := 0; off < span; off++ {
				lid := t.BaseLID[di] + LID(off)
				p, err := t.Path(src, lid)
				if err != nil {
					rep.Unreachable++
					continue
				}
				rep.Paths++
				h := SwitchHops(p)
				totalHops += h
				if h > rep.MaxSwitchHops {
					rep.MaxSwitchHops = h
				}
				for _, c := range p {
					if isSwitch(c) {
						load[c]++
					}
				}
				vl := t.SL(src, lid)
				if int(vl) >= len(layers) {
					return rep, fmt.Errorf("route: SL %d beyond NumVL %d", vl, rep.VLs)
				}
				layers[vl].AddPath(p, isSwitch)
			}
		}
	}
	for _, l := range load {
		if l > rep.MaxChannelLoad {
			rep.MaxChannelLoad = l
		}
	}
	if rep.Paths > 0 {
		rep.AvgSwitchHops = float64(totalHops) / float64(rep.Paths)
	}
	rep.DeadlockFree = true
	for _, layer := range layers {
		if !layer.Acyclic() {
			rep.DeadlockFree = false
		}
	}
	return rep, nil
}

// ChannelLoads returns the per-channel path counts for base-LID routing —
// the static oversubscription map behind Fig. 1's bottleneck analysis.
func ChannelLoads(t *Tables) []int {
	g := t.G
	load := make([]int, 2*len(g.Links))
	isSwitch := SwitchChannelPred(g)
	for _, src := range g.Terminals() {
		for di, dst := range g.Terminals() {
			if src == dst {
				continue
			}
			p, err := t.Path(src, t.BaseLID[di])
			if err != nil {
				continue
			}
			for _, c := range p {
				if isSwitch(c) {
					load[c]++
				}
			}
		}
	}
	return load
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
