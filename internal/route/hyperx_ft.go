package route

import (
	"errors"
	"fmt"

	"github.com/hpcsim/t2hx/internal/topo"
)

// Fault-tolerant HyperX routing engines, after the restricted non-minimal
// schemes of Camarero, Martínez and Beivide (arXiv:2404.04315). Both are
// destination-based LFT engines that survive link loss by construction:
//
//   - HXMin ("hxmin") keeps dimension-order minimal routing and, when the
//     direct in-line link of the lowest uncorrected dimension is down,
//     escapes over a two-hop in-line detour whose intermediate coordinate
//     is strictly below BOTH endpoint coordinates. The restriction makes
//     the in-line channel dependencies strictly coordinate-decreasing, so
//     a single virtual lane stays deadlock-free (see the argument at
//     hxminEscape); the price is that pairs whose only detours run through
//     higher coordinates become unreachable and are reported explicitly.
//
//   - HXNonMin ("hxnm") drops the dimension-order restriction: every
//     destination gets a BFS distance field over the live fabric and each
//     switch forwards to a strictly-closer neighbor, preferring in-order
//     minimal hops, then restricted escapes, then arbitrary misroutes.
//     Any pair the fabric connects stays routable; deadlock freedom comes
//     from DFSSSP-style virtual-lane layering of the resulting paths.
//
// Both engines degrade gracefully: pairs they cannot serve are left
// unprogrammed (Tables.Path returns ErrNoRoute, Validate counts them as
// unreachable) instead of failing the build.

// HXMin builds minimal-with-restricted-escape tables for a HyperX. The
// result uses one virtual lane; the in-engine lane pass re-verifies the
// deadlock argument and errors instead of returning an unsafe table.
func HXMin(hx *topo.HyperX, lmc uint8) (*Tables, error) {
	t := newTables(hx.Graph, "hxmin", lmc, nil)
	g := hx.Graph
	cw := NewChannelWeights(g)
	span := 1 << lmc
	for di, dst := range g.Terminals() {
		dstSw := g.SwitchOf(dst)
		if dstSw < 0 {
			continue // detached destination: its LIDs stay unreachable
		}
		dc := hx.Coord(dstSw)
		for off := 0; off < span; off++ {
			lid := t.BaseLID[di] + LID(off)
			installHyperXDelivery(t, lid, dstSw, dst)
			for _, s := range g.Switches() {
				if s == dstSw {
					continue
				}
				sc := hx.Coord(s)
				d := lowestDiffDim(sc, dc)
				v := lineNeighbor(hx, sc, d, dc[d])
				if c := bestLiveChannel(g, cw, s, v); c != NoChannel {
					t.SetNextHop(s, lid, c)
					cw.Add(c, 1)
					continue
				}
				if c, c2 := hxminEscape(hx, cw, s, v, sc[d], dc[d], d); c != NoChannel {
					t.SetNextHop(s, lid, c)
					cw.Add(c, 1)
					cw.Add(c2, 1)
				}
				// No direct link and no restricted escape: leave the entry
				// unprogrammed. Validate reports the pair unreachable.
			}
		}
	}
	if _, err := assignLanesTolerant(t, 1); err != nil {
		return nil, fmt.Errorf("route: hxmin deadlock restriction violated: %w", err)
	}
	t.Freeze()
	return t, nil
}

// hxminEscape picks the two-hop in-line detour s -> m -> v with the
// low-coordinate restriction coord(m) < min(coord(s), coord(v)).
//
// Deadlock argument: within one line, every dependency this rule creates
// between channels (x->y) and (y->z) has coord(y) < coord(x). A dependency
// cycle inside the line would therefore have strictly decreasing tail
// coordinates all the way around — impossible. Across dimensions, HXMin
// corrects coordinates in strictly increasing dimension order, so
// cross-dimension dependencies only point from lower to higher dimensions.
// Both together make the whole CDG acyclic on a single virtual lane.
//
// It returns the first hop's channel and the second hop's channel (for
// weight accounting), or NoChannel when no restricted intermediate has both
// links live.
func hxminEscape(hx *topo.HyperX, cw *ChannelWeights, s, v topo.NodeID, sCoord, dCoord, d int) (topo.ChannelID, topo.ChannelID) {
	low := sCoord
	if dCoord < low {
		low = dCoord
	}
	sc := hx.Coord(s)
	for m := low - 1; m >= 0; m-- {
		mSw := lineNeighbor(hx, sc, d, m)
		c1 := bestLiveChannel(hx.Graph, cw, s, mSw)
		if c1 == NoChannel {
			continue
		}
		c2 := bestLiveChannel(hx.Graph, cw, mSw, v)
		if c2 == NoChannel {
			continue
		}
		return c1, c2
	}
	return NoChannel, NoChannel
}

// HXNonMin builds non-minimal fault-tolerant tables for a HyperX: every
// switch forwards toward a destination along a strictly distance-decreasing
// live neighbor (BFS metric on the degraded fabric), ranked to prefer
// in-dimension-order minimal hops, then restricted escapes, then arbitrary
// detours. Paths are spread over at most maxVL virtual lanes with acyclic
// per-lane CDGs; exceeding the budget is an error (the SM keeps the old
// tables rather than accept a deadlock-prone sweep).
func HXNonMin(hx *topo.HyperX, lmc uint8, maxVL int) (*Tables, error) {
	t := newTables(hx.Graph, "hxnm", lmc, nil)
	g := hx.Graph
	cw := NewChannelWeights(g)
	span := 1 << lmc
	dist := make([]int32, g.NumSwitches())
	queue := make([]topo.NodeID, 0, g.NumSwitches())
	for di, dst := range g.Terminals() {
		dstSw := g.SwitchOf(dst)
		if dstSw < 0 {
			continue
		}
		dc := hx.Coord(dstSw)
		// BFS hop distances toward dstSw over live switch links.
		for i := range dist {
			dist[i] = -1
		}
		dist[g.SwitchIndex(dstSw)] = 0
		queue = append(queue[:0], dstSw)
		for head := 0; head < len(queue); head++ {
			cur := queue[head]
			for _, l := range g.Nodes[cur].Ports {
				if l == nil || l.Down {
					continue
				}
				o := l.Other(cur)
				oi := g.SwitchIndex(o)
				if oi < 0 || dist[oi] >= 0 {
					continue
				}
				dist[oi] = dist[g.SwitchIndex(cur)] + 1
				queue = append(queue, o)
			}
		}
		for off := 0; off < span; off++ {
			lid := t.BaseLID[di] + LID(off)
			installHyperXDelivery(t, lid, dstSw, dst)
			for _, s := range g.Switches() {
				si := g.SwitchIndex(s)
				if s == dstSw || dist[si] < 0 {
					continue // the destination, or a switch the fabric lost
				}
				c := hxnmNextHop(hx, cw, dist, s, dc)
				if c != NoChannel {
					t.SetNextHop(s, lid, c)
					cw.Add(c, 1)
				}
			}
		}
	}
	if _, err := assignLanesTolerant(t, maxVL); err != nil {
		return nil, err
	}
	t.Freeze()
	return t, nil
}

// hxnmNextHop ranks s's live strictly-closer neighbors toward the
// destination coordinates and returns the channel of the best one. Ranks,
// best first: the minimal hop of the lowest uncorrected dimension; a
// restricted low-coordinate escape in that dimension; any other hop in that
// dimension; a minimal hop of a later dimension; anything else. Ties break
// on channel weight, then channel ID — deterministic for a given build
// order. Distance strictly decreases every hop, so the tables are loop-free
// by construction.
func hxnmNextHop(hx *topo.HyperX, cw *ChannelWeights, dist []int32, s topo.NodeID, dc []int) topo.ChannelID {
	g := hx.Graph
	si := g.SwitchIndex(s)
	sc := hx.Coord(s)
	d := lowestDiffDim(sc, dc)
	best := NoChannel
	bestRank := 0
	bestWeight := 0.0
	for _, l := range g.Nodes[s].Ports {
		if l == nil || l.Down {
			continue
		}
		w := l.Other(s)
		wi := g.SwitchIndex(w)
		if wi < 0 || dist[wi] != dist[si]-1 {
			continue
		}
		wc := hx.Coord(w)
		dd := lowestDiffDim(sc, wc) // the single dimension the hop moves in
		var rank int
		switch {
		case dd == d && wc[d] == dc[d]:
			rank = 0
		case dd == d && wc[d] < sc[d] && wc[d] < dc[d]:
			rank = 1
		case dd == d:
			rank = 2
		case wc[dd] == dc[dd]:
			rank = 3
		default:
			rank = 4
		}
		c := l.Channel(s)
		weight := cw.Get(c)
		if best == NoChannel || rank < bestRank ||
			(rank == bestRank && (weight < bestWeight || (weight == bestWeight && c < best))) {
			best, bestRank, bestWeight = c, rank, weight
		}
	}
	return best
}

// installHyperXDelivery programs the destination switch's delivery hop.
func installHyperXDelivery(t *Tables, lid LID, dstSw, dst topo.NodeID) {
	g := t.G
	for _, l := range g.Nodes[dst].Ports {
		if l != nil && !l.Down && l.Other(dst) == dstSw {
			t.SetNextHop(dstSw, lid, l.Channel(dstSw))
			return
		}
	}
}

// lowestDiffDim returns the first dimension where the coordinates differ.
// The caller guarantees they are not equal.
func lowestDiffDim(a, b []int) int {
	for d := range a {
		if a[d] != b[d] {
			return d
		}
	}
	panic("route: identical coordinates")
}

// lineNeighbor returns the switch matching sc except for coordinate v in
// dimension d.
func lineNeighbor(hx *topo.HyperX, sc []int, d, v int) topo.NodeID {
	c := make([]int, len(sc))
	copy(c, sc)
	c[d] = v
	return hx.SwitchAt(c...)
}

// bestLiveChannel returns the lowest-(weight, ID) live channel from a to b,
// or NoChannel. With K parallel links per dimension this is what spreads
// destinations across the parallels.
func bestLiveChannel(g *topo.Graph, cw *ChannelWeights, a, b topo.NodeID) topo.ChannelID {
	best := NoChannel
	bestWeight := 0.0
	for _, l := range g.Nodes[a].Ports {
		if l == nil || l.Down || l.Other(a) != b {
			continue
		}
		c := l.Channel(a)
		w := cw.Get(c)
		if best == NoChannel || w < bestWeight || (w == bestWeight && c < best) {
			best, bestWeight = c, w
		}
	}
	return best
}

// assignLanesTolerant is AssignVLs for engines that intentionally leave
// pairs unprogrammed: ErrNoRoute path failures are skipped and counted
// instead of failing the pass, while structural anomalies (loops, down-link
// use, misdelivery) still abort. It returns the number of skipped
// (src, dst-LID) pairs.
func assignLanesTolerant(t *Tables, maxVL int) (int, error) {
	g := t.G
	terms := g.Terminals()
	span := 1 << t.LMC
	// Every terminal on a switch shares its fabric path to a given
	// destination LID — injection and delivery channels are not CDG
	// participants — so lane assignment only needs one representative
	// source per (switch, LID) pair; the lane is then recorded for the
	// whole group. The former walk over all terminal pairs was quadratic
	// in terminals: at 32832 terminals it enumerated over a billion paths
	// for a set with |switches| x |LIDs| distinct members.
	bySwitch := make([][]topo.NodeID, g.NumSwitches())
	for _, tm := range terms {
		if sw := g.SwitchOf(tm); sw >= 0 {
			si := g.SwitchIndex(sw)
			bySwitch[si] = append(bySwitch[si], tm)
		}
	}
	type key struct {
		sw  int // switch index of the source group
		lid LID
	}
	var keys []key
	var paths [][]topo.ChannelID
	unreachable := 0
	for si, group := range bySwitch {
		if len(group) == 0 {
			continue
		}
		src := group[0]
		for di, dst := range terms {
			if g.SwitchOf(dst) < 0 {
				continue
			}
			for off := 0; off < span; off++ {
				lid := t.BaseLID[di] + LID(off)
				if dst == src {
					continue
				}
				p, err := t.Path(src, lid)
				if err != nil {
					if errors.Is(err, ErrNoRoute) {
						// Count what the terminal-pair walk would have:
						// every source terminal of the group misses dst.
						unreachable += len(group)
						continue
					}
					return unreachable, fmt.Errorf("route: %s lane assignment: %w", t.Engine, err)
				}
				keys = append(keys, key{si, lid})
				paths = append(paths, p)
			}
		}
	}
	lanes, failed := AssignLayers(g, paths, maxVL, func(i, vl int) {
		if vl == 0 {
			// SL defaults to 0; skipping the write keeps single-lane
			// engines from materializing the O(terminals^2) SL table.
			return
		}
		for _, src := range bySwitch[keys[i].sw] {
			t.SetSL(src, keys[i].lid, uint8(vl))
		}
	})
	if failed >= 0 {
		return unreachable, fmt.Errorf("route: %s needs more than %d virtual lanes (failed at path %d of %d)",
			t.Engine, maxVL, failed, len(paths))
	}
	t.NumVL = lanes
	return unreachable, nil
}
