package route

import (
	"fmt"
	"sort"

	"github.com/hpcsim/t2hx/internal/topo"
)

// Nue implements a Nue-style routing engine (after Domke, Hoefler,
// Matsuoka, HPDC'16): destination-based paths computed *inside* the
// channel dependency graph, so deadlock freedom holds by construction for
// a FIXED number of virtual lanes — even a single one — instead of
// splitting a precomputed path set like DFSSSP/LASH do.
//
// Destinations are partitioned round-robin across the nVL layers; within
// a layer, each destination's next-hop tree is grown from the destination
// switch outward, and a switch may only adopt a parent whose channel
// dependency can be inserted into the layer's CDG without closing a
// cycle. Minimal parents are preferred; when every minimal parent is
// blocked, already-routed detour parents are considered (the escape-path
// idea of Nue, simplified). This is a faithful-in-spirit, simplified
// reimplementation — the published Nue additionally guarantees
// completeness via a convex escape subgraph; ours reports an error in the
// (rare, at our scales) case the greedy growth cannot reach a switch.
func Nue(g *topo.Graph, lmc uint8, nVL int) (*Tables, error) {
	if nVL < 1 {
		return nil, fmt.Errorf("route: Nue needs >= 1 virtual lane")
	}
	t := newTables(g, "nue", lmc, nil)
	span := 1 << t.LMC
	terms := g.Terminals()
	layers := make([]*CDG, nVL)
	for i := range layers {
		layers[i] = NewCDG()
	}
	for di, dst := range terms {
		vl := di % nVL
		dstSw := g.SwitchOf(dst)
		if dstSw < 0 {
			// Detached terminal: leave its LIDs unprogrammed (reported as
			// unreachable by Validate) rather than failing the sweep.
			continue
		}
		next, err := nueTree(g, dstSw, layers[vl])
		if err != nil {
			return nil, fmt.Errorf("route: nue toward %s (VL %d): %w", g.Nodes[dst].Label, vl, err)
		}
		for off := 0; off < span; off++ {
			lid := t.BaseLID[di] + LID(off)
			for sw, c := range next {
				t.SetNextHop(sw, lid, c)
			}
			for _, l := range g.Nodes[dst].Ports {
				if l != nil && !l.Down && l.Other(dst) == dstSw {
					t.SetNextHop(dstSw, lid, l.Channel(dstSw))
				}
			}
		}
		// Record the SL for every source toward this destination.
		for _, src := range terms {
			if src == dst {
				continue
			}
			for off := 0; off < span; off++ {
				t.SetSL(src, t.BaseLID[di]+LID(off), uint8(vl))
			}
		}
	}
	t.NumVL = nVL
	t.Freeze()
	return t, nil
}

// nueTree grows the destination-rooted next-hop tree under the CDG
// constraint and returns switch -> out-channel.
func nueTree(g *topo.Graph, root topo.NodeID, cdg *CDG) (map[topo.NodeID]topo.ChannelID, error) {
	dist := topo.HopDistances(g, root)
	next := make(map[topo.NodeID]topo.ChannelID, g.NumSwitches())
	// Process switches by increasing hop distance (deterministic order).
	order := append([]topo.NodeID{}, g.Switches()...)
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if dist[a] != dist[b] {
			return dist[a] < dist[b]
		}
		return a < b
	})
	// outDep returns the dependency successor for adopting parent v: the
	// channel v forwards on, or none when v is the root (delivery hop).
	outDep := func(v topo.NodeID) (topo.ChannelID, bool) {
		if v == root {
			return 0, false
		}
		c, ok := next[v]
		return c, ok
	}
	var pending []topo.NodeID
	for _, u := range order {
		if u == root {
			continue
		}
		if dist[u] < 0 {
			return nil, fmt.Errorf("switch %s unreachable", g.Nodes[u].Label)
		}
		if !nueAdopt(g, u, root, dist, next, cdg, outDep, true) {
			pending = append(pending, u)
		}
	}
	// Second chance: switches whose minimal parents were all blocked may
	// now adopt detour parents routed meanwhile.
	for _, u := range pending {
		if nueAdopt(g, u, root, dist, next, cdg, outDep, false) {
			continue
		}
		return nil, fmt.Errorf("no cycle-free parent for switch %s", g.Nodes[u].Label)
	}
	return next, nil
}

// nueAdopt tries to give u a parent. minimalOnly restricts candidates to
// strictly-closer neighbors; otherwise any already-routed neighbor whose
// forwarding chain avoids u qualifies (a detour).
func nueAdopt(g *topo.Graph, u, root topo.NodeID, dist map[topo.NodeID]int,
	next map[topo.NodeID]topo.ChannelID, cdg *CDG,
	outDep func(topo.NodeID) (topo.ChannelID, bool), minimalOnly bool) bool {

	type cand struct {
		v topo.NodeID
		c topo.ChannelID
	}
	var minimal, detour []cand
	for _, l := range g.UpLinks(u) {
		v := l.Other(u)
		if g.Nodes[v].Kind != topo.Switch {
			continue
		}
		ch := l.Channel(u)
		switch {
		case dist[v] == dist[u]-1:
			minimal = append(minimal, cand{v, ch})
		case !minimalOnly && chainAvoids(g, next, v, u, root):
			detour = append(detour, cand{v, ch})
		}
	}
	try := func(cs []cand) bool {
		sort.Slice(cs, func(i, j int) bool { return cs[i].c < cs[j].c })
		for _, cd := range cs {
			dep, need := outDep(cd.v)
			if need {
				if _, routed := next[cd.v]; !routed {
					continue // parent not yet routed
				}
				if !cdg.AddEdge(cd.c, dep) {
					continue // would close a dependency cycle
				}
			}
			next[u] = cd.c
			return true
		}
		return false
	}
	if try(minimal) {
		return true
	}
	if minimalOnly {
		return false
	}
	return try(detour)
}

// chainAvoids reports whether v is routed and its forwarding chain to root
// does not pass through u (so adopting v cannot create a forwarding
// loop).
func chainAvoids(g *topo.Graph, next map[topo.NodeID]topo.ChannelID, v, u, root topo.NodeID) bool {
	cur := v
	for hops := 0; hops <= MaxHops; hops++ {
		if cur == u {
			return false
		}
		if cur == root {
			return true
		}
		c, ok := next[cur]
		if !ok {
			return false
		}
		cur = g.ChannelTo(c)
	}
	return false
}
