package route

import (
	"sort"

	"github.com/hpcsim/t2hx/internal/topo"
)

// CDG is a channel dependency graph: nodes are directed switch-to-switch
// channels, and an edge c1->c2 records that some routed path uses c2
// immediately after c1. A routing is deadlock-free on one virtual lane iff
// its CDG is acyclic (Dally & Seitz); DFSSSP and PARX split the path set
// across virtual lanes so that each lane's CDG stays acyclic.
//
// CDG maintains a topological order incrementally (Pearce-Kelly): adding an
// edge either succeeds in amortized small cost or reports that it would
// close a cycle, in which case the graph is left unchanged.
//
// Storage is dense: channel IDs are small and contiguous (they index the
// topology's link array), so adjacency, order, and DFS-visited state are
// slices indexed by topo.ChannelID rather than nested maps. Per-channel
// successor lists stay short — bounded by switch radix — so membership
// tests are linear scans over a cache-resident slice.
type CDG struct {
	// ord[c] is c's topological order, or -1 while c is not a node.
	ord []int32
	// succ[c] / pred[c] list c's dependency neighbours.
	succ, pred [][]topo.ChannelID
	// nodes lists the channels present, in insertion order.
	nodes []topo.ChannelID
	next  int32

	// DFS scratch, reused across operations: seen[c] holds the epoch of
	// the last traversal that visited c.
	seen  []uint64
	epoch uint64
	stack []topo.ChannelID

	// AddPath scratch.
	fabric []topo.ChannelID
	added  [][2]topo.ChannelID
}

// NewCDG returns an empty channel dependency graph.
func NewCDG() *CDG {
	return &CDG{}
}

// grow extends the per-channel arrays to cover c.
func (g *CDG) grow(c topo.ChannelID) {
	for int(c) >= len(g.ord) {
		g.ord = append(g.ord, -1)
		g.succ = append(g.succ, nil)
		g.pred = append(g.pred, nil)
		g.seen = append(g.seen, 0)
	}
}

func (g *CDG) ensure(c topo.ChannelID) {
	g.grow(c)
	if g.ord[c] >= 0 {
		return
	}
	g.ord[c] = g.next
	g.next++
	g.nodes = append(g.nodes, c)
}

// HasEdge reports whether the dependency u->v is already present.
func (g *CDG) HasEdge(u, v topo.ChannelID) bool {
	if int(u) >= len(g.succ) {
		return false
	}
	for _, m := range g.succ[u] {
		if m == v {
			return true
		}
	}
	return false
}

// Edges reports the number of dependency edges.
func (g *CDG) Edges() int {
	n := 0
	for _, c := range g.nodes {
		n += len(g.succ[c])
	}
	return n
}

// AddEdge inserts the dependency u->v unless it would create a cycle, in
// which case it returns false and leaves the graph unchanged. Self-loops
// (u == v) are rejected as cycles.
func (g *CDG) AddEdge(u, v topo.ChannelID) bool {
	if u == v {
		return false
	}
	g.ensure(u)
	g.ensure(v)
	if g.HasEdge(u, v) {
		return true
	}
	lb, ub := g.ord[v], g.ord[u]
	if lb > ub {
		// Order already consistent.
		g.succ[u] = append(g.succ[u], v)
		g.pred[v] = append(g.pred[v], u)
		return true
	}
	// Discover the affected region: forward from v within (lb..ub],
	// backward from u within [lb..ub).
	deltaF, cyclic := g.dfsF(v, ub)
	if cyclic {
		return false
	}
	deltaB := g.dfsB(u, lb)
	g.reorder(deltaF, deltaB)
	g.succ[u] = append(g.succ[u], v)
	g.pred[v] = append(g.pred[v], u)
	return true
}

// dfsF collects nodes reachable from v with order <= ub. Reaching order ==
// ub means reaching u: a cycle. The returned slice aliases nothing and is
// freshly built per call (it feeds reorder, which sorts it in place).
func (g *CDG) dfsF(v topo.ChannelID, ub int32) ([]topo.ChannelID, bool) {
	g.epoch++
	g.seen[v] = g.epoch
	g.stack = append(g.stack[:0], v)
	var out []topo.ChannelID
	for len(g.stack) > 0 {
		n := g.stack[len(g.stack)-1]
		g.stack = g.stack[:len(g.stack)-1]
		out = append(out, n)
		for _, m := range g.succ[n] {
			o := g.ord[m]
			if o == ub {
				return nil, true // found u: cycle
			}
			if o < ub && g.seen[m] != g.epoch {
				g.seen[m] = g.epoch
				g.stack = append(g.stack, m)
			}
		}
	}
	return out, false
}

// dfsB collects nodes reaching u with order >= lb.
func (g *CDG) dfsB(u topo.ChannelID, lb int32) []topo.ChannelID {
	g.epoch++
	g.seen[u] = g.epoch
	g.stack = append(g.stack[:0], u)
	var out []topo.ChannelID
	for len(g.stack) > 0 {
		n := g.stack[len(g.stack)-1]
		g.stack = g.stack[:len(g.stack)-1]
		out = append(out, n)
		for _, m := range g.pred[n] {
			if g.ord[m] > lb && g.seen[m] != g.epoch {
				g.seen[m] = g.epoch
				g.stack = append(g.stack, m)
			}
		}
	}
	return out
}

// reorder merges the affected regions so that every deltaB node precedes
// every deltaF node, reusing the union of their order slots.
func (g *CDG) reorder(deltaF, deltaB []topo.ChannelID) {
	sort.Slice(deltaB, func(i, j int) bool { return g.ord[deltaB[i]] < g.ord[deltaB[j]] })
	sort.Slice(deltaF, func(i, j int) bool { return g.ord[deltaF[i]] < g.ord[deltaF[j]] })
	nodes := append(append([]topo.ChannelID{}, deltaB...), deltaF...)
	slots := make([]int32, 0, len(nodes))
	for _, n := range nodes {
		slots = append(slots, g.ord[n])
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	for i, n := range nodes {
		g.ord[n] = slots[i]
	}
}

// AddPath inserts all consecutive dependencies of a channel sequence,
// rolling back any edges it added if one of them would close a cycle.
// It returns false (and leaves the graph unchanged) on cycle.
//
// Only switch-to-switch channels participate: injection (terminal->switch)
// and delivery (switch->terminal) channels cannot be part of a credit
// cycle, matching how OpenSM builds its CDG.
func (g *CDG) AddPath(path []topo.ChannelID, isSwitchChannel func(topo.ChannelID) bool) bool {
	fabric := g.fabric[:0]
	for _, c := range path {
		if isSwitchChannel(c) {
			fabric = append(fabric, c)
		}
	}
	g.fabric = fabric
	added := g.added[:0]
	for i := 0; i+1 < len(fabric); i++ {
		u, v := fabric[i], fabric[i+1]
		if g.HasEdge(u, v) {
			continue
		}
		if !g.AddEdge(u, v) {
			for _, e := range added {
				g.removeEdge(e[0], e[1])
			}
			g.added = added[:0]
			return false
		}
		added = append(added, [2]topo.ChannelID{u, v})
	}
	g.added = added[:0]
	return true
}

func (g *CDG) removeEdge(u, v topo.ChannelID) {
	g.succ[u] = removeChan(g.succ[u], v)
	g.pred[v] = removeChan(g.pred[v], u)
}

// removeChan deletes the first occurrence of c, preserving list order so
// traversals stay deterministic across removals.
func removeChan(s []topo.ChannelID, c topo.ChannelID) []topo.ChannelID {
	for i, m := range s {
		if m == c {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// Acyclic exhaustively re-verifies acyclicity (used by tests and the
// validator; the incremental structure maintains it by construction).
func (g *CDG) Acyclic() bool {
	const (
		white = int8(0)
		gray  = int8(1)
		black = int8(2)
	)
	color := make([]int8, len(g.ord))
	var visit func(c topo.ChannelID) bool
	visit = func(c topo.ChannelID) bool {
		color[c] = gray
		for _, m := range g.succ[c] {
			switch color[m] {
			case gray:
				return false
			case white:
				if !visit(m) {
					return false
				}
			}
		}
		color[c] = black
		return true
	}
	for _, c := range g.nodes {
		if color[c] == white {
			if !visit(c) {
				return false
			}
		}
	}
	return true
}

// CanReach reports whether v is reachable from u along dependency edges.
// Adding edge v->u is safe (keeps the graph acyclic) iff u does not reach
// v; DeadlockMargin uses this to measure cycle slack. The maintained
// topological order prunes the search: successors always carry higher
// order, so nodes at or beyond ord[v] cannot lead back to it.
func (g *CDG) CanReach(u, v topo.ChannelID) bool {
	if u == v {
		return true
	}
	if int(u) >= len(g.ord) || g.ord[u] < 0 {
		return false
	}
	if int(v) >= len(g.ord) || g.ord[v] < 0 || g.ord[u] >= g.ord[v] {
		return false
	}
	ov := g.ord[v]
	g.epoch++
	g.seen[u] = g.epoch
	g.stack = append(g.stack[:0], u)
	for len(g.stack) > 0 {
		n := g.stack[len(g.stack)-1]
		g.stack = g.stack[:len(g.stack)-1]
		for _, m := range g.succ[n] {
			if m == v {
				return true
			}
			if g.ord[m] < ov && g.seen[m] != g.epoch {
				g.seen[m] = g.epoch
				g.stack = append(g.stack, m)
			}
		}
	}
	return false
}

// SwitchChannelPred returns a predicate selecting switch-to-switch channels
// of g.
func SwitchChannelPred(g *topo.Graph) func(topo.ChannelID) bool {
	return func(c topo.ChannelID) bool {
		l := g.Link(c)
		return g.Nodes[l.A].Kind == topo.Switch && g.Nodes[l.B].Kind == topo.Switch
	}
}

// AssignLayers distributes paths over virtual lanes so that each lane's CDG
// is acyclic — the DFSSSP scheme. paths may contain nil entries (skipped).
// assign is called with the path index and the chosen lane. It returns the
// number of lanes used, or an error-index >= 0 of the first path that could
// not be placed within maxVL lanes (-1 on success).
func AssignLayers(g *topo.Graph, paths [][]topo.ChannelID, maxVL int, assign func(i, vl int)) (lanes int, failed int) {
	isSwitch := SwitchChannelPred(g)
	layers := []*CDG{NewCDG()}
	for i, p := range paths {
		if p == nil {
			continue
		}
		placed := false
		for vl := 0; vl < len(layers); vl++ {
			if layers[vl].AddPath(p, isSwitch) {
				assign(i, vl)
				placed = true
				break
			}
		}
		if !placed {
			if len(layers) >= maxVL {
				return len(layers), i
			}
			layers = append(layers, NewCDG())
			if !layers[len(layers)-1].AddPath(p, isSwitch) {
				// A single path can never self-deadlock unless it repeats
				// channels; treat as failure.
				return len(layers), i
			}
			assign(i, len(layers)-1)
		}
	}
	return len(layers), -1
}
