package route

import (
	"fmt"

	"github.com/hpcsim/t2hx/internal/topo"
)

// SSSPOptions customize ssspCore. PARX (internal/core) drives all three
// hooks; plain (DF)SSSP uses none.
type SSSPOptions struct {
	// MaskFor returns the link mask to apply while computing paths toward
	// one LID of dst (PARX rules R1-R4). nil means no mask.
	MaskFor func(dst topo.NodeID, lidOffset uint8) LinkMask
	// PathWeight returns the edge-update delta for the path src->dst
	// (PARX: the normalized communication demand w in [0,255], or 1).
	// nil means +1 for every path, the plain SSSP balancing rule.
	PathWeight func(src, dst topo.NodeID) float64
	// DstOrder lists terminal indices in processing order; destinations
	// with recorded demands are routed first by PARX so their paths see an
	// unloaded fabric. nil means graph order.
	DstOrder []int
}

// SSSP implements OpenSM's SSSP routing engine (Hoefler, Schneider,
// Lumsdaine, HOTI'09): for every destination it computes a shortest-path
// tree with the modified Dijkstra, then increases the weight of every
// channel used by the paths of all sources toward that destination by +1,
// so later destinations are balanced away from already-loaded channels.
// SSSP is oblivious to deadlocks (no virtual lanes) — fine on trees, unsafe
// on a HyperX, which is exactly why the paper had to use DFSSSP there.
func SSSP(g *topo.Graph, lmc uint8) (*Tables, error) {
	t := newTables(g, "sssp", lmc, nil)
	if err := SSSPCore(t, SSSPOptions{}); err != nil {
		return nil, err
	}
	t.Freeze()
	return t, nil
}

// DFSSSP implements deadlock-free SSSP (Domke, Hoefler, Nagel, IPDPS'11):
// SSSP path calculation followed by assigning every (src,dst) path to a
// virtual lane such that each lane's channel dependency graph is acyclic.
// The paper's HyperX needs 3 VLs under DFSSSP (Sec. 4.4.3); maxVL bounds
// the hardware limit (8 on their QDR gear).
func DFSSSP(g *topo.Graph, lmc uint8, maxVL int) (*Tables, error) {
	t := newTables(g, "dfsssp", lmc, nil)
	if err := SSSPCore(t, SSSPOptions{}); err != nil {
		return nil, err
	}
	if err := AssignVLs(t, maxVL); err != nil {
		return nil, err
	}
	t.Freeze()
	return t, nil
}

// NewTables exposes table allocation for external engines (PARX).
func NewTables(g *topo.Graph, engine string, lmc uint8, policy LIDPolicy) *Tables {
	return newTables(g, engine, lmc, policy)
}

// SSSPCore fills t's LFTs with (optionally masked, optionally
// demand-weighted) balanced shortest paths. With lmc > 0 every additional
// LID of a terminal is routed as an independent destination (OpenSM
// behaviour: "as if each virtual LID would be a physical endpoint").
func SSSPCore(t *Tables, opts SSSPOptions) error {
	g := t.G
	cw := NewChannelWeights(g)
	span := 1 << t.LMC
	terms := g.Terminals()
	order := opts.DstOrder
	if order == nil {
		order = make([]int, len(terms))
		for i := range order {
			order[i] = i
		}
	}
	for _, di := range order {
		dst := terms[di]
		dstSw := g.SwitchOf(dst)
		if dstSw < 0 {
			// Detached terminal (e.g. its switch died): leave its LIDs
			// unprogrammed so Validate reports them unreachable instead of
			// failing the whole sweep.
			continue
		}
		for off := 0; off < span; off++ {
			lid := t.BaseLID[di] + LID(off)
			var mask LinkMask
			if opts.MaskFor != nil {
				mask = opts.MaskFor(dst, uint8(off))
			}
			sp := ShortestPathsTo(g, dstSw, cw, mask)
			if mask != nil && sp.Reached() < g.NumSwitches() {
				// The mask disconnected part of the fabric (PARX
				// footnote 7); fall back to the unmasked graph for this
				// LID to stay fault-tolerant.
				sp.Release()
				sp = ShortestPathsTo(g, dstSw, cw, nil)
			}
			installLFT(t, lid, dstSw, dst, sp)
			// Balancing: weight update per source path.
			for _, src := range terms {
				if src == dst {
					continue
				}
				srcSw := g.SwitchOf(src)
				if srcSw < 0 {
					continue
				}
				w := 1.0
				if opts.PathWeight != nil {
					w = opts.PathWeight(src, dst)
				}
				if w == 0 {
					continue
				}
				for _, c := range tracePath(sp, g, srcSw) {
					cw.Add(c, w)
				}
			}
			sp.Release()
		}
	}
	return nil
}

// installLFT writes the shortest-path-tree next hops into the LFT for lid,
// including the final switch->terminal delivery hop.
func installLFT(t *Tables, lid LID, dstSw, dst topo.NodeID, sp *SPTree) {
	g := t.G
	for i, sw := range g.Switches() {
		e := sp.entries[i]
		if e.hops <= 0 {
			continue // unreached, or the destination switch itself
		}
		t.SetNextHop(sw, lid, e.next)
	}
	for _, l := range g.Nodes[dst].Ports {
		if l != nil && !l.Down && l.Other(dst) == dstSw {
			t.SetNextHop(dstSw, lid, l.Channel(dstSw))
			return
		}
	}
}

// AssignVLs walks every (src, dst-LID) path and distributes them over
// virtual lanes with acyclic per-lane CDGs (the DFSSSP deadlock-avoidance
// pass, reused by PARX).
func AssignVLs(t *Tables, maxVL int) error {
	g := t.G
	terms := g.Terminals()
	span := 1 << t.LMC
	type key struct {
		src topo.NodeID
		lid LID
	}
	var keys []key
	var paths [][]topo.ChannelID
	for _, src := range terms {
		if g.SwitchOf(src) < 0 {
			continue // detached source cannot inject traffic
		}
		for di, dst := range terms {
			if src == dst || g.SwitchOf(dst) < 0 {
				// Detached destinations have no LFT entries; their LIDs are
				// unreachable, not deadlock-relevant.
				continue
			}
			for off := 0; off < span; off++ {
				lid := t.BaseLID[di] + LID(off)
				p, err := t.Path(src, lid)
				if err != nil {
					return fmt.Errorf("route: VL assignment: %w", err)
				}
				keys = append(keys, key{src, lid})
				paths = append(paths, p)
			}
		}
	}
	lanes, failed := AssignLayers(g, paths, maxVL, func(i, vl int) {
		t.SetSL(keys[i].src, keys[i].lid, uint8(vl))
	})
	if failed >= 0 {
		return fmt.Errorf("route: %s needs more than %d virtual lanes (failed at path %d of %d)",
			t.Engine, maxVL, failed, len(paths))
	}
	t.NumVL = lanes
	return nil
}
