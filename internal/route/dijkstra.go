package route

import (
	"sync"

	"github.com/hpcsim/t2hx/internal/topo"
)

// ChannelWeights carries the balancing state of SSSP-family engines: one
// weight per directed channel, incremented as paths are assigned. Costs are
// lexicographic (hops, weight) like Domke's (DF)SSSP implementation, so
// routing stays minimal while spreading load across equal-length
// alternatives.
type ChannelWeights struct {
	w []float64
}

// NewChannelWeights returns unit weights for every channel of g.
func NewChannelWeights(g *topo.Graph) *ChannelWeights {
	cw := &ChannelWeights{w: make([]float64, 2*len(g.Links))}
	for i := range cw.w {
		cw.w[i] = 1
	}
	return cw
}

// Get returns the weight of channel c.
func (cw *ChannelWeights) Get(c topo.ChannelID) float64 { return cw.w[c] }

// Add increases the weight of channel c by delta.
func (cw *ChannelWeights) Add(c topo.ChannelID, delta float64) { cw.w[c] += delta }

// LinkMask optionally hides links during path calculation; PARX uses it to
// virtually remove half of the HyperX (rules R1-R4). A nil mask hides
// nothing. Return true to keep the link.
type LinkMask func(l *topo.Link) bool

// spEntry is the per-switch result of a destination-rooted shortest-path
// computation. hops < 0 marks an unreached switch.
type spEntry struct {
	hops   int32
	weight float64
	// next is the channel a packet at this switch takes toward the
	// destination switch.
	next topo.ChannelID
}

// heapItem is one pending queue entry of the modified Dijkstra. Items are
// kept by value in a manual binary heap — no per-item allocation, no
// interface boxing — with lazy deletion via the done[] bitmap.
type heapItem struct {
	sw     topo.NodeID
	swIdx  int32
	hops   int32
	seq    int32
	weight float64
}

func itemLess(a, b heapItem) bool {
	if a.hops != b.hops {
		return a.hops < b.hops
	}
	if a.weight != b.weight {
		return a.weight < b.weight
	}
	return a.seq < b.seq
}

// SPTree is the shortest-path tree toward one destination switch, stored as
// flat slices over the graph's dense switch index (topo.Graph.SwitchIndex).
// Instances are pooled: callers must Release them when done and must not
// retain references afterwards.
type SPTree struct {
	entries []spEntry // by switch index; hops < 0 = unreached
	done    []bool
	heap    []heapItem
	path    []topo.ChannelID // reusable tracePath buffer
	reached int
}

// Reached reports how many switches (including the destination) have a
// path toward the destination.
func (t *SPTree) Reached() int { return t.reached }

var spPool = sync.Pool{New: func() any { return new(SPTree) }}

func newSPTree(numSwitches int) *SPTree {
	t := spPool.Get().(*SPTree)
	if cap(t.entries) < numSwitches {
		t.entries = make([]spEntry, numSwitches)
		t.done = make([]bool, numSwitches)
	}
	t.entries = t.entries[:numSwitches]
	t.done = t.done[:numSwitches]
	for i := range t.entries {
		t.entries[i] = spEntry{hops: -1}
		t.done[i] = false
	}
	t.heap = t.heap[:0]
	t.reached = 0
	return t
}

// Release returns the tree's scratch buffers to the pool.
func (t *SPTree) Release() { spPool.Put(t) }

func (t *SPTree) push(it heapItem) {
	h := append(t.heap, it)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !itemLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	t.heap = h
}

func (t *SPTree) pop() heapItem {
	h := t.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && itemLess(h[l], h[m]) {
			m = l
		}
		if r < n && itemLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	t.heap = h
	return top
}

// ShortestPathsTo computes, for every switch, the next-hop channel toward
// dstSwitch, minimizing (hop count, accumulated channel weight) with
// deterministic tie-breaking. Links failing mask (or Down) are ignored.
// Unreachable switches have hops < 0 in the result.
//
// This is the modified Dijkstra at the heart of (DF)SSSP and PARX: traffic
// from switch u toward the destination uses channel u->parent(u), and the
// weight consulted is that of the channel in travel direction. The caller
// owns the returned tree and must Release it.
func ShortestPathsTo(g *topo.Graph, dstSwitch topo.NodeID, cw *ChannelWeights, mask LinkMask) *SPTree {
	t := newSPTree(g.NumSwitches())
	var seq int32
	dstIdx := int32(g.SwitchIndex(dstSwitch))
	t.entries[dstIdx] = spEntry{hops: 0, weight: 0, next: NoChannel}
	t.reached++
	t.push(heapItem{sw: dstSwitch, swIdx: dstIdx})
	seq++
	for len(t.heap) > 0 {
		cur := t.pop()
		if t.done[cur.swIdx] {
			continue // lazy deletion: a better entry was already finalized
		}
		t.done[cur.swIdx] = true
		// Expand neighbors u of cur: u would travel u->cur.sw.
		for _, l := range g.Nodes[cur.sw].Ports {
			if l == nil || l.Down {
				continue
			}
			u := l.Other(cur.sw)
			ui := g.SwitchIndex(u)
			if ui < 0 || t.done[ui] {
				continue
			}
			if mask != nil && !mask(l) {
				continue
			}
			ch := l.Channel(u) // channel in travel direction u -> cur.sw
			nh := cur.hops + 1
			nw := cur.weight + cw.Get(ch)
			old := t.entries[ui]
			if old.hops < 0 || nh < old.hops || (nh == old.hops && nw < old.weight-1e-12) {
				if old.hops < 0 {
					t.reached++
				}
				t.entries[ui] = spEntry{hops: nh, weight: nw, next: ch}
				t.push(heapItem{sw: u, swIdx: int32(ui), hops: nh, weight: nw, seq: seq})
				seq++
			}
		}
	}
	return t
}

// tracePath follows next-hop entries from src switch to the destination
// switch, returning the channel sequence. Returns nil if src has no entry.
// The returned slice aliases the tree's scratch buffer: it is valid only
// until the next tracePath call on the same tree or its Release.
func tracePath(t *SPTree, g *topo.Graph, src topo.NodeID) []topo.ChannelID {
	out := t.path[:0]
	cur := src
	for {
		e := t.entries[g.SwitchIndex(cur)]
		if e.hops < 0 {
			return nil
		}
		if e.next == NoChannel {
			t.path = out
			return out
		}
		out = append(out, e.next)
		cur = g.ChannelTo(e.next)
		if len(out) > MaxHops {
			panic("route: tracePath loop")
		}
	}
}
