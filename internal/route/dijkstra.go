package route

import (
	"container/heap"

	"github.com/hpcsim/t2hx/internal/topo"
)

// ChannelWeights carries the balancing state of SSSP-family engines: one
// weight per directed channel, incremented as paths are assigned. Costs are
// lexicographic (hops, weight) like Domke's (DF)SSSP implementation, so
// routing stays minimal while spreading load across equal-length
// alternatives.
type ChannelWeights struct {
	w []float64
}

// NewChannelWeights returns unit weights for every channel of g.
func NewChannelWeights(g *topo.Graph) *ChannelWeights {
	cw := &ChannelWeights{w: make([]float64, 2*len(g.Links))}
	for i := range cw.w {
		cw.w[i] = 1
	}
	return cw
}

// Get returns the weight of channel c.
func (cw *ChannelWeights) Get(c topo.ChannelID) float64 { return cw.w[c] }

// Add increases the weight of channel c by delta.
func (cw *ChannelWeights) Add(c topo.ChannelID, delta float64) { cw.w[c] += delta }

// LinkMask optionally hides links during path calculation; PARX uses it to
// virtually remove half of the HyperX (rules R1-R4). A nil mask hides
// nothing. Return true to keep the link.
type LinkMask func(l *topo.Link) bool

// spEntry is the per-switch result of a destination-rooted shortest-path
// computation.
type spEntry struct {
	hops   int32
	weight float64
	// next is the channel a packet at this switch takes toward the
	// destination switch.
	next topo.ChannelID
}

type dijkstraItem struct {
	sw     topo.NodeID
	hops   int32
	weight float64
	seq    int
	index  int
}

type dijkstraPQ []*dijkstraItem

func (pq dijkstraPQ) Len() int { return len(pq) }
func (pq dijkstraPQ) Less(i, j int) bool {
	a, b := pq[i], pq[j]
	if a.hops != b.hops {
		return a.hops < b.hops
	}
	if a.weight != b.weight {
		return a.weight < b.weight
	}
	return a.seq < b.seq
}
func (pq dijkstraPQ) Swap(i, j int) {
	pq[i], pq[j] = pq[j], pq[i]
	pq[i].index = i
	pq[j].index = j
}
func (pq *dijkstraPQ) Push(x any) {
	it := x.(*dijkstraItem)
	it.index = len(*pq)
	*pq = append(*pq, it)
}
func (pq *dijkstraPQ) Pop() any {
	old := *pq
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*pq = old[:n-1]
	return it
}

// ShortestPathsTo computes, for every switch, the next-hop channel toward
// dstSwitch, minimizing (hop count, accumulated channel weight) with
// deterministic tie-breaking. Links failing mask (or Down) are ignored.
// Unreachable switches are absent from the result.
//
// This is the modified Dijkstra at the heart of (DF)SSSP and PARX: traffic
// from switch u toward the destination uses channel u->parent(u), and the
// weight consulted is that of the channel in travel direction.
func ShortestPathsTo(g *topo.Graph, dstSwitch topo.NodeID, cw *ChannelWeights, mask LinkMask) map[topo.NodeID]spEntry {
	res := make(map[topo.NodeID]spEntry, g.NumSwitches())
	dist := make(map[topo.NodeID]*dijkstraItem, g.NumSwitches())
	var pq dijkstraPQ
	seq := 0
	push := func(sw topo.NodeID, hops int32, weight float64) *dijkstraItem {
		it := &dijkstraItem{sw: sw, hops: hops, weight: weight, seq: seq}
		seq++
		dist[sw] = it
		heap.Push(&pq, it)
		return it
	}
	push(dstSwitch, 0, 0)
	done := make(map[topo.NodeID]bool, g.NumSwitches())
	for pq.Len() > 0 {
		cur := heap.Pop(&pq).(*dijkstraItem)
		if done[cur.sw] {
			continue
		}
		done[cur.sw] = true
		// Expand neighbors u of cur: u would travel u->cur.sw.
		for _, l := range g.Nodes[cur.sw].Ports {
			if l == nil || l.Down {
				continue
			}
			u := l.Other(cur.sw)
			if g.Nodes[u].Kind != topo.Switch || done[u] {
				continue
			}
			if mask != nil && !mask(l) {
				continue
			}
			ch := l.Channel(u) // channel in travel direction u -> cur.sw
			nh := cur.hops + 1
			nw := cur.weight + cw.Get(ch)
			old, seen := dist[u]
			if !seen || nh < old.hops || (nh == old.hops && nw < old.weight-1e-12) {
				// Lazy deletion: stale queue entries are skipped via done[].
				push(u, nh, nw)
				res[u] = spEntry{hops: nh, weight: nw, next: ch}
			}
		}
	}
	res[dstSwitch] = spEntry{hops: 0, weight: 0, next: NoChannel}
	return res
}

// tracePath follows next-hop entries from src switch to the destination
// switch, returning the channel sequence. Returns nil if src has no entry.
func tracePath(entries map[topo.NodeID]spEntry, g *topo.Graph, src topo.NodeID) []topo.ChannelID {
	var out []topo.ChannelID
	cur := src
	for {
		e, ok := entries[cur]
		if !ok {
			return nil
		}
		if e.next == NoChannel {
			return out
		}
		out = append(out, e.next)
		cur = g.ChannelTo(e.next)
		if len(out) > MaxHops {
			panic("route: tracePath loop")
		}
	}
}
