package route

import (
	"testing"
	"testing/quick"

	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

func TestCDGAcceptsDAG(t *testing.T) {
	g := NewCDG()
	// A diamond: 0->1, 0->2, 1->3, 2->3 is acyclic.
	edges := [][2]topo.ChannelID{{0, 1}, {0, 2}, {1, 3}, {2, 3}}
	for _, e := range edges {
		if !g.AddEdge(e[0], e[1]) {
			t.Fatalf("AddEdge(%v) rejected acyclic edge", e)
		}
	}
	if !g.Acyclic() {
		t.Error("Acyclic() = false for a DAG")
	}
	if g.Edges() != 4 {
		t.Errorf("Edges() = %d, want 4", g.Edges())
	}
}

func TestCDGRejectsCycle(t *testing.T) {
	g := NewCDG()
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if g.AddEdge(2, 0) {
		t.Fatal("AddEdge closed a 3-cycle")
	}
	// Graph must be unchanged.
	if g.HasEdge(2, 0) {
		t.Error("rejected edge was inserted")
	}
	if !g.Acyclic() {
		t.Error("graph became cyclic")
	}
	// And further legal inserts still work.
	if !g.AddEdge(0, 2) {
		t.Error("legal edge rejected after a cycle rejection")
	}
}

func TestCDGSelfLoopRejected(t *testing.T) {
	g := NewCDG()
	if g.AddEdge(5, 5) {
		t.Error("self-loop accepted")
	}
}

func TestCDGDuplicateEdgeIdempotent(t *testing.T) {
	g := NewCDG()
	g.AddEdge(1, 2)
	if !g.AddEdge(1, 2) {
		t.Error("duplicate edge rejected")
	}
	if g.Edges() != 1 {
		t.Errorf("Edges() = %d, want 1", g.Edges())
	}
}

func TestCDGReorderCase(t *testing.T) {
	// Force insertion order that requires reordering: insert 1->2 then
	// 0->1 where 0 was created after 2.
	g := NewCDG()
	g.AddEdge(1, 2) // creates 1 (ord 0), 2 (ord 1)
	g.AddEdge(3, 1) // creates 3 (ord 2); needs reorder so 3 < 1
	if !g.Acyclic() {
		t.Error("graph cyclic after reorder")
	}
	if !g.AddEdge(2, 3) == false {
		// 2->3 closes 1->2->3->1: must be rejected.
		t.Error("cycle through reordered nodes accepted")
	}
}

// Property: random edge insertion maintains the invariant "AddEdge returns
// true iff graph stays acyclic", verified against the exhaustive checker.
func TestCDGRandomInsertionsStayAcyclic(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRand(seed)
		g := NewCDG()
		n := 12
		for i := 0; i < 80; i++ {
			u := topo.ChannelID(r.Intn(n))
			v := topo.ChannelID(r.Intn(n))
			g.AddEdge(u, v)
			if !g.Acyclic() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: whenever AddEdge rejects, adding the reverse edge set must show
// a path from v to u already existed.
func TestCDGRejectImpliesReversePath(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRand(seed)
		g := NewCDG()
		n := 10
		for i := 0; i < 60; i++ {
			u := topo.ChannelID(r.Intn(n))
			v := topo.ChannelID(r.Intn(n))
			if u == v {
				continue
			}
			if !g.AddEdge(u, v) {
				if !reachable(g, v, u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func reachable(g *CDG, from, to topo.ChannelID) bool {
	seen := map[topo.ChannelID]bool{from: true}
	stack := []topo.ChannelID{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			return true
		}
		for _, m := range g.succ[n] {
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return false
}

func TestCDGAddPathRollback(t *testing.T) {
	g := NewCDG()
	all := func(topo.ChannelID) bool { return true }
	if !g.AddPath([]topo.ChannelID{0, 1, 2}, all) {
		t.Fatal("first path rejected")
	}
	before := g.Edges()
	// Path 2->0->1 adds edges (2,0) and (0,1); (2,0) closes the cycle
	// 0->1->2->0, so the whole path must be rejected without residue.
	if g.AddPath([]topo.ChannelID{1, 2, 0}, all) {
		t.Fatal("cyclic path accepted")
	}
	if g.Edges() != before {
		t.Errorf("rollback left residue: %d edges, want %d", g.Edges(), before)
	}
}

func TestAssignLayersSplitsCyclicPathSets(t *testing.T) {
	g := topo.New("ring")
	// 3-switch ring with one terminal each: minimal routing around the
	// ring in one direction produces a cyclic CDG needing 2 lanes.
	var sw [3]topo.NodeID
	for i := range sw {
		sw[i] = g.AddNode(topo.Switch, "s").ID
	}
	var term [3]topo.NodeID
	for i := range term {
		term[i] = g.AddNode(topo.Terminal, "t").ID
		g.Connect(sw[i], term[i], 1e9, 1e-7)
	}
	var ring [3]*topo.Link
	for i := range sw {
		ring[i] = g.Connect(sw[i], sw[(i+1)%3], 1e9, 1e-7)
	}
	// Paths: each uses two ring channels clockwise: s0->s1->s2, s1->s2->s0,
	// s2->s0->s1 — the classic cyclic dependency.
	paths := [][]topo.ChannelID{
		{ring[0].Channel(sw[0]), ring[1].Channel(sw[1])},
		{ring[1].Channel(sw[1]), ring[2].Channel(sw[2])},
		{ring[2].Channel(sw[2]), ring[0].Channel(sw[0])},
	}
	vls := make([]int, 3)
	lanes, failed := AssignLayers(g, paths, 8, func(i, vl int) { vls[i] = vl })
	if failed >= 0 {
		t.Fatalf("assignment failed at %d", failed)
	}
	if lanes != 2 {
		t.Errorf("lanes = %d, want 2", lanes)
	}
	// With maxVL=1 it must fail.
	_, failed = AssignLayers(g, paths, 1, func(int, int) {})
	if failed < 0 {
		t.Error("maxVL=1 should fail on a cyclic path set")
	}
}
