package route

import (
	"testing"

	"github.com/hpcsim/t2hx/internal/topo"
)

func TestLASHDeadlockFreeOnHyperX(t *testing.T) {
	hx := smallHX(t)
	tb, err := LASH(hx.Graph, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	rep := validateOK(t, tb, 2)
	if rep.VLs < 1 || rep.VLs > 8 {
		t.Errorf("VLs = %d", rep.VLs)
	}
}

func TestLASHLessBalancedThanSSSP(t *testing.T) {
	// Without edge-weight updates, LASH's maximum channel load should be
	// at least as high as (in practice higher than) SSSP's.
	hx := smallHX(t)
	lash, err := LASH(hx.Graph, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	sssp, err := SSSP(hx.Graph, 0)
	if err != nil {
		t.Fatal(err)
	}
	maxOf := func(tb *Tables) int {
		m := 0
		for _, l := range ChannelLoads(tb) {
			if l > m {
				m = l
			}
		}
		return m
	}
	if maxOf(lash) < maxOf(sssp) {
		t.Errorf("LASH max load %d below SSSP %d — balancing ablation inverted",
			maxOf(lash), maxOf(sssp))
	}
}

func TestLASHOnDegradedFabric(t *testing.T) {
	hx := topo.NewHyperX(topo.HyperXConfig{S: []int{4, 4}, T: 2, Bandwidth: 1e9, Latency: 1e-7})
	topo.DegradeSwitchLinks(hx.Graph, 6, 3)
	tb, err := LASH(hx.Graph, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	validateOK(t, tb, 0)
}
