package route

import (
	"errors"
	"testing"

	"github.com/hpcsim/t2hx/internal/topo"
)

// On a healthy HyperX, hxmin must be exactly dimension-order minimal: full
// reachability, hop counts equal to the number of differing coordinates,
// and a single deadlock-free lane.
func TestHXMinHealthyIsMinimal(t *testing.T) {
	hx := smallHX(t)
	tb, err := HXMin(hx, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep := validateOK(t, tb, 2)
	if rep.VLs != 1 {
		t.Errorf("hxmin used %d VLs, want 1", rep.VLs)
	}
	for i, src := range hx.Terminals() {
		for j, dst := range hx.Terminals() {
			if i == j {
				continue
			}
			p, err := tb.Path(src, tb.BaseLID[j])
			if err != nil {
				t.Fatalf("path %d->%d: %v", i, j, err)
			}
			cs, cd := hx.Coord(src), hx.Coord(dst)
			want := 0
			for d := range cs {
				if cs[d] != cd[d] {
					want++
				}
			}
			if SwitchHops(p) != want {
				t.Fatalf("path %d->%d: %d switch hops, want %d", i, j, SwitchHops(p), want)
			}
		}
	}
}

func TestHXNonMinHealthy(t *testing.T) {
	hx := smallHX(t)
	tb, err := HXNonMin(hx, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	// On a fault-free lattice the BFS metric equals the lattice metric, so
	// hxnm is minimal too.
	validateOK(t, tb, 2)
}

// Killing the direct link of a pair whose line still has a low-coordinate
// intermediate: hxmin must reroute over the restricted two-hop escape.
func TestHXMinRestrictedEscape(t *testing.T) {
	hx := smallHX(t)
	a, b := hx.SwitchAt(0, 1), hx.SwitchAt(0, 2)
	for _, l := range hx.Nodes[a].Ports {
		if l != nil && l.Other(a) == b {
			l.Down = true
		}
	}
	tb, err := HXMin(hx, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep := validateOK(t, tb, 0)
	if rep.VLs != 1 {
		t.Errorf("hxmin used %d VLs, want 1", rep.VLs)
	}
	src := hx.TerminalsOf(a)[0]
	dst := hx.TerminalsOf(b)[0]
	p, err := tb.Path(src, tb.BaseLID[hx.TerminalIndex(dst)])
	if err != nil {
		t.Fatal(err)
	}
	if SwitchHops(p) != 2 {
		t.Fatalf("escape path has %d switch hops, want 2", SwitchHops(p))
	}
	// The intermediate must be the restricted (0,0) switch.
	mid := hx.Graph.ChannelTo(p[1])
	if mid != hx.SwitchAt(0, 0) {
		t.Errorf("escape runs through %s, want s[0 0]", hx.Nodes[mid].Label)
	}
}

// Killing the direct link of a coordinate-0 pair leaves hxmin with no
// restricted intermediate: the pair must be reported unreachable via
// ErrNoRoute — graceful degradation, not a panic or a loop — while hxnm
// still serves it non-minimally.
func TestHXMinStrandsWithoutRestrictedEscape(t *testing.T) {
	hx := smallHX(t)
	a, b := hx.SwitchAt(0, 0), hx.SwitchAt(0, 1)
	for _, l := range hx.Nodes[a].Ports {
		if l != nil && l.Other(a) == b {
			l.Down = true
		}
	}
	tb, err := HXMin(hx, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := hx.TerminalsOf(a)[0]
	dst := hx.TerminalsOf(b)[0]
	_, err = tb.Path(src, tb.BaseLID[hx.TerminalIndex(dst)])
	if !errors.Is(err, ErrNoRoute) {
		t.Fatalf("stranded pair returned %v, want ErrNoRoute", err)
	}
	rep, err := Validate(tb)
	if err != nil {
		t.Fatal(err)
	}
	// Both terminal pairs over the dead link, in both directions, for T=2.
	if rep.Unreachable == 0 {
		t.Error("Validate did not count the stranded pairs")
	}
	if !rep.DeadlockFree {
		t.Error("degraded hxmin table not deadlock-free")
	}
	if hasForwardingLoop(tb) {
		t.Error("degraded hxmin table has a forwarding loop")
	}

	nm, err := HXNonMin(hx, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	validateOK(t, nm, 0)
}

// hxnm must keep full reachability under any connectivity-preserving
// degradation, and every hop of every path must strictly reduce the BFS
// distance (loop-freedom by construction).
func TestHXNonMinSurvivesHeavyDegradation(t *testing.T) {
	hx := smallHX(t)
	if _, err := topo.DegradeSwitchLinks(hx.Graph, 14, 5); err != nil {
		t.Fatal(err)
	}
	tb, err := HXNonMin(hx, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	rep := validateOK(t, tb, 0)
	if rep.MaxSwitchHops <= 2 {
		t.Logf("note: max hops %d — degradation did not force a detour", rep.MaxSwitchHops)
	}
	if m := DeadlockMargin(tb, 0); m < 0 || m > 1 {
		t.Errorf("margin %g out of range", m)
	}
}

// The margin must be 1.0 for an empty routing and must not increase when a
// routing saturates more of the dependency space.
func TestDeadlockMarginOrdering(t *testing.T) {
	hx := smallHX(t)
	empty := newTables(hx.Graph, "none", 0, nil)
	empty.Freeze()
	if m := DeadlockMargin(empty, 0); m != 1 {
		t.Fatalf("empty routing margin %g, want 1", m)
	}
	one, err := HXMin(hx, 0) // single lane: all dependencies share one CDG
	if err != nil {
		t.Fatal(err)
	}
	mOne := DeadlockMargin(one, 0)
	many, err := DFSSSP(hx.Graph, 0, 8) // layered: each lane far slacker
	if err != nil {
		t.Fatal(err)
	}
	mMany := DeadlockMargin(many, 0)
	if mOne <= 0 || mOne > 1 || mMany <= 0 || mMany > 1 {
		t.Fatalf("margins out of range: hxmin %g dfsssp %g", mOne, mMany)
	}
	t.Logf("margin: hxmin(1 VL)=%.3f dfsssp(%d VLs)=%.3f", mOne, many.NumVL, mMany)
}

func TestCDGCanReach(t *testing.T) {
	g := NewCDG()
	if !g.AddEdge(2, 4) || !g.AddEdge(4, 6) || !g.AddEdge(8, 10) {
		t.Fatal("AddEdge failed")
	}
	if !g.CanReach(2, 6) {
		t.Error("2 should reach 6")
	}
	if g.CanReach(6, 2) {
		t.Error("6 must not reach 2")
	}
	if g.CanReach(2, 10) {
		t.Error("2 must not reach 10 (separate component)")
	}
	if !g.CanReach(4, 4) {
		t.Error("a node reaches itself")
	}
	if g.CanReach(2, 99) {
		t.Error("unknown node is unreachable")
	}
}
