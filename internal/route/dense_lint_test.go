package route

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"github.com/hpcsim/t2hx/internal/topo"
)

// routeHotPathFiles are the files on the table-build hot path that must
// keep their per-switch/per-terminal state in flat slices over the graph's
// dense kind indexes. map[topo.NodeID] churn here used to dominate
// (DF)SSSP/PARX build time; this lint stops it from creeping back. nue.go
// is exempt: its CDG-constrained tree growth is not on the sweep hot path
// and keeps its clearer map-based formulation.
var routeHotPathFiles = []string{
	"dijkstra.go",
	"tables.go",
	"sssp.go",
	"ftree.go",
	"updown.go",
	"lash.go",
	"hyperx_ft.go",
}

func TestNoNodeIDMapsInHotPaths(t *testing.T) {
	fset := token.NewFileSet()
	for _, file := range routeHotPathFiles {
		f, err := parser.ParseFile(fset, file, nil, 0)
		if err != nil {
			t.Fatalf("parsing %s: %v", file, err)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			m, ok := n.(*ast.MapType)
			if !ok {
				return true
			}
			if isSelector(m.Key, "topo", "NodeID") {
				t.Errorf("%s: map keyed by topo.NodeID — use a flat slice over Graph.SwitchIndex/TerminalIndex instead",
					fset.Position(m.Pos()))
			}
			return true
		})
	}
}

// TestNoHandleMapsInFlowFabricHotPaths extends the dense-state lint to the
// per-flow hot paths: internal/flow keeps its state in the arena/SoA flow
// table indexed by flow.Index(id), and internal/fabric keys its inflight
// tracking by the same slot index. map[FlowID] / map[topo.ChannelID] churn
// here is exactly what the arena refactor removed; this stops it creeping
// back. Test files are exempt (they favor clarity over allocation rate).
func TestNoHandleMapsInFlowFabricHotPaths(t *testing.T) {
	fset := token.NewFileSet()
	for _, dir := range []string{"../flow", "../fabric"} {
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		if len(files) == 0 {
			t.Fatalf("no Go files found in %s", dir)
		}
		for _, file := range files {
			if strings.HasSuffix(file, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, file, nil, 0)
			if err != nil {
				t.Fatalf("parsing %s: %v", file, err)
			}
			ast.Inspect(f, func(n ast.Node) bool {
				m, ok := n.(*ast.MapType)
				if !ok {
					return true
				}
				if isIdent(m.Key, "FlowID") || isSelector(m.Key, "flow", "FlowID") {
					t.Errorf("%s: map keyed by FlowID — index a dense slice by flow.Index(id) and authenticate with the full handle instead",
						fset.Position(m.Pos()))
				}
				if isSelector(m.Key, "topo", "ChannelID") {
					t.Errorf("%s: map keyed by topo.ChannelID — channel IDs are dense; use a flat slice over the channel space instead",
						fset.Position(m.Pos()))
				}
				return true
			})
		}
	}
}

// TestNoMapsInComponentIndexHotPath bans maps of ANY key type in the
// sharded solver's component-index hot path and the fork-join pool under
// it: component discovery runs on every settle and the solve body runs on
// pool workers, so both must stay on epoch-stamped flat slices (a map
// would also be a latent data race between workers). Stricter than the
// keyed bans above on purpose — these files have no legitimate map use.
func TestNoMapsInComponentIndexHotPath(t *testing.T) {
	fset := token.NewFileSet()
	for _, file := range []string{"../flow/solver_shard.go", "../sim/pool.go"} {
		f, err := parser.ParseFile(fset, file, nil, 0)
		if err != nil {
			t.Fatalf("parsing %s: %v", file, err)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if m, ok := n.(*ast.MapType); ok {
				t.Errorf("%s: map in the component-index hot path — use epoch-stamped flat slices over the channel/flow space instead",
					fset.Position(m.Pos()))
			}
			return true
		})
	}
}

// TestNoContainerHeapInEventAndFlowHotPaths bans container/heap from the
// event core and the flow solvers: its interface-typed Push/Pop boxes
// every entry, which is exactly the per-event/per-entry allocation the
// hand-rolled value heaps (sim.Engine's 4-ary event heap, flow's share and
// done heaps) were written to remove. Test files are exempt.
func TestNoContainerHeapInEventAndFlowHotPaths(t *testing.T) {
	fset := token.NewFileSet()
	for _, dir := range []string{"../sim", "../flow"} {
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		if len(files) == 0 {
			t.Fatalf("no Go files found in %s", dir)
		}
		for _, file := range files {
			if strings.HasSuffix(file, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, file, nil, parser.ImportsOnly)
			if err != nil {
				t.Fatalf("parsing %s: %v", file, err)
			}
			for _, imp := range f.Imports {
				if imp.Path.Value == `"container/heap"` {
					t.Errorf("%s: imports container/heap — use a hand-rolled value-indexed heap (engine.go / solver_incremental.go pattern) instead",
						fset.Position(imp.Pos()))
				}
			}
		}
	}
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

func isSelector(e ast.Expr, pkg, name string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	p, ok := sel.X.(*ast.Ident)
	return ok && p.Name == pkg && sel.Sel.Name == name
}

func TestFrozenTablesRejectWrites(t *testing.T) {
	hx := smallHX(t)
	tb, err := SSSP(hx.Graph, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !tb.Frozen() {
		t.Fatal("SSSP returned unfrozen tables")
	}
	sw := hx.Graph.Switches()[0]
	term := hx.Graph.Terminals()[0]
	mustPanic(t, "SetNextHop", func() { tb.SetNextHop(sw, 1, NoChannel) })
	mustPanic(t, "SetSL", func() { tb.SetSL(term, 1, 0) })

	// A mutable clone accepts writes again without touching the original.
	before := tb.NextHop(sw, tb.BaseLID[0])
	mc := tb.MutableClone()
	mc.SetNextHop(sw, tb.BaseLID[0], NoChannel)
	if got := tb.NextHop(sw, tb.BaseLID[0]); got != before {
		t.Errorf("mutating a clone changed the frozen original: %d -> %d", before, got)
	}
}

func TestAllEnginesFreeze(t *testing.T) {
	hx := smallHX(t)
	builds := map[string]func() (*Tables, error){
		"sssp":   func() (*Tables, error) { return SSSP(hx.Graph, 0) },
		"dfsssp": func() (*Tables, error) { return DFSSSP(hx.Graph, 0, 8) },
		"updown": func() (*Tables, error) { return UpDown(hx.Graph, 0) },
		"lash":   func() (*Tables, error) { return LASH(hx.Graph, 0, 8) },
		"nue":    func() (*Tables, error) { return Nue(hx.Graph, 0, 2) },
		"hxmin":  func() (*Tables, error) { return HXMin(hx, 0) },
		"hxnm":   func() (*Tables, error) { return HXNonMin(hx, 0, 8) },
	}
	for name, build := range builds {
		tb, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !tb.Frozen() {
			t.Errorf("%s returned unfrozen tables", name)
		}
	}
}

func TestRebind(t *testing.T) {
	a := smallHX(t)
	b := smallHX(t)
	tb, err := SSSP(a.Graph, 0)
	if err != nil {
		t.Fatal(err)
	}
	rb := tb.Rebind(b.Graph)
	if rb.G != b.Graph {
		t.Fatal("Rebind did not swap the graph")
	}
	if !rb.Frozen() {
		t.Fatal("rebound tables lost the freeze")
	}
	// Forwarding state is shared: same next hops through either binding.
	for _, sw := range a.Graph.Switches() {
		for _, lid := range []LID{tb.BaseLID[0], tb.BaseLID[len(tb.BaseLID)-1]} {
			if tb.NextHop(sw, lid) != rb.NextHop(sw, lid) {
				t.Fatalf("rebound tables disagree at switch %d lid %d", sw, lid)
			}
		}
	}

	mustPanic(t, "Rebind unfrozen", func() { tb.MutableClone().Rebind(b.Graph) })
	tiny := topo.NewHyperX(topo.HyperXConfig{S: []int{2, 2}, T: 2, Bandwidth: 1e9, Latency: 1e-7})
	mustPanic(t, "Rebind different shape", func() { tb.Rebind(tiny.Graph) })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	f()
}
