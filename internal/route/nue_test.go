package route

import (
	"testing"

	"github.com/hpcsim/t2hx/internal/topo"
)

func TestNueSingleVLOnHyperX(t *testing.T) {
	// The headline capability: deadlock freedom on ONE virtual lane,
	// which DFSSSP cannot promise.
	hx := smallHX(t)
	tb, err := Nue(hx.Graph, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep := validateOK(t, tb, 0)
	if rep.VLs != 1 {
		t.Errorf("VLs = %d, want 1", rep.VLs)
	}
}

func TestNueMultiVLReducesDetours(t *testing.T) {
	hx := smallHX(t)
	one, err := Nue(hx.Graph, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := Nue(hx.Graph, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Validate(one)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Validate(four)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.DeadlockFree || !r4.DeadlockFree {
		t.Fatal("Nue tables not deadlock-free")
	}
	// More lanes mean fewer blocked dependencies, so average hops should
	// not get worse.
	if r4.AvgSwitchHops > r1.AvgSwitchHops+1e-9 {
		t.Errorf("4-VL Nue has longer paths (%.3f) than 1-VL (%.3f)",
			r4.AvgSwitchHops, r1.AvgSwitchHops)
	}
}

func TestNueOnDegradedFabrics(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4} {
		hx := topo.NewHyperX(topo.HyperXConfig{S: []int{4, 4}, T: 1, Bandwidth: 1e9, Latency: 1e-7})
		topo.DegradeSwitchLinks(hx.Graph, 8, seed)
		tb, err := Nue(hx.Graph, 0, 2)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		validateOK(t, tb, 0)
	}
}

func TestNueOnTree(t *testing.T) {
	ft := topo.NewKaryNTree(4, 2, 1e9, 1e-7)
	tb, err := Nue(ft.Graph, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep := validateOK(t, tb, 2)
	// Trees have no cycles to dodge: Nue paths stay minimal.
	if rep.MaxSwitchHops != 2 {
		t.Errorf("max hops = %d, want 2", rep.MaxSwitchHops)
	}
}

func TestNueRejectsZeroVLs(t *testing.T) {
	hx := smallHX(t)
	if _, err := Nue(hx.Graph, 0, 0); err == nil {
		t.Error("nVL=0 accepted")
	}
}
