// Package route implements InfiniBand-style destination-based routing for
// the topologies in internal/topo: linear forwarding tables (LFTs) keyed by
// destination LID, LMC-based multi-LID addressing, and the routing engines
// the paper evaluates — ftree (D-Mod-K), SSSP, DFSSSP (deadlock-free via
// virtual-lane layering) and Up*/Down*. The paper's own PARX engine lives
// in internal/core and builds on the primitives here.
package route

import (
	"errors"
	"fmt"

	"github.com/hpcsim/t2hx/internal/topo"
)

// ErrNoRoute marks Path failures meaning "the tables do not serve this
// pair" — a missing LFT entry or a detached source terminal. Fault-tolerant
// engines (HXMin) leave such pairs unprogrammed by design, so callers walk
// all pairs with errors.Is(err, ErrNoRoute) to separate graceful
// degradation from structural anomalies (loops, misdelivery), which never
// wrap it.
var ErrNoRoute = errors.New("no route")

// LID is an InfiniBand local identifier: the destination address forwarding
// tables are keyed by. With LMC = l, a terminal port owns 2^l consecutive
// LIDs, each routed independently by the subnet manager.
type LID uint16

// NoChannel marks an absent LFT entry.
const NoChannel topo.ChannelID = -1

// MaxLMC bounds the supported LID mask control (the IB spec allows 7; PARX
// needs 2).
const MaxLMC = 4

// LIDPolicy assigns base LIDs to terminals. It receives the terminal's
// index in graph order and its NodeID, and must return 2^lmc-aligned,
// non-overlapping base LIDs. LID 0 is reserved (invalid in IB).
type LIDPolicy func(termIdx int, term topo.NodeID) LID

// SequentialLIDs is the default policy: terminal i gets base LID
// 1 + i*2^lmc... rounded up to alignment.
func SequentialLIDs(lmc uint8) LIDPolicy {
	span := LID(1) << lmc
	return func(termIdx int, _ topo.NodeID) LID {
		return span * LID(termIdx+1)
	}
}

// Tables is a complete routing configuration: LID assignment, per-switch
// linear forwarding tables, and the virtual-lane (service-level) assignment
// for deadlock avoidance.
//
// Tables are mutable only while an engine is building them. Every engine
// calls Freeze before returning, after which SetNextHop/SetSL panic; a
// frozen Tables is therefore safe to share across goroutines and to cache
// (see exp.TableCache). Terminal and switch indexes come from the graph's
// dense kind indexes (topo.Graph.TerminalIndex / SwitchIndex), so lookups
// are flat slice reads with no map state.
type Tables struct {
	G      *topo.Graph
	Engine string
	LMC    uint8

	// BaseLID[termIdx] is the base LID of terminal termIdx (graph terminal
	// order).
	BaseLID []LID
	// maxLID is the highest assigned LID.
	maxLID LID

	// lidOwner[lid] is the owning terminal index, or -1.
	lidOwner []int32

	// lft[swIdx][lid] is the outgoing channel from that switch toward lid,
	// or NoChannel.
	lft [][]topo.ChannelID

	// sl[srcTermIdx*numLIDSlots + dstSlot] is the virtual lane of the path
	// from srcTerm to dst LID, where dstSlot = dstTermIdx<<lmc | lidOffset.
	// nil when the engine does not use VLs (single-lane routing).
	sl    []uint8
	NumVL int

	frozen bool
}

// newTables allocates tables for g with the given LID policy.
func newTables(g *topo.Graph, engine string, lmc uint8, policy LIDPolicy) *Tables {
	if lmc > MaxLMC {
		panic("route: LMC too large")
	}
	if policy == nil {
		policy = SequentialLIDs(lmc)
	}
	terms := g.Terminals()
	t := &Tables{
		G:       g,
		Engine:  engine,
		LMC:     lmc,
		BaseLID: make([]LID, len(terms)),
	}
	span := LID(1) << lmc
	for i, tm := range terms {
		base := policy(i, tm)
		if base == 0 || base%span != 0 && lmc > 0 {
			panic(fmt.Sprintf("route: LID policy returned unaligned base LID %d for lmc=%d", base, lmc))
		}
		t.BaseLID[i] = base
		if base+span-1 > t.maxLID {
			t.maxLID = base + span - 1
		}
	}
	t.lidOwner = make([]int32, int(t.maxLID)+1)
	for i := range t.lidOwner {
		t.lidOwner[i] = -1
	}
	for i, base := range t.BaseLID {
		for o := LID(0); o < span; o++ {
			if t.lidOwner[base+o] != -1 {
				panic(fmt.Sprintf("route: LID %d assigned twice", base+o))
			}
			t.lidOwner[base+o] = int32(i)
		}
	}
	t.lft = make([][]topo.ChannelID, g.NumSwitches())
	for i := range t.lft {
		row := make([]topo.ChannelID, int(t.maxLID)+1)
		for j := range row {
			row[j] = NoChannel
		}
		t.lft[i] = row
	}
	return t
}

// TermIndex returns the terminal index of a terminal node.
func (t *Tables) TermIndex(n topo.NodeID) int { return t.G.TerminalIndex(n) }

// TermByIndex returns the terminal NodeID at index i.
func (t *Tables) TermByIndex(i int) topo.NodeID { return t.G.Terminals()[i] }

// NumTerminals reports the number of addressed terminals.
func (t *Tables) NumTerminals() int { return len(t.BaseLID) }

// MaxLID returns the highest assigned LID.
func (t *Tables) MaxLID() LID { return t.maxLID }

// LIDFor returns the lidOffset-th LID of a terminal.
func (t *Tables) LIDFor(term topo.NodeID, lidOffset uint8) LID {
	if lidOffset >= 1<<t.LMC {
		panic("route: lid offset beyond LMC range")
	}
	return t.BaseLID[t.G.TerminalIndex(term)] + LID(lidOffset)
}

// OwnerOf returns the terminal owning a LID, or -1.
func (t *Tables) OwnerOf(lid LID) int {
	if int(lid) >= len(t.lidOwner) {
		return -1
	}
	return int(t.lidOwner[lid])
}

// SetNextHop installs the LFT entry of switch sw toward lid. It panics on
// frozen tables: engines finish all writes before Freeze, and shared cached
// tables must never be modified.
func (t *Tables) SetNextHop(sw topo.NodeID, lid LID, c topo.ChannelID) {
	if t.frozen {
		panic("route: SetNextHop on frozen Tables")
	}
	t.lft[t.G.SwitchIndex(sw)][lid] = c
}

// NextHop returns the outgoing channel of switch sw toward lid, or
// NoChannel.
func (t *Tables) NextHop(sw topo.NodeID, lid LID) topo.ChannelID {
	return t.lft[t.G.SwitchIndex(sw)][lid]
}

// slSlot maps (src terminal index, dst LID) to an index into sl.
func (t *Tables) slSlot(srcIdx int, lid LID) int {
	dstIdx := t.lidOwner[lid]
	off := int(lid - t.BaseLID[dstIdx])
	slots := t.NumTerminals() << t.LMC
	return srcIdx*slots + (int(dstIdx)<<t.LMC | off)
}

// SetSL records the virtual lane for the (src, dst LID) path. It panics on
// frozen tables, like SetNextHop.
func (t *Tables) SetSL(src topo.NodeID, lid LID, vl uint8) {
	if t.frozen {
		panic("route: SetSL on frozen Tables")
	}
	if t.sl == nil {
		n := t.NumTerminals()
		t.sl = make([]uint8, n*(n<<t.LMC))
	}
	t.sl[t.slSlot(t.G.TerminalIndex(src), lid)] = vl
	if int(vl)+1 > t.NumVL {
		t.NumVL = int(vl) + 1
	}
}

// SL returns the virtual lane for the (src, dst LID) path; 0 when the
// engine assigned none.
func (t *Tables) SL(src topo.NodeID, lid LID) uint8 {
	if t.sl == nil {
		return 0
	}
	return t.sl[t.slSlot(t.G.TerminalIndex(src), lid)]
}

// Freeze marks the tables read-only; subsequent SetNextHop/SetSL calls
// panic. Every routing engine freezes its result before returning, which
// is what makes sharing one Tables across sweep workers race-free.
func (t *Tables) Freeze() { t.frozen = true }

// Frozen reports whether the tables are read-only.
func (t *Tables) Frozen() bool { return t.frozen }

// Rebind returns a shallow copy of frozen tables with G swapped to another
// structurally identical graph. The LFT/SL slices are shared (read-only),
// but the copy's graph pointer matches the caller's fabric so runtime fault
// injection on one machine's graph never leaks into another's tables. It
// panics when t is not frozen or g has a different shape.
func (t *Tables) Rebind(g *topo.Graph) *Tables {
	if !t.frozen {
		panic("route: Rebind of unfrozen Tables")
	}
	if len(g.Nodes) != len(t.G.Nodes) || len(g.Links) != len(t.G.Links) ||
		g.NumSwitches() != t.G.NumSwitches() || g.NumTerminals() != t.G.NumTerminals() {
		panic("route: Rebind to structurally different graph")
	}
	nt := *t
	nt.G = g
	return &nt
}

// MutableClone deep-copies the LFT and SL state into fresh unfrozen tables
// bound to the same graph. Tests use it to corrupt routing state without
// tripping the freeze guard or poisoning a cached original.
func (t *Tables) MutableClone() *Tables {
	nt := *t
	nt.frozen = false
	nt.lft = make([][]topo.ChannelID, len(t.lft))
	for i, row := range t.lft {
		nt.lft[i] = append([]topo.ChannelID(nil), row...)
	}
	if t.sl != nil {
		nt.sl = append([]uint8(nil), t.sl...)
	}
	return &nt
}

// MaxHops bounds LFT walks; anything longer indicates a forwarding loop.
const MaxHops = 64

// Path walks the forwarding tables from src terminal to the given LID and
// returns the channel sequence, including the injection and delivery
// channels. It returns an error on unreachable LIDs or forwarding loops.
func (t *Tables) Path(src topo.NodeID, lid LID) ([]topo.ChannelID, error) {
	ownerIdx := t.OwnerOf(lid)
	if ownerIdx < 0 {
		return nil, fmt.Errorf("route: LID %d unassigned", lid)
	}
	dst := t.TermByIndex(ownerIdx)
	if src == dst {
		return nil, nil
	}
	g := t.G
	var path []topo.ChannelID
	// Injection.
	sw := g.SwitchOf(src)
	if sw < 0 {
		return nil, fmt.Errorf("route: source terminal %d detached: %w", src, ErrNoRoute)
	}
	for _, l := range g.Nodes[src].Ports {
		if l != nil && !l.Down {
			path = append(path, l.Channel(src))
			break
		}
	}
	for hops := 0; ; hops++ {
		if hops > MaxHops {
			return nil, fmt.Errorf("route: forwarding loop toward LID %d (engine %s)", lid, t.Engine)
		}
		c := t.NextHop(sw, lid)
		if c == NoChannel {
			return nil, fmt.Errorf("route: switch %s has no entry for LID %d (engine %s): %w", g.Nodes[sw].Label, lid, t.Engine, ErrNoRoute)
		}
		l := g.Link(c)
		if l.Down {
			return nil, fmt.Errorf("route: LFT of %s uses down link toward LID %d", g.Nodes[sw].Label, lid)
		}
		path = append(path, c)
		next := g.ChannelTo(c)
		if next == dst {
			return path, nil
		}
		if g.Nodes[next].Kind == topo.Terminal {
			return nil, fmt.Errorf("route: path toward LID %d delivered to wrong terminal %s", lid, g.Nodes[next].Label)
		}
		sw = next
	}
}

// SwitchHops returns the number of switch-to-switch hops of a path returned
// by Path (total channels minus injection and delivery).
func SwitchHops(path []topo.ChannelID) int {
	if len(path) < 2 {
		return 0
	}
	return len(path) - 2
}
