package route

import (
	"fmt"
	"sort"

	"github.com/hpcsim/t2hx/internal/topo"
)

// UpDown implements Up*/Down* routing (Autonet, Schroeder et al.): switches
// are ranked by BFS distance from a root, every link gets an up/down
// orientation, and each packet follows a valley-free path — zero or more up
// hops followed by zero or more down hops. Valley-freedom makes the channel
// dependency graph acyclic on a single virtual lane, so Up*/Down* is
// deadlock-free on any topology; the price is non-minimal paths and a hot
// root. The paper cites it as the classic topology-agnostic deadlock-free
// option next to DFSSSP, LASH and Nue.
func UpDown(g *topo.Graph, lmc uint8) (*Tables, error) {
	t := newTables(g, "updown", lmc, nil)
	switches := g.Switches()
	if len(switches) == 0 {
		return nil, fmt.Errorf("route: no switches")
	}

	// Root: the switch with the highest live degree (deterministic tie by
	// ID), the usual OpenSM heuristic.
	root := switches[0]
	best := -1
	for _, s := range switches {
		d := len(g.UpLinks(s))
		if d > best {
			best = d
			root = s
		}
	}
	dist := topo.HopDistances(g, root)
	for _, s := range switches {
		if dist[s] < 0 {
			return nil, fmt.Errorf("route: switch fabric disconnected at %s", g.Nodes[s].Label)
		}
	}
	// rank orders switches: root first; "up" = toward smaller rank.
	rank := make(map[topo.NodeID]int, len(switches))
	ordered := append([]topo.NodeID{}, switches...)
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if dist[a] != dist[b] {
			return dist[a] < dist[b]
		}
		return a < b
	})
	for i, s := range ordered {
		rank[s] = i
	}

	span := 1 << lmc
	terms := g.Terminals()
	for di, dst := range terms {
		dstSw := g.SwitchOf(dst)
		if dstSw < 0 {
			// Detached terminal: leave its LIDs unprogrammed (reported as
			// unreachable by Validate) rather than failing the sweep.
			continue
		}
		// Phase 1 — pure descent (rank strictly increasing toward dst):
		// process in decreasing rank, computing dDown where possible.
		dDown := map[topo.NodeID]int{dstSw: 0}
		downNext := map[topo.NodeID]topo.ChannelID{}
		for i := len(ordered) - 1; i >= 0; i-- {
			s := ordered[i]
			if s == dstSw {
				continue
			}
			best := -1
			var bestC topo.ChannelID
			for _, l := range g.UpLinks(s) {
				o := l.Other(s)
				if g.Nodes[o].Kind != topo.Switch || rank[o] <= rank[s] {
					continue // only "down" edges (rank increases)
				}
				if d, ok := dDown[o]; ok && (best < 0 || d+1 < best) {
					best = d + 1
					bestC = l.Channel(s)
				}
			}
			if best >= 0 {
				dDown[s] = best
				downNext[s] = bestC
			}
		}
		// Phase 2 — ascent: switches without a descent route go up toward
		// the cheapest already-routed lower-rank switch; process in
		// increasing rank so dependencies resolve.
		cost := map[topo.NodeID]int{}
		next := map[topo.NodeID]topo.ChannelID{}
		for _, s := range ordered {
			if d, ok := dDown[s]; ok {
				cost[s] = d
				if s != dstSw {
					next[s] = downNext[s]
				}
				continue
			}
			best := -1
			var bestC topo.ChannelID
			for _, l := range g.UpLinks(s) {
				o := l.Other(s)
				if g.Nodes[o].Kind != topo.Switch || rank[o] >= rank[s] {
					continue // only "up" edges
				}
				if c, ok := cost[o]; ok && (best < 0 || c+1 < best) {
					best = c + 1
					bestC = l.Channel(s)
				}
			}
			if best < 0 {
				return nil, fmt.Errorf("route: updown cannot reach %s from %s",
					g.Nodes[dst].Label, g.Nodes[s].Label)
			}
			cost[s] = best
			next[s] = bestC
		}

		for off := 0; off < span; off++ {
			lid := t.BaseLID[di] + LID(off)
			for s, c := range next {
				t.SetNextHop(s, lid, c)
			}
			for _, l := range g.Nodes[dst].Ports {
				if l != nil && !l.Down && l.Other(dst) == dstSw {
					t.SetNextHop(dstSw, lid, l.Channel(dstSw))
				}
			}
		}
	}
	return t, nil
}
