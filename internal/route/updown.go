package route

import (
	"fmt"
	"sort"

	"github.com/hpcsim/t2hx/internal/topo"
)

// UpDown implements Up*/Down* routing (Autonet, Schroeder et al.): switches
// are ranked by BFS distance from a root, every link gets an up/down
// orientation, and each packet follows a valley-free path — zero or more up
// hops followed by zero or more down hops. Valley-freedom makes the channel
// dependency graph acyclic on a single virtual lane, so Up*/Down* is
// deadlock-free on any topology; the price is non-minimal paths and a hot
// root. The paper cites it as the classic topology-agnostic deadlock-free
// option next to DFSSSP, LASH and Nue.
func UpDown(g *topo.Graph, lmc uint8) (*Tables, error) {
	t := newTables(g, "updown", lmc, nil)
	switches := g.Switches()
	if len(switches) == 0 {
		return nil, fmt.Errorf("route: no switches")
	}

	// Root: the switch with the highest live degree (deterministic tie by
	// ID), the usual OpenSM heuristic.
	root := switches[0]
	best := -1
	for _, s := range switches {
		d := len(g.UpLinks(s))
		if d > best {
			best = d
			root = s
		}
	}
	dist := topo.HopDistances(g, root)
	for _, s := range switches {
		if dist[s] < 0 {
			return nil, fmt.Errorf("route: switch fabric disconnected at %s", g.Nodes[s].Label)
		}
	}
	// rank orders switches: root first; "up" = toward smaller rank. Stored
	// flat by the graph's dense switch index.
	nsw := len(switches)
	rank := make([]int, nsw)
	ordered := append([]topo.NodeID{}, switches...)
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if dist[a] != dist[b] {
			return dist[a] < dist[b]
		}
		return a < b
	})
	for i, s := range ordered {
		rank[g.SwitchIndex(s)] = i
	}

	// Flat per-destination scratch, reset between destinations; -1 cost
	// sentinels mark not-yet-routed switches.
	dDown := make([]int, nsw)
	downNext := make([]topo.ChannelID, nsw)
	cost := make([]int, nsw)
	next := make([]topo.ChannelID, nsw)

	span := 1 << lmc
	terms := g.Terminals()
	for di, dst := range terms {
		dstSw := g.SwitchOf(dst)
		if dstSw < 0 {
			// Detached terminal: leave its LIDs unprogrammed (reported as
			// unreachable by Validate) rather than failing the sweep.
			continue
		}
		for i := 0; i < nsw; i++ {
			dDown[i], downNext[i] = -1, NoChannel
			cost[i], next[i] = -1, NoChannel
		}
		// Phase 1 — pure descent (rank strictly increasing toward dst):
		// process in decreasing rank, computing dDown where possible.
		dDown[g.SwitchIndex(dstSw)] = 0
		for i := len(ordered) - 1; i >= 0; i-- {
			s := ordered[i]
			if s == dstSw {
				continue
			}
			si := g.SwitchIndex(s)
			best := -1
			var bestC topo.ChannelID
			for _, l := range g.UpLinks(s) {
				o := l.Other(s)
				oi := g.SwitchIndex(o)
				if oi < 0 || rank[oi] <= rank[si] {
					continue // only "down" edges (rank increases)
				}
				if d := dDown[oi]; d >= 0 && (best < 0 || d+1 < best) {
					best = d + 1
					bestC = l.Channel(s)
				}
			}
			if best >= 0 {
				dDown[si] = best
				downNext[si] = bestC
			}
		}
		// Phase 2 — ascent: switches without a descent route go up toward
		// the cheapest already-routed lower-rank switch; process in
		// increasing rank so dependencies resolve.
		for _, s := range ordered {
			si := g.SwitchIndex(s)
			if d := dDown[si]; d >= 0 {
				cost[si] = d
				if s != dstSw {
					next[si] = downNext[si]
				}
				continue
			}
			best := -1
			var bestC topo.ChannelID
			for _, l := range g.UpLinks(s) {
				o := l.Other(s)
				oi := g.SwitchIndex(o)
				if oi < 0 || rank[oi] >= rank[si] {
					continue // only "up" edges
				}
				if c := cost[oi]; c >= 0 && (best < 0 || c+1 < best) {
					best = c + 1
					bestC = l.Channel(s)
				}
			}
			if best < 0 {
				return nil, fmt.Errorf("route: updown cannot reach %s from %s",
					g.Nodes[dst].Label, g.Nodes[s].Label)
			}
			cost[si] = best
			next[si] = bestC
		}

		for off := 0; off < span; off++ {
			lid := t.BaseLID[di] + LID(off)
			for si, c := range next {
				if c != NoChannel {
					t.SetNextHop(switches[si], lid, c)
				}
			}
			for _, l := range g.Nodes[dst].Ports {
				if l != nil && !l.Down && l.Other(dst) == dstSw {
					t.SetNextHop(dstSw, lid, l.Channel(dstSw))
				}
			}
		}
	}
	t.Freeze()
	return t, nil
}
