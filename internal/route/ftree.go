package route

import (
	"math"

	"github.com/hpcsim/t2hx/internal/topo"
)

// FTree implements OpenSM's ftree routing for XGFTs, which on healthy
// fabrics behaves like Zahavi's D-Mod-K: packets ascend toward the lowest
// common ancestor level, choosing among redundant parents by a
// deterministic digit of the destination index (contention-free for shift
// permutations), then descend along the unique down path. Missing links are
// bypassed by the cheapest valley-free (up*down*) detour, so the result
// stays loop- and deadlock-free on degraded fabrics — though, as the paper
// observes, less balanced than SSSP there.
func FTree(ft *topo.FatTree, lmc uint8) (*Tables, error) {
	t := newTables(ft.Graph, "ftree", lmc, nil)
	g := ft.Graph
	span := 1 << lmc
	terms := g.Terminals()

	// Mixed-radix digit strides over the parent counts W: at a level-lv
	// switch the D-Mod-K parent digit is (dstIdx / stride[lv]) % W[lv].
	stride := make([]int, ft.Height+1)
	stride[1] = 1
	for lv := 1; lv < ft.Height; lv++ {
		stride[lv+1] = stride[lv] * ft.Cfg.W[lv]
	}

	// Switches grouped by level once, and flat per-destination scratch
	// indexed by the graph's dense switch index, reset between
	// destinations.
	byLevel := make([][]topo.NodeID, ft.Height+1)
	for _, s := range ft.Switches() {
		byLevel[ft.Level(s)] = append(byLevel[ft.Level(s)], s)
	}
	nsw := g.NumSwitches()
	desc := make([]bool, nsw)
	descLink := make([]*topo.Link, nsw)
	cost := make([]float64, nsw)
	next := make([]topo.ChannelID, nsw)

	for di, dst := range terms {
		dstSw := g.SwitchOf(dst)
		if dstSw < 0 {
			// Detached terminal: leave its LIDs unprogrammed (reported as
			// unreachable by Validate) rather than failing the sweep.
			continue
		}
		dstIdx := ft.TermIndex(dst)
		for i := 0; i < nsw; i++ {
			desc[i], descLink[i] = false, nil
			cost[i], next[i] = -1, NoChannel
		}

		// Phase 1: descent feasibility. desc[s] is true when the unique
		// ancestor down-chain from s to dst is fully live.
		desc[g.SwitchIndex(dstSw)] = true
		// Process ancestors level by level above the leaf.
		for lv := 2; lv <= ft.Height; lv++ {
			for _, s := range byLevel[lv] {
				if !ft.Ancestors(s, dst) {
					continue
				}
				l := ft.DownLink(s, ft.DownDigit(s, dst))
				if l == nil || l.Down {
					continue
				}
				if desc[g.SwitchIndex(l.Other(s))] {
					si := g.SwitchIndex(s)
					desc[si] = true
					descLink[si] = l
				}
			}
		}

		// Phase 2: cost from every switch, top level first (up moves only
		// increase level, so dependencies point upward).
		for lv := ft.Height; lv >= 1; lv-- {
			for _, s := range byLevel[lv] {
				si := g.SwitchIndex(s)
				if desc[si] {
					cost[si] = float64(lv - 1) // hops down to dst leaf
					if s != dstSw {
						next[si] = descLink[si].Channel(s)
					}
					continue
				}
				if lv == ft.Height {
					continue // top switch without descent: unreachable
				}
				best := math.Inf(1)
				bestY := -1
				prefer := (dstIdx / stride[lv]) % ft.Cfg.W[lv]
				for dy := 0; dy < ft.Cfg.W[lv]; dy++ {
					y := (prefer + dy) % ft.Cfg.W[lv] // D-Mod-K digit first
					l := ft.UpLink(s, y)
					if l == nil || l.Down {
						continue
					}
					c := cost[g.SwitchIndex(l.Other(s))]
					if c < 0 {
						continue
					}
					if c+1 < best {
						best = c + 1
						bestY = y
					}
				}
				if bestY < 0 {
					continue // unreachable from here
				}
				cost[si] = best
				next[si] = ft.UpLink(s, bestY).Channel(s)
			}
		}

		for off := 0; off < span; off++ {
			lid := t.BaseLID[di] + LID(off)
			for si, c := range next {
				if c != NoChannel {
					t.SetNextHop(g.Switches()[si], lid, c)
				}
			}
			// Delivery hop.
			for _, l := range g.Nodes[dst].Ports {
				if l != nil && !l.Down && l.Other(dst) == dstSw {
					t.SetNextHop(dstSw, lid, l.Channel(dstSw))
				}
			}
		}
	}
	t.Freeze()
	return t, nil
}
