package route

import (
	"testing"

	"github.com/hpcsim/t2hx/internal/topo"
)

func smallHX(t *testing.T) *topo.HyperX {
	t.Helper()
	return topo.NewHyperX(topo.HyperXConfig{S: []int{4, 4}, T: 2, Bandwidth: 1e9, Latency: 1e-7})
}

func validateOK(t *testing.T, tb *Tables, wantMaxHops int) Report {
	t.Helper()
	rep, err := Validate(tb)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unreachable != 0 {
		t.Fatalf("%s: %d unreachable paths", tb.Engine, rep.Unreachable)
	}
	if !rep.DeadlockFree {
		t.Fatalf("%s: routing not deadlock-free on %d VLs", tb.Engine, rep.VLs)
	}
	if wantMaxHops > 0 && rep.MaxSwitchHops > wantMaxHops {
		t.Fatalf("%s: max switch hops %d > %d", tb.Engine, rep.MaxSwitchHops, wantMaxHops)
	}
	return rep
}

func TestSSSPOnHyperXIsMinimal(t *testing.T) {
	hx := smallHX(t)
	tb, err := SSSP(hx.Graph, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Validate(tb)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unreachable != 0 {
		t.Fatalf("%d unreachable", rep.Unreachable)
	}
	// 2-D HyperX diameter is 2 switch hops.
	if rep.MaxSwitchHops != 2 {
		t.Errorf("max hops = %d, want 2 (minimal routing)", rep.MaxSwitchHops)
	}
}

func TestDFSSSPDeadlockFreeOnHyperX(t *testing.T) {
	hx := smallHX(t)
	tb, err := DFSSSP(hx.Graph, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	rep := validateOK(t, tb, 2)
	if rep.VLs < 1 || rep.VLs > 8 {
		t.Errorf("VLs = %d, want within [1,8]", rep.VLs)
	}
}

func TestDFSSSPOnPaperHyperXUsesFewVLs(t *testing.T) {
	if testing.Short() {
		t.Skip("large fabric")
	}
	hx := topo.NewPaperHyperX(false, 0)
	tb, err := DFSSSP(hx.Graph, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Sec. 4.4.3: DFSSSP needs only 3 VLs on the paper's HyperX.
	if tb.NumVL > 3 {
		t.Errorf("DFSSSP used %d VLs on 12x8 HyperX, paper reports 3", tb.NumVL)
	}
	rep := validateOK(t, tb, 2)
	if rep.Paths != 672*671 {
		t.Errorf("paths = %d, want %d", rep.Paths, 672*671)
	}
}

func TestFTreeOnKaryNTree(t *testing.T) {
	ft := topo.NewKaryNTree(4, 2, 1e9, 1e-7)
	tb, err := FTree(ft, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep := validateOK(t, tb, 2)
	// Same-leaf pairs: 0 switch hops through 1 switch; cross-leaf: 2.
	if rep.MaxSwitchHops != 2 {
		t.Errorf("max hops = %d, want 2", rep.MaxSwitchHops)
	}
}

func TestFTreeShiftPermutationContentionFree(t *testing.T) {
	// D-Mod-K's defining property (Zahavi): shift permutations map onto
	// disjoint up/down paths, so no channel carries more than one flow.
	ft := topo.NewKaryNTree(4, 2, 1e9, 1e-7)
	tb, err := FTree(ft, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := ft.Graph
	terms := g.Terminals()
	n := len(terms)
	isSwitch := SwitchChannelPred(g)
	for shift := 1; shift < n; shift++ {
		load := make(map[topo.ChannelID]int)
		for i, src := range terms {
			dst := terms[(i+shift)%n]
			if g.SwitchOf(src) == g.SwitchOf(dst) {
				continue
			}
			p, err := tb.Path(src, tb.BaseLID[tb.TermIndex(dst)])
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range p {
				if isSwitch(c) {
					load[c]++
				}
			}
		}
		for c, l := range load {
			if l > 1 {
				t.Fatalf("shift %d: channel %d carries %d flows, want 1", shift, c, l)
			}
		}
	}
}

func TestFTreeOnDegradedTreeStillRoutes(t *testing.T) {
	ft := topo.NewKaryNTree(4, 3, 1e9, 1e-7)
	topo.DegradeSwitchLinks(ft.Graph, 20, 7)
	tb, err := FTree(ft, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep := validateOK(t, tb, 0)
	if rep.Paths == 0 {
		t.Fatal("no paths routed")
	}
}

func TestFTreeValleyFree(t *testing.T) {
	ft := topo.NewKaryNTree(3, 3, 1e9, 1e-7)
	topo.DegradeSwitchLinks(ft.Graph, 10, 3)
	tb, err := FTree(ft, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := ft.Graph
	for _, src := range g.Terminals() {
		for di, dst := range g.Terminals() {
			if src == dst {
				continue
			}
			p, err := tb.Path(src, tb.BaseLID[di])
			if err != nil {
				t.Fatal(err)
			}
			// Levels along the switch sequence must rise then fall.
			descended := false
			for i := 1; i+1 < len(p); i++ {
				from := g.ChannelFrom(p[i])
				to := g.ChannelTo(p[i])
				if g.Nodes[to].Kind != topo.Switch {
					continue
				}
				up := ft.Level(topo.NodeID(to)) > ft.Level(topo.NodeID(from))
				if up && descended {
					t.Fatalf("valley in path %v", p)
				}
				if !up {
					descended = true
				}
			}
		}
	}
}

func TestUpDownDeadlockFreeOnHyperX(t *testing.T) {
	hx := smallHX(t)
	tb, err := UpDown(hx.Graph, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep := validateOK(t, tb, 0)
	if rep.VLs != 1 {
		t.Errorf("UpDown should be single-lane, got %d", rep.VLs)
	}
}

func TestUpDownOnDegradedHyperX(t *testing.T) {
	hx := topo.NewHyperX(topo.HyperXConfig{S: []int{4, 4}, T: 1, Bandwidth: 1e9, Latency: 1e-7})
	topo.DegradeSwitchLinks(hx.Graph, 8, 5)
	tb, err := UpDown(hx.Graph, 0)
	if err != nil {
		t.Fatal(err)
	}
	validateOK(t, tb, 0)
}

func TestSSSPBalancesBetterThanNaive(t *testing.T) {
	// On the 4x4 HyperX with T=2, SSSP's weight updates must keep the
	// worst channel load near the average, not pile everything on one
	// cable.
	hx := smallHX(t)
	tb, err := SSSP(hx.Graph, 0)
	if err != nil {
		t.Fatal(err)
	}
	loads := ChannelLoads(tb)
	maxLoad := 0
	total := 0
	nonzero := 0
	for _, l := range loads {
		if l > maxLoad {
			maxLoad = l
		}
		if l > 0 {
			total += l
			nonzero++
		}
	}
	avg := float64(total) / float64(nonzero)
	if float64(maxLoad) > 4*avg {
		t.Errorf("SSSP imbalance: max %d vs avg %.1f", maxLoad, avg)
	}
}

func TestLMCMultipathsExist(t *testing.T) {
	// With LMC=2 the four LIDs of a destination should not all share the
	// identical path for at least some pairs (the multi-pathing PARX
	// exploits; plain SSSP gets diversity from weight evolution).
	hx := smallHX(t)
	tb, err := SSSP(hx.Graph, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := hx.Graph
	terms := g.Terminals()
	diverse := 0
	pairs := 0
	for _, src := range terms {
		for di, dst := range terms {
			if src == dst || g.SwitchOf(src) == g.SwitchOf(dst) {
				continue
			}
			pairs++
			base, err := tb.Path(src, tb.BaseLID[di])
			if err != nil {
				t.Fatal(err)
			}
			for off := uint8(1); off < 4; off++ {
				p, err := tb.Path(src, tb.BaseLID[di]+LID(off))
				if err != nil {
					t.Fatal(err)
				}
				if !samePath(base, p) {
					diverse++
					break
				}
			}
		}
	}
	if diverse == 0 {
		t.Error("LMC=2 produced zero path diversity across all pairs")
	}
	_ = pairs
}

func samePath(a, b []topo.ChannelID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTablesLIDBookkeeping(t *testing.T) {
	hx := smallHX(t)
	tb, err := SSSP(hx.Graph, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, term := range hx.Terminals() {
		base := tb.BaseLID[i]
		for off := uint8(0); off < 4; off++ {
			if got := tb.OwnerOf(base + LID(off)); got != i {
				t.Fatalf("OwnerOf(%d) = %d, want %d", base+LID(off), got, i)
			}
			if tb.LIDFor(term, off) != base+LID(off) {
				t.Fatal("LIDFor mismatch")
			}
		}
	}
	if tb.OwnerOf(0) != -1 {
		t.Error("LID 0 must be unassigned")
	}
}

func TestPathSameSwitchPair(t *testing.T) {
	hx := smallHX(t)
	tb, err := SSSP(hx.Graph, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := hx.Graph
	terms := g.Terminals()
	// Two terminals on the same switch: path = injection + delivery.
	var a, b topo.NodeID = -1, -1
	for _, x := range terms {
		for _, y := range terms {
			if x != y && g.SwitchOf(x) == g.SwitchOf(y) {
				a, b = x, y
				break
			}
		}
	}
	if a < 0 {
		t.Skip("no same-switch pair")
	}
	p, err := tb.Path(a, tb.BaseLID[tb.TermIndex(b)])
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 || SwitchHops(p) != 0 {
		t.Errorf("same-switch path = %v, want injection+delivery only", p)
	}
}

// The static root cause of Fig. 1 (middle): on the paper's HyperX two
// switches in one rack are joined by a single QDR cable, and minimal
// routing sends all 7x7 node-pair flows across it.
func TestHyperXSingleCableBottleneckStaticLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("large fabric")
	}
	hx := topo.NewPaperHyperX(false, 0)
	tb, err := DFSSSP(hx.Graph, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	g := hx.Graph
	swA := hx.SwitchAt(0, 0)
	swB := hx.SwitchAt(0, 1) // adjacent in dim 1: single cable
	var cable *topo.Link
	for _, l := range g.UpLinks(swA) {
		if l.Other(swA) == swB {
			cable = l
			break
		}
	}
	if cable == nil {
		t.Fatal("no direct cable between adjacent switches")
	}
	load := 0
	isSwitch := SwitchChannelPred(g)
	for _, src := range g.TerminalsOf(swA) {
		for _, dst := range g.TerminalsOf(swB) {
			p, err := tb.Path(src, tb.BaseLID[tb.TermIndex(dst)])
			if err != nil {
				t.Fatal(err)
			}
			if SwitchHops(p) != 1 {
				t.Fatalf("adjacent-switch path has %d hops, want 1 (minimal)", SwitchHops(p))
			}
			for _, c := range p {
				if isSwitch(c) && c == cable.Channel(swA) {
					load++
				}
			}
		}
	}
	// All 49 pairs must share the one cable: that is the bottleneck PARX
	// attacks ("up to seven traffic streams may share a single cable").
	if load != 49 {
		t.Errorf("cable carries %d of 49 adjacent-pair flows", load)
	}
}
