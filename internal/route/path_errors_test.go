package route

import (
	"strings"
	"testing"

	"github.com/hpcsim/t2hx/internal/topo"
)

// pathFixture builds SSSP tables on the small HyperX plus a (src, dst-LID)
// pair whose path crosses at least one inter-switch hop, so every LFT-walk
// failure mode can be staged on it.
func pathFixture(t *testing.T, lmc uint8) (*Tables, topo.NodeID, LID) {
	t.Helper()
	hx := smallHX(t)
	frozen, err := SSSP(hx.Graph, lmc)
	if err != nil {
		t.Fatal(err)
	}
	// Engines freeze their result; these tests corrupt LFT entries on
	// purpose, so they work on a mutable deep copy.
	tb := frozen.MutableClone()
	terms := hx.Graph.Terminals()
	src := terms[0]
	for _, dst := range terms[1:] {
		if hx.Graph.SwitchOf(dst) == hx.Graph.SwitchOf(src) {
			continue
		}
		return tb, src, tb.LIDFor(dst, 0)
	}
	t.Fatal("no cross-switch terminal pair")
	return nil, 0, 0
}

func wantPathErr(t *testing.T, tb *Tables, src topo.NodeID, lid LID, substr string) {
	t.Helper()
	path, err := tb.Path(src, lid)
	if err == nil {
		t.Fatalf("Path(%d, %d) = %v, want error containing %q", src, lid, path, substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("Path(%d, %d) error %q, want substring %q", src, lid, err, substr)
	}
}

func TestPathUnassignedLID(t *testing.T) {
	tb, src, _ := pathFixture(t, 0)
	// LID 0 is reserved in IB and never assigned.
	wantPathErr(t, tb, src, 0, "unassigned")
	// Anything past the highest assigned LID is equally unroutable.
	wantPathErr(t, tb, src, tb.MaxLID()+1, "unassigned")
}

func TestPathLMCOffsetPastMaxLID(t *testing.T) {
	// With LMC=2 every terminal owns 4 LIDs; an offset computed past the
	// last terminal's span walks off the LID space entirely and must fail
	// as unassigned rather than panic or alias another terminal.
	tb, src, _ := pathFixture(t, 2)
	span := LID(1) << tb.LMC
	wantPathErr(t, tb, src, tb.MaxLID()+span, "unassigned")
}

func TestPathDetachedSource(t *testing.T) {
	tb, src, lid := pathFixture(t, 0)
	for _, l := range tb.G.Nodes[src].Ports {
		if l != nil {
			l.Down = true
			defer func(l *topo.Link) { l.Down = false }(l)
		}
	}
	wantPathErr(t, tb, src, lid, "detached")
}

func TestPathTruncatedNextHopChain(t *testing.T) {
	tb, src, lid := pathFixture(t, 0)
	path, err := tb.Path(src, lid)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) < 3 {
		t.Fatalf("fixture path too short to truncate: %v", path)
	}
	// Clear the second switch's entry: the walk injects, takes one
	// inter-switch hop, then finds the chain cut mid-route.
	sw2 := tb.G.ChannelTo(path[1])
	tb.SetNextHop(sw2, lid, NoChannel)
	wantPathErr(t, tb, src, lid, "has no entry for LID")
}

func TestPathForwardingLoop(t *testing.T) {
	tb, src, lid := pathFixture(t, 0)
	path, err := tb.Path(src, lid)
	if err != nil {
		t.Fatal(err)
	}
	// Point the second switch straight back at the first: a two-switch
	// ping-pong the MaxHops bound must catch.
	l := tb.G.Link(path[1])
	sw1 := tb.G.SwitchOf(src)
	sw2 := tb.G.ChannelTo(path[1])
	tb.SetNextHop(sw2, lid, l.Channel(sw2))
	tb.SetNextHop(sw1, lid, l.Channel(sw1))
	wantPathErr(t, tb, src, lid, "forwarding loop")
}

func TestPathEntryUsesDownLink(t *testing.T) {
	tb, src, lid := pathFixture(t, 0)
	path, err := tb.Path(src, lid)
	if err != nil {
		t.Fatal(err)
	}
	l := tb.G.Link(path[1])
	l.Down = true
	defer func() { l.Down = false }()
	wantPathErr(t, tb, src, lid, "uses down link")
}

func TestPathDeliveredToWrongTerminal(t *testing.T) {
	tb, src, lid := pathFixture(t, 0)
	// Rewire the source's switch to hand the message to a co-located
	// terminal that does not own the LID.
	sw := tb.G.SwitchOf(src)
	var wrong topo.ChannelID = NoChannel
	owner := tb.TermByIndex(tb.OwnerOf(lid))
	for _, l := range tb.G.Nodes[sw].Ports {
		if l == nil || l.Down {
			continue
		}
		other := l.Other(sw)
		if tb.G.Nodes[other].Kind == topo.Terminal && other != src && other != owner {
			wrong = l.Channel(sw)
			break
		}
	}
	if wrong == NoChannel {
		t.Fatal("no co-located wrong terminal on the source switch")
	}
	tb.SetNextHop(sw, lid, wrong)
	wantPathErr(t, tb, src, lid, "wrong terminal")
}

func TestPathLoopbackIsEmpty(t *testing.T) {
	tb, src, _ := pathFixture(t, 0)
	path, err := tb.Path(src, tb.LIDFor(src, 0))
	if err != nil {
		t.Fatal(err)
	}
	if path != nil {
		t.Fatalf("loopback path = %v, want nil", path)
	}
}
