package route

import (
	"github.com/hpcsim/t2hx/internal/topo"
)

// LASH implements LAyered SHortest-path routing (Skeie, Lysne, Theiss,
// IPDPS'02), the third topology-agnostic deadlock-free option the paper
// cites next to DFSSSP and Nue: plain minimal paths (no load balancing),
// made deadlock-free by partitioning the (src,dst) pairs into virtual
// lanes with acyclic channel dependency graphs. Compared to DFSSSP it
// skips the edge-weight balancing, so it tends to pile paths onto few
// channels — useful as a baseline for the balancing ablation.
func LASH(g *topo.Graph, lmc uint8, maxVL int) (*Tables, error) {
	t := newTables(g, "lash", lmc, nil)
	// Static unit weights: pure min-hop with deterministic tie-breaks.
	cw := NewChannelWeights(g)
	span := 1 << t.LMC
	terms := g.Terminals()
	for di, dst := range terms {
		dstSw := g.SwitchOf(dst)
		if dstSw < 0 {
			continue
		}
		sp := ShortestPathsTo(g, dstSw, cw, nil)
		for off := 0; off < span; off++ {
			installLFT(t, t.BaseLID[di]+LID(off), dstSw, dst, sp)
		}
		sp.Release()
	}
	if err := AssignVLs(t, maxVL); err != nil {
		return nil, err
	}
	t.Freeze()
	return t, nil
}
