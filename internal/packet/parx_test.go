package packet

import (
	"testing"

	"github.com/hpcsim/t2hx/internal/core"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// The paper's footnote-8 claim, verified dynamically: PARX's full path set
// (all four LIDs per destination, including the forced detours) is
// deadlock-free on the assigned virtual lanes even under an adversarial
// all-pairs, all-LIDs burst through shallow buffers.
func TestPARXPacketLevelDeadlockFreedom(t *testing.T) {
	hx := topo.NewHyperX(topo.HyperXConfig{S: []int{4, 4}, T: 1, Bandwidth: 1e8, Latency: 1e-7})
	tb, err := core.PARX(hx, core.Config{MaxVL: 8})
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	n := New(e, hx.Graph, Config{MTU: 2048, BufferPackets: 2, VLs: 8})
	terms := hx.Terminals()
	for i, src := range terms {
		for j, dst := range terms {
			if i == j {
				continue
			}
			for off := uint8(0); off < 4; off++ {
				lid := tb.LIDFor(dst, off)
				if err := SendRouted(n, tb, src, lid, 16*2048, func(sim.Time) {}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	e.Run()
	if n.InFlight() != 0 {
		t.Fatalf("PARX burst deadlocked: %d messages stuck, %d credit-blocked",
			n.InFlight(), n.Blocked())
	}
}
