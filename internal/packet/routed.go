package packet

import (
	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// SendRouted resolves the routed path and service level for (src, dst LID)
// from the tables and injects the message — the packet-level analogue of
// fabric.Send. The SL-to-VL mapping is the identity, as configured by
// OpenSM for DFSSSP/PARX on the paper's system.
func SendRouted(n *Net, t *route.Tables, src topo.NodeID, lid route.LID, size int64, onDone func(at sim.Time)) error {
	p, err := t.Path(src, lid)
	if err != nil {
		return err
	}
	n.Send(p, t.SL(src, lid), size, onDone)
	return nil
}
