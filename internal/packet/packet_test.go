package packet

import (
	"math"
	"testing"

	"github.com/hpcsim/t2hx/internal/flow"
	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// line builds t1 - s1 - s2 - t2 and the forward path.
func line(bw float64, lat sim.Duration) (*topo.Graph, []topo.ChannelID) {
	g := topo.New("line")
	s1 := g.AddNode(topo.Switch, "s1").ID
	s2 := g.AddNode(topo.Switch, "s2").ID
	t1 := g.AddNode(topo.Terminal, "t1").ID
	t2 := g.AddNode(topo.Terminal, "t2").ID
	l1 := g.Connect(s1, t1, bw, lat)
	mid := g.Connect(s1, s2, bw, lat)
	l2 := g.Connect(s2, t2, bw, lat)
	return g, []topo.ChannelID{l1.Channel(t1), mid.Channel(s1), l2.Channel(s2)}
}

func TestSinglePacketTiming(t *testing.T) {
	g, path := line(4096_000, 1e-6) // 4096 B/ms, 1 us/hop
	e := sim.NewEngine()
	n := New(e, g, Config{MTU: 4096, BufferPackets: 4, VLs: 2})
	var done sim.Time = -1
	n.Send(path, 0, 4096, func(at sim.Time) { done = at })
	e.Run()
	// Store-and-forward over 3 channels: 3 x (1 ms ser + 1 us lat).
	want := 3 * (1e-3 + 1e-6)
	if math.Abs(float64(done)-want)/want > 1e-9 {
		t.Errorf("delivery at %v, want %v", done, want)
	}
	if n.InFlight() != 0 || n.Delivered != 1 {
		t.Errorf("inflight=%d delivered=%d", n.InFlight(), n.Delivered)
	}
}

func TestPipeliningOfSegments(t *testing.T) {
	// 4 packets over 3 hops pipeline: total ~ (hops + packets - 1) x slot.
	g, path := line(4096_000, 0)
	e := sim.NewEngine()
	n := New(e, g, Config{MTU: 4096, BufferPackets: 8, VLs: 2})
	var done sim.Time = -1
	n.Send(path, 0, 4*4096, func(at sim.Time) { done = at })
	e.Run()
	slot := 1e-3
	want := 6 * slot // 3 + 4 - 1
	if math.Abs(float64(done)-want)/want > 0.01 {
		t.Errorf("pipelined delivery at %v, want ~%v", done, want)
	}
}

func TestChannelSerialization(t *testing.T) {
	// Two messages sharing the injection channel serialize.
	g, path := line(4096_000, 0)
	e := sim.NewEngine()
	n := New(e, g, DefaultConfig())
	var d1, d2 sim.Time
	n.Send(path, 0, 4096, func(at sim.Time) { d1 = at })
	n.Send(path, 0, 4096, func(at sim.Time) { d2 = at })
	e.Run()
	if d2 <= d1 {
		t.Errorf("second message not serialized after first: %v vs %v", d2, d1)
	}
}

func TestZeroSizeImmediate(t *testing.T) {
	g, path := line(1e6, 0)
	e := sim.NewEngine()
	n := New(e, g, DefaultConfig())
	var done sim.Time = -1
	n.Send(path, 0, 0, func(at sim.Time) { done = at })
	e.Run()
	if done != 0 {
		t.Errorf("zero-size delivered at %v", done)
	}
}

func TestVLBeyondLimitPanics(t *testing.T) {
	g, path := line(1e6, 0)
	n := New(sim.NewEngine(), g, Config{MTU: 4096, BufferPackets: 1, VLs: 2})
	defer func() {
		if recover() == nil {
			t.Error("expected panic for VL out of range")
		}
	}()
	n.Send(path, 5, 1, func(sim.Time) {})
}

// ring3 builds a 3-switch unidirectional-traffic scenario whose clockwise
// 2-hop paths have a cyclic channel dependency graph.
func ring3() (*topo.Graph, [3][]topo.ChannelID) {
	g := topo.New("ring")
	var sw [3]topo.NodeID
	for i := range sw {
		sw[i] = g.AddNode(topo.Switch, "s").ID
	}
	var term [3]topo.NodeID
	for i := range term {
		term[i] = g.AddNode(topo.Terminal, "t").ID
		g.Connect(sw[i], term[i], 1e6, 1e-7)
	}
	var ring [3]*topo.Link
	for i := range sw {
		ring[i] = g.Connect(sw[i], sw[(i+1)%3], 1e6, 1e-7)
	}
	inj := func(i int) topo.ChannelID { return g.Nodes[term[i]].Ports[0].Channel(term[i]) }
	del := func(i int) topo.ChannelID { return g.Nodes[term[i]].Ports[0].Channel(sw[i]) }
	// Path i: terminal i -> sw i -> sw i+1 -> sw i+2 -> terminal i+2
	// (two ring channels each: i and i+1).
	var paths [3][]topo.ChannelID
	for i := range paths {
		paths[i] = []topo.ChannelID{
			inj(i),
			ring[i].Channel(sw[i]),
			ring[(i+1)%3].Channel(sw[(i+1)%3]),
			del((i + 2) % 3),
		}
	}
	return g, paths
}

func TestCreditLoopDeadlocks(t *testing.T) {
	// All three cyclic paths on ONE virtual lane with heavy load: the
	// classic credit deadlock must occur — the engine drains with
	// messages stuck.
	g, paths := ring3()
	e := sim.NewEngine()
	n := New(e, g, Config{MTU: 4096, BufferPackets: 2, VLs: 8})
	size := int64(64 * 4096) // far more packets than total buffering
	for i := range paths {
		n.Send(paths[i], 0, size, func(sim.Time) {})
	}
	e.Run()
	if n.InFlight() == 0 {
		t.Fatal("cyclic single-VL traffic completed; deadlock model broken")
	}
	if n.Blocked() == 0 {
		t.Error("deadlock without credit-blocked packets?")
	}
}

func TestVLLayeringBreaksTheDeadlock(t *testing.T) {
	// The same traffic with the DFSSSP remedy: assign the three paths to
	// virtual lanes with acyclic per-lane CDGs — everything must deliver.
	g, paths := ring3()
	vls := make([]int, 3)
	all := [][]topo.ChannelID{paths[0], paths[1], paths[2]}
	lanes, failed := route.AssignLayers(g, all, 8, func(i, vl int) { vls[i] = vl })
	if failed >= 0 {
		t.Fatal("layer assignment failed")
	}
	if lanes < 2 {
		t.Fatalf("expected >= 2 lanes for the cyclic set, got %d", lanes)
	}
	e := sim.NewEngine()
	n := New(e, g, Config{MTU: 4096, BufferPackets: 2, VLs: 8})
	size := int64(64 * 4096)
	done := 0
	for i := range paths {
		n.Send(paths[i], uint8(vls[i]), size, func(sim.Time) { done++ })
	}
	e.Run()
	if n.InFlight() != 0 || done != 3 {
		t.Fatalf("VL-layered traffic did not complete: inflight=%d done=%d", n.InFlight(), done)
	}
}

func TestPacketMatchesFlowBandwidth(t *testing.T) {
	// Cross-validation: a single long transfer should see the same
	// effective bandwidth in both simulators (within the packetization
	// overhead).
	size := int64(1 << 20)
	bw := 1e8

	gp, path := line(bw, 0)
	ep := sim.NewEngine()
	np := New(ep, gp, Config{MTU: 4096, BufferPackets: 16, VLs: 2})
	var dPkt sim.Time
	np.Send(path, 0, size, func(at sim.Time) { dPkt = at })
	ep.Run()

	gf, pathF := line(bw, 0)
	_ = gf
	ef := sim.NewEngine()
	nf := flow.NewNetwork(ef, gf)
	var dFlow sim.Time
	nf.Start(pathF, float64(size), func(at sim.Time) { dFlow = at })
	ef.Run()

	// Pipelined packets approach the flow model's size/bw; allow the
	// store-and-forward pipeline fill as slack.
	if float64(dPkt) < float64(dFlow) {
		t.Errorf("packet model faster than fluid limit: %v < %v", dPkt, dFlow)
	}
	if float64(dPkt) > 1.1*float64(dFlow) {
		t.Errorf("packet model %v deviates >10%% from flow model %v", dPkt, dFlow)
	}
}

func TestDFSSSPTablesDeliverAdversarialBurst(t *testing.T) {
	// End-to-end: DFSSSP-routed HyperX under an all-pairs burst on the
	// packet simulator, using the tables' SL assignment. Must drain.
	hx := topo.NewHyperX(topo.HyperXConfig{S: []int{3, 3}, T: 2, Bandwidth: 1e8, Latency: 1e-7})
	tb, err := route.DFSSSP(hx.Graph, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	n := New(e, hx.Graph, Config{MTU: 2048, BufferPackets: 2, VLs: 8})
	terms := hx.Terminals()
	sent := 0
	for i, src := range terms {
		for j := range terms {
			if i == j {
				continue
			}
			lid := tb.BaseLID[j]
			if err := SendRouted(n, tb, src, lid, 32*2048, func(sim.Time) {}); err != nil {
				t.Fatal(err)
			}
			sent++
		}
	}
	e.Run()
	if n.InFlight() != 0 {
		t.Fatalf("DFSSSP burst deadlocked: %d of %d messages stuck, %d credit-blocked",
			n.InFlight(), sent, n.Blocked())
	}
}
