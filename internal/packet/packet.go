// Package packet is the high-fidelity counterpart to internal/flow: a
// packet-level, credit-based, virtual-lane-aware network simulator.
// Messages are segmented into MTU-sized packets that traverse their routed
// path store-and-forward; every directed channel serializes one packet at
// a time, and receiver buffers are managed with per-VL credits exactly
// like InfiniBand's link-level flow control.
//
// Its raison d'être in this reproduction: with credits, routing deadlocks
// are *observable* — a cyclic channel dependency fills buffers until no
// packet can move, which is why the paper's early SSSP experiments on the
// HyperX hung and why DFSSSP/PARX spread their paths over virtual lanes
// (Sec. 3.2, footnote 8). The flow model in internal/flow cannot hang by
// construction; this one hangs exactly when the Dally/Seitz condition is
// violated and the offered load fills the buffers.
package packet

import (
	"fmt"

	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// Config tunes the packet network.
type Config struct {
	// MTU is the maximum packet payload in bytes (IB: 2048 or 4096).
	MTU int64
	// BufferPackets is the per-channel, per-VL receiver buffer depth in
	// packets (the credit count).
	BufferPackets int
	// VLs is the number of virtual lanes the hardware provides (QDR: 8).
	VLs int
}

// DefaultConfig mirrors QDR-era hardware: 4 KiB MTU, shallow buffers,
// 8 VLs.
func DefaultConfig() Config {
	return Config{MTU: 4096, BufferPackets: 4, VLs: 8}
}

// message is one in-flight transfer.
type message struct {
	path      []topo.ChannelID
	vl        uint8
	packets   int
	delivered int
	onDone    func(at sim.Time)
}

// packet is one MTU-sized segment. heldIn is the channel whose receiver
// buffer the packet currently occupies (-1 at the source HCA); the slot is
// released — credit returned — when the packet has fully serialized onto
// its next channel (virtual cut-through of the buffer, store-and-forward
// of the data).
type packet struct {
	msg    *message
	size   int64
	hop    int // index into msg.path of the channel it transmits on next
	heldIn topo.ChannelID
}

// vlKey indexes per-(channel, VL) credit state.
type vlKey struct {
	c  topo.ChannelID
	vl uint8
}

// Net is the packet-level network.
type Net struct {
	eng *sim.Engine
	g   *topo.Graph
	cfg Config

	busy        map[topo.ChannelID]bool
	busyWaiters map[topo.ChannelID][]*packet
	credits     map[vlKey]int
	credWaiters map[vlKey][]*packet

	inFlight int64
	// Delivered counts completed messages; Hops counts packet
	// transmissions (diagnostics).
	Delivered uint64
	Hops      uint64
}

// New builds a packet network over g.
func New(eng *sim.Engine, g *topo.Graph, cfg Config) *Net {
	if cfg.MTU <= 0 {
		cfg.MTU = 4096
	}
	if cfg.BufferPackets <= 0 {
		cfg.BufferPackets = 4
	}
	if cfg.VLs <= 0 {
		cfg.VLs = 8
	}
	return &Net{
		eng: eng, g: g, cfg: cfg,
		busy:        make(map[topo.ChannelID]bool),
		busyWaiters: make(map[topo.ChannelID][]*packet),
		credits:     make(map[vlKey]int),
		credWaiters: make(map[vlKey][]*packet),
	}
}

// InFlight reports undelivered messages. Non-zero after the engine drains
// means the fabric deadlocked (or traffic was never deliverable).
func (n *Net) InFlight() int64 { return n.inFlight }

// Blocked reports packets parked on credit waits — the symptom of a credit
// loop once the engine has drained.
func (n *Net) Blocked() int {
	total := 0
	for _, q := range n.credWaiters {
		total += len(q)
	}
	return total
}

// Send transfers size bytes along path on virtual lane vl. The path is a
// routed channel sequence (injection .. delivery); onDone fires when the
// last packet reaches the destination terminal.
func (n *Net) Send(path []topo.ChannelID, vl uint8, size int64, onDone func(at sim.Time)) {
	if int(vl) >= n.cfg.VLs {
		panic(fmt.Sprintf("packet: VL %d beyond hardware limit %d", vl, n.cfg.VLs))
	}
	if size <= 0 || len(path) == 0 {
		n.eng.After(0, func(e *sim.Engine) { onDone(e.Now()) })
		return
	}
	m := &message{path: path, vl: vl, onDone: onDone}
	n.inFlight++
	m.packets = int((size + n.cfg.MTU - 1) / n.cfg.MTU)
	rem := size
	// Inject packets in order; the injection channel's serialization
	// naturally paces them (one send engine per HCA port).
	for i := 0; i < m.packets; i++ {
		sz := n.cfg.MTU
		if rem < sz {
			sz = rem
		}
		rem -= sz
		n.tryStart(&packet{msg: m, size: sz, hop: 0, heldIn: -1})
	}
}

// creditKey returns the credit bucket for entering channel c, or ok=false
// when the receiving end is a terminal (consumed on arrival, no credit).
func (n *Net) creditKey(c topo.ChannelID, vl uint8) (vlKey, bool) {
	to := n.g.ChannelTo(c)
	if n.g.Nodes[to].Kind == topo.Terminal {
		return vlKey{}, false
	}
	return vlKey{c, vl}, true
}

func (n *Net) creditsOf(k vlKey) int {
	if v, ok := n.credits[k]; ok {
		return v
	}
	n.credits[k] = n.cfg.BufferPackets
	return n.cfg.BufferPackets
}

// tryStart attempts to transmit p on its next channel, acquiring the
// channel and the downstream buffer credit; otherwise it queues on the
// blocking resource (FIFO).
func (n *Net) tryStart(p *packet) {
	c := p.msg.path[p.hop]
	if n.busy[c] {
		n.busyWaiters[c] = append(n.busyWaiters[c], p)
		return
	}
	if k, need := n.creditKey(c, p.msg.vl); need {
		if n.creditsOf(k) == 0 {
			n.credWaiters[k] = append(n.credWaiters[k], p)
			return
		}
		n.credits[k]--
	}
	n.transmit(p, c)
}

// transmit serializes p onto channel c, releases the upstream buffer slot
// when the tail flit leaves, and schedules the arrival.
func (n *Net) transmit(p *packet, c topo.ChannelID) {
	n.busy[c] = true
	n.Hops++
	l := n.g.Link(c)
	ser := sim.Duration(float64(p.size) / l.Bandwidth)
	held := p.heldIn
	vl := p.msg.vl
	n.eng.After(ser, func(*sim.Engine) {
		n.busy[c] = false
		if held >= 0 {
			n.releaseCredit(held, vl)
		}
		n.wakeBusy(c)
		n.eng.After(l.Latency, func(*sim.Engine) { n.arrive(p, c) })
	})
}

// wakeBusy restarts waiters of a freed channel until one acquires it (a
// waiter lacking downstream credits re-parks on the credit queue and the
// next busy-waiter gets its chance).
func (n *Net) wakeBusy(c topo.ChannelID) {
	for !n.busy[c] && len(n.busyWaiters[c]) > 0 {
		q := n.busyWaiters[c]
		p := q[0]
		n.busyWaiters[c] = q[1:]
		n.tryStart(p)
	}
}

// releaseCredit returns one buffer slot of (c, vl) and restarts a waiter.
func (n *Net) releaseCredit(c topo.ChannelID, vl uint8) {
	k := vlKey{c, vl}
	n.credits[k] = n.creditsOf(k) + 1
	q := n.credWaiters[k]
	if len(q) == 0 {
		return
	}
	p := q[0]
	n.credWaiters[k] = q[1:]
	n.tryStart(p)
}

// arrive lands p at the far end of channel c.
func (n *Net) arrive(p *packet, c topo.ChannelID) {
	to := n.g.ChannelTo(c)
	if n.g.Nodes[to].Kind == topo.Terminal {
		m := p.msg
		m.delivered++
		if m.delivered == m.packets {
			n.inFlight--
			n.Delivered++
			m.onDone(n.eng.Now())
		}
		return
	}
	// The packet now occupies its buffer slot at the switch; forward.
	p.heldIn = c
	p.hop++
	if p.hop >= len(p.msg.path) {
		panic("packet: path ended at a switch")
	}
	n.tryStart(p)
}
