package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Profile persistence: the paper's framework stores one communication
// profile per (benchmark, input, rank count) and re-uses it across every
// topology/routing/placement configuration (footnote 6); PARX ingests the
// stored file before a job starts. The on-disk format is a small JSON
// document so profiles are diffable and portable.

// profileFile is the serialized form.
type profileFile struct {
	// Version guards the format.
	Version int `json:"version"`
	// Ranks is the communicator size.
	Ranks int `json:"ranks"`
	// Bytes is the dense src-major matrix.
	Bytes [][]float64 `json:"bytes"`
}

const profileVersion = 1

// Write serializes the profile as JSON.
func (p *Profile) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(profileFile{Version: profileVersion, Ranks: len(p.Bytes), Bytes: p.Bytes})
}

// Save writes the profile to a file.
func (p *Profile) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return p.Write(f)
}

// ReadProfile parses a serialized profile.
func ReadProfile(r io.Reader) (*Profile, error) {
	var pf profileFile
	if err := json.NewDecoder(r).Decode(&pf); err != nil {
		return nil, fmt.Errorf("trace: parse profile: %w", err)
	}
	if pf.Version != profileVersion {
		return nil, fmt.Errorf("trace: unsupported profile version %d", pf.Version)
	}
	if len(pf.Bytes) != pf.Ranks {
		return nil, fmt.Errorf("trace: profile claims %d ranks but has %d rows", pf.Ranks, len(pf.Bytes))
	}
	for i, row := range pf.Bytes {
		if len(row) != pf.Ranks {
			return nil, fmt.Errorf("trace: row %d has %d columns, want %d", i, len(row), pf.Ranks)
		}
		for j, v := range row {
			if v < 0 {
				return nil, fmt.Errorf("trace: negative traffic at [%d][%d]", i, j)
			}
		}
	}
	return &Profile{Bytes: pf.Bytes}, nil
}

// LoadProfile reads a profile from a file.
func LoadProfile(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadProfile(f)
}
