package trace

import (
	"testing"

	"github.com/hpcsim/t2hx/internal/mpi"
	"github.com/hpcsim/t2hx/internal/topo"
)

func TestCaptureSeesCollectiveDecomposition(t *testing.T) {
	b := mpi.NewBuilder(4)
	b.Bcast(0, 1000)
	p := Capture(b.Progs)
	// Binomial bcast from 0 over 4 ranks: 0->1, 0->2, 1->3 (or 2->3
	// depending on tree shape); total sent bytes = 3000.
	var total float64
	for _, row := range p.Bytes {
		for _, v := range row {
			total += v
		}
	}
	if total != 3000 {
		t.Errorf("total captured bytes = %v, want 3000", total)
	}
	if p.Bytes[0][1] == 0 {
		t.Error("root->1 traffic not captured")
	}
}

func TestCaptureIsPlacementOblivious(t *testing.T) {
	// The profile depends only on ranks, never on nodes (footnote 6).
	b := mpi.NewBuilder(8)
	b.Alltoall(512)
	p := Capture(b.Progs)
	for i := range p.Bytes {
		for j := range p.Bytes[i] {
			want := 512.0
			if i == j {
				want = 0
			}
			if p.Bytes[i][j] != want {
				t.Fatalf("Bytes[%d][%d] = %v, want %v", i, j, p.Bytes[i][j], want)
			}
		}
	}
}

func TestNormalizeRange(t *testing.T) {
	p := &Profile{Bytes: [][]float64{
		{0, 1e9, 10},
		{5e8, 0, 0},
		{0, 0, 0},
	}}
	n := p.Normalize()
	if n[0][1] != 255 {
		t.Errorf("max demand = %d, want 255", n[0][1])
	}
	if n[1][0] != 128 {
		t.Errorf("half demand = %d, want 128", n[1][0])
	}
	// Tiny but non-zero traffic must stay >= 1.
	if n[0][2] != 1 {
		t.Errorf("tiny demand = %d, want 1", n[0][2])
	}
	if n[2][0] != 0 || n[0][0] != 0 {
		t.Error("zero traffic must stay 0")
	}
}

func TestNormalizeAllZero(t *testing.T) {
	p := &Profile{Bytes: [][]float64{{0, 0}, {0, 0}}}
	n := p.Normalize()
	for i := range n {
		for j := range n[i] {
			if n[i][j] != 0 {
				t.Fatal("all-zero profile must normalize to zero")
			}
		}
	}
}

func TestDemandBuilderMapsRanksToNodes(t *testing.T) {
	terms := []topo.NodeID{10, 11, 12, 13, 14, 15}
	db := NewDemandBuilder(terms)
	norm := [][]uint8{
		{0, 200},
		{50, 0},
	}
	// Ranks 0,1 placed on nodes 13, 11.
	if err := db.AddJob(norm, []topo.NodeID{13, 11}); err != nil {
		t.Fatal(err)
	}
	d := db.Demands()
	if d[3][1] != 200 {
		t.Errorf("demand[node13][node11] = %d, want 200", d[3][1])
	}
	if d[1][3] != 50 {
		t.Errorf("demand[node11][node13] = %d, want 50", d[1][3])
	}
}

func TestDemandBuilderMergesJobsByMax(t *testing.T) {
	terms := []topo.NodeID{1, 2}
	db := NewDemandBuilder(terms)
	db.AddJob([][]uint8{{0, 100}, {0, 0}}, []topo.NodeID{1, 2})
	db.AddJob([][]uint8{{0, 40}, {0, 0}}, []topo.NodeID{1, 2})
	if got := db.Demands()[0][1]; got != 100 {
		t.Errorf("merged demand = %d, want max 100", got)
	}
}

func TestDemandBuilderErrors(t *testing.T) {
	db := NewDemandBuilder([]topo.NodeID{1, 2})
	if err := db.AddJob([][]uint8{{0}}, []topo.NodeID{1, 2}); err == nil {
		t.Error("size mismatch accepted")
	}
	if err := db.AddJob([][]uint8{{0, 1}, {0, 0}}, []topo.NodeID{1, 99}); err == nil {
		t.Error("unknown node accepted")
	}
}

func TestEndToEndProfileToPARXDemands(t *testing.T) {
	// The full Sec. 3.2.2 pipeline: build an app, capture, normalize, map
	// onto an allocation.
	b := mpi.NewBuilder(4)
	b.RingAllreduce(1 << 20)
	norm := Capture(b.Progs).Normalize()
	terms := make([]topo.NodeID, 16)
	for i := range terms {
		terms[i] = topo.NodeID(i)
	}
	db := NewDemandBuilder(terms)
	if err := db.AddJob(norm, []topo.NodeID{4, 5, 6, 7}); err != nil {
		t.Fatal(err)
	}
	d := db.Demands()
	// Ring: rank r -> r+1: node 4->5, 5->6, 6->7, 7->4 all equal 255.
	for _, pair := range [][2]int{{4, 5}, {5, 6}, {6, 7}, {7, 4}} {
		if d[pair[0]][pair[1]] != 255 {
			t.Errorf("ring demand [%d][%d] = %d, want 255", pair[0], pair[1], d[pair[0]][pair[1]])
		}
	}
	if d[4][6] != 0 {
		t.Error("non-ring pair has demand")
	}
}
