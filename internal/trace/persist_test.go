package trace

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"github.com/hpcsim/t2hx/internal/mpi"
)

func TestProfileRoundTrip(t *testing.T) {
	b := mpi.NewBuilder(6)
	b.Alltoall(1234)
	b.Bcast(0, 999)
	orig := Capture(b.Progs)
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig.Bytes {
		for j := range orig.Bytes[i] {
			if got.Bytes[i][j] != orig.Bytes[i][j] {
				t.Fatalf("round trip changed [%d][%d]: %v != %v",
					i, j, got.Bytes[i][j], orig.Bytes[i][j])
			}
		}
	}
}

func TestProfileSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "alltoall.n6.json")
	b := mpi.NewBuilder(6)
	b.Alltoall(4096)
	p := Capture(b.Progs)
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Bytes) != 6 {
		t.Fatalf("loaded %d ranks", len(got.Bytes))
	}
	// Loaded profiles normalize identically.
	a, bn := p.Normalize(), got.Normalize()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != bn[i][j] {
				t.Fatal("normalization differs after reload")
			}
		}
	}
}

func TestReadProfileRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":        "}{",
		"bad version":     `{"version":99,"ranks":1,"bytes":[[0]]}`,
		"rank mismatch":   `{"version":1,"ranks":3,"bytes":[[0]]}`,
		"ragged rows":     `{"version":1,"ranks":2,"bytes":[[0,1],[0]]}`,
		"negative travel": `{"version":1,"ranks":1,"bytes":[[-5]]}`,
	}
	for name, doc := range cases {
		if _, err := ReadProfile(strings.NewReader(doc)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestLoadProfileMissingFile(t *testing.T) {
	if _, err := LoadProfile("/nonexistent/profile.json"); err == nil {
		t.Error("missing file accepted")
	}
}
