// Package trace implements the communication-profile side of PARX
// (Sec. 3.2.2): capturing per-rank-pair byte counts from MPI programs (the
// role of the low-level IB profiler on the real system, which sees the
// point-to-point messages inside collectives), normalizing them to the
// [0,255] demand range, and combining a rank-based profile with a node
// allocation into the node-based demand matrix PARX ingests before a job
// starts (the SAR-like interface of Sec. 4.4.3).
package trace

import (
	"fmt"
	"math"

	"github.com/hpcsim/t2hx/internal/core"
	"github.com/hpcsim/t2hx/internal/mpi"
	"github.com/hpcsim/t2hx/internal/topo"
)

// Profile is the per-rank-pair traffic demand of one application run:
// Bytes[src][dst] is the total payload rank src sends to rank dst. Profiles
// are placement-, topology- and routing-oblivious (footnote 6), so one
// capture serves every experiment configuration.
type Profile struct {
	Bytes [][]float64
}

// Capture records the point-to-point traffic of a program set, including
// the messages collectives decompose into — exactly what the paper's IB
// profiler sees and Vampir/TAU miss.
func Capture(progs []*mpi.Program) *Profile {
	n := len(progs)
	p := &Profile{Bytes: make([][]float64, n)}
	for i := range p.Bytes {
		p.Bytes[i] = make([]float64, n)
	}
	for src, prog := range progs {
		for _, op := range prog.Ops {
			if op.Kind == mpi.OpISend {
				p.Bytes[src][op.Peer] += float64(op.Size)
			}
		}
	}
	return p
}

// Normalize maps byte counts to the integer demand range D_n = [0, 255]:
// 0 means no traffic, 1 the lowest non-zero demand, 255 the highest
// (Sec. 3.2.3).
func (p *Profile) Normalize() [][]uint8 {
	n := len(p.Bytes)
	out := make([][]uint8, n)
	var maxB float64
	for _, row := range p.Bytes {
		for _, b := range row {
			if b > maxB {
				maxB = b
			}
		}
	}
	for i, row := range p.Bytes {
		out[i] = make([]uint8, n)
		for j, b := range row {
			if b <= 0 || maxB == 0 {
				continue
			}
			v := math.Round(255 * b / maxB)
			if v < 1 {
				v = 1
			}
			out[i][j] = uint8(v)
		}
	}
	return out
}

// DemandBuilder accumulates node-level demands for one or more concurrently
// scheduled applications (the job-submission/OpenSM interface of
// Sec. 4.4.3).
type DemandBuilder struct {
	termIndex map[topo.NodeID]int
	demands   core.Demands
}

// NewDemandBuilder prepares an empty node-demand matrix over the fabric's
// terminals.
func NewDemandBuilder(terms []topo.NodeID) *DemandBuilder {
	b := &DemandBuilder{
		termIndex: make(map[topo.NodeID]int, len(terms)),
		demands:   make(core.Demands, len(terms)),
	}
	for i, tm := range terms {
		b.termIndex[tm] = i
		b.demands[i] = make([]uint8, len(terms))
	}
	return b
}

// AddJob maps a rank-based normalized profile onto the job's node
// allocation. Overlapping demands keep the maximum.
func (b *DemandBuilder) AddJob(norm [][]uint8, ranks []topo.NodeID) error {
	if len(norm) != len(ranks) {
		return fmt.Errorf("trace: profile has %d ranks, allocation %d nodes", len(norm), len(ranks))
	}
	for src, row := range norm {
		si, ok := b.termIndex[ranks[src]]
		if !ok {
			return fmt.Errorf("trace: node %d not a fabric terminal", ranks[src])
		}
		for dst, w := range row {
			if w == 0 {
				continue
			}
			di := b.termIndex[ranks[dst]]
			if w > b.demands[si][di] {
				b.demands[si][di] = w
			}
		}
	}
	return nil
}

// Demands returns the accumulated node-demand matrix for PARX.
func (b *DemandBuilder) Demands() core.Demands { return b.demands }
