package flow

import (
	"math"
	"testing"

	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// lineGraph builds t1 - s1 - s2 - t2 with the given switch-link bandwidth.
func lineGraph(bw float64) (*topo.Graph, []topo.ChannelID, []topo.ChannelID) {
	g := topo.New("line")
	s1 := g.AddNode(topo.Switch, "s1").ID
	s2 := g.AddNode(topo.Switch, "s2").ID
	t1 := g.AddNode(topo.Terminal, "t1").ID
	t2 := g.AddNode(topo.Terminal, "t2").ID
	l1 := g.Connect(s1, t1, bw, 0)
	mid := g.Connect(s1, s2, bw, 0)
	l2 := g.Connect(s2, t2, bw, 0)
	fwd := []topo.ChannelID{l1.Channel(t1), mid.Channel(s1), l2.Channel(s2)}
	rev := []topo.ChannelID{l2.Channel(t2), mid.Channel(s2), l1.Channel(s1)}
	return g, fwd, rev
}

func TestSingleFlowFullBandwidth(t *testing.T) {
	g, fwd, _ := lineGraph(1000) // 1000 B/s
	e := sim.NewEngine()
	n := NewNetwork(e, g)
	var done sim.Time = -1
	n.Start(fwd, 500, func(at sim.Time) { done = at })
	e.Run()
	if math.Abs(float64(done)-0.5) > 1e-9 {
		t.Errorf("completion at %v, want 0.5s (500B at 1000B/s)", done)
	}
}

func TestTwoFlowsShareBottleneck(t *testing.T) {
	g, fwd, _ := lineGraph(1000)
	e := sim.NewEngine()
	n := NewNetwork(e, g)
	// Two flows over the same path: each gets 500 B/s.
	var d1, d2 sim.Time = -1, -1
	n.Start(fwd, 500, func(at sim.Time) { d1 = at })
	n.Start(fwd, 500, func(at sim.Time) { d2 = at })
	e.Run()
	if math.Abs(float64(d1)-1.0) > 1e-9 || math.Abs(float64(d2)-1.0) > 1e-9 {
		t.Errorf("completions %v %v, want 1.0s each", d1, d2)
	}
}

func TestOppositeDirectionsDoNotContend(t *testing.T) {
	g, fwd, rev := lineGraph(1000)
	e := sim.NewEngine()
	n := NewNetwork(e, g)
	var d1, d2 sim.Time = -1, -1
	n.Start(fwd, 1000, func(at sim.Time) { d1 = at })
	n.Start(rev, 1000, func(at sim.Time) { d2 = at })
	e.Run()
	// Full duplex: both finish at 1s, not 2s.
	if math.Abs(float64(d1)-1.0) > 1e-9 || math.Abs(float64(d2)-1.0) > 1e-9 {
		t.Errorf("duplex completions %v %v, want 1.0s each", d1, d2)
	}
}

func TestRateReallocationOnCompletion(t *testing.T) {
	g, fwd, _ := lineGraph(1000)
	e := sim.NewEngine()
	n := NewNetwork(e, g)
	var dShort, dLong sim.Time = -1, -1
	n.Start(fwd, 250, func(at sim.Time) { dShort = at })
	n.Start(fwd, 750, func(at sim.Time) { dLong = at })
	e.Run()
	// Phase 1: both at 500 B/s; short (250B) finishes at 0.5s. Phase 2:
	// long has 750-250=500B left at 1000 B/s -> finishes at 1.0s.
	if math.Abs(float64(dShort)-0.5) > 1e-9 {
		t.Errorf("short done at %v, want 0.5", dShort)
	}
	if math.Abs(float64(dLong)-1.0) > 1e-9 {
		t.Errorf("long done at %v, want 1.0", dLong)
	}
}

func TestMaxMinUnevenPaths(t *testing.T) {
	// Star: t1,t2 inject into s over separate 1000 B/s links; both flows
	// converge on one 1000 B/s link to s2, then distinct links to t3/t4.
	g := topo.New("star")
	s := g.AddNode(topo.Switch, "s").ID
	s2 := g.AddNode(topo.Switch, "s2").ID
	t1 := g.AddNode(topo.Terminal, "t1").ID
	t2 := g.AddNode(topo.Terminal, "t2").ID
	t3 := g.AddNode(topo.Terminal, "t3").ID
	t4 := g.AddNode(topo.Terminal, "t4").ID
	l1 := g.Connect(s, t1, 1000, 0)
	l2 := g.Connect(s, t2, 400, 0) // t2's injection limited to 400
	mid := g.Connect(s, s2, 1000, 0)
	l3 := g.Connect(s2, t3, 1000, 0)
	l4 := g.Connect(s2, t4, 1000, 0)
	e := sim.NewEngine()
	n := NewNetwork(e, g)
	p1 := []topo.ChannelID{l1.Channel(t1), mid.Channel(s), l3.Channel(s2)}
	p2 := []topo.ChannelID{l2.Channel(t2), mid.Channel(s), l4.Channel(s2)}
	var d1, d2 sim.Time = -1, -1
	n.Start(p1, 600, func(at sim.Time) { d1 = at })
	n.Start(p2, 400, func(at sim.Time) { d2 = at })
	e.Run()
	// Max-min: flow2 frozen at 400 (its injection link), flow1 gets the
	// residual 600 on mid. Both finish at t=1.0.
	if math.Abs(float64(d1)-1.0) > 1e-9 {
		t.Errorf("flow1 done at %v, want 1.0 (rate 600)", d1)
	}
	if math.Abs(float64(d2)-1.0) > 1e-9 {
		t.Errorf("flow2 done at %v, want 1.0 (rate 400)", d2)
	}
}

func TestZeroSizeCompletesImmediately(t *testing.T) {
	g, _, _ := lineGraph(1000)
	e := sim.NewEngine()
	n := NewNetwork(e, g)
	var done sim.Time = -1
	n.Start(nil, 0, func(at sim.Time) { done = at })
	e.Run()
	if done != 0 {
		t.Errorf("zero-size done at %v, want 0", done)
	}
}

func TestCancelRemovesFlow(t *testing.T) {
	g, fwd, _ := lineGraph(1000)
	e := sim.NewEngine()
	n := NewNetwork(e, g)
	fired := false
	id := n.Start(fwd, 1e6, func(sim.Time) { fired = true })
	var other sim.Time = -1
	n.Start(fwd, 500, func(at sim.Time) { other = at })
	e.After(0.1, func(*sim.Engine) { n.Cancel(id) })
	e.Run()
	if fired {
		t.Error("canceled flow fired its callback")
	}
	// Other flow: 0.1s at 500 B/s (shared) = 50B done, then 450B at
	// 1000 B/s = 0.45s -> total 0.55s.
	if math.Abs(float64(other)-0.55) > 1e-9 {
		t.Errorf("other flow done at %v, want 0.55", other)
	}
	if n.Active() != 0 {
		t.Errorf("Active() = %d, want 0", n.Active())
	}
}

func TestCascadingFlows(t *testing.T) {
	// A flow whose completion starts the next (like rendezvous chains).
	g, fwd, _ := lineGraph(1000)
	e := sim.NewEngine()
	n := NewNetwork(e, g)
	var finished sim.Time
	var chain func(k int) func(sim.Time)
	chain = func(k int) func(sim.Time) {
		return func(at sim.Time) {
			if k == 0 {
				finished = at
				return
			}
			n.Start(fwd, 100, chain(k-1))
		}
	}
	n.Start(fwd, 100, chain(9))
	e.Run()
	if math.Abs(float64(finished)-1.0) > 1e-9 {
		t.Errorf("chain of 10x100B done at %v, want 1.0", finished)
	}
}

func TestManyFlowsFairness(t *testing.T) {
	// 7 flows over one cable — the paper's oversubscription scenario: each
	// should see 1/7 of the bandwidth.
	g, fwd, _ := lineGraph(7000)
	e := sim.NewEngine()
	n := NewNetwork(e, g)
	times := make([]sim.Time, 7)
	for i := 0; i < 7; i++ {
		i := i
		n.Start(fwd, 1000, func(at sim.Time) { times[i] = at })
	}
	e.Run()
	for i, tm := range times {
		if math.Abs(float64(tm)-1.0) > 1e-9 {
			t.Errorf("flow %d done at %v, want 1.0 (1/7 share)", i, tm)
		}
	}
}

func TestConservationProperty(t *testing.T) {
	// Random flows on a small HyperX: at any recompute, no channel may be
	// oversubscribed and every flow must have a positive rate.
	hx := topo.NewHyperX(topo.HyperXConfig{S: []int{3, 3}, T: 2, Bandwidth: 1e6, Latency: 0})
	e := sim.NewEngine()
	n := NewNetwork(e, hx.Graph)
	r := sim.NewRand(9)
	terms := hx.Terminals()
	// Build simple 2-channel paths: injection + delivery via shared switch
	// or direct link paths; use Start and verify rates after settle.
	var paths [][]topo.ChannelID
	for k := 0; k < 40; k++ {
		a := terms[r.Intn(len(terms))]
		b := terms[r.Intn(len(terms))]
		if a == b {
			continue
		}
		swA, swB := hx.SwitchOf(a), hx.SwitchOf(b)
		var p []topo.ChannelID
		p = append(p, hx.Nodes[a].Ports[0].Channel(a))
		if swA != swB {
			var direct *topo.Link
			for _, l := range hx.UpLinks(swA) {
				if l.Other(swA) == swB {
					direct = l
					break
				}
			}
			if direct == nil {
				continue
			}
			p = append(p, direct.Channel(swA))
		}
		p = append(p, hx.Nodes[b].Ports[0].Channel(swB))
		paths = append(paths, p)
	}
	for _, p := range paths {
		n.Start(p, 1e5, func(sim.Time) {})
	}
	// Step until rates settle, then check conservation.
	e.Step() // settle event
	usage := map[topo.ChannelID]float64{}
	for i := range n.tab.live {
		if !n.tab.live[i] || n.tab.zeroEv[i] != 0 {
			continue
		}
		idx := int32(i)
		if n.tab.rate[idx] <= 0 {
			t.Fatalf("flow %d has non-positive rate", handleOf(idx, n.tab.gen[idx]))
		}
		for _, c := range n.tab.path(idx) {
			usage[c] += n.tab.rate[idx]
		}
	}
	for c, u := range usage {
		if u > n.caps[c]*(1+1e-9) {
			t.Errorf("channel %d oversubscribed: %.1f > %.1f", c, u, n.caps[c])
		}
	}
	e.Run()
}
