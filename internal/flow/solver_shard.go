package flow

import (
	"runtime"

	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// This file shards the incremental solver by connected component of the
// flow/channel contention graph (DESIGN.md §12). The dirty-region BFS in
// recomputeIncremental already discovers exactly the flows that need
// re-rating; here the discovery is run per dirty seed, so the region comes
// back segmented into its connected components. Components share no
// channels, so the max-min allocation decomposes exactly per component —
// each one can be progressively filled independently, with its own
// private heap/scratch, on its own worker.
//
// Determinism (bit-identical at any worker count) rests on three facts:
//
//  1. Per-component arithmetic is schedule-independent. A component's
//     solve reads only its own channels' residual/unfrozenCnt/chanGen/
//     pushedGen entries and its own flows' SoA columns, all disjoint from
//     every other component's, plus immutable shared state (caps, paths,
//     membership). The progressive-filling order within a component is
//     fixed by (share, channel ID) with the epsilon tie-break and flows
//     freeze in start (seq) order — none of which depends on which worker
//     runs the component or when.
//  2. Mutable cross-component state is only touched sequentially. The
//     doneHeap pushes, rate-invariant checks and doneGen bumps happen in
//     the merge phase, after the pool has joined, iterating components in
//     ascending root order and each component's flows in discovery order —
//     the same total order the unsharded solve would produce.
//  3. Telemetry writes from workers are per-channel and therefore
//     disjoint (ChannelCounters.NoteActive touches only the channel's own
//     slot); the time-integration writes (AddXmit/AddWait and the shared
//     HCAWait accumulator) happen in recomputeIncremental's sequential
//     region-advance pass on the event goroutine before dispatch.
//
// When the workload couples every flow (e.g. uniform all-to-all traffic
// where node channels chain the whole network together), discovery finds
// one spanning component and sharding degenerates gracefully: one worker
// solves it exactly as the sequential path would, and the pool is not
// even invoked. Multi-plane fabrics are the opposite extreme — N planes
// share no channels by construction, so every settle that touches k
// planes yields ≥ k components.

// component is one connected component of the current dirty region: a
// span of regionChans and a span of regionFlows (segmented storage — no
// per-component allocation). root is the smallest channel ID in the
// component, the canonical key components are merged by.
type component struct {
	root    topo.ChannelID
	chanOff int32
	chanLen int32
	flowOff int32
	flowLen int32
}

// solverScratch is one worker's private progressive-filling scratch: the
// bottleneck share heap, the epsilon-tie candidate buffer and the freeze
// set. Sequential solves use scratches[0]; SetWorkers sizes the slice.
type solverScratch struct {
	shareHeap  shareHeap
	tieScratch []shareEntry
	freeze     []int32
}

// shardMinFlows gates parallel dispatch: a dirty region with fewer total
// flows than this is solved inline on the event goroutine, because the
// fork-join overhead would exceed the solve. A var, not a const, so tests
// can force the parallel path on tiny property-suite instances.
var shardMinFlows = 256

// SetWorkers bounds the per-component parallelism of the incremental
// solver's re-solve; j <= 0 selects GOMAXPROCS. The default is 1 (fully
// sequential). Results are bit-identical at every setting — sharding
// changes where component solves run, never what they compute — so the
// knob may be flipped at any event boundary, including mid-run.
func (n *Network) SetWorkers(j int) {
	if j <= 0 {
		j = runtime.GOMAXPROCS(0)
	}
	n.workers = j
	if j > 1 && (n.pool == nil || n.pool.Workers() != j) {
		n.pool = sim.NewPool(j)
	}
	for len(n.scratches) < j {
		n.scratches = append(n.scratches, solverScratch{})
	}
}

// Workers reports the solver's parallelism bound.
func (n *Network) Workers() int { return n.workers }

// discoverComponents runs the dirty-region BFS once per unswept dirty
// seed, segmenting regionChans/regionFlows into connected components. The
// returned slice (backed by n.comps) is sorted by root, fixing the merge
// order; flowless components (membership drained to empty) are dropped.
func (n *Network) discoverComponents() []component {
	t := &n.tab
	n.epoch++
	ep := n.epoch
	regionChans := n.regionChans[:0]
	regionFlows := n.regionFlows[:0]
	comps := n.comps[:0]
	for _, seed := range n.dirtyChans {
		if n.regionStamp[seed] == ep {
			continue // already swept into an earlier seed's component
		}
		n.regionStamp[seed] = ep
		chanOff := len(regionChans)
		flowOff := len(regionFlows)
		regionChans = append(regionChans, seed)
		root := seed
		for head := chanOff; head < len(regionChans); head++ {
			c := regionChans[head]
			if c < root {
				root = c
			}
			for _, sl := range n.chanFlows[c] {
				if t.mark[sl.idx] == ep {
					continue
				}
				t.mark[sl.idx] = ep
				regionFlows = append(regionFlows, sl.idx)
				for _, c2 := range t.path(sl.idx) {
					if n.regionStamp[c2] != ep {
						n.regionStamp[c2] = ep
						regionChans = append(regionChans, c2)
					}
				}
			}
		}
		if len(regionFlows) == flowOff {
			// Every flow left this seed's channels: nothing to re-rate.
			regionChans = regionChans[:chanOff]
			continue
		}
		comps = append(comps, component{
			root:    root,
			chanOff: int32(chanOff),
			chanLen: int32(len(regionChans) - chanOff),
			flowOff: int32(flowOff),
			flowLen: int32(len(regionFlows) - flowOff),
		})
	}
	n.consumeDirty()
	n.regionChans = regionChans
	n.regionFlows = regionFlows
	// Canonical merge order: ascending root. Insertion sort — settles
	// touch a handful of components and sort.Slice would allocate.
	for i := 1; i < len(comps); i++ {
		for j := i; j > 0 && comps[j].root < comps[j-1].root; j-- {
			comps[j], comps[j-1] = comps[j-1], comps[j]
		}
	}
	n.comps = comps
	return comps
}

// solveComponents re-rates every component, in parallel when the region
// is big enough to amortize the fork-join and has more than one
// component. Dispatch is dynamic (workers pull components from a shared
// counter) but harmless to determinism: per-component work is
// schedule-independent and the merge runs afterwards in root order.
func (n *Network) solveComponents(comps []component, now sim.Time) {
	nw := n.workers
	if nw > len(comps) {
		nw = len(comps)
	}
	if nw <= 1 || len(n.regionFlows) < shardMinFlows {
		for ci := range comps {
			n.solveComponent(&comps[ci], &n.scratches[0], now)
		}
		return
	}
	n.pool.Run(len(comps), func(worker, job int) {
		n.solveComponent(&comps[job], &n.scratches[worker], now)
	})
}

// solveComponent progressively fills one component using the worker's
// private scratch. It writes only the component's own per-channel solver
// arrays and per-flow SoA entries, so concurrent calls on distinct
// components never race.
func (n *Network) solveComponent(comp *component, sc *solverScratch, now sim.Time) {
	t := &n.tab
	chans := n.regionChans[comp.chanOff : comp.chanOff+comp.chanLen]
	flows := n.regionFlows[comp.flowOff : comp.flowOff+comp.flowLen]
	// The component's flows were already integrated to now by
	// recomputeIncremental, sequentially, before dispatch — workers must
	// never write the shared counter sums.
	h := &sc.shareHeap
	*h = (*h)[:0]
	for _, c := range chans {
		cnt := int32(len(n.chanFlows[c]))
		n.residual[c] = n.caps[c]
		n.unfrozenCnt[c] = cnt
		n.chanGen[c]++
		if cnt > 0 {
			if n.cc != nil {
				n.cc.NoteActive(c, int(cnt))
			}
			n.pushedGen[c] = n.chanGen[c]
			*h = append(*h, shareEntry{share: n.caps[c] / float64(cnt), c: c, gen: n.chanGen[c]})
		}
	}
	h.init()
	for _, idx := range flows {
		t.rate[idx] = -1 // unfrozen
	}
	remaining := len(flows)
	for remaining > 0 {
		e, ok := sc.popValidShare(n)
		if !ok {
			panic("flow: unfrozen flows but no bottleneck channel")
		}
		// Epsilon tie-break: gather every live candidate whose share is
		// equal to the minimum within tolerance and freeze the smallest
		// channel ID, so last-ulp share differences cannot flip the
		// bottleneck choice. Candidates are held aside and re-queued
		// after the choice (re-queueing inside the scan would just pop
		// the same minimum again).
		best := e
		ties := sc.tieScratch[:0]
		for len(*h) > 0 {
			top := (*h)[0]
			if top.gen != n.chanGen[top.c] {
				h.pop()
				continue
			}
			if !sharesEqual(top.share, e.share) {
				break
			}
			h.pop()
			if top.c < best.c {
				ties = append(ties, best)
				best = top
			} else {
				ties = append(ties, top)
			}
		}
		remaining -= n.freezeChannel(sc, best.c, best.share)
		for _, tie := range ties {
			if tie.gen == n.chanGen[tie.c] {
				sc.shareHeap.push(tie)
			}
		}
		sc.tieScratch = ties[:0]
	}
}

// popValidShare pops heap entries until one reflects current state.
func (sc *solverScratch) popValidShare(n *Network) (shareEntry, bool) {
	h := &sc.shareHeap
	for len(*h) > 0 {
		e := h.pop()
		if e.gen == n.chanGen[e.c] {
			return e, true
		}
	}
	return shareEntry{}, false
}

// freezeChannel freezes every unfrozen flow crossing bott at share (in
// start order, for deterministic float arithmetic), updates residuals
// and re-queues the touched channels on the worker's heap. Returns the
// number frozen.
func (n *Network) freezeChannel(sc *solverScratch, bott topo.ChannelID, share float64) int {
	t := &n.tab
	fs := sc.freeze[:0]
	for _, sl := range n.chanFlows[bott] {
		if t.rate[sl.idx] < 0 {
			fs = append(fs, sl.idx)
		}
	}
	// Insertion sort by seq: bottleneck freeze sets are usually small, and
	// membership order is insertion order, already mostly sorted.
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && t.seq[fs[j]] < t.seq[fs[j-1]]; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
	for _, idx := range fs {
		t.rate[idx] = share
		t.bott[idx] = bott
		for _, c := range t.path(idx) {
			n.residual[c] -= share
			if n.residual[c] < 0 {
				n.residual[c] = 0
			}
			n.unfrozenCnt[c]--
			n.chanGen[c]++
		}
	}
	// Re-queue each touched channel once, at its updated share.
	for _, idx := range fs {
		for _, c := range t.path(idx) {
			if n.unfrozenCnt[c] > 0 && n.pushedGen[c] != n.chanGen[c] {
				n.pushedGen[c] = n.chanGen[c]
				sc.shareHeap.push(shareEntry{
					share: n.residual[c] / float64(n.unfrozenCnt[c]),
					c:     c,
					gen:   n.chanGen[c],
				})
			}
		}
	}
	sc.freeze = fs[:0]
	return len(fs)
}
