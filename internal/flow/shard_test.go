package flow

import (
	"testing"

	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// This file tests the sharded incremental solver (solver_shard.go): the
// component index must segment dirty regions correctly, and the solve must
// be bit-identical — not epsilon-close — to the sequential path at every
// worker count, including under handle-reuse churn with stale cancels
// landing between a membership change and its component re-solve.

// requireBitIdentical asserts two runs of the same instance produced
// byte-for-byte identical results: exact completion times, exact mid-run
// rates, exact per-channel counter integrals. Used to hold the sharded
// solver to the determinism contract (DESIGN.md §12), which is stricter
// than the epsilon comparisons against the reference oracle.
func requireBitIdentical(t *testing.T, seed uint64, label string, a, b propResult) {
	t.Helper()
	if len(a.doneAt) != len(b.doneAt) {
		t.Fatalf("seed %d (%s): %d completions vs %d", seed, label, len(a.doneAt), len(b.doneAt))
	}
	for k, at := range a.doneAt {
		got, ok := b.doneAt[k]
		if !ok {
			t.Fatalf("seed %d (%s): flow %d completed only in one run", seed, label, k)
		}
		if got != at {
			t.Errorf("seed %d (%s): flow %d done at %v vs %v (not bit-identical)",
				seed, label, k, at, got)
		}
	}
	if a.makespan != b.makespan {
		t.Errorf("seed %d (%s): makespan %v vs %v", seed, label, a.makespan, b.makespan)
	}
	if len(a.ratesAt) != len(b.ratesAt) {
		t.Fatalf("seed %d (%s): %d active flows at snapshot vs %d",
			seed, label, len(a.ratesAt), len(b.ratesAt))
	}
	for k, r := range a.ratesAt {
		if b.ratesAt[k] != r {
			t.Errorf("seed %d (%s): flow %d rate %v vs %v (not bit-identical)",
				seed, label, k, r, b.ratesAt[k])
		}
	}
	for c := range a.xmit {
		if a.xmit[c] != b.xmit[c] {
			t.Errorf("seed %d (%s): channel %d XmitData %v vs %v (not bit-identical)",
				seed, label, c, a.xmit[c], b.xmit[c])
		}
	}
	if a.waitTotal != b.waitTotal {
		t.Errorf("seed %d (%s): total XmitWait %v vs %v (not bit-identical)",
			seed, label, a.waitTotal, b.waitTotal)
	}
	if a.creditedBH != b.creditedBH {
		t.Errorf("seed %d (%s): credited bytes x hops %v vs %v (not bit-identical)",
			seed, label, a.creditedBH, b.creditedBH)
	}
}

// TestShardDeterminism asserts byte-identical rates, completion times and
// telemetry conservation sums across worker counts 1/2/8 on randomized
// instances, mirroring exp's TestSweepDeterministicAcrossWorkers.
func TestShardDeterminism(t *testing.T) {
	defer func(old int) { shardMinFlows = old }(shardMinFlows)
	shardMinFlows = 0 // force parallel dispatch on these tiny instances
	const instances = 40
	for seed := uint64(0); seed < instances; seed++ {
		inst := genInstance(seed)
		base := runPropInstance(t, inst, SolverIncremental, 1)
		for _, workers := range []int{2, 8} {
			got := runPropInstance(t, inst, SolverIncremental, workers)
			requireBitIdentical(t, seed, "workers="+string('0'+rune(workers)), base, got)
		}
	}
}

// shardTestGraph builds a small HyperX whose raw channel IDs the component
// tests address directly.
func shardTestGraph(t *testing.T) *topo.Graph {
	t.Helper()
	hx, err := topo.BuildHyperX(topo.HyperXConfig{
		S: []int{2, 2}, T: 2, Bandwidth: 1e6, Latency: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	return hx.Graph
}

// disjointChannels returns k channels no two of which share a link, so
// single-channel flows over them form k separate contention components.
func disjointChannels(g *topo.Graph, k int) []topo.ChannelID {
	cs := make([]topo.ChannelID, 0, k)
	for l := 0; l < len(g.Links) && len(cs) < k; l++ {
		cs = append(cs, topo.ChannelID(2*l)) // forward channel of link l
	}
	return cs
}

// TestComponentDiscovery checks the component index directly: disjoint
// flows come back as separate components sorted by root, flows chained by
// a shared channel merge into one, and the spans partition the region.
func TestComponentDiscovery(t *testing.T) {
	g := shardTestGraph(t)
	eng := sim.NewEngine()
	net := NewNetwork(eng, g)
	net.SetSolver(SolverIncremental) // component index is incremental-only
	cs := disjointChannels(g, 4)
	if len(cs) < 4 {
		t.Fatalf("test graph too small: %d disjoint channels", len(cs))
	}
	noop := func(sim.Time) {}
	// Two isolated single-channel flows, plus a chained pair sharing cs[2]:
	// {cs[0]}, {cs[1]}, {cs[2]}+{cs[2],cs[3]} -> 3 components.
	net.Start([]topo.ChannelID{cs[0]}, 1e6, noop)
	net.Start([]topo.ChannelID{cs[1]}, 1e6, noop)
	net.Start([]topo.ChannelID{cs[2]}, 1e6, noop)
	net.Start([]topo.ChannelID{cs[2], cs[3]}, 1e6, noop)
	eng.RunUntil(0) // settle
	comps := net.comps
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3: %+v", len(comps), comps)
	}
	wantRoots := []topo.ChannelID{cs[0], cs[1], cs[2]}
	var flowTotal int32
	for i, c := range comps {
		if c.root != wantRoots[i] {
			t.Errorf("component %d root %d, want %d", i, c.root, wantRoots[i])
		}
		if i > 0 && comps[i-1].root >= c.root {
			t.Errorf("components not sorted by root: %d then %d", comps[i-1].root, c.root)
		}
		flowTotal += c.flowLen
	}
	if flowTotal != int32(len(net.regionFlows)) {
		t.Errorf("component flow spans cover %d flows, region has %d",
			flowTotal, len(net.regionFlows))
	}
	if comps[2].flowLen != 2 || comps[2].chanLen != 2 {
		t.Errorf("chained component spans flows=%d chans=%d, want 2/2",
			comps[2].flowLen, comps[2].chanLen)
	}
	// Dirty only one component: the next settle must re-discover just it.
	net.Start([]topo.ChannelID{cs[0]}, 1e6, noop)
	eng.RunUntil(0)
	if len(net.comps) != 1 || net.comps[0].root != cs[0] {
		t.Fatalf("dirtying one component rediscovered %+v", net.comps)
	}
}

// TestShardStaleCancelChurn drives handle-reuse churn under the sharded
// solver: slots recycle via the LIFO free list while stale handles are
// cancelled at the same instant as the pending component re-solve. Stale
// cancels must be counted, never tear down a slot's next occupant, and
// the sharded drain must stay exact.
func TestShardStaleCancelChurn(t *testing.T) {
	defer func(old int) { shardMinFlows = old }(shardMinFlows)
	shardMinFlows = 0
	g := shardTestGraph(t)
	eng := sim.NewEngine()
	net := NewNetwork(eng, g)
	net.SetSolver(SolverIncremental)
	net.SetWorkers(8)
	cs := disjointChannels(g, 4)
	const perChan = 8
	var completions int
	onDone := func(sim.Time) { completions++ }
	ids := make([]FlowID, 0, len(cs)*perChan)
	for _, c := range cs {
		for i := 0; i < perChan; i++ {
			ids = append(ids, net.Start([]topo.ChannelID{c}, 1e9, onDone))
		}
	}
	eng.RunUntil(0)
	const churns = 64
	var wantStale uint64
	for i := 0; i < churns; i++ {
		k := i % len(ids)
		stale := ids[k]
		net.Cancel(stale) // frees the slot, marks its component dirty
		// Recycle the freed slot before the settle event fires...
		ids[k] = net.Start([]topo.ChannelID{cs[k%len(cs)]}, 1e9, onDone)
		if Index(stale) != Index(ids[k]) {
			t.Fatalf("churn %d: expected LIFO slot reuse, got slot %d then %d",
				i, Index(stale), Index(ids[k]))
		}
		// ...and cancel the stale handle at the same instant, racing the
		// pending component re-solve. It must hit StaleCancels, not the
		// slot's new occupant.
		net.Cancel(stale)
		wantStale++
		eng.RunUntil(eng.Now()) // run the settle for this churn instant
	}
	if net.StaleCancels != wantStale {
		t.Fatalf("StaleCancels = %d, want %d", net.StaleCancels, wantStale)
	}
	eng.Run()
	if net.Active() != 0 {
		t.Fatalf("%d flows still active after drain", net.Active())
	}
	if want := len(ids); completions != want {
		t.Fatalf("%d completions, want %d", completions, want)
	}
}

// TestSetWorkersScratch pins the SetWorkers contract: scratch slots cover
// the worker count, GOMAXPROCS resolution for j <= 0, and flipping the
// knob mid-run (between event boundaries) keeps the drain exact.
func TestSetWorkersScratch(t *testing.T) {
	g := shardTestGraph(t)
	eng := sim.NewEngine()
	net := NewNetwork(eng, g)
	net.SetSolver(SolverIncremental)
	if net.Workers() != 1 {
		t.Fatalf("default workers = %d, want 1", net.Workers())
	}
	net.SetWorkers(4)
	if net.Workers() != 4 || len(net.scratches) < 4 {
		t.Fatalf("workers=%d scratches=%d after SetWorkers(4)", net.Workers(), len(net.scratches))
	}
	net.SetWorkers(0)
	if net.Workers() < 1 {
		t.Fatalf("SetWorkers(0) resolved to %d", net.Workers())
	}
	cs := disjointChannels(g, 2)
	done := 0
	net.Start([]topo.ChannelID{cs[0]}, 1e6, func(sim.Time) { done++ })
	eng.RunUntil(0)
	net.SetWorkers(2) // flip mid-run at an event boundary
	net.Start([]topo.ChannelID{cs[1]}, 1e6, func(sim.Time) { done++ })
	eng.Run()
	if done != 2 || net.Active() != 0 {
		t.Fatalf("done=%d active=%d after mid-run SetWorkers", done, net.Active())
	}
}
