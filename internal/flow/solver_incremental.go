package flow

import (
	"container/heap"

	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// This file is the incremental max-min solver. Three ideas replace the
// reference solver's per-settle full re-solve:
//
//  1. Persistent membership: chanFlows (channel -> flows, with O(1)
//     swap-remove via Flow.pos) is maintained on Start/Cancel/completion
//     instead of being rebuilt from every active flow on every settle.
//  2. Dirty-region re-solve: a settle re-rates only the connected region
//     of the flow/channel contention graph reachable from channels whose
//     membership changed. Distinct components share no channels, so the
//     global max-min allocation decomposes per component; re-solving the
//     touched components from scratch while keeping every other flow's
//     rate is exactly the global solution. When the dirty region spans
//     the whole network this degenerates into a full (heap-driven) solve.
//  3. Heaps for both bottleneck selection (shareHeap over channel fair
//     shares, lazily invalidated by chanGen) and completion scheduling
//     (doneHeap over predicted finish times, lazily invalidated by
//     Flow.doneGen), replacing the linear scans.
//
// Determinism: region channels are initialized and frozen in an order
// fixed by (share, channel ID) with the epsilon tie-break, and flows on a
// bottleneck freeze in ID order, so the float arithmetic — and therefore
// rates, XmitWait attribution and event timing — is reproducible.

// chanSlot is one entry of a channel's flow membership list; hop is the
// flow's path index for this channel, so a swap-remove can repair the
// moved flow's back-pointer in O(1).
type chanSlot struct {
	f   *Flow
	hop int32
}

// shareEntry is a (fair share, channel) candidate in the bottleneck heap;
// stale entries are recognized by gen != chanGen[c].
type shareEntry struct {
	share float64
	c     topo.ChannelID
	gen   uint32
}

type shareHeap []shareEntry

func (h shareHeap) Len() int { return len(h) }
func (h shareHeap) Less(i, j int) bool {
	if h[i].share != h[j].share {
		return h[i].share < h[j].share
	}
	return h[i].c < h[j].c
}
func (h shareHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *shareHeap) Push(x any)        { *h = append(*h, x.(shareEntry)) }
func (h *shareHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// doneEntry is a predicted flow completion; stale entries are recognized
// by gen != f.doneGen.
type doneEntry struct {
	at  sim.Time
	id  FlowID
	f   *Flow
	gen uint64
}

type doneHeap []doneEntry

func (h doneHeap) Len() int { return len(h) }
func (h doneHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].id < h[j].id
}
func (h doneHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *doneHeap) Push(x any)   { *h = append(*h, x.(doneEntry)) }
func (h *doneHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = doneEntry{}
	*h = old[:n-1]
	return e
}

// ensureChanArrays grows the per-channel solver arrays to cover every
// capacity slot (AddNodeChannels appends after construction).
func (n *Network) ensureChanArrays() {
	if len(n.chanFlows) >= len(n.caps) {
		return
	}
	grow := len(n.caps)
	for len(n.chanFlows) < grow {
		n.chanFlows = append(n.chanFlows, nil)
	}
	n.dirtyStamp = append(n.dirtyStamp, make([]uint64, grow-len(n.dirtyStamp))...)
	n.regionStamp = append(n.regionStamp, make([]uint64, grow-len(n.regionStamp))...)
	n.residual = append(n.residual, make([]float64, grow-len(n.residual))...)
	n.unfrozenCnt = append(n.unfrozenCnt, make([]int32, grow-len(n.unfrozenCnt))...)
	n.chanGen = append(n.chanGen, make([]uint32, grow-len(n.chanGen))...)
	n.pushedGen = append(n.pushedGen, make([]uint32, grow-len(n.pushedGen))...)
}

// dirtyChan records a membership change on c for the next recompute.
func (n *Network) dirtyChan(c topo.ChannelID) {
	if n.dirtyStamp[c] == n.dirtyEpoch {
		return
	}
	n.dirtyStamp[c] = n.dirtyEpoch
	n.dirtyChans = append(n.dirtyChans, c)
}

// addMembership inserts f into the membership list of every channel it
// crosses, dirtying them.
func (n *Network) addMembership(f *Flow) {
	n.ensureChanArrays()
	f.pos = make([]int32, len(f.Path))
	for i, c := range f.Path {
		f.pos[i] = int32(len(n.chanFlows[c]))
		n.chanFlows[c] = append(n.chanFlows[c], chanSlot{f: f, hop: int32(i)})
		n.dirtyChan(c)
	}
}

// removeMembership swap-removes f from its channels' membership lists,
// dirtying them.
func (n *Network) removeMembership(f *Flow) {
	for i, c := range f.Path {
		s := n.chanFlows[c]
		idx := f.pos[i]
		last := int32(len(s) - 1)
		if idx != last {
			moved := s[last]
			s[idx] = moved
			moved.f.pos[moved.hop] = idx
		}
		s[last] = chanSlot{}
		n.chanFlows[c] = s[:last]
		n.dirtyChan(c)
	}
}

// consumeDirty resets the dirty set for the next interval.
func (n *Network) consumeDirty() {
	n.dirtyChans = n.dirtyChans[:0]
	n.dirtyEpoch++
}

// recomputeIncremental re-solves the region of the contention graph
// touched by the dirty channels; flows outside it keep their rates.
func (n *Network) recomputeIncremental() {
	n.Recomputes++
	if len(n.dirtyChans) == 0 {
		return
	}
	if len(n.flows) == 0 {
		n.consumeDirty()
		return
	}
	now := n.eng.Now()
	// Region discovery: BFS over the flow/channel bipartite graph from
	// the dirty channels.
	n.epoch++
	ep := n.epoch
	regionChans := n.regionChans[:0]
	regionFlows := n.regionFlows[:0]
	for _, c := range n.dirtyChans {
		if n.regionStamp[c] != ep {
			n.regionStamp[c] = ep
			regionChans = append(regionChans, c)
		}
	}
	n.consumeDirty()
	for head := 0; head < len(regionChans); head++ {
		for _, sl := range n.chanFlows[regionChans[head]] {
			f := sl.f
			if f.mark == ep {
				continue
			}
			f.mark = ep
			regionFlows = append(regionFlows, f)
			for _, c2 := range f.Path {
				if n.regionStamp[c2] != ep {
					n.regionStamp[c2] = ep
					regionChans = append(regionChans, c2)
				}
			}
		}
	}
	n.regionChans = regionChans
	n.regionFlows = regionFlows
	if len(regionFlows) == 0 {
		return
	}
	// Integrate region flows to now under their outgoing rates before
	// re-rating them (with counters attached advanceAll already did).
	if n.cc == nil {
		for _, f := range regionFlows {
			n.advanceFlow(f, now)
		}
	}
	// Progressive filling restricted to the region, bottleneck selection
	// via the share heap.
	h := &n.shareHeap
	*h = (*h)[:0]
	for _, c := range regionChans {
		cnt := int32(len(n.chanFlows[c]))
		n.residual[c] = n.caps[c]
		n.unfrozenCnt[c] = cnt
		n.chanGen[c]++
		if cnt > 0 {
			if n.cc != nil {
				n.cc.NoteActive(c, int(cnt))
			}
			n.pushedGen[c] = n.chanGen[c]
			*h = append(*h, shareEntry{share: n.caps[c] / float64(cnt), c: c, gen: n.chanGen[c]})
		}
	}
	heap.Init(h)
	for _, f := range regionFlows {
		f.Rate = -1 // unfrozen
	}
	remaining := len(regionFlows)
	for remaining > 0 {
		e, ok := n.popValidShare()
		if !ok {
			panic("flow: unfrozen flows but no bottleneck channel")
		}
		// Epsilon tie-break: gather every live candidate whose share is
		// equal to the minimum within tolerance and freeze the smallest
		// channel ID, so last-ulp share differences cannot flip the
		// bottleneck choice. Candidates are held aside and re-queued
		// after the choice (re-queueing inside the scan would just pop
		// the same minimum again).
		best := e
		ties := n.tieScratch[:0]
		for len(*h) > 0 {
			top := (*h)[0]
			if top.gen != n.chanGen[top.c] {
				heap.Pop(h)
				continue
			}
			if !sharesEqual(top.share, e.share) {
				break
			}
			heap.Pop(h)
			if top.c < best.c {
				ties = append(ties, best)
				best = top
			} else {
				ties = append(ties, top)
			}
		}
		remaining -= n.freezeChannel(best.c, best.share)
		for _, t := range ties {
			n.pushBack(t)
		}
		n.tieScratch = ties[:0]
	}
	// Predict completions for every re-rated flow.
	for _, f := range regionFlows {
		checkRate(f)
		f.doneGen++
		heap.Push(&n.doneHeap, doneEntry{
			at:  now + sim.Time(f.Remaining/f.Rate),
			id:  f.ID,
			f:   f,
			gen: f.doneGen,
		})
	}
	n.maybeCompactDoneHeap()
}

// popValidShare pops heap entries until one reflects current state.
func (n *Network) popValidShare() (shareEntry, bool) {
	h := &n.shareHeap
	for len(*h) > 0 {
		e := heap.Pop(h).(shareEntry)
		if e.gen == n.chanGen[e.c] {
			return e, true
		}
	}
	return shareEntry{}, false
}

// pushBack re-inserts a still-live candidate popped during tie-breaking.
func (n *Network) pushBack(e shareEntry) {
	if e.gen == n.chanGen[e.c] {
		heap.Push(&n.shareHeap, e)
	}
}

// freezeChannel freezes every unfrozen flow crossing bott at share (in
// flow-ID order, for deterministic float arithmetic), updates residuals
// and re-queues the touched channels. Returns the number frozen.
func (n *Network) freezeChannel(bott topo.ChannelID, share float64) int {
	fs := n.freeze[:0]
	for _, sl := range n.chanFlows[bott] {
		if sl.f.Rate < 0 {
			fs = append(fs, sl.f)
		}
	}
	// Insertion sort by ID: bottleneck freeze sets are usually small, and
	// membership order is insertion order, already mostly sorted.
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j].ID < fs[j-1].ID; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
	for _, f := range fs {
		f.Rate = share
		f.bott = bott
		for _, c := range f.Path {
			n.residual[c] -= share
			if n.residual[c] < 0 {
				n.residual[c] = 0
			}
			n.unfrozenCnt[c]--
			n.chanGen[c]++
		}
	}
	// Re-queue each touched channel once, at its updated share.
	for _, f := range fs {
		for _, c := range f.Path {
			if n.unfrozenCnt[c] > 0 && n.pushedGen[c] != n.chanGen[c] {
				n.pushedGen[c] = n.chanGen[c]
				heap.Push(&n.shareHeap, shareEntry{
					share: n.residual[c] / float64(n.unfrozenCnt[c]),
					c:     c,
					gen:   n.chanGen[c],
				})
			}
		}
	}
	n.freeze = fs[:0]
	return len(fs)
}

// scheduleNextDoneHeap points the completion event at the earliest live
// prediction.
func (n *Network) scheduleNextDoneHeap() {
	h := &n.doneHeap
	for len(*h) > 0 && (*h)[0].gen != (*h)[0].f.doneGen {
		heap.Pop(h)
	}
	if len(*h) == 0 {
		n.cancelDoneEv()
		return
	}
	n.scheduleDoneAt((*h)[0].at)
}

// completeDueHeap finishes every flow whose live prediction has come due.
// A popped flow whose remaining bytes have not in fact drained (float
// drift between the prediction and the integration) is re-queued at a
// corrected, strictly-future time, guaranteeing progress.
func (n *Network) completeDueHeap() {
	now := n.eng.Now()
	if n.cc != nil {
		n.advanceAll()
	}
	done := n.doneScratch[:0]
	h := &n.doneHeap
	for len(*h) > 0 {
		top := (*h)[0]
		if top.gen != top.f.doneGen {
			heap.Pop(h)
			continue
		}
		if top.at > now {
			break
		}
		heap.Pop(h)
		f := top.f
		n.advanceFlow(f, now)
		if drained(f) {
			done = append(done, f)
			continue
		}
		f.doneGen++
		t := now + sim.Time(f.Remaining/f.Rate)
		if t <= now {
			done = append(done, f) // residue below time resolution
			continue
		}
		heap.Push(h, doneEntry{at: t, id: f.ID, f: f, gen: f.doneGen})
	}
	n.doneScratch = done[:0]
	if len(done) == 0 {
		n.scheduleNextDoneHeap()
		return
	}
	n.finishFlows(done)
}

// maybeCompactDoneHeap drops accumulated stale entries once they dominate
// the heap, bounding memory under churn-heavy workloads.
func (n *Network) maybeCompactDoneHeap() {
	h := n.doneHeap
	if len(h) <= 4*len(n.flows)+64 {
		return
	}
	live := h[:0]
	for _, e := range h {
		if e.gen == e.f.doneGen {
			live = append(live, e)
		}
	}
	for i := len(live); i < len(h); i++ {
		h[i] = doneEntry{}
	}
	n.doneHeap = live
	heap.Init(&n.doneHeap)
}
