package flow

import (
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// This file is the incremental max-min solver. Three ideas replace the
// reference solver's per-settle full re-solve:
//
//  1. Persistent membership: chanFlows (channel -> flow slots, with O(1)
//     swap-remove via the pos arena) is maintained on Start/Cancel/
//     completion instead of being rebuilt from every active flow on every
//     settle.
//  2. Dirty-region re-solve: a settle re-rates only the connected region
//     of the flow/channel contention graph reachable from channels whose
//     membership changed. Distinct components share no channels, so the
//     global max-min allocation decomposes per component; re-solving the
//     touched components from scratch while keeping every other flow's
//     rate is exactly the global solution. When the dirty region spans
//     the whole network this degenerates into a full (heap-driven) solve.
//     The region is discovered segmented into its connected components,
//     which can be re-solved in parallel (solver_shard.go, DESIGN.md §12).
//  3. Heaps for both bottleneck selection (shareHeap over channel fair
//     shares, lazily invalidated by chanGen) and completion scheduling
//     (doneHeap over predicted finish times, lazily invalidated by
//     tab.doneGen), replacing the linear scans. Both heaps are hand-rolled
//     over value slices: container/heap's interface Push/Pop boxes every
//     entry, and at 100k-flow churn those boxes were most of the solver's
//     allocation bill.
//
// Determinism: region channels are initialized and frozen in an order
// fixed by (share, channel ID) with the epsilon tie-break, and flows on a
// bottleneck freeze in start (seq) order, so the float arithmetic — and
// therefore rates, XmitWait attribution and event timing — is
// reproducible.

// chanSlot is one entry of a channel's flow membership list; hop is the
// flow's path index for this channel, so a swap-remove can repair the
// moved flow's back-pointer in O(1). Pointer-free by design: membership
// lists are the largest live structure at scale and the GC never scans
// them.
type chanSlot struct {
	idx int32 // flow table slot
	hop int32 // index into the flow's path for this channel
}

// shareEntry is a (fair share, channel) candidate in the bottleneck heap;
// stale entries are recognized by gen != chanGen[c].
type shareEntry struct {
	share float64
	c     topo.ChannelID
	gen   uint32
}

// shareHeap is a hand-rolled min-heap of shareEntry values ordered by
// (share, channel ID).
type shareHeap []shareEntry

func (h shareHeap) less(i, j int) bool {
	if h[i].share != h[j].share {
		return h[i].share < h[j].share
	}
	return h[i].c < h[j].c
}

func (h *shareHeap) push(e shareEntry) {
	s := append(*h, e)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s.less(i, p) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

func (h *shareHeap) pop() shareEntry {
	s := *h
	e := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	s.down(0)
	return e
}

func (h shareHeap) down(i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func (h shareHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

// doneEntry is a predicted flow completion; stale entries are recognized
// by gen != tab.doneGen[idx] (freeSlot bumps doneGen, so entries for a
// slot's previous occupant can never fire against its current one). seq
// is the flow's start order, the deterministic tie-break for equal times.
type doneEntry struct {
	at  sim.Time
	seq uint64
	gen uint64
	idx int32
}

// doneHeap is a hand-rolled min-heap of doneEntry values ordered by
// (time, start order).
type doneHeap []doneEntry

func (h doneHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *doneHeap) push(e doneEntry) {
	s := append(*h, e)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s.less(i, p) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

func (h *doneHeap) pop() doneEntry {
	s := *h
	e := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	s.down(0)
	return e
}

func (h doneHeap) down(i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func (h doneHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

// ensureChanArrays grows the per-channel solver arrays to cover every
// capacity slot (AddNodeChannels appends after construction). Shared by
// both solvers: the incremental membership lists and the reference
// solver's dense scratch are parallel to caps.
func (n *Network) ensureChanArrays() {
	if len(n.chanFlows) >= len(n.caps) {
		return
	}
	grow := len(n.caps)
	for len(n.chanFlows) < grow {
		n.chanFlows = append(n.chanFlows, nil)
	}
	for len(n.refPerChan) < grow {
		n.refPerChan = append(n.refPerChan, nil)
	}
	n.dirtyStamp = append(n.dirtyStamp, make([]uint64, grow-len(n.dirtyStamp))...)
	n.regionStamp = append(n.regionStamp, make([]uint64, grow-len(n.regionStamp))...)
	n.residual = append(n.residual, make([]float64, grow-len(n.residual))...)
	n.unfrozenCnt = append(n.unfrozenCnt, make([]int32, grow-len(n.unfrozenCnt))...)
	n.chanGen = append(n.chanGen, make([]uint32, grow-len(n.chanGen))...)
	n.pushedGen = append(n.pushedGen, make([]uint32, grow-len(n.pushedGen))...)
	n.refStamp = append(n.refStamp, make([]uint64, grow-len(n.refStamp))...)
	n.refResidual = append(n.refResidual, make([]float64, grow-len(n.refResidual))...)
	n.refUnfrozen = append(n.refUnfrozen, make([]int32, grow-len(n.refUnfrozen))...)
}

// dirtyChan records a membership change on c for the next recompute.
func (n *Network) dirtyChan(c topo.ChannelID) {
	if n.dirtyStamp[c] == n.dirtyEpoch {
		return
	}
	n.dirtyStamp[c] = n.dirtyEpoch
	n.dirtyChans = append(n.dirtyChans, c)
}

// addMembership inserts the flow slot into the membership list of every
// channel it crosses, dirtying them.
func (n *Network) addMembership(idx int32) {
	t := &n.tab
	pos := t.pos(idx)
	for i, c := range t.path(idx) {
		pos[i] = int32(len(n.chanFlows[c]))
		n.chanFlows[c] = append(n.chanFlows[c], chanSlot{idx: idx, hop: int32(i)})
		n.dirtyChan(c)
	}
}

// removeMembership swap-removes the flow slot from its channels'
// membership lists, dirtying them.
func (n *Network) removeMembership(idx int32) {
	t := &n.tab
	pos := t.pos(idx)
	for i, c := range t.path(idx) {
		s := n.chanFlows[c]
		p := pos[i]
		last := int32(len(s) - 1)
		if p != last {
			moved := s[last]
			s[p] = moved
			t.posArena[t.pathOff[moved.idx]+moved.hop] = p
		}
		n.chanFlows[c] = s[:last]
		n.dirtyChan(c)
	}
}

// consumeDirty resets the dirty set for the next interval.
func (n *Network) consumeDirty() {
	n.dirtyChans = n.dirtyChans[:0]
	n.dirtyEpoch++
}

// recomputeIncremental re-solves the region of the contention graph
// touched by the dirty channels; flows outside it keep their rates. The
// region is discovered segmented into connected components
// (solver_shard.go), each component is progressively filled independently
// — in parallel when SetWorkers allows and the region is big enough — and
// the completion predictions are merged sequentially in (component root,
// start order) order, keeping the result bit-identical to the fully
// sequential solve at any worker count.
func (n *Network) recomputeIncremental() {
	n.Recomputes++
	if len(n.dirtyChans) == 0 {
		return
	}
	if n.Active() == 0 {
		n.consumeDirty()
		return
	}
	now := n.eng.Now()
	comps := n.discoverComponents()
	if len(comps) == 0 {
		return
	}
	// Integrate every region flow to now under its outgoing rate before
	// any re-rating: the region is exactly the set of flows whose rates
	// may change, so this closes their current piecewise-constant interval
	// (and credits it to the attached counters) while everyone outside the
	// region keeps integrating lazily. Done here, sequentially in
	// component-discovery order, so shard workers never write the shared
	// counter sums.
	t := &n.tab
	for ci := range comps {
		comp := &comps[ci]
		for _, idx := range n.regionFlows[comp.flowOff : comp.flowOff+comp.flowLen] {
			n.advanceFlow(idx, now)
		}
	}
	n.solveComponents(comps, now)
	// Merge: predict completions for every re-rated flow, sequentially in
	// ascending component-root order (the canonical order fixed by
	// discoverComponents), flows in discovery order within a component —
	// the same total order the unsharded solve produced.
	for ci := range comps {
		comp := &comps[ci]
		for _, idx := range n.regionFlows[comp.flowOff : comp.flowOff+comp.flowLen] {
			n.checkRate(idx)
			t.doneGen[idx]++
			n.doneHeap.push(doneEntry{
				at:  now + sim.Time(t.remaining[idx]/t.rate[idx]),
				seq: t.seq[idx],
				gen: t.doneGen[idx],
				idx: idx,
			})
		}
	}
	n.maybeCompactDoneHeap()
}

// scheduleNextDoneHeap points the completion event at the earliest live
// prediction.
func (n *Network) scheduleNextDoneHeap() {
	h := &n.doneHeap
	for len(*h) > 0 && (*h)[0].gen != n.tab.doneGen[(*h)[0].idx] {
		h.pop()
	}
	if len(*h) == 0 {
		n.cancelDoneEv()
		return
	}
	n.scheduleDoneAt((*h)[0].at)
}

// completeDueHeap finishes every flow whose live prediction has come due.
// A popped flow whose remaining bytes have not in fact drained (float
// drift between the prediction and the integration) is re-queued at a
// corrected, strictly-future time, guaranteeing progress.
func (n *Network) completeDueHeap() {
	now := n.eng.Now()
	t := &n.tab
	done := n.doneScratch[:0]
	h := &n.doneHeap
	for len(*h) > 0 {
		top := (*h)[0]
		if top.gen != t.doneGen[top.idx] {
			h.pop()
			continue
		}
		if top.at > now {
			break
		}
		h.pop()
		idx := top.idx
		n.advanceFlow(idx, now)
		if n.drained(idx) {
			done = append(done, idx)
			continue
		}
		t.doneGen[idx]++
		at := now + sim.Time(t.remaining[idx]/t.rate[idx])
		if at <= now {
			done = append(done, idx) // residue below time resolution
			continue
		}
		h.push(doneEntry{at: at, seq: t.seq[idx], gen: t.doneGen[idx], idx: idx})
	}
	n.doneScratch = done[:0]
	if len(done) == 0 {
		n.scheduleNextDoneHeap()
		return
	}
	n.finishFlows(done)
}

// maybeCompactDoneHeap drops accumulated stale entries once they dominate
// the heap, bounding memory under churn-heavy workloads.
func (n *Network) maybeCompactDoneHeap() {
	h := n.doneHeap
	if len(h) <= 4*n.Active()+64 {
		return
	}
	live := h[:0]
	for _, e := range h {
		if e.gen == n.tab.doneGen[e.idx] {
			live = append(live, e)
		}
	}
	n.doneHeap = live
	n.doneHeap.init()
}
