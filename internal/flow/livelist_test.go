package flow

import (
	"testing"

	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/telemetry"
	"github.com/hpcsim/t2hx/internal/topo"
)

// TestLiveListStaysDenseUnderChurn is the O(live) regression test for the
// whole-table walks (advanceAll, the reference solver's scans): they
// iterate tab.liveList, so their cost is the number of LIVE flows, not the
// table's high-water capacity. Before the live list, `range t.live` walked
// capacity — on this churned table (100k slots allocated, 1k still live)
// every counter-attached Start/Cancel paid a 100k-slot scan for 1k flows.
func TestLiveListStaysDenseUnderChurn(t *testing.T) {
	hx := topo.NewHyperX(topo.HyperXConfig{S: []int{2, 2}, T: 1, Bandwidth: 1e9, Latency: 0})
	eng := sim.NewEngine()
	net := NewNetwork(eng, hx.Graph)
	net.SetCounters(telemetry.NewChannelCounters(hx.Graph))
	path := []topo.ChannelID{hx.Graph.Links[0].Channel(hx.Graph.Links[0].A)}

	const total = 100_000
	const keep = 1_000
	ids := make([]FlowID, total)
	for i := range ids {
		ids[i] = net.Start(path, 1e12, func(sim.Time) {})
	}
	eng.Step() // settle: all 100k rated
	for i, id := range ids {
		if i%(total/keep) != 0 {
			net.Cancel(id)
		}
	}
	eng.Step() // settle the survivors at t=0; nothing has completed yet

	tab := &net.tab
	if len(tab.gen) < total {
		t.Fatalf("table capacity %d, want >= %d (churn did not grow the arena)", len(tab.gen), total)
	}
	if tab.liveCount != keep {
		t.Fatalf("liveCount = %d, want %d", tab.liveCount, keep)
	}
	// The walk-length claim: every whole-table iteration ranges over
	// liveList, whose length is the live count — not table capacity.
	if len(tab.liveList) != keep {
		t.Fatalf("len(liveList) = %d, want %d (walks must be O(live), capacity is %d)",
			len(tab.liveList), keep, len(tab.gen))
	}
	// Consistency: liveList/livePos are mutually inverse, entries are live,
	// and every live slot appears exactly once.
	liveFlags := 0
	for idx := range tab.live {
		if tab.live[idx] {
			liveFlags++
			p := tab.livePos[idx]
			if p < 0 || int(p) >= len(tab.liveList) || tab.liveList[p] != int32(idx) {
				t.Fatalf("live slot %d has broken livePos %d", idx, p)
			}
		} else if tab.livePos[idx] != -1 {
			t.Fatalf("free slot %d has livePos %d, want -1", idx, tab.livePos[idx])
		}
	}
	if liveFlags != keep {
		t.Fatalf("live flags count %d, want %d", liveFlags, keep)
	}
	for p, idx := range tab.liveList {
		if !tab.live[idx] {
			t.Fatalf("liveList[%d] = %d is not live", p, idx)
		}
	}
}

// TestAdvanceAllWalksOnlyLive pins the behavioral side: after churn,
// advanceAll must move the integration frontier (tab.last) of live flows
// only — freed slots keep their stale frontier, proving they were not
// visited.
func TestAdvanceAllWalksOnlyLive(t *testing.T) {
	hx := topo.NewHyperX(topo.HyperXConfig{S: []int{2, 2}, T: 1, Bandwidth: 1e9, Latency: 0})
	eng := sim.NewEngine()
	net := NewNetwork(eng, hx.Graph)
	net.SetCounters(telemetry.NewChannelCounters(hx.Graph))
	path := []topo.ChannelID{hx.Graph.Links[0].Channel(hx.Graph.Links[0].A)}

	var ids []FlowID
	for i := 0; i < 64; i++ {
		ids = append(ids, net.Start(path, 1e12, func(sim.Time) {}))
	}
	eng.Step() // settle at t=0
	for i, id := range ids {
		if i%2 == 0 {
			net.Cancel(id)
		}
	}
	eng.RunUntil(1.0) // settle at t=0, then advance the clock only
	net.FlushCounters()
	tab := &net.tab
	for i, id := range ids {
		idx := Index(id)
		if i%2 == 0 {
			if tab.last[idx] != 0 {
				t.Fatalf("freed slot %d was advanced to %v (walk touched a dead slot)", idx, tab.last[idx])
			}
		} else if tab.last[idx] != 1.0 {
			t.Fatalf("live slot %d stuck at frontier %v, want 1.0", idx, tab.last[idx])
		}
	}
}
