package flow

import (
	"math"
	"testing"

	"github.com/hpcsim/t2hx/internal/sim"
)

// This file tests the handle contract of the arena/SoA flow table
// (table.go): slot reuse bumps the generation, stale handles are detected
// rather than corrupting the recycled slot, and zero-size flows get the
// same guarantees as positive-size ones.

// TestHandleReuseBumpsGeneration: cancelling a flow and starting another
// recycles the slot (LIFO free list) under a strictly newer generation,
// so the two handles never compare equal.
func TestHandleReuseBumpsGeneration(t *testing.T) {
	forEachSolver(t, func(t *testing.T, s Solver) {
		g, fwd, _ := lineGraph(1000)
		e := sim.NewEngine()
		n := NewNetwork(e, g)
		n.SetSolver(s)
		idA := n.Start(fwd, 100, func(sim.Time) {})
		n.Cancel(idA)
		idB := n.Start(fwd, 100, func(sim.Time) {})
		if Index(idA) != Index(idB) {
			t.Fatalf("LIFO free list did not recycle the slot: idx %d then %d",
				Index(idA), Index(idB))
		}
		if idA == idB {
			t.Fatal("recycled slot issued the same handle twice")
		}
		if handleGen(idB) != handleGen(idA)+1 {
			t.Errorf("generation %d -> %d, want +1", handleGen(idA), handleGen(idB))
		}
		if idB <= 0 {
			t.Errorf("handle %d not positive", idB)
		}
		e.Run()
	})
}

// TestStaleCancelDetected: a Cancel carrying a dead flow's handle must
// not tear down the slot's current occupant, and must be counted in
// StaleCancels; handles that were never issued count as unknown, not
// stale.
func TestStaleCancelDetected(t *testing.T) {
	forEachSolver(t, func(t *testing.T, s Solver) {
		g, fwd, _ := lineGraph(1000)
		e := sim.NewEngine()
		n := NewNetwork(e, g)
		n.SetSolver(s)
		idA := n.Start(fwd, 100, func(sim.Time) { t.Error("cancelled flow fired") })
		n.Cancel(idA)
		var doneB sim.Time = -1
		idB := n.Start(fwd, 100, func(at sim.Time) { doneB = at })
		if Index(idA) != Index(idB) {
			t.Fatalf("expected slot reuse, got idx %d then %d", Index(idA), Index(idB))
		}
		n.Cancel(idA) // stale: must not touch B
		if n.StaleCancels != 1 {
			t.Errorf("StaleCancels = %d after stale cancel, want 1", n.StaleCancels)
		}
		n.Cancel(FlowID(0))  // never-issued sentinel: unknown, not stale
		n.Cancel(FlowID(-1)) // negative: unknown, not stale
		if n.StaleCancels != 1 {
			t.Errorf("StaleCancels = %d after unknown-ID cancels, want 1", n.StaleCancels)
		}
		e.Run()
		if math.Abs(float64(doneB)-0.1) > 1e-9 {
			t.Errorf("B done at %v, want 0.1 — stale cancel corrupted the recycled slot", doneB)
		}
		// B completed; its handle is now stale too.
		n.Cancel(idB)
		if n.StaleCancels != 2 {
			t.Errorf("StaleCancels = %d after post-completion cancel, want 2", n.StaleCancels)
		}
	})
}

// TestStaleDoneEntriesCannotFire: the incremental solver's completion
// heap holds predictions for flows that may die and have their slot
// recycled before the prediction comes due; the recycled occupant must
// complete on its own schedule, exactly once.
func TestStaleDoneEntriesCannotFire(t *testing.T) {
	g, fwd, _ := lineGraph(1000)
	e := sim.NewEngine()
	n := NewNetwork(e, g)
	n.SetSolver(SolverIncremental)
	// A would complete at t=0.1; cancel it at t=0.05 and recycle its slot
	// into B, which completes at t=0.05+1.0. The heap still holds A's
	// t=0.1 prediction pointing at the slot.
	idA := n.Start(fwd, 100, func(sim.Time) { t.Error("cancelled flow fired") })
	var doneB sim.Time = -1
	doneBCount := 0
	e.Schedule(0.05, func(*sim.Engine) {
		n.Cancel(idA)
		idB := n.Start(fwd, 1000, func(at sim.Time) { doneB = at; doneBCount++ })
		if Index(idB) != Index(idA) {
			t.Fatalf("expected slot reuse, got idx %d then %d", Index(idA), Index(idB))
		}
	})
	e.Run()
	if doneBCount != 1 {
		t.Fatalf("B completed %d times, want exactly 1", doneBCount)
	}
	if math.Abs(float64(doneB)-1.05) > 1e-9 {
		t.Errorf("B done at %v, want 1.05 — a stale heap entry fired the recycled slot", doneB)
	}
}

// TestZeroSizeHandleSafety: zero-size flows live in the same table, so
// their handles get the same reuse/staleness guarantees — a cancelled
// zero-size flow's recycled slot must not be reachable through the old
// handle, whichever flavor of flow recycles it.
func TestZeroSizeHandleSafety(t *testing.T) {
	forEachSolver(t, func(t *testing.T, s Solver) {
		g, fwd, _ := lineGraph(1000)
		e := sim.NewEngine()
		n := NewNetwork(e, g)
		n.SetSolver(s)
		idZ := n.Start(nil, 0, func(sim.Time) { t.Error("cancelled zero-size flow fired") })
		n.Cancel(idZ)
		// The slot recycles into a positive-size flow.
		var done sim.Time = -1
		idB := n.Start(fwd, 100, func(at sim.Time) { done = at })
		if Index(idB) != Index(idZ) || idB == idZ {
			t.Fatalf("want recycled slot under new generation: %v then %v", idZ, idB)
		}
		n.Cancel(idZ) // stale — must not cancel B
		if n.StaleCancels != 1 {
			t.Errorf("StaleCancels = %d, want 1", n.StaleCancels)
		}
		e.Run()
		if math.Abs(float64(done)-0.1) > 1e-9 {
			t.Errorf("B done at %v, want 0.1", done)
		}
		// And the other direction: a zero-size flow recycling a positive
		// flow's slot stays cancellable through its own fresh handle.
		idC := n.Start(nil, 0, func(sim.Time) { t.Error("cancelled zero-size flow fired") })
		if Index(idC) != Index(idB) || idC == idB {
			t.Fatalf("want recycled slot under new generation: %v then %v", idB, idC)
		}
		n.Cancel(idC)
		e.Run()
		if n.Active() != 0 || n.tab.liveCount != 0 {
			t.Errorf("Active() = %d, liveCount = %d after drain, want 0, 0",
				n.Active(), n.tab.liveCount)
		}
	})
}

// TestPathArenaSpanReuse: steady churn over a fixed path length must
// converge the arena instead of growing it per Start — the slot's span
// is reused whenever the new path fits.
func TestPathArenaSpanReuse(t *testing.T) {
	g, fwd, _ := lineGraph(1000)
	e := sim.NewEngine()
	n := NewNetwork(e, g)
	n.SetSolver(SolverIncremental)
	id := n.Start(fwd, 1e12, func(sim.Time) {})
	arenaLen := len(n.tab.arena)
	for i := 0; i < 100; i++ {
		n.Cancel(id)
		id = n.Start(fwd, 1e12, func(sim.Time) {})
	}
	if len(n.tab.arena) != arenaLen {
		t.Errorf("arena grew from %d to %d under fixed-length churn",
			arenaLen, len(n.tab.arena))
	}
	n.Cancel(id)
	e.Run()
}
