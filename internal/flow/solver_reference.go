package flow

import (
	"math"

	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// This file is the reference max-min solver: the original full
// progressive-filling implementation, O(active flows × touched channels)
// per settle. It is kept as the oracle the incremental solver is
// property-tested against (TestSolversAgree) and as the baseline of the
// solver microbench (BenchmarkSolverChurn); build with `-tags flowref`
// to make it the package default.

// recomputeReference performs progressive filling from scratch:
// repeatedly find the channel with the smallest fair share among unfrozen
// flows, freeze its flows at that rate, reduce residual capacities, and
// continue until every flow is frozen.
func (n *Network) recomputeReference() {
	n.Recomputes++
	if len(n.flows) == 0 {
		return
	}
	// Build channel -> flows index (only channels actually used).
	for c := range n.perChanFlows {
		delete(n.perChanFlows, c)
	}
	for _, f := range n.flows {
		f.Rate = -1 // unfrozen
		for _, c := range f.Path {
			n.perChanFlows[c] = append(n.perChanFlows[c], f)
		}
	}
	residual := make(map[topo.ChannelID]float64, len(n.perChanFlows))
	unfrozen := make(map[topo.ChannelID]int, len(n.perChanFlows))
	for c, fs := range n.perChanFlows {
		residual[c] = n.caps[c]
		unfrozen[c] = len(fs)
		if n.cc != nil {
			n.cc.NoteActive(c, len(fs))
		}
	}
	remaining := len(n.flows)
	for remaining > 0 {
		// Bottleneck channel: minimal residual/unfrozen, epsilon-equal
		// shares resolved toward the smallest channel ID.
		var bott topo.ChannelID
		share := math.Inf(1)
		found := false
		for c, u := range unfrozen {
			if u == 0 {
				continue
			}
			s := residual[c] / float64(u)
			switch {
			case !found:
				share, bott, found = s, c, true
			case sharesEqual(s, share):
				if c < bott {
					share, bott = s, c
				}
			case s < share:
				share, bott = s, c
			}
		}
		if !found {
			panic("flow: unfrozen flows but no bottleneck channel")
		}
		// Freeze every unfrozen flow crossing the bottleneck.
		for _, f := range n.perChanFlows[bott] {
			if f.Rate >= 0 {
				continue
			}
			f.Rate = share
			f.bott = bott
			remaining--
			for _, c := range f.Path {
				residual[c] -= share
				if residual[c] < 0 {
					residual[c] = 0
				}
				unfrozen[c]--
			}
		}
	}
}

// scheduleNextDoneScan finds the earliest completing flow(s) by a linear
// scan and schedules the completion event.
func (n *Network) scheduleNextDoneScan() {
	if len(n.flows) == 0 {
		n.cancelDoneEv()
		return
	}
	soonest := sim.Infinity
	for _, f := range n.flows {
		checkRate(f)
		t := n.eng.Now() + sim.Time(f.Remaining/f.Rate)
		if t < soonest {
			soonest = t
		}
	}
	n.scheduleDoneAt(soonest)
}

// completeDueScan finishes every drained flow found by a full scan.
func (n *Network) completeDueScan() {
	n.advanceAll()
	var done []*Flow
	for _, f := range n.flows {
		if drained(f) {
			done = append(done, f)
		}
	}
	if len(done) == 0 {
		// Numerical guard: re-schedule.
		n.markDirty()
		return
	}
	n.finishFlows(done)
}
