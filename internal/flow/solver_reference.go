package flow

import (
	"math"

	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// This file is the reference max-min solver: the original full
// progressive-filling implementation, O(active flows × touched channels)
// per settle. It is kept as the oracle the incremental solver is
// property-tested against (TestSolverEquivalenceProperty) and as the
// baseline of the solver microbench (BenchmarkSolverChurn); build with
// `-tags flowref` to make it the package default.
//
// The per-settle channel index is rebuilt straight from the SoA table
// into dense epoch-stamped scratch (refPerChan/refResidual/refUnfrozen,
// validated by refStamp against refEpoch): no maps, no per-settle
// allocation, and no re-boxing of flow state — which is what keeps
// flowref property runs within memory of CI runners even though the
// algorithm itself stays deliberately naive.

// recomputeReference performs progressive filling from scratch:
// repeatedly find the channel with the smallest fair share among unfrozen
// flows, freeze its flows at that rate, reduce residual capacities, and
// continue until every flow is frozen.
func (n *Network) recomputeReference() {
	n.Recomputes++
	remaining := n.Active()
	if remaining == 0 {
		return
	}
	n.ensureChanArrays()
	t := &n.tab
	// Rebuild the channel -> flows index for channels actually used,
	// initializing each channel's scratch on first touch this epoch. The
	// dense live list is walked (O(live), not O(capacity)); its order is
	// event-driven and thus deterministic, and progressive filling is
	// order-independent anyway — epsilon-equal bottlenecks resolve toward
	// the smallest channel ID and every flow frozen on a bottleneck
	// subtracts the identical share.
	n.refEpoch++
	ep := n.refEpoch
	touched := n.refTouched[:0]
	for _, idx := range t.liveList {
		if t.zeroEv[idx] != 0 {
			continue
		}
		t.rate[idx] = -1 // unfrozen
		for _, c := range t.path(idx) {
			if n.refStamp[c] != ep {
				n.refStamp[c] = ep
				n.refPerChan[c] = n.refPerChan[c][:0]
				n.refResidual[c] = n.caps[c]
				n.refUnfrozen[c] = 0
				touched = append(touched, c)
			}
			n.refPerChan[c] = append(n.refPerChan[c], idx)
			n.refUnfrozen[c]++
		}
	}
	n.refTouched = touched
	if n.cc != nil {
		for _, c := range touched {
			n.cc.NoteActive(c, len(n.refPerChan[c]))
		}
	}
	for remaining > 0 {
		// Bottleneck channel: minimal residual/unfrozen, epsilon-equal
		// shares resolved toward the smallest channel ID.
		var bott topo.ChannelID
		share := math.Inf(1)
		found := false
		for _, c := range touched {
			u := n.refUnfrozen[c]
			if u == 0 {
				continue
			}
			s := n.refResidual[c] / float64(u)
			switch {
			case !found:
				share, bott, found = s, c, true
			case sharesEqual(s, share):
				if c < bott {
					share, bott = s, c
				}
			case s < share:
				share, bott = s, c
			}
		}
		if !found {
			panic("flow: unfrozen flows but no bottleneck channel")
		}
		// Freeze every unfrozen flow crossing the bottleneck.
		for _, idx := range n.refPerChan[bott] {
			if t.rate[idx] >= 0 {
				continue
			}
			t.rate[idx] = share
			t.bott[idx] = bott
			remaining--
			for _, c := range t.path(idx) {
				n.refResidual[c] -= share
				if n.refResidual[c] < 0 {
					n.refResidual[c] = 0
				}
				n.refUnfrozen[c]--
			}
		}
	}
}

// scheduleNextDoneScan finds the earliest completing flow(s) by a linear
// scan and schedules the completion event.
func (n *Network) scheduleNextDoneScan() {
	if n.Active() == 0 {
		n.cancelDoneEv()
		return
	}
	t := &n.tab
	now := n.eng.Now()
	soonest := sim.Infinity
	for _, idx := range t.liveList {
		if t.zeroEv[idx] != 0 {
			continue
		}
		n.checkRate(idx)
		at := now + sim.Time(t.remaining[idx]/t.rate[idx])
		if at < soonest {
			soonest = at
		}
	}
	n.scheduleDoneAt(soonest)
}

// completeDueScan finishes every drained flow found by a full scan.
func (n *Network) completeDueScan() {
	n.advanceAll()
	t := &n.tab
	done := n.doneScratch[:0]
	for _, idx := range t.liveList {
		if t.zeroEv[idx] == 0 && n.drained(idx) {
			done = append(done, idx)
		}
	}
	n.doneScratch = done[:0]
	if len(done) == 0 {
		// Numerical guard: re-schedule.
		n.markDirty()
		return
	}
	n.finishFlows(done)
}
