// Package flow implements a flow-level network simulator with max-min fair
// bandwidth sharing: each active message transfer is a flow over a fixed
// channel path, and the rates of all concurrent flows are the max-min fair
// allocation under per-channel capacities (progressive filling). This is
// the standard fidelity/performance trade-off for studying link contention
// at the paper's scale (672 nodes, up to 4 MiB messages): the central
// phenomenon — many flows squeezed onto one QDR cable — is modelled
// exactly, while per-packet effects are folded into latency and overhead
// terms handled by internal/fabric.
//
// Two solvers compute the allocation (DESIGN.md §7):
//
//   - SolverIncremental (the default): a min-heap over channel fair
//     shares replaces the linear bottleneck scan, and each settle
//     re-solves only the connected region of the flow/channel contention
//     graph reachable from the channels whose flow membership actually
//     changed. Because distinct components of that graph share no
//     channels, the restricted re-solve is exactly the global max-min
//     allocation; when the dirty region spans the whole network it
//     degenerates into a (heap-driven) full solve.
//   - SolverReference: the original O(active flows × touched channels)
//     progressive filling, kept as the oracle the incremental solver is
//     property-tested against. Build with `-tags flowref` to make it the
//     default.
package flow

import (
	"fmt"
	"math"
	"sort"

	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/telemetry"
	"github.com/hpcsim/t2hx/internal/topo"
)

// FlowID identifies an active flow.
type FlowID int64

// Flow is one in-flight message transfer.
type Flow struct {
	ID        FlowID
	Path      []topo.ChannelID
	Remaining float64 // bytes left to transfer
	Rate      float64 // current bytes/second (max-min share)
	OnDone    func(at sim.Time)

	// solo is the flow's bottleneck-free rate (min capacity along the
	// path) and bott the channel progressive filling froze it at — the
	// IB-counter bookkeeping, maintained only when counters are attached.
	solo float64
	bott topo.ChannelID

	// last is the flow's integration frontier: Remaining is exact as of
	// this time. With counters attached every flow advances in lockstep
	// (the exact-integration contract); without, flows advance lazily so
	// a partial recompute never pays for flows outside its region.
	last sim.Time
	// pos[i] is the flow's slot index in Network.chanFlows[Path[i]]
	// (incremental solver only; enables O(1) membership removal).
	pos []int32
	// mark is the region-BFS epoch stamp (incremental solver).
	mark uint64
	// doneGen invalidates stale completion-heap entries: an entry is live
	// only while its recorded generation matches.
	doneGen uint64
}

// Solver selects the max-min rate computation strategy.
type Solver uint8

const (
	// SolverIncremental is the heap + dirty-region solver.
	SolverIncremental Solver = iota
	// SolverReference is the original full progressive-filling scan.
	SolverReference
)

// Network simulates concurrent flows over a topology's directed channels.
type Network struct {
	eng  *sim.Engine
	caps []float64 // per-channel capacity (bytes/s)

	flows  map[FlowID]*Flow
	nextID FlowID

	dirty    bool
	settleEv *sim.Event
	doneEv   *sim.Event

	solver Solver

	// zeroPending tracks the same-instant completion events of zero-size
	// flows so Cancel honors its contract ("aborts a flow without firing
	// its callback") for them too.
	zeroPending map[FlowID]*sim.Event

	// Recomputes counts rate recomputations (for ablation benchmarks).
	Recomputes uint64
	// perChanFlows is the reference solver's scratch index, rebuilt from
	// scratch on every recompute (that full rebuild is precisely what the
	// incremental solver's persistent membership avoids).
	perChanFlows map[topo.ChannelID][]*Flow

	// --- incremental solver state (see solver_incremental.go) ---

	// chanFlows is the persistent channel -> flow membership, parallel to
	// caps; maintained on Start/Cancel/completion instead of rebuilt per
	// recompute.
	chanFlows [][]chanSlot
	// dirtyChans lists channels whose membership changed since the last
	// recompute; dirtyStamp dedupes against dirtyEpoch.
	dirtyChans []topo.ChannelID
	dirtyStamp []uint64
	dirtyEpoch uint64
	// epoch stamps region discovery (regionStamp per channel, Flow.mark
	// per flow) so no per-solve clearing is needed.
	epoch       uint64
	regionStamp []uint64
	// Per-channel progressive-filling state, valid only for channels
	// stamped in the current solve.
	residual    []float64
	unfrozenCnt []int32
	chanGen     []uint32
	pushedGen   []uint32
	// Scratch reused across solves.
	shareHeap   shareHeap
	tieScratch  []shareEntry
	regionChans []topo.ChannelID
	regionFlows []*Flow
	freeze      []*Flow
	doneScratch []*Flow
	// doneHeap orders predicted completion times; entries invalidate
	// lazily via Flow.doneGen.
	doneHeap doneHeap

	// cc receives IB-style per-channel counters, fed exactly on every
	// advance/recompute interval; nil (the default) costs one pointer
	// check per hot-path operation.
	cc *telemetry.ChannelCounters
}

// NewNetwork builds a flow network over g's channels, driven by eng. The
// solver defaults to SolverIncremental (SolverReference under the flowref
// build tag); use SetSolver before starting traffic to override.
func NewNetwork(eng *sim.Engine, g *topo.Graph) *Network {
	n := &Network{
		eng:          eng,
		caps:         make([]float64, 2*len(g.Links)),
		flows:        make(map[FlowID]*Flow),
		perChanFlows: make(map[topo.ChannelID][]*Flow),
		zeroPending:  make(map[FlowID]*sim.Event),
		nextID:       1,
		solver:       defaultSolver,
		dirtyEpoch:   1,
	}
	for _, l := range g.Links {
		n.caps[2*l.ID] = l.Bandwidth
		n.caps[2*l.ID+1] = l.Bandwidth
	}
	return n
}

// SetSolver selects the rate solver. It must be called before any flow
// starts: the two solvers keep different bookkeeping, so switching with
// active flows panics.
func (n *Network) SetSolver(s Solver) {
	if len(n.flows) != 0 {
		panic("flow: SetSolver with active flows")
	}
	n.solver = s
}

// SolverKind reports the active solver.
func (n *Network) SolverKind() Solver { return n.solver }

// AddNodeChannels appends count virtual channels of the given capacity and
// returns the ID of the first one. The fabric layer uses these to model
// per-node aggregate (PCIe/HCA) bandwidth limits shared between a node's
// concurrent sends and receives — the reason a QDR HCA never moves
// 2x 3.2 GiB/s even though the wire is full duplex.
func (n *Network) AddNodeChannels(count int, capacity float64) topo.ChannelID {
	first := topo.ChannelID(len(n.caps))
	for i := 0; i < count; i++ {
		n.caps = append(n.caps, capacity)
	}
	return first
}

// SetCounters attaches an IB-style counter set. Pass nil to detach. With
// counters attached, every advance() interval credits each flow's moved
// bytes to its channels (XmitData) and its stalled-time fraction to its
// bottleneck channel (XmitWait), so the counters integrate the exact
// piecewise-constant rate trajectory the max-min model computes.
func (n *Network) SetCounters(cc *telemetry.ChannelCounters) { n.cc = cc }

// Active reports the number of in-flight flows (zero-size flows, which
// complete at the current instant, are not counted).
func (n *Network) Active() int { return len(n.flows) }

// Start begins transferring size bytes along path; onDone fires when the
// last byte has been put on the wire. Zero/negative sizes complete at the
// current time but still return a live FlowID: cancelling it before the
// same-instant completion event fires suppresses the callback, per the
// Cancel contract. The path must be non-empty for positive sizes.
func (n *Network) Start(path []topo.ChannelID, size float64, onDone func(at sim.Time)) FlowID {
	id := n.nextID
	n.nextID++
	if size <= 0 {
		ev := n.eng.After(0, func(e *sim.Engine) {
			delete(n.zeroPending, id)
			onDone(e.Now())
		})
		n.zeroPending[id] = ev
		return id
	}
	if len(path) == 0 {
		panic("flow: positive-size flow with empty path")
	}
	if n.cc != nil || n.solver == SolverReference {
		n.advanceAll()
	}
	f := &Flow{ID: id, Path: path, Remaining: size, OnDone: onDone, last: n.eng.Now()}
	if n.cc != nil {
		f.solo = math.Inf(1)
		for _, c := range path {
			if n.caps[c] < f.solo {
				f.solo = n.caps[c]
			}
		}
	}
	n.flows[id] = f
	if n.solver == SolverIncremental {
		n.addMembership(f)
	}
	n.markDirty()
	return id
}

// Cancel aborts a flow without firing its callback. Unknown IDs are
// ignored. The partial bytes a cancelled flow moved before this instant
// stay credited to the attached counters — that is what keeps the
// bytes×hops conservation identity exact under mid-flight teardown.
func (n *Network) Cancel(id FlowID) {
	if ev, ok := n.zeroPending[id]; ok {
		n.eng.Cancel(ev)
		delete(n.zeroPending, id)
		return
	}
	f, ok := n.flows[id]
	if !ok {
		return
	}
	if n.cc != nil || n.solver == SolverReference {
		n.advanceAll()
	}
	n.removeFlow(f)
	n.markDirty()
}

// removeFlow detaches a flow from every solver structure; the caller has
// already integrated its transferred bytes up to now.
func (n *Network) removeFlow(f *Flow) {
	if n.solver == SolverIncremental {
		n.removeMembership(f)
	}
	f.doneGen++ // invalidate any completion-heap entry
	delete(n.flows, f.ID)
}

// advanceFlow integrates one flow's transferred bytes up to now. Rates
// are piecewise-constant between recomputes, so crediting rate*dt per
// interval makes the attached counters exact rather than sampled
// approximations.
func (n *Network) advanceFlow(f *Flow, now sim.Time) {
	dt := float64(now - f.last)
	if dt > 0 {
		moved := f.Rate * dt
		f.Remaining -= moved
		if n.cc != nil {
			for _, c := range f.Path {
				n.cc.AddXmit(c, moved)
			}
			if f.solo > 0 && f.Rate < f.solo {
				// The flow spent this interval below its bottleneck-free
				// rate: charge the stalled fraction to the channel that
				// froze it — the PortXmitWait analogue.
				n.cc.AddWait(f.bott, sim.Duration(dt*(1-f.Rate/f.solo)))
			}
		}
	}
	f.last = now
}

// advanceAll integrates every flow up to the current time. Mandatory with
// counters attached (the integrals must cover every interval); the
// incremental solver otherwise advances lazily per flow.
func (n *Network) advanceAll() {
	now := n.eng.Now()
	for _, f := range n.flows {
		n.advanceFlow(f, now)
	}
}

// markDirty schedules a same-instant settle event that recomputes rates
// once, no matter how many flows were added/removed at this instant.
func (n *Network) markDirty() {
	n.dirty = true
	if n.settleEv == nil {
		n.settleEv = n.eng.After(0, func(*sim.Engine) {
			n.settleEv = nil
			n.settle()
		})
	}
}

// settle recomputes the max-min fair rates and schedules the next
// completion.
func (n *Network) settle() {
	if !n.dirty {
		return
	}
	n.dirty = false
	if n.solver == SolverReference {
		n.advanceAll()
		n.recomputeReference()
		n.scheduleNextDoneScan()
		return
	}
	if n.cc != nil {
		n.advanceAll()
	}
	n.recomputeIncremental()
	n.scheduleNextDoneHeap()
}

// completeDue finishes every flow whose remaining bytes have drained
// (within a relative epsilon to absorb float error), fires callbacks, and
// settles.
func (n *Network) completeDue() {
	if n.solver == SolverReference {
		n.completeDueScan()
		return
	}
	n.completeDueHeap()
}

// drained reports whether a flow's remaining bytes are within float noise
// of zero.
func drained(f *Flow) bool {
	return f.Remaining <= f.Rate*1e-12+1e-6
}

// finishFlows removes the done flows (crediting the float-integration
// residue so bytes×hops conservation holds exactly), re-settles, and
// fires the callbacks in deterministic ID order.
func (n *Network) finishFlows(done []*Flow) {
	sort.Slice(done, func(i, j int) bool { return done[i].ID < done[j].ID })
	for _, f := range done {
		if n.cc != nil {
			// Round the attributed bytes to exactly the flow's size: the
			// epsilon left in Remaining (either sign) is what the float
			// integration missed, and crediting it here is what makes the
			// bytes x hops conservation identity hold exactly.
			for _, c := range f.Path {
				n.cc.AddXmit(c, f.Remaining)
			}
		}
		n.removeFlow(f)
	}
	n.markDirty()
	now := n.eng.Now()
	for _, f := range done {
		f.OnDone(now)
	}
}

// scheduleDoneAt points the completion event at t, reusing the queued
// event when possible.
func (n *Network) scheduleDoneAt(t sim.Time) {
	if n.doneEv != nil && n.eng.Reschedule(n.doneEv, t) {
		return
	}
	n.doneEv = n.eng.Schedule(t, func(*sim.Engine) {
		n.doneEv = nil
		n.completeDue()
	})
}

// cancelDoneEv drops the pending completion event, if any.
func (n *Network) cancelDoneEv() {
	if n.doneEv != nil {
		n.eng.Cancel(n.doneEv)
		n.doneEv = nil
	}
}

// shareEps is the relative tolerance under which two channel fair shares
// count as equal. Mathematically-equal shares computed in different
// orders can differ in the last ulp; comparing exactly would make the
// frozen-channel choice (and thus XmitWait attribution) depend on
// summation order, i.e. nondeterministic across platforms. Within the
// tolerance the smallest channel ID wins.
const shareEps = 1e-9

// sharesEqual is the epsilon-tolerant share comparison.
func sharesEqual(a, b float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	return d <= shareEps*m
}

// checkRate guards the solver invariant that every settled flow moves.
func checkRate(f *Flow) {
	if f.Rate <= 0 {
		panic(fmt.Sprintf("flow %d has rate %v", f.ID, f.Rate))
	}
}
