// Package flow implements a flow-level network simulator with max-min fair
// bandwidth sharing: each active message transfer is a flow over a fixed
// channel path, and the rates of all concurrent flows are the max-min fair
// allocation under per-channel capacities (progressive filling). This is
// the standard fidelity/performance trade-off for studying link contention
// at the paper's scale (672 nodes, up to 4 MiB messages): the central
// phenomenon — many flows squeezed onto one QDR cable — is modelled
// exactly, while per-packet effects are folded into latency and overhead
// terms handled by internal/fabric.
//
// Flow state lives in an arena/SoA table (table.go, DESIGN.md §11): dense
// parallel slices indexed by the slot half of a generation-tagged FlowID
// handle, with paths in a shared arena. At AI scale (≥32k terminals,
// millions of flows per run) this keeps steady-state churn allocation-free
// and gives the GC nothing to trace.
//
// Two solvers compute the allocation (DESIGN.md §7):
//
//   - SolverIncremental (the default): a min-heap over channel fair
//     shares replaces the linear bottleneck scan, and each settle
//     re-solves only the connected region of the flow/channel contention
//     graph reachable from the channels whose flow membership actually
//     changed. Because distinct components of that graph share no
//     channels, the restricted re-solve is exactly the global max-min
//     allocation; when the dirty region spans the whole network it
//     degenerates into a (heap-driven) full solve.
//   - SolverReference: the original O(active flows × touched channels)
//     progressive filling, kept as the oracle the incremental solver is
//     property-tested against. Build with `-tags flowref` to make it the
//     default.
package flow

import (
	"fmt"
	"math"
	"sort"

	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/telemetry"
	"github.com/hpcsim/t2hx/internal/topo"
)

// FlowID is the handle of an active flow: the low 32 bits index the dense
// flow table, the high 32 bits carry the slot generation (table.go).
// Handles are always positive and nonzero; a handle outliving its flow
// goes stale rather than aliasing the slot's next occupant.
type FlowID int64

// Solver selects the max-min rate computation strategy.
type Solver uint8

const (
	// SolverIncremental is the heap + dirty-region solver.
	SolverIncremental Solver = iota
	// SolverReference is the original full progressive-filling scan.
	SolverReference
)

// Network simulates concurrent flows over a topology's directed channels.
type Network struct {
	eng  *sim.Engine
	caps []float64 // per-channel capacity (bytes/s)

	// tab is the SoA flow table every per-flow field lives in.
	tab flowTable

	dirty    bool
	settleEv sim.EventID
	doneEv   sim.EventID
	// settleFn/doneFn are the recurring settle/completion callbacks,
	// built once and re-Scheduled forever: the event arena recycles their
	// slots, so steady-state scheduling churn allocates nothing.
	settleFn func(*sim.Engine)
	doneFn   func(*sim.Engine)

	solver Solver

	// Recomputes counts rate recomputations (for ablation benchmarks).
	Recomputes uint64
	// StaleCancels counts Cancel calls that presented a once-valid handle
	// whose flow is already gone (generation mismatch on a recycled or
	// freed slot). Such cancels are ignored — the recycled slot's current
	// occupant is never touched — but the count makes handle-lifetime bugs
	// in callers observable instead of silent.
	StaleCancels uint64

	// --- reference solver scratch (see solver_reference.go) ---

	// refPerChan/refResidual/refUnfrozen are the reference solver's dense
	// per-channel scratch, validated by refStamp against refEpoch so only
	// channels touched by the current solve are (re)initialized — the
	// rebuild walks the SoA table directly, boxing nothing.
	refPerChan  [][]int32
	refTouched  []topo.ChannelID
	refStamp    []uint64
	refEpoch    uint64
	refResidual []float64
	refUnfrozen []int32

	// --- incremental solver state (see solver_incremental.go) ---

	// chanFlows is the persistent channel -> flow membership, parallel to
	// caps; maintained on Start/Cancel/completion instead of rebuilt per
	// recompute.
	chanFlows [][]chanSlot
	// dirtyChans lists channels whose membership changed since the last
	// recompute; dirtyStamp dedupes against dirtyEpoch.
	dirtyChans []topo.ChannelID
	dirtyStamp []uint64
	dirtyEpoch uint64
	// epoch stamps region discovery (regionStamp per channel, tab.mark
	// per flow) so no per-solve clearing is needed.
	epoch       uint64
	regionStamp []uint64
	// Per-channel progressive-filling state, valid only for channels
	// stamped in the current solve.
	residual    []float64
	unfrozenCnt []int32
	chanGen     []uint32
	pushedGen   []uint32
	// Scratch reused across solves. regionChans/regionFlows hold the
	// dirty region segmented into connected components; comps spans both
	// (solver_shard.go). scratches holds one private progressive-filling
	// scratch (share heap, tie buffer, freeze set) per shard worker;
	// sequential solves use scratches[0].
	regionChans []topo.ChannelID
	regionFlows []int32
	comps       []component
	scratches   []solverScratch
	doneScratch []int32
	cbScratch   []func(at sim.Time)
	// workers bounds the per-component parallelism of the incremental
	// re-solve (SetWorkers); 1, the default, keeps every settle on the
	// event goroutine. pool is the fork-join pool used when workers > 1,
	// always joined before the settle event returns.
	workers int
	pool    *sim.Pool
	// doneHeap orders predicted completion times; entries invalidate
	// lazily via tab.doneGen.
	doneHeap doneHeap

	// cc receives IB-style per-channel counters, fed exactly on every
	// advance/recompute interval; nil (the default) costs one pointer
	// check per hot-path operation.
	cc *telemetry.ChannelCounters
}

// NewNetwork builds a flow network over g's channels, driven by eng. The
// solver defaults to SolverIncremental (SolverReference under the flowref
// build tag); use SetSolver before starting traffic to override.
func NewNetwork(eng *sim.Engine, g *topo.Graph) *Network {
	n := &Network{
		eng:        eng,
		caps:       make([]float64, 2*len(g.Links)),
		solver:     defaultSolver,
		dirtyEpoch: 1,
		workers:    1,
		scratches:  make([]solverScratch, 1),
	}
	for _, l := range g.Links {
		n.caps[2*l.ID] = l.Bandwidth
		n.caps[2*l.ID+1] = l.Bandwidth
	}
	return n
}

// SetSolver selects the rate solver. It must be called before any flow
// starts: the two solvers keep different bookkeeping, so switching with
// active flows panics.
func (n *Network) SetSolver(s Solver) {
	if n.tab.liveCount != 0 {
		panic("flow: SetSolver with active flows")
	}
	n.solver = s
}

// SolverKind reports the active solver.
func (n *Network) SolverKind() Solver { return n.solver }

// AddNodeChannels appends count virtual channels of the given capacity and
// returns the ID of the first one. The fabric layer uses these to model
// per-node aggregate (PCIe/HCA) bandwidth limits shared between a node's
// concurrent sends and receives — the reason a QDR HCA never moves
// 2x 3.2 GiB/s even though the wire is full duplex.
func (n *Network) AddNodeChannels(count int, capacity float64) topo.ChannelID {
	first := topo.ChannelID(len(n.caps))
	for i := 0; i < count; i++ {
		n.caps = append(n.caps, capacity)
	}
	return first
}

// SetCounters attaches an IB-style counter set. Pass nil to detach. With
// counters attached, each advance() interval credits the flow's moved
// bytes to its channels (XmitData) and its stalled-time fraction to its
// bottleneck channel (XmitWait), so the counters integrate the exact
// piecewise-constant rate trajectory the max-min model computes. Flows
// integrate lazily — only when their own rate is about to change — so the
// counter set is wired back to FlushCounters and any read through its
// accessors forces the outstanding intervals in first (DESIGN.md §13).
func (n *Network) SetCounters(cc *telemetry.ChannelCounters) {
	if n.cc != nil && n.cc != cc {
		n.cc.SetFlusher(nil)
	}
	n.cc = cc
	if cc != nil {
		cc.SetFlusher(n.FlushCounters)
	}
}

// FlushCounters integrates every live flow up to the current instant, the
// barrier that makes lazily-integrated counters readable: rates are
// piecewise-constant and each flow's integral depends only on its own
// (rate, last), so advancing everyone to now — without recomputing
// anything — completes every partial interval and restores the exact
// bytes×hops conservation identity at this instant. Called at every read/
// export/snapshot boundary (telemetry accessors via the flusher hook,
// fault teardown, end-of-run); a no-op without counters attached, where
// nothing observes the integrals between completions.
func (n *Network) FlushCounters() {
	if n.cc == nil {
		return
	}
	n.advanceAll()
}

// Active reports the number of in-flight flows (zero-size flows, which
// complete at the current instant, are not counted).
func (n *Network) Active() int { return n.tab.liveCount - n.tab.zeroCount }

// Start begins transferring size bytes along path; onDone fires when the
// last byte has been put on the wire. Zero/negative sizes complete at the
// current time but still return a live FlowID: cancelling it before the
// same-instant completion event fires suppresses the callback, per the
// Cancel contract. The path must be non-empty for positive sizes.
func (n *Network) Start(path []topo.ChannelID, size float64, onDone func(at sim.Time)) FlowID {
	if size <= 0 {
		idx, id := n.tab.alloc()
		t := &n.tab
		t.pathLen[idx] = 0
		t.remaining[idx] = 0
		t.rate[idx] = 0
		t.solo[idx] = 0
		t.onDone[idx] = onDone
		t.zeroCount++
		t.zeroEv[idx] = n.eng.After(0, func(e *sim.Engine) {
			done := t.onDone[idx]
			t.zeroEv[idx] = 0
			t.zeroCount--
			t.freeSlot(idx)
			done(e.Now())
		})
		return id
	}
	if len(path) == 0 {
		panic("flow: positive-size flow with empty path")
	}
	n.ensureChanArrays()
	idx, id := n.tab.alloc()
	t := &n.tab
	t.setPath(idx, path)
	t.remaining[idx] = size
	t.rate[idx] = 0
	t.solo[idx] = 0
	t.bott[idx] = 0
	t.last[idx] = n.eng.Now()
	t.onDone[idx] = onDone
	if n.cc != nil {
		solo := math.Inf(1)
		for _, c := range path {
			if n.caps[c] < solo {
				solo = n.caps[c]
			}
		}
		t.solo[idx] = solo
	}
	if n.solver == SolverIncremental {
		n.addMembership(idx)
	}
	n.markDirty()
	return id
}

// Cancel aborts a flow without firing its callback. Unknown and stale
// handles are ignored (stale ones — a once-valid handle whose slot has
// been freed or recycled — are additionally counted in StaleCancels), so a
// late cancel can never tear down the slot's next occupant. The partial
// bytes a cancelled flow moved before this instant stay credited to the
// attached counters — that is what keeps the bytes×hops conservation
// identity exact under mid-flight teardown.
func (n *Network) Cancel(id FlowID) {
	idx, ok := n.lookup(id)
	if !ok {
		if idx >= 0 && int(idx) < len(n.tab.gen) && handleGen(id) != 0 {
			n.StaleCancels++
		}
		return
	}
	if ev := n.tab.zeroEv[idx]; ev != 0 {
		n.eng.Cancel(ev)
		n.tab.zeroEv[idx] = 0
		n.tab.zeroCount--
		n.tab.freeSlot(idx)
		return
	}
	// Integrate the cancelled flow itself up to now — it is about to leave
	// the table, so this is its last chance to credit its partial bytes.
	// Every other flow whose rate the departure changes is in the settle's
	// dirty region and advances there, at this same instant.
	n.advanceFlow(idx, n.eng.Now())
	n.removeFlow(idx)
	n.markDirty()
}

// removeFlow detaches a flow slot from every solver structure and frees
// it; the caller has already integrated its transferred bytes up to now.
func (n *Network) removeFlow(idx int32) {
	if n.solver == SolverIncremental {
		n.removeMembership(idx)
	}
	n.tab.freeSlot(idx) // bumps gen + doneGen: handles and heap entries die
}

// advanceFlow integrates one flow's transferred bytes up to now. Rates
// are piecewise-constant between recomputes, so crediting rate*dt per
// interval makes the attached counters exact rather than sampled
// approximations.
func (n *Network) advanceFlow(idx int32, now sim.Time) {
	t := &n.tab
	dt := float64(now - t.last[idx])
	if dt > 0 {
		moved := t.rate[idx] * dt
		t.remaining[idx] -= moved
		if n.cc != nil {
			for _, c := range t.path(idx) {
				n.cc.AddXmit(c, moved)
			}
			if t.solo[idx] > 0 && t.rate[idx] < t.solo[idx] {
				// The flow spent this interval below its bottleneck-free
				// rate: charge the stalled fraction to the channel that
				// froze it — the PortXmitWait analogue.
				n.cc.AddWait(t.bott[idx], sim.Duration(dt*(1-t.rate[idx]/t.solo[idx])))
			}
		}
	}
	t.last[idx] = now
}

// advanceAll integrates every live flow up to the current time — the
// flush barrier's workhorse and the reference solver's eager pre-settle
// step. Walks the dense live list, so a post-churn table with mostly-free
// capacity costs O(live), not O(capacity).
func (n *Network) advanceAll() {
	now := n.eng.Now()
	t := &n.tab
	for _, idx := range t.liveList {
		if t.zeroEv[idx] == 0 {
			n.advanceFlow(idx, now)
		}
	}
}

// markDirty schedules a same-instant settle event that recomputes rates
// once, no matter how many flows were added/removed at this instant.
func (n *Network) markDirty() {
	n.dirty = true
	if n.settleEv == 0 {
		if n.settleFn == nil {
			n.settleFn = func(*sim.Engine) {
				n.settleEv = 0
				n.settle()
			}
		}
		n.settleEv = n.eng.After(0, n.settleFn)
	}
}

// settle recomputes the max-min fair rates and schedules the next
// completion.
func (n *Network) settle() {
	if !n.dirty {
		return
	}
	n.dirty = false
	if n.solver == SolverReference {
		n.advanceAll()
		n.recomputeReference()
		n.scheduleNextDoneScan()
		return
	}
	// No advanceAll here: only the dirty region's rates change, and
	// recomputeIncremental advances exactly those flows before re-rating
	// them. Everyone else's (rate, last) stays valid and integrates lazily.
	n.recomputeIncremental()
	n.scheduleNextDoneHeap()
}

// completeDue finishes every flow whose remaining bytes have drained
// (within a relative epsilon to absorb float error), fires callbacks, and
// settles.
func (n *Network) completeDue() {
	if n.solver == SolverReference {
		n.completeDueScan()
		return
	}
	n.completeDueHeap()
}

// drained reports whether a flow's remaining bytes are within float noise
// of zero.
func (n *Network) drained(idx int32) bool {
	return n.tab.remaining[idx] <= n.tab.rate[idx]*1e-12+1e-6
}

// finishFlows removes the done flows (crediting the float-integration
// residue so bytes×hops conservation holds exactly), re-settles, and
// fires the callbacks in deterministic start order. Callbacks are
// collected before the slots are freed: a callback may Start a flow that
// recycles the very slot it is completing.
func (n *Network) finishFlows(done []int32) {
	t := &n.tab
	sort.Slice(done, func(i, j int) bool { return t.seq[done[i]] < t.seq[done[j]] })
	cbs := n.cbScratch[:0]
	for _, idx := range done {
		if n.cc != nil {
			// Round the attributed bytes to exactly the flow's size: the
			// epsilon left in remaining (either sign) is what the float
			// integration missed, and crediting it here is what makes the
			// bytes x hops conservation identity hold exactly.
			for _, c := range t.path(idx) {
				n.cc.AddXmit(c, t.remaining[idx])
			}
		}
		cbs = append(cbs, t.onDone[idx])
		n.removeFlow(idx)
	}
	n.markDirty()
	now := n.eng.Now()
	for i, cb := range cbs {
		cb(now)
		cbs[i] = nil // drop the closure so the scratch retains nothing
	}
	n.cbScratch = cbs[:0]
}

// scheduleDoneAt points the completion event at t, rescheduling the
// queued event in place when possible.
func (n *Network) scheduleDoneAt(t sim.Time) {
	if n.doneEv != 0 && n.eng.Reschedule(n.doneEv, t) {
		return
	}
	if n.doneFn == nil {
		n.doneFn = func(*sim.Engine) {
			n.doneEv = 0
			n.completeDue()
		}
	}
	n.doneEv = n.eng.Schedule(t, n.doneFn)
}

// cancelDoneEv drops the pending completion event, if any.
func (n *Network) cancelDoneEv() {
	if n.doneEv != 0 {
		n.eng.Cancel(n.doneEv)
		n.doneEv = 0
	}
}

// shareEps is the relative tolerance under which two channel fair shares
// count as equal. Mathematically-equal shares computed in different
// orders can differ in the last ulp; comparing exactly would make the
// frozen-channel choice (and thus XmitWait attribution) depend on
// summation order, i.e. nondeterministic across platforms. Within the
// tolerance the smallest channel ID wins.
const shareEps = 1e-9

// sharesEqual is the epsilon-tolerant share comparison.
func sharesEqual(a, b float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	return d <= shareEps*m
}

// checkRate guards the solver invariant that every settled flow moves.
func (n *Network) checkRate(idx int32) {
	if n.tab.rate[idx] <= 0 {
		panic(fmt.Sprintf("flow %d has rate %v",
			handleOf(idx, n.tab.gen[idx]), n.tab.rate[idx]))
	}
}
