// Package flow implements a flow-level network simulator with max-min fair
// bandwidth sharing: each active message transfer is a flow over a fixed
// channel path, and the rates of all concurrent flows are the max-min fair
// allocation under per-channel capacities (progressive filling). This is
// the standard fidelity/performance trade-off for studying link contention
// at the paper's scale (672 nodes, up to 4 MiB messages): the central
// phenomenon — many flows squeezed onto one QDR cable — is modelled
// exactly, while per-packet effects are folded into latency and overhead
// terms handled by internal/fabric.
package flow

import (
	"fmt"
	"math"

	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/telemetry"
	"github.com/hpcsim/t2hx/internal/topo"
)

// FlowID identifies an active flow.
type FlowID int64

// Flow is one in-flight message transfer.
type Flow struct {
	ID        FlowID
	Path      []topo.ChannelID
	Remaining float64 // bytes left to transfer
	Rate      float64 // current bytes/second (max-min share)
	OnDone    func(at sim.Time)

	// solo is the flow's bottleneck-free rate (min capacity along the
	// path) and bott the channel progressive filling froze it at — the
	// IB-counter bookkeeping, maintained only when counters are attached.
	solo float64
	bott topo.ChannelID
}

// Network simulates concurrent flows over a topology's directed channels.
type Network struct {
	eng  *sim.Engine
	caps []float64 // per-channel capacity (bytes/s)

	flows  map[FlowID]*Flow
	nextID FlowID

	lastAdvance sim.Time
	dirty       bool
	settleEv    *sim.Event
	doneEv      *sim.Event

	// Recomputes counts rate recomputations (for ablation benchmarks).
	Recomputes uint64
	// scratch buffers reused across recomputations.
	perChanFlows map[topo.ChannelID][]*Flow

	// cc receives IB-style per-channel counters, fed exactly on every
	// advance/recompute interval; nil (the default) costs one pointer
	// check per hot-path operation.
	cc *telemetry.ChannelCounters
}

// NewNetwork builds a flow network over g's channels, driven by eng.
func NewNetwork(eng *sim.Engine, g *topo.Graph) *Network {
	n := &Network{
		eng:          eng,
		caps:         make([]float64, 2*len(g.Links)),
		flows:        make(map[FlowID]*Flow),
		perChanFlows: make(map[topo.ChannelID][]*Flow),
		nextID:       1,
	}
	for _, l := range g.Links {
		n.caps[2*l.ID] = l.Bandwidth
		n.caps[2*l.ID+1] = l.Bandwidth
	}
	return n
}

// AddNodeChannels appends count virtual channels of the given capacity and
// returns the ID of the first one. The fabric layer uses these to model
// per-node aggregate (PCIe/HCA) bandwidth limits shared between a node's
// concurrent sends and receives — the reason a QDR HCA never moves
// 2x 3.2 GiB/s even though the wire is full duplex.
func (n *Network) AddNodeChannels(count int, capacity float64) topo.ChannelID {
	first := topo.ChannelID(len(n.caps))
	for i := 0; i < count; i++ {
		n.caps = append(n.caps, capacity)
	}
	return first
}

// SetCounters attaches an IB-style counter set. Pass nil to detach. With
// counters attached, every advance() interval credits each flow's moved
// bytes to its channels (XmitData) and its stalled-time fraction to its
// bottleneck channel (XmitWait), so the counters integrate the exact
// piecewise-constant rate trajectory the max-min model computes.
func (n *Network) SetCounters(cc *telemetry.ChannelCounters) { n.cc = cc }

// Active reports the number of in-flight flows.
func (n *Network) Active() int { return len(n.flows) }

// Start begins transferring size bytes along path; onDone fires when the
// last byte has been put on the wire. Zero/negative sizes complete at the
// current time. The path must be non-empty for positive sizes.
func (n *Network) Start(path []topo.ChannelID, size float64, onDone func(at sim.Time)) FlowID {
	if size <= 0 {
		n.eng.After(0, func(e *sim.Engine) { onDone(e.Now()) })
		return 0
	}
	if len(path) == 0 {
		panic("flow: positive-size flow with empty path")
	}
	n.advance()
	f := &Flow{ID: n.nextID, Path: path, Remaining: size, OnDone: onDone}
	if n.cc != nil {
		f.solo = math.Inf(1)
		for _, c := range path {
			if n.caps[c] < f.solo {
				f.solo = n.caps[c]
			}
		}
	}
	n.nextID++
	n.flows[f.ID] = f
	n.markDirty()
	return f.ID
}

// Cancel aborts a flow without firing its callback. Unknown IDs are
// ignored.
func (n *Network) Cancel(id FlowID) {
	if _, ok := n.flows[id]; !ok {
		return
	}
	n.advance()
	delete(n.flows, id)
	n.markDirty()
}

// advance integrates transferred bytes up to the current time. Rates are
// piecewise-constant between recomputes, so crediting rate*dt per interval
// makes the attached counters exact rather than sampled approximations.
func (n *Network) advance() {
	now := n.eng.Now()
	dt := float64(now - n.lastAdvance)
	if dt > 0 {
		for _, f := range n.flows {
			moved := f.Rate * dt
			f.Remaining -= moved
			if n.cc != nil {
				for _, c := range f.Path {
					n.cc.AddXmit(c, moved)
				}
				if f.solo > 0 && f.Rate < f.solo {
					// The flow spent this interval below its bottleneck-free
					// rate: charge the stalled fraction to the channel that
					// froze it — the PortXmitWait analogue.
					n.cc.AddWait(f.bott, sim.Duration(dt*(1-f.Rate/f.solo)))
				}
			}
		}
	}
	n.lastAdvance = now
}

// markDirty schedules a same-instant settle event that recomputes rates
// once, no matter how many flows were added/removed at this instant.
func (n *Network) markDirty() {
	n.dirty = true
	if n.settleEv == nil {
		n.settleEv = n.eng.After(0, func(*sim.Engine) {
			n.settleEv = nil
			n.settle()
		})
	}
}

// settle recomputes the max-min fair rates and schedules the next
// completion.
func (n *Network) settle() {
	if !n.dirty {
		return
	}
	n.dirty = false
	n.advance()
	n.recompute()
	n.scheduleNextDone()
}

// recompute performs progressive filling: repeatedly find the channel with
// the smallest fair share among unfrozen flows, freeze its flows at that
// rate, reduce residual capacities, and continue until every flow is
// frozen.
func (n *Network) recompute() {
	n.Recomputes++
	if len(n.flows) == 0 {
		return
	}
	// Build channel -> flows index (only channels actually used).
	for c := range n.perChanFlows {
		delete(n.perChanFlows, c)
	}
	for _, f := range n.flows {
		f.Rate = -1 // unfrozen
		for _, c := range f.Path {
			n.perChanFlows[c] = append(n.perChanFlows[c], f)
		}
	}
	residual := make(map[topo.ChannelID]float64, len(n.perChanFlows))
	unfrozen := make(map[topo.ChannelID]int, len(n.perChanFlows))
	for c, fs := range n.perChanFlows {
		residual[c] = n.caps[c]
		unfrozen[c] = len(fs)
		if n.cc != nil {
			n.cc.NoteActive(c, len(fs))
		}
	}
	remaining := len(n.flows)
	for remaining > 0 {
		// Bottleneck channel: minimal residual/unfrozen.
		var bott topo.ChannelID
		share := math.Inf(1)
		found := false
		for c, u := range unfrozen {
			if u == 0 {
				continue
			}
			s := residual[c] / float64(u)
			if s < share || (s == share && (!found || c < bott)) {
				share = s
				bott = c
				found = true
			}
		}
		if !found {
			panic("flow: unfrozen flows but no bottleneck channel")
		}
		// Freeze every unfrozen flow crossing the bottleneck.
		for _, f := range n.perChanFlows[bott] {
			if f.Rate >= 0 {
				continue
			}
			f.Rate = share
			f.bott = bott
			remaining--
			for _, c := range f.Path {
				residual[c] -= share
				if residual[c] < 0 {
					residual[c] = 0
				}
				unfrozen[c]--
			}
		}
	}
}

// scheduleNextDone finds the earliest completing flow(s) and schedules the
// completion event.
func (n *Network) scheduleNextDone() {
	if n.doneEv != nil {
		n.eng.Cancel(n.doneEv)
		n.doneEv = nil
	}
	if len(n.flows) == 0 {
		return
	}
	soonest := sim.Infinity
	for _, f := range n.flows {
		if f.Rate <= 0 {
			panic(fmt.Sprintf("flow %d has rate %v", f.ID, f.Rate))
		}
		t := n.eng.Now() + sim.Time(f.Remaining/f.Rate)
		if t < soonest {
			soonest = t
		}
	}
	n.doneEv = n.eng.Schedule(soonest, func(e *sim.Engine) {
		n.doneEv = nil
		n.completeDue()
	})
}

// completeDue finishes every flow whose remaining bytes have drained
// (within a relative epsilon to absorb float error), fires callbacks, and
// settles.
func (n *Network) completeDue() {
	n.advance()
	var done []*Flow
	for _, f := range n.flows {
		if f.Remaining <= f.Rate*1e-12+1e-6 {
			done = append(done, f)
		}
	}
	// Deterministic callback order.
	for i := 0; i < len(done); i++ {
		for j := i + 1; j < len(done); j++ {
			if done[j].ID < done[i].ID {
				done[i], done[j] = done[j], done[i]
			}
		}
	}
	for _, f := range done {
		if n.cc != nil {
			// Round the attributed bytes to exactly the flow's size: the
			// epsilon left in Remaining (either sign) is what the float
			// integration missed, and crediting it here is what makes the
			// bytes x hops conservation identity hold exactly.
			for _, c := range f.Path {
				n.cc.AddXmit(c, f.Remaining)
			}
		}
		delete(n.flows, f.ID)
	}
	n.markDirty()
	for _, f := range done {
		f.OnDone(n.eng.Now())
	}
	if len(done) == 0 {
		// Numerical guard: re-schedule.
		n.markDirty()
	}
}
