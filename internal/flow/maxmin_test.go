package flow

import (
	"testing"
	"testing/quick"

	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// TestMaxMinProperty verifies the defining property of a max-min fair
// allocation on random flow sets: every flow is bottlenecked, i.e. it
// crosses at least one saturated channel on which no other flow has a
// strictly higher rate.
func TestMaxMinProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRand(seed)
		hx := topo.NewHyperX(topo.HyperXConfig{S: []int{3, 3}, T: 2, Bandwidth: 1e6, Latency: 0})
		g := hx.Graph
		eng := sim.NewEngine()
		net := NewNetwork(eng, g)
		terms := g.Terminals()
		nflows := 5 + r.Intn(25)
		for k := 0; k < nflows; k++ {
			a := terms[r.Intn(len(terms))]
			b := terms[r.Intn(len(terms))]
			if a == b {
				continue
			}
			swA, swB := hx.SwitchOf(a), hx.SwitchOf(b)
			p := []topo.ChannelID{g.Nodes[a].Ports[0].Channel(a)}
			if swA != swB {
				// Random 1- or 2-hop switch path within the lattice.
				var mid topo.NodeID = -1
				var direct *topo.Link
				for _, l := range g.UpLinks(swA) {
					o := l.Other(swA)
					if o == swB {
						direct = l
					} else if g.Nodes[o].Kind == topo.Switch {
						for _, l2 := range g.UpLinks(o) {
							if l2.Other(o) == swB {
								mid = o
							}
						}
					}
				}
				if direct != nil && (mid < 0 || r.Intn(2) == 0) {
					p = append(p, direct.Channel(swA))
				} else if mid >= 0 {
					var l1, l2 *topo.Link
					for _, l := range g.UpLinks(swA) {
						if l.Other(swA) == mid {
							l1 = l
						}
					}
					for _, l := range g.UpLinks(mid) {
						if l.Other(mid) == swB {
							l2 = l
						}
					}
					p = append(p, l1.Channel(swA), l2.Channel(mid))
				} else {
					continue
				}
			}
			p = append(p, g.Nodes[b].Ports[0].Channel(swB))
			net.Start(p, 1e9, func(sim.Time) {})
		}
		if net.Active() == 0 {
			return true
		}
		eng.Step() // settle: rates computed
		usage := map[topo.ChannelID]float64{}
		maxRateOn := map[topo.ChannelID]float64{}
		var active []int32
		for i := range net.tab.live {
			if net.tab.live[i] && net.tab.zeroEv[i] == 0 {
				active = append(active, int32(i))
			}
		}
		for _, idx := range active {
			for _, c := range net.tab.path(idx) {
				usage[c] += net.tab.rate[idx]
				if net.tab.rate[idx] > maxRateOn[c] {
					maxRateOn[c] = net.tab.rate[idx]
				}
			}
		}
		// No oversubscription.
		for c, u := range usage {
			if u > net.caps[c]*(1+1e-9) {
				return false
			}
		}
		// Bottleneck property.
		for _, idx := range active {
			bottlenecked := false
			for _, c := range net.tab.path(idx) {
				saturated := usage[c] >= net.caps[c]*(1-1e-9)
				if saturated && net.tab.rate[idx] >= maxRateOn[c]-1e-9 {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
