package flow

import (
	"math"
	"testing"

	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/telemetry"
	"github.com/hpcsim/t2hx/internal/topo"
)

// forEachSolver runs a subtest under both rate solvers; the Cancel
// semantics and counter integrals under test are solver-independent.
func forEachSolver(t *testing.T, fn func(t *testing.T, s Solver)) {
	t.Run("incremental", func(t *testing.T) { fn(t, SolverIncremental) })
	t.Run("reference", func(t *testing.T) { fn(t, SolverReference) })
}

// countersNet builds a counter-attached network over the 3-channel line
// graph at 1000 B/s.
func countersNet(s Solver) (*sim.Engine, *Network, *telemetry.ChannelCounters, []topo.ChannelID) {
	g, fwd, _ := lineGraph(1000)
	e := sim.NewEngine()
	n := NewNetwork(e, g)
	n.SetSolver(s)
	cc := telemetry.NewChannelCounters(g)
	n.SetCounters(cc)
	return e, n, cc, fwd
}

func totalWait(cc *telemetry.ChannelCounters) sim.Duration {
	var w sim.Duration
	for _, d := range cc.XmitWait {
		w += d
	}
	return w + cc.HCAWait
}

// A cancelled flow credits exactly the bytes it moved before teardown —
// no more, no less — to every channel on its path.
func TestCancelCreditsPartialBytes(t *testing.T) {
	forEachSolver(t, func(t *testing.T, s Solver) {
		e, n, cc, fwd := countersNet(s)
		var doneA sim.Time = -1
		n.Start(fwd, 1000, func(at sim.Time) { doneA = at })
		idB := n.Start(fwd, 1e9, func(sim.Time) { t.Error("cancelled flow fired") })
		e.Schedule(0.25, func(*sim.Engine) { n.Cancel(idB) })
		e.Run()
		// Phase [0, 0.25]: both at 500 B/s, so A and B each move 125 B. B's
		// cancel credits 125 B x 3 channels = 375. A then runs alone at
		// 1000 B/s, finishing its remaining 875 B at t = 1.125 and crediting
		// 1000 x 3 = 3000. Total XmitData: 3375.
		if math.Abs(float64(doneA)-1.125) > 1e-9 {
			t.Errorf("A done at %v, want 1.125", doneA)
		}
		if got := cc.TotalXmitData(); math.Abs(got-3375) > 1e-6 {
			t.Errorf("TotalXmitData = %v, want 3375", got)
		}
		for _, c := range fwd {
			if math.Abs(cc.XmitData[c]-1125) > 1e-6 {
				t.Errorf("channel %d XmitData = %v, want 1125", c, cc.XmitData[c])
			}
		}
		// Both flows stalled at half rate for 0.25 s: 2 x 0.125 s of wait,
		// charged to the smallest-ID channel of the (epsilon-tied) path.
		if w := totalWait(cc); math.Abs(float64(w)-0.25) > 1e-9 {
			t.Errorf("total XmitWait = %v, want 0.25", w)
		}
		if w := cc.XmitWait[fwd[0]]; math.Abs(float64(w)-0.25) > 1e-9 {
			t.Errorf("XmitWait[fwd[0]] = %v, want all 0.25 on the first channel", w)
		}
	})
}

// Cancel and Start at the same instant: the freed share must be visible to
// the flow started in the same event, and conservation must hold across
// the splice.
func TestCancelStartSameInstant(t *testing.T) {
	forEachSolver(t, func(t *testing.T, s Solver) {
		e, n, cc, fwd := countersNet(s)
		var doneA, doneC sim.Time = -1, -1
		n.Start(fwd, 1000, func(at sim.Time) { doneA = at })
		idB := n.Start(fwd, 1e9, func(sim.Time) { t.Error("cancelled flow fired") })
		e.Schedule(0.25, func(*sim.Engine) {
			n.Cancel(idB)
			n.Start(fwd, 875, func(at sim.Time) { doneC = at })
		})
		e.Run()
		// [0, 0.25]: A, B at 500 B/s (125 B each). At 0.25, B leaves and C
		// arrives: A (875 B left) and C (875 B) at 500 B/s both finish at
		// 0.25 + 1.75 = 2.0. XmitData: A 3000 + B 375 + C 2625 = 6000.
		if math.Abs(float64(doneA)-2.0) > 1e-9 || math.Abs(float64(doneC)-2.0) > 1e-9 {
			t.Errorf("done A=%v C=%v, want 2.0 both", doneA, doneC)
		}
		if got := cc.TotalXmitData(); math.Abs(got-6000) > 1e-6 {
			t.Errorf("TotalXmitData = %v, want 6000", got)
		}
	})
}

// Cancel landing at the exact instant a flow drains, sequenced before the
// completion event: the flow is fully integrated (its bytes stay
// credited) but its callback must not fire — Cancel wins the race.
func TestCancelSameInstantAsCompletion(t *testing.T) {
	forEachSolver(t, func(t *testing.T, s Solver) {
		e, n, cc, fwd := countersNet(s)
		var doneA sim.Time = -1
		n.Start(fwd, 500, func(at sim.Time) { doneA = at })
		idB := n.Start(fwd, 500, func(sim.Time) { t.Error("cancelled flow fired") })
		// Both drain at t = 1.0 (500 B at 500 B/s). This event is scheduled
		// before the solver's completion event exists, so at t = 1.0 it
		// runs first and cancels B between "drained" and "completed".
		e.Schedule(1.0, func(*sim.Engine) { n.Cancel(idB) })
		e.Run()
		if math.Abs(float64(doneA)-1.0) > 1e-9 {
			t.Errorf("A done at %v, want 1.0", doneA)
		}
		// B moved all 500 B before the cancel, so conservation still sees
		// (500 + 500) x 3 = 3000 (B's last-ulp residue is below 1e-6).
		if got := cc.TotalXmitData(); math.Abs(got-3000) > 1e-6 {
			t.Errorf("TotalXmitData = %v, want 3000", got)
		}
		if n.Active() != 0 {
			t.Errorf("Active() = %d, want 0", n.Active())
		}
	})
}

// Cancelling a zero-size flow before its same-instant completion event
// fires must suppress the callback — the Cancel contract — instead of the
// old behaviour where zero-size Starts returned the sentinel ID 0 and
// their callbacks fired unconditionally.
func TestCancelZeroSizeFlow(t *testing.T) {
	forEachSolver(t, func(t *testing.T, s Solver) {
		g, _, _ := lineGraph(1000)
		e := sim.NewEngine()
		n := NewNetwork(e, g)
		n.SetSolver(s)
		id := n.Start(nil, 0, func(sim.Time) { t.Error("cancelled zero-size flow fired") })
		if id == 0 {
			t.Fatal("zero-size Start returned the sentinel ID 0")
		}
		n.Cancel(id)
		n.Cancel(id) // double-cancel is a no-op
		e.Run()
		if n.Active() != 0 {
			t.Errorf("Active() = %d, want 0", n.Active())
		}
	})
}

// Distinct zero-size flows get distinct live IDs, and cancelling one must
// not disturb the others' same-instant completions.
func TestZeroSizeFlowsGetDistinctIDs(t *testing.T) {
	g, _, _ := lineGraph(1000)
	e := sim.NewEngine()
	n := NewNetwork(e, g)
	fired := make([]bool, 3)
	var ids []FlowID
	for i := 0; i < 3; i++ {
		i := i
		ids = append(ids, n.Start(nil, 0, func(sim.Time) { fired[i] = true }))
	}
	if ids[0] == ids[1] || ids[1] == ids[2] || ids[0] == ids[2] {
		t.Fatalf("zero-size flows share IDs: %v", ids)
	}
	n.Cancel(ids[1])
	e.Run()
	if !fired[0] || fired[1] || !fired[2] {
		t.Errorf("fired = %v, want [true false true]", fired)
	}
}
