//go:build !flowref

package flow

// defaultSolver selects the incremental heap/dirty-region solver unless
// the flowref build tag pins the reference implementation.
const defaultSolver = SolverIncremental
