//go:build flowref

package flow

// defaultSolver under the flowref tag: every Network uses the reference
// progressive-filling solver unless SetSolver overrides it. CI runs the
// flow tests under this tag so the oracle stays a working implementation.
const defaultSolver = SolverReference
