package flow

import (
	"math"
	"testing"

	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/telemetry"
	"github.com/hpcsim/t2hx/internal/topo"
)

// This file property-tests SolverIncremental against SolverReference: on
// randomized fabric/workload instances the two must agree on every flow's
// completion time, the mid-run rate of every active flow, the per-channel
// XmitData integrals, the total XmitWait, and the makespan — and each run
// must independently satisfy the bytes x hops conservation identity, even
// when flows are cancelled mid-flight.

// propOp is one scheduled action of a generated workload: a flow start or
// a cancel of a previously started flow.
type propOp struct {
	at     sim.Time
	cancel bool
	idx    int
	size   float64
	path   []topo.ChannelID
}

// propInstance is a reproducible topology + workload pair.
type propInstance struct {
	g      *topo.Graph
	ops    []propOp
	nflows int
}

// randomWalkPath builds a loop-free multi-hop path from terminal a through
// the switch lattice to a random destination terminal: inject channel, 0-3
// switch-to-switch hops, deliver channel.
func randomWalkPath(r *sim.Rand, hx *topo.HyperX, a topo.NodeID) []topo.ChannelID {
	g := hx.Graph
	p := []topo.ChannelID{g.Nodes[a].Ports[0].Channel(a)}
	cur := hx.SwitchOf(a)
	visited := map[topo.NodeID]bool{cur: true}
	hops := r.Intn(4)
	for h := 0; h < hops; h++ {
		var next []*topo.Link
		for _, l := range g.UpLinks(cur) {
			o := l.Other(cur)
			if g.Nodes[o].Kind == topo.Switch && !visited[o] {
				next = append(next, l)
			}
		}
		if len(next) == 0 {
			break
		}
		l := next[r.Intn(len(next))]
		p = append(p, l.Channel(cur))
		cur = l.Other(cur)
		visited[cur] = true
	}
	dsts := g.TerminalsOf(cur)
	b := dsts[r.Intn(len(dsts))]
	return append(p, g.Nodes[b].Ports[0].Channel(cur))
}

// genInstance derives a random small HyperX and a workload of 5-40 flows
// with staggered starts, mixed sizes (including zero-size header flows),
// and ~25% mid-flight cancels from one seed.
func genInstance(seed uint64) propInstance {
	r := sim.NewRand(seed)
	shapes := [][]int{{2, 2}, {3, 3}, {2, 4}, {4, 2}}
	hx := topo.NewHyperX(topo.HyperXConfig{
		S: shapes[r.Intn(len(shapes))], T: 1 + r.Intn(3), Bandwidth: 1e6, Latency: 0,
	})
	terms := hx.Graph.Terminals()
	inst := propInstance{g: hx.Graph, nflows: 5 + r.Intn(36)}
	for k := 0; k < inst.nflows; k++ {
		start := sim.Time(r.Float64() * 0.5)
		op := propOp{at: start, idx: k}
		if r.Float64() < 0.08 {
			// Zero-size header flow; path irrelevant.
			inst.ops = append(inst.ops, op)
			continue
		}
		op.size = math.Pow(10, 2+4*r.Float64())
		op.path = randomWalkPath(r, hx, terms[r.Intn(len(terms))])
		inst.ops = append(inst.ops, op)
		if r.Float64() < 0.25 {
			inst.ops = append(inst.ops, propOp{
				at: start + sim.Time(r.Float64()*0.5), cancel: true, idx: k,
			})
		}
	}
	return inst
}

// propResult captures everything one run of an instance must agree on.
type propResult struct {
	doneAt     map[int]sim.Time
	ratesAt    map[int]float64 // active-flow rates at the snapshot instant
	xmit       []float64
	waitTotal  sim.Duration
	makespan   sim.Time
	movedHops  float64 // independently measured bytes x hops
	creditedBH float64 // sum of counter XmitData over all channels
}

// runPropInstance replays inst's ops on a fresh engine/network under the
// given solver and shard worker count (workers <= 1 keeps the sequential
// path; only SolverIncremental shards). Cancels and starts are scheduled
// in generation order, so the engine's (time, seq) FIFO makes the
// interleaving identical across solvers. movedHops is measured from flow
// state at each cancel/completion boundary, independently of the counters
// it is later checked against.
func runPropInstance(t *testing.T, inst propInstance, s Solver, workers int) propResult {
	t.Helper()
	eng := sim.NewEngine()
	net := NewNetwork(eng, inst.g)
	net.SetSolver(s)
	if workers > 1 {
		net.SetWorkers(workers)
	}
	cc := telemetry.NewChannelCounters(inst.g)
	net.SetCounters(cc)

	res := propResult{doneAt: map[int]sim.Time{}, ratesAt: map[int]float64{}}
	ids := make([]FlowID, inst.nflows)
	sizes := make([]float64, inst.nflows)
	for _, op := range inst.ops {
		op := op
		if op.cancel {
			eng.Schedule(op.at, func(*sim.Engine) {
				if idx, ok := net.lookup(ids[op.idx]); ok && net.tab.zeroEv[idx] == 0 {
					// Integrate up to now, then measure the partial bytes
					// this cancel strands: they must stay credited.
					net.advanceAll()
					res.movedHops += (sizes[op.idx] - net.tab.remaining[idx]) *
						float64(net.tab.pathLen[idx])
				}
				net.Cancel(ids[op.idx])
			})
			continue
		}
		sizes[op.idx] = op.size
		eng.Schedule(op.at, func(*sim.Engine) {
			ids[op.idx] = net.Start(op.path, op.size, func(at sim.Time) {
				res.doneAt[op.idx] = at
				res.movedHops += op.size * float64(len(op.path))
				if at > res.makespan {
					res.makespan = at
				}
			})
		})
	}

	// Mid-run rate snapshot: the max-min allocation itself, not just its
	// integral, must match across solvers.
	eng.RunUntil(0.3)
	idxOf := map[FlowID]int{}
	for k, id := range ids {
		idxOf[id] = k
	}
	for i := range net.tab.live {
		if !net.tab.live[i] || net.tab.zeroEv[i] != 0 {
			continue
		}
		id := handleOf(int32(i), net.tab.gen[i])
		res.ratesAt[idxOf[id]] = net.tab.rate[i]
	}
	eng.Run()

	if net.Active() != 0 {
		t.Fatalf("solver %d: %d flows still active after drain", s, net.Active())
	}
	res.xmit = cc.XmitData
	res.creditedBH = cc.TotalXmitData()
	for _, d := range cc.XmitWait {
		res.waitTotal += d
	}
	res.waitTotal += cc.HCAWait
	return res
}

func relClose(a, b, relEps, absEps float64) bool {
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= absEps || d <= relEps*m
}

// TestSolverEquivalenceProperty is the acceptance property for the
// incremental solver: on >= 120 randomized instances it must be
// indistinguishable from the reference solver, and the sharded variant
// must be bit-identical to the sequential one.
func TestSolverEquivalenceProperty(t *testing.T) {
	defer func(old int) { shardMinFlows = old }(shardMinFlows)
	shardMinFlows = 0 // force parallel dispatch on these tiny instances
	const instances = 120
	for seed := uint64(0); seed < instances; seed++ {
		inst := genInstance(seed)
		inc := runPropInstance(t, inst, SolverIncremental, 1)
		ref := runPropInstance(t, inst, SolverReference, 1)

		// The sharded solver is held to a stricter bar than the reference
		// oracle: not epsilon-close but bit-identical to the sequential
		// incremental solve.
		shard := runPropInstance(t, inst, SolverIncremental, 4)
		requireBitIdentical(t, seed, "workers=4", inc, shard)

		// Identical completion sets and times.
		if len(inc.doneAt) != len(ref.doneAt) {
			t.Fatalf("seed %d: %d completions (incremental) vs %d (reference)",
				seed, len(inc.doneAt), len(ref.doneAt))
		}
		for k, at := range ref.doneAt {
			got, ok := inc.doneAt[k]
			if !ok {
				t.Fatalf("seed %d: flow %d completed only under reference", seed, k)
			}
			if !relClose(float64(got), float64(at), 1e-9, 1e-12) {
				t.Errorf("seed %d: flow %d done at %v (incremental) vs %v (reference)",
					seed, k, got, at)
			}
		}
		if !relClose(float64(inc.makespan), float64(ref.makespan), 1e-9, 1e-12) {
			t.Errorf("seed %d: makespan %v vs %v", seed, inc.makespan, ref.makespan)
		}

		// Identical mid-run allocations.
		if len(inc.ratesAt) != len(ref.ratesAt) {
			t.Fatalf("seed %d: %d active flows at snapshot vs %d",
				seed, len(inc.ratesAt), len(ref.ratesAt))
		}
		for k, rr := range ref.ratesAt {
			if !relClose(inc.ratesAt[k], rr, 1e-9, 1e-9) {
				t.Errorf("seed %d: flow %d rate %v (incremental) vs %v (reference)",
					seed, k, inc.ratesAt[k], rr)
			}
		}

		// Identical counter integrals.
		for c := range ref.xmit {
			if !relClose(inc.xmit[c], ref.xmit[c], 1e-6, 1e-6) {
				t.Errorf("seed %d: channel %d XmitData %v vs %v",
					seed, c, inc.xmit[c], ref.xmit[c])
			}
		}
		if !relClose(float64(inc.waitTotal), float64(ref.waitTotal), 1e-6, 1e-9) {
			t.Errorf("seed %d: total XmitWait %v vs %v", seed, inc.waitTotal, ref.waitTotal)
		}

		// Each run independently conserves bytes x hops — completed flows
		// credit their full size, cancelled flows exactly their partial.
		for name, r := range map[string]propResult{"incremental": inc, "reference": ref} {
			if !relClose(r.creditedBH, r.movedHops, 1e-9, 1e-6) {
				t.Errorf("seed %d (%s): counters credit %v bytes x hops, flows moved %v",
					seed, name, r.creditedBH, r.movedHops)
			}
		}
	}
}
