package flow

import (
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// This file is the arena/SoA flow table (DESIGN.md §11). Flow state lives
// in parallel slices indexed by a dense slot index instead of one
// heap-allocated struct per flow behind a map: at 32k-terminal scale the
// simulator churns millions of flows per run, and the pointer-per-flow
// layout made GC scanning — not the solver — the dominant cost.
//
// A FlowID is a handle packing (generation, slot index) into the existing
// int64: the low 32 bits are the slot, the high 32 bits the slot's
// generation at allocation time. Slots are recycled LIFO through a free
// list; every free bumps the slot generation, so a handle held across its
// flow's death dereferences to a generation mismatch — a detected stale
// handle (Network.StaleCancels) — instead of silently acting on whatever
// flow was recycled into the slot. Generations start at 1, so no valid
// handle is ever 0 (fabric keeps using 0/negative as "no flow" sentinels).
//
// Paths live in one shared growable arena: per slot, (pathOff, pathLen)
// spans arena/posArena instead of owning Path/pos slices. A recycled slot
// reuses its span when the new path fits (pathCap); longer paths get a
// fresh tail span and orphan the old one. The waste is bounded: spans only
// grow toward the topology's maximum path length, so the arena converges
// to (peak slots × longest path) and steady-state churn allocates nothing.

// handleIdxBits is the slot-index width of a FlowID handle.
const handleIdxBits = 32

// handleOf packs a slot index and its generation into a FlowID.
func handleOf(idx int32, gen uint32) FlowID {
	return FlowID(int64(gen)<<handleIdxBits | int64(uint32(idx)))
}

// Index extracts the dense slot index of a flow handle. Layers that keep
// per-flow side state (fabric's in-flight sends, telemetry bookkeeping)
// index their own dense arrays with it instead of mapping on the FlowID.
// The index alone does not prove liveness — slots are recycled — so such
// layers must verify the full handle before trusting a slot.
func Index(id FlowID) int32 { return int32(uint32(uint64(id))) }

// handleGen extracts the generation tag of a flow handle.
func handleGen(id FlowID) uint32 { return uint32(uint64(id) >> handleIdxBits) }

// flowTable is the SoA store for every in-flight flow. All per-slot
// slices are parallel and grow together; a slot is in exactly one of
// three states: free (on the free list), live positive-size, or live
// zero-size (zeroEv non-nil, awaiting its same-instant completion).
type flowTable struct {
	// gen is the slot generation handles are checked against; bumped on
	// every free, never on allocation, and never zero.
	gen  []uint32
	live []bool
	// seq is the flow's monotonic start sequence. Handles stopped being
	// monotonic when slots became recyclable, so every ordering the
	// solvers used to derive from FlowID — freeze order on a bottleneck,
	// completion-callback order, done-heap tie-breaks — orders by seq,
	// which is still exactly "start order".
	seq       []uint64
	remaining []float64 // bytes left to transfer
	rate      []float64 // current bytes/s (max-min share)
	// solo is the flow's bottleneck-free rate (min capacity along the
	// path) and bott the channel progressive filling froze it at — the
	// IB-counter bookkeeping, maintained only when counters are attached.
	solo []float64
	bott []topo.ChannelID
	// last is the flow's integration frontier: remaining is exact as of
	// this time.
	last []sim.Time
	// mark is the region-BFS epoch stamp (incremental solver).
	mark []uint64
	// doneGen invalidates stale completion-heap entries: an entry is live
	// only while its recorded generation matches. Bumped on re-prediction
	// and on free, never reset, so entries for a slot's previous occupant
	// can never fire against its current one.
	doneGen []uint64
	// (pathOff, pathLen) is the slot's span of arena/posArena; pathCap is
	// the span's reusable capacity.
	pathOff []int32
	pathLen []int32
	pathCap []int32
	onDone  []func(at sim.Time)
	// zeroEv is the same-instant completion event of a zero-size flow;
	// 0 for positive-size flows.
	zeroEv []sim.EventID

	free []int32 // LIFO slot free list

	// liveList is the dense list of live slots (zero-size included);
	// livePos is each slot's position in it (-1 when free). Every whole-
	// table walk — advanceAll, the reference solver's scans — iterates
	// liveList, so post-churn tables with mostly-free capacity cost O(live)
	// per walk, not O(capacity). Maintained by alloc/freeSlot via
	// swap-remove; its order is event-driven and therefore deterministic,
	// but it is NOT index order — nothing may derive an ordering from it
	// (orderings come from seq).
	liveList []int32
	livePos  []int32

	arena    []topo.ChannelID // all paths, addressed by (pathOff, pathLen)
	posArena []int32          // per-hop chanFlows back-pointers, parallel to arena

	liveCount int // live slots, including zero-size
	zeroCount int // live zero-size slots
	nextSeq   uint64
}

// alloc takes a slot (recycling LIFO) and returns it with the handle that
// names this occupancy. The caller fills the per-flow fields.
func (t *flowTable) alloc() (int32, FlowID) {
	var idx int32
	if k := len(t.free); k > 0 {
		idx = t.free[k-1]
		t.free = t.free[:k-1]
	} else {
		idx = int32(len(t.gen))
		t.gen = append(t.gen, 1)
		t.live = append(t.live, false)
		t.seq = append(t.seq, 0)
		t.remaining = append(t.remaining, 0)
		t.rate = append(t.rate, 0)
		t.solo = append(t.solo, 0)
		t.bott = append(t.bott, 0)
		t.last = append(t.last, 0)
		t.mark = append(t.mark, 0)
		t.doneGen = append(t.doneGen, 0)
		t.pathOff = append(t.pathOff, 0)
		t.pathLen = append(t.pathLen, 0)
		t.pathCap = append(t.pathCap, 0)
		t.onDone = append(t.onDone, nil)
		t.zeroEv = append(t.zeroEv, 0)
		t.livePos = append(t.livePos, -1)
	}
	t.live[idx] = true
	t.nextSeq++
	t.seq[idx] = t.nextSeq
	t.livePos[idx] = int32(len(t.liveList))
	t.liveList = append(t.liveList, idx)
	t.liveCount++
	return idx, handleOf(idx, t.gen[idx])
}

// freeSlot returns a slot to the free list, bumping its generation (so
// outstanding handles go stale) and its doneGen (so outstanding
// completion-heap entries go dead). Callers handle zeroCount themselves.
func (t *flowTable) freeSlot(idx int32) {
	t.live[idx] = false
	t.onDone[idx] = nil
	t.zeroEv[idx] = 0
	// Swap-remove from the dense live list, repairing the moved slot's
	// back-pointer.
	p := t.livePos[idx]
	last := int32(len(t.liveList) - 1)
	if p != last {
		moved := t.liveList[last]
		t.liveList[p] = moved
		t.livePos[moved] = p
	}
	t.liveList = t.liveList[:last]
	t.livePos[idx] = -1
	t.doneGen[idx]++
	t.gen[idx]++
	if t.gen[idx] == 0 {
		t.gen[idx] = 1 // generation wrap: skip 0 so handles stay nonzero
	}
	t.liveCount--
	t.free = append(t.free, idx)
}

// setPath copies path into the slot's arena span, reusing the span when
// the new path fits and growing a fresh tail span otherwise.
func (t *flowTable) setPath(idx int32, path []topo.ChannelID) {
	need := int32(len(path))
	if t.pathCap[idx] < need {
		t.pathOff[idx] = int32(len(t.arena))
		t.pathCap[idx] = need
		t.arena = append(t.arena, path...)
		t.posArena = append(t.posArena, make([]int32, len(path))...)
	} else {
		copy(t.arena[t.pathOff[idx]:t.pathOff[idx]+need], path)
	}
	t.pathLen[idx] = need
}

// path returns the slot's channel path as a view into the arena.
func (t *flowTable) path(idx int32) []topo.ChannelID {
	off := t.pathOff[idx]
	return t.arena[off : off+t.pathLen[idx]]
}

// pos returns the slot's per-hop membership back-pointers, parallel to
// path (incremental solver only; enables O(1) membership removal).
func (t *flowTable) pos(idx int32) []int32 {
	off := t.pathOff[idx]
	return t.posArena[off : off+t.pathLen[idx]]
}

// lookup resolves a handle to its live slot, rejecting out-of-range
// indices, dead slots, and generation mismatches (stale handles).
func (n *Network) lookup(id FlowID) (int32, bool) {
	idx := Index(id)
	if idx < 0 || int(idx) >= len(n.tab.gen) {
		return idx, false
	}
	if !n.tab.live[idx] || n.tab.gen[idx] != handleGen(id) {
		return idx, false
	}
	return idx, true
}
