package capacity

import (
	"testing"

	"github.com/hpcsim/t2hx/internal/exp"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/workloads"
)

func TestPaperMixShape(t *testing.T) {
	mix := PaperMix()
	if len(mix) != 14 {
		t.Fatalf("mix has %d apps, want 14", len(mix))
	}
	if got := TotalNodes(mix); got != 664 {
		t.Errorf("mix uses %d nodes, want 664 (98.8%% of 672)", got)
	}
	n56, n32 := 0, 0
	for _, s := range mix {
		switch s.Nodes {
		case 56:
			n56++
		case 32:
			n32++
		default:
			t.Errorf("%s uses %d nodes, want 32 or 56", s.Abbrev, s.Nodes)
		}
	}
	if n56 != 9 || n32 != 5 {
		t.Errorf("56/32 split = %d/%d, want 9/5", n56, n32)
	}
	if len(Order()) != 14 {
		t.Error("Order() must list all 14 apps")
	}
	// Every spec must actually build.
	for _, s := range mix {
		in := s.Build(s.Nodes)
		if len(in.Progs) != s.Nodes {
			t.Errorf("%s built %d programs for %d nodes", s.Abbrev, len(in.Progs), s.Nodes)
		}
	}
}

// smallMix is a two-app mix sized for the 32-node test machine.
func smallMix() []AppSpec {
	quick := workloads.BuildOpts{IterScale: 0.1, ComputeScale: 1, Prolog: 2 * sim.Second}
	amg, _ := workloads.FindApp("AMG")
	comd, _ := workloads.FindApp("CoMD")
	return []AppSpec{
		{Abbrev: "AMG", Nodes: 16, Build: func(n int) *workloads.Instance { return amg.Build(n, quick) }},
		{Abbrev: "CoMD", Nodes: 16, Build: func(n int) *workloads.Instance { return comd.Build(n, quick) }},
	}
}

func TestCapacityRunCountsRuns(t *testing.T) {
	m, err := exp.BuildMachine(exp.PaperCombos()[2], exp.MachineConfig{Small: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m, smallMix(), 2*sim.Minute, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs["AMG"] == 0 || res.Runs["CoMD"] == 0 {
		t.Fatalf("no completed runs: %+v", res.Runs)
	}
	if res.Total != res.Runs["AMG"]+res.Runs["CoMD"] {
		t.Error("total inconsistent")
	}
	// Sanity: a ~5s job should fit many times into 2 minutes.
	if res.Runs["CoMD"] < 5 {
		t.Errorf("CoMD completed only %d runs in 2 min", res.Runs["CoMD"])
	}
}

func TestCapacityRejectsOversizedMix(t *testing.T) {
	m, err := exp.BuildMachine(exp.PaperCombos()[2], exp.MachineConfig{Small: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(m, PaperMix(), sim.Minute, 1); err == nil {
		t.Error("664-node mix accepted on a 32-node machine")
	}
}

func TestCapacityWindowCutsOff(t *testing.T) {
	m, err := exp.BuildMachine(exp.PaperCombos()[2], exp.MachineConfig{Small: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	short, err := Run(m, smallMix(), 30*sim.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	long, err := Run(m, smallMix(), 3*sim.Minute, 7)
	if err != nil {
		t.Fatal(err)
	}
	if short.Total >= long.Total {
		t.Errorf("longer window completed fewer runs: %d vs %d", long.Total, short.Total)
	}
}
