// Package capacity implements the multi-application throughput evaluation
// of Sec. 4.4.2 / Fig. 7: fourteen applications on dedicated 32- or
// 56-node blocks (664 of the 672 nodes, 98.8% of the machine), submitted
// simultaneously and re-executed back-to-back for a three-hour window; the
// metric is the number of completed runs per application.
package capacity

import (
	"fmt"

	"github.com/hpcsim/t2hx/internal/exp"
	"github.com/hpcsim/t2hx/internal/mpi"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/workloads"
)

// Window is the paper's capacity-run duration.
const Window sim.Duration = 3 * sim.Hour

// AppSpec is one capacity-mix entry.
type AppSpec struct {
	Abbrev string
	Nodes  int
	Build  func(n int) *workloads.Instance
}

// PaperMix returns the fourteen-application mix: the twelve Sec. 4.2/4.3
// workloads plus IMB Multi-PingPong (MuPP) and the deep-learning Allreduce
// (EmDL). Nine apps get 56 nodes and the five power-of-two-ladder apps get
// 32, totalling 664 nodes as in the paper. BuildOpts compress iterations
// and add a startup prolog so single-run wall times land near the paper's
// per-app run counts under the baseline.
func PaperMix() []AppSpec {
	type tune struct {
		nodes                   int
		iterScale, computeScale float64
		prolog                  sim.Duration
	}
	tunes := map[string]tune{
		"AMG":  {56, 0.32, 13, 20 * sim.Second},
		"CoMD": {56, 0.25, 6.5, 20 * sim.Second},
		"MiFE": {56, 0.25, 27, 20 * sim.Second},
		"FFT":  {32, 0.25, 40, 20 * sim.Second},
		"FFVC": {32, 0.20, 54, 20 * sim.Second},
		"mVMC": {32, 0.25, 56, 20 * sim.Second},
		"NTCh": {56, 0.33, 4.6, 20 * sim.Second},
		"MILC": {32, 0.20, 18, 20 * sim.Second},
		"Qbox": {56, 0.40, 9.4, 20 * sim.Second},
		"HPL":  {56, 0.20, 9, 20 * sim.Second},
		"HPCG": {56, 0.25, 27, 20 * sim.Second},
		"GraD": {32, 0.25, 10, 15 * sim.Second},
	}
	var specs []AppSpec
	for _, a := range workloads.Registry() {
		a := a
		tn, ok := tunes[a.Abbrev]
		if !ok {
			panic("capacity: untuned app " + a.Abbrev)
		}
		opts := workloads.BuildOpts{IterScale: tn.iterScale, ComputeScale: tn.computeScale, Prolog: tn.prolog}
		specs = append(specs, AppSpec{
			Abbrev: a.Abbrev,
			Nodes:  tn.nodes,
			Build:  func(n int) *workloads.Instance { return a.Build(n, opts) },
		})
	}
	specs = append(specs, AppSpec{
		Abbrev: "MuPP",
		Nodes:  56,
		Build: func(n int) *workloads.Instance {
			in := workloads.BuildMultiPingPong(n, 4096, 1500)
			for _, p := range in.Progs {
				p.Ops = append([]mpi.Op{{Kind: mpi.OpCompute, Dur: 40 * sim.Second}}, p.Ops...)
			}
			return in
		},
	})
	specs = append(specs, AppSpec{
		Abbrev: "EmDL",
		Nodes:  56,
		Build: func(n int) *workloads.Instance {
			in := workloads.BuildEmDL(n, 50)
			for _, p := range in.Progs {
				p.Ops = append([]mpi.Op{{Kind: mpi.OpCompute, Dur: 200 * sim.Second}}, p.Ops...)
			}
			return in
		},
	})
	return specs
}

// TotalNodes sums the mix's node demand (664 for PaperMix).
func TotalNodes(specs []AppSpec) int {
	total := 0
	for _, s := range specs {
		total += s.Nodes
	}
	return total
}

// Result maps application abbreviation to the number of runs completed
// within the window.
type Result struct {
	Runs  map[string]int
	Total int
}

// Run executes the capacity evaluation on a machine: the whole allocation
// is placed with the combo's strategy, carved into per-app blocks, and
// every app re-launches itself back-to-back until the window closes. Only
// runs that finish inside the window count, like the paper's "valid runs".
func Run(m *exp.Machine, specs []AppSpec, window sim.Duration, seed uint64) (*Result, error) {
	total := TotalNodes(specs)
	if total > m.G.NumTerminals() {
		return nil, fmt.Errorf("capacity: mix needs %d nodes, machine has %d", total, m.G.NumTerminals())
	}
	alloc, err := m.Place(total, seed)
	if err != nil {
		return nil, err
	}
	f, err := m.NewFabric(seed)
	if err != nil {
		return nil, err
	}
	res := &Result{Runs: make(map[string]int, len(specs))}
	off := 0
	for i, spec := range specs {
		spec := spec
		block := alloc[off : off+spec.Nodes]
		off += spec.Nodes
		runSeed := seed + uint64(i)*1_000_003

		var launch func()
		launch = func() {
			inst := spec.Build(spec.Nodes)
			runSeed++
			_, err := mpi.Launch(f, spec.Abbrev, block, inst.Progs, mpi.Options{
				ComputeJitterSigma: 0.02,
				Seed:               runSeed,
			}, func(r mpi.Result) {
				if r.End <= sim.Time(window) {
					res.Runs[spec.Abbrev]++
					res.Total++
				}
				if f.Eng.Now() < sim.Time(window) {
					launch()
				}
			})
			if err != nil {
				panic(err) // programming error: specs are validated above
			}
		}
		launch()
	}
	f.Eng.RunUntil(sim.Time(window))
	return res, nil
}

// Order returns the paper's Fig. 7 x-axis order.
func Order() []string {
	return []string{"AMG", "CoMD", "FFVC", "GraD", "HPCG", "HPL", "MILC", "MiFE", "mVMC", "NTCh", "Qbox", "FFT", "MuPP", "EmDL"}
}
