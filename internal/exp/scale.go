package exp

import (
	"fmt"
	"time"

	"github.com/hpcsim/t2hx/internal/fabric"
	"github.com/hpcsim/t2hx/internal/prof"
	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/telemetry"
	"github.com/hpcsim/t2hx/internal/topo"
)

// ScaleSpec drives a memory-bounded large-terminal endurance run: a HyperX
// lattice with enough terminals per switch to pass the 32k-node mark, under
// a fixed window of in-flight messages. The windowed closed loop is what
// makes the run tractable — the flow solver's working set is the window,
// not the terminal count, so the dominant memory is the dense per-terminal
// state (flow-table slots, node channels, forwarding tables), which is
// exactly what the arena/SoA refactor made cheap.
type ScaleSpec struct {
	// S is the HyperX lattice shape; nil selects the paper's 12x8.
	S []int
	// T is the terminal count per switch; 0 selects 342, which brings the
	// 12x8 lattice to 32832 terminals.
	T int
	// Routing is the table engine: "hxmin" (default) or "sssp". The
	// minimal HyperX engine keeps table-build time linear in terminals.
	Routing string
	// Window is the number of concurrently in-flight messages; 0 selects
	// 256. Each delivery immediately launches the next message, so the
	// window stays full until the budget runs out.
	Window int
	// Messages is the delivered-message budget; 0 selects 1_000_000.
	Messages uint64
	// MsgBytes is the payload per message; 0 selects 64 KiB.
	MsgBytes int64
	// Strides is the number of distinct source-to-destination index
	// offsets the generator cycles through; 0 selects 8. Bounding the
	// stride set bounds the fabric's resolved-path cache to one entry per
	// (source, stride) pair actually exercised.
	Strides int
	// Seed drives nothing today (the generator is fully deterministic) but
	// is threaded into the fabric's PML randomness.
	Seed uint64
	// SolverWorkers bounds the flow solver's per-component shard
	// parallelism (flow.Network.SetWorkers, DESIGN.md §12). 0 keeps the
	// solver sequential; negative selects GOMAXPROCS. The run's results
	// are bit-identical at every setting — only wall time changes.
	SolverWorkers int
	// Instrumented attaches the full observability stack — IB-style
	// channel counters, per-message FCT records, the engine queue-depth
	// probe and a streaming sink — exactly as a counter-reading experiment
	// would. Since the event core went allocation-free and counter
	// integration became region-local, the instrumented run costs within a
	// few percent of the blind run (EXPERIMENTS.md); the flag exists so
	// BenchmarkScaleInstrumented can hold the comparison to that.
	Instrumented bool
	// Progress, when set, is invoked every ProgressEvery deliveries (and
	// once at the end) with the running total, the simulated clock, and
	// the engine's executed-event count.
	Progress      func(delivered uint64, now sim.Time, events uint64)
	ProgressEvery uint64
}

// ScaleResult reports what the run cost, in simulated and wall time.
type ScaleResult struct {
	Terminals int
	Switches  int
	Delivered uint64
	// DeliveredBytes is the summed payload of delivered messages.
	DeliveredBytes float64
	// SimElapsed is the simulated clock at drain.
	SimElapsed sim.Time
	// BuildWall covers topology + table construction, RunWall the event
	// loop.
	BuildWall time.Duration
	RunWall   time.Duration
	// Recomputes counts flow-network rate recomputations.
	Recomputes uint64
	// Events is the engine's executed-event count — with RunWall, the
	// events/s throughput of the event core itself.
	Events uint64
	// SolverWorkers is the effective flow-solver shard parallelism the run
	// used (after GOMAXPROCS resolution); 1 means fully sequential.
	SolverWorkers int
	// PeakRSSBytes is the process high-water RSS after the run (0 where
	// the platform cannot report it). Note it is process-wide: under `go
	// test` it includes whatever earlier tests peaked at.
	PeakRSSBytes uint64
}

// scaleStrides returns count distinct source-to-destination index offsets
// in [1, n-1], spread across the index space so consecutive messages
// exercise intra-row, intra-column and diagonal traffic. The generator
// pairs source i%n with stride i%len(strides); bounding the stride set
// bounds distinct (source, stride) pairs — and so the fabric's path cache.
// count is clamped to n-1 (only that many distinct non-self offsets
// exist; the old modular formula silently emitted duplicates here), and
// n < 2 is an error rather than a degenerate loop — on a one-terminal
// lattice every send would be a self-send.
func scaleStrides(n, count int) ([]int, error) {
	if n < 2 {
		return nil, fmt.Errorf("exp: scale run needs at least 2 terminals, got %d (every send would be a self-send)", n)
	}
	if count < 1 {
		count = 1
	}
	if count > n-1 {
		count = n - 1
	}
	step := (n - 1) / count // >= 1 after the clamp
	strides := make([]int, count)
	for k := range strides {
		strides[k] = 1 + k*step
	}
	return strides, nil
}

// RunScale builds the lattice and runs the windowed message loop until the
// delivery budget is met.
func RunScale(spec ScaleSpec) (*ScaleResult, error) {
	if spec.S == nil {
		spec.S = []int{12, 8}
	}
	if spec.T == 0 {
		spec.T = 342
	}
	if spec.Routing == "" {
		spec.Routing = "hxmin"
	}
	if spec.Window == 0 {
		spec.Window = 256
	}
	if spec.Messages == 0 {
		spec.Messages = 1_000_000
	}
	if spec.MsgBytes == 0 {
		spec.MsgBytes = 64 * 1024
	}
	if spec.Strides == 0 {
		spec.Strides = 8
	}
	if spec.ProgressEvery == 0 {
		spec.ProgressEvery = 1 << 16
	}

	buildStart := time.Now()
	hx, err := topo.BuildHyperX(topo.HyperXConfig{
		S: spec.S, T: spec.T,
		Bandwidth: topo.QDRBandwidth, Latency: topo.QDRLinkLatency,
	})
	if err != nil {
		return nil, err
	}
	var tb *route.Tables
	switch spec.Routing {
	case "hxmin":
		tb, err = route.HXMin(hx, 0)
	case "sssp":
		tb, err = route.SSSP(hx.Graph, 0)
	default:
		err = fmt.Errorf("exp: scale run supports hxmin or sssp routing, got %q", spec.Routing)
	}
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	params := fabric.DefaultParams()
	params.SolverWorkers = spec.SolverWorkers
	f := fabric.New(eng, tb, params, spec.Seed)
	var col *telemetry.Collector
	var sink *telemetry.CountSink
	if spec.Instrumented {
		// The full observability stack of a counter-reading experiment:
		// channel counters, message records, the engine probe, and a
		// streaming sink draining closed records as they happen.
		col = telemetry.New(hx.Graph, telemetry.Options{Counters: true, Messages: true})
		sink = telemetry.NewCountSink()
		col.SetSink(sink)
		f.AttachTelemetry(col)
	}
	res := &ScaleResult{
		Terminals:     hx.Graph.NumTerminals(),
		Switches:      hx.Graph.NumSwitches(),
		BuildWall:     time.Since(buildStart),
		SolverWorkers: f.Net.Workers(),
	}

	terms := hx.Graph.Terminals()
	n := len(terms)
	if spec.Window > n {
		spec.Window = n
	}
	strides, err := scaleStrides(n, spec.Strides)
	if err != nil {
		return nil, err
	}

	var sent, delivered, lastProgress uint64
	var onDelivered func(at sim.Time)
	sendNext := func() {
		if sent >= spec.Messages {
			return
		}
		i := sent
		sent++
		srcIdx := int(i % uint64(n))
		// Strides are in [1, n-1], so dst never aliases src.
		dstIdx := (srcIdx + strides[int(i)%len(strides)]) % n
		f.Send(terms[srcIdx], terms[dstIdx], spec.MsgBytes, onDelivered)
	}
	onDelivered = func(at sim.Time) {
		delivered++
		if spec.Progress != nil && delivered%spec.ProgressEvery == 0 {
			lastProgress = delivered
			spec.Progress(delivered, at, eng.Processed)
		}
		sendNext()
	}

	runStart := time.Now()
	for i := 0; i < spec.Window; i++ {
		sendNext()
	}
	eng.Run()
	res.RunWall = time.Since(runStart)
	res.SimElapsed = eng.Now()
	res.Delivered = f.Delivered
	res.DeliveredBytes = f.DeliveredBytes
	res.Recomputes = f.Net.Recomputes
	res.Events = eng.Processed
	res.PeakRSSBytes = prof.ReadRuntimeMetrics().PeakRSSBytes
	if spec.Instrumented {
		// End-of-run snapshot boundary: the footer's accessors flush the
		// lazily-deferred counter integrals, after which the conservation
		// identity must hold exactly for the delivered traffic.
		if err := col.FinishStream(); err != nil {
			return res, err
		}
		want := float64(res.Delivered) * float64(spec.MsgBytes)
		if got := sink.Count("msg"); got != res.Delivered {
			return res, fmt.Errorf("exp: instrumented scale run streamed %d msg lines, delivered %d", got, res.Delivered)
		}
		if total := col.Chans.TotalXmitData(); total < want {
			return res, fmt.Errorf("exp: instrumented scale run moved %.0f fabric bytes < %.0f delivered payload bytes", total, want)
		}
	}
	// Final progress call only when the drain left deliveries unreported:
	// when Messages is a multiple of ProgressEvery, the last delivery
	// already fired the callback with these exact totals.
	if spec.Progress != nil && delivered != lastProgress {
		spec.Progress(delivered, res.SimElapsed, res.Events)
	}
	if res.Delivered != spec.Messages {
		return res, fmt.Errorf("exp: scale run drained with %d of %d messages delivered",
			res.Delivered, spec.Messages)
	}
	return res, nil
}
