package exp

import (
	"fmt"
	"time"

	"github.com/hpcsim/t2hx/internal/fabric"
	"github.com/hpcsim/t2hx/internal/prof"
	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// ScaleSpec drives a memory-bounded large-terminal endurance run: a HyperX
// lattice with enough terminals per switch to pass the 32k-node mark, under
// a fixed window of in-flight messages. The windowed closed loop is what
// makes the run tractable — the flow solver's working set is the window,
// not the terminal count, so the dominant memory is the dense per-terminal
// state (flow-table slots, node channels, forwarding tables), which is
// exactly what the arena/SoA refactor made cheap.
type ScaleSpec struct {
	// S is the HyperX lattice shape; nil selects the paper's 12x8.
	S []int
	// T is the terminal count per switch; 0 selects 342, which brings the
	// 12x8 lattice to 32832 terminals.
	T int
	// Routing is the table engine: "hxmin" (default) or "sssp". The
	// minimal HyperX engine keeps table-build time linear in terminals.
	Routing string
	// Window is the number of concurrently in-flight messages; 0 selects
	// 256. Each delivery immediately launches the next message, so the
	// window stays full until the budget runs out.
	Window int
	// Messages is the delivered-message budget; 0 selects 1_000_000.
	Messages uint64
	// MsgBytes is the payload per message; 0 selects 64 KiB.
	MsgBytes int64
	// Strides is the number of distinct source-to-destination index
	// offsets the generator cycles through; 0 selects 8. Bounding the
	// stride set bounds the fabric's resolved-path cache to one entry per
	// (source, stride) pair actually exercised.
	Strides int
	// Seed drives nothing today (the generator is fully deterministic) but
	// is threaded into the fabric's PML randomness.
	Seed uint64
	// Progress, when set, is invoked every ProgressEvery deliveries (and
	// once at the end) with the running total and the simulated clock.
	Progress      func(delivered uint64, now sim.Time)
	ProgressEvery uint64
}

// ScaleResult reports what the run cost, in simulated and wall time.
type ScaleResult struct {
	Terminals int
	Switches  int
	Delivered uint64
	// DeliveredBytes is the summed payload of delivered messages.
	DeliveredBytes float64
	// SimElapsed is the simulated clock at drain.
	SimElapsed sim.Time
	// BuildWall covers topology + table construction, RunWall the event
	// loop.
	BuildWall time.Duration
	RunWall   time.Duration
	// Recomputes counts flow-network rate recomputations.
	Recomputes uint64
	// PeakRSSBytes is the process high-water RSS after the run (0 where
	// the platform cannot report it). Note it is process-wide: under `go
	// test` it includes whatever earlier tests peaked at.
	PeakRSSBytes uint64
}

// RunScale builds the lattice and runs the windowed message loop until the
// delivery budget is met.
func RunScale(spec ScaleSpec) (*ScaleResult, error) {
	if spec.S == nil {
		spec.S = []int{12, 8}
	}
	if spec.T == 0 {
		spec.T = 342
	}
	if spec.Routing == "" {
		spec.Routing = "hxmin"
	}
	if spec.Window == 0 {
		spec.Window = 256
	}
	if spec.Messages == 0 {
		spec.Messages = 1_000_000
	}
	if spec.MsgBytes == 0 {
		spec.MsgBytes = 64 * 1024
	}
	if spec.Strides == 0 {
		spec.Strides = 8
	}
	if spec.ProgressEvery == 0 {
		spec.ProgressEvery = 1 << 16
	}

	buildStart := time.Now()
	hx, err := topo.BuildHyperX(topo.HyperXConfig{
		S: spec.S, T: spec.T,
		Bandwidth: topo.QDRBandwidth, Latency: topo.QDRLinkLatency,
	})
	if err != nil {
		return nil, err
	}
	var tb *route.Tables
	switch spec.Routing {
	case "hxmin":
		tb, err = route.HXMin(hx, 0)
	case "sssp":
		tb, err = route.SSSP(hx.Graph, 0)
	default:
		err = fmt.Errorf("exp: scale run supports hxmin or sssp routing, got %q", spec.Routing)
	}
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	f := fabric.New(eng, tb, fabric.DefaultParams(), spec.Seed)
	res := &ScaleResult{
		Terminals: hx.Graph.NumTerminals(),
		Switches:  hx.Graph.NumSwitches(),
		BuildWall: time.Since(buildStart),
	}

	terms := hx.Graph.Terminals()
	n := len(terms)
	if spec.Window > n {
		spec.Window = n
	}
	// Stride set: spread offsets across the index space so consecutive
	// messages exercise intra-row, intra-column and diagonal traffic. The
	// generator pairs source i%n with stride i%len(strides); when the
	// stride count divides n, that bounds distinct (source, stride) pairs
	// — and so the path cache — to n entries.
	strides := make([]int, spec.Strides)
	for k := range strides {
		strides[k] = (1 + k*(n/(spec.Strides+1))) % n
		if strides[k] == 0 {
			strides[k] = 1
		}
	}

	var sent, delivered uint64
	var onDelivered func(at sim.Time)
	sendNext := func() {
		if sent >= spec.Messages {
			return
		}
		i := sent
		sent++
		srcIdx := int(i % uint64(n))
		dstIdx := (srcIdx + strides[int(i)%len(strides)]) % n
		if dstIdx == srcIdx {
			dstIdx = (dstIdx + 1) % n
		}
		f.Send(terms[srcIdx], terms[dstIdx], spec.MsgBytes, onDelivered)
	}
	onDelivered = func(at sim.Time) {
		delivered++
		if spec.Progress != nil && delivered%spec.ProgressEvery == 0 {
			spec.Progress(delivered, at)
		}
		sendNext()
	}

	runStart := time.Now()
	for i := 0; i < spec.Window; i++ {
		sendNext()
	}
	eng.Run()
	res.RunWall = time.Since(runStart)
	res.SimElapsed = eng.Now()
	res.Delivered = f.Delivered
	res.DeliveredBytes = f.DeliveredBytes
	res.Recomputes = f.Net.Recomputes
	res.PeakRSSBytes = prof.ReadRuntimeMetrics().PeakRSSBytes
	if spec.Progress != nil {
		spec.Progress(delivered, res.SimElapsed)
	}
	if res.Delivered != spec.Messages {
		return res, fmt.Errorf("exp: scale run drained with %d of %d messages delivered",
			res.Delivered, spec.Messages)
	}
	return res, nil
}
