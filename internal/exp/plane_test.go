package exp

import (
	"math"
	"testing"

	"github.com/hpcsim/t2hx/internal/fabric"
	"github.com/hpcsim/t2hx/internal/faults"
	"github.com/hpcsim/t2hx/internal/mpi"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/telemetry"
	"github.com/hpcsim/t2hx/internal/topo"
	"github.com/hpcsim/t2hx/internal/workloads"
)

// planeTelemetry builds a Multi over the machine's planes for tests.
func planeTelemetry(m *Machine, opts telemetry.Options) *telemetry.Multi {
	gs := make([]*topo.Graph, len(m.Planes))
	names := make([]string, len(m.Planes))
	for i, p := range m.Planes {
		gs[i] = p.G
		names[i] = p.Spec.Label()
	}
	return telemetry.NewMulti(gs, names, opts)
}

// TestSinglePlaneMultiFabricMatchesFabric is the refactor's equivalence
// property: for every paper combo, wrapping the plane in a MultiFabric
// under the default single-plane policy must reproduce the plain Fabric
// run byte-for-byte — same makespan, same per-message FCTs, same
// XmitData. The message sizes bracket the PARX threshold so both LID
// quadrants are exercised.
func TestSinglePlaneMultiFabricMatchesFabric(t *testing.T) {
	const n = 16
	opts := telemetry.Options{Counters: true, Messages: true}
	for _, c := range PaperCombos() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			m, err := BuildMachine(c, MachineConfig{Small: true, Degrade: true, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			ranks, err := m.Place(n, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, size := range []int64{256, 64 << 10} {
				build := func() []*mpi.Program {
					inst, err := workloads.BuildIMB("alltoall", n, size)
					if err != nil {
						t.Fatal(err)
					}
					return inst.Progs
				}

				f, err := m.NewFabric(99)
				if err != nil {
					t.Fatal(err)
				}
				colF := telemetry.New(m.G, opts)
				f.AttachTelemetry(colF)
				resF, err := mpi.Run(f, "single", ranks, build(), mpi.Options{})
				if err != nil {
					t.Fatal(err)
				}

				mf, err := m.NewMultiFabric(99)
				if err != nil {
					t.Fatal(err)
				}
				if mf.NumPlanes() != 1 || mf.PolicyName() != "single" {
					t.Fatalf("single-plane machine gave %d planes, policy %s", mf.NumPlanes(), mf.PolicyName())
				}
				tm := planeTelemetry(m, opts)
				if err := mf.AttachTelemetry(tm); err != nil {
					t.Fatal(err)
				}
				resM, err := mpi.Run(mf, "multi", ranks, build(), mpi.Options{})
				if err != nil {
					t.Fatal(err)
				}

				if resF.Elapsed != resM.Elapsed {
					t.Errorf("size %d: makespan %v (fabric) != %v (multifabric)", size, resF.Elapsed, resM.Elapsed)
				}
				if got, want := tm.TotalXmitData(), colF.Chans.TotalXmitData(); got != want {
					t.Errorf("size %d: XmitData %v (multifabric) != %v (fabric)", size, got, want)
				}
				recs := tm.ForPlane(0).Msgs
				if len(recs) != len(colF.Msgs) {
					t.Fatalf("size %d: %d records (multifabric) != %d (fabric)", size, len(recs), len(colF.Msgs))
				}
				for i := range recs {
					a, b := colF.Msgs[i], recs[i]
					if a.Src != b.Src || a.Dst != b.Dst || a.Size != b.Size || a.FCT() != b.FCT() {
						t.Fatalf("size %d: record %d diverged: fabric %+v, multifabric %+v", size, i, a, b)
					}
				}
			}
		})
	}
}

// TestDualPlaneSizeSplitConservation runs mixed-size traffic over the
// dual-plane machine and checks the machine-level invariants: both planes
// carry traffic (small messages on the HyperX, large on the Fat-Tree),
// the conservation identity holds across the union of both planes'
// channel sets, nothing is lost, and both planes emit trace spans.
func TestDualPlaneSizeSplitConservation(t *testing.T) {
	const n = 16
	m, err := BuildMachine(DualPlaneCombo(), MachineConfig{Small: true, Degrade: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ranks, err := m.Place(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := m.NewMultiFabric(7)
	if err != nil {
		t.Fatal(err)
	}
	tm := planeTelemetry(m, telemetry.Options{Counters: true, Messages: true, Trace: true})
	if err := mf.AttachTelemetry(tm); err != nil {
		t.Fatal(err)
	}
	for _, size := range []int64{512, 1 << 20} {
		inst, err := workloads.BuildIMB("alltoall", n, size)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mpi.Run(mf, "mixed", ranks, inst.Progs, mpi.Options{}); err != nil {
			t.Fatal(err)
		}
	}

	if mf.Delivered != mf.Messages {
		t.Errorf("delivered %d of %d messages", mf.Delivered, mf.Messages)
	}
	for p := 0; p < mf.NumPlanes(); p++ {
		if mf.PlaneMessages[p] == 0 {
			t.Errorf("plane %s carried no messages under sizesplit", mf.PlaneName(p))
		}
		if tm.ForPlane(p).Chans.TotalXmitData() <= 0 {
			t.Errorf("plane %s has no XmitData", mf.PlaneName(p))
		}
		if tm.ForPlane(p).TraceLen() == 0 {
			t.Errorf("plane %s emitted no trace events", mf.PlaneName(p))
		}
	}
	sum := tm.FCTSummary()
	if sum.Delivered != int(mf.Delivered) {
		t.Errorf("telemetry delivered %d, fabric delivered %d", sum.Delivered, mf.Delivered)
	}
	lhs, rhs := tm.TotalXmitData(), sum.BytesHops
	if rhs <= 0 || math.Abs(lhs-rhs) > 1e-6*rhs {
		t.Errorf("conservation violated: ΣXmitData %v != Σ bytes×hops %v", lhs, rhs)
	}
}

// TestFailoverSurvivesFullPlaneOutage kills every inter-switch link of
// the HyperX plane mid-Alltoall under a failover policy primed on that
// plane. The acceptance criterion is zero lost messages: in-flight
// traffic redispatches onto the Fat-Tree plane and new sends skip the
// unhealthy plane, reusing the retry/re-sweep machinery.
func TestFailoverSurvivesFullPlaneOutage(t *testing.T) {
	const n = 16
	m, err := BuildMachine(DualPlaneCombo(), MachineConfig{
		Small: true, Degrade: true, Seed: 1, Policy: "failover:1",
	})
	if err != nil {
		t.Fatal(err)
	}
	ranks, err := m.Place(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	build := func() []*mpi.Program {
		inst, err := workloads.BuildIMB("alltoall", n, 64<<10)
		if err != nil {
			t.Fatal(err)
		}
		return inst.Progs
	}

	mfBase, err := m.NewMultiFabric(3)
	if err != nil {
		t.Fatal(err)
	}
	base, err := mpi.Run(mfBase, "baseline", ranks, build(), mpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mfBase.PlaneMessages[1] != mfBase.Messages {
		t.Fatalf("failover:1 baseline put %d of %d messages on the primary plane",
			mfBase.PlaneMessages[1], mfBase.Messages)
	}

	// The outage mutates the HyperX graph's link state; restore it so the
	// machine stays valid for other tests reusing the combo.
	g := m.Planes[1].G
	downBefore := make([]bool, len(g.Links))
	for i, l := range g.Links {
		downBefore[i] = l.Down
	}
	defer func() {
		for i, l := range g.Links {
			l.Down = downBefore[i]
		}
	}()

	mf, err := m.NewMultiFabric(3)
	if err != nil {
		t.Fatal(err)
	}
	mf.EnableResilience(fabric.Resilience{})
	mgr, err := faults.NewManager(mf.Plane(1), faults.SMConfig{
		Rebuild:    m.Planes[1].Rebuild,
		Revalidate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr.OnHealth = func(healthy bool) { mf.SetPlaneHealth(1, healthy) }
	sched := faults.PlaneOutage(g, sim.Time(base.Elapsed)/3, 0)
	if len(sched) == 0 {
		t.Fatal("PlaneOutage produced no events")
	}
	if err := mgr.Inject(sched); err != nil {
		t.Fatal(err)
	}
	if _, err := mpi.Run(mf, "plane-outage", ranks, build(), mpi.Options{}); err != nil {
		t.Fatalf("faulted run failed: %v", err)
	}

	if mf.Delivered != mf.Messages {
		t.Errorf("lost messages: delivered %d of %d", mf.Delivered, mf.Messages)
	}
	for p := 0; p < mf.NumPlanes(); p++ {
		if g := mf.Plane(p).GiveUps; g != 0 {
			t.Errorf("plane %s gave up on %d messages", mf.PlaneName(p), g)
		}
	}
	if mf.PlaneMessages[0] == 0 {
		t.Error("fat-tree plane carried no traffic after the outage")
	}
	if mgr.TornDown > 0 && mf.Redispatches == 0 {
		t.Errorf("%d flows torn down but nothing redispatched across planes", mgr.TornDown)
	}
	if mf.PlaneHealthy(1) {
		t.Error("shattered plane still marked healthy")
	}
}
