package exp

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"github.com/hpcsim/t2hx/internal/fabric"
	"github.com/hpcsim/t2hx/internal/telemetry"
	"github.com/hpcsim/t2hx/internal/workloads"
)

// TestRunnerStatsFinalSnapshot: OnStats must always deliver a Final
// snapshot with complete totals, even without a ticker interval.
func TestRunnerStatsFinalSnapshot(t *testing.T) {
	cache := NewTableCache(8)
	var mu sync.Mutex
	var snaps []RunnerStats
	r := Runner{
		Workers:       2,
		StatsInterval: time.Millisecond,
		Cache:         cache,
		OnStats: func(s RunnerStats) {
			mu.Lock()
			snaps = append(snaps, s)
			mu.Unlock()
		},
	}
	_, err := ForEach(r, 16, nil, func(i int, seed uint64) (int, error) {
		time.Sleep(2 * time.Millisecond)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(snaps) == 0 {
		t.Fatal("OnStats never called")
	}
	last := snaps[len(snaps)-1]
	if !last.Final {
		t.Fatal("last snapshot not marked Final")
	}
	if last.Done != 16 || last.Total != 16 {
		t.Fatalf("final snapshot %d/%d, want 16/16", last.Done, last.Total)
	}
	if last.Workers != 2 {
		t.Fatalf("workers %d, want 2", last.Workers)
	}
	if last.CellsPerSec <= 0 {
		t.Fatalf("cells/s %v, want > 0", last.CellsPerSec)
	}
	if last.Utilization <= 0 || last.Utilization > 1 {
		t.Fatalf("utilization %v outside (0, 1]", last.Utilization)
	}
	if last.ETA != 0 {
		t.Fatalf("final ETA %v, want 0", last.ETA)
	}
	if last.Cache == nil {
		t.Fatal("cache stats missing from snapshot")
	}
	for _, s := range snaps[:len(snaps)-1] {
		if s.Final {
			t.Fatal("non-last snapshot marked Final")
		}
		if s.Done < 0 || s.Done > s.Total {
			t.Fatalf("snapshot done=%d outside [0,%d]", s.Done, s.Total)
		}
	}
	if last.LineKind() != "progress" {
		t.Fatalf("RunnerStats line kind %q", last.LineKind())
	}
}

// TestFCTHistIdenticalAcrossWorkers is the histogram half of the -j1 ≡ -jN
// contract: FCT histograms observed inside worker cells and merged in cell
// order must serialize to byte-identical snapshots at any worker count.
func TestFCTHistIdenticalAcrossWorkers(t *testing.T) {
	run := func(workers int) []byte {
		combos := PaperCombos()
		fixtures := []Combo{combos[0], combos[2]}
		cols := make([]*telemetry.Collector, len(fixtures))
		var cells []SweepCell
		for i, combo := range fixtures {
			i := i
			cells = append(cells, SweepCell{
				Label: combo.Name, Combo: combo,
				Cfg:    MachineConfig{Small: true, Degrade: true, Seed: 7},
				Nodes:  16,
				Trials: 1,
				Build: func(n int) (*workloads.Instance, error) {
					return workloads.BuildIMB("alltoall", n, 4096)
				},
				Attach: func(_ int, f fabric.Messenger) {
					if fb, ok := f.(*fabric.Fabric); ok {
						col := telemetry.New(fb.G, telemetry.Options{Messages: true})
						fb.AttachTelemetry(col)
						cols[i] = col
					}
				},
			})
		}
		if _, err := RunSweep(Runner{Workers: workers, BaseSeed: 1}, cells); err != nil {
			t.Fatal(err)
		}
		merged := telemetry.NewHist("fct", "s", 1e9)
		for i, col := range cols {
			if col == nil {
				t.Fatalf("cell %d: no collector", i)
			}
			merged.Merge(col.FCTHist)
		}
		if merged.Count() == 0 {
			t.Fatal("merged histogram empty")
		}
		raw, err := json.Marshal(merged.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	seq := run(1)
	for _, j := range []int{2, 8} {
		if par := run(j); string(par) != string(seq) {
			t.Fatalf("-j%d histogram snapshot differs from -j1:\n  -j1: %s\n  -j%d: %s", j, seq, j, par)
		}
	}
}
