package exp

import (
	"errors"
	"reflect"
	"testing"

	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/workloads"
)

func degradedTestSpec(engines []string, counts []int, variants int) DegradedSpec {
	return DegradedSpec{
		Engines: engines,
		Workloads: []DegradedWorkload{{
			Name: "alltoall",
			Build: func(n int) (*workloads.Instance, error) {
				return workloads.BuildIMB("alltoall", n, 2048)
			},
		}},
		Counts:        counts,
		Variants:      variants,
		Nodes:         8,
		Small:         true,
		Seed:          11,
		Detect:        50 * sim.Microsecond,
		SweepLatency:  100 * sim.Microsecond,
		MarginSamples: 256,
	}
}

func TestRunDegradedSpecValidation(t *testing.T) {
	base := degradedTestSpec([]string{"hxnm"}, []int{0}, 1)
	cases := []struct {
		name   string
		mutate func(*DegradedSpec)
	}{
		{"no engines", func(s *DegradedSpec) { s.Engines = nil }},
		{"no workloads", func(s *DegradedSpec) { s.Workloads = nil }},
		{"no counts", func(s *DegradedSpec) { s.Counts = nil }},
		{"negative count", func(s *DegradedSpec) { s.Counts = []int{-1} }},
		{"no variants", func(s *DegradedSpec) { s.Variants = 0 }},
		{"no nodes", func(s *DegradedSpec) { s.Nodes = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := base
			tc.mutate(&spec)
			if _, err := RunDegraded(Runner{Workers: 1}, spec); err == nil {
				t.Fatal("bad spec accepted")
			}
		})
	}
}

// The sweep's determinism contract: -j 1 and -j N produce bit-identical
// per-variant results, machine pools and chain caches notwithstanding.
func TestRunDegradedDeterministicAcrossWorkers(t *testing.T) {
	spec := degradedTestSpec([]string{"hxmin", "hxnm"}, []int{0, 3}, 3)
	seq, err := RunDegraded(Runner{Workers: 1}, spec)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunDegraded(Runner{Workers: 4}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		for i := range seq {
			if !reflect.DeepEqual(seq[i], par[i]) {
				t.Fatalf("cell %d diverges across worker counts:\n -j1: %+v\n -j4: %+v",
					i, seq[i], par[i])
			}
		}
		t.Fatal("results diverge across worker counts")
	}
	if len(seq) != 2*2*3 {
		t.Fatalf("got %d results, want 12", len(seq))
	}
	for _, r := range seq {
		// hxmin may wedge when a stranded pair intersects the traffic — that
		// outcome is sweep data. hxnm must always survive.
		if !r.Survived && (r.Engine != "hxmin" || r.Unreachable == 0) {
			t.Errorf("%s/%s f=%d v=%d did not survive: %s",
				r.Engine, r.Workload, r.Failures, r.Variant, r.Err)
		}
		if r.Baseline <= 0 || (r.Survived && r.Faulted <= 0) {
			t.Errorf("missing makespans: %+v", r)
		}
		if r.Margin <= 0 || r.Margin > 1 {
			t.Errorf("margin %g out of range", r.Margin)
		}
		if r.Failures > 0 {
			if r.Planned != r.Failures {
				t.Errorf("planned %d of %d failures on a lightly degraded plane",
					r.Planned, r.Failures)
			}
			if r.Sweeps == 0 {
				t.Errorf("%s f=%d v=%d: no SM sweeps recorded", r.Engine, r.Failures, r.Variant)
			}
		}
	}
}

// A shared variant index means a shared failure chain: hxmin and hxnm cells
// of the same variant and count must inject the identical timeline (equal
// planned counts), differing only in how their tables cope.
func TestRunDegradedVariantsShareChains(t *testing.T) {
	spec := degradedTestSpec([]string{"hxmin", "hxnm"}, []int{4}, 2)
	res, err := RunDegraded(Runner{Workers: 2}, spec)
	if err != nil {
		t.Fatal(err)
	}
	byVariant := map[int][]DegradedResult{}
	for _, r := range res {
		byVariant[r.Variant] = append(byVariant[r.Variant], r)
	}
	for v, rs := range byVariant {
		if len(rs) != 2 {
			t.Fatalf("variant %d has %d results, want 2 engines", v, len(rs))
		}
		if rs[0].Planned != rs[1].Planned || rs[0].Seed != rs[1].Seed {
			t.Errorf("variant %d chains diverge across engines: %+v vs %+v", v, rs[0], rs[1])
		}
	}
}

// The tentpole acceptance sweep: >= 200 seeded degradation variants across
// >= 2 fault-tolerant engines, completing deterministically with goodput,
// unreachable-pair and deadlock-margin columns populated. hxmin is allowed
// to strand pairs (that is its trade-off, reported not panicked); hxnm must
// keep every pair reachable on connectivity-preserving chains.
func TestRunDegradedSweepAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("acceptance sweep skipped in -short")
	}
	spec := degradedTestSpec([]string{"hxmin", "hxnm"}, []int{0, 3, 6, 9}, 25)
	res, err := RunDegraded(Runner{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2*4*25 {
		t.Fatalf("got %d results, want 200", len(res))
	}
	for _, r := range res {
		if !r.Survived {
			// hxmin trades reachability for minimality: a wedged run is
			// legitimate sweep data, but only for hxmin, and only when the
			// final-state analysis confirms stranded pairs explain it.
			if r.Engine != "hxmin" || r.Unreachable == 0 {
				t.Errorf("%s f=%d v=%d did not survive: %s", r.Engine, r.Failures, r.Variant, r.Err)
			}
			continue
		}
		if !r.DeadlockFree {
			t.Errorf("%s f=%d v=%d tables not deadlock-free", r.Engine, r.Failures, r.Variant)
		}
		if r.Margin <= 0 || r.Margin > 1 {
			t.Errorf("%s f=%d v=%d margin %g out of range", r.Engine, r.Failures, r.Variant, r.Margin)
		}
		if r.Engine == "hxnm" && r.Unreachable > 0 {
			t.Errorf("hxnm stranded %d pairs at f=%d v=%d on a connectivity-preserving chain",
				r.Unreachable, r.Failures, r.Variant)
		}
		if r.Failures == 0 && r.Unreachable > 0 {
			t.Errorf("%s stranded %d pairs on a healthy plane", r.Engine, r.Unreachable)
		}
	}
	rows := SummarizeDegraded(res)
	if len(rows) != 2*4 {
		t.Fatalf("got %d summary rows, want 8", len(rows))
	}
	for _, row := range rows {
		if row.Variants != 25 {
			t.Errorf("row %s f=%d aggregates %d variants, want 25", row.Engine, row.Failures, row.Variants)
		}
		if row.Survived != row.Variants && (row.Engine != "hxmin" || row.Failures == 0) {
			t.Errorf("row %s f=%d: %d/%d survived", row.Engine, row.Failures, row.Survived, row.Variants)
		}
		if row.MarginMin <= 0 || row.MarginMin > row.MarginMean || row.MarginMean > 1 {
			t.Errorf("row %s f=%d margin stats out of order: min=%g mean=%g",
				row.Engine, row.Failures, row.MarginMin, row.MarginMean)
		}
	}
	// Margins must not improve as failures climb: more failures, less slack.
	for _, eng := range []string{"hxmin", "hxnm"} {
		var healthy, worst DegradedRow
		for _, row := range rows {
			if row.Engine != eng {
				continue
			}
			if row.Failures == 0 {
				healthy = row
			}
			if row.Failures == 9 {
				worst = row
			}
		}
		t.Logf("%s: margin mean %.3f (healthy) -> %.3f (9 failures); unreachable mean %.2f max %d",
			eng, healthy.MarginMean, worst.MarginMean, worst.UnreachableMean, worst.UnreachableMax)
	}
}

func TestSummarizeDegradedGroups(t *testing.T) {
	res := []DegradedResult{
		{Engine: "hxnm", Workload: "a2a", Failures: 3, Survived: true,
			Baseline: 100, Faulted: 150, GoodputDuring: 10, Margin: 0.8, Unreachable: 0},
		{Engine: "hxnm", Workload: "a2a", Failures: 3, Survived: false,
			Err: "wedged", Margin: 0.6, Unreachable: 2},
		{Engine: "hxmin", Workload: "a2a", Failures: 3, Survived: true,
			Baseline: 100, Faulted: 120, GoodputDuring: 20, Margin: 0.9, Unreachable: 4},
	}
	rows := SummarizeDegraded(res)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	nm := rows[0]
	if nm.Engine != "hxnm" || nm.Variants != 2 || nm.Survived != 1 {
		t.Fatalf("hxnm row wrong: %+v", nm)
	}
	if nm.MarginMin != 0.6 || nm.UnreachableMax != 2 {
		t.Errorf("hxnm extremes wrong: %+v", nm)
	}
	if nm.SlowdownMed != 0.5 {
		t.Errorf("hxnm slowdown median %g, want 0.5 (dead variant excluded)", nm.SlowdownMed)
	}
	if rows[1].Engine != "hxmin" {
		t.Errorf("rows not in first-seen order: %+v", rows)
	}
}

// RunAll keeps completed work when some cells fail, labelling each error.
func TestRunAllPartialResults(t *testing.T) {
	boom := errors.New("boom")
	cells := []Cell{
		{Label: "ok-0", Run: func(uint64) (any, error) { return 10, nil }},
		{Label: "bad-1", Run: func(uint64) (any, error) { return nil, boom }},
		{Label: "ok-2", Run: func(uint64) (any, error) { return 30, nil }},
		{Label: "bad-3", Run: func(uint64) (any, error) { return nil, boom }},
	}
	res, err := Runner{Workers: 2}.RunAll(cells)
	if err == nil {
		t.Fatal("joined error missing")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("joined error %v does not wrap the cell error", err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d results, want 4", len(res))
	}
	if res[0].Value != 10 || res[2].Value != 30 {
		t.Fatalf("completed values lost: %+v", res)
	}
	if res[1].Value != nil || res[3].Value != nil {
		t.Fatalf("failed cells carry values: %+v", res)
	}
}

func TestFaultSpecValidateTyped(t *testing.T) {
	m, err := BuildMachine(smallCombo(), MachineConfig{Small: true})
	if err != nil {
		t.Fatal(err)
	}
	build := func(n int) (*workloads.Instance, error) {
		return workloads.BuildIMB("alltoall", n, 2048)
	}
	cases := []struct {
		name string
		spec FaultSpec
		want error
	}{
		{"nil machine", FaultSpec{Nodes: 4, Build: build}, ErrNilMachine},
		{"nil build", FaultSpec{Machine: m, Nodes: 4}, ErrNilBuild},
		{"negative failures", FaultSpec{Machine: m, Nodes: 4, Failures: -1, Build: build}, ErrBadFailures},
		{"too many failures", FaultSpec{Machine: m, Nodes: 4, Failures: 1 << 20, Build: build}, ErrBadFailures},
		{"zero nodes", FaultSpec{Machine: m, Build: build}, ErrBadNodes},
		{"too many nodes", FaultSpec{Machine: m, Nodes: 1 << 20, Build: build}, ErrBadNodes},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.spec.Validate(); !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want %v", err, tc.want)
			}
		})
	}
	ok := FaultSpec{Machine: m, Nodes: 4, Build: build}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	// RunFaultScenario and RunFaultBatch surface the same typed errors.
	if _, err := RunFaultScenario(FaultSpec{Machine: m, Nodes: -1, Build: build}); !errors.Is(err, ErrBadNodes) {
		t.Fatalf("RunFaultScenario bad spec: %v", err)
	}
	if _, err := RunFaultBatch(Runner{Workers: 1}, []FaultSpec{
		{Machine: m, Nodes: 4, Failures: -2, Build: build},
	}); !errors.Is(err, ErrBadFailures) {
		t.Fatalf("RunFaultBatch bad spec: %v", err)
	}
}
