package exp

import (
	"sync"
	"testing"

	"github.com/hpcsim/t2hx/internal/place"
	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

func smallCombo() Combo {
	return Combo{Name: "test", Topology: "hyperx", Routing: "dfsssp", Placement: place.Linear}
}

func smallPlane(t *testing.T) *Plane {
	t.Helper()
	m, err := BuildMachine(smallCombo(), MachineConfig{Small: true})
	if err != nil {
		t.Fatal(err)
	}
	return m.Primary()
}

func TestTableCacheHealthyDegradedNeverAlias(t *testing.T) {
	c := NewTableCache(8)
	p := smallPlane(t)
	healthy, err := c.Get(p.G, p.Spec.Routing, 0, p.buildTables)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.DegradeSwitchLinks(p.G, 3, 42); err != nil {
		t.Fatal(err)
	}
	degraded, err := c.Get(p.G, p.Spec.Routing, 0, p.buildTables)
	if err != nil {
		t.Fatal(err)
	}
	if healthy == degraded {
		t.Fatal("healthy and degraded graphs returned the same cached tables")
	}
	if s := c.Stats(); s.Hits != 0 || s.Misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 0/2 (distinct keys)", s.Hits, s.Misses)
	}
	// The degraded tables must not forward over a down link anywhere —
	// i.e. they really were built against the degraded mask, not aliased
	// from the healthy entry.
	for _, sw := range p.G.Switches() {
		for lid := route.LID(1); lid <= degraded.MaxLID(); lid++ {
			if degraded.OwnerOf(lid) < 0 {
				continue
			}
			ch := degraded.NextHop(sw, lid)
			if ch != route.NoChannel && p.G.Link(ch).Down {
				t.Fatalf("degraded tables route switch %d lid %d over a down link", sw, lid)
			}
		}
	}
}

func TestTableCacheHitAfterSMRestore(t *testing.T) {
	c := NewTableCache(8)
	p := smallPlane(t)
	before, err := c.Get(p.G, p.Spec.Routing, 0, p.buildTables)
	if err != nil {
		t.Fatal(err)
	}

	// Mimic RunFaultScenario: fail links, rebuild (new key), restore the
	// mask, rebuild again — the last build must be a cache hit.
	down := p.G.LiveSwitchLinks()[:3]
	for _, l := range down {
		l.Down = true
	}
	if _, err := c.Get(p.G, p.Spec.Routing, 0, p.buildTables); err != nil {
		t.Fatal(err)
	}
	for _, l := range down {
		l.Down = false
	}
	after, err := c.Get(p.G, p.Spec.Routing, 0, p.buildTables)
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 1 hit / 2 misses", s.Hits, s.Misses)
	}
	if before != after {
		t.Fatal("restored mask did not return the identical cached tables")
	}
}

func TestTableCacheRebindsToRequestersGraph(t *testing.T) {
	c := NewTableCache(8)
	pa := smallPlane(t)
	pb := smallPlane(t)
	ta, err := c.Get(pa.G, "dfsssp", 0, pa.buildTables)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := c.Get(pb.G, "dfsssp", 0, pb.buildTables)
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1 for two identical machines", s.Hits, s.Misses)
	}
	if ta.G != pa.G || tb.G != pb.G {
		t.Fatal("cached tables not rebound to the requesting machine's graph")
	}
	if !ta.Frozen() || !tb.Frozen() {
		t.Fatal("cached tables must be frozen")
	}
	// Shared forwarding state: identical next hops through both bindings.
	for _, sw := range pa.G.Switches() {
		if ta.NextHop(sw, ta.BaseLID[0]) != tb.NextHop(sw, tb.BaseLID[0]) {
			t.Fatal("rebound tables diverge")
		}
	}
}

func TestTableCacheSingleflight(t *testing.T) {
	c := NewTableCache(8)
	p := smallPlane(t)
	var mu sync.Mutex
	builds := 0
	build := func() (*route.Tables, error) {
		mu.Lock()
		builds++
		mu.Unlock()
		return p.buildTables()
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Get(p.G, p.Spec.Routing, 0, build); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if builds != 1 {
		t.Fatalf("build ran %d times for one key, want 1", builds)
	}
}

func TestTableCacheEviction(t *testing.T) {
	c := NewTableCache(2)
	p := smallPlane(t)
	for _, eng := range []string{"dfsssp", "sssp", "updown"} {
		eng := eng
		if _, err := c.Get(p.G, eng, 0, func() (*route.Tables, error) {
			sp := *p
			sp.Spec.Routing = eng
			return sp.buildTables()
		}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want cap 2", c.Len())
	}
	if got := c.Stats().Evictions; got != 1 {
		t.Fatalf("eviction counter = %d after one overflow, want 1", got)
	}
	// The oldest key (dfsssp) was evicted: requesting it again rebuilds.
	missesBefore := c.Stats().Misses
	if _, err := c.Get(p.G, "dfsssp", 0, p.buildTables); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Misses != missesBefore+1 {
		t.Fatal("evicted key did not rebuild")
	}
	if got := c.Stats().Evictions; got != 2 {
		t.Fatalf("eviction counter = %d after re-requesting the evicted key, want 2", got)
	}
}

// Degraded-sweep pressure: hundreds of near-identical down masks (random
// walks over one failure chain) churning through a small cache. The cache
// must stay within its cap, every returned table must match the mask it was
// requested under, and the incremental DownMask hash must agree with the
// graph's own key at every step.
func TestTableCacheDegradedSweepPressure(t *testing.T) {
	c := NewTableCache(16)
	p := smallPlane(t)
	chain, err := topo.DegradeChain(p.G, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRand(9)
	mask := topo.CaptureDownMask(p.G)
	for i := 0; i < 300; i++ {
		id := chain[rng.Intn(len(chain))]
		prev := mask.Clone()
		mask.Set(id, !mask.Get(id))
		mask.ApplyDelta(p.G, prev)
		if g := p.G.DownHash(); g != mask.Hash() {
			t.Fatalf("step %d: graph key %x != incremental mask hash %x", i, g, mask.Hash())
		}
		tb, err := c.Get(p.G, p.Spec.Routing, 0, p.buildTables)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if c.Len() > 16 {
			t.Fatalf("step %d: cache grew to %d entries past cap 16", i, c.Len())
		}
		// The tables must have been built against this exact mask: no next
		// hop may cross a currently-down link.
		for _, sw := range p.G.Switches() {
			for lid := route.LID(1); lid <= tb.MaxLID(); lid++ {
				if tb.OwnerOf(lid) < 0 {
					continue
				}
				if ch := tb.NextHop(sw, lid); ch != route.NoChannel && p.G.Link(ch).Down {
					t.Fatalf("step %d: cached tables for mask %x route over a down link", i, mask.Hash())
				}
			}
		}
	}
	s := c.Stats()
	if s.Hits == 0 || s.Misses == 0 {
		t.Fatalf("pressure walk saw hits=%d misses=%d; want both (revisits hit, evictions miss)", s.Hits, s.Misses)
	}
	if want := s.Misses - uint64(c.Len()); s.Evictions != want {
		t.Fatalf("evictions=%d, want misses-resident=%d (every miss past residency evicts)", s.Evictions, want)
	}
	t.Logf("300 near-identical masks: %d hits, %d misses, %d evictions, %d resident",
		s.Hits, s.Misses, s.Evictions, c.Len())
}

// Regression: two down masks differing in exactly one link must never share
// a cache entry — a collision would silently serve tables that route over
// the dead link. Every live switch link is tried.
func TestTableCacheKeysDistinguishSingleLink(t *testing.T) {
	c := NewTableCache(128)
	p := smallPlane(t)
	base, err := c.Get(p.G, p.Spec.Routing, 0, p.buildTables)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range p.G.LiveSwitchLinks() {
		l.Down = true
		tb, err := c.Get(p.G, p.Spec.Routing, 0, p.buildTables)
		if err != nil {
			t.Fatal(err)
		}
		if tb == base {
			t.Fatalf("mask differing only in link %d aliased the healthy entry", l.ID)
		}
		l.Down = false
	}
	s := c.Stats()
	if want := uint64(len(p.G.LiveSwitchLinks())) + 1; s.Misses != want {
		t.Fatalf("%d misses for %d distinct masks", s.Misses, want)
	}
	if s.Hits != 0 {
		t.Fatalf("%d unexpected hits: some single-link mask collided", s.Hits)
	}
}

func TestPlaneRebuildUsesDefaultCache(t *testing.T) {
	p := smallPlane(t)
	hitsBefore := DefaultTableCache.Stats().Hits
	tb, err := p.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	hitsAfter := DefaultTableCache.Stats().Hits
	if hitsAfter == hitsBefore {
		t.Fatal("Rebuild on an already-built plane missed the default cache")
	}
	if !tb.Frozen() {
		t.Fatal("Rebuild returned unfrozen tables")
	}
	if tb.G != p.G {
		t.Fatal("Rebuild returned tables bound to a foreign graph")
	}
}
