package exp

import (
	"sync"
	"testing"

	"github.com/hpcsim/t2hx/internal/place"
	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/topo"
)

func smallCombo() Combo {
	return Combo{Name: "test", Topology: "hyperx", Routing: "dfsssp", Placement: place.Linear}
}

func smallPlane(t *testing.T) *Plane {
	t.Helper()
	m, err := BuildMachine(smallCombo(), MachineConfig{Small: true})
	if err != nil {
		t.Fatal(err)
	}
	return m.Primary()
}

func TestTableCacheHealthyDegradedNeverAlias(t *testing.T) {
	c := NewTableCache(8)
	p := smallPlane(t)
	healthy, err := c.Get(p.G, p.Spec.Routing, 0, p.buildTables)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.DegradeSwitchLinks(p.G, 3, 42); err != nil {
		t.Fatal(err)
	}
	degraded, err := c.Get(p.G, p.Spec.Routing, 0, p.buildTables)
	if err != nil {
		t.Fatal(err)
	}
	if healthy == degraded {
		t.Fatal("healthy and degraded graphs returned the same cached tables")
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 0/2 (distinct keys)", hits, misses)
	}
	// The degraded tables must not forward over a down link anywhere —
	// i.e. they really were built against the degraded mask, not aliased
	// from the healthy entry.
	for _, sw := range p.G.Switches() {
		for lid := route.LID(1); lid <= degraded.MaxLID(); lid++ {
			if degraded.OwnerOf(lid) < 0 {
				continue
			}
			ch := degraded.NextHop(sw, lid)
			if ch != route.NoChannel && p.G.Link(ch).Down {
				t.Fatalf("degraded tables route switch %d lid %d over a down link", sw, lid)
			}
		}
	}
}

func TestTableCacheHitAfterSMRestore(t *testing.T) {
	c := NewTableCache(8)
	p := smallPlane(t)
	before, err := c.Get(p.G, p.Spec.Routing, 0, p.buildTables)
	if err != nil {
		t.Fatal(err)
	}

	// Mimic RunFaultScenario: fail links, rebuild (new key), restore the
	// mask, rebuild again — the last build must be a cache hit.
	down := p.G.LiveSwitchLinks()[:3]
	for _, l := range down {
		l.Down = true
	}
	if _, err := c.Get(p.G, p.Spec.Routing, 0, p.buildTables); err != nil {
		t.Fatal(err)
	}
	for _, l := range down {
		l.Down = false
	}
	after, err := c.Get(p.G, p.Spec.Routing, 0, p.buildTables)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 1 hit / 2 misses", hits, misses)
	}
	if before != after {
		t.Fatal("restored mask did not return the identical cached tables")
	}
}

func TestTableCacheRebindsToRequestersGraph(t *testing.T) {
	c := NewTableCache(8)
	pa := smallPlane(t)
	pb := smallPlane(t)
	ta, err := c.Get(pa.G, "dfsssp", 0, pa.buildTables)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := c.Get(pb.G, "dfsssp", 0, pb.buildTables)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1 for two identical machines", hits, misses)
	}
	if ta.G != pa.G || tb.G != pb.G {
		t.Fatal("cached tables not rebound to the requesting machine's graph")
	}
	if !ta.Frozen() || !tb.Frozen() {
		t.Fatal("cached tables must be frozen")
	}
	// Shared forwarding state: identical next hops through both bindings.
	for _, sw := range pa.G.Switches() {
		if ta.NextHop(sw, ta.BaseLID[0]) != tb.NextHop(sw, tb.BaseLID[0]) {
			t.Fatal("rebound tables diverge")
		}
	}
}

func TestTableCacheSingleflight(t *testing.T) {
	c := NewTableCache(8)
	p := smallPlane(t)
	var mu sync.Mutex
	builds := 0
	build := func() (*route.Tables, error) {
		mu.Lock()
		builds++
		mu.Unlock()
		return p.buildTables()
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Get(p.G, p.Spec.Routing, 0, build); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if builds != 1 {
		t.Fatalf("build ran %d times for one key, want 1", builds)
	}
}

func TestTableCacheEviction(t *testing.T) {
	c := NewTableCache(2)
	p := smallPlane(t)
	for _, eng := range []string{"dfsssp", "sssp", "updown"} {
		eng := eng
		if _, err := c.Get(p.G, eng, 0, func() (*route.Tables, error) {
			sp := *p
			sp.Spec.Routing = eng
			return sp.buildTables()
		}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want cap 2", c.Len())
	}
	// The oldest key (dfsssp) was evicted: requesting it again rebuilds.
	_, missesBefore := c.Stats()
	if _, err := c.Get(p.G, "dfsssp", 0, p.buildTables); err != nil {
		t.Fatal(err)
	}
	if _, misses := c.Stats(); misses != missesBefore+1 {
		t.Fatal("evicted key did not rebuild")
	}
}

func TestPlaneRebuildUsesDefaultCache(t *testing.T) {
	p := smallPlane(t)
	hitsBefore, _ := DefaultTableCache.Stats()
	tb, err := p.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	hitsAfter, _ := DefaultTableCache.Stats()
	if hitsAfter == hitsBefore {
		t.Fatal("Rebuild on an already-built plane missed the default cache")
	}
	if !tb.Frozen() {
		t.Fatal("Rebuild returned unfrozen tables")
	}
	if tb.G != p.G {
		t.Fatal("Rebuild returned tables bound to a foreign graph")
	}
}
