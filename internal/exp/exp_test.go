package exp

import (
	"math"
	"testing"

	"github.com/hpcsim/t2hx/internal/workloads"
)

func TestPaperCombosMatchSection443(t *testing.T) {
	cs := PaperCombos()
	if len(cs) != 5 {
		t.Fatalf("combos = %d, want 5", len(cs))
	}
	want := []string{
		"Fat-Tree / ftree / linear",
		"Fat-Tree / SSSP / clustered",
		"HyperX / DFSSSP / linear",
		"HyperX / DFSSSP / random",
		"HyperX / PARX / clustered",
	}
	for i, c := range cs {
		if c.Name != want[i] {
			t.Errorf("combo[%d] = %q, want %q", i, c.Name, want[i])
		}
	}
}

func TestBuildMachineSmallAllCombos(t *testing.T) {
	for _, c := range PaperCombos() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			m, err := BuildMachine(c, MachineConfig{Small: true, Degrade: true, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if m.G.NumTerminals() != 32 {
				t.Errorf("terminals = %d, want 32", m.G.NumTerminals())
			}
			f, err := m.NewFabric(1)
			if err != nil {
				t.Fatal(err)
			}
			if c.Routing == "parx" && f.PMLName() != "bfo" {
				t.Error("PARX machine did not enable the bfo PML")
			}
			if c.Routing != "parx" && f.PMLName() != "ob1" {
				t.Error("non-PARX machine should use ob1")
			}
			ranks, err := m.Place(8, 42)
			if err != nil {
				t.Fatal(err)
			}
			if len(ranks) != 8 {
				t.Errorf("placed %d ranks", len(ranks))
			}
		})
	}
}

func TestBuildMachineRejectsMismatches(t *testing.T) {
	if _, err := BuildMachine(Combo{Topology: "hyperx", Routing: "ftree"}, MachineConfig{Small: true}); err == nil {
		t.Error("ftree on HyperX accepted")
	}
	if _, err := BuildMachine(Combo{Topology: "fattree", Routing: "parx"}, MachineConfig{Small: true}); err == nil {
		t.Error("PARX on Fat-Tree accepted")
	}
	if _, err := BuildMachine(Combo{Topology: "mesh"}, MachineConfig{Small: true}); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestSummarizeStats(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.N != 5 {
		t.Errorf("stats = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Errorf("quartiles = %v/%v, want 2/4", s.Q1, s.Q3)
	}
	if s.Mean != 3 {
		t.Errorf("mean = %v", s.Mean)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Error("empty stats")
	}
}

func TestGainDirections(t *testing.T) {
	// Lower is better: candidate twice as fast -> gain +1.
	if g := Gain(10, 5, workloads.LowerIsBetter); math.Abs(g-1) > 1e-12 {
		t.Errorf("gain = %v, want 1", g)
	}
	// Candidate twice as slow -> gain -0.5.
	if g := Gain(10, 20, workloads.LowerIsBetter); math.Abs(g+0.5) > 1e-12 {
		t.Errorf("gain = %v, want -0.5", g)
	}
	// Higher is better: +20%.
	if g := Gain(100, 120, workloads.HigherIsBetter); math.Abs(g-0.2) > 1e-12 {
		t.Errorf("gain = %v, want 0.2", g)
	}
	if Gain(0, 5, workloads.LowerIsBetter) != 0 {
		t.Error("zero baseline must not divide")
	}
}

func TestStatsBest(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.Best(workloads.LowerIsBetter) != 1 {
		t.Error("best of lower-is-better should be min")
	}
	if s.Best(workloads.HigherIsBetter) != 3 {
		t.Error("best of higher-is-better should be max")
	}
}

func TestRunTrialsProducesJitteredValues(t *testing.T) {
	m, err := BuildMachine(PaperCombos()[2], MachineConfig{Small: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	vals, inst, err := RunTrials(TrialSpec{
		Machine: m, Nodes: 8, Trials: 4, Seed: 11, Jitter: 0.03,
		Build: func(n int) (*workloads.Instance, error) {
			return workloads.BuildIMB("allreduce", n, 4096)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 4 || inst == nil {
		t.Fatalf("got %d trials", len(vals))
	}
	distinct := false
	for i := 1; i < len(vals); i++ {
		if vals[i] != vals[0] {
			distinct = true
		}
	}
	if !distinct {
		t.Error("jittered trials all identical")
	}
}

func TestRunTrialsDeterministicWithoutJitter(t *testing.T) {
	m, err := BuildMachine(PaperCombos()[4], MachineConfig{Small: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	build := func(n int) (*workloads.Instance, error) {
		return workloads.BuildIMB("bcast", n, 1024)
	}
	a, _, err := RunTrials(TrialSpec{Machine: m, Nodes: 8, Trials: 1, Seed: 5, Build: build})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunTrials(TrialSpec{Machine: m, Nodes: 8, Trials: 1, Seed: 5, Build: build})
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Errorf("same seed gave %v vs %v", a[0], b[0])
	}
}

// The headline behaviour at small scale: for large messages between
// adjacent switches, PARX's multi-path routing should beat single-path
// DFSSSP on the same HyperX when the traffic saturates one cable.
func TestPARXBeatsDFSSSPOnAdjacentAlltoall(t *testing.T) {
	build := func(n int) (*workloads.Instance, error) {
		return workloads.BuildIMB("alltoall", n, 1<<20)
	}
	var lat [2]float64
	for i, combo := range []Combo{PaperCombos()[2], PaperCombos()[4]} {
		m, err := BuildMachine(combo, MachineConfig{Small: true, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		// Linear placement on the small HyperX puts 4 ranks on two
		// adjacent switches.
		vals, inst, err := RunTrials(TrialSpec{Machine: m, Nodes: 4, Trials: 1, Seed: 5,
			Build: build})
		if err != nil {
			t.Fatal(err)
		}
		_ = inst
		lat[i] = vals[0]
	}
	if lat[1] >= lat[0] {
		t.Errorf("PARX alltoall latency %v >= DFSSSP %v; non-minimal paths gave no benefit", lat[1], lat[0])
	}
}
