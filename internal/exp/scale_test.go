package exp

import (
	"os"
	"testing"

	"github.com/hpcsim/t2hx/internal/sim"
)

// A scaled-down endurance run that exercises the whole RunScale loop —
// windowed closed-loop traffic, stride generator, drain check — in well
// under a second.
func TestRunScaleSmall(t *testing.T) {
	var ticks int
	res, err := RunScale(ScaleSpec{
		S: []int{4, 4}, T: 8,
		Window: 32, Messages: 5000, MsgBytes: 4096,
		Strides: 4, Seed: 1,
		Progress:      func(uint64, sim.Time) { ticks++ },
		ProgressEvery: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminals != 128 || res.Switches != 16 {
		t.Errorf("built %d terminals / %d switches, want 128 / 16", res.Terminals, res.Switches)
	}
	if res.Delivered != 5000 {
		t.Errorf("Delivered = %d, want 5000", res.Delivered)
	}
	if res.DeliveredBytes != 5000*4096 {
		t.Errorf("DeliveredBytes = %g, want %d", res.DeliveredBytes, 5000*4096)
	}
	if res.SimElapsed <= 0 {
		t.Errorf("SimElapsed = %v, want > 0", res.SimElapsed)
	}
	if res.Recomputes == 0 {
		t.Error("no flow recomputes recorded")
	}
	if ticks < 5 {
		t.Errorf("progress fired %d times, want >= 5", ticks)
	}
}

func TestRunScaleRejectsUnknownRouting(t *testing.T) {
	if _, err := RunScale(ScaleSpec{S: []int{2, 2}, T: 2, Routing: "parx", Messages: 1}); err == nil {
		t.Fatal("unknown routing accepted")
	}
}

// The acceptance-criteria configuration: a 12x8 HyperX at T=342 (32832
// terminals) delivering a million messages. Minutes of CPU, so gated.
func TestRunScale32kTerminals(t *testing.T) {
	if os.Getenv("T2HX_SCALE") == "" {
		t.Skip("set T2HX_SCALE=1 to run the 32k-terminal endurance configuration")
	}
	res, err := RunScale(ScaleSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminals < 32768 {
		t.Errorf("Terminals = %d, want >= 32768", res.Terminals)
	}
	if res.Delivered < 1_000_000 {
		t.Errorf("Delivered = %d, want >= 1e6", res.Delivered)
	}
	t.Logf("terminals=%d delivered=%d sim=%.3fs build=%v run=%v recomputes=%d peakRSS=%.1f MiB",
		res.Terminals, res.Delivered, float64(res.SimElapsed), res.BuildWall, res.RunWall,
		res.Recomputes, float64(res.PeakRSSBytes)/(1<<20))
}
