package exp

import (
	"os"
	"testing"

	"github.com/hpcsim/t2hx/internal/sim"
)

// A scaled-down endurance run that exercises the whole RunScale loop —
// windowed closed-loop traffic, stride generator, drain check — in well
// under a second.
func TestRunScaleSmall(t *testing.T) {
	var ticks int
	res, err := RunScale(ScaleSpec{
		S: []int{4, 4}, T: 8,
		Window: 32, Messages: 5000, MsgBytes: 4096,
		Strides: 4, Seed: 1,
		Progress:      func(uint64, sim.Time, uint64) { ticks++ },
		ProgressEvery: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminals != 128 || res.Switches != 16 {
		t.Errorf("built %d terminals / %d switches, want 128 / 16", res.Terminals, res.Switches)
	}
	if res.Delivered != 5000 {
		t.Errorf("Delivered = %d, want 5000", res.Delivered)
	}
	if res.DeliveredBytes != 5000*4096 {
		t.Errorf("DeliveredBytes = %g, want %d", res.DeliveredBytes, 5000*4096)
	}
	if res.SimElapsed <= 0 {
		t.Errorf("SimElapsed = %v, want > 0", res.SimElapsed)
	}
	if res.Recomputes == 0 {
		t.Error("no flow recomputes recorded")
	}
	if ticks < 5 {
		t.Errorf("progress fired %d times, want >= 5", ticks)
	}
}

// TestScaleStrides pins the stride-generator contract: distinct offsets
// in [1, n-1] (the old modular formula emitted duplicates when Strides
// was large relative to n), clamping to the n-1 distinct offsets that
// exist, and a hard error on degenerate lattices instead of a self-send
// patch loop.
func TestScaleStrides(t *testing.T) {
	cases := []struct{ n, count, wantLen int }{
		{8, 20, 7},   // clamp: only 7 distinct non-self offsets exist
		{8, 7, 7},    // exact fit
		{128, 4, 4},  // spread across the index space
		{128, 8, 8},  // the default count at small n
		{2, 8, 1},    // minimum viable lattice
		{342, 0, 1},  // count floor
		{342, -3, 1}, // count floor on nonsense input
	}
	for _, c := range cases {
		strides, err := scaleStrides(c.n, c.count)
		if err != nil {
			t.Fatalf("scaleStrides(%d, %d): %v", c.n, c.count, err)
		}
		if len(strides) != c.wantLen {
			t.Errorf("scaleStrides(%d, %d) emitted %d strides, want %d",
				c.n, c.count, len(strides), c.wantLen)
		}
		seen := map[int]bool{}
		for _, s := range strides {
			if s < 1 || s > c.n-1 {
				t.Errorf("scaleStrides(%d, %d): stride %d outside [1, %d]", c.n, c.count, s, c.n-1)
			}
			if seen[s] {
				t.Errorf("scaleStrides(%d, %d): duplicate stride %d", c.n, c.count, s)
			}
			seen[s] = true
		}
	}
	for _, n := range []int{0, 1} {
		if _, err := scaleStrides(n, 8); err == nil {
			t.Errorf("scaleStrides(%d, 8): degenerate lattice accepted", n)
		}
	}
}

// TestScaleProgressNoDuplicateFinal checks the progress contract: when
// the budget is a multiple of ProgressEvery the last delivery's callback
// IS the final report, and the post-drain call must not repeat it.
func TestScaleProgressNoDuplicateFinal(t *testing.T) {
	run := func(messages uint64) []uint64 {
		var calls []uint64
		_, err := RunScale(ScaleSpec{
			S: []int{2, 2}, T: 2,
			Window: 8, Messages: messages, MsgBytes: 4096,
			Strides: 4, Seed: 1,
			Progress:      func(d uint64, _ sim.Time, _ uint64) { calls = append(calls, d) },
			ProgressEvery: 500,
		})
		if err != nil {
			t.Fatal(err)
		}
		return calls
	}
	// Budget divides ProgressEvery: exactly Messages/ProgressEvery calls,
	// the last one already carrying the final total.
	calls := run(2000)
	want := []uint64{500, 1000, 1500, 2000}
	if len(calls) != len(want) {
		t.Fatalf("progress calls %v, want %v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("progress calls %v, want %v", calls, want)
		}
	}
	// Budget leaves a tail: one extra final call with the drain total.
	calls = run(2200)
	if len(calls) != 5 || calls[4] != 2200 {
		t.Fatalf("progress calls %v, want [500 1000 1500 2000 2200]", calls)
	}
}

// TestRunScaleDeterministicAcrossSolverWorkers holds the endurance loop
// to the shard determinism contract end to end: the simulated clock,
// delivery counts and recompute counts must be identical at any
// -solver-j, mirroring the flow-level TestShardDeterminism.
func TestRunScaleDeterministicAcrossSolverWorkers(t *testing.T) {
	run := func(j int) *ScaleResult {
		res, err := RunScale(ScaleSpec{
			S: []int{4, 4}, T: 4,
			Window: 256, Messages: 3000, MsgBytes: 64 * 1024,
			Strides: 6, Seed: 7, SolverWorkers: j,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(0)
	if base.SolverWorkers != 1 {
		t.Errorf("SolverWorkers=0 resolved to %d, want sequential 1", base.SolverWorkers)
	}
	for _, j := range []int{2, 8} {
		got := run(j)
		if got.SolverWorkers != j {
			t.Errorf("solver-j %d: result reports %d workers", j, got.SolverWorkers)
		}
		if got.SimElapsed != base.SimElapsed {
			t.Errorf("solver-j %d: SimElapsed %v vs %v (not bit-identical)",
				j, got.SimElapsed, base.SimElapsed)
		}
		if got.Delivered != base.Delivered || got.DeliveredBytes != base.DeliveredBytes {
			t.Errorf("solver-j %d: delivered %d/%g vs %d/%g",
				j, got.Delivered, got.DeliveredBytes, base.Delivered, base.DeliveredBytes)
		}
		if got.Recomputes != base.Recomputes {
			t.Errorf("solver-j %d: %d recomputes vs %d", j, got.Recomputes, base.Recomputes)
		}
	}
}

func TestRunScaleRejectsUnknownRouting(t *testing.T) {
	if _, err := RunScale(ScaleSpec{S: []int{2, 2}, T: 2, Routing: "parx", Messages: 1}); err == nil {
		t.Fatal("unknown routing accepted")
	}
}

// The acceptance-criteria configuration: a 12x8 HyperX at T=342 (32832
// terminals) delivering a million messages. Minutes of CPU, so gated.
func TestRunScale32kTerminals(t *testing.T) {
	if os.Getenv("T2HX_SCALE") == "" {
		t.Skip("set T2HX_SCALE=1 to run the 32k-terminal endurance configuration")
	}
	res, err := RunScale(ScaleSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminals < 32768 {
		t.Errorf("Terminals = %d, want >= 32768", res.Terminals)
	}
	if res.Delivered < 1_000_000 {
		t.Errorf("Delivered = %d, want >= 1e6", res.Delivered)
	}
	t.Logf("terminals=%d delivered=%d sim=%.3fs build=%v run=%v recomputes=%d peakRSS=%.1f MiB",
		res.Terminals, res.Delivered, float64(res.SimElapsed), res.BuildWall, res.RunWall,
		res.Recomputes, float64(res.PeakRSSBytes)/(1<<20))
}
