// Package exp is the experiment harness: it assembles the paper's five
// topology/routing/placement combinations (Sec. 4.4.3), runs workloads over
// the capability-scaling ladders with repeated trials (Sec. 4.4.1), and
// reduces the timings to the statistics the paper plots — min/median/
// quartiles/max whiskers and the relative performance gain over the
// "Fat-Tree / ftree / linear" baseline.
package exp

import (
	"fmt"
	"sort"

	"github.com/hpcsim/t2hx/internal/core"
	"github.com/hpcsim/t2hx/internal/fabric"
	"github.com/hpcsim/t2hx/internal/mpi"
	"github.com/hpcsim/t2hx/internal/place"
	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
	"github.com/hpcsim/t2hx/internal/workloads"
)

// Combo is one of the evaluated machine configurations: either a single
// topology/routing pair, or a multi-plane machine described by Planes.
type Combo struct {
	Name      string
	Topology  string // "fattree" | "hyperx"
	Routing   string // "ftree" | "sssp" | "dfsssp" | "parx"
	Placement place.Strategy

	// Planes, when non-empty, makes this a multi-plane combo: each spec
	// is one rail attached to the same nodes, and Topology/Routing are
	// ignored. Policy names the fabric.SelectionPolicy that picks the
	// plane per message (fabric.ParsePolicy syntax); empty means single
	// (all traffic on plane 0).
	Planes []PlaneSpec
	Policy string
}

// MultiPlane reports whether the combo describes a machine with more than
// one network plane.
func (c Combo) MultiPlane() bool { return len(c.Planes) > 1 }

// PaperCombos returns the five single-plane combinations of Sec. 4.4.3 in
// paper order; index 0 is the baseline. The dual-plane machine the paper
// actually operated is DualPlaneCombo (kept out of this list so per-combo
// figures and tests keep their historical five columns); AllCombos
// returns both.
func PaperCombos() []Combo {
	return []Combo{
		{Name: "Fat-Tree / ftree / linear", Topology: "fattree", Routing: "ftree", Placement: place.Linear},
		{Name: "Fat-Tree / SSSP / clustered", Topology: "fattree", Routing: "sssp", Placement: place.Clustered},
		{Name: "HyperX / DFSSSP / linear", Topology: "hyperx", Routing: "dfsssp", Placement: place.Linear},
		{Name: "HyperX / DFSSSP / random", Topology: "hyperx", Routing: "dfsssp", Placement: place.Random},
		{Name: "HyperX / PARX / clustered", Topology: "hyperx", Routing: "parx", Placement: place.Clustered},
	}
}

// DualPlaneCombo is the machine the paper actually operated (Sec. 2):
// TSUBAME2's compute nodes kept their first rail on the 3-level Fat-Tree
// (ftree routing) while the second rail was rebuilt into the 12x8 HyperX
// driven by PARX. The sizesplit policy generalizes PARX's message-size
// LID switch to plane granularity: latency-bound messages ride the
// diameter-2 HyperX, bandwidth-bound ones the full-bisection Fat-Tree.
func DualPlaneCombo() Combo {
	return Combo{
		Name:      "TSUBAME2 dual-plane / ftree+parx / sizesplit",
		Placement: place.Linear,
		Planes: []PlaneSpec{
			{Name: "fattree", Topology: "fattree", Routing: "ftree"},
			{Name: "hyperx", Topology: "hyperx", Routing: "parx"},
		},
		Policy: "sizesplit",
	}
}

// AllCombos returns the five paper combos followed by the dual-plane
// machine configuration.
func AllCombos() []Combo { return append(PaperCombos(), DualPlaneCombo()) }

// Machine is a built and routed machine, reusable across runs (the
// routing tables are read-only at run time). It owns one or more network
// planes; Planes[0] is the primary plane, whose terminal NodeIDs are the
// machine's canonical addresses (placement, workloads and the Messenger
// API all speak primary-plane IDs).
type Machine struct {
	Combo  Combo
	Cfg    MachineConfig
	Planes []*Plane

	// G/HX/FT/Tables mirror the primary plane, preserving the
	// single-plane API every existing caller was built against.
	G      *topo.Graph
	HX     *topo.HyperX  // non-nil for HyperX primary planes
	FT     *topo.FatTree // non-nil for Fat-Tree primary planes
	Tables *route.Tables
}

// MachineConfig controls plane construction.
type MachineConfig struct {
	// Degrade removes the paper's broken-cable counts (Sec. 2.3).
	Degrade bool
	// Seed drives degradation and placement randomness.
	Seed uint64
	// Demands optionally re-routes PARX for a communication profile
	// (ignored by other engines).
	Demands core.Demands
	// Small builds a scaled-down machine (4x4 HyperX / 4-ary tree with 32
	// terminals) for tests and benches.
	Small bool
	// Planes overrides the combo's plane list (multi-plane machine spec);
	// Policy overrides the combo's plane-selection policy.
	Planes []PlaneSpec
	Policy string
}

// BuildMachine constructs every plane of a combo. The plane list resolves
// as MachineConfig.Planes, then Combo.Planes, then the single plane named
// by Combo.Topology/Routing; all planes must attach the same number of
// terminals.
func BuildMachine(c Combo, cfg MachineConfig) (*Machine, error) {
	m := &Machine{Combo: c, Cfg: cfg}
	specs := cfg.Planes
	if len(specs) == 0 {
		specs = c.Planes
	}
	if len(specs) == 0 {
		specs = []PlaneSpec{{Topology: c.Topology, Routing: c.Routing}}
	}
	for _, spec := range specs {
		p, err := BuildPlane(spec, cfg)
		if err != nil {
			return nil, err
		}
		m.Planes = append(m.Planes, p)
	}
	prim := m.Planes[0]
	for _, p := range m.Planes[1:] {
		if p.G.NumTerminals() != prim.G.NumTerminals() {
			return nil, fmt.Errorf("exp: plane %s attaches %d terminals, plane %s attaches %d — planes must serve the same nodes",
				p.Spec.Label(), p.G.NumTerminals(), prim.Spec.Label(), prim.G.NumTerminals())
		}
	}
	m.G, m.HX, m.FT, m.Tables = prim.G, prim.HX, prim.FT, prim.Tables
	return m, nil
}

// Primary returns the machine's primary plane (Planes[0]).
func (m *Machine) Primary() *Plane { return m.Planes[0] }

// MultiPlane reports whether the machine was built with more than one
// plane.
func (m *Machine) MultiPlane() bool { return len(m.Planes) > 1 }

// PolicySpec resolves the machine's plane-selection policy string:
// MachineConfig overrides the combo, default "single".
func (m *Machine) PolicySpec() string {
	if m.Cfg.Policy != "" {
		return m.Cfg.Policy
	}
	if m.Combo.Policy != "" {
		return m.Combo.Policy
	}
	return "single"
}

// NewFabric creates a fresh single-plane fabric (own engine and flow
// state) over the machine's primary plane; the bfo PML is enabled
// automatically for PARX.
func (m *Machine) NewFabric(seed uint64) (*fabric.Fabric, error) {
	return m.Primary().NewFabric(sim.NewEngine(), seed)
}

// NewMultiFabric creates a fresh multi-plane fabric: one engine shared by
// per-plane fabrics, with sends routed by the machine's policy. Plane 0's
// fabric is seeded exactly like NewFabric's, so the single policy on a
// multi-fabric reproduces a plain single-plane run byte for byte.
func (m *Machine) NewMultiFabric(seed uint64) (*fabric.MultiFabric, error) {
	eng := sim.NewEngine()
	planes := make([]*fabric.Fabric, 0, len(m.Planes))
	names := make([]string, 0, len(m.Planes))
	for i, p := range m.Planes {
		s := seed
		if i > 0 {
			// Decorrelate secondary planes' PML randomness from plane 0
			// without touching the primary's seed.
			s = seed + uint64(i)*0x9e3779b97f4a7c15
		}
		f, err := p.NewFabric(eng, s)
		if err != nil {
			return nil, err
		}
		planes = append(planes, f)
		names = append(names, p.Spec.Label())
	}
	pol, err := fabric.ParsePolicy(m.PolicySpec(), len(planes))
	if err != nil {
		return nil, err
	}
	return fabric.NewMulti(planes, names, pol)
}

// NewMessenger creates the transport for a run: a plain fabric for
// single-plane machines (byte-for-byte the historical behaviour), a
// MultiFabric for multi-plane ones.
func (m *Machine) NewMessenger(seed uint64) (fabric.Messenger, error) {
	if !m.MultiPlane() {
		return m.NewFabric(seed)
	}
	return m.NewMultiFabric(seed)
}

// Place selects n nodes per the combo's placement strategy.
func (m *Machine) Place(n int, seed uint64) ([]topo.NodeID, error) {
	return place.Place(m.Combo.Placement, m.G.Terminals(), n, seed)
}

// Stats are the whisker-plot statistics of Figs. 5b/5c/6.
type Stats struct {
	N                        int
	Min, Q1, Median, Q3, Max float64
	Mean                     float64
}

// Summarize computes whisker statistics.
func Summarize(vals []float64) Stats {
	if len(vals) == 0 {
		return Stats{}
	}
	v := append([]float64{}, vals...)
	sort.Float64s(v)
	q := func(p float64) float64 {
		idx := p * float64(len(v)-1)
		lo := int(idx)
		hi := lo + 1
		if hi >= len(v) {
			return v[lo]
		}
		frac := idx - float64(lo)
		return v[lo]*(1-frac) + v[hi]*frac
	}
	s := Stats{N: len(v), Min: v[0], Max: v[len(v)-1], Q1: q(0.25), Median: q(0.5), Q3: q(0.75)}
	for _, x := range v {
		s.Mean += x
	}
	s.Mean /= float64(len(v))
	return s
}

// Best extracts the paper's "absolute best observed" value: min for
// lower-is-better metrics, max otherwise.
func (s Stats) Best(better workloads.Direction) float64 {
	if better == workloads.HigherIsBetter {
		return s.Max
	}
	return s.Min
}

// Gain is the relative performance gain over a baseline (Hoefler & Belli):
// positive means the candidate beats the baseline, for either metric
// direction.
func Gain(baseline, candidate float64, better workloads.Direction) float64 {
	if baseline == 0 {
		return 0
	}
	if better == workloads.HigherIsBetter {
		return candidate/baseline - 1
	}
	return baseline/candidate - 1
}

// TrialSpec describes one measurement cell: a workload instance run some
// number of times on a machine.
type TrialSpec struct {
	Machine *Machine
	Nodes   int
	Trials  int
	Seed    uint64
	// Jitter is the lognormal sigma for compute phases; the paper's
	// run-to-run variability. Zero keeps runs identical.
	Jitter float64
	// Build constructs the workload instance. Instances are read-only at
	// run time (mpi.Run never mutates Progs), so with Jitter == 0 RunTrials
	// builds once and reuses the instance across all trials. With jitter
	// enabled it rebuilds per trial, preserving the historical behaviour
	// for Build closures that carry their own per-call randomness.
	Build func(n int) (*workloads.Instance, error)
	// Attach, when set, observes each trial's fresh transport before the
	// run starts — the hook the CLI uses to attach a telemetry collector
	// (typically to the final trial only, so counters and trace cover one
	// run rather than overlapping engine timelines). The messenger is a
	// *fabric.Fabric for single-plane machines and a *fabric.MultiFabric
	// for multi-plane ones; type-switch to reach plane internals.
	Attach func(trial int, f fabric.Messenger)
}

// RunTrials executes the cell and returns the per-trial metric values.
// The placement is fixed across trials (like rerunning a job in the same
// allocation); jitter and PML randomness vary by trial.
func RunTrials(spec TrialSpec) ([]float64, *workloads.Instance, error) {
	if spec.Trials < 1 {
		spec.Trials = 1
	}
	ranks, err := spec.Machine.Place(spec.Nodes, spec.Seed)
	if err != nil {
		return nil, nil, err
	}
	var vals []float64
	var inst *workloads.Instance
	for t := 0; t < spec.Trials; t++ {
		if inst == nil || spec.Jitter != 0 {
			// Jitter-free trials share one instance (see TrialSpec.Build).
			inst, err = spec.Build(spec.Nodes)
			if err != nil {
				return nil, nil, err
			}
		}
		f, err := spec.Machine.NewMessenger(spec.Seed + uint64(t)*7919)
		if err != nil {
			return nil, nil, err
		}
		if spec.Attach != nil {
			spec.Attach(t, f)
		}
		res, err := mpi.Run(f, "trial", ranks, inst.Progs, mpi.Options{
			ComputeJitterSigma: spec.Jitter,
			Seed:               spec.Seed + uint64(t)*104729,
		})
		if err != nil {
			return nil, nil, err
		}
		vals = append(vals, inst.Score(res.Elapsed))
	}
	return vals, inst, nil
}
