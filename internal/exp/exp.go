// Package exp is the experiment harness: it assembles the paper's five
// topology/routing/placement combinations (Sec. 4.4.3), runs workloads over
// the capability-scaling ladders with repeated trials (Sec. 4.4.1), and
// reduces the timings to the statistics the paper plots — min/median/
// quartiles/max whiskers and the relative performance gain over the
// "Fat-Tree / ftree / linear" baseline.
package exp

import (
	"fmt"
	"sort"

	"github.com/hpcsim/t2hx/internal/core"
	"github.com/hpcsim/t2hx/internal/fabric"
	"github.com/hpcsim/t2hx/internal/mpi"
	"github.com/hpcsim/t2hx/internal/place"
	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
	"github.com/hpcsim/t2hx/internal/workloads"
)

// Combo is one of the evaluated topology/routing/placement combinations.
type Combo struct {
	Name      string
	Topology  string // "fattree" | "hyperx"
	Routing   string // "ftree" | "sssp" | "dfsssp" | "parx"
	Placement place.Strategy
}

// PaperCombos returns the five combinations of Sec. 4.4.3 in paper order;
// index 0 is the baseline.
func PaperCombos() []Combo {
	return []Combo{
		{"Fat-Tree / ftree / linear", "fattree", "ftree", place.Linear},
		{"Fat-Tree / SSSP / clustered", "fattree", "sssp", place.Clustered},
		{"HyperX / DFSSSP / linear", "hyperx", "dfsssp", place.Linear},
		{"HyperX / DFSSSP / random", "hyperx", "dfsssp", place.Random},
		{"HyperX / PARX / clustered", "hyperx", "parx", place.Clustered},
	}
}

// Machine is a built and routed network plane, reusable across runs (the
// routing tables are read-only at run time).
type Machine struct {
	Combo  Combo
	Cfg    MachineConfig
	G      *topo.Graph
	HX     *topo.HyperX  // non-nil for HyperX planes
	FT     *topo.FatTree // non-nil for Fat-Tree planes
	Tables *route.Tables
}

// MachineConfig controls plane construction.
type MachineConfig struct {
	// Degrade removes the paper's broken-cable counts (Sec. 2.3).
	Degrade bool
	// Seed drives degradation and placement randomness.
	Seed uint64
	// Demands optionally re-routes PARX for a communication profile
	// (ignored by other engines).
	Demands core.Demands
	// Small builds a scaled-down machine (4x4 HyperX / 4-ary tree with 32
	// terminals) for tests and benches.
	Small bool
}

// BuildMachine constructs the plane for a combo.
func BuildMachine(c Combo, cfg MachineConfig) (*Machine, error) {
	m := &Machine{Combo: c, Cfg: cfg}
	switch c.Topology {
	case "hyperx":
		if cfg.Small {
			var err error
			m.HX, err = topo.BuildHyperX(topo.HyperXConfig{
				S: []int{4, 4}, T: 2,
				Bandwidth: topo.QDRBandwidth, Latency: topo.QDRLinkLatency,
			})
			if err != nil {
				return nil, err
			}
			if cfg.Degrade {
				if _, err := topo.DegradeSwitchLinks(m.HX.Graph, 2, cfg.Seed); err != nil {
					return nil, err
				}
			}
		} else {
			m.HX = topo.NewPaperHyperX(cfg.Degrade, cfg.Seed)
		}
		m.G = m.HX.Graph
	case "fattree":
		if cfg.Small {
			var err error
			m.FT, err = topo.BuildXGFT(topo.XGFTConfig{
				M: []int{2, 4, 4}, W: []int{1, 3, 2},
				Bandwidth: topo.QDRBandwidth, Latency: topo.QDRLinkLatency,
			})
			if err != nil {
				return nil, err
			}
			if cfg.Degrade {
				if _, err := topo.DegradeSwitchLinks(m.FT.Graph, 4, cfg.Seed); err != nil {
					return nil, err
				}
			}
		} else {
			m.FT = topo.NewPaperFatTree(cfg.Degrade, cfg.Seed)
		}
		m.G = m.FT.Graph
	default:
		return nil, fmt.Errorf("exp: unknown topology %q", c.Topology)
	}

	var err error
	m.Tables, err = m.buildTables()
	if err != nil {
		return nil, err
	}
	return m, nil
}

// buildTables routes the machine's graph in its current link state with the
// combo's engine.
func (m *Machine) buildTables() (*route.Tables, error) {
	switch m.Combo.Routing {
	case "ftree":
		if m.FT == nil {
			return nil, fmt.Errorf("exp: ftree routing needs a Fat-Tree")
		}
		return route.FTree(m.FT, 0)
	case "sssp":
		return route.SSSP(m.G, 0)
	case "dfsssp":
		return route.DFSSSP(m.G, 0, 8)
	case "updown":
		return route.UpDown(m.G, 0)
	case "lash":
		return route.LASH(m.G, 0, 8)
	case "nue":
		return route.Nue(m.G, 0, 2)
	case "parx":
		if m.HX == nil {
			return nil, fmt.Errorf("exp: PARX needs a HyperX")
		}
		return core.PARX(m.HX, core.Config{MaxVL: 8, Demands: m.Cfg.Demands})
	default:
		return nil, fmt.Errorf("exp: unknown routing %q", m.Combo.Routing)
	}
}

// RebuildTables re-runs the combo's routing engine against the graph's
// current link state — the subnet manager's recompute step during a
// re-sweep. Machine.Tables is left untouched; the caller decides what to
// swap where.
func (m *Machine) RebuildTables() (*route.Tables, error) { return m.buildTables() }

// NewFabric creates a fresh fabric (own engine and flow state) over the
// machine's tables; the bfo PML is enabled automatically for PARX.
func (m *Machine) NewFabric(seed uint64) (*fabric.Fabric, error) {
	f := fabric.New(sim.NewEngine(), m.Tables, fabric.DefaultParams(), seed)
	if m.Combo.Routing == "parx" {
		if err := f.EnableBFO(m.HX, 0); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Place selects n nodes per the combo's placement strategy.
func (m *Machine) Place(n int, seed uint64) ([]topo.NodeID, error) {
	return place.Place(m.Combo.Placement, m.G.Terminals(), n, seed)
}

// Stats are the whisker-plot statistics of Figs. 5b/5c/6.
type Stats struct {
	N                        int
	Min, Q1, Median, Q3, Max float64
	Mean                     float64
}

// Summarize computes whisker statistics.
func Summarize(vals []float64) Stats {
	if len(vals) == 0 {
		return Stats{}
	}
	v := append([]float64{}, vals...)
	sort.Float64s(v)
	q := func(p float64) float64 {
		idx := p * float64(len(v)-1)
		lo := int(idx)
		hi := lo + 1
		if hi >= len(v) {
			return v[lo]
		}
		frac := idx - float64(lo)
		return v[lo]*(1-frac) + v[hi]*frac
	}
	s := Stats{N: len(v), Min: v[0], Max: v[len(v)-1], Q1: q(0.25), Median: q(0.5), Q3: q(0.75)}
	for _, x := range v {
		s.Mean += x
	}
	s.Mean /= float64(len(v))
	return s
}

// Best extracts the paper's "absolute best observed" value: min for
// lower-is-better metrics, max otherwise.
func (s Stats) Best(better workloads.Direction) float64 {
	if better == workloads.HigherIsBetter {
		return s.Max
	}
	return s.Min
}

// Gain is the relative performance gain over a baseline (Hoefler & Belli):
// positive means the candidate beats the baseline, for either metric
// direction.
func Gain(baseline, candidate float64, better workloads.Direction) float64 {
	if baseline == 0 {
		return 0
	}
	if better == workloads.HigherIsBetter {
		return candidate/baseline - 1
	}
	return baseline/candidate - 1
}

// TrialSpec describes one measurement cell: a workload instance run some
// number of times on a machine.
type TrialSpec struct {
	Machine *Machine
	Nodes   int
	Trials  int
	Seed    uint64
	// Jitter is the lognormal sigma for compute phases; the paper's
	// run-to-run variability. Zero keeps runs identical.
	Jitter float64
	Build  func(n int) (*workloads.Instance, error)
	// Attach, when set, observes each trial's fresh fabric before the run
	// starts — the hook the CLI uses to attach a telemetry collector
	// (typically to the final trial only, so counters and trace cover one
	// run rather than overlapping engine timelines).
	Attach func(trial int, f *fabric.Fabric)
}

// RunTrials executes the cell and returns the per-trial metric values.
// The placement is fixed across trials (like rerunning a job in the same
// allocation); jitter and PML randomness vary by trial.
func RunTrials(spec TrialSpec) ([]float64, *workloads.Instance, error) {
	if spec.Trials < 1 {
		spec.Trials = 1
	}
	ranks, err := spec.Machine.Place(spec.Nodes, spec.Seed)
	if err != nil {
		return nil, nil, err
	}
	var vals []float64
	var lastInst *workloads.Instance
	for t := 0; t < spec.Trials; t++ {
		inst, err := spec.Build(spec.Nodes)
		if err != nil {
			return nil, nil, err
		}
		lastInst = inst
		f, err := spec.Machine.NewFabric(spec.Seed + uint64(t)*7919)
		if err != nil {
			return nil, nil, err
		}
		if spec.Attach != nil {
			spec.Attach(t, f)
		}
		res, err := mpi.Run(f, "trial", ranks, inst.Progs, mpi.Options{
			ComputeJitterSigma: spec.Jitter,
			Seed:               spec.Seed + uint64(t)*104729,
		})
		if err != nil {
			return nil, nil, err
		}
		vals = append(vals, inst.Score(res.Elapsed))
	}
	return vals, lastInst, nil
}
