package exp

import (
	"testing"

	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/workloads"
)

// Every combo's engine must survive a mid-run failure burst on the small
// planes: all messages delivered, sweeps validated, graph restored.
func TestRunFaultScenarioAllCombos(t *testing.T) {
	for _, c := range PaperCombos() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			m, err := BuildMachine(c, MachineConfig{Small: true, Degrade: true, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			downBefore := make([]bool, len(m.G.Links))
			for i, l := range m.G.Links {
				downBefore[i] = l.Down
			}
			res, err := RunFaultScenario(FaultSpec{
				Machine:  m,
				Nodes:    len(m.G.Terminals()),
				Failures: 2,
				Seed:     5,
				Detect:   50 * sim.Microsecond,
				Sweep:    100 * sim.Microsecond,
				Build: func(n int) (*workloads.Instance, error) {
					return workloads.BuildIMB("alltoall", n, 32<<10)
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.GiveUps != 0 {
				t.Errorf("%d messages lost", res.GiveUps)
			}
			if res.Delivered != res.Messages {
				t.Errorf("delivered %d of %d messages", res.Delivered, res.Messages)
			}
			if res.Faulted < res.Baseline {
				t.Errorf("faulted makespan %v beat baseline %v", res.Faulted, res.Baseline)
			}
			if len(res.Sweeps) == 0 {
				t.Fatal("no sweeps recorded")
			}
			for _, s := range res.Sweeps {
				if s.Rejected != nil {
					t.Errorf("sweep rejected: %v", s.Rejected)
				}
				if !s.Validated || !s.DeadlockFree {
					t.Errorf("sweep not validated deadlock-free: %+v", s)
				}
			}
			if len(res.Latencies) == 0 || res.SweepStats().Max <= 0 {
				t.Error("no successful sweep latencies recorded")
			}
			if res.GoodputBefore <= 0 || res.GoodputAfter <= 0 {
				t.Errorf("goodput windows empty: before=%.3g during=%.3g after=%.3g",
					res.GoodputBefore, res.GoodputDuring, res.GoodputAfter)
			}
			for i, l := range m.G.Links {
				if l.Down != downBefore[i] {
					t.Fatalf("link %d Down state not restored", i)
				}
			}
			// The machine's own tables must still be the pre-fault ones.
			if m.Tables.G != m.G {
				t.Error("machine tables replaced")
			}
		})
	}
}

func TestDefaultFailures(t *testing.T) {
	small, err := BuildMachine(PaperCombos()[2], MachineConfig{Small: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := DefaultFailures(small); got != smallMachineFailures {
		t.Errorf("small default = %d, want %d", got, smallMachineFailures)
	}
}
