package exp

import (
	"fmt"
	"strings"

	"github.com/hpcsim/t2hx/internal/core"
	"github.com/hpcsim/t2hx/internal/fabric"
	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// PlaneSpec selects one network plane of a machine: a topology and the
// routing engine run on it. Name is the display label threaded into
// telemetry and traces; empty derives "<topology>/<routing>".
type PlaneSpec struct {
	Name     string
	Topology string // "fattree" | "hyperx"
	Routing  string // "ftree" | "sssp" | "dfsssp" | "updown" | "lash" | "nue" | "parx" | "hxmin" | "hxnm"
}

// Label returns the plane's display name.
func (s PlaneSpec) Label() string {
	if s.Name != "" {
		return s.Name
	}
	return s.Topology + "/" + s.Routing
}

// ParsePlaneSpecs parses a CLI plane list: comma-separated
// "topology:routing[:name]" entries, with the aliases ft/fattree and
// hx/hyperx — e.g. "ft:updown,hyperx:parx".
func ParsePlaneSpecs(s string) ([]PlaneSpec, error) {
	var specs []PlaneSpec
	for _, ent := range strings.Split(s, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		parts := strings.Split(ent, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("exp: plane spec %q: want topology:routing[:name]", ent)
		}
		spec := PlaneSpec{Topology: parts[0], Routing: parts[1]}
		switch spec.Topology {
		case "ft", "fattree":
			spec.Topology = "fattree"
		case "hx", "hyperx":
			spec.Topology = "hyperx"
		default:
			return nil, fmt.Errorf("exp: plane spec %q: unknown topology %q", ent, spec.Topology)
		}
		if len(parts) == 3 {
			spec.Name = parts[2]
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("exp: empty plane list")
	}
	return specs, nil
}

// Plane is one built and routed network plane of a machine: a graph, the
// forwarding tables computed over it, and the topology handle its routing
// engine needs. Machines own at least one; dual-plane machines (the
// TSUBAME2 reality: a Fat-Tree rail and a HyperX rail on the same nodes)
// own several, all with the same terminal count.
type Plane struct {
	Spec   PlaneSpec
	G      *topo.Graph
	HX     *topo.HyperX  // non-nil for HyperX planes
	FT     *topo.FatTree // non-nil for Fat-Tree planes
	Tables *route.Tables

	cfg MachineConfig
}

// BuildPlane constructs and routes one plane under the machine config
// (degradation, small-scale, seed, PARX demands).
func BuildPlane(spec PlaneSpec, cfg MachineConfig) (*Plane, error) {
	p := &Plane{Spec: spec, cfg: cfg}
	switch spec.Topology {
	case "hyperx":
		if cfg.Small {
			var err error
			p.HX, err = topo.BuildHyperX(topo.HyperXConfig{
				S: []int{4, 4}, T: 2,
				Bandwidth: topo.QDRBandwidth, Latency: topo.QDRLinkLatency,
			})
			if err != nil {
				return nil, err
			}
			if cfg.Degrade {
				if _, err := topo.DegradeSwitchLinks(p.HX.Graph, 2, cfg.Seed); err != nil {
					return nil, err
				}
			}
		} else {
			p.HX = topo.NewPaperHyperX(cfg.Degrade, cfg.Seed)
		}
		p.G = p.HX.Graph
	case "fattree":
		if cfg.Small {
			var err error
			p.FT, err = topo.BuildXGFT(topo.XGFTConfig{
				M: []int{2, 4, 4}, W: []int{1, 3, 2},
				Bandwidth: topo.QDRBandwidth, Latency: topo.QDRLinkLatency,
			})
			if err != nil {
				return nil, err
			}
			if cfg.Degrade {
				if _, err := topo.DegradeSwitchLinks(p.FT.Graph, 4, cfg.Seed); err != nil {
					return nil, err
				}
			}
		} else {
			p.FT = topo.NewPaperFatTree(cfg.Degrade, cfg.Seed)
		}
		p.G = p.FT.Graph
	default:
		return nil, fmt.Errorf("exp: unknown topology %q", spec.Topology)
	}

	var err error
	p.Tables, err = p.Rebuild()
	if err != nil {
		return nil, err
	}
	return p, nil
}

// Rebuild returns routing tables for the graph's current link state — the
// subnet manager's recompute step during a re-sweep. Plane.Tables is left
// untouched; the caller decides what to swap where (see fabric.SwapTables
// and faults.SMConfig.Rebuild).
//
// Results come from DefaultTableCache: structurally identical planes with
// the same down mask share one frozen table build, rebound to this plane's
// graph. PARX with a demand matrix bypasses the cache — the demands change
// table content but are not part of the cache key.
func (p *Plane) Rebuild() (*route.Tables, error) {
	if p.Spec.Routing == "parx" && p.cfg.Demands != nil {
		return p.buildTables()
	}
	var lmc uint8
	if p.Spec.Routing == "parx" {
		lmc = core.LMC
	}
	return DefaultTableCache.Get(p.G, p.Spec.Routing, lmc, p.buildTables)
}

// buildTables runs the plane's routing engine uncached.
func (p *Plane) buildTables() (*route.Tables, error) {
	switch p.Spec.Routing {
	case "ftree":
		if p.FT == nil {
			return nil, fmt.Errorf("exp: ftree routing needs a Fat-Tree")
		}
		return route.FTree(p.FT, 0)
	case "sssp":
		return route.SSSP(p.G, 0)
	case "dfsssp":
		return route.DFSSSP(p.G, 0, 8)
	case "updown":
		return route.UpDown(p.G, 0)
	case "lash":
		return route.LASH(p.G, 0, 8)
	case "nue":
		return route.Nue(p.G, 0, 2)
	case "hxmin":
		if p.HX == nil {
			return nil, fmt.Errorf("exp: hxmin routing needs a HyperX")
		}
		return route.HXMin(p.HX, 0)
	case "hxnm":
		if p.HX == nil {
			return nil, fmt.Errorf("exp: hxnm routing needs a HyperX")
		}
		return route.HXNonMin(p.HX, 0, 8)
	case "parx":
		if p.HX == nil {
			return nil, fmt.Errorf("exp: PARX needs a HyperX")
		}
		return core.PARX(p.HX, core.Config{MaxVL: 8, Demands: p.cfg.Demands})
	default:
		return nil, fmt.Errorf("exp: unknown routing %q", p.Spec.Routing)
	}
}

// NewFabric builds a fabric for this plane on the given engine; the bfo
// PML is enabled automatically for PARX.
func (p *Plane) NewFabric(eng *sim.Engine, seed uint64) (*fabric.Fabric, error) {
	f := fabric.New(eng, p.Tables, fabric.DefaultParams(), seed)
	if p.Spec.Routing == "parx" {
		if err := f.EnableBFO(p.HX, 0); err != nil {
			return nil, err
		}
	}
	return f, nil
}
