package exp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/topo"
)

// tableKey content-addresses one routed state: the graph's structural
// fingerprint, its link-down mask, and the engine configuration. Two
// independently built machines with the same topology and fault state map
// to the same key, which is what lets the N trials and fault-free cells of
// a sweep share one table build.
type tableKey struct {
	fp, down uint64
	engine   string
	lmc      uint8
}

type cacheEntry struct {
	once sync.Once
	t    *route.Tables
	err  error
}

// TableCache memoizes frozen route.Tables by content key. Concurrent Get
// calls for the same key build once (singleflight via sync.Once) and every
// caller receives the shared immutable tables rebound to its own graph, so
// runtime fault injection on one machine never aliases another's tables.
// Entries are evicted FIFO past Cap.
type TableCache struct {
	mu      sync.Mutex
	entries map[tableKey]*cacheEntry
	order   []tableKey
	cap     int

	// Counters are atomics so live-progress reporters can read them
	// mid-sweep without taking the cache lock the workers contend on.
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// DefaultTableCache is the process-wide cache Plane.Rebuild consults. Its
// capacity comfortably covers a sweep (5 combos × a handful of fault
// masks); re-sweep studies cycling through hundreds of masks recycle the
// oldest entries.
var DefaultTableCache = NewTableCache(64)

// NewTableCache returns a cache evicting beyond capacity (FIFO).
func NewTableCache(capacity int) *TableCache {
	if capacity < 1 {
		capacity = 1
	}
	return &TableCache{entries: make(map[tableKey]*cacheEntry), cap: capacity}
}

// Get returns the tables for (g's structure, g's down mask, engine, lmc),
// building them at most once per key via build. The result is always
// frozen and bound to g; callers must not mutate it (route.Tables panics
// if they try). Build errors are cached for the key as well — a
// disconnected degraded fabric fails identically on every retry.
func (c *TableCache) Get(g *topo.Graph, engine string, lmc uint8, build func() (*route.Tables, error)) (*route.Tables, error) {
	key := tableKey{fp: g.Fingerprint(), down: g.DownHash(), engine: engine, lmc: lmc}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
		c.order = append(c.order, key)
		c.misses.Add(1)
		for len(c.order) > c.cap {
			delete(c.entries, c.order[0])
			c.order = c.order[1:]
			c.evictions.Add(1)
		}
	} else {
		c.hits.Add(1)
	}
	c.mu.Unlock()

	e.once.Do(func() {
		t, err := build()
		if err != nil {
			e.err = err
			return
		}
		if !t.Frozen() {
			e.err = fmt.Errorf("exp: engine %q returned unfrozen tables; cannot cache", engine)
			return
		}
		e.t = t
	})
	if e.err != nil {
		return nil, e.err
	}
	if e.t.G == g {
		return e.t, nil
	}
	return e.t.Rebind(g), nil
}

// CacheStats is a point-in-time snapshot of the cache's lifetime counters.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// Lookups is the total Get count.
func (s CacheStats) Lookups() uint64 { return s.Hits + s.Misses }

// HitRate is hits over lookups, 0 when the cache was never consulted.
func (s CacheStats) HitRate() float64 {
	if n := s.Lookups(); n > 0 {
		return float64(s.Hits) / float64(n)
	}
	return 0
}

// Stats snapshots the lifetime hit/miss/eviction counters. It is safe to
// call from any goroutine while a sweep is running (lock-free), which is
// how the runner's live-progress ticker reports cache effectiveness
// mid-run.
func (c *TableCache) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}

// Len reports the number of cached keys.
func (c *TableCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
