package exp

import (
	"fmt"
	"sync"

	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/topo"
)

// tableKey content-addresses one routed state: the graph's structural
// fingerprint, its link-down mask, and the engine configuration. Two
// independently built machines with the same topology and fault state map
// to the same key, which is what lets the N trials and fault-free cells of
// a sweep share one table build.
type tableKey struct {
	fp, down uint64
	engine   string
	lmc      uint8
}

type cacheEntry struct {
	once sync.Once
	t    *route.Tables
	err  error
}

// TableCache memoizes frozen route.Tables by content key. Concurrent Get
// calls for the same key build once (singleflight via sync.Once) and every
// caller receives the shared immutable tables rebound to its own graph, so
// runtime fault injection on one machine never aliases another's tables.
// Entries are evicted FIFO past Cap.
type TableCache struct {
	mu      sync.Mutex
	entries map[tableKey]*cacheEntry
	order   []tableKey
	cap     int

	hits, misses uint64
}

// DefaultTableCache is the process-wide cache Plane.Rebuild consults. Its
// capacity comfortably covers a sweep (5 combos × a handful of fault
// masks); re-sweep studies cycling through hundreds of masks recycle the
// oldest entries.
var DefaultTableCache = NewTableCache(64)

// NewTableCache returns a cache evicting beyond capacity (FIFO).
func NewTableCache(capacity int) *TableCache {
	if capacity < 1 {
		capacity = 1
	}
	return &TableCache{entries: make(map[tableKey]*cacheEntry), cap: capacity}
}

// Get returns the tables for (g's structure, g's down mask, engine, lmc),
// building them at most once per key via build. The result is always
// frozen and bound to g; callers must not mutate it (route.Tables panics
// if they try). Build errors are cached for the key as well — a
// disconnected degraded fabric fails identically on every retry.
func (c *TableCache) Get(g *topo.Graph, engine string, lmc uint8, build func() (*route.Tables, error)) (*route.Tables, error) {
	key := tableKey{fp: g.Fingerprint(), down: g.DownHash(), engine: engine, lmc: lmc}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
		c.order = append(c.order, key)
		c.misses++
		for len(c.order) > c.cap {
			delete(c.entries, c.order[0])
			c.order = c.order[1:]
		}
	} else {
		c.hits++
	}
	c.mu.Unlock()

	e.once.Do(func() {
		t, err := build()
		if err != nil {
			e.err = err
			return
		}
		if !t.Frozen() {
			e.err = fmt.Errorf("exp: engine %q returned unfrozen tables; cannot cache", engine)
			return
		}
		e.t = t
	})
	if e.err != nil {
		return nil, e.err
	}
	if e.t.G == g {
		return e.t, nil
	}
	return e.t.Rebind(g), nil
}

// Stats reports lifetime hit/miss counts.
func (c *TableCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len reports the number of cached keys.
func (c *TableCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
