package exp

import (
	"errors"
	"fmt"

	"github.com/hpcsim/t2hx/internal/fabric"
	"github.com/hpcsim/t2hx/internal/faults"
	"github.com/hpcsim/t2hx/internal/mpi"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/telemetry"
	"github.com/hpcsim/t2hx/internal/topo"
	"github.com/hpcsim/t2hx/internal/workloads"
)

// FaultSpec describes one resilience experiment: a workload run twice on
// the same machine and placement — once fault-free for the baseline, once
// with link failures injected mid-run and the subnet manager re-sweeping
// the combo's routing engine around them.
type FaultSpec struct {
	Machine *Machine
	Nodes   int
	// Failures is the number of runtime link failures. Zero selects the
	// paper's broken-cable count for the topology (15 HyperX / 197
	// Fat-Tree), scaled down on Small machines.
	Failures int
	Seed     uint64
	// Detect/Sweep override the SM model's delays; zero keeps defaults
	// (1 ms detection, 4 ms sweep).
	Detect, Sweep sim.Duration
	// RetryBackoff/MaxRetries override the fabric's retry behaviour; zero
	// keeps defaults.
	RetryBackoff sim.Duration
	MaxRetries   int
	Build        func(n int) (*workloads.Instance, error)
	// Telemetry, when set, is attached to the faulted run's fabric:
	// injected faults appear as trace instants, SM sweeps as spans, and
	// the counters/FCT records cover the run that rode out the outage.
	Telemetry *telemetry.Collector
	// Schedule, when non-empty, is the exact fault timeline to inject,
	// overriding the seeded PlanLinkFailures plan. Degraded sweeps use it
	// to replay prefixes of one shared failure chain.
	Schedule faults.Schedule
	// Baseline, when nonzero, is a previously measured fault-free makespan
	// for this (machine, workload, nodes): the baseline run is skipped and
	// this value calibrates failure timing and the slowdown figure. Sweeps
	// that run many variants of one cell share a single baseline this way.
	Baseline sim.Duration
}

// Typed FaultSpec validation errors, checked with errors.Is.
var (
	// ErrNilMachine reports a FaultSpec without a machine.
	ErrNilMachine = errors.New("exp: fault spec has no machine")
	// ErrNilBuild reports a FaultSpec without a workload builder.
	ErrNilBuild = errors.New("exp: fault spec has no workload builder")
	// ErrBadFailures reports a negative failure count or one exceeding the
	// machine's live switch links.
	ErrBadFailures = errors.New("exp: fault spec failure count out of range")
	// ErrBadNodes reports a non-positive node count or one exceeding the
	// machine's terminals.
	ErrBadNodes = errors.New("exp: fault spec node count out of range")
)

// Validate checks a spec's shape before any simulator state is built, so a
// bad batch entry fails up front with a typed error instead of deep inside
// the run. Failures == 0 is valid (it selects the paper default).
func (spec FaultSpec) Validate() error {
	if spec.Machine == nil {
		return ErrNilMachine
	}
	if spec.Build == nil {
		return ErrNilBuild
	}
	if spec.Failures < 0 {
		return fmt.Errorf("%w: %d", ErrBadFailures, spec.Failures)
	}
	if live := len(spec.Machine.G.LiveSwitchLinks()); spec.Failures > live {
		return fmt.Errorf("%w: %d requested, machine has %d live switch links",
			ErrBadFailures, spec.Failures, live)
	}
	if spec.Nodes <= 0 || spec.Nodes > spec.Machine.G.NumTerminals() {
		return fmt.Errorf("%w: %d nodes on a %d-terminal machine",
			ErrBadNodes, spec.Nodes, spec.Machine.G.NumTerminals())
	}
	return nil
}

// smallMachineFailures keeps scaled-down planes connected: the 4x4 HyperX
// has 48 inter-switch links, the small XGFT 40.
const smallMachineFailures = 3

// DefaultFailures returns the failure count a zero FaultSpec.Failures
// selects for the machine.
func DefaultFailures(m *Machine) int {
	if m.Cfg.Small {
		return smallMachineFailures
	}
	if m.Combo.Topology == "hyperx" {
		return topo.PaperHyperXMissingAOCs
	}
	return topo.PaperFatTreeMissingLinks
}

// FaultResult aggregates what happened across the two runs.
type FaultResult struct {
	Baseline sim.Duration // fault-free makespan
	Faulted  sim.Duration // makespan with failures injected
	Failures int          // link failures injected

	// Sweeps is the SM's full record; Latencies the outage windows of the
	// successful ones.
	Sweeps    []faults.Sweep
	Latencies []sim.Duration

	// Fabric-level damage accounting for the faulted run.
	TornDown, Retries, GiveUps uint64
	Messages, Delivered        uint64

	// Goodput (delivered payload bytes/s) before the first failure, during
	// the outage (first failure to the last table swap), and after.
	GoodputBefore, GoodputDuring, GoodputAfter float64
}

// Slowdown is the makespan inflation the failures caused.
func (r FaultResult) Slowdown() float64 {
	if r.Baseline == 0 {
		return 0
	}
	return float64(r.Faulted)/float64(r.Baseline) - 1
}

// SweepStats summarizes the outage windows (values in seconds).
func (r FaultResult) SweepStats() Stats {
	vals := make([]float64, len(r.Latencies))
	for i, d := range r.Latencies {
		vals[i] = float64(d)
	}
	return Summarize(vals)
}

// RunFaultBatch runs several fault scenarios over the runner's pool and
// returns their results in spec order. Every spec must reference its OWN
// machine: the scenario mutates the machine's graph link state mid-run, so
// sharing one machine across concurrent specs would race. Determinism
// comes from each spec's explicit Seed (the pool's derived cell seeds are
// unused here).
//
// One failing spec does not discard the others: every scenario runs to
// completion, completed results are returned in place (a failed spec's slot
// carries whatever partial result its scenario produced, possibly nil), and
// the per-spec errors come back joined. Structural problems — shared
// machines, specs failing Validate — are rejected before anything runs.
func RunFaultBatch(r Runner, specs []FaultSpec) ([]*FaultResult, error) {
	var verrs []error
	for i := range specs {
		for j := range specs[:i] {
			if specs[i].Machine != nil && specs[i].Machine == specs[j].Machine {
				return nil, fmt.Errorf("exp: fault specs %d and %d share a machine; each needs its own", j, i)
			}
		}
		if err := specs[i].Validate(); err != nil {
			verrs = append(verrs, fmt.Errorf("exp: fault spec %d: %w", i, err))
		}
	}
	if len(verrs) > 0 {
		return nil, errors.Join(verrs...)
	}
	cells := make([]Cell, len(specs))
	for i := range specs {
		i := i
		cells[i] = Cell{
			Label: specs[i].Machine.Combo.Name,
			Run:   func(uint64) (any, error) { return RunFaultScenario(specs[i]) },
		}
	}
	res, err := r.RunAll(cells)
	out := make([]*FaultResult, len(specs))
	for i, cr := range res {
		if fr, ok := cr.Value.(*FaultResult); ok {
			out[i] = fr
		}
	}
	return out, err
}

// RunFaultScenario executes the experiment against the machine's primary
// plane (whole-plane failover across a multi-plane machine is exercised
// separately, via fabric.MultiFabric with a failover policy and
// faults.PlaneOutage). The plane's graph is mutated during the faulted run
// and restored before returning, so machines remain reusable. An error from the faulted run (a rank wedged beyond the retry
// budget) is returned as-is — that outcome is the experiment failing, not
// an infrastructure problem.
func RunFaultScenario(spec FaultSpec) (*FaultResult, error) {
	m := spec.Machine
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Failures == 0 && spec.Schedule == nil {
		spec.Failures = DefaultFailures(m)
	}
	ranks, err := m.Place(spec.Nodes, spec.Seed)
	if err != nil {
		return nil, err
	}
	newFabric := func() (*fabric.Fabric, error) {
		f, err := m.NewFabric(spec.Seed)
		if err != nil {
			return nil, err
		}
		if spec.RetryBackoff != 0 || spec.MaxRetries != 0 {
			f.EnableResilience(fabric.Resilience{
				RetryBackoff: spec.RetryBackoff,
				MaxRetries:   spec.MaxRetries,
			})
		}
		return f, nil
	}

	// Fault-free baseline: calibrates both the result's slowdown figure and
	// where in the run the failures land. A spec carrying a pre-measured
	// Baseline (sweeps amortizing one baseline over many variants) skips
	// the run.
	base := spec.Baseline
	if base == 0 {
		inst, err := spec.Build(spec.Nodes)
		if err != nil {
			return nil, err
		}
		fb, err := newFabric()
		if err != nil {
			return nil, err
		}
		res, err := mpi.Run(fb, "baseline", ranks, inst.Progs, mpi.Options{})
		if err != nil {
			return nil, err
		}
		base = res.Elapsed
	}

	// Spread the failures over the middle half of the baseline makespan, so
	// they hit a busy fabric rather than the ramp-up or drain — unless the
	// spec fixes the exact timeline itself.
	sched := spec.Schedule
	if sched == nil {
		sched, err = faults.PlanLinkFailures(m.G, spec.Failures,
			sim.Time(base)/4, base/2, spec.Seed)
		if err != nil {
			return nil, err
		}
	} else {
		spec.Failures = len(sched)
	}
	out := &FaultResult{Baseline: base, Failures: spec.Failures}

	// The faulted run mutates the graph's link state; restore it so the
	// machine (and its cached Tables) stay valid for the next experiment.
	downBefore := make([]bool, len(m.G.Links))
	for i, l := range m.G.Links {
		downBefore[i] = l.Down
	}
	defer func() {
		for i, l := range m.G.Links {
			l.Down = downBefore[i]
		}
	}()

	inst, err := spec.Build(spec.Nodes)
	if err != nil {
		return nil, err
	}
	f, err := newFabric()
	if err != nil {
		return nil, err
	}
	if spec.Telemetry != nil {
		f.AttachTelemetry(spec.Telemetry)
	}
	mgr, err := faults.NewManager(f, faults.SMConfig{
		DetectionDelay: spec.Detect,
		SweepLatency:   spec.Sweep,
		Rebuild:        m.Primary().Rebuild,
		Revalidate:     true,
	})
	if err != nil {
		return nil, err
	}
	// Goodput window boundaries: delivered-byte snapshots at the first
	// failure and at the last successful table swap.
	var (
		firstFaultAt    sim.Time
		bytesAtFault    float64
		lastSwapAt      sim.Time
		bytesAtSwap     float64
		sampledFirstHit bool
	)
	mgr.OnApply = func(faults.Event) {
		if !sampledFirstHit {
			sampledFirstHit = true
			firstFaultAt = f.Eng.Now()
			bytesAtFault = f.DeliveredBytes
		}
	}
	mgr.OnSwept = func(s faults.Sweep) {
		if s.Rejected == nil {
			lastSwapAt = f.Eng.Now()
			bytesAtSwap = f.DeliveredBytes
		}
	}
	if err := mgr.Inject(sched); err != nil {
		return nil, err
	}
	res, err := mpi.Run(f, "faulted", ranks, inst.Progs, mpi.Options{})
	out.Sweeps = mgr.Sweeps
	out.Latencies = mgr.SweepLatencies()
	out.TornDown = uint64(mgr.TornDown)
	out.Retries = f.Retries
	out.GiveUps = f.GiveUps
	out.Messages = f.Messages
	out.Delivered = f.Delivered
	if err != nil {
		return out, err
	}
	out.Faulted = res.Elapsed

	if sampledFirstHit && firstFaultAt > res.Start {
		out.GoodputBefore = bytesAtFault / float64(firstFaultAt-res.Start)
	}
	if lastSwapAt > firstFaultAt {
		out.GoodputDuring = (bytesAtSwap - bytesAtFault) / float64(lastSwapAt-firstFaultAt)
	}
	if res.End > lastSwapAt && lastSwapAt > 0 {
		out.GoodputAfter = (f.DeliveredBytes - bytesAtSwap) / float64(res.End-lastSwapAt)
	}
	return out, nil
}
