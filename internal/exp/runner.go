package exp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcsim/t2hx/internal/fabric"
	"github.com/hpcsim/t2hx/internal/workloads"
)

// CellSeed derives the deterministic seed of sweep cell index from the
// sweep's base seed: one SplitMix64 step over a combination of both. The
// derivation depends only on (baseSeed, index) — never on submission or
// completion order — which is what makes -j 1 and -j N sweeps bit-identical.
func CellSeed(baseSeed uint64, index int) uint64 {
	z := baseSeed + (uint64(index)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Cell is one unit of sweep work: typically a (combo, workload, size)
// trial block. Run receives the cell's deterministic seed and must create
// every piece of simulator state it needs (engine, fabric, telemetry)
// itself — workers share nothing mutable, which is what makes the pool
// race-free. Frozen routing tables obtained through the TableCache are the
// only cross-worker sharing, and they are read-only.
type Cell struct {
	// Label is threaded to the progress callback.
	Label string
	// Seed, when non-nil, overrides the derived CellSeed(baseSeed, index)
	// — used where an established output format fixes the per-cell seeds
	// (cmd/figures keeps its historical P.Seed+n cells at any -j).
	Seed *uint64
	// Run executes the cell.
	Run func(seed uint64) (any, error)
}

// CellResult pairs a cell's index with what its Run returned.
type CellResult struct {
	Index int
	Label string
	Value any
}

// RunnerStats is a point-in-time snapshot of a running (or finished)
// sweep, published on the runner's StatsInterval ticker. Values observe
// the live run, so the live metrics are approximate (a cell may finish
// between field reads); the Final snapshot is exact.
type RunnerStats struct {
	// Done and Total count completed and queued cells (Done includes
	// failed cells — the pool has finished with them either way).
	Done  int `json:"done"`
	Total int `json:"total"`
	// Workers is the pool size.
	Workers int `json:"workers"`
	// Elapsed is the wall time since the pool started.
	Elapsed time.Duration `json:"elapsed_ns"`
	// CellsPerSec is the completion throughput over Elapsed.
	CellsPerSec float64 `json:"cells_per_sec"`
	// ETA extrapolates the remaining wall time from the current
	// throughput; 0 until the first cell completes.
	ETA time.Duration `json:"eta_ns"`
	// Utilization is the fraction of worker wall time spent inside cell
	// Run functions (1.0 = all workers busy since start).
	Utilization float64 `json:"utilization"`
	// LastLabel is the label of the most recently completed cell.
	LastLabel string `json:"last_label,omitempty"`
	// Cache, when the runner was given a TableCache, snapshots its
	// counters — the live hit rate of a running sweep.
	Cache *CacheStats `json:"cache,omitempty"`
	// Final marks the closing snapshot emitted after the pool drains.
	Final bool `json:"final,omitempty"`
}

// LineKind implements telemetry's Line so snapshots can stream into any
// telemetry sink as "progress" JSONL lines.
func (RunnerStats) LineKind() string { return "progress" }

// Runner executes a queue of cells across a worker pool.
//
// Determinism contract: cell results depend only on (BaseSeed, cell
// index). The pool affects wall-clock order, never values; results come
// back ordered by index regardless of completion order. The first cell
// error cancels the remaining queue (cells already running finish) and is
// returned; later errors are dropped.
type Runner struct {
	// Workers is the pool size; <= 0 uses runtime.GOMAXPROCS(0).
	Workers int
	// BaseSeed feeds CellSeed for cells without a Seed override.
	BaseSeed uint64
	// Progress, when set, is called after each cell completes with the
	// number of finished cells, the total, and the finished cell's label.
	// It is called from worker goroutines under a lock (callbacks are
	// serialized, but must not block for long).
	Progress func(done, total int, label string)
	// OnStats, when set together with StatsInterval, receives periodic
	// RunnerStats snapshots from a dedicated ticker goroutine while the
	// pool runs, plus one Final snapshot after it drains. It must be safe
	// to call concurrently with Progress.
	OnStats func(RunnerStats)
	// StatsInterval is the snapshot cadence; <= 0 disables the ticker
	// (a Final snapshot is still delivered when OnStats is set).
	StatsInterval time.Duration
	// Cache, when set, is snapshotted into each RunnerStats (live table
	// cache hit rate). Sweep drivers pass DefaultTableCache.
	Cache *TableCache
}

// WorkerCount resolves the effective pool size.
func (r Runner) WorkerCount() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runnerState is the pool's shared instrumentation: everything the stats
// ticker reads is atomic, so snapshots never contend with workers.
type runnerState struct {
	start     time.Time
	total     int
	workers   int
	done      atomic.Int64
	busyNanos atomic.Int64 // summed over completed Run calls

	mu        sync.Mutex
	lastLabel string
}

// snapshot assembles a RunnerStats from the live counters.
func (st *runnerState) snapshot(cache *TableCache, final bool) RunnerStats {
	elapsed := time.Since(st.start)
	done := int(st.done.Load())
	s := RunnerStats{
		Done: done, Total: st.total, Workers: st.workers,
		Elapsed: elapsed, Final: final,
	}
	if elapsed > 0 {
		s.CellsPerSec = float64(done) / elapsed.Seconds()
		s.Utilization = float64(st.busyNanos.Load()) / (float64(elapsed.Nanoseconds()) * float64(st.workers))
		if s.Utilization > 1 {
			s.Utilization = 1
		}
	}
	if done > 0 && done < st.total && s.CellsPerSec > 0 {
		s.ETA = time.Duration(float64(st.total-done) / s.CellsPerSec * float64(time.Second))
	}
	st.mu.Lock()
	s.LastLabel = st.lastLabel
	st.mu.Unlock()
	if cache != nil {
		cs := cache.Stats()
		s.Cache = &cs
	}
	return s
}

// startStats launches the snapshot ticker; the returned stop must be
// called after the pool drains (it emits the Final snapshot).
func (r Runner) startStats(st *runnerState) (stop func()) {
	if r.OnStats == nil {
		return func() {}
	}
	quit := make(chan struct{})
	var wg sync.WaitGroup
	if r.StatsInterval > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(r.StatsInterval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					r.OnStats(st.snapshot(r.Cache, false))
				case <-quit:
					return
				}
			}
		}()
	}
	return func() {
		close(quit)
		wg.Wait()
		r.OnStats(st.snapshot(r.Cache, true))
	}
}

// exec is the shared pool core of Run and RunAll. With stopOnFirstError
// the first failure cancels the remaining queue and is returned alone
// (successful results still land in out); without it every cell runs and
// the labelled errors are joined.
func (r Runner) exec(cells []Cell, stopOnFirstError bool) ([]CellResult, error) {
	n := len(cells)
	out := make([]CellResult, n)
	if n == 0 {
		if r.OnStats != nil {
			st := &runnerState{start: time.Now(), total: 0, workers: r.WorkerCount()}
			r.OnStats(st.snapshot(r.Cache, true))
		}
		return out, nil
	}
	workers := r.WorkerCount()
	if workers > n {
		workers = n
	}

	st := &runnerState{start: time.Now(), total: n, workers: workers}
	stopStats := r.startStats(st)
	defer stopStats()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errs := make([]error, n)
	queue := make(chan int)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		done     int
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				c := cells[i]
				seed := CellSeed(r.BaseSeed, i)
				if c.Seed != nil {
					seed = *c.Seed
				}
				cellStart := time.Now()
				v, err := c.Run(seed)
				st.busyNanos.Add(time.Since(cellStart).Nanoseconds())
				st.done.Add(1)
				st.mu.Lock()
				st.lastLabel = c.Label
				st.mu.Unlock()
				mu.Lock()
				if err != nil && stopOnFirstError {
					if firstErr == nil {
						firstErr = err
						cancel() // stop feeding the queue
					}
				} else {
					out[i] = CellResult{Index: i, Label: c.Label, Value: v}
					if err != nil {
						if c.Label != "" {
							err = fmt.Errorf("%s: %w", c.Label, err)
						}
						errs[i] = err
					}
					done++
					if r.Progress != nil {
						r.Progress(done, n, c.Label)
					}
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for i := range cells {
		select {
		case queue <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(queue)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, errors.Join(errs...)
}

// Run executes all cells and returns their results ordered by cell index.
func (r Runner) Run(cells []Cell) ([]CellResult, error) {
	return r.exec(cells, true)
}

// RunAll executes all cells like Run, but never cancels the queue: every
// cell runs to completion, per-cell errors are joined (labelled with the
// failing cell) into the returned error, and the results of cells that
// succeeded are kept. Batch drivers whose individual cells may legitimately
// fail (fault scenarios, degraded sweeps) use this so one bad spec cannot
// discard a night of completed work.
func (r Runner) RunAll(cells []Cell) ([]CellResult, error) {
	return r.exec(cells, false)
}

// ForEach runs fn for indices [0, n) over the runner's pool and returns
// the results in index order — the typed convenience the figure pipelines
// use. fn receives the index's deterministic seed (see CellSeed).
func ForEach[T any](r Runner, n int, label func(i int) string, fn func(i int, seed uint64) (T, error)) ([]T, error) {
	cells := make([]Cell, n)
	for i := range cells {
		i := i
		var lbl string
		if label != nil {
			lbl = label(i)
		}
		cells[i] = Cell{Label: lbl, Run: func(seed uint64) (any, error) {
			return fn(i, seed)
		}}
	}
	res, err := r.Run(cells)
	if err != nil {
		return nil, err
	}
	out := make([]T, n)
	for i, cr := range res {
		if cr.Value != nil {
			out[i] = cr.Value.(T)
		}
	}
	return out, nil
}

// SweepCell is one cell of an experiment sweep: a machine configuration
// plus a workload trial block. The machine is built inside the worker so
// simulator state stays private; routing tables are shared read-only via
// the table cache.
type SweepCell struct {
	Label  string
	Combo  Combo
	Cfg    MachineConfig
	Nodes  int
	Trials int
	Jitter float64
	Build  func(n int) (*workloads.Instance, error)
	// Attach is forwarded to TrialSpec.Attach (telemetry hookup).
	Attach func(trial int, f fabric.Messenger)
	// Seed, when non-nil, pins the cell's seed (see Cell.Seed).
	Seed *uint64
}

// SweepResult is one cell's outcome: the per-trial metric values and their
// whisker statistics.
type SweepResult struct {
	Index int
	Label string
	Seed  uint64
	Vals  []float64
	Stats Stats
}

// RunSweep executes every cell over the runner's pool. Each cell's trials
// run under its deterministic seed, so the per-cell metric vectors are
// bit-identical for any worker count (test-enforced by
// TestSweepDeterministicAcrossWorkers).
func RunSweep(r Runner, cells []SweepCell) ([]SweepResult, error) {
	rcells := make([]Cell, len(cells))
	for i := range cells {
		i := i
		c := cells[i]
		rcells[i] = Cell{Label: c.Label, Seed: c.Seed, Run: func(seed uint64) (any, error) {
			m, err := BuildMachine(c.Combo, c.Cfg)
			if err != nil {
				return nil, err
			}
			vals, _, err := RunTrials(TrialSpec{
				Machine: m, Nodes: c.Nodes, Trials: c.Trials,
				Seed: seed, Jitter: c.Jitter, Build: c.Build, Attach: c.Attach,
			})
			if err != nil {
				return nil, err
			}
			return SweepResult{Index: i, Label: c.Label, Seed: seed, Vals: vals, Stats: Summarize(vals)}, nil
		}}
	}
	res, err := r.Run(rcells)
	if err != nil {
		return nil, err
	}
	out := make([]SweepResult, len(res))
	for i, cr := range res {
		out[i] = cr.Value.(SweepResult)
	}
	return out, nil
}
