package exp

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"

	"github.com/hpcsim/t2hx/internal/fabric"
	"github.com/hpcsim/t2hx/internal/telemetry"
	"github.com/hpcsim/t2hx/internal/workloads"
)

func TestCellSeedDependsOnlyOnBaseAndIndex(t *testing.T) {
	if CellSeed(1, 0) == CellSeed(1, 1) {
		t.Fatal("adjacent cell seeds collide")
	}
	if CellSeed(1, 5) != CellSeed(1, 5) {
		t.Fatal("cell seed not a pure function")
	}
	if CellSeed(1, 5) == CellSeed(2, 5) {
		t.Fatal("base seed ignored")
	}
}

// miniSweepCells builds the determinism fixture the issue prescribes: all
// five paper combos × two workloads, three trials each, on the small
// degraded planes. cols receives each cell's final-trial collector so the
// caller can compare telemetry conservation sums across worker counts.
func miniSweepCells(cols []*telemetry.Collector) []SweepCell {
	type wl struct {
		name  string
		build func(n int) (*workloads.Instance, error)
	}
	wls := []wl{
		{"imb:alltoall", func(n int) (*workloads.Instance, error) { return workloads.BuildIMB("alltoall", n, 4096) }},
		{"incast", func(n int) (*workloads.Instance, error) { return workloads.BuildIncast(n, 4096) }},
	}
	const trials = 3
	var cells []SweepCell
	for _, combo := range PaperCombos() {
		for _, w := range wls {
			idx := len(cells)
			cells = append(cells, SweepCell{
				Label:  combo.Name + " " + w.name,
				Combo:  combo,
				Cfg:    MachineConfig{Small: true, Degrade: true, Seed: 7},
				Nodes:  16,
				Trials: trials,
				Build:  w.build,
				Attach: func(trial int, f fabric.Messenger) {
					if trial != trials-1 {
						return
					}
					if fb, ok := f.(*fabric.Fabric); ok {
						col := telemetry.New(fb.G, telemetry.Options{Counters: true})
						fb.AttachTelemetry(col)
						cols[idx] = col
					}
				},
			})
		}
	}
	return cells
}

// TestSweepDeterministicAcrossWorkers is the issue's acceptance test: the
// mini-sweep must produce byte-identical metric vectors and identical
// telemetry conservation sums at -j 1 and -j 8. Runs under -race in CI
// (make race covers ./internal/...).
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) ([]SweepResult, []float64) {
		cols := make([]*telemetry.Collector, 10)
		cells := miniSweepCells(cols)
		res, err := RunSweep(Runner{Workers: workers, BaseSeed: 1}, cells)
		if err != nil {
			t.Fatal(err)
		}
		sums := make([]float64, len(cols))
		for i, col := range cols {
			if col == nil || col.Chans == nil {
				t.Fatalf("cell %d: no collector attached", i)
			}
			sums[i] = col.Chans.TotalXmitData()
		}
		return res, sums
	}
	seq, seqSums := run(1)
	par, parSums := run(8)

	if len(seq) != len(par) {
		t.Fatalf("result counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Label != par[i].Label || seq[i].Seed != par[i].Seed {
			t.Fatalf("cell %d identity differs: %q/%d vs %q/%d",
				i, seq[i].Label, seq[i].Seed, par[i].Label, par[i].Seed)
		}
		if len(seq[i].Vals) != len(par[i].Vals) {
			t.Fatalf("cell %d trial counts differ", i)
		}
		for k := range seq[i].Vals {
			a, b := math.Float64bits(seq[i].Vals[k]), math.Float64bits(par[i].Vals[k])
			if a != b {
				t.Errorf("cell %d (%s) trial %d: -j1 %x != -j8 %x",
					i, seq[i].Label, k, a, b)
			}
		}
		if math.Float64bits(seqSums[i]) != math.Float64bits(parSums[i]) {
			t.Errorf("cell %d (%s): conservation sum -j1 %v != -j8 %v",
				i, seq[i].Label, seqSums[i], parSums[i])
		}
		if seqSums[i] <= 0 {
			t.Errorf("cell %d (%s): conservation sum %v, want > 0", i, seq[i].Label, seqSums[i])
		}
	}
}

func TestRunnerFirstErrorCancels(t *testing.T) {
	var ran atomic.Int64
	cells := make([]Cell, 64)
	for i := range cells {
		i := i
		cells[i] = Cell{Label: fmt.Sprint(i), Run: func(uint64) (any, error) {
			ran.Add(1)
			if i == 0 {
				return nil, errors.New("boom")
			}
			return i, nil
		}}
	}
	_, err := Runner{Workers: 2}.Run(cells)
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := ran.Load(); n == 64 {
		t.Error("error did not cancel the remaining queue")
	}
}

func TestRunnerProgressAndOrder(t *testing.T) {
	var calls atomic.Int64
	r := Runner{Workers: 4, Progress: func(done, total int, label string) {
		calls.Add(1)
		if done < 1 || done > total {
			t.Errorf("progress done=%d outside [1,%d]", done, total)
		}
	}}
	out, err := ForEach(r, 32, nil, func(i int, seed uint64) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d (results must be index-ordered)", i, v, i*i)
		}
	}
	if calls.Load() != 32 {
		t.Fatalf("progress called %d times, want 32", calls.Load())
	}
}

func TestRunFaultBatchRejectsSharedMachine(t *testing.T) {
	m, err := BuildMachine(smallCombo(), MachineConfig{Small: true})
	if err != nil {
		t.Fatal(err)
	}
	build := func(n int) (*workloads.Instance, error) { return workloads.BuildIMB("alltoall", n, 1024) }
	_, err = RunFaultBatch(Runner{Workers: 2}, []FaultSpec{
		{Machine: m, Nodes: 8, Seed: 1, Build: build},
		{Machine: m, Nodes: 8, Seed: 2, Build: build},
	})
	if err == nil {
		t.Fatal("batch accepted two specs sharing one machine")
	}
}

func TestRunFaultBatchMatchesSequential(t *testing.T) {
	newSpec := func(seed uint64) FaultSpec {
		m, err := BuildMachine(smallCombo(), MachineConfig{Small: true, Degrade: false})
		if err != nil {
			t.Fatal(err)
		}
		return FaultSpec{
			Machine: m, Nodes: 12, Failures: 2, Seed: seed,
			Build: func(n int) (*workloads.Instance, error) { return workloads.BuildIMB("alltoall", n, 8192) },
		}
	}
	seqA, err := RunFaultScenario(newSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := RunFaultBatch(Runner{Workers: 2}, []FaultSpec{newSpec(3), newSpec(4)})
	if err != nil {
		t.Fatal(err)
	}
	if batch[0].Faulted != seqA.Faulted || batch[0].Baseline != seqA.Baseline {
		t.Fatalf("batched scenario differs from sequential: %+v vs %+v", batch[0], seqA)
	}
}
