package exp

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/hpcsim/t2hx/internal/faults"
	"github.com/hpcsim/t2hx/internal/mpi"
	"github.com/hpcsim/t2hx/internal/place"
	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
	"github.com/hpcsim/t2hx/internal/workloads"
)

// The degraded-topology survival sweep: the study the paper could not run
// on its production machine (which lived with 15 of 197 HyperX links
// broken). For every (engine × workload × failure count) cell it generates
// many seeded degradation variants, rides each through a full fault
// scenario (failures injected mid-run, SM re-sweeps), and records goodput,
// re-sweep latency, unreachable pairs and the deadlock-freedom margin as
// failures climb well past the paper's count.
//
// Each variant is a seeded topo.DegradeChain: an ordered failure chain
// whose every prefix keeps the switch fabric connected. One variant's
// chain is shared across all engines, workloads and failure counts, so
// cells differ incrementally — consecutive counts add exactly one link —
// and the Zobrist DownHash keys of exp.TableCache stay delta-friendly
// instead of rebuilding tables per variant.

// DegradedWorkload names one workload column of a degraded sweep.
type DegradedWorkload struct {
	Name  string
	Build func(n int) (*workloads.Instance, error)
}

// DegradedSpec configures RunDegraded.
type DegradedSpec struct {
	// Engines lists the HyperX routing engines to compare (e.g. "dfsssp",
	// "hxmin", "hxnm").
	Engines   []string
	Workloads []DegradedWorkload
	// Counts are the failure counts swept; each is a prefix length of the
	// variant's chain. A count beyond what connectivity allows is clamped
	// (Planned records the clamp).
	Counts []int
	// Variants is the number of seeded chains per cell.
	Variants int
	Nodes    int
	Small    bool
	Seed     uint64
	// Detect/SweepLatency forward to the SM model; zero keeps defaults.
	Detect       sim.Duration
	SweepLatency sim.Duration
	// MarginSamples caps the DeadlockMargin sampling per variant; <= 0
	// selects route.DefaultMarginSamples.
	MarginSamples int
	// Placement defaults to linear.
	Placement place.Strategy
}

// DegradedResult is one variant's outcome.
type DegradedResult struct {
	Engine   string
	Workload string
	// Failures is the requested count; Planned what the chain could serve
	// (connectivity shortfall clamps).
	Failures int
	Planned  int
	Variant  int
	Seed     uint64
	// Survived is false when the faulted run wedged (a rank out of
	// retries) or the final-state rebuild failed; Err carries the cause.
	// That outcome is sweep data, not an infrastructure error.
	Survived bool
	Err      string

	Baseline sim.Duration
	Faulted  sim.Duration

	GoodputBefore float64
	GoodputDuring float64
	GoodputAfter  float64

	Sweeps         int
	RejectedSweeps int
	SweepP50       sim.Duration
	SweepMax       sim.Duration

	// Final-state table quality after all Planned failures: unreachable
	// (src, dst-LID) pairs, deadlock freedom, and the CDG cycle-slack
	// margin of the rebuilt tables.
	Unreachable  int
	DeadlockFree bool
	Margin       float64
}

// Slowdown is the makespan inflation the failures caused.
func (r DegradedResult) Slowdown() float64 {
	if r.Baseline == 0 || !r.Survived {
		return 0
	}
	return float64(r.Faulted)/float64(r.Baseline) - 1
}

// DegradedRow aggregates one (engine, workload, failure count) cell.
type DegradedRow struct {
	Engine   string
	Workload string
	Failures int
	Variants int
	Survived int

	SlowdownMed      float64
	GoodputDuringMed float64
	SweepP50Med      sim.Duration
	SweepMaxMax      sim.Duration
	UnreachableMean  float64
	UnreachableMax   int
	MarginMin        float64
	MarginMean       float64
}

func (spec DegradedSpec) validate() error {
	if len(spec.Engines) == 0 {
		return errors.New("exp: degraded sweep needs at least one engine")
	}
	if len(spec.Workloads) == 0 {
		return errors.New("exp: degraded sweep needs at least one workload")
	}
	if len(spec.Counts) == 0 {
		return errors.New("exp: degraded sweep needs at least one failure count")
	}
	for _, c := range spec.Counts {
		if c < 0 {
			return fmt.Errorf("exp: negative failure count %d", c)
		}
	}
	if spec.Variants <= 0 {
		return errors.New("exp: degraded sweep needs Variants > 0")
	}
	if spec.Nodes <= 0 {
		return errors.New("exp: degraded sweep needs Nodes > 0")
	}
	return nil
}

// degradedState shares the read-only per-sweep caches across cells: the
// per-engine machine pools (a machine is held by exactly one cell at a
// time and returned clean), the per-variant failure chains, and the
// per-(engine, workload) baselines. None of it affects cell values — a
// pool miss builds an identical machine, a chain cache miss recomputes the
// identical chain — which is what keeps -j 1 and -j N sweeps bit-identical.
type degradedState struct {
	spec DegradedSpec

	mu       sync.Mutex
	machines map[string][]*Machine
	chains   map[uint64][]topo.LinkID

	baselines [][]sim.Duration // [engine][workload]
}

func (st *degradedState) combo(engine string) Combo {
	placement := st.spec.Placement
	if placement == "" {
		placement = place.Linear
	}
	return Combo{
		Name:      "hyperx/" + engine,
		Topology:  "hyperx",
		Routing:   engine,
		Placement: placement,
	}
}

func (st *degradedState) getMachine(engine string) (*Machine, error) {
	st.mu.Lock()
	free := st.machines[engine]
	if n := len(free); n > 0 {
		m := free[n-1]
		st.machines[engine] = free[:n-1]
		st.mu.Unlock()
		return m, nil
	}
	st.mu.Unlock()
	return BuildMachine(st.combo(engine), MachineConfig{Small: st.spec.Small, Seed: st.spec.Seed})
}

func (st *degradedState) putMachine(engine string, m *Machine) {
	st.mu.Lock()
	st.machines[engine] = append(st.machines[engine], m)
	st.mu.Unlock()
}

// chainFor returns the variant's failure chain, computing it on the given
// (clean, exclusively held) machine graph on first use. Chains depend only
// on graph structure and seed, so the cache never changes values.
func (st *degradedState) chainFor(g *topo.Graph, vseed uint64, maxCount int) []topo.LinkID {
	st.mu.Lock()
	chain, ok := st.chains[vseed]
	st.mu.Unlock()
	if ok {
		return chain
	}
	chain, err := topo.DegradeChain(g, maxCount, vseed)
	if err != nil && !errors.Is(err, topo.ErrDegradeShortfall) {
		chain = nil // no switch links at all; every count clamps to zero
	}
	st.mu.Lock()
	if prev, ok := st.chains[vseed]; ok {
		chain = prev
	} else {
		st.chains[vseed] = chain
	}
	st.mu.Unlock()
	return chain
}

// RunDegraded executes the survival sweep over the runner's pool and
// returns one DegradedResult per (engine × workload × count × variant)
// cell, in that nesting order. Wedged variants come back with Survived ==
// false rather than failing the sweep; only infrastructure problems
// (machine builds, baseline runs) abort. Results depend only on spec —
// never on worker count.
func RunDegraded(r Runner, spec DegradedSpec) ([]DegradedResult, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	st := &degradedState{
		spec:     spec,
		machines: make(map[string][]*Machine),
		chains:   make(map[uint64][]topo.LinkID),
	}
	maxCount := 0
	for _, c := range spec.Counts {
		if c > maxCount {
			maxCount = c
		}
	}

	// Baselines: one fault-free run per (engine, workload), shared by every
	// variant of that pair. Sequential — the fan-out below dwarfs it.
	st.baselines = make([][]sim.Duration, len(spec.Engines))
	for ei, eng := range spec.Engines {
		m, err := st.getMachine(eng)
		if err != nil {
			return nil, fmt.Errorf("exp: degraded sweep machine for %s: %w", eng, err)
		}
		st.baselines[ei] = make([]sim.Duration, len(spec.Workloads))
		for wi, w := range spec.Workloads {
			base, err := degradedBaseline(m, spec.Nodes, spec.Seed, w.Build)
			if err != nil {
				return nil, fmt.Errorf("exp: degraded sweep baseline %s/%s: %w", eng, w.Name, err)
			}
			st.baselines[ei][wi] = base
		}
		st.putMachine(eng, m)
	}

	nW, nC, nV := len(spec.Workloads), len(spec.Counts), spec.Variants
	total := len(spec.Engines) * nW * nC * nV
	return ForEach(r, total,
		func(i int) string {
			ei, wi, ci, vi := degradedSplit(i, nW, nC, nV)
			return fmt.Sprintf("%s/%s f=%d v=%d",
				spec.Engines[ei], spec.Workloads[wi].Name, spec.Counts[ci], vi)
		},
		func(i int, _ uint64) (DegradedResult, error) {
			ei, wi, ci, vi := degradedSplit(i, nW, nC, nV)
			return st.runCell(ei, wi, ci, vi, maxCount)
		})
}

func degradedSplit(i, nW, nC, nV int) (ei, wi, ci, vi int) {
	vi = i % nV
	i /= nV
	ci = i % nC
	i /= nC
	wi = i % nW
	return i / nW, wi, ci, vi
}

func degradedBaseline(m *Machine, nodes int, seed uint64, build func(n int) (*workloads.Instance, error)) (sim.Duration, error) {
	ranks, err := m.Place(nodes, seed)
	if err != nil {
		return 0, err
	}
	inst, err := build(nodes)
	if err != nil {
		return 0, err
	}
	f, err := m.NewFabric(seed)
	if err != nil {
		return 0, err
	}
	res, err := mpi.Run(f, "baseline", ranks, inst.Progs, mpi.Options{})
	if err != nil {
		return 0, err
	}
	return res.Elapsed, nil
}

// runCell executes one variant: inject the chain prefix mid-run, then
// analyze the final degraded state's rebuilt tables.
func (st *degradedState) runCell(ei, wi, ci, vi, maxCount int) (DegradedResult, error) {
	spec := st.spec
	engine := spec.Engines[ei]
	w := spec.Workloads[wi]
	count := spec.Counts[ci]
	vseed := CellSeed(spec.Seed, vi)
	res := DegradedResult{
		Engine: engine, Workload: w.Name,
		Failures: count, Variant: vi, Seed: vseed,
	}
	m, err := st.getMachine(engine)
	if err != nil {
		return res, err
	}
	defer st.putMachine(engine, m)

	chain := st.chainFor(m.G, vseed, maxCount)
	if count < len(chain) {
		chain = chain[:count]
	}
	res.Planned = len(chain)
	base := st.baselines[ei][wi]
	res.Baseline = base

	// The prefix's failures spread over the middle half of the baseline
	// makespan, timed by the (variant, count) seed so every engine and
	// workload sees the same timeline for a given variant.
	rng := sim.NewRand(CellSeed(vseed, 1+ci))
	times := make([]float64, len(chain))
	for i := range times {
		times[i] = rng.Float64()
	}
	sort.Float64s(times)
	sched := make(faults.Schedule, 0, len(chain))
	for i, id := range chain {
		at := sim.Time(base)/4 + sim.Time(float64(base/2)*times[i])
		sched = append(sched, faults.Event{At: at, Kind: faults.LinkDown, Link: id})
	}

	fr, runErr := RunFaultScenario(FaultSpec{
		Machine: m, Nodes: spec.Nodes, Seed: vseed,
		Detect: spec.Detect, Sweep: spec.SweepLatency,
		Build: w.Build, Schedule: sched, Baseline: base,
	})
	if fr != nil {
		res.Faulted = fr.Faulted
		res.GoodputBefore = fr.GoodputBefore
		res.GoodputDuring = fr.GoodputDuring
		res.GoodputAfter = fr.GoodputAfter
		res.Sweeps = len(fr.Sweeps)
		for _, s := range fr.Sweeps {
			if s.Rejected != nil {
				res.RejectedSweeps++
			}
		}
		if len(fr.Latencies) > 0 {
			lat := append([]sim.Duration(nil), fr.Latencies...)
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			res.SweepP50 = lat[len(lat)/2]
			res.SweepMax = lat[len(lat)-1]
		}
	}
	res.Survived = runErr == nil
	if runErr != nil {
		res.Err = runErr.Error()
	}

	// Final-state analysis: apply the full prefix as a down mask, rebuild
	// through the table cache (delta-keyed by the Zobrist DownHash), and
	// score reachability and deadlock margin of what the SM would run on.
	prev := topo.CaptureDownMask(m.G)
	mask := prev.Clone()
	for _, id := range chain {
		mask.Set(id, true)
	}
	mask.ApplyDelta(m.G, prev)
	tb, buildErr := m.Primary().Rebuild()
	if buildErr != nil {
		res.Survived = false
		if res.Err != "" {
			res.Err += "; "
		}
		res.Err += "final rebuild: " + buildErr.Error()
	} else {
		rep, verr := route.Validate(tb)
		if verr == nil {
			res.Unreachable = rep.Unreachable
			res.DeadlockFree = rep.DeadlockFree
		}
		res.Margin = route.DeadlockMargin(tb, spec.MarginSamples)
	}
	prev.ApplyDelta(m.G, mask)
	return res, nil
}

// SummarizeDegraded folds per-variant results into per-cell rows, in
// first-seen (engine, workload, count) order.
func SummarizeDegraded(results []DegradedResult) []DegradedRow {
	type cellKey struct {
		engine, workload string
		failures         int
	}
	order := make([]cellKey, 0)
	groups := make(map[cellKey][]DegradedResult)
	for _, r := range results {
		k := cellKey{r.Engine, r.Workload, r.Failures}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	rows := make([]DegradedRow, 0, len(order))
	for _, k := range order {
		g := groups[k]
		row := DegradedRow{
			Engine: k.engine, Workload: k.workload, Failures: k.failures,
			Variants: len(g), MarginMin: 1,
		}
		var slow, good, p50, unre, marg []float64
		for _, r := range g {
			unre = append(unre, float64(r.Unreachable))
			if r.Unreachable > row.UnreachableMax {
				row.UnreachableMax = r.Unreachable
			}
			marg = append(marg, r.Margin)
			if r.Margin < row.MarginMin {
				row.MarginMin = r.Margin
			}
			if !r.Survived {
				continue
			}
			row.Survived++
			slow = append(slow, r.Slowdown())
			good = append(good, r.GoodputDuring)
			p50 = append(p50, float64(r.SweepP50))
			if r.SweepMax > row.SweepMaxMax {
				row.SweepMaxMax = r.SweepMax
			}
		}
		row.SlowdownMed = Summarize(slow).Median
		row.GoodputDuringMed = Summarize(good).Median
		row.SweepP50Med = sim.Duration(Summarize(p50).Median)
		row.UnreachableMean = Summarize(unre).Mean
		row.MarginMean = Summarize(marg).Mean
		rows = append(rows, row)
	}
	return rows
}
