package workloads

import (
	"testing"

	"github.com/hpcsim/t2hx/internal/mpi"
	"github.com/hpcsim/t2hx/internal/sim"
)

func countOps(progs []*mpi.Program) int {
	n := 0
	for _, p := range progs {
		n += p.Steps()
	}
	return n
}

func TestBuildOptsIterScaleShrinksPrograms(t *testing.T) {
	full := BuildAMG(8, DefaultOpts())
	quarter := BuildAMG(8, BuildOpts{IterScale: 0.25, ComputeScale: 1})
	if countOps(quarter.Progs) >= countOps(full.Progs) {
		t.Errorf("IterScale=0.25 did not shrink programs: %d vs %d",
			countOps(quarter.Progs), countOps(full.Progs))
	}
}

func TestBuildOptsPrologPrepended(t *testing.T) {
	o := BuildOpts{IterScale: 1, ComputeScale: 1, Prolog: 30 * sim.Second}
	in := BuildCoMD(4, o)
	for r, p := range in.Progs {
		if len(p.Ops) == 0 || p.Ops[0].Kind != mpi.OpCompute || p.Ops[0].Dur != 30*sim.Second {
			t.Fatalf("rank %d missing 30s prolog: first op %+v", r, p.Ops[0])
		}
	}
}

func TestBuildOptsComputeScale(t *testing.T) {
	base := BuildMiniFE(4, DefaultOpts())
	scaled := BuildMiniFE(4, BuildOpts{IterScale: 1, ComputeScale: 3})
	sum := func(in *Instance) sim.Duration {
		var total sim.Duration
		for _, op := range in.Progs[0].Ops {
			if op.Kind == mpi.OpCompute {
				total += op.Dur
			}
		}
		return total
	}
	ratio := float64(sum(scaled)) / float64(sum(base))
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("ComputeScale=3 gave compute ratio %.2f", ratio)
	}
}

func TestBuildOptsItersFloorAtOne(t *testing.T) {
	o := BuildOpts{IterScale: 0.0001, ComputeScale: 1}
	in := BuildGraph500(4, o)
	if len(in.Progs[0].Ops) == 0 {
		t.Error("IterScale ~0 produced an empty program; iteration floor broken")
	}
}

func TestWeakStarInputsShrink(t *testing.T) {
	// FFVC shrinks its cuboid beyond 64 nodes (Sec. 5.2): the per-iteration
	// halo faces must be smaller at 128 nodes than at 64.
	sizeOfLargestSend := func(in *Instance) int64 {
		var max int64
		for _, p := range in.Progs {
			for _, op := range p.Ops {
				if op.Kind == mpi.OpISend && op.Size > max {
					max = op.Size
				}
			}
		}
		return max
	}
	small := BuildFFVC(128, DefaultOpts())
	big := BuildFFVC(64, DefaultOpts())
	if sizeOfLargestSend(small) >= sizeOfLargestSend(big) {
		t.Errorf("FFVC weak* did not shrink input beyond 64 nodes: %d vs %d",
			sizeOfLargestSend(small), sizeOfLargestSend(big))
	}
	// HPL shrinks per-process memory from 224 nodes on; the total modelled
	// flops must grow sublinearly across that boundary.
	h1 := BuildHPL(112, DefaultOpts())
	h2 := BuildHPL(224, DefaultOpts())
	if h2.Flops/h1.Flops > 2.0 {
		t.Errorf("HPL weak* boundary missing: flops ratio %.2f", h2.Flops/h1.Flops)
	}
}

func TestInstanceScoreModes(t *testing.T) {
	flops := &Instance{Flops: 2e9}
	if got := flops.Score(2 * sim.Second); got != 1 {
		t.Errorf("Gflop/s score = %v, want 1", got)
	}
	edges := &Instance{Edges: 3e9}
	if got := edges.Score(3 * sim.Second); got != 1 {
		t.Errorf("GTEPS score = %v, want 1", got)
	}
	ops := &Instance{Ops: 10}
	if got := ops.Score(1 * sim.Millisecond); got != 100 {
		t.Errorf("us/op score = %v, want 100", got)
	}
	plain := &Instance{}
	if got := plain.Score(7 * sim.Second); got != 7 {
		t.Errorf("runtime score = %v, want 7", got)
	}
}
