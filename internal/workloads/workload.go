// Package workloads implements the paper's benchmark suite (Sec. 4) as
// communication skeletons: the exact MPI operation mix of Table 2 with the
// paper's weak/strong-scaled message volumes, plus calibrated compute
// phases, so that the network sees the same traffic patterns the real
// applications generate while the solvers' arithmetic is reduced to timing.
//
// Modelling compression: some applications run thousands of solver
// iterations; the skeletons run proportionally fewer, heavier iterations
// (same pattern and total communication volume, fewer simulation events).
// EXPERIMENTS.md records the resulting paper-vs-measured comparison.
package workloads

import (
	"fmt"
	"math"

	"github.com/hpcsim/t2hx/internal/mpi"
	"github.com/hpcsim/t2hx/internal/sim"
)

// Direction states whether larger metric values are better.
type Direction bool

const (
	LowerIsBetter  Direction = false
	HigherIsBetter Direction = true
)

// Instance is one runnable configuration of a workload: per-rank programs
// plus the bookkeeping needed to turn elapsed time into the paper's metric.
type Instance struct {
	Progs []*mpi.Program
	// Flops is the modelled floating-point work for Gflop/s metrics (HPL,
	// HPCG); zero otherwise.
	Flops float64
	// Edges is the number of traversed edges for the TEPS metric
	// (Graph500); zero otherwise.
	Edges float64
	// Ops divides elapsed time for per-operation latency metrics (IMB).
	Ops int
}

// Score converts a run's elapsed time into the workload metric: Gflop/s
// when Flops is set, GTEPS when Edges is set, microseconds per operation
// when Ops is set, kernel seconds otherwise.
func (in *Instance) Score(elapsed sim.Duration) float64 {
	switch {
	case in.Flops > 0:
		return in.Flops / float64(elapsed) / 1e9
	case in.Edges > 0:
		return in.Edges / float64(elapsed) / 1e9
	case in.Ops > 1:
		return float64(elapsed) / float64(in.Ops) * 1e6
	default:
		return float64(elapsed)
	}
}

// BuildOpts tune an application skeleton without changing its pattern:
// IterScale multiplies solver iteration counts (fewer, proportionally
// heavier iterations for cheap capacity runs), ComputeScale multiplies
// compute phases, and Prolog prepends a startup phase (MPI_Init, input
// loading) that capability runs exclude from the kernel but capacity runs
// pay per execution.
type BuildOpts struct {
	IterScale    float64
	ComputeScale float64
	Prolog       sim.Duration
}

// DefaultOpts is the capability-run configuration: unscaled, no prolog.
func DefaultOpts() BuildOpts { return BuildOpts{IterScale: 1, ComputeScale: 1} }

// iters applies IterScale to a base iteration count (at least 1).
func (o BuildOpts) iters(base int) int {
	n := int(math.Round(float64(base) * o.IterScale))
	if n < 1 {
		n = 1
	}
	return n
}

// compute applies ComputeScale to a base duration.
func (o BuildOpts) compute(d sim.Duration) sim.Duration {
	return sim.Duration(float64(d) * o.ComputeScale)
}

// finish prepends the prolog to every rank and returns the instance.
func (o BuildOpts) finish(in *Instance) *Instance {
	if o.Prolog > 0 {
		for _, p := range in.Progs {
			p.Ops = append([]mpi.Op{{Kind: mpi.OpCompute, Dur: o.Prolog}}, p.Ops...)
		}
	}
	return in
}

// App is a registry entry: one of the paper's application benchmarks.
type App struct {
	Name    string
	Abbrev  string // the paper's abbreviation (Table 2)
	Scaling string // "weak", "strong", "weak*"
	Metric  string
	Better  Direction
	// MPIFuncs documents the MPI functions of Table 2.
	MPIFuncs []string
	// PowerOfTwo selects the 4,8,...,512 ladder instead of 7,14,...,672.
	PowerOfTwo bool
	Build      func(n int, o BuildOpts) *Instance
}

// Instance builds the app with capability-run defaults.
func (a App) Instance(n int) *Instance { return a.Build(n, DefaultOpts()) }

// Ladder returns the paper's node-count ladder for this app on a machine
// with maxNodes nodes (Sec. 4.4.1): 7,14,...,448,672 or 4,8,...,512.
func (a App) Ladder(maxNodes int) []int {
	var out []int
	if a.PowerOfTwo {
		for n := 4; n <= maxNodes; n *= 2 {
			out = append(out, n)
		}
		return out
	}
	for n := 7; n <= maxNodes; n *= 2 {
		out = append(out, n)
	}
	if len(out) == 0 || out[len(out)-1] != maxNodes {
		out = append(out, maxNodes)
	}
	return out
}

// Registry returns the nine proxy applications and three x500 benchmarks
// of Sec. 4.2/4.3, in the paper's order.
func Registry() []App {
	return []App{
		{Name: "Algebraic multi-grid solver (hypre)", Abbrev: "AMG", Scaling: "weak",
			Metric: "Kernel runtime [s]", Better: LowerIsBetter,
			MPIFuncs:   []string{"Isend", "Irecv", "Allgatherv", "Allreduce", "Bcast"},
			PowerOfTwo: false, Build: BuildAMG},
		{Name: "Co-designed Molecular Dynamics", Abbrev: "CoMD", Scaling: "weak",
			Metric: "Kernel runtime [s]", Better: LowerIsBetter,
			MPIFuncs:   []string{"Sendrecv", "Allreduce", "Barrier", "Bcast"},
			PowerOfTwo: false, Build: BuildCoMD},
		{Name: "MiniFE implicit finite elements", Abbrev: "MiFE", Scaling: "weak",
			Metric: "Kernel runtime [s]", Better: LowerIsBetter,
			MPIFuncs:   []string{"Send", "Irecv", "Allgather", "Allreduce", "Bcast"},
			PowerOfTwo: false, Build: BuildMiniFE},
		{Name: "SWFFT (HACC 3-D FFT kernel)", Abbrev: "FFT", Scaling: "weak",
			Metric: "Kernel runtime [s]", Better: LowerIsBetter,
			MPIFuncs:   []string{"Isend", "Irecv", "Allreduce", "Barrier"},
			PowerOfTwo: true, Build: BuildSWFFT},
		{Name: "Frontflow/violet Cartesian", Abbrev: "FFVC", Scaling: "weak*",
			Metric: "Kernel runtime [s]", Better: LowerIsBetter,
			MPIFuncs:   []string{"Isend", "Irecv", "Allreduce", "Gather"},
			PowerOfTwo: true, Build: BuildFFVC},
		{Name: "many-variable Variational Monte Carlo", Abbrev: "mVMC", Scaling: "weak",
			Metric: "Kernel runtime [s]", Better: LowerIsBetter,
			MPIFuncs:   []string{"Isend", "Sendrecv", "Recv", "Allreduce", "Bcast", "Scatter"},
			PowerOfTwo: true, Build: BuildMVMC},
		{Name: "NTChem (MP2 solver, taxol)", Abbrev: "NTCh", Scaling: "strong",
			Metric: "Kernel runtime [s]", Better: LowerIsBetter,
			MPIFuncs:   []string{"Isend", "Irecv", "Allreduce", "Barrier", "Bcast"},
			PowerOfTwo: false, Build: BuildNTChem},
		{Name: "MIMD Lattice Computation", Abbrev: "MILC", Scaling: "weak",
			Metric: "Kernel runtime [s]", Better: LowerIsBetter,
			MPIFuncs:   []string{"Isend", "Irecv", "Allreduce", "Barrier", "Bcast"},
			PowerOfTwo: true, Build: BuildMILC},
		{Name: "LLNL qb@ll (first-principles MD)", Abbrev: "Qbox", Scaling: "weak*",
			Metric: "Kernel runtime [s]", Better: LowerIsBetter,
			MPIFuncs:   []string{"Send", "Irecv", "Allreduce", "Alltoallv", "Bcast"},
			PowerOfTwo: false, Build: BuildQbox},
		{Name: "High Performance Linpack", Abbrev: "HPL", Scaling: "weak*",
			Metric: "Gflop/s", Better: HigherIsBetter,
			MPIFuncs:   []string{"Send", "Irecv"},
			PowerOfTwo: false, Build: BuildHPL},
		{Name: "High Performance Conjugate Gradients", Abbrev: "HPCG", Scaling: "weak",
			Metric: "Gflop/s", Better: HigherIsBetter,
			MPIFuncs:   []string{"Send", "Irecv", "Allreduce", "Alltoallv", "Barrier", "Bcast"},
			PowerOfTwo: false, Build: BuildHPCG},
		{Name: "Graph 500 BFS", Abbrev: "GraD", Scaling: "weak",
			Metric: "GTEPS", Better: HigherIsBetter,
			MPIFuncs:   []string{"Isend", "Irecv", "Allgather", "Allreduce"},
			PowerOfTwo: true, Build: BuildGraph500},
	}
}

// FindApp returns the registry entry with the given abbreviation.
func FindApp(abbrev string) (App, error) {
	for _, a := range Registry() {
		if a.Abbrev == abbrev {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("workloads: unknown app %q", abbrev)
}

// --- process-grid helpers ---

// Factor splits n into d factors as evenly as possible (minimizing the
// largest factor), like MPI_Dims_create.
func Factor(n, d int) []int {
	dims := make([]int, d)
	for i := range dims {
		dims[i] = 1
	}
	rem := n
	for i := 0; i < d; i++ {
		// Target: the d-i'th root of the remainder; pick the largest
		// divisor of rem not exceeding ceil(root).
		target := int(math.Ceil(math.Pow(float64(rem), 1/float64(d-i))))
		best := 1
		for f := 1; f <= rem && f <= target+1; f++ {
			if rem%f == 0 {
				best = f
			}
		}
		dims[i] = best
		rem /= best
	}
	// Any leftover (shouldn't happen) folds into the last dim.
	dims[d-1] *= rem
	// Sort descending for stable shapes.
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if dims[j] > dims[i] {
				dims[i], dims[j] = dims[j], dims[i]
			}
		}
	}
	return dims
}

// gridCoord converts rank to coordinates in a row-major grid.
func gridCoord(r int, dims []int) []int {
	c := make([]int, len(dims))
	for i := len(dims) - 1; i >= 0; i-- {
		c[i] = r % dims[i]
		r /= dims[i]
	}
	return c
}

// gridRank converts coordinates to a rank.
func gridRank(c, dims []int) int {
	r := 0
	for i := 0; i < len(dims); i++ {
		r = r*dims[i] + c[i]
	}
	return r
}

// Halo adds one halo-exchange round on a periodic Cartesian grid: every
// rank Sendrecvs faceBytes with both neighbors in every dimension whose
// extent exceeds 1. This is the stencil backbone of AMG, CoMD, MiniFE,
// FFVC, HPCG (3-D) and MILC (4-D).
func Halo(b *mpi.Builder, dims []int, faceBytes int64) {
	n := b.N()
	for d := range dims {
		if dims[d] < 2 {
			continue
		}
		for dir := -1; dir <= 1; dir += 2 {
			tag := b.NextTag()
			for r := 0; r < n; r++ {
				c := gridCoord(r, dims)
				cn := append([]int{}, c...)
				cn[d] = (c[d] + dir + dims[d]) % dims[d]
				to := gridRank(cn, dims)
				cp := append([]int{}, c...)
				cp[d] = (c[d] - dir + dims[d]) % dims[d]
				from := gridRank(cp, dims)
				b.Progs[r].Sendrecv(mpi.Rank(to), faceBytes, tag, mpi.Rank(from), tag)
			}
		}
	}
}
