package workloads

import (
	"fmt"

	"github.com/hpcsim/t2hx/internal/fabric"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// The two bandwidth probes of the paper that need per-pair timing rather
// than a job makespan run directly on the fabric: mpiGraph (Fig. 1) and
// Netgauge's effective bisection bandwidth (Fig. 5c).

// GiB converts bytes/second to GiB/s.
func GiB(bytesPerSec float64) float64 { return bytesPerSec / (1 << 30) }

// MpiGraphResult is the bandwidth heatmap of Fig. 1.
type MpiGraphResult struct {
	// BW[src][dst] is the observed send bandwidth in bytes/second (0 on
	// the diagonal).
	BW [][]float64
	// AvgGiB is the mean off-diagonal bandwidth in GiB/s — the number the
	// paper quotes (2.26 / 0.84 / 1.39 for FT, HyperX-minimal, PARX).
	AvgGiB float64
	// MinGiB/MaxGiB bound the heatmap color scale.
	MinGiB, MaxGiB float64
}

// MpiGraph measures the pairwise send bandwidth matrix like LLNL's
// mpiGraph: for each offset k, every rank i streams msgSize bytes to rank
// (i+k) mod n simultaneously, so shared cables show up as dark bands.
// Equivalent to MpiGraphWindow with a window of 1.
func MpiGraph(f fabric.Messenger, ranks []topo.NodeID, msgSize int64) *MpiGraphResult {
	return MpiGraphWindow(f, ranks, msgSize, 1)
}

// MpiGraphWindow keeps `window` consecutive offsets in flight
// concurrently, like the real benchmark's send window — deepening
// congestion on shared cables and pulling the averages toward the paper's
// at-scale numbers.
func MpiGraphWindow(f fabric.Messenger, ranks []topo.NodeID, msgSize int64, window int) *MpiGraphResult {
	n := len(ranks)
	if window < 1 {
		window = 1
	}
	res := &MpiGraphResult{BW: make([][]float64, n)}
	for i := range res.BW {
		res.BW[i] = make([]float64, n)
	}
	for k := 1; k < n; k += window {
		start := f.Engine().Now()
		for w := 0; w < window && k+w < n; w++ {
			for i := 0; i < n; i++ {
				src, dst := i, (i+k+w)%n
				f.Send(ranks[src], ranks[dst], msgSize, func(at sim.Time) {
					res.BW[src][dst] = float64(msgSize) / float64(at-start)
				})
			}
		}
		f.Engine().Run()
	}
	var sum float64
	cnt := 0
	res.MinGiB = -1
	for i := range res.BW {
		for j := range res.BW[i] {
			if i == j {
				continue
			}
			g := GiB(res.BW[i][j])
			sum += g
			cnt++
			if res.MinGiB < 0 || g < res.MinGiB {
				res.MinGiB = g
			}
			if g > res.MaxGiB {
				res.MaxGiB = g
			}
		}
	}
	if cnt > 0 {
		res.AvgGiB = sum / float64(cnt)
	}
	return res
}

// EBBResult is Netgauge's effective bisection bandwidth measurement.
type EBBResult struct {
	// Samples holds the per-bisection mean pair bandwidth (bytes/s).
	Samples []float64
	// MeanGiB/MinGiB/MaxGiB summarize across samples (per-pair GiB/s,
	// matching Fig. 5c's y-axis).
	MeanGiB, MinGiB, MaxGiB float64
}

// EffectiveBisectionBandwidth runs Netgauge's eBB (Sec. 4.1): samples
// random bisections of the allocation; in each, every pair exchanges
// msgSize bytes in both directions simultaneously and the per-pair
// bandwidth is averaged. The paper uses 1000 samples of 1 MiB.
func EffectiveBisectionBandwidth(f fabric.Messenger, ranks []topo.NodeID, samples int, msgSize int64, seed uint64) (*EBBResult, error) {
	n := len(ranks)
	if n < 2 {
		return nil, fmt.Errorf("workloads: eBB needs >= 2 nodes")
	}
	rng := sim.NewRand(seed)
	res := &EBBResult{}
	pairs := n / 2
	for s := 0; s < samples; s++ {
		perm := rng.Perm(n)
		start := f.Engine().Now()
		pairBW := make([]float64, pairs)
		for p := 0; p < pairs; p++ {
			a, b := ranks[perm[2*p]], ranks[perm[2*p+1]]
			p := p
			var tA, tB sim.Time = -1, -1
			record := func() {
				if tA >= 0 && tB >= 0 {
					slow := tA
					if tB > slow {
						slow = tB
					}
					pairBW[p] = float64(msgSize) / float64(slow-start)
				}
			}
			f.Send(a, b, msgSize, func(at sim.Time) { tA = at; record() })
			f.Send(b, a, msgSize, func(at sim.Time) { tB = at; record() })
		}
		f.Engine().Run()
		var mean float64
		for _, bw := range pairBW {
			mean += bw
		}
		mean /= float64(pairs)
		res.Samples = append(res.Samples, mean)
	}
	res.MinGiB = -1
	for _, s := range res.Samples {
		g := GiB(s)
		res.MeanGiB += g
		if res.MinGiB < 0 || g < res.MinGiB {
			res.MinGiB = g
		}
		if g > res.MaxGiB {
			res.MaxGiB = g
		}
	}
	res.MeanGiB /= float64(len(res.Samples))
	return res, nil
}
