package workloads

import (
	"math"

	"github.com/hpcsim/t2hx/internal/mpi"
	"github.com/hpcsim/t2hx/internal/sim"
)

// The skeletons below reproduce each proxy application's communication
// pattern (Table 2) with the paper's inputs (Sec. 4.2/4.3). Compute phases
// are calibrated to Westmere-class nodes so the communication fraction
// lands near the ~20% the paper cites for proxy apps (Sec. 5.2), which is
// what makes topology effects visible but not dominant.

const (
	// doubleBytes is sizeof(double).
	doubleBytes = 8
)

// BuildAMG models hypre's AMG solver, problem 1: a 27-point stencil on a
// 256^3 cube per process, weak-scaled on a 3-D process grid. The V-cycle
// touches progressively coarser levels (halo sizes /4, /16, /64) and ends
// each iteration with dot-product allreduces.
func BuildAMG(n int, o BuildOpts) *Instance {
	b := mpi.NewBuilder(n)
	dims := Factor(n, 3)
	face := int64(256 * 256 * doubleBytes) // 512 KiB per face
	iters := o.iters(25)
	for it := 0; it < iters; it++ {
		// Fine level: 27-pt stencil needs faces + (smaller) edge traffic.
		Halo(b, dims, face)
		Halo(b, dims, face/32) // edge/corner aggregate
		// Coarser V-cycle levels.
		for lvl := 1; lvl <= 3; lvl++ {
			Halo(b, dims, face>>(2*lvl))
		}
		// Smoother + restriction/prolongation arithmetic: ~1.1 s/node.
		b.Compute(o.compute(1.1 * sim.Second))
		// Convergence dot products.
		for k := 0; k < 3; k++ {
			b.Allreduce(doubleBytes)
		}
	}
	return o.finish(&Instance{Progs: b.Progs})
}

// BuildCoMD models the ExMatEx molecular-dynamics proxy: 64^3 atoms per
// process, 6-direction position/force halo each timestep, a global energy
// reduction every 10 steps.
func BuildCoMD(n int, o BuildOpts) *Instance {
	b := mpi.NewBuilder(n)
	dims := Factor(n, 3)
	// Boundary atoms: ~64^2 cells x ~20 atoms x 32 B/atom ~ 200 KiB.
	face := int64(200 * 1024)
	steps := o.iters(40)
	for s := 0; s < steps; s++ {
		Halo(b, dims, face)
		b.Compute(o.compute(0.8 * sim.Second)) // force computation
		if s%10 == 9 {
			b.Allreduce(3 * doubleBytes) // energies
			b.Barrier()
		}
	}
	b.Bcast(0, 1024)
	return o.finish(&Instance{Progs: b.Progs})
}

// BuildMiniFE models the implicit finite-elements CG solve: grid
// 100^3 per process (nx = 100 * cbrt(n) weak scaling), 6-face halo and two
// dot products per iteration.
func BuildMiniFE(n int, o BuildOpts) *Instance {
	b := mpi.NewBuilder(n)
	dims := Factor(n, 3)
	face := int64(100 * 100 * doubleBytes) // ~80 KiB
	// Setup: exchange of external row info.
	b.Allgather(256)
	iters := o.iters(60)
	for it := 0; it < iters; it++ {
		Halo(b, dims, face)
		b.Compute(o.compute(0.33 * sim.Second)) // SpMV + axpys
		b.Allreduce(doubleBytes)                // dot
		b.Allreduce(doubleBytes)                // norm
	}
	return o.finish(&Instance{Progs: b.Progs})
}

// BuildSWFFT models HACC's pencil-decomposed 3-D FFT: each repetition
// performs row and column all-to-alls over a 2-D process grid (the
// distributed transposes) around local 1-D FFT compute.
func BuildSWFFT(n int, o BuildOpts) *Instance {
	b := mpi.NewBuilder(n)
	rowGroups, colGroups := grid2Groups(n)
	rows, cols := len(rowGroups), len(colGroups)
	local := int64(16 << 20) // 16 MiB of grid data per rank
	reps := o.iters(8)       // paper runs 16; halved with doubled compute weight
	for rep := 0; rep < reps; rep++ {
		// Forward: transpose across rows, FFT, transpose across columns.
		for _, g := range rowGroups {
			b.Group(g...).Alltoall(local / int64(cols))
		}
		b.Compute(o.compute(0.4 * sim.Second))
		for _, g := range colGroups {
			b.Group(g...).Alltoall(local / int64(rows))
		}
		b.Compute(o.compute(0.4 * sim.Second))
		// Backward transform mirrors the forward.
		for _, g := range colGroups {
			b.Group(g...).Alltoall(local / int64(rows))
		}
		b.Compute(o.compute(0.4 * sim.Second))
		for _, g := range rowGroups {
			b.Group(g...).Alltoall(local / int64(cols))
		}
		b.Allreduce(doubleBytes) // checksum
	}
	return o.finish(&Instance{Progs: b.Progs})
}

// grid2Groups factors n into a 2-D process grid and returns its row and
// column sub-communicators.
func grid2Groups(n int) (rows, cols [][]mpi.Rank) {
	dims := Factor(n, 2)
	nr, nc := dims[0], dims[1]
	rows = make([][]mpi.Rank, nr)
	for r := 0; r < nr; r++ {
		for c := 0; c < nc; c++ {
			rows[r] = append(rows[r], mpi.Rank(r*nc+c))
		}
	}
	cols = make([][]mpi.Rank, nc)
	for c := 0; c < nc; c++ {
		for r := 0; r < nr; r++ {
			cols[c] = append(cols[c], mpi.Rank(r*nc+c))
		}
	}
	return rows, cols
}

// BuildFFVC models the finite-volume thermo-fluid solver: 128^3 cuboid per
// process; the paper shrinks the input to 64^3 beyond 64 nodes to fit the
// walltime limit ("weak*", Sec. 5.2) — so do we.
func BuildFFVC(n int, o BuildOpts) *Instance {
	b := mpi.NewBuilder(n)
	dims := Factor(n, 3)
	edge := 128
	if n > 64 {
		edge = 64
	}
	face := int64(edge * edge * doubleBytes)
	computePerIter := sim.Duration(float64(edge*edge*edge) / (128 * 128 * 128) * 0.5 * float64(sim.Second))
	iters := o.iters(50)
	for it := 0; it < iters; it++ {
		Halo(b, dims, face)
		b.Compute(o.compute(computePerIter))
		b.Allreduce(doubleBytes) // divergence norm
		b.Allreduce(doubleBytes) // pressure residual
		if it%10 == 9 {
			b.Gather(0, 1024) // monitoring output
		}
	}
	return o.finish(&Instance{Progs: b.Progs})
}

// BuildMVMC models the variational Monte Carlo mini-app (job_middle):
// sample blocks of heavy local compute followed by parameter allreduces,
// a scatter of updated parameters and a ring exchange of walkers.
func BuildMVMC(n int, o BuildOpts) *Instance {
	b := mpi.NewBuilder(n)
	blocks := o.iters(15)
	param := int64(768 * 1024)
	for blk := 0; blk < blocks; blk++ {
		b.Compute(o.compute(1.2 * sim.Second)) // Pfaffian updates
		b.Allreduce(param)                     // <O>, <OO> averages
		b.Scatter(0, 8*1024)                   // updated variational parameters
		// Walker exchange around a ring.
		tag := b.NextTag()
		for r := 0; r < n; r++ {
			b.Progs[r].Sendrecv(mpi.Rank((r+1)%n), 64*1024, tag, mpi.Rank((r-1+n)%n), tag)
		}
		b.Bcast(0, 8*1024)
	}
	return o.finish(&Instance{Progs: b.Progs})
}

// BuildNTChem models the MP2 energy solver on the taxol input — the one
// strong-scaling benchmark (Table 2): fixed total work divided across
// ranks, with per-iteration integral allreduces that grow relatively more
// expensive at scale.
func BuildNTChem(n int, o BuildOpts) *Instance {
	b := mpi.NewBuilder(n)
	iters := o.iters(12)
	totalWork := 4000.0 * o.ComputeScale * o.IterScale // node-seconds, whole solve
	perIter := sim.Duration(totalWork / float64(iters) / float64(n) * float64(sim.Second))
	for it := 0; it < iters; it++ {
		b.Bcast(0, 512*1024) // task batch
		b.Compute(perIter)
		// Pipeline partial integrals to the neighbor while reducing.
		tag := b.NextTag()
		for r := 0; r < n; r++ {
			b.Progs[r].Sendrecv(mpi.Rank((r+1)%n), 256*1024, tag, mpi.Rank((r-1+n)%n), tag)
		}
		b.Allreduce(2 << 20) // MO integral block
		b.Barrier()
	}
	return o.finish(&Instance{Progs: b.Progs})
}

// BuildMILC models the SU(3) lattice QCD CG solver: 4-D halo exchanges (8
// directions) with tiny global reductions every iteration — the
// communication-intensive workload the paper saw struggle under random
// placement (Sec. 5.3).
func BuildMILC(n int, o BuildOpts) *Instance {
	b := mpi.NewBuilder(n)
	dims := Factor(n, 4)
	// benchmark_n8-ish local lattice: surface ~ 144 KiB per direction.
	face := int64(144 * 1024)
	iters := o.iters(60)
	for it := 0; it < iters; it++ {
		Halo(b, dims, face)
		b.Compute(o.compute(0.45 * sim.Second))
		b.Allreduce(2 * doubleBytes) // CG alpha/beta
		if it%5 == 4 {
			b.Allreduce(16 * doubleBytes)
		}
	}
	b.Barrier()
	b.Bcast(0, 4096)
	return o.finish(&Instance{Progs: b.Progs})
}

// BuildQbox models qb@ll's plane-wave DFT: a 2-D process grid with heavy
// row broadcasts (wavefunctions), column allreduces (charge density) and
// row all-to-alls (transposes); the paper shrinks the 672-node input from
// 32 to 16 gold atoms ("weak*").
func BuildQbox(n int, o BuildOpts) *Instance {
	b := mpi.NewBuilder(n)
	rowGroups, colGroups := grid2Groups(n)
	cols := len(colGroups)
	scale := 1.0
	if n >= 672 {
		scale = 0.5 // 16 instead of 32 gold atoms
	}
	wf := int64(4 * 1024 * 1024 * scale)  // wavefunction slabs
	rho := int64(2 * 1024 * 1024 * scale) // density
	scf := o.iters(5)
	for it := 0; it < scf; it++ {
		for _, g := range rowGroups {
			grp := b.Group(g...)
			grp.Bcast(0, wf)
			grp.Alltoall(wf / int64(cols))
		}
		b.Compute(o.compute(sim.Duration(8 * scale * float64(sim.Second))))
		for _, g := range colGroups {
			b.Group(g...).Allreduce(rho)
		}
		b.Allreduce(doubleBytes) // total energy
	}
	return o.finish(&Instance{Progs: b.Progs})
}

// BuildHPL models High Performance Linpack ("weak*": ~1 GiB of matrix per
// process, shrunk to 0.25 GiB from 224 nodes on, Sec. 5.2): a right-looking
// LU with panel broadcasts along process-grid rows and pivot exchanges
// along columns. The reported metric is the modelled 2/3 N^3 flops over
// the measured makespan.
func BuildHPL(n int, o BuildOpts) *Instance {
	b := mpi.NewBuilder(n)
	memPerProc := 1 << 30
	if n >= 224 {
		memPerProc = 256 << 20
	}
	N := int64(math.Sqrt(float64(memPerProc) * float64(n) / doubleBytes))
	rowGroups, colGroups := grid2Groups(n)
	P := len(rowGroups)
	panels := o.iters(100)
	nb := N / int64(panels)
	totalFlops := 2.0/3.0*float64(N)*float64(N)*float64(N) + 2*float64(N)*float64(N)
	// Sustained per-node DGEMM rate on 2x X5670: ~100 Gflop/s.
	perPanelCompute := o.compute(sim.Duration(totalFlops / float64(panels) / (100e9 * float64(n)) * float64(sim.Second)))
	for p := 0; p < panels; p++ {
		// Shrinking trailing matrix: panel height ~ N - p*nb.
		frac := float64(panels-p) / float64(panels)
		panelBytes := int64(float64(N) / float64(P) * float64(nb) * doubleBytes * frac)
		if panelBytes < 1024 {
			panelBytes = 1024
		}
		for _, g := range rowGroups {
			b.Group(g...).Bcast(p%len(g), panelBytes)
		}
		// Pivot row swaps down the column.
		for _, g := range colGroups {
			tag := b.NextTag()
			m := len(g)
			if m < 2 {
				continue
			}
			for v := 0; v < m; v++ {
				b.Progs[g[v]].Sendrecv(g[(v+1)%m], 64*1024, tag, g[(v-1+m)%m], tag)
			}
		}
		b.Compute(sim.Duration(float64(perPanelCompute) * frac * frac))
	}
	return o.finish(&Instance{Progs: b.Progs, Flops: totalFlops})
}

// BuildHPCG models the conjugate-gradient benchmark: 192^3 local domain,
// 6-face halo plus multigrid coarse levels and two dot products per
// iteration. Gflop/s is the modelled CG arithmetic over the makespan —
// memory-bound, a few percent of peak, as on the real machine.
func BuildHPCG(n int, o BuildOpts) *Instance {
	b := mpi.NewBuilder(n)
	dims := Factor(n, 3)
	face := int64(192 * 192 * doubleBytes)
	iters := o.iters(50)
	// ~27-pt SpMV + MG smoothers: ~3.3e9 flops per rank per iteration.
	flopsPerIter := 3.3e9 * float64(n) * o.ComputeScale
	for it := 0; it < iters; it++ {
		Halo(b, dims, face)
		for lvl := 1; lvl <= 3; lvl++ {
			Halo(b, dims, face>>(2*lvl)) // MG coarse levels
		}
		b.Compute(o.compute(0.66 * sim.Second)) // ~5 Gflop/s/node, memory-bound
		b.Allreduce(doubleBytes)
		b.Allreduce(doubleBytes)
	}
	return o.finish(&Instance{Progs: b.Progs, Flops: flopsPerIter * float64(iters)})
}

// BuildGraph500 models the level-synchronized distributed BFS: per level an
// all-to-all frontier exchange plus a termination allreduce, for 16 BFS
// roots on a ~1 GiB-per-process Kronecker graph. GTEPS is edges traversed
// over the makespan (median-of-16 in the paper; the makespan average is
// equivalent for our deterministic runs).
func BuildGraph500(n int, o BuildOpts) *Instance {
	b := mpi.NewBuilder(n)
	edgesPerRank := float64(1<<30) / 16 // 16 bytes per edge: 2^26 edges
	nbfs := o.iters(16)
	const levels = 8
	for bfs := 0; bfs < nbfs; bfs++ {
		for lvl := 0; lvl < levels; lvl++ {
			// Frontier volume peaks mid-BFS; weight by a bell over levels.
			w := frontierWeight(lvl, levels)
			perPair := int64(edgesPerRank * doubleBytes * w / float64(n))
			if perPair < 64 {
				perPair = 64
			}
			b.Alltoall(perPair)
			b.Compute(o.compute(sim.Duration(edgesPerRank * w / 2.5e8 * float64(sim.Second))))
			b.Allreduce(doubleBytes) // frontier-empty check
		}
		b.Allreduce(2 * doubleBytes) // validation counters
	}
	return o.finish(&Instance{Progs: b.Progs, Edges: edgesPerRank * float64(n) * float64(nbfs)})
}

// frontierWeight spreads BFS traffic over levels with the typical
// small-large-small frontier profile; weights sum to ~1.
func frontierWeight(lvl, levels int) float64 {
	x := (float64(lvl) + 0.5) / float64(levels)
	w := math.Sin(math.Pi * x)
	return w * w / (float64(levels) / 2)
}
