package workloads

import (
	"testing"
	"testing/quick"

	"github.com/hpcsim/t2hx/internal/fabric"
	"github.com/hpcsim/t2hx/internal/mpi"
	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

func TestFactorProperties(t *testing.T) {
	f := func(nRaw, dRaw uint8) bool {
		n := 1 + int(nRaw)%672
		d := 2 + int(dRaw)%3 // 2..4
		dims := Factor(n, d)
		if len(dims) != d {
			return false
		}
		prod := 1
		for _, x := range dims {
			if x < 1 {
				return false
			}
			prod *= x
		}
		return prod == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFactorBalance(t *testing.T) {
	dims := Factor(64, 3)
	if dims[0] != 4 || dims[1] != 4 || dims[2] != 4 {
		t.Errorf("Factor(64,3) = %v, want [4 4 4]", dims)
	}
	dims = Factor(672, 3) // 672 = 2^5*3*7 -> e.g. 12x8x7 or similar balance
	if dims[0] > 14 {
		t.Errorf("Factor(672,3) = %v too unbalanced", dims)
	}
}

func TestGridCoordRoundTrip(t *testing.T) {
	dims := []int{3, 4, 5}
	for r := 0; r < 60; r++ {
		c := gridCoord(r, dims)
		if gridRank(c, dims) != r {
			t.Fatalf("round trip failed for rank %d", r)
		}
	}
}

func TestLadders(t *testing.T) {
	a := App{PowerOfTwo: false}
	got := a.Ladder(672)
	want := []int{7, 14, 28, 56, 112, 224, 448, 672}
	if len(got) != len(want) {
		t.Fatalf("ladder = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ladder = %v, want %v", got, want)
		}
	}
	p := App{PowerOfTwo: true}
	got = p.Ladder(672)
	want = []int{4, 8, 16, 32, 64, 128, 256, 512}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pow2 ladder = %v, want %v", got, want)
		}
	}
}

func TestTable2Registry(t *testing.T) {
	reg := Registry()
	if len(reg) != 12 {
		t.Fatalf("registry has %d entries, want 12 (9 apps + 3 x500)", len(reg))
	}
	wantAbbrev := []string{"AMG", "CoMD", "MiFE", "FFT", "FFVC", "mVMC", "NTCh", "MILC", "Qbox", "HPL", "HPCG", "GraD"}
	for i, a := range reg {
		if a.Abbrev != wantAbbrev[i] {
			t.Errorf("registry[%d] = %s, want %s", i, a.Abbrev, wantAbbrev[i])
		}
		if a.Build == nil {
			t.Errorf("%s has no builder", a.Abbrev)
		}
		if len(a.MPIFuncs) == 0 {
			t.Errorf("%s has no MPI function list (Table 2)", a.Abbrev)
		}
		if a.Scaling != "weak" && a.Scaling != "strong" && a.Scaling != "weak*" {
			t.Errorf("%s scaling = %q", a.Abbrev, a.Scaling)
		}
	}
	// Table 2: NTChem is the only strong-scaling app.
	for _, a := range reg {
		if (a.Abbrev == "NTCh") != (a.Scaling == "strong") {
			t.Errorf("%s scaling = %s, mismatch with Table 2", a.Abbrev, a.Scaling)
		}
	}
	if _, err := FindApp("AMG"); err != nil {
		t.Error(err)
	}
	if _, err := FindApp("nope"); err == nil {
		t.Error("FindApp accepted unknown abbrev")
	}
}

// smallFabric: a 4x2 HyperX with 2 terminals per switch (16 nodes).
func smallFabric(t *testing.T) (*topo.HyperX, *fabric.Fabric) {
	t.Helper()
	hx := topo.NewHyperX(topo.HyperXConfig{
		S: []int{4, 2}, T: 2, Bandwidth: topo.QDRBandwidth, Latency: topo.QDRLinkLatency,
	})
	tb, err := route.DFSSSP(hx.Graph, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	return hx, fabric.New(sim.NewEngine(), tb, fabric.DefaultParams(), 1)
}

// Every registered app must build and run to completion on a small
// allocation without deadlock, and produce a positive metric.
func TestAllAppsRunToCompletion(t *testing.T) {
	for _, a := range Registry() {
		a := a
		t.Run(a.Abbrev, func(t *testing.T) {
			hx, f := smallFabric(t)
			n := 8
			inst := a.Instance(n)
			if len(inst.Progs) != n {
				t.Fatalf("built %d programs, want %d", len(inst.Progs), n)
			}
			res, err := mpi.Run(f, a.Abbrev, hx.Terminals()[:n], inst.Progs, mpi.Options{})
			if err != nil {
				t.Fatal(err)
			}
			score := inst.Score(res.Elapsed)
			if score <= 0 {
				t.Errorf("score = %v", score)
			}
			t.Logf("%s n=%d: elapsed=%.2fs metric=%.3f %s", a.Abbrev, n, float64(res.Elapsed), score, a.Metric)
		})
	}
}

func TestAppsRunOnOddNodeCounts(t *testing.T) {
	// The 7,14,... ladder exercises non-power-of-two communicators.
	for _, abbrev := range []string{"AMG", "CoMD", "MiFE", "NTCh", "Qbox", "HPL", "HPCG"} {
		a, err := FindApp(abbrev)
		if err != nil {
			t.Fatal(err)
		}
		hx, f := smallFabric(t)
		inst := a.Instance(7)
		if _, err := mpi.Run(f, a.Abbrev, hx.Terminals()[:7], inst.Progs, mpi.Options{}); err != nil {
			t.Fatalf("%s on 7 nodes: %v", abbrev, err)
		}
	}
}

func TestWeakScalingKeepsRuntimeFlat(t *testing.T) {
	// A weak-scaled app should take roughly the same time on 4 and 8
	// nodes (modulo communication growth).
	a, _ := FindApp("CoMD")
	var elapsed [2]sim.Duration
	for i, n := range []int{4, 8} {
		hx, f := smallFabric(t)
		inst := a.Instance(n)
		res, err := mpi.Run(f, "comd", hx.Terminals()[:n], inst.Progs, mpi.Options{})
		if err != nil {
			t.Fatal(err)
		}
		elapsed[i] = res.Elapsed
	}
	ratio := float64(elapsed[1]) / float64(elapsed[0])
	if ratio > 1.5 || ratio < 0.8 {
		t.Errorf("weak scaling 4->8 runtime ratio = %.2f, want ~1", ratio)
	}
}

func TestStrongScalingShrinksRuntime(t *testing.T) {
	a, _ := FindApp("NTCh")
	var elapsed [2]sim.Duration
	for i, n := range []int{4, 8} {
		hx, f := smallFabric(t)
		inst := a.Instance(n)
		res, err := mpi.Run(f, "ntch", hx.Terminals()[:n], inst.Progs, mpi.Options{})
		if err != nil {
			t.Fatal(err)
		}
		elapsed[i] = res.Elapsed
	}
	if elapsed[1] >= elapsed[0] {
		t.Errorf("strong scaling did not speed up: %v -> %v", elapsed[0], elapsed[1])
	}
}

func TestIMBAllOps(t *testing.T) {
	for _, op := range IMBOps() {
		hx, f := smallFabric(t)
		inst, err := BuildIMB(op, 8, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mpi.Run(f, op, hx.Terminals()[:8], inst.Progs, mpi.Options{}); err != nil {
			t.Fatalf("%s: %v", op, err)
		}
	}
	if _, err := BuildIMB("bogus", 4, 1); err == nil {
		t.Error("unknown IMB op accepted")
	}
}

func TestIMBLatencyGrowsWithSize(t *testing.T) {
	sizes := []int64{1, 4096, 1 << 20}
	var prev float64
	for _, s := range sizes {
		hx, f := smallFabric(t)
		inst, _ := BuildIMB("alltoall", 8, s)
		res, err := mpi.Run(f, "a2a", hx.Terminals()[:8], inst.Progs, mpi.Options{})
		if err != nil {
			t.Fatal(err)
		}
		lat := inst.Score(res.Elapsed)
		if lat <= prev {
			t.Errorf("alltoall latency not monotone: size %d -> %v us", s, lat)
		}
		prev = lat
	}
}

func TestMultiPingPongAndEmDL(t *testing.T) {
	hx, f := smallFabric(t)
	inst := BuildMultiPingPong(8, 512, 3)
	if _, err := mpi.Run(f, "mupp", hx.Terminals()[:8], inst.Progs, mpi.Options{}); err != nil {
		t.Fatal(err)
	}
	hx, f = smallFabric(t)
	inst = BuildEmDL(8, 2)
	res, err := mpi.Run(f, "emdl", hx.Terminals()[:8], inst.Progs, mpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Two 0.1s compute phases put a floor under the runtime.
	if res.Elapsed < 0.2 {
		t.Errorf("EmDL elapsed = %v, want >= 0.2s", res.Elapsed)
	}
}

func TestBaiduLadder(t *testing.T) {
	ls := BaiduArrayLengths()
	if ls[0] != 0 || ls[len(ls)-1] != 536870912 {
		t.Errorf("Baidu ladder endpoints wrong: %v", ls)
	}
	hx, f := smallFabric(t)
	inst := BuildBaiduAllreduce(8, 1024)
	if _, err := mpi.Run(f, "baidu", hx.Terminals()[:8], inst.Progs, mpi.Options{}); err != nil {
		t.Fatal(err)
	}
	// Zero length must still work (synchronization only).
	hx, f = smallFabric(t)
	inst = BuildBaiduAllreduce(8, 0)
	if _, err := mpi.Run(f, "baidu0", hx.Terminals()[:8], inst.Progs, mpi.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestMpiGraphDetectsSharedCable(t *testing.T) {
	// 2 switches x 4 terminals joined by one cable: cross-switch pairs
	// must observe far less bandwidth than the line rate.
	hx := topo.NewHyperX(topo.HyperXConfig{
		S: []int{2, 2}, T: 4, Bandwidth: 1e9, Latency: 100 * sim.Nanosecond,
	})
	tb, err := route.DFSSSP(hx.Graph, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	f := fabric.New(sim.NewEngine(), tb, fabric.DefaultParams(), 1)
	ranks := hx.Terminals()
	res := MpiGraph(f, ranks, 1<<20)
	if res.AvgGiB <= 0 {
		t.Fatal("no bandwidth measured")
	}
	if res.MinGiB >= res.MaxGiB {
		t.Error("mpiGraph saw uniform bandwidth despite shared cables")
	}
	for i := range res.BW {
		if res.BW[i][i] != 0 {
			t.Error("diagonal must be zero")
		}
	}
}

func TestEBBBasics(t *testing.T) {
	hx, f := smallFabric(t)
	res, err := EffectiveBisectionBandwidth(f, hx.Terminals()[:8], 20, 1<<20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 20 {
		t.Fatalf("samples = %d, want 20", len(res.Samples))
	}
	if res.MeanGiB <= 0 || res.MeanGiB > GiB(topo.QDRBandwidth) {
		t.Errorf("eBB mean = %.2f GiB/s out of physical range", res.MeanGiB)
	}
	if res.MinGiB > res.MeanGiB || res.MaxGiB < res.MeanGiB {
		t.Error("eBB min/mean/max inconsistent")
	}
	if _, err := EffectiveBisectionBandwidth(f, hx.Terminals()[:1], 1, 1, 1); err == nil {
		t.Error("eBB accepted single node")
	}
}

func TestFrontierWeightsNormalized(t *testing.T) {
	var sum float64
	for l := 0; l < 8; l++ {
		w := frontierWeight(l, 8)
		if w < 0 {
			t.Fatal("negative frontier weight")
		}
		sum += w
	}
	if sum < 0.9 || sum > 1.1 {
		t.Errorf("frontier weights sum = %v, want ~1", sum)
	}
}
