package workloads

import (
	"fmt"

	"github.com/hpcsim/t2hx/internal/mpi"
	"github.com/hpcsim/t2hx/internal/sim"
)

// IMB message-size ladder of Fig. 4: powers of two from 1 B to 4 MiB.
func IMBMessageSizes() []int64 {
	var out []int64
	for s := int64(1); s <= 4<<20; s *= 2 {
		out = append(out, s)
	}
	return out
}

// IMBOps lists the single-mode MPI-1 collectives the paper measures
// (Fig. 4/5b) plus the two capacity-run extras of Sec. 4.4.2.
func IMBOps() []string {
	return []string{"bcast", "gather", "scatter", "reduce", "allreduce", "alltoall", "barrier"}
}

// imbIterations balances measurement amortization against simulation cost.
const imbIterations = 4

// BuildIMB constructs the Intel MPI Benchmarks kernel for one collective
// and message size: a warm-up round plus measured iterations. The
// Instance's Ops divides elapsed time into a per-operation latency.
func BuildIMB(op string, n int, size int64) (*Instance, error) {
	b := mpi.NewBuilder(n)
	iters := imbIterations
	one := func() error {
		switch op {
		case "bcast":
			b.Bcast(0, size)
		case "gather":
			b.Gather(0, size)
		case "scatter":
			b.Scatter(0, size)
		case "reduce":
			b.Reduce(0, size)
		case "allreduce":
			b.Allreduce(size)
		case "alltoall":
			b.Alltoall(size)
		case "barrier":
			b.Barrier()
		default:
			return fmt.Errorf("workloads: unknown IMB op %q", op)
		}
		return nil
	}
	for i := 0; i < iters; i++ {
		if err := one(); err != nil {
			return nil, err
		}
	}
	return &Instance{Progs: b.Progs, Ops: iters}, nil
}

// BuildMultiPingPong is IMB's Multi-PingPong (the capacity-run MuPP):
// ranks pair up (i, i+n/2) and ping-pong size-byte messages concurrently —
// the probe the paper used to find the 512 B PARX threshold (Sec. 3.2.4).
func BuildMultiPingPong(n int, size int64, iters int) *Instance {
	b := mpi.NewBuilder(n)
	half := n / 2
	for it := 0; it < iters; it++ {
		tag := b.NextTag()
		for i := 0; i < half; i++ {
			lo, hi := mpi.Rank(i), mpi.Rank(i+half)
			b.Progs[lo].Send(hi, size, tag)
			b.Progs[hi].Recv(lo, tag)
			b.Progs[hi].Send(lo, size, tag)
			b.Progs[lo].Recv(hi, tag)
		}
	}
	return &Instance{Progs: b.Progs, Ops: iters}
}

// BuildIncast is the congestion-diagnosis microbenchmark behind the
// paper's counter readouts: ranks 1..n-1 all stream size bytes to rank 0
// concurrently. With n = 8 on a fully populated plane this is the
// 7-to-1 incast of one TSUBAME2 switch's worth of nodes converging on a
// single HCA — the pattern whose PortXmitWait signature distinguishes hot
// Fat-Tree uplinks from spread HyperX load.
func BuildIncast(n int, size int64) (*Instance, error) {
	if n < 2 {
		return nil, fmt.Errorf("workloads: incast needs >= 2 ranks, got %d", n)
	}
	b := mpi.NewBuilder(n)
	iters := imbIterations
	for it := 0; it < iters; it++ {
		tag := b.NextTag()
		var handles []int32
		for i := 1; i < n; i++ {
			handles = append(handles, b.Progs[0].Irecv(mpi.Rank(i), tag))
		}
		for i := 1; i < n; i++ {
			b.Progs[i].Send(mpi.Rank(0), size, tag)
		}
		b.Progs[0].Wait(handles...)
	}
	return &Instance{Progs: b.Progs, Ops: iters}, nil
}

// BuildGroupedIncast runs concurrent shifted incasts: ranks are split into
// groups of `group`, and group g's non-root members all stream size bytes to
// the root of group (g+1) mod G. With group = 8 this is the paper's
// seven-nodes-per-switch pattern at fabric scale: every switch's worth of
// HCAs converges on a remote receiver, so a fat-tree funnels several
// incasts through shared downward links (hot uplink/downlink counters)
// while a HyperX spreads them across its direct dimension links.
func BuildGroupedIncast(n, group int, size int64) (*Instance, error) {
	if group < 2 || group > n {
		return nil, fmt.Errorf("workloads: incast group must be in [2, n], got %d with n = %d", group, n)
	}
	if n%group != 0 {
		return nil, fmt.Errorf("workloads: incast needs n %% group == 0, got n = %d group = %d", n, group)
	}
	b := mpi.NewBuilder(n)
	groups := n / group
	for it := 0; it < imbIterations; it++ {
		tag := b.NextTag()
		for g := 0; g < groups; g++ {
			root := mpi.Rank(((g + 1) % groups) * group)
			var handles []int32
			for i := 1; i < group; i++ {
				handles = append(handles, b.Progs[root].Irecv(mpi.Rank(g*group+i), tag))
			}
			for i := 1; i < group; i++ {
				b.Progs[g*group+i].Send(root, size, tag)
			}
			b.Progs[root].Wait(handles...)
		}
	}
	return &Instance{Progs: b.Progs, Ops: imbIterations}, nil
}

// BuildEmDL is the paper's modified IMB Allreduce mimicking deep-learning
// training (footnote 12): alternating a large allreduce with a 0.1 s
// compute phase.
func BuildEmDL(n int, iters int) *Instance {
	b := mpi.NewBuilder(n)
	const gradients = 32 << 20
	for it := 0; it < iters; it++ {
		b.Compute(0.1 * sim.Second)
		b.RingAllreduce(gradients)
	}
	return &Instance{Progs: b.Progs, Ops: iters}
}

// BaiduArrayLengths is Fig. 5a's ladder: 4-byte-float array lengths 0 to
// 2^29 (0 .. 2 GiB of payload).
func BaiduArrayLengths() []int64 {
	out := []int64{0, 32, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 8388608, 67108864, 536870912}
	return out
}

// BuildBaiduAllreduce is Baidu's DeepBench ring allreduce (CPU version):
// one ring allreduce of 4*arrayLen bytes; the paper reports average
// latency (Table 2: t_avg).
func BuildBaiduAllreduce(n int, arrayLen int64) *Instance {
	b := mpi.NewBuilder(n)
	size := 4 * arrayLen
	if size == 0 {
		// Zero-length still synchronizes.
		b.Barrier()
	} else {
		b.RingAllreduce(size)
	}
	return &Instance{Progs: b.Progs, Ops: 1}
}
