package faults

import (
	"errors"
	"reflect"
	"testing"

	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

func snapshotDown(g *topo.Graph) []bool {
	out := make([]bool, len(g.Links))
	for i, l := range g.Links {
		out[i] = l.Down
	}
	return out
}

func TestPlanLinkFailuresPaperCounts(t *testing.T) {
	cases := []struct {
		name string
		g    *topo.Graph
		n    int
	}{
		{"hyperx-15", topo.NewPaperHyperX(false, 1).Graph, topo.PaperHyperXMissingAOCs},
		{"fattree-197", topo.NewPaperFatTree(false, 1).Graph, topo.PaperFatTreeMissingLinks},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := snapshotDown(tc.g)
			sched, err := PlanLinkFailures(tc.g, tc.n, 1*sim.Millisecond, 10*sim.Millisecond, 42)
			if err != nil {
				t.Fatalf("plan failed: %v", err)
			}
			if len(sched) != tc.n {
				t.Fatalf("planned %d failures, want %d", len(sched), tc.n)
			}
			if !reflect.DeepEqual(before, snapshotDown(tc.g)) {
				t.Error("planning modified the graph's Down flags")
			}
			last := sim.Time(0)
			seen := make(map[topo.LinkID]bool)
			for _, ev := range sched {
				if ev.Kind != LinkDown {
					t.Fatalf("unexpected event kind %v", ev.Kind)
				}
				if ev.At < 1*sim.Millisecond || ev.At >= 11*sim.Millisecond {
					t.Errorf("event %v outside window", ev)
				}
				if ev.At < last {
					t.Error("schedule not time-ordered")
				}
				last = ev.At
				if seen[ev.Link] {
					t.Errorf("link %d chosen twice", ev.Link)
				}
				seen[ev.Link] = true
				if l := tc.g.Links[ev.Link]; l.Down {
					t.Errorf("planned failure of already-down link %d", ev.Link)
				}
			}
			// The full set down must keep the switch fabric connected.
			for _, ev := range sched {
				tc.g.Links[ev.Link].Down = true
			}
			if !topo.SwitchFabricConnected(tc.g) {
				t.Error("planned failure set disconnects the switch fabric")
			}
			for _, ev := range sched {
				tc.g.Links[ev.Link].Down = false
			}
		})
	}
}

func TestPlanLinkFailuresDeterministic(t *testing.T) {
	g1 := topo.NewPaperHyperX(false, 1).Graph
	g2 := topo.NewPaperHyperX(false, 1).Graph
	s1, err1 := PlanLinkFailures(g1, 15, 0, sim.Second, 7)
	s2, err2 := PlanLinkFailures(g2, 15, 0, sim.Second, 7)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Error("same seed produced different schedules")
	}
	s3, err := PlanLinkFailures(g1, 15, 0, sim.Second, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(s1, s3) {
		t.Error("different seeds produced identical schedules")
	}
}

func TestPlanLinkFailuresShortfall(t *testing.T) {
	hx := topo.NewHyperX(topo.HyperXConfig{S: []int{2, 2}, T: 1, Bandwidth: 1e9, Latency: 1e-7})
	n := len(hx.LiveSwitchLinks())
	sched, err := PlanLinkFailures(hx.Graph, n, 0, sim.Second, 3)
	if !errors.Is(err, topo.ErrDegradeShortfall) {
		t.Fatalf("err = %v, want ErrDegradeShortfall", err)
	}
	if len(sched) == 0 || len(sched) >= n {
		t.Errorf("partial schedule has %d events, want in (0, %d)", len(sched), n)
	}
	for _, l := range hx.Links {
		if l.Down {
			t.Fatal("planning left links down")
		}
	}
}

func TestMTBFSchedule(t *testing.T) {
	hx := topo.NewHyperX(topo.HyperXConfig{S: []int{4, 4}, T: 1, Bandwidth: 1e9, Latency: 1e-7})
	before := snapshotDown(hx.Graph)
	sched := MTBFSchedule(hx.Graph, 50*sim.Millisecond, 30*sim.Millisecond, 0, sim.Second, 11)
	if !reflect.DeepEqual(before, snapshotDown(hx.Graph)) {
		t.Error("MTBF planning modified the graph")
	}
	if len(sched) == 0 {
		t.Fatal("no events drawn over 20 MTBFs")
	}
	downs, ups := 0, 0
	last := sim.Time(-1)
	openAt := make(map[topo.LinkID]sim.Time)
	for _, ev := range sched {
		if ev.At < last {
			t.Fatal("schedule not sorted")
		}
		last = ev.At
		switch ev.Kind {
		case LinkDown:
			downs++
			openAt[ev.Link] = ev.At
		case LinkUp:
			ups++
			down, ok := openAt[ev.Link]
			if !ok {
				t.Fatalf("repair of link %d that never failed", ev.Link)
			}
			if got := ev.At - down; got < 30*sim.Millisecond-sim.Nanosecond || got > 30*sim.Millisecond+sim.Nanosecond {
				t.Errorf("repair after %.3fms, want 30ms", float64(got)/float64(sim.Millisecond))
			}
			delete(openAt, ev.Link)
		default:
			t.Fatalf("unexpected kind %v", ev.Kind)
		}
	}
	if downs == 0 || ups != downs {
		t.Errorf("downs=%d ups=%d, want equal and nonzero", downs, ups)
	}
	// Permanent failures: no repair events at all.
	perm := MTBFSchedule(hx.Graph, 50*sim.Millisecond, 0, 0, sim.Second, 11)
	for _, ev := range perm {
		if ev.Kind != LinkDown {
			t.Fatalf("permanent-failure schedule contains %v", ev.Kind)
		}
	}
}

func TestSwitchOutage(t *testing.T) {
	s := SwitchOutage(3, 5*sim.Millisecond, 2*sim.Millisecond)
	want := Schedule{
		{At: 5 * sim.Millisecond, Kind: SwitchDown, Switch: 3},
		{At: 7 * sim.Millisecond, Kind: SwitchUp, Switch: 3},
	}
	if !reflect.DeepEqual(s, want) {
		t.Errorf("got %v, want %v", s, want)
	}
	if p := SwitchOutage(3, sim.Millisecond, 0); len(p) != 1 {
		t.Errorf("permanent outage has %d events, want 1", len(p))
	}
}

func TestScheduleSorted(t *testing.T) {
	s := Schedule{
		{At: 3, Kind: LinkDown, Link: 1},
		{At: 1, Kind: LinkDown, Link: 2},
		{At: 3, Kind: LinkUp, Link: 3},
		{At: 2, Kind: LinkDown, Link: 4},
	}
	got := s.Sorted()
	wantOrder := []topo.LinkID{2, 4, 1, 3} // stable: link 1 before link 3 at t=3
	for i, ev := range got {
		if ev.Link != wantOrder[i] {
			t.Fatalf("order %v, want links %v", got, wantOrder)
		}
	}
	if s[0].Link != 1 {
		t.Error("Sorted mutated the receiver")
	}
}
