// Package faults injects runtime link and switch failures into a running
// simulation and models the InfiniBand subnet manager's recovery loop:
// detect the change after a trap/sweep delay, recompute the routing tables
// with the active engine on the degraded graph, revalidate loop- and
// deadlock-freedom, and atomically swap the re-programmed LFTs into the
// fabric. The paper's deployment ran on exactly such degraded fabrics (15
// broken AOCs in the HyperX plane, 197 in the Fat-Tree, Sec. 2.3); this
// package lets those cables break *while* a workload is running instead of
// only at build time.
package faults

import (
	"fmt"
	"sort"

	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// Kind enumerates fault-event types.
type Kind uint8

const (
	// LinkDown fails one link (an AOC getting pulled or going dark).
	LinkDown Kind = iota
	// LinkUp repairs a previously failed link.
	LinkUp
	// SwitchDown fails every link attached to a switch, terminals
	// included — a power or firmware loss of the whole crossbar.
	SwitchDown
	// SwitchUp repairs a previously failed switch.
	SwitchUp
)

func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case SwitchDown:
		return "switch-down"
	default:
		return "switch-up"
	}
}

// Event is one scheduled fabric fault at a simulated time.
type Event struct {
	At   sim.Time
	Kind Kind
	// Link is the target of LinkDown/LinkUp.
	Link topo.LinkID
	// Switch is the target of SwitchDown/SwitchUp.
	Switch topo.NodeID
}

func (e Event) String() string {
	switch e.Kind {
	case LinkDown, LinkUp:
		return fmt.Sprintf("%v@%.6fs link=%d", e.Kind, float64(e.At), e.Link)
	default:
		return fmt.Sprintf("%v@%.6fs switch=%d", e.Kind, float64(e.At), e.Switch)
	}
}

// Schedule is a fault timeline.
type Schedule []Event

// Sorted returns a time-ordered copy (stable for equal times, so
// construction order breaks ties deterministically).
func (s Schedule) Sorted() Schedule {
	out := append(Schedule{}, s...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// PlanLinkFailures picks n switch-to-switch links that can all fail at
// runtime without ever disconnecting the switch fabric (terminal links are
// never chosen), and spreads the failures uniformly at random over
// [start, start+window). The graph is only probed, never left modified.
//
// Because the surviving set is connected with every chosen link down, it
// stays connected under any prefix of the schedule, whatever order the
// failures fire in. A shortfall (connectivity vetoed too many candidates)
// returns the partial schedule plus an error wrapping
// topo.ErrDegradeShortfall.
func PlanLinkFailures(g *topo.Graph, n int, start sim.Time, window sim.Duration, seed uint64) (Schedule, error) {
	rng := sim.NewRand(seed)
	candidates := g.LiveSwitchLinks()
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	var chosen []*topo.Link
	for _, l := range candidates {
		if len(chosen) == n {
			break
		}
		l.Down = true
		if topo.SwitchFabricConnected(g) {
			chosen = append(chosen, l)
		} else {
			l.Down = false
		}
	}
	for _, l := range chosen {
		l.Down = false
	}
	times := make([]float64, len(chosen))
	for i := range times {
		times[i] = rng.Float64()
	}
	sort.Float64s(times)
	sched := make(Schedule, 0, len(chosen))
	for i, l := range chosen {
		sched = append(sched, Event{
			At:   start + sim.Time(times[i])*window,
			Kind: LinkDown,
			Link: l.ID,
		})
	}
	if len(chosen) < n {
		return sched, fmt.Errorf("faults: %w: planned %d of %d requested link failures",
			topo.ErrDegradeShortfall, len(chosen), n)
	}
	return sched, nil
}

// MTBFSchedule draws link failures as a Poisson process with the given mean
// time between failures over [start, end); each failed link is repaired
// after repair (repair <= 0 leaves it down for good). Victims are drawn
// uniformly among switch-to-switch links that are live at that instant
// (accounting for earlier scheduled failures and repairs) and whose loss
// keeps the switch fabric connected. The graph is only probed, never left
// modified.
func MTBFSchedule(g *topo.Graph, mtbf, repair sim.Duration, start, end sim.Time, seed uint64) Schedule {
	if mtbf <= 0 {
		panic("faults: MTBFSchedule needs a positive MTBF")
	}
	rng := sim.NewRand(seed)
	var sched Schedule
	// planned tracks links this planner has down at the current plan time.
	planned := make(map[*topo.Link]sim.Time) // link -> repair time (Infinity if permanent)
	t := start + sim.Time(rng.ExpFloat64())*mtbf
	for t < end {
		// Apply repairs that happen before this failure.
		for l, until := range planned {
			if until <= t {
				l.Down = false
				delete(planned, l)
			}
		}
		candidates := g.LiveSwitchLinks()
		rng.Shuffle(len(candidates), func(i, j int) {
			candidates[i], candidates[j] = candidates[j], candidates[i]
		})
		for _, l := range candidates {
			l.Down = true
			if !topo.SwitchFabricConnected(g) {
				l.Down = false
				continue
			}
			until := sim.Infinity
			if repair > 0 {
				until = t + repair
				sched = append(sched, Event{At: until, Kind: LinkUp, Link: l.ID})
			}
			planned[l] = until
			sched = append(sched, Event{At: t, Kind: LinkDown, Link: l.ID})
			break
		}
		t += sim.Time(rng.ExpFloat64()) * mtbf
	}
	for l := range planned {
		l.Down = false
	}
	return sched.Sorted()
}

// PlaneOutage fails every live switch-to-switch link of a plane at the
// given time — the whole-plane power or SM loss a dual-rail machine like
// TSUBAME2 is built to survive. Unlike PlanLinkFailures there is no
// connectivity veto: the plane's switch fabric is meant to shatter, and
// traffic must fail over to a sibling plane (fabric.MultiFabric with a
// Failover policy). Terminal links stay up. repair > 0 schedules the
// matching LinkUp wave.
func PlaneOutage(g *topo.Graph, at sim.Time, repair sim.Duration) Schedule {
	var sched Schedule
	for _, l := range g.LiveSwitchLinks() {
		sched = append(sched, Event{At: at, Kind: LinkDown, Link: l.ID})
		if repair > 0 {
			sched = append(sched, Event{At: at + repair, Kind: LinkUp, Link: l.ID})
		}
	}
	return sched.Sorted()
}

// SwitchOutage builds the event pair for a whole-switch failure at the
// given time, repaired after repair (repair <= 0 makes it permanent). Note
// that a dead switch strands its attached terminals: messages to them fail
// until the repair, and the SM's rebuilt tables will report them
// unreachable rather than reject the sweep.
func SwitchOutage(sw topo.NodeID, at sim.Time, repair sim.Duration) Schedule {
	s := Schedule{{At: at, Kind: SwitchDown, Switch: sw}}
	if repair > 0 {
		s = append(s, Event{At: at + repair, Kind: SwitchUp, Switch: sw})
	}
	return s
}
