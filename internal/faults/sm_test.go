package faults

import (
	"testing"

	"github.com/hpcsim/t2hx/internal/fabric"
	"github.com/hpcsim/t2hx/internal/mpi"
	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
	"github.com/hpcsim/t2hx/internal/workloads"
)

// testRig is a small HyperX running an Alltoall under DFSSSP.
type testRig struct {
	hx  *topo.HyperX
	f   *fabric.Fabric
	eng *sim.Engine
}

func newRig(t *testing.T) *testRig {
	t.Helper()
	hx := topo.NewHyperX(topo.HyperXConfig{
		S: []int{4, 4}, T: 2,
		Bandwidth: topo.QDRBandwidth, Latency: topo.QDRLinkLatency,
	})
	tb, err := route.DFSSSP(hx.Graph, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	return &testRig{hx: hx, f: fabric.New(eng, tb, fabric.DefaultParams(), 1)}
}

func (r *testRig) rebuild() (*route.Tables, error) { return route.DFSSSP(r.hx.Graph, 0, 8) }

// runAlltoall launches the collective and runs the engine to completion,
// returning the job makespan.
func runAlltoall(t *testing.T, r *testRig, size int64) sim.Duration {
	t.Helper()
	inst, err := workloads.BuildIMB("alltoall", len(r.hx.Terminals()), size)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mpi.Run(r.f, "alltoall", r.hx.Terminals(), inst.Progs, mpi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Elapsed
}

// A link failing in the middle of a running Alltoall must tear down the
// flows crossing it, trigger exactly one validated sweep, and still let
// every rank finish — no wedged ops, no lost messages.
func TestSMRecoversAlltoallFromLinkFailure(t *testing.T) {
	baseline := runAlltoall(t, newRig(t), 64<<10)

	r := newRig(t)
	m, err := NewManager(r.f, SMConfig{
		DetectionDelay: 50 * sim.Microsecond,
		SweepLatency:   100 * sim.Microsecond,
		Rebuild:        r.rebuild,
		Revalidate:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := PlanLinkFailures(r.hx.Graph, 2, sim.Time(baseline)/4, sim.Duration(baseline)/4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Inject(sched); err != nil {
		t.Fatal(err)
	}
	faulted := runAlltoall(t, r, 64<<10) // mpi.Run errors on any wedged rank

	if m.Injected != 2 {
		t.Fatalf("applied %d events, want 2", m.Injected)
	}
	if len(m.Sweeps) == 0 {
		t.Fatal("SM never swept")
	}
	for _, s := range m.Sweeps {
		if s.Rejected != nil {
			t.Errorf("sweep rejected: %v", s.Rejected)
		}
		if !s.Validated || !s.DeadlockFree {
			t.Errorf("sweep not validated deadlock-free: %+v", s)
		}
		if s.Unreachable != 0 {
			t.Errorf("link failure stranded %d pairs", s.Unreachable)
		}
		if s.Latency() <= 0 {
			t.Errorf("non-positive sweep latency %v", s.Latency())
		}
	}
	events := 0
	for _, s := range m.Sweeps {
		events += s.Events
	}
	if events != 2 {
		t.Errorf("sweeps covered %d events, want 2", events)
	}
	if r.f.GiveUps != 0 {
		t.Errorf("%d messages lost beyond the retry budget", r.f.GiveUps)
	}
	if r.f.Delivered != r.f.Messages {
		t.Errorf("delivered %d of %d messages", r.f.Delivered, r.f.Messages)
	}
	if faulted < baseline {
		t.Errorf("faulted run (%v) faster than baseline (%v)", faulted, baseline)
	}
	// Both failed links must stay down and be routed around.
	for _, ev := range sched {
		if !r.hx.Links[ev.Link].Down {
			t.Errorf("link %d was repaired by nobody", ev.Link)
		}
	}
}

// A burst of failures inside one detection window coalesces into few
// sweeps, and changes arriving during a sweep are serviced right after it.
func TestSMCoalescesFailureBurst(t *testing.T) {
	baseline := runAlltoall(t, newRig(t), 32<<10)

	r := newRig(t)
	m, err := NewManager(r.f, SMConfig{
		DetectionDelay: 200 * sim.Microsecond,
		SweepLatency:   100 * sim.Microsecond,
		Rebuild:        r.rebuild,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Four failures within 50 us — well inside one detection window.
	sched, err := PlanLinkFailures(r.hx.Graph, 4, sim.Time(baseline)/4, 50*sim.Microsecond, 21)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Inject(sched); err != nil {
		t.Fatal(err)
	}
	runAlltoall(t, r, 32<<10)

	if m.Injected != 4 {
		t.Fatalf("applied %d events, want 4", m.Injected)
	}
	if got := len(m.Sweeps); got > 2 {
		t.Errorf("burst of 4 failures took %d sweeps, want <= 2", got)
	}
	events := 0
	for _, s := range m.Sweeps {
		events += s.Events
		if s.Rejected != nil {
			t.Errorf("sweep rejected: %v", s.Rejected)
		}
	}
	if events != 4 {
		t.Errorf("sweeps covered %d events, want 4", events)
	}
	if r.f.GiveUps != 0 {
		t.Errorf("%d messages lost", r.f.GiveUps)
	}
}

// A switch dying and coming back: terminals attached to it are stranded
// while it is down (Unreachable > 0 in the sweep report), and the repair
// sweep restores full reachability. Statically degraded links must not be
// resurrected by the SwitchUp.
func TestSMSwitchOutageAndRepair(t *testing.T) {
	r := newRig(t)

	// Statically degrade one link on the victim switch before runtime.
	victim := r.hx.Switches()[5]
	var static *topo.Link
	for _, l := range r.hx.Nodes[victim].Ports {
		if l != nil && r.hx.Nodes[l.Other(victim)].Kind == topo.Switch {
			static = l
			break
		}
	}
	static.Down = true
	tb, err := r.rebuild()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.f.SwapTables(tb); err != nil {
		t.Fatal(err)
	}

	m, err := NewManager(r.f, SMConfig{
		DetectionDelay: 50 * sim.Microsecond,
		SweepLatency:   100 * sim.Microsecond,
		Rebuild:        r.rebuild,
		Revalidate:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Inject(SwitchOutage(victim, 500*sim.Microsecond, 2*sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	runAlltoall(t, r, 32<<10)

	if m.Injected != 2 {
		t.Fatalf("applied %d events, want down+up", m.Injected)
	}
	sawStranded := false
	for _, s := range m.Sweeps {
		if s.Rejected != nil {
			t.Errorf("sweep rejected: %v", s.Rejected)
		}
		if s.Unreachable > 0 {
			sawStranded = true
		}
	}
	if !sawStranded {
		t.Error("no sweep reported the stranded terminals of the dead switch")
	}
	if last := m.Sweeps[len(m.Sweeps)-1]; last.Unreachable != 0 {
		t.Errorf("final sweep still reports %d unreachable pairs", last.Unreachable)
	}
	if !static.Down {
		t.Error("SwitchUp resurrected a statically degraded link")
	}
	for _, l := range r.hx.Nodes[victim].Ports {
		if l == nil || l == static {
			continue
		}
		if l.Down {
			t.Errorf("link %d still down after switch repair", l.ID)
		}
	}
	if r.f.GiveUps != 0 {
		t.Errorf("%d messages lost despite repair within retry patience", r.f.GiveUps)
	}
}

// Events scheduled in the past must be refused, and a nil Rebuild is a
// configuration error.
func TestManagerConfigErrors(t *testing.T) {
	r := newRig(t)
	if _, err := NewManager(r.f, SMConfig{}); err == nil {
		t.Error("NewManager accepted a nil Rebuild")
	}
	m, err := NewManager(r.f, SMConfig{Rebuild: r.rebuild})
	if err != nil {
		t.Fatal(err)
	}
	r.f.Eng.Schedule(sim.Millisecond, func(*sim.Engine) {
		if err := m.Inject(Schedule{{At: 0, Kind: LinkDown, Link: 0}}); err == nil {
			t.Error("Inject accepted an event in the past")
		}
	})
	r.f.Eng.Run()
}
