package faults

import (
	"fmt"

	"github.com/hpcsim/t2hx/internal/fabric"
	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/telemetry"
	"github.com/hpcsim/t2hx/internal/topo"
)

// DefaultDetectionDelay models IB trap propagation plus the SM noticing the
// port state change. Real OpenSM reacts within milliseconds of a trap.
const DefaultDetectionDelay sim.Duration = 1 * sim.Millisecond

// DefaultSweepLatency models recomputing the LFTs and programming every
// switch — the window during which the fabric still runs on stale tables.
const DefaultSweepLatency sim.Duration = 4 * sim.Millisecond

// SMConfig tunes the subnet-manager model.
type SMConfig struct {
	// DetectionDelay is the gap between a fabric change and the SM starting
	// its re-sweep. Zero selects DefaultDetectionDelay.
	DetectionDelay sim.Duration
	// SweepLatency is the gap between sweep start and the recomputed tables
	// going live in the fabric. Zero selects DefaultSweepLatency.
	SweepLatency sim.Duration
	// Rebuild recomputes routing tables with the active engine against the
	// graph's current link state. Required. The new tables must keep the
	// fabric's LID layout (same terminals, same LMC, same base LIDs).
	Rebuild func() (*route.Tables, error)
	// Revalidate walks the rebuilt tables before the swap (reachability
	// accounting, loop-freedom, per-VL deadlock-freedom). Deadlock-prone
	// tables are rejected and the old ones kept — the invariant an SM must
	// never break. Costs a full table walk per sweep.
	Revalidate bool
	// MarginSamples, when positive, additionally scores the rebuilt tables'
	// deadlock-freedom margin (route.DeadlockMargin with this sample cap)
	// during revalidation; the value lands in Sweep.Margin and the sweep's
	// trace span. Zero skips the measurement.
	MarginSamples int
}

// Sweep records one SM reaction to fabric changes.
type Sweep struct {
	// Trigger is the earliest fabric change this sweep covers — the start
	// of the outage window it closes.
	Trigger sim.Time
	// Detected is when the SM started the sweep.
	Detected sim.Time
	// Swapped is when the rebuilt tables went live; zero if the sweep was
	// rejected.
	Swapped sim.Time
	// Events is the number of fabric changes covered (coalescing: changes
	// arriving within one detection window share a sweep).
	Events int
	// Rejected carries the rebuild or validation failure that kept the old
	// tables; nil for a successful sweep.
	Rejected error
	// Validated is true when Revalidate ran; DeadlockFree and Unreachable
	// are only meaningful then.
	Validated    bool
	DeadlockFree bool
	// Unreachable counts (src, dst-LID) pairs the rebuilt tables cannot
	// serve — nonzero when dead switches strand terminals.
	Unreachable int
	// Margin is the rebuilt tables' deadlock-freedom margin (CDG cycle
	// slack, see route.DeadlockMargin); only measured when
	// SMConfig.MarginSamples is positive and the rebuild succeeded.
	Margin float64
}

// Latency is the outage window the sweep closed: first covered change to
// table swap. Zero for rejected sweeps.
func (s Sweep) Latency() sim.Duration {
	if s.Swapped == 0 && s.Rejected != nil {
		return 0
	}
	return s.Swapped - s.Trigger
}

// Manager is the subnet-manager model: it owns the runtime link state of
// one fabric, applies scheduled fault events to it, tears down in-flight
// traffic crossing dead channels, and re-sweeps routing tables.
type Manager struct {
	Cfg SMConfig

	// Sweeps records every sweep in completion order.
	Sweeps []Sweep
	// Injected counts fault events that changed the fabric; TornDown the
	// in-flight flows those changes killed.
	Injected int
	TornDown int

	// OnApply observes each applied event (metrics sampling); OnSwept each
	// completed sweep.
	OnApply func(ev Event)
	OnSwept func(s Sweep)
	// OnHealth observes the plane's health transitions: false when a
	// destructive change degrades the fabric, true once a successful sweep
	// has covered every change applied so far. Multi-plane failover wires
	// this to fabric.MultiFabric.SetPlaneHealth so a plane whose SM is
	// mid-re-sweep is skipped by plane selection.
	OnHealth func(healthy bool)

	f   *fabric.Fabric
	eng *sim.Engine
	g   *topo.Graph

	rev      int  // fabric-change revision counter
	sweptRev int  // highest revision live in the fabric's tables
	sweeping bool // a sweep is between Detected and Swapped
	// changeTimes[i] is when change i+1 was applied; a sweep covering
	// (sweptRev, startRev] starts its outage window at
	// changeTimes[sweptRev].
	changeTimes []sim.Time
	// downCount refcounts failure causes per link (a link can be down both
	// individually and via its switch); managed marks links whose Down flag
	// this manager owns, so static build-time degradation is never
	// "repaired" by a SwitchUp.
	downCount map[topo.LinkID]int
	managed   map[topo.LinkID]bool
}

// NewManager wires a subnet manager to a fabric. It enables the fabric's
// resilience layer with defaults when the caller has not configured one, so
// in-flight messages crossing a dead channel are retried rather than
// panicking the simulation.
func NewManager(f *fabric.Fabric, cfg SMConfig) (*Manager, error) {
	if cfg.Rebuild == nil {
		return nil, fmt.Errorf("faults: SMConfig.Rebuild is required")
	}
	if cfg.DetectionDelay == 0 {
		cfg.DetectionDelay = DefaultDetectionDelay
	}
	if cfg.SweepLatency == 0 {
		cfg.SweepLatency = DefaultSweepLatency
	}
	if !f.ResilienceEnabled() {
		f.EnableResilience(fabric.Resilience{})
	}
	return &Manager{
		Cfg:       cfg,
		f:         f,
		eng:       f.Eng,
		g:         f.G,
		downCount: make(map[topo.LinkID]int),
		managed:   make(map[topo.LinkID]bool),
	}, nil
}

// Inject schedules every event of the fault timeline on the engine. Events
// in the past (before the engine's current time) are an error.
func (m *Manager) Inject(sched Schedule) error {
	for _, ev := range sched.Sorted() {
		if ev.At < m.eng.Now() {
			return fmt.Errorf("faults: event %v scheduled before now (%.6fs)", ev, float64(m.eng.Now()))
		}
		ev := ev
		m.eng.Schedule(ev.At, func(*sim.Engine) { m.apply(ev) })
	}
	return nil
}

// SweepLatencies returns the outage windows of all successful sweeps.
func (m *Manager) SweepLatencies() []sim.Duration {
	var out []sim.Duration
	for _, s := range m.Sweeps {
		if s.Rejected == nil {
			out = append(out, s.Latency())
		}
	}
	return out
}

// apply executes one fault event against the live graph.
func (m *Manager) apply(ev Event) {
	var dead map[topo.LinkID]bool
	changed := false
	switch ev.Kind {
	case LinkDown, SwitchDown:
		dead, changed = m.downLinks(m.linkTargets(ev))
	case LinkUp, SwitchUp:
		changed = m.upLinks(m.linkTargets(ev))
	}
	if !changed {
		return
	}
	m.changeTimes = append(m.changeTimes, m.eng.Now())
	m.rev++
	m.Injected++
	if m.OnApply != nil {
		m.OnApply(ev)
	}
	torn := 0
	if len(dead) > 0 {
		if m.OnHealth != nil {
			m.OnHealth(false)
		}
		torn = m.f.FailChannels(func(c topo.ChannelID) bool {
			return dead[m.g.Link(c).ID]
		})
		m.TornDown += torn
	} else {
		// Repairs kill nothing, but cached paths must not bypass the
		// restored capacity until the SM actually reroutes.
		m.f.InvalidatePaths()
	}
	if tel := m.f.Tel; tel != nil {
		args := map[string]any{"event": ev.String()}
		if torn > 0 {
			args["flows_torn_down"] = torn
		}
		tel.Instant(telemetry.TracePidSM, 0, "fault", ev.Kind.String(), m.eng.Now(), args)
	}
	m.eng.After(m.Cfg.DetectionDelay, func(*sim.Engine) { m.maybeSweep() })
}

// linkTargets resolves the links an event touches.
func (m *Manager) linkTargets(ev Event) []*topo.Link {
	switch ev.Kind {
	case LinkDown, LinkUp:
		if int(ev.Link) < 0 || int(ev.Link) >= len(m.g.Links) {
			panic(fmt.Sprintf("faults: event references unknown link %d", ev.Link))
		}
		return []*topo.Link{m.g.Links[ev.Link]}
	default:
		node := m.g.Nodes[ev.Switch]
		if node.Kind != topo.Switch {
			panic(fmt.Sprintf("faults: switch event targets non-switch node %s", node.Label))
		}
		var out []*topo.Link
		for _, l := range node.Ports {
			if l != nil {
				out = append(out, l)
			}
		}
		return out
	}
}

// downLinks fails the given links, returning the set newly taken down.
func (m *Manager) downLinks(ls []*topo.Link) (map[topo.LinkID]bool, bool) {
	dead := make(map[topo.LinkID]bool)
	for _, l := range ls {
		m.downCount[l.ID]++
		if !l.Down {
			l.Down = true
			m.managed[l.ID] = true
			dead[l.ID] = true
		}
	}
	return dead, len(dead) > 0
}

// upLinks repairs links whose failure causes have all cleared. Links downed
// statically at build time are not touched.
func (m *Manager) upLinks(ls []*topo.Link) bool {
	changed := false
	for _, l := range ls {
		if m.downCount[l.ID] == 0 {
			continue // never failed at runtime (e.g. statically degraded)
		}
		m.downCount[l.ID]--
		if m.downCount[l.ID] == 0 && m.managed[l.ID] {
			l.Down = false
			delete(m.managed, l.ID)
			changed = true
		}
	}
	return changed
}

// maybeSweep starts a re-sweep when unswept changes exist and no sweep is
// running; a running sweep re-checks on completion, which is what coalesces
// failure bursts into few sweeps.
func (m *Manager) maybeSweep() {
	if m.sweeping || m.sweptRev >= m.rev {
		return
	}
	m.startSweep()
}

// startSweep recomputes tables against the current graph, optionally
// revalidates them, and schedules the atomic swap after the sweep latency.
func (m *Manager) startSweep() {
	startRev := m.rev
	s := Sweep{
		Trigger:  m.changeTimes[m.sweptRev],
		Detected: m.eng.Now(),
		Events:   startRev - m.sweptRev,
	}
	tables, err := m.Cfg.Rebuild()
	if err == nil && m.Cfg.Revalidate {
		var rep route.Report
		rep, err = route.Validate(tables)
		if err == nil {
			s.Validated = true
			s.DeadlockFree = rep.DeadlockFree
			s.Unreachable = rep.Unreachable
			if m.Cfg.MarginSamples > 0 {
				s.Margin = route.DeadlockMargin(tables, m.Cfg.MarginSamples)
			}
			if !rep.DeadlockFree {
				err = fmt.Errorf("faults: re-sweep with engine %s produced deadlock-prone tables", tables.Engine)
			}
		}
	}
	if err != nil {
		// Keep the old tables: a broken sweep must not take the fabric
		// down further. The next fabric change triggers another attempt.
		s.Rejected = err
		m.finishSweep(s)
		return
	}
	m.sweeping = true
	m.eng.After(m.Cfg.SweepLatency, func(*sim.Engine) {
		m.sweeping = false
		if err := m.f.SwapTables(tables); err != nil {
			s.Rejected = err
		} else {
			m.sweptRev = startRev
			s.Swapped = m.eng.Now()
			if m.sweptRev >= m.rev && m.OnHealth != nil {
				// Every change so far is covered by the swapped tables.
				m.OnHealth(true)
			}
		}
		m.finishSweep(s)
		// Changes may have queued up while we were programming switches;
		// the SM services them immediately, like OpenSM draining its trap
		// queue after a sweep.
		m.maybeSweep()
	})
}

func (m *Manager) finishSweep(s Sweep) {
	m.Sweeps = append(m.Sweeps, s)
	if tel := m.f.Tel; tel != nil {
		// The sweep renders as a span from SM detection to the table swap
		// (or the rejection instant); the args carry the outage window the
		// sweep closed and what the revalidation found.
		end := s.Swapped
		name := "sm-sweep"
		args := map[string]any{
			"events_covered": s.Events,
			"trigger_s":      float64(s.Trigger),
		}
		if s.Rejected != nil {
			end = m.eng.Now()
			name = "sm-sweep-rejected"
			args["rejected"] = s.Rejected.Error()
		} else {
			args["outage_window_s"] = float64(s.Latency())
		}
		if s.Validated {
			args["deadlock_free"] = s.DeadlockFree
			args["unreachable"] = s.Unreachable
			if m.Cfg.MarginSamples > 0 {
				args["margin"] = s.Margin
			}
		}
		tel.Span(telemetry.TracePidSM, 1, "sm", name, s.Detected, end, args)
		if s.Rejected == nil {
			tel.Instant(telemetry.TracePidSM, 1, "sm", "tables-swapped", s.Swapped, nil)
		}
	}
	if m.OnSwept != nil {
		m.OnSwept(s)
	}
}
