package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded fork-join worker pool for parallel work *inside* a
// discrete-event callback. The engine is strictly sequential: an event
// callback owns the simulation until it returns, so any parallelism it
// spawns must be joined before that boundary — otherwise a worker could
// observe (or mutate) simulation state while the engine has already moved
// on to the next event. Pool.Run enforces exactly that contract: it forks
// up to Workers goroutines, runs every job, and does not return until all
// of them have finished (event-boundary synchronization). No goroutine
// outlives a Run call, so a Pool needs no Close and an idle Pool costs
// nothing.
//
// Determinism is the caller's half of the bargain: jobs run in arbitrary
// order on arbitrary workers, so Run is only safe for job sets whose
// writes are disjoint and whose per-job arithmetic does not depend on
// scheduling; callers that need reproducible global output must merge the
// per-job results in a canonical order after Run returns (see
// flow/solver_shard.go).
type Pool struct {
	workers int
}

// NewPool sizes a pool; workers <= 0 selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers reports the pool's parallelism bound.
func (p *Pool) Workers() int { return p.workers }

// Run executes fn(worker, job) for every job in [0, jobs) on at most
// Workers() concurrent goroutines and returns only when every dispatched
// job has completed. The calling goroutine participates as worker 0;
// worker identifies the slot in [0, min(Workers, jobs)) running the job,
// so callers can hand each worker private scratch. Jobs are pulled from a
// shared atomic counter (dynamic load balancing — component sizes are
// typically skewed). If a job panics, the first panic value is re-raised
// on the calling goroutine after the join, preserving the event boundary
// even on failure; jobs already claimed by other workers still run.
func (p *Pool) Run(jobs int, fn func(worker, job int)) {
	if jobs <= 0 {
		return
	}
	nw := p.workers
	if nw > jobs {
		nw = jobs
	}
	if nw <= 1 {
		for j := 0; j < jobs; j++ {
			fn(0, j)
		}
		return
	}
	var next atomic.Int64
	var panicOnce sync.Once
	var panicked any
	work := func(worker int) {
		defer func() {
			if r := recover(); r != nil {
				panicOnce.Do(func() { panicked = r })
			}
		}()
		for {
			j := int(next.Add(1)) - 1
			if j >= jobs {
				return
			}
			fn(worker, j)
		}
	}
	var wg sync.WaitGroup
	wg.Add(nw - 1)
	for w := 1; w < nw; w++ {
		go func(worker int) {
			defer wg.Done()
			work(worker)
		}(w)
	}
	work(0)
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
