package sim

import "math"

// Rand is a small, fast, seedable PRNG (SplitMix64) used everywhere the
// simulator needs randomness: placements, link degradation, run-to-run
// jitter, random bisections. We avoid math/rand so that the stream is
// identical across Go releases and so sub-streams can be forked cheaply.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Fork derives an independent generator from this one; the derived stream is
// a pure function of the parent's current state, keeping experiments
// reproducible when sub-components each need their own stream.
func (r *Rand) Fork() *Rand {
	return &Rand{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics when n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Geometric draws from a geometric distribution with success probability p:
// the number of trials until (and including) the first success, so the
// result is >= 1. The paper's clustered placement draws node strides this
// way with p = 0.8.
func (r *Rand) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("sim: Geometric needs 0 < p <= 1")
	}
	if p == 1 {
		return 1
	}
	u := r.Float64()
	// Inverse CDF: ceil(ln(1-u) / ln(1-p)).
	k := int(math.Ceil(math.Log(1-u) / math.Log(1-p)))
	if k < 1 {
		k = 1
	}
	return k
}

// Perm returns a random permutation of [0, n), Fisher-Yates.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes s in place.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Normal returns a draw from N(mu, sigma) via Box-Muller.
func (r *Rand) Normal(mu, sigma float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mu + sigma*z
}

// LogNormalFactor returns exp(N(0, sigma)): a multiplicative jitter factor
// with median 1, used to model run-to-run variability.
func (r *Rand) LogNormalFactor(sigma float64) float64 {
	return math.Exp(r.Normal(0, sigma))
}

// ExpFloat64 returns an exponentially distributed draw with mean 1 (scale
// by the desired mean), used for MTBF-style failure interarrival times.
func (r *Rand) ExpFloat64() float64 {
	return -math.Log(1 - r.Float64())
}
