package sim

import (
	"sync/atomic"
	"testing"
)

// TestPoolRunsEveryJob checks that every job index runs exactly once,
// across job counts straddling the worker count.
func TestPoolRunsEveryJob(t *testing.T) {
	p := NewPool(4)
	if p.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", p.Workers())
	}
	for _, jobs := range []int{0, 1, 3, 4, 5, 64, 1000} {
		hits := make([]atomic.Int32, jobs)
		p.Run(jobs, func(worker, job int) {
			if worker < 0 || worker >= 4 {
				t.Errorf("worker %d out of range", worker)
			}
			hits[job].Add(1)
		})
		for j := range hits {
			if got := hits[j].Load(); got != 1 {
				t.Fatalf("jobs=%d: job %d ran %d times", jobs, j, got)
			}
		}
	}
}

// TestPoolJoinsBeforeReturn checks the event-boundary contract: when Run
// returns, every job's effects are visible to the caller with no further
// synchronization.
func TestPoolJoinsBeforeReturn(t *testing.T) {
	p := NewPool(8)
	const jobs = 512
	out := make([]int, jobs) // plain writes: the join must publish them
	p.Run(jobs, func(_, job int) { out[job] = job + 1 })
	for j, v := range out {
		if v != j+1 {
			t.Fatalf("job %d effect not visible after Run returned", j)
		}
	}
}

// TestPoolWorkerScratchIsExclusive checks that a worker index is never
// used by two goroutines at once, the property the solver relies on to
// hand each worker private scratch.
func TestPoolWorkerScratchIsExclusive(t *testing.T) {
	const workers = 4
	p := NewPool(workers)
	var busy [workers]atomic.Int32
	p.Run(256, func(worker, _ int) {
		if busy[worker].Add(1) != 1 {
			t.Errorf("worker slot %d used concurrently", worker)
		}
		busy[worker].Add(-1)
	})
}

// TestPoolPanicPropagates checks that a job panic is re-raised on the
// calling goroutine after the join, not swallowed or crashed elsewhere.
func TestPoolPanicPropagates(t *testing.T) {
	p := NewPool(4)
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want \"boom\"", r)
		}
	}()
	p.Run(64, func(_, job int) {
		if job == 17 {
			panic("boom")
		}
	})
	t.Fatal("Run returned normally despite panicking job")
}

// TestPoolZeroSelectsGOMAXPROCS pins the sizing rule shared with
// flow.Network.SetWorkers.
func TestPoolZeroSelectsGOMAXPROCS(t *testing.T) {
	if NewPool(0).Workers() < 1 {
		t.Fatal("NewPool(0) sized below 1")
	}
	if NewPool(-3).Workers() < 1 {
		t.Fatal("NewPool(-3) sized below 1")
	}
}
