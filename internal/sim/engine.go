// Package sim provides the discrete-event simulation core used by every
// other package in this repository: a monotone virtual clock, an
// allocation-free event queue with deterministic tie-breaking, and a seeded
// deterministic random number generator.
//
// The engine is intentionally minimal: an Engine owns a clock and a queue
// of (time, sequence, callback) events. Callbacks run strictly in (time,
// sequence) order, so two events scheduled for the same instant execute in
// scheduling order, which makes every simulation in this repository
// reproducible bit-for-bit for a given seed.
//
// Event state lives in a dense SoA arena on the flow-table pattern
// (DESIGN.md §13): parallel slices indexed by the slot half of a
// generation-tagged EventID handle, with a LIFO free list recycling slots.
// The pending queue is a hand-rolled value-indexed 4-ary min-heap of slot
// indices — container/heap's interface Push/Pop boxed a *Event per
// Schedule, and at AI-scale event churn (hundreds of millions of events
// per endurance run) those boxes plus their heap rebalancing were most of
// the event core's allocation and GC bill. Steady-state Schedule/Cancel/
// Reschedule churn allocates nothing.
package sim

import (
	"fmt"
	"math"
)

// Time is simulated time in seconds.
type Time float64

// Duration is a simulated time span in seconds.
type Duration = Time

// Common duration helpers (seconds-based, mirroring time package idioms).
const (
	Nanosecond  Duration = 1e-9
	Microsecond Duration = 1e-6
	Millisecond Duration = 1e-3
	Second      Duration = 1.0
	Minute      Duration = 60.0
	Hour        Duration = 3600.0
)

// Infinity is a time later than any event the engine will ever run.
const Infinity Time = math.MaxFloat64

// EventID is the handle of a pending event: the low 32 bits index the
// dense event arena, the high 32 bits carry the slot generation at
// scheduling time (the same packing as flow.FlowID). Handles are always
// positive and nonzero, so 0 is the universal "no event" sentinel. A
// handle outliving its event — the event fired or was canceled, and its
// slot possibly recycled — goes stale rather than aliasing the slot's
// next occupant: Cancel ignores it, Reschedule returns false.
type EventID int64

// eventIdxBits is the slot-index width of an EventID handle.
const eventIdxBits = 32

// eventIDOf packs a slot index and its generation into an EventID.
func eventIDOf(idx int32, gen uint32) EventID {
	return EventID(int64(gen)<<eventIdxBits | int64(uint32(idx)))
}

// eventIndex extracts the dense slot index of an event handle.
func eventIndex(id EventID) int32 { return int32(uint32(uint64(id))) }

// eventGen extracts the generation tag of an event handle.
func eventGen(id EventID) uint32 { return uint32(uint64(id) >> eventIdxBits) }

// Engine is a discrete-event simulator.
type Engine struct {
	now    Time
	seq    uint64
	halted bool

	// Event arena (SoA): per-slot parallel slices. A slot is either free
	// (on evFree, evPos == -1) or queued (evPos is its heap position).
	// evGen is bumped on every free, never zero, so stale handles are
	// detected instead of acting on a recycled slot.
	evAt  []Time
	evSeq []uint64
	evGen []uint32
	evPos []int32
	evFn  []func(*Engine)
	// evFree is the LIFO slot free list: a recurring event (the flow
	// network's settle) keeps reusing the same hot slot.
	evFree []int32

	// queue is the 4-ary min-heap of queued slot indices, ordered by
	// (evAt, evSeq). 4-ary over binary: half the depth, and the wider
	// node fits two cache lines of int32 children — sift-downs dominate a
	// pop-heavy workload.
	queue []int32

	// Processed counts events actually executed; useful for ablation
	// benchmarks and runaway detection.
	Processed uint64
	// MaxEvents aborts the run (via panic) if exceeded; 0 means no limit.
	MaxEvents uint64
	// OnStep, when non-nil, observes every executed event (current time and
	// queue depth after the pop) — the telemetry layer's engine probe. The
	// nil check is the only cost when unset.
	OnStep func(at Time, pending int)
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Schedule enqueues fn to run at absolute time at and returns its handle.
// Scheduling in the past is a programming error and panics.
func (e *Engine) Schedule(at Time, fn func(*Engine)) EventID {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	var idx int32
	if k := len(e.evFree); k > 0 {
		idx = e.evFree[k-1]
		e.evFree = e.evFree[:k-1]
	} else {
		idx = int32(len(e.evGen))
		e.evGen = append(e.evGen, 1)
		e.evAt = append(e.evAt, 0)
		e.evSeq = append(e.evSeq, 0)
		e.evPos = append(e.evPos, -1)
		e.evFn = append(e.evFn, nil)
	}
	e.evAt[idx] = at
	e.evSeq[idx] = e.seq
	e.seq++
	e.evFn[idx] = fn
	pos := len(e.queue)
	e.queue = append(e.queue, idx)
	e.evPos[idx] = int32(pos)
	e.up(pos)
	return eventIDOf(idx, e.evGen[idx])
}

// After enqueues fn to run d seconds from now.
func (e *Engine) After(d Duration, fn func(*Engine)) EventID {
	return e.Schedule(e.now+d, fn)
}

// Reschedule moves a still-pending event to a new absolute time without
// the Cancel+Schedule round trip and double heap rebalance. The event is
// re-sequenced as if freshly scheduled, preserving FIFO order among
// same-time events. Returns false for stale handles — the event already
// fired or was canceled (possibly with its slot since recycled); the
// caller should Schedule anew. Rescheduling into the past panics, like
// Schedule.
func (e *Engine) Reschedule(id EventID, at Time) bool {
	idx, ok := e.resolve(id)
	if !ok {
		return false
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: reschedule at %v before now %v", at, e.now))
	}
	e.evAt[idx] = at
	e.evSeq[idx] = e.seq
	e.seq++
	e.fix(int(e.evPos[idx]))
	return true
}

// Cancel removes a pending event. Stale handles — already-fired or
// already-canceled events, including slots since recycled by a later
// Schedule — are ignored: a late cancel can never remove the slot's next
// occupant.
func (e *Engine) Cancel(id EventID) {
	idx, ok := e.resolve(id)
	if !ok {
		return
	}
	pos := int(e.evPos[idx])
	last := len(e.queue) - 1
	if pos != last {
		e.swap(pos, last)
	}
	e.queue = e.queue[:last]
	if pos != last {
		e.fix(pos)
	}
	e.freeSlot(idx)
}

// resolve authenticates a handle against its slot: in-range, queued, and
// generation-matched.
func (e *Engine) resolve(id EventID) (int32, bool) {
	idx := eventIndex(id)
	if idx < 0 || int(idx) >= len(e.evGen) {
		return idx, false
	}
	if e.evPos[idx] < 0 || e.evGen[idx] != eventGen(id) {
		return idx, false
	}
	return idx, true
}

// freeSlot returns an arena slot to the free list, bumping its generation
// so outstanding handles go stale, and dropping the callback so the arena
// retains nothing.
func (e *Engine) freeSlot(idx int32) {
	e.evFn[idx] = nil
	e.evPos[idx] = -1
	e.evGen[idx]++
	if e.evGen[idx] == 0 {
		e.evGen[idx] = 1 // generation wrap: skip 0 so handles stay nonzero
	}
	e.evFree = append(e.evFree, idx)
}

// --- value-indexed 4-ary heap over queue ---

// before is the strict (time, sequence) order between two queued slots.
func (e *Engine) before(a, b int32) bool {
	if e.evAt[a] != e.evAt[b] {
		return e.evAt[a] < e.evAt[b]
	}
	return e.evSeq[a] < e.evSeq[b]
}

// swap exchanges two heap positions, repairing the slots' back-pointers.
func (e *Engine) swap(i, j int) {
	q := e.queue
	q[i], q[j] = q[j], q[i]
	e.evPos[q[i]] = int32(i)
	e.evPos[q[j]] = int32(j)
}

// up sifts position i toward the root; returns the final position.
func (e *Engine) up(i int) int {
	for i > 0 {
		p := (i - 1) >> 2
		if !e.before(e.queue[i], e.queue[p]) {
			break
		}
		e.swap(i, p)
		i = p
	}
	return i
}

// down sifts position i toward the leaves; returns the final position.
func (e *Engine) down(i int) int {
	n := len(e.queue)
	for {
		c := 4*i + 1
		if c >= n {
			return i
		}
		m := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if e.before(e.queue[j], e.queue[m]) {
				m = j
			}
		}
		if !e.before(e.queue[m], e.queue[i]) {
			return i
		}
		e.swap(i, m)
		i = m
	}
}

// fix restores heap order at position i after its key changed either way.
func (e *Engine) fix(i int) {
	if e.up(i) == i {
		e.down(i)
	}
}

// Halt stops Run/RunUntil after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// PeekTime returns the time of the next event, or Infinity if none.
func (e *Engine) PeekTime() Time {
	if len(e.queue) == 0 {
		return Infinity
	}
	return e.evAt[e.queue[0]]
}

// Step executes the single next event, returning false when the queue is
// empty. The event's slot is freed before its callback runs, so a
// recurring callback that immediately re-Schedules reuses the slot it just
// vacated (and its own handle is stale by the time it runs, per contract).
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	idx := e.queue[0]
	last := len(e.queue) - 1
	if last > 0 {
		e.swap(0, last)
	}
	e.queue = e.queue[:last]
	if last > 0 {
		e.down(0)
	}
	at := e.evAt[idx]
	if at < e.now {
		panic("sim: event queue time went backwards")
	}
	e.now = at
	fn := e.evFn[idx]
	e.freeSlot(idx)
	e.Processed++
	if e.MaxEvents > 0 && e.Processed > e.MaxEvents {
		panic(fmt.Sprintf("sim: exceeded MaxEvents=%d (runaway simulation?)", e.MaxEvents))
	}
	if e.OnStep != nil {
		e.OnStep(e.now, len(e.queue))
	}
	fn(e)
	return true
}

// Run executes events until the queue drains or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}

// RunUntil executes events with At <= deadline, then sets the clock to
// deadline (if the simulation had not already passed it).
func (e *Engine) RunUntil(deadline Time) {
	e.halted = false
	for !e.halted {
		if len(e.queue) == 0 || e.evAt[e.queue[0]] > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
