// Package sim provides the discrete-event simulation core used by every
// other package in this repository: a monotone virtual clock, a binary-heap
// event queue with deterministic tie-breaking, and a seeded deterministic
// random number generator.
//
// The engine is intentionally minimal: an Engine owns a clock and a queue of
// (time, sequence, callback) events. Callbacks run strictly in (time,
// sequence) order, so two events scheduled for the same instant execute in
// scheduling order, which makes every simulation in this repository
// reproducible bit-for-bit for a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is simulated time in seconds.
type Time float64

// Duration is a simulated time span in seconds.
type Duration = Time

// Common duration helpers (seconds-based, mirroring time package idioms).
const (
	Nanosecond  Duration = 1e-9
	Microsecond Duration = 1e-6
	Millisecond Duration = 1e-3
	Second      Duration = 1.0
	Minute      Duration = 60.0
	Hour        Duration = 3600.0
)

// Infinity is a time later than any event the engine will ever run.
const Infinity Time = math.MaxFloat64

// Event is a scheduled callback. The callback receives the engine so it can
// schedule follow-up events.
type Event struct {
	At  Time
	Seq uint64 // tie-breaker: FIFO among same-time events
	Fn  func(*Engine)

	index int // heap bookkeeping; -1 when not queued
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].Seq < h[j].Seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventHeap
	halted bool

	// Processed counts events actually executed; useful for ablation
	// benchmarks and runaway detection.
	Processed uint64
	// MaxEvents aborts the run (via panic) if exceeded; 0 means no limit.
	MaxEvents uint64
	// OnStep, when non-nil, observes every executed event (current time and
	// queue depth after the pop) — the telemetry layer's engine probe. The
	// nil check is the only cost when unset.
	OnStep func(at Time, pending int)
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Schedule enqueues fn to run at absolute time at. Scheduling in the past is
// a programming error and panics.
func (e *Engine) Schedule(at Time, fn func(*Engine)) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	ev := &Event{At: at, Seq: e.seq, Fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After enqueues fn to run d seconds from now.
func (e *Engine) After(d Duration, fn func(*Engine)) *Event {
	return e.Schedule(e.now+d, fn)
}

// Reschedule moves a still-pending event to a new absolute time without
// the Cancel+Schedule allocation and double heap rebalance. The event is
// re-sequenced as if freshly scheduled, preserving FIFO order among
// same-time events. Returns false if the event already fired or was
// canceled (the caller should Schedule anew). Rescheduling into the past
// panics, like Schedule.
func (e *Engine) Reschedule(ev *Event, at Time) bool {
	if ev == nil || ev.index < 0 {
		return false
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: reschedule at %v before now %v", at, e.now))
	}
	ev.At = at
	ev.Seq = e.seq
	e.seq++
	heap.Fix(&e.queue, ev.index)
	return true
}

// Cancel removes a pending event. Canceling an already-fired or canceled
// event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
}

// Halt stops Run/RunUntil after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// PeekTime returns the time of the next event, or Infinity if none.
func (e *Engine) PeekTime() Time {
	if len(e.queue) == 0 {
		return Infinity
	}
	return e.queue[0].At
}

// Step executes the single next event, returning false when the queue is
// empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	if ev.At < e.now {
		panic("sim: event queue time went backwards")
	}
	e.now = ev.At
	e.Processed++
	if e.MaxEvents > 0 && e.Processed > e.MaxEvents {
		panic(fmt.Sprintf("sim: exceeded MaxEvents=%d (runaway simulation?)", e.MaxEvents))
	}
	if e.OnStep != nil {
		e.OnStep(e.now, len(e.queue))
	}
	ev.Fn(e)
	return true
}

// Run executes events until the queue drains or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}

// RunUntil executes events with At <= deadline, then sets the clock to
// deadline (if the simulation had not already passed it).
func (e *Engine) RunUntil(deadline Time) {
	e.halted = false
	for !e.halted {
		if len(e.queue) == 0 || e.queue[0].At > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
