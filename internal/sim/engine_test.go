package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEngineOrdersByTime(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(3, func(*Engine) { got = append(got, 3) })
	e.Schedule(1, func(*Engine) { got = append(got, 1) })
	e.Schedule(2, func(*Engine) { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3 {
		t.Errorf("Now() = %v, want 3", e.Now())
	}
}

func TestEngineFIFOAmongEqualTimes(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(1, func(*Engine) { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events out of FIFO order at %d: %v", i, got[i])
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func(*Engine)
	tick = func(en *Engine) {
		count++
		if count < 10 {
			en.After(1, tick)
		}
	}
	e.Schedule(0, tick)
	e.Run()
	if count != 10 {
		t.Errorf("count = %d, want 10", count)
	}
	if e.Now() != 9 {
		t.Errorf("Now() = %v, want 9", e.Now())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(5, func(*Engine) { fired = true })
	e.Schedule(1, func(en *Engine) { en.Cancel(ev) })
	e.Run()
	if fired {
		t.Error("canceled event fired")
	}
	// Double-cancel is a no-op.
	e.Cancel(ev)
}

func TestEngineReschedule(t *testing.T) {
	e := NewEngine()
	var got []int
	ev := e.Schedule(5, func(*Engine) { got = append(got, 1) })
	e.Schedule(3, func(*Engine) { got = append(got, 3) })
	if !e.Reschedule(ev, 2) {
		t.Fatal("Reschedule of a pending event returned false")
	}
	e.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("order = %v, want [1 3] (rescheduled event first)", got)
	}
	if e.Now() != 3 {
		t.Errorf("Now() = %v, want 3", e.Now())
	}
	// A fired event cannot be rescheduled.
	if e.Reschedule(ev, 10) {
		t.Error("Reschedule of a fired event returned true")
	}
	if e.Reschedule(0, 10) {
		t.Error("Reschedule(0) returned true")
	}
}

func TestEngineRescheduleResequences(t *testing.T) {
	// Rescheduling onto an occupied instant lands AFTER events already
	// scheduled there — same FIFO rule as a fresh Schedule.
	e := NewEngine()
	var got []int
	ev := e.Schedule(1, func(*Engine) { got = append(got, 1) })
	e.Schedule(2, func(*Engine) { got = append(got, 2) })
	e.Reschedule(ev, 2)
	e.Run()
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("order = %v, want [2 1] (reschedule re-sequences)", got)
	}
}

func TestEngineReschedulePastPanics(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(5, func(*Engine) {})
	e.Schedule(3, func(*Engine) {})
	e.Step()
	defer func() {
		if recover() == nil {
			t.Error("expected panic rescheduling into the past")
		}
	}()
	e.Reschedule(ev, 1)
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func(*Engine) {})
	e.Step()
	defer func() {
		if recover() == nil {
			t.Error("expected panic scheduling in the past")
		}
	}()
	e.Schedule(1, func(*Engine) {})
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		e.Schedule(at, func(*Engine) { fired = append(fired, at) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if e.Now() != 3 {
		t.Errorf("Now() = %v, want 3", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", e.Pending())
	}
	// RunUntil advances the clock even with no events in range.
	e2 := NewEngine()
	e2.RunUntil(42)
	if e2.Now() != 42 {
		t.Errorf("empty RunUntil: Now() = %v, want 42", e2.Now())
	}
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine()
	ran := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i), func(en *Engine) {
			ran++
			if ran == 3 {
				en.Halt()
			}
		})
	}
	e.Run()
	if ran != 3 {
		t.Errorf("ran = %d, want 3 after Halt", ran)
	}
}

func TestEnginePeekTime(t *testing.T) {
	e := NewEngine()
	if e.PeekTime() != Infinity {
		t.Error("PeekTime on empty queue should be Infinity")
	}
	e.Schedule(7, func(*Engine) {})
	if e.PeekTime() != 7 {
		t.Errorf("PeekTime = %v, want 7", e.PeekTime())
	}
}

// TestEngineStaleHandlesOnRecycledSlot pins the generation-tag contract:
// once an event fires or is canceled, its handle must never act on the
// slot's next occupant, even though the LIFO free list guarantees the very
// next Schedule reuses that slot.
func TestEngineStaleHandlesOnRecycledSlot(t *testing.T) {
	e := NewEngine()
	victim := false
	old := e.Schedule(1, func(*Engine) {})
	e.Cancel(old)
	// LIFO free list: this reuses old's slot with a bumped generation.
	repl := e.Schedule(2, func(*Engine) { victim = true })
	if eventIndex(repl) != eventIndex(old) {
		t.Fatalf("free list did not recycle slot %d (got %d)", eventIndex(old), eventIndex(repl))
	}
	if eventGen(repl) == eventGen(old) {
		t.Fatal("recycled slot kept its generation")
	}
	e.Cancel(old) // stale: must not cancel repl
	if e.Reschedule(old, 50) {
		t.Error("Reschedule of a stale handle returned true")
	}
	e.Run()
	if !victim {
		t.Error("stale Cancel removed the slot's new occupant")
	}
	// Out-of-range and zero handles are stale too.
	e.Cancel(eventIDOf(1000, 1))
	if e.Reschedule(eventIDOf(1000, 1), 99) {
		t.Error("Reschedule of an out-of-range handle returned true")
	}
}

// TestEngineFIFOAfterSlotReuse checks that slot recycling never perturbs
// FIFO order among same-time events: ordering is by sequence number, which
// keeps increasing across reuse of the same arena slot.
func TestEngineFIFOAfterSlotReuse(t *testing.T) {
	e := NewEngine()
	var got []int
	// Churn: allocate and cancel to stack the free list.
	for i := 0; i < 8; i++ {
		e.Cancel(e.Schedule(1, func(*Engine) {}))
	}
	// These all land at t=1 on recycled slots; FIFO order must hold.
	for i := 0; i < 8; i++ {
		i := i
		e.Schedule(1, func(*Engine) { got = append(got, i) })
	}
	// Cancel-and-rescheduled event lands after the existing t=1 cohort.
	late := e.Schedule(0.5, func(*Engine) { got = append(got, 8) })
	e.Reschedule(late, 1)
	e.Run()
	for i := 0; i <= 8; i++ {
		if got[i] != i {
			t.Fatalf("order after slot reuse = %v, want 0..8 in sequence", got)
		}
	}
}

// TestEngineOnStepQueueDepth checks the OnStep probe under the arena:
// pending is reported after the pop, before the callback runs.
func TestEngineOnStepQueueDepth(t *testing.T) {
	e := NewEngine()
	var depths []int
	var times []Time
	e.OnStep = func(at Time, pending int) {
		times = append(times, at)
		depths = append(depths, pending)
	}
	for i := 0; i < 5; i++ {
		e.Schedule(Time(i), func(*Engine) {})
	}
	e.Run()
	wantDepths := []int{4, 3, 2, 1, 0}
	for i := range wantDepths {
		if depths[i] != wantDepths[i] {
			t.Fatalf("depths = %v, want %v", depths, wantDepths)
		}
		if times[i] != Time(i) {
			t.Fatalf("times = %v, want 0..4", times)
		}
	}
}

// TestEngineSteadyStateAllocFree is the in-suite version of
// BenchmarkEventChurn's headline claim: steady-state schedule/cancel/
// reschedule/fire churn does not allocate.
func TestEngineSteadyStateAllocFree(t *testing.T) {
	e := NewEngine()
	fn := func(*Engine) {}
	// Warm up the arena, heap, and free list.
	for i := 0; i < 64; i++ {
		e.After(1, fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(100, func() {
		a := e.After(1, fn)
		b := e.After(2, fn)
		e.Reschedule(b, 3)
		e.Cancel(a)
		e.Step()
	})
	if allocs != 0 {
		t.Errorf("steady-state event churn allocates %v allocs/op, want 0", allocs)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide too often: %d/1000", same)
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(2)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRandGeometricMean(t *testing.T) {
	r := NewRand(3)
	const n = 200000
	sum := 0
	for i := 0; i < n; i++ {
		g := r.Geometric(0.8)
		if g < 1 {
			t.Fatalf("Geometric returned %d < 1", g)
		}
		sum += g
	}
	mean := float64(sum) / n
	// E[X] = 1/p = 1.25.
	if math.Abs(mean-1.25) > 0.01 {
		t.Errorf("geometric mean = %v, want ~1.25", mean)
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		n := 1 + int(seed%64)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandNormalMoments(t *testing.T) {
	r := NewRand(4)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(variance-4) > 0.1 {
		t.Errorf("normal variance = %v, want ~4", variance)
	}
}

func TestRandLogNormalMedian(t *testing.T) {
	r := NewRand(5)
	const n = 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.LogNormalFactor(0.3)
		if vals[i] <= 0 {
			t.Fatal("LogNormalFactor must be positive")
		}
	}
	// Median should be ~1: count below 1.
	below := 0
	for _, v := range vals {
		if v < 1 {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("fraction below 1 = %v, want ~0.5", frac)
	}
}

func TestRandForkIndependence(t *testing.T) {
	parent := NewRand(99)
	f1 := parent.Fork()
	f2 := parent.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Error("sibling forks produced identical first draws")
	}
}

// Property: engine clock never moves backwards across random schedules.
func TestEngineClockMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		e := NewEngine()
		last := Time(-1)
		ok := true
		for i := 0; i < 50; i++ {
			at := Time(r.Float64() * 100)
			e.Schedule(at, func(en *Engine) {
				if en.Now() < last {
					ok = false
				}
				last = en.Now()
				// Schedule a random follow-up in the future.
				en.After(Duration(r.Float64()), func(*Engine) {})
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
