package topo

// DimSurvival summarizes how one HyperX dimension's line connectivity
// survived degradation. A "pair" is an unordered pair of co-aligned
// switches (same line of the dimension); the minimal-with-restricted-escape
// engine (route.HXMin) can serve a pair iff it has a live direct link or a
// restricted in-line detour, while the non-minimal engine only needs the
// fabric connected at all.
type DimSurvival struct {
	Dim   int
	Pairs int
	// Direct counts pairs with at least one live direct link.
	Direct int
	// Escape counts pairs with no live direct link but at least one
	// two-hop in-line detour over a live intermediate.
	Escape int
	// Restricted counts the Escape pairs whose detour satisfies the
	// low-coordinate escape restriction (intermediate coordinate strictly
	// below both endpoints) that keeps minimal routing deadlock-free.
	Restricted int
	// Stranded counts pairs with neither a direct link nor any in-line
	// detour; minimal in-line routing cannot serve them at all.
	Stranded int
}

// HyperXDimSurvival computes the per-dimension surviving-path census of a
// (possibly degraded) HyperX: for every line of every dimension, how each
// co-aligned switch pair can still be reached within the line.
func HyperXDimSurvival(hx *HyperX) []DimSurvival {
	dims := hx.Dims()
	out := make([]DimSurvival, dims)
	coord := make([]int, dims)
	total := 1
	for _, s := range hx.Cfg.S {
		total *= s
	}
	// liveDirect[a][b] for the current line, rebuilt per line below.
	for d := 0; d < dims; d++ {
		out[d].Dim = d
		sd := hx.Cfg.S[d]
		live := make([][]bool, sd)
		for i := range live {
			live[i] = make([]bool, sd)
		}
		for idx := 0; idx < total; idx++ {
			unindex(idx, hx.Cfg.S, coord)
			if coord[d] != 0 {
				continue // visit each line once, via its coordinate-0 switch
			}
			// Collect live direct connectivity within the line.
			line := make([]NodeID, sd)
			for v := 0; v < sd; v++ {
				c := append([]int(nil), coord...)
				c[d] = v
				line[v] = hx.SwitchAt(c...)
			}
			for a := 0; a < sd; a++ {
				for b := range live[a] {
					live[a][b] = false
				}
			}
			for a := 0; a < sd; a++ {
				for _, l := range hx.Nodes[line[a]].Ports {
					if l == nil || l.Down {
						continue
					}
					o := l.Other(line[a])
					for b := a + 1; b < sd; b++ {
						if o == line[b] {
							live[a][b], live[b][a] = true, true
						}
					}
				}
			}
			for a := 0; a < sd; a++ {
				for b := a + 1; b < sd; b++ {
					out[d].Pairs++
					if live[a][b] {
						out[d].Direct++
						continue
					}
					detour, restricted := false, false
					for m := 0; m < sd; m++ {
						if m == a || m == b || !live[a][m] || !live[m][b] {
							continue
						}
						detour = true
						if m < a && m < b {
							restricted = true
							break
						}
					}
					switch {
					case restricted:
						out[d].Escape++
						out[d].Restricted++
					case detour:
						out[d].Escape++
					default:
						out[d].Stranded++
					}
				}
			}
		}
	}
	return out
}
