package topo

import "math"

// Content fingerprints let routing tables be cached and shared across
// structurally identical graphs: two independent builds of the same
// topology produce byte-identical node/link numbering, so a cheap hash
// over that structure (plus a separate hash over the volatile link-Down
// state) addresses a table cache without holding graph references.

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

type fnv64 uint64

func (h *fnv64) word(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x = (x ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	*h = fnv64(x)
}

// Fingerprint hashes the graph's static structure: node kinds and counts,
// link endpoints and port numbers, bandwidths and latencies. The volatile
// Down flags are deliberately excluded — they are covered by DownHash, so
// a (Fingerprint, DownHash) pair fully addresses the routed state of a
// graph. O(nodes + links), no allocation.
func (g *Graph) Fingerprint() uint64 {
	h := fnv64(fnvOffset64)
	h.word(uint64(len(g.Nodes)))
	h.word(uint64(len(g.Links)))
	h.word(uint64(len(g.terminals)))
	for _, n := range g.Nodes {
		h.word(uint64(n.Kind))
	}
	for _, l := range g.Links {
		h.word(uint64(uint32(l.A))<<32 | uint64(uint32(l.B)))
		h.word(uint64(uint32(l.APort))<<32 | uint64(uint32(l.BPort)))
		h.word(math.Float64bits(l.Bandwidth))
		h.word(uint64(l.Latency))
	}
	return uint64(h)
}

// DownHash hashes the graph's current link-Down mask as a Zobrist XOR of
// per-link salts (see LinkDownSalt): a healthy graph hashes to 0, flipping
// one link flips exactly that link's salt, and two masks differing in a
// single link therefore never collide. Two calls on the same graph agree
// iff the same set of links is down; together with Fingerprint it keys
// caches of routed state, and it agrees with DownMask.Hash for the mask
// describing the same down set.
func (g *Graph) DownHash() uint64 {
	var h uint64
	for _, l := range g.Links {
		if l.Down {
			h ^= LinkDownSalt(l.ID)
		}
	}
	return h
}
