package topo

import (
	"testing"

	"github.com/hpcsim/t2hx/internal/sim"
)

func TestKaryNTreeCounts(t *testing.T) {
	// The paper's Fig. 2a: 4-ary 2-tree with 16 compute nodes.
	ft := NewKaryNTree(4, 2, 1e9, 100*sim.Nanosecond)
	if got := ft.NumTerminals(); got != 16 {
		t.Errorf("terminals = %d, want 16", got)
	}
	// XGFT(2; 4,4; 1,4): level 1 has 4 switches, level 2 has 4.
	if got := ft.NumSwitches(); got != 8 {
		t.Errorf("switches = %d, want 8", got)
	}
	if err := ft.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestXGFTLevelStructure(t *testing.T) {
	ft := NewKaryNTree(2, 3, 1e9, 1e-7)
	// 2-ary 3-tree: 8 terminals, levels 1..3 with 4 switches each.
	counts := map[int]int{}
	for _, n := range ft.Nodes {
		counts[ft.Level(n.ID)]++
	}
	if counts[0] != 8 || counts[1] != 4 || counts[2] != 4 || counts[3] != 4 {
		t.Errorf("level counts = %v, want 8/4/4/4", counts)
	}
	// Every level-1..2 switch has 2 parents, every terminal 1.
	for _, n := range ft.Nodes {
		lv := ft.Level(n.ID)
		switch {
		case lv == 0:
			if ft.NumParents(n.ID) != 1 {
				t.Fatalf("terminal with %d parents", ft.NumParents(n.ID))
			}
		case lv < 3:
			if ft.NumParents(n.ID) != 2 {
				t.Fatalf("level-%d switch with %d parents, want 2", lv, ft.NumParents(n.ID))
			}
		default:
			if ft.NumParents(n.ID) != 0 {
				t.Fatalf("root with parents")
			}
		}
	}
}

func TestXGFTUpDownPortConsistency(t *testing.T) {
	ft := NewKaryNTree(3, 2, 1e9, 1e-7)
	for _, n := range ft.Nodes {
		lv := ft.Level(n.ID)
		if lv == 0 || lv == ft.Height {
			continue
		}
		for y := 0; y < ft.NumParents(n.ID); y++ {
			l := ft.UpLink(n.ID, y)
			if l == nil {
				t.Fatalf("missing up-link %d of %s", y, n.Label)
			}
			parent := l.Other(n.ID)
			if ft.Level(parent) != lv+1 {
				t.Fatalf("up-link leads to level %d from %d", ft.Level(parent), lv)
			}
			// The parent's down port for our x-digit must be this link.
			x := ft.XCoord(n.ID)[0]
			if ft.DownLink(parent, x) != l {
				t.Fatalf("down-port back-reference broken")
			}
		}
	}
}

func TestXGFTAncestry(t *testing.T) {
	ft := NewKaryNTree(2, 2, 1e9, 1e-7)
	terms := ft.Terminals()
	// Terminal t's leaf switch must be its ancestor; leaf switches of other
	// subtrees must not.
	for _, tm := range terms {
		leaf := ft.SwitchOf(tm)
		if !ft.Ancestors(leaf, tm) {
			t.Fatalf("leaf switch not ancestor of its terminal")
		}
	}
	// Roots are ancestors of everything.
	for _, s := range ft.Switches() {
		if ft.Level(s) != ft.Height {
			continue
		}
		for _, tm := range terms {
			if !ft.Ancestors(s, tm) {
				t.Fatalf("root not ancestor of terminal %d", tm)
			}
		}
	}
}

func TestXGFTTermIndexBijective(t *testing.T) {
	ft := NewKaryNTree(3, 3, 1e9, 1e-7)
	seen := map[int]bool{}
	for _, tm := range ft.Terminals() {
		idx := ft.TermIndex(tm)
		if idx < 0 || idx >= 27 || seen[idx] {
			t.Fatalf("bad/duplicate terminal index %d", idx)
		}
		seen[idx] = true
	}
}

func TestXGFTDownDigitDescent(t *testing.T) {
	ft := NewKaryNTree(2, 3, 1e9, 1e-7)
	// From any root, repeatedly following DownDigit must reach the target
	// terminal's leaf switch.
	for _, root := range ft.Switches() {
		if ft.Level(root) != ft.Height {
			continue
		}
		for _, tm := range ft.Terminals() {
			cur := root
			for ft.Level(cur) > 1 {
				x := ft.DownDigit(cur, tm)
				l := ft.DownLink(cur, x)
				if l == nil {
					t.Fatalf("no down-link for digit %d", x)
				}
				cur = l.Other(cur)
				if !ft.Ancestors(cur, tm) {
					t.Fatalf("descent left the ancestor set")
				}
			}
			if cur != ft.SwitchOf(tm) {
				t.Fatalf("descent ended at %d, want leaf %d", cur, ft.SwitchOf(tm))
			}
		}
	}
}

func TestPaperFatTreeInventory(t *testing.T) {
	ft := NewPaperFatTree(false, 0)
	if got := ft.NumTerminals(); got != 672 {
		t.Errorf("terminals = %d, want 672", got)
	}
	// XGFT(3; 14,12,4; 1,18,6): 48 + 72 + 108 = 228 switches.
	if got := ft.NumSwitches(); got != 228 {
		t.Errorf("switches = %d, want 228", got)
	}
	term, sw, _ := CountLinks(ft.Graph)
	if term != 672 {
		t.Errorf("terminal links = %d, want 672", term)
	}
	// 48*18 + 72*6 = 864 + 432 = 1296 switch links (paper total 2662 incl.
	// terminal links: ours is 1968+672 = 2640).
	if sw != 1296 {
		t.Errorf("switch links = %d, want 1296", sw)
	}
	// Edge switch radix 14+18 = 32 <= 36 ports.
	for _, s := range ft.Switches() {
		if ft.Level(s) == 1 {
			if p := len(ft.Nodes[s].Ports); p != 32 {
				t.Fatalf("edge switch radix = %d, want 32", p)
			}
		}
	}
	if err := ft.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPaperFatTreeFullBisection(t *testing.T) {
	ft := NewPaperFatTree(false, 0)
	// Upward capacity above the edge level exceeds terminal demand: the
	// tree offers more than full bisection (Sec. 7: "theoretically offers
	// more than full-bisection due to the reduced node count at the
	// leafs"). Check the top-level cut: 432 L2->L3 links >= 336.
	upTop := 0
	for _, s := range ft.Switches() {
		if ft.Level(s) == 2 {
			upTop += ft.NumParents(s)
		}
	}
	if upTop < 336 {
		t.Errorf("top-level capacity %d < full bisection 336", upTop)
	}
}

func TestPaperFatTreeDegraded(t *testing.T) {
	ft := NewPaperFatTree(true, 42)
	_, _, down := CountLinks(ft.Graph)
	if down != PaperFatTreeMissingLinks {
		t.Errorf("down links = %d, want %d", down, PaperFatTreeMissingLinks)
	}
	if Diameter(ft.Graph) < 0 {
		t.Error("degradation disconnected the switch fabric")
	}
}

func TestFatTreeDiameter(t *testing.T) {
	ft := NewPaperFatTree(false, 0)
	// 3-level tree: switch diameter 4 (leaf-up-up-down-down).
	if d := Diameter(ft.Graph); d != 4 {
		t.Errorf("diameter = %d, want 4", d)
	}
}
