package topo

import (
	"fmt"

	"github.com/hpcsim/t2hx/internal/sim"
)

// HyperXConfig describes a HyperX network per Ahn et al. (SC '09): an
// n-dimensional integer lattice with shape S (S[k] switches along dimension
// k), where every pair of switches differing in exactly one coordinate is
// directly connected by K parallel links, and every switch hosts T
// terminals.
type HyperXConfig struct {
	// S is the lattice shape, e.g. {12, 8} for the paper's 2-D 12x8 HyperX.
	S []int
	// K is the link multiplicity between co-aligned switches (per
	// dimension). len(K) == len(S); a nil K means 1 everywhere.
	K []int
	// T is the number of terminals per switch.
	T int
	// Bandwidth is the per-direction link bandwidth in bytes/second.
	Bandwidth float64
	// Latency is the one-way wire latency per link.
	Latency sim.Duration
	// TerminalBandwidth/TerminalLatency configure the switch-to-HCA links;
	// zero values inherit Bandwidth/Latency.
	TerminalBandwidth float64
	TerminalLatency   sim.Duration
}

// HyperX is a built HyperX topology: the port graph plus coordinate lookup
// helpers used by the routing engines (in particular PARX's quadrant
// logic).
type HyperX struct {
	*Graph
	Cfg HyperXConfig
	// SwitchAt maps lattice coordinates (row-major over S) to switch IDs.
	switchAt []NodeID
	strides  []int
}

// NewHyperX builds a HyperX network, panicking on an invalid configuration.
// It is the constructor for hard-coded shapes (the paper planes, tests);
// user-supplied shapes (CLI flags, config files) should go through
// BuildHyperX, which returns the validation problem as an error instead.
func NewHyperX(cfg HyperXConfig) *HyperX {
	hx, err := BuildHyperX(cfg)
	if err != nil {
		panic(err)
	}
	return hx
}

// BuildHyperX validates cfg and builds a HyperX network. Switches are
// created in row-major coordinate order; each switch's T terminals
// immediately follow the coordinate enumeration so that "linear" placement
// fills switch by switch, like hostfiles sorted by rack on the real system.
func BuildHyperX(cfg HyperXConfig) (*HyperX, error) {
	if len(cfg.S) == 0 {
		return nil, fmt.Errorf("topo: HyperX needs at least one dimension")
	}
	for _, s := range cfg.S {
		if s < 2 {
			return nil, fmt.Errorf("topo: HyperX dimensions must be >= 2, got shape %v", cfg.S)
		}
	}
	if cfg.T < 0 {
		return nil, fmt.Errorf("topo: HyperX terminals per switch must be >= 0, got %d", cfg.T)
	}
	if cfg.K == nil {
		cfg.K = make([]int, len(cfg.S))
		for i := range cfg.K {
			cfg.K[i] = 1
		}
	}
	if len(cfg.K) != len(cfg.S) {
		return nil, fmt.Errorf("topo: HyperX K has %d entries for %d dimensions", len(cfg.K), len(cfg.S))
	}
	for _, k := range cfg.K {
		if k < 1 {
			return nil, fmt.Errorf("topo: HyperX link multiplicities must be >= 1, got %v", cfg.K)
		}
	}
	if cfg.Bandwidth <= 0 {
		return nil, fmt.Errorf("topo: HyperX needs positive link bandwidth, got %g", cfg.Bandwidth)
	}
	if cfg.TerminalBandwidth == 0 {
		cfg.TerminalBandwidth = cfg.Bandwidth
	}
	if cfg.TerminalLatency == 0 {
		cfg.TerminalLatency = cfg.Latency
	}

	total := 1
	strides := make([]int, len(cfg.S))
	for i := len(cfg.S) - 1; i >= 0; i-- {
		strides[i] = total
		total *= cfg.S[i]
	}

	name := "hyperx"
	for i, s := range cfg.S {
		if i == 0 {
			name = fmt.Sprintf("hyperx-%d", s)
		} else {
			name += fmt.Sprintf("x%d", s)
		}
	}
	hx := &HyperX{Graph: New(name), Cfg: cfg, strides: strides}
	hx.switchAt = make([]NodeID, total)

	// Switches.
	coord := make([]int, len(cfg.S))
	for idx := 0; idx < total; idx++ {
		unindex(idx, cfg.S, coord)
		sw := hx.AddNode(Switch, fmt.Sprintf("s%v", append([]int{}, coord...)), append([]int{}, coord...)...)
		hx.switchAt[idx] = sw.ID
	}
	// Terminals.
	for idx := 0; idx < total; idx++ {
		sw := hx.switchAt[idx]
		c := hx.Nodes[sw].Coord
		for t := 0; t < cfg.T; t++ {
			term := hx.AddNode(Terminal, fmt.Sprintf("n%v.%d", c, t), append(append([]int{}, c...), t)...)
			hx.Connect(sw, term.ID, cfg.TerminalBandwidth, cfg.TerminalLatency)
		}
	}
	// Dimension links: for each dimension d, fully connect every line.
	for idx := 0; idx < total; idx++ {
		unindex(idx, cfg.S, coord)
		for d := range cfg.S {
			for v := coord[d] + 1; v < cfg.S[d]; v++ {
				other := idx + (v-coord[d])*strides[d]
				for k := 0; k < cfg.K[d]; k++ {
					hx.Connect(hx.switchAt[idx], hx.switchAt[other], cfg.Bandwidth, cfg.Latency)
				}
			}
		}
	}
	return hx, nil
}

// SwitchAt returns the switch at the given lattice coordinates.
func (hx *HyperX) SwitchAt(coord ...int) NodeID {
	if len(coord) != len(hx.Cfg.S) {
		panic("topo: coordinate dimensionality mismatch")
	}
	idx := 0
	for d, c := range coord {
		if c < 0 || c >= hx.Cfg.S[d] {
			panic(fmt.Sprintf("topo: coordinate %v out of range for shape %v", coord, hx.Cfg.S))
		}
		idx += c * hx.strides[d]
	}
	return hx.switchAt[idx]
}

// Coord returns the lattice coordinates of a switch, or of the switch a
// terminal is attached to (construction-time attachment, ignoring
// degradation).
func (hx *HyperX) Coord(n NodeID) []int {
	node := hx.Nodes[n]
	if node.Kind == Switch {
		return node.Coord
	}
	return node.Coord[:len(hx.Cfg.S)]
}

// Dims returns the number of dimensions.
func (hx *HyperX) Dims() int { return len(hx.Cfg.S) }

func unindex(idx int, shape, out []int) {
	for i := len(shape) - 1; i >= 0; i-- {
		out[i] = idx % shape[i]
		idx /= shape[i]
	}
}
