package topo

import "github.com/hpcsim/t2hx/internal/sim"

// QDR InfiniBand constants used throughout the reproduction. A 4X QDR link
// signals at 40 Gbit/s with 8b/10b encoding, i.e. 32 Gbit/s of data; after
// protocol overheads roughly 3.2 GiB/s per direction are usable, which
// lands the simulated mpiGraph numbers near the paper's Fig. 1 (~3 GiB/s
// peak per node pair).
const (
	// QDRBandwidth is the usable per-direction bandwidth of a QDR 4X link
	// in bytes/second.
	QDRBandwidth = 3.2 * 1024 * 1024 * 1024
	// QDRLinkLatency is the one-way per-hop latency: wire plus switch
	// crossing (Voltaire 4036-class silicon is ~100-150 ns/hop).
	QDRLinkLatency sim.Duration = 140 * sim.Nanosecond
)

// PaperHyperXMissingAOCs is the number of absent cables in the paper's
// HyperX plane (15 of 684 inter-switch AOCs, Sec. 2.3).
const PaperHyperXMissingAOCs = 15

// PaperFatTreeMissingLinks is the number of absent cables/internal links in
// the paper's Fat-Tree plane (197 of 2662, Sec. 2.3).
const PaperFatTreeMissingLinks = 197

// NewPaperHyperX builds the paper's 12x8 2-D HyperX: 96 switches, 7
// terminals per switch (672 compute nodes), single QDR link per co-aligned
// switch pair. Its worst-case bisection (cutting the 8-wide dimension) is
// 192/336 = 57.1% — exactly the figure reported in Sec. 2.3.
//
// If degrade is true, 15 inter-switch links are removed using seed, like
// the 15 missing AOCs of the real deployment.
func NewPaperHyperX(degrade bool, seed uint64) *HyperX {
	hx := NewHyperX(HyperXConfig{
		S:         []int{12, 8},
		T:         7,
		Bandwidth: QDRBandwidth,
		Latency:   QDRLinkLatency,
	})
	hx.Name = "t2hx-hyperx-12x8"
	if degrade {
		if _, err := DegradeSwitchLinks(hx.Graph, PaperHyperXMissingAOCs, seed); err != nil {
			// 15 of 684 inter-switch links always fit; a shortfall here means
			// the builder itself is broken.
			panic(err)
		}
	}
	return hx
}

// NewPaperFatTree builds the Fat-Tree plane as XGFT(3; 14,12,4; 1,18,6):
// 48 edge switches hosting 14 nodes each (the paper's per-switch node count
// after undersubscription, cf. Sec. 5.1), 18 uplinks per edge switch as on
// the real Voltaire 4036 edges, 72 middle and 108 top switches — 228
// switches and 2640 links in total, closely tracking the paper's 204
// switches and 2662 links while preserving >100% bisection bandwidth for
// the 672 terminals.
//
// If degrade is true, 197 switch-to-switch links are removed using seed.
func NewPaperFatTree(degrade bool, seed uint64) *FatTree {
	ft := NewXGFT(XGFTConfig{
		M:         []int{14, 12, 4},
		W:         []int{1, 18, 6},
		Bandwidth: QDRBandwidth,
		Latency:   QDRLinkLatency,
	})
	ft.Name = "t2hx-fattree-3level"
	if degrade {
		if _, err := DegradeSwitchLinks(ft.Graph, PaperFatTreeMissingLinks, seed); err != nil {
			panic(err)
		}
	}
	return ft
}
