package topo

import "testing"

func TestBuildHyperXRejectsBadConfigs(t *testing.T) {
	bad := []HyperXConfig{
		{S: nil, T: 1, Bandwidth: 1e9},                         // no dimensions
		{S: []int{4, 1}, T: 1, Bandwidth: 1e9},                 // dimension < 2
		{S: []int{4, 4}, T: -1, Bandwidth: 1e9},                // negative T
		{S: []int{4, 4}, T: 1, K: []int{1}, Bandwidth: 1e9},    // K/S length mismatch
		{S: []int{4, 4}, T: 1, K: []int{1, 0}, Bandwidth: 1e9}, // K entry < 1
		{S: []int{4, 4}, T: 1},                                 // no bandwidth
		{S: []int{4, 4}, T: 1, Bandwidth: -5},                  // negative bandwidth
	}
	for i, cfg := range bad {
		if _, err := BuildHyperX(cfg); err == nil {
			t.Errorf("case %d: BuildHyperX accepted invalid config %+v", i, cfg)
		}
	}
	if _, err := BuildHyperX(HyperXConfig{S: []int{3, 3}, T: 2, Bandwidth: 1e9, Latency: 1e-7}); err != nil {
		t.Errorf("BuildHyperX rejected a valid config: %v", err)
	}
}

func TestBuildXGFTRejectsBadConfigs(t *testing.T) {
	bad := []XGFTConfig{
		{M: nil, W: nil, Bandwidth: 1e9},                 // no levels
		{M: []int{2, 4}, W: []int{1}, Bandwidth: 1e9},    // length mismatch
		{M: []int{2, 4}, W: []int{2, 2}, Bandwidth: 1e9}, // W[0] != 1
		{M: []int{2, 0}, W: []int{1, 2}, Bandwidth: 1e9}, // M entry < 1
		{M: []int{2, 4}, W: []int{1, 2}},                 // no bandwidth
	}
	for i, cfg := range bad {
		if _, err := BuildXGFT(cfg); err == nil {
			t.Errorf("case %d: BuildXGFT accepted invalid config %+v", i, cfg)
		}
	}
	if _, err := BuildXGFT(XGFTConfig{M: []int{2, 4}, W: []int{1, 2}, Bandwidth: 1e9, Latency: 1e-7}); err != nil {
		t.Errorf("BuildXGFT rejected a valid config: %v", err)
	}
}

func TestNewWrappersPanicOnBadConfig(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic on invalid config", name)
			}
		}()
		fn()
	}
	mustPanic("NewHyperX", func() { NewHyperX(HyperXConfig{S: []int{1}, T: 1, Bandwidth: 1e9}) })
	mustPanic("NewXGFT", func() { NewXGFT(XGFTConfig{M: []int{2}, W: []int{2}, Bandwidth: 1e9}) })
}
