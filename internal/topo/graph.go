// Package topo models interconnection-network topologies as port graphs:
// switches and terminals (compute-node HCA ports) joined by bidirectional
// links with bandwidth and latency. It provides builders for the two
// topologies compared by Domke et al. (SC '19) — k-ary n-trees / XGFTs
// ("Fat-Trees") and HyperX lattices — plus the paper's exact 672-node
// deployments, link degradation, and structural metrics (diameter,
// bisection).
package topo

import (
	"fmt"

	"github.com/hpcsim/t2hx/internal/sim"
)

// NodeID identifies a node (switch or terminal) within a Graph.
type NodeID int32

// LinkID identifies a bidirectional link within a Graph.
type LinkID int32

// ChannelID identifies one direction of a link: 2*LinkID for A→B and
// 2*LinkID+1 for B→A. Flow simulation and channel-dependency analysis
// operate on channels.
type ChannelID int32

// Kind distinguishes switches from terminals.
type Kind uint8

const (
	// Switch is a crossbar forwarding element with a forwarding table.
	Switch Kind = iota
	// Terminal is a compute-node network port (an InfiniBand HCA port).
	Terminal
)

func (k Kind) String() string {
	if k == Switch {
		return "switch"
	}
	return "terminal"
}

// Node is a switch or terminal. Ports[i] is the link attached to local port
// i, or nil for an unconnected port.
type Node struct {
	ID    NodeID
	Kind  Kind
	Label string
	// Coord carries topology coordinates: for HyperX switches the lattice
	// position; for tree switches (level, index...); for terminals the
	// coordinates of the attached switch plus the local index.
	Coord []int
	Ports []*Link
}

// Link is a full-duplex cable between two nodes. Each direction has the
// same Bandwidth (bytes/second) and Latency.
type Link struct {
	ID           LinkID
	A, B         NodeID
	APort, BPort int
	Bandwidth    float64 // bytes per second, per direction
	Latency      sim.Duration
	Down         bool // degraded/unplugged (the paper's broken AOCs)
}

// Channel returns the directed channel ID leaving from node `from` over this
// link. It panics if from is not an endpoint.
func (l *Link) Channel(from NodeID) ChannelID {
	switch from {
	case l.A:
		return ChannelID(2 * l.ID)
	case l.B:
		return ChannelID(2*l.ID + 1)
	}
	panic(fmt.Sprintf("topo: node %d is not an endpoint of link %d", from, l.ID))
}

// Other returns the endpoint opposite n.
func (l *Link) Other(n NodeID) NodeID {
	if n == l.A {
		return l.B
	}
	if n == l.B {
		return l.A
	}
	panic(fmt.Sprintf("topo: node %d is not an endpoint of link %d", n, l.ID))
}

// Graph is an interconnection network.
type Graph struct {
	Name      string
	Nodes     []*Node
	Links     []*Link
	terminals []NodeID // cached, in creation order
	switches  []NodeID
	// kindIdx[n] is the node's dense index within its kind slice
	// (terminals or switches), so routing state can live in flat slices
	// instead of map[NodeID] lookups.
	kindIdx []int32
}

// New returns an empty graph with the given name.
func New(name string) *Graph {
	return &Graph{Name: name}
}

// AddNode appends a node of the given kind and returns it.
func (g *Graph) AddNode(kind Kind, label string, coord ...int) *Node {
	n := &Node{ID: NodeID(len(g.Nodes)), Kind: kind, Label: label, Coord: coord}
	g.Nodes = append(g.Nodes, n)
	if kind == Terminal {
		g.kindIdx = append(g.kindIdx, int32(len(g.terminals)))
		g.terminals = append(g.terminals, n.ID)
	} else {
		g.kindIdx = append(g.kindIdx, int32(len(g.switches)))
		g.switches = append(g.switches, n.ID)
	}
	return n
}

// Connect joins a and b with a new link, appending a port on each side.
func (g *Graph) Connect(a, b NodeID, bandwidth float64, latency sim.Duration) *Link {
	if a == b {
		panic("topo: self-link")
	}
	na, nb := g.Nodes[a], g.Nodes[b]
	l := &Link{
		ID: LinkID(len(g.Links)), A: a, B: b,
		APort: len(na.Ports), BPort: len(nb.Ports),
		Bandwidth: bandwidth, Latency: latency,
	}
	g.Links = append(g.Links, l)
	na.Ports = append(na.Ports, l)
	nb.Ports = append(nb.Ports, l)
	return l
}

// Terminals returns the IDs of all terminals in creation order.
func (g *Graph) Terminals() []NodeID { return g.terminals }

// Switches returns the IDs of all switches in creation order.
func (g *Graph) Switches() []NodeID { return g.switches }

// NumTerminals reports the number of terminals.
func (g *Graph) NumTerminals() int { return len(g.terminals) }

// NumSwitches reports the number of switches.
func (g *Graph) NumSwitches() int { return len(g.switches) }

// SwitchIndex returns the dense index of switch n in Switches() order, or
// -1 when n is not a switch. The index is stable for the graph's lifetime,
// making it the canonical key for flat per-switch routing state.
func (g *Graph) SwitchIndex(n NodeID) int {
	if g.Nodes[n].Kind != Switch {
		return -1
	}
	return int(g.kindIdx[n])
}

// TerminalIndex returns the dense index of terminal n in Terminals()
// order, or -1 when n is not a terminal.
func (g *Graph) TerminalIndex(n NodeID) int {
	if g.Nodes[n].Kind != Terminal {
		return -1
	}
	return int(g.kindIdx[n])
}

// Link returns the link for a channel ID.
func (g *Graph) Link(c ChannelID) *Link { return g.Links[c/2] }

// ChannelFrom reports the source node of a directed channel.
func (g *Graph) ChannelFrom(c ChannelID) NodeID {
	l := g.Links[c/2]
	if c%2 == 0 {
		return l.A
	}
	return l.B
}

// ChannelTo reports the destination node of a directed channel.
func (g *Graph) ChannelTo(c ChannelID) NodeID {
	l := g.Links[c/2]
	if c%2 == 0 {
		return l.B
	}
	return l.A
}

// UpLinks returns the live links attached to n.
func (g *Graph) UpLinks(n NodeID) []*Link {
	var out []*Link
	for _, l := range g.Nodes[n].Ports {
		if l != nil && !l.Down {
			out = append(out, l)
		}
	}
	return out
}

// SwitchOf returns the switch a terminal is attached to; terminals have
// exactly one live link by construction. It returns -1 if the terminal is
// isolated (e.g. its link was degraded).
func (g *Graph) SwitchOf(t NodeID) NodeID {
	n := g.Nodes[t]
	if n.Kind != Terminal {
		panic(fmt.Sprintf("topo: SwitchOf(%d): not a terminal", t))
	}
	for _, l := range n.Ports {
		if l != nil && !l.Down {
			return l.Other(t)
		}
	}
	return -1
}

// TerminalsOf returns the terminals attached to switch s.
func (g *Graph) TerminalsOf(s NodeID) []NodeID {
	var out []NodeID
	for _, l := range g.Nodes[s].Ports {
		if l == nil || l.Down {
			continue
		}
		o := l.Other(s)
		if g.Nodes[o].Kind == Terminal {
			out = append(out, o)
		}
	}
	return out
}

// LiveSwitchLinks returns all non-degraded switch-to-switch links.
func (g *Graph) LiveSwitchLinks() []*Link {
	var out []*Link
	for _, l := range g.Links {
		if l.Down {
			continue
		}
		if g.Nodes[l.A].Kind == Switch && g.Nodes[l.B].Kind == Switch {
			out = append(out, l)
		}
	}
	return out
}

// Validate performs structural sanity checks and returns the first problem
// found, or nil.
func (g *Graph) Validate() error {
	for _, n := range g.Nodes {
		if n.Kind == Terminal {
			live := 0
			for _, l := range n.Ports {
				if l != nil && !l.Down {
					live++
				}
			}
			if live > 1 {
				return fmt.Errorf("terminal %s has %d live links, want <= 1", n.Label, live)
			}
		}
		for pi, l := range n.Ports {
			if l == nil {
				continue
			}
			if l.A != n.ID && l.B != n.ID {
				return fmt.Errorf("node %s port %d references foreign link %d", n.Label, pi, l.ID)
			}
		}
	}
	for _, l := range g.Links {
		if g.Nodes[l.A].Ports[l.APort] != l || g.Nodes[l.B].Ports[l.BPort] != l {
			return fmt.Errorf("link %d port back-references broken", l.ID)
		}
		if l.Bandwidth <= 0 {
			return fmt.Errorf("link %d has non-positive bandwidth", l.ID)
		}
	}
	return nil
}
