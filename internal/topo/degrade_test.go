package topo

import (
	"errors"
	"testing"
)

// Regression for the paper's broken-cable counts: both planes must absorb
// the full Sec. 2.3 degradation without a shortfall (and without
// disconnecting the switch fabric).
func TestDegradePaperCountsNoShortfall(t *testing.T) {
	for _, seed := range []uint64{1, 42, 1234} {
		hx := NewPaperHyperX(false, 0)
		downed, err := DegradeSwitchLinks(hx.Graph, PaperHyperXMissingAOCs, seed)
		if err != nil {
			t.Errorf("hyperx seed=%d: %v", seed, err)
		}
		if len(downed) != PaperHyperXMissingAOCs {
			t.Errorf("hyperx seed=%d: downed %d, want %d", seed, len(downed), PaperHyperXMissingAOCs)
		}
		if !switchFabricConnected(hx.Graph) {
			t.Errorf("hyperx seed=%d: switch fabric disconnected", seed)
		}

		ft := NewPaperFatTree(false, 0)
		downed, err = DegradeSwitchLinks(ft.Graph, PaperFatTreeMissingLinks, seed)
		if err != nil {
			t.Errorf("fattree seed=%d: %v", seed, err)
		}
		if len(downed) != PaperFatTreeMissingLinks {
			t.Errorf("fattree seed=%d: downed %d, want %d", seed, len(downed), PaperFatTreeMissingLinks)
		}
		if !switchFabricConnected(ft.Graph) {
			t.Errorf("fattree seed=%d: switch fabric disconnected", seed)
		}
	}
}

// When the request exceeds what connectivity allows, the shortfall must be
// reported, not silently swallowed.
func TestDegradeReportsShortfall(t *testing.T) {
	hx := NewHyperX(HyperXConfig{S: []int{2, 2}, T: 1, Bandwidth: 1e9, Latency: 1e-7})
	total := len(hx.LiveSwitchLinks())
	downed, err := DegradeSwitchLinks(hx.Graph, total, 7)
	if err == nil {
		t.Fatalf("downing all %d switch links reported no shortfall (downed %d)", total, len(downed))
	}
	if !errors.Is(err, ErrDegradeShortfall) {
		t.Errorf("error %v does not wrap ErrDegradeShortfall", err)
	}
	if len(downed) >= total {
		t.Errorf("downed %d of %d links; the fabric cannot stay connected", len(downed), total)
	}
	if !switchFabricConnected(hx.Graph) {
		t.Error("shortfall path disconnected the switch fabric")
	}
	// Degrading more links than exist is also a shortfall, not a crash.
	ft := NewKaryNTree(2, 2, 1e9, 1e-7)
	if _, err := DegradeSwitchLinks(ft.Graph, 10_000, 3); !errors.Is(err, ErrDegradeShortfall) {
		t.Errorf("oversized request: err = %v, want ErrDegradeShortfall", err)
	}
}
