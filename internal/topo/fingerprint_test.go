package topo

import (
	"testing"

	"github.com/hpcsim/t2hx/internal/sim"
)

func TestFingerprintStableAcrossRebuilds(t *testing.T) {
	a := small2DHyperX()
	b := small2DHyperX()
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("two builds of the same topology fingerprint differently: %#x vs %#x",
			a.Fingerprint(), b.Fingerprint())
	}
	if a.DownHash() != b.DownHash() {
		t.Errorf("two healthy builds have different down hashes: %#x vs %#x",
			a.DownHash(), b.DownHash())
	}
}

func TestFingerprintDistinguishesShapes(t *testing.T) {
	a := small2DHyperX()
	b := NewHyperX(HyperXConfig{S: []int{4, 4}, T: 3, Bandwidth: 1e9, Latency: 100 * sim.Nanosecond})
	c := NewHyperX(HyperXConfig{S: []int{8, 2}, T: 2, Bandwidth: 1e9, Latency: 100 * sim.Nanosecond})
	d := NewHyperX(HyperXConfig{S: []int{4, 4}, T: 2, Bandwidth: 2e9, Latency: 100 * sim.Nanosecond})
	fps := map[uint64]string{a.Fingerprint(): "base"}
	for name, g := range map[string]*Graph{"T=3": b.Graph, "8x2": c.Graph, "2x bw": d.Graph} {
		if prev, dup := fps[g.Fingerprint()]; dup {
			t.Errorf("%s aliases %s: fingerprint %#x", name, prev, g.Fingerprint())
		}
		fps[g.Fingerprint()] = name
	}
}

func TestDownHashTracksMaskNotFingerprint(t *testing.T) {
	hx := small2DHyperX()
	fp, dh := hx.Fingerprint(), hx.DownHash()

	degraded, err := DegradeSwitchLinks(hx.Graph, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if hx.Fingerprint() != fp {
		t.Errorf("degrading links changed the structural fingerprint")
	}
	if hx.DownHash() == dh {
		t.Errorf("degrading links did not change DownHash")
	}

	// Different degradation sets must hash differently from each other too.
	dhA := hx.DownHash()
	for _, l := range degraded {
		l.Down = false
	}
	if hx.DownHash() != dh {
		t.Errorf("restoring all links did not restore the original DownHash")
	}
	if _, err := DegradeSwitchLinks(hx.Graph, 5, 7); err != nil {
		t.Fatal(err)
	}
	if hx.DownHash() == dhA {
		t.Errorf("two different degradation sets alias in DownHash")
	}
}

func TestKindIndexesDense(t *testing.T) {
	hx := small2DHyperX()
	for i, s := range hx.Switches() {
		if got := hx.SwitchIndex(s); got != i {
			t.Fatalf("SwitchIndex(%d) = %d, want %d", s, got, i)
		}
		if got := hx.TerminalIndex(s); got != -1 {
			t.Fatalf("TerminalIndex(switch %d) = %d, want -1", s, got)
		}
	}
	for i, term := range hx.Terminals() {
		if got := hx.TerminalIndex(term); got != i {
			t.Fatalf("TerminalIndex(%d) = %d, want %d", term, got, i)
		}
		if got := hx.SwitchIndex(term); got != -1 {
			t.Fatalf("SwitchIndex(terminal %d) = %d, want -1", term, got)
		}
	}
}
