package topo

import "testing"

func TestCostClassification(t *testing.T) {
	g := New("tiny")
	s1 := g.AddNode(Switch, "s1").ID
	s2 := g.AddNode(Switch, "s2").ID
	s3 := g.AddNode(Switch, "s3").ID
	t1 := g.AddNode(Terminal, "t1").ID
	g.Connect(s1, t1, 1e9, 0) // terminal: always copper
	g.Connect(s1, s2, 1e9, 0) // adjacent racks: copper
	g.Connect(s1, s3, 1e9, 0) // distant: AOC
	racks := map[NodeID]int{s1: 0, s2: 1, s3: 5}
	m := DefaultCostModel()
	sum := Cost(g, m, func(sw NodeID) int { return racks[sw] })
	if sum.Copper != 2 || sum.AOCs != 1 {
		t.Errorf("copper/AOC = %d/%d, want 2/1", sum.Copper, sum.AOCs)
	}
	want := 3*m.SwitchCost + 2*m.CopperCost + 1*m.AOCCost
	if sum.Total != want {
		t.Errorf("total = %v, want %v", sum.Total, want)
	}
}

func TestCostNilRackIsWorstCase(t *testing.T) {
	g := New("tiny")
	s1 := g.AddNode(Switch, "s1").ID
	s2 := g.AddNode(Switch, "s2").ID
	g.Connect(s1, s2, 1e9, 0)
	sum := Cost(g, DefaultCostModel(), nil)
	if sum.AOCs != 0 {
		// Adjacent IDs -> rack distance 1 <= reach: copper.
		t.Errorf("adjacent-ID switches should still be copper, AOCs=%d", sum.AOCs)
	}
}

// The paper's cost argument (Sec. 1/2.2): the HyperX plane needs far
// fewer AOCs than the Fat-Tree plane for the same 672 nodes, and fewer
// switches.
func TestPaperCostStructureFavorsHyperX(t *testing.T) {
	hx := NewPaperHyperX(false, 0)
	ft := NewPaperFatTree(false, 0)
	m := DefaultCostModel()
	hxCost := Cost(hx.Graph, m, PaperHyperXRack(hx))
	ftCost := Cost(ft.Graph, m, PaperFatTreeRack(ft))
	t.Logf("HyperX:  %+v", hxCost)
	t.Logf("FatTree: %+v", ftCost)
	if hxCost.Switches >= ftCost.Switches {
		t.Errorf("HyperX uses %d switches vs Fat-Tree %d", hxCost.Switches, ftCost.Switches)
	}
	if hxCost.AOCs >= ftCost.AOCs {
		t.Errorf("HyperX needs %d AOCs vs Fat-Tree %d — cost argument inverted",
			hxCost.AOCs, ftCost.AOCs)
	}
	if hxCost.Total >= ftCost.Total {
		t.Errorf("HyperX total %v not below Fat-Tree %v", hxCost.Total, ftCost.Total)
	}
	// The paper wired 684 AOCs for the HyperX (Sec. 2.3: 15 of 684
	// absent); our packaging model should land in that neighborhood.
	if hxCost.AOCs < 400 || hxCost.AOCs > 900 {
		t.Errorf("HyperX AOC count %d far from the paper's 684", hxCost.AOCs)
	}
}
