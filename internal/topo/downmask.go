package topo

import (
	"fmt"
	"math/bits"

	"github.com/hpcsim/t2hx/internal/sim"
)

// Degraded-topology sweeps generate hundreds of link-failure variants that
// differ from their neighbours by a handful of links. DownMask is the
// incremental representation behind them: a bitset over LinkIDs whose hash
// is maintained as a Zobrist XOR of per-link salts, so flipping one link is
// O(1) including the hash update, and two masks differing in exactly one
// link are guaranteed to hash differently (their hashes differ by that
// link's nonzero salt). Graph.DownHash computes the same function from the
// Down flags, so a mask and the graph it was applied to always agree on the
// cache key.

// LinkDownSalt returns the Zobrist value XORed into DownHash when the link
// is down. Salts are SplitMix64 outputs of the link ID and never zero, the
// property that makes single-link deltas collision-free.
func LinkDownSalt(id LinkID) uint64 {
	s := splitmix64(uint64(uint32(id)) + 1)
	if s == 0 {
		return 0x9e3779b97f4a7c15
	}
	return s
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DownMask is a link-Down bitset with an incrementally maintained Zobrist
// hash. The zero-failure mask hashes to 0, matching Graph.DownHash on a
// healthy graph.
type DownMask struct {
	bits  []uint64
	hash  uint64
	count int
}

// NewDownMask returns an all-up mask sized for numLinks links.
func NewDownMask(numLinks int) *DownMask {
	return &DownMask{bits: make([]uint64, (numLinks+63)/64)}
}

// CaptureDownMask snapshots the graph's current Down flags into a mask.
func CaptureDownMask(g *Graph) *DownMask {
	m := NewDownMask(len(g.Links))
	for _, l := range g.Links {
		if l.Down {
			m.Set(l.ID, true)
		}
	}
	return m
}

// Get reports whether the mask has the link down.
func (m *DownMask) Get(id LinkID) bool {
	return m.bits[id/64]&(1<<(uint(id)%64)) != 0
}

// Set flips the link's Down bit to the given state, updating hash and count
// in O(1). Setting a bit to its current value is a no-op.
func (m *DownMask) Set(id LinkID, down bool) {
	bit := uint64(1) << (uint(id) % 64)
	cur := m.bits[id/64]&bit != 0
	if cur == down {
		return
	}
	m.bits[id/64] ^= bit
	m.hash ^= LinkDownSalt(id)
	if down {
		m.count++
	} else {
		m.count--
	}
}

// Hash returns the Zobrist hash of the down set. Together with
// Graph.Fingerprint it keys exp.TableCache.
func (m *DownMask) Hash() uint64 { return m.hash }

// Count returns the number of down links.
func (m *DownMask) Count() int { return m.count }

// Clone returns an independent copy.
func (m *DownMask) Clone() *DownMask {
	return &DownMask{bits: append([]uint64(nil), m.bits...), hash: m.hash, count: m.count}
}

// Apply programs the graph's Down flags to match the mask, touching only
// links whose state differs, and returns the number of flips. The graph
// must have at least as many links as the mask covers bits for.
func (m *DownMask) Apply(g *Graph) int {
	flips := 0
	for _, l := range g.Links {
		want := m.Get(l.ID)
		if l.Down != want {
			l.Down = want
			flips++
		}
	}
	return flips
}

// ApplyDelta programs the graph from a known previous state: only links on
// which m and prev disagree are touched, making consecutive sweep variants
// O(delta) instead of O(links). The caller guarantees the graph's Down
// flags currently equal prev; the return value is the number of flips.
func (m *DownMask) ApplyDelta(g *Graph, prev *DownMask) int {
	flips := 0
	for w := range m.bits {
		diff := m.bits[w] ^ prev.bits[w]
		for diff != 0 {
			id := LinkID(w*64 + bits.TrailingZeros64(diff))
			diff &= diff - 1
			g.Links[id].Down = m.Get(id)
			flips++
		}
	}
	return flips
}

// DegradeChain plans an ordered chain of n switch-link failures that keeps
// the switch fabric connected at EVERY prefix: the first f links of the
// chain are a valid f-failure variant for any f <= n, because removing a
// subset of a connectivity-preserving down set leaves a supergraph of a
// connected graph. Degraded sweeps exploit this nesting — consecutive
// failure counts of one seeded variant differ by exactly the next chain
// link, so DownMask deltas and TableCache keys stay incremental.
//
// Unlike DegradeSwitchLinks the graph is left untouched (probe links are
// restored before returning); the caller applies prefixes via DownMask.
// A shortfall (connectivity vetoed too many candidates) returns the partial
// chain and an error wrapping ErrDegradeShortfall.
func DegradeChain(g *Graph, n int, seed uint64) ([]LinkID, error) {
	rng := sim.NewRand(seed)
	candidates := g.LiveSwitchLinks()
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	var chain []LinkID
	var probed []*Link
	for _, l := range candidates {
		if len(chain) == n {
			break
		}
		l.Down = true
		if switchFabricConnected(g) {
			chain = append(chain, l.ID)
			probed = append(probed, l)
		} else {
			l.Down = false
		}
	}
	for _, l := range probed {
		l.Down = false
	}
	if len(chain) < n {
		return chain, fmt.Errorf("topo: %w: chained %d of %d requested switch links",
			ErrDegradeShortfall, len(chain), n)
	}
	return chain, nil
}
