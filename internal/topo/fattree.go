package topo

import (
	"fmt"

	"github.com/hpcsim/t2hx/internal/sim"
)

// XGFTConfig describes an eXtended Generalized Fat-Tree XGFT(h; m1..mh;
// w1..wh) after Öhring et al.: a tree of height h where each level-i node
// has M[i-1] children and W[i] parents (terminals are level 0, switches
// levels 1..h). A k-ary n-tree (Petrini/Vanneschi) is XGFT(n; k..k; 1,k..k).
type XGFTConfig struct {
	// M[i] is the child count of level-(i+1) nodes; M[0] is terminals per
	// leaf switch.
	M []int
	// W[i] is the parent count of level-i nodes; W[0] applies to terminals
	// and is almost always 1.
	W []int
	// Bandwidth is per-direction link bandwidth in bytes/second (all
	// levels).
	Bandwidth float64
	// Latency is the one-way wire latency per link.
	Latency sim.Duration
}

// FatTree is a built XGFT with the coordinate bookkeeping the ftree routing
// engine needs.
type FatTree struct {
	*Graph
	Cfg XGFTConfig

	// Height is the number of switch levels.
	Height int
	// level[n] is 0 for terminals and 1..h for switches.
	level []int
	// xcoord[n] for a level-i node holds (x_{i+1}, ..., x_h): the digits
	// that identify which subtree the node roots. ycoord[n] holds
	// (y_1, ..., y_i): which "plane" of redundant switches it sits in.
	xcoord [][]int
	ycoord [][]int
	// upPorts[n][y] is the link from node n to its parent with y_{i+1}=y.
	upPorts [][]*Link
	// downPorts[n][x] is the link from node n to its child with x_i=x.
	downPorts [][]*Link
	// termIndex[t] is the linear index of terminal t (mixed-radix over M).
	termIndex map[NodeID]int
}

// NewXGFT builds an XGFT, panicking on an invalid configuration. It is the
// constructor for hard-coded shapes (the paper planes, tests);
// user-supplied shapes should go through BuildXGFT, which returns the
// validation problem as an error instead.
func NewXGFT(cfg XGFTConfig) *FatTree {
	ft, err := BuildXGFT(cfg)
	if err != nil {
		panic(err)
	}
	return ft
}

// BuildXGFT validates cfg and builds an XGFT. Terminals are created in
// linear-index order so that "linear" rank placement matches consecutive
// leaf switches.
func BuildXGFT(cfg XGFTConfig) (*FatTree, error) {
	h := len(cfg.M)
	if h == 0 || len(cfg.W) != h {
		return nil, fmt.Errorf("topo: XGFT needs len(M) == len(W) >= 1, got M=%v W=%v", cfg.M, cfg.W)
	}
	if cfg.W[0] != 1 {
		return nil, fmt.Errorf("topo: XGFT with W[0] != 1 (multi-homed terminals) is not supported, got W=%v", cfg.W)
	}
	for i, m := range cfg.M {
		if m < 1 {
			return nil, fmt.Errorf("topo: XGFT child counts must be >= 1, got M=%v", cfg.M)
		}
		if cfg.W[i] < 1 {
			return nil, fmt.Errorf("topo: XGFT parent counts must be >= 1, got W=%v", cfg.W)
		}
	}
	if cfg.Bandwidth <= 0 {
		return nil, fmt.Errorf("topo: XGFT needs positive link bandwidth, got %g", cfg.Bandwidth)
	}

	ft := &FatTree{
		Graph:     New(fmt.Sprintf("xgft-h%d", h)),
		Cfg:       cfg,
		Height:    h,
		termIndex: make(map[NodeID]int),
	}

	// Enumerate nodes level by level. A level-i node is identified by
	// (x_{i+1..h}, y_{1..i}).
	ids := make([]map[string]NodeID, h+1)
	for i := range ids {
		ids[i] = make(map[string]NodeID)
	}
	key := func(xs, ys []int) string { return fmt.Sprint(xs, ys) }

	// Terminals (level 0): all (x_1..x_h).
	xs := make([]int, h)
	var enumerate func(level int, makeNode func(xs, ys []int))
	enumerate = func(level int, makeNode func(xs, ys []int)) {
		// x digits run over M[level..h-1], y digits over W[0..level-1].
		nx := h - level
		ny := level
		xdig := make([]int, nx)
		ydig := make([]int, ny)
		var recX func(i int)
		var recY func(i int)
		recY = func(i int) {
			if i == ny {
				makeNode(append([]int{}, xdig...), append([]int{}, ydig...))
				return
			}
			for v := 0; v < cfg.W[i]; v++ {
				ydig[i] = v
				recY(i + 1)
			}
		}
		recX = func(i int) {
			if i == nx {
				recY(0)
				return
			}
			for v := 0; v < cfg.M[level+i]; v++ {
				xdig[i] = v
				recX(i + 1)
			}
		}
		recX(0)
	}
	_ = xs

	for level := 0; level <= h; level++ {
		lv := level
		enumerate(lv, func(xds, yds []int) {
			kind := Switch
			label := fmt.Sprintf("L%d%v%v", lv, xds, yds)
			if lv == 0 {
				kind = Terminal
				label = fmt.Sprintf("t%v", xds)
			}
			n := ft.AddNode(kind, label)
			ft.level = append(ft.level, lv)
			ft.xcoord = append(ft.xcoord, xds)
			ft.ycoord = append(ft.ycoord, yds)
			ids[lv][key(xds, yds)] = n.ID
			if lv == 0 {
				// Linear index: mixed radix, x_1 least significant.
				idx := 0
				for i := h - 1; i >= 0; i-- {
					idx = idx*cfg.M[i] + xds[i]
				}
				ft.termIndex[n.ID] = idx
			}
		})
	}
	ft.upPorts = make([][]*Link, len(ft.Nodes))
	ft.downPorts = make([][]*Link, len(ft.Nodes))

	// Links: level-i node (x_{i+1..h}; y_{1..i}) connects to level-(i+1)
	// node (x_{i+2..h}; y_{1..i+1}) for every y_{i+1} in [0, W[i]).
	for lv := 0; lv < h; lv++ {
		for _, nid := range ft.nodesAtLevel(lv) {
			xds, yds := ft.xcoord[nid], ft.ycoord[nid]
			ft.upPorts[nid] = make([]*Link, cfg.W[lv])
			for y := 0; y < cfg.W[lv]; y++ {
				pxs := xds[1:]
				pys := append(append([]int{}, yds...), y)
				pid, ok := ids[lv+1][key(pxs, pys)]
				if !ok {
					panic(fmt.Sprintf("topo: XGFT parent %v %v missing at level %d", pxs, pys, lv+1))
				}
				l := ft.Connect(nid, pid, cfg.Bandwidth, cfg.Latency)
				ft.upPorts[nid][y] = l
				if ft.downPorts[pid] == nil {
					ft.downPorts[pid] = make([]*Link, cfg.M[lv])
				}
				ft.downPorts[pid][xds[0]] = l
			}
		}
	}
	return ft, nil
}

func (ft *FatTree) nodesAtLevel(lv int) []NodeID {
	var out []NodeID
	for id, l := range ft.level {
		if l == lv {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// NewKaryNTree builds a k-ary n-tree (Petrini & Vanneschi), e.g. the 4-ary
// 2-tree of the paper's Fig. 2a, as XGFT(n; k..k; 1,k..k).
func NewKaryNTree(k, n int, bandwidth float64, latency sim.Duration) *FatTree {
	m := make([]int, n)
	w := make([]int, n)
	for i := range m {
		m[i] = k
		w[i] = k
	}
	w[0] = 1
	ft := NewXGFT(XGFTConfig{M: m, W: w, Bandwidth: bandwidth, Latency: latency})
	ft.Name = fmt.Sprintf("%d-ary-%d-tree", k, n)
	return ft
}

// Level reports a node's tree level: 0 for terminals, 1..h for switches.
func (ft *FatTree) Level(n NodeID) int { return ft.level[n] }

// XCoord returns (x_{i+1..h}) for a level-i node: the subtree digits.
func (ft *FatTree) XCoord(n NodeID) []int { return ft.xcoord[n] }

// YCoord returns (y_{1..i}) for a level-i node: the redundancy digits.
func (ft *FatTree) YCoord(n NodeID) []int { return ft.ycoord[n] }

// TermIndex returns the linear index of a terminal.
func (ft *FatTree) TermIndex(t NodeID) int { return ft.termIndex[t] }

// UpLink returns the link from n to its parent number y, or nil when y is
// out of range. The link may be Down.
func (ft *FatTree) UpLink(n NodeID, y int) *Link {
	ups := ft.upPorts[n]
	if y < 0 || y >= len(ups) {
		return nil
	}
	return ups[y]
}

// NumParents reports the number of up-links of node n.
func (ft *FatTree) NumParents(n NodeID) int { return len(ft.upPorts[n]) }

// DownLink returns the link from switch n to its child with x-digit x, or
// nil. The link may be Down.
func (ft *FatTree) DownLink(n NodeID, x int) *Link {
	downs := ft.downPorts[n]
	if x < 0 || x >= len(downs) {
		return nil
	}
	return downs[x]
}

// NumChildren reports the number of down-links of switch n.
func (ft *FatTree) NumChildren(n NodeID) int { return len(ft.downPorts[n]) }

// Ancestors reports whether switch s (level i) is an ancestor of terminal t:
// the x-suffixes beyond level i must match.
func (ft *FatTree) Ancestors(s NodeID, t NodeID) bool {
	lv := ft.level[s]
	sx := ft.xcoord[s] // (x_{lv+1..h})
	tx := ft.xcoord[t] // (x_1..h)
	for i := range sx {
		if sx[i] != tx[lv+i] {
			return false
		}
	}
	return true
}

// DownDigit returns the child x-digit a packet at level-i switch s must take
// to descend toward terminal t. Callers must ensure Ancestors(s, t).
func (ft *FatTree) DownDigit(s NodeID, t NodeID) int {
	lv := ft.level[s]
	return ft.xcoord[t][lv-1]
}
