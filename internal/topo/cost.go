package topo

// Cost-structure analysis behind the paper's motivation (Sec. 1/2.2):
// Folded-Clos networks force most links onto active optical cables (AOCs)
// with a "prohibitive cost-structure at scale", while a HyperX packs each
// dimension into a physical packaging domain so a large share of links
// stay on cheap passive copper (the brown intra-rack cables of Fig. 2c),
// and half-bisection designs cut the cable count further.

// CableClass distinguishes cheap passive copper from active optics.
type CableClass uint8

const (
	// Copper is a passive DAC: short reach, cheap.
	Copper CableClass = iota
	// AOC is an active optical cable: long reach, the dominant cost.
	AOC
)

// CostModel prices network components; values are relative units
// (defaults roughly follow QDR-era street prices: an AOC cost several
// times a DAC, and an edge switch about thirty DACs).
type CostModel struct {
	SwitchCost float64
	CopperCost float64
	AOCCost    float64
	// CopperReach is the maximum rack distance a passive cable can span
	// (in "rack units" of the layout); longer links need AOCs.
	CopperReach int
}

// DefaultCostModel returns QDR-era relative prices.
func DefaultCostModel() CostModel {
	return CostModel{SwitchCost: 30, CopperCost: 1, AOCCost: 6, CopperReach: 1}
}

// CostSummary is the bill of materials of one network plane.
type CostSummary struct {
	Switches int
	Copper   int
	AOCs     int
	Total    float64
}

// rackOf assigns switches to racks by a layout function; nil means every
// switch sits in its own rack (worst case for copper).
type rackOf func(sw NodeID) int

// Cost computes the bill of materials for a plane given a rack layout.
// Terminal links are always copper (node to in-rack edge switch).
func Cost(g *Graph, m CostModel, rack rackOf) CostSummary {
	if rack == nil {
		rack = func(sw NodeID) int { return int(sw) }
	}
	s := CostSummary{Switches: g.NumSwitches()}
	for _, l := range g.Links {
		a, b := g.Nodes[l.A], g.Nodes[l.B]
		if a.Kind == Terminal || b.Kind == Terminal {
			s.Copper++
			continue
		}
		d := rack(l.A) - rack(l.B)
		if d < 0 {
			d = -d
		}
		if d <= m.CopperReach {
			s.Copper++
		} else {
			s.AOCs++
		}
	}
	s.Total = float64(s.Switches)*m.SwitchCost +
		float64(s.Copper)*m.CopperCost + float64(s.AOCs)*m.AOCCost
	return s
}

// PaperHyperXRack maps the 12x8 HyperX onto the paper's packaging: four
// switches per rack (Fig. 2c), racks laid out along dimension 0 — so
// dimension-1 links inside a rack column stay mostly short while
// dimension-0 links cross the row of racks.
func PaperHyperXRack(hx *HyperX) func(sw NodeID) int {
	return func(sw NodeID) int {
		c := hx.Nodes[sw].Coord
		// 24 racks: rack = x*2 + y/4 (two racks per column of 8).
		return c[0]*2 + c[1]/4
	}
}

// PaperFatTreeRack places the 48 edge switches two per rack with their
// nodes and pools every director-internal switch in a central row —
// making every edge-to-director link an AOC, as on the real system.
func PaperFatTreeRack(ft *FatTree) func(sw NodeID) int {
	racks := make(map[NodeID]int)
	edge := 0
	for _, s := range ft.Switches() {
		if ft.Level(s) == 1 {
			racks[s] = edge / 2
			edge++
		} else {
			racks[s] = 1000 // director row, far from all compute racks
		}
	}
	return func(sw NodeID) int { return racks[sw] }
}
