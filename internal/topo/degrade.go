package topo

import (
	"errors"
	"fmt"

	"github.com/hpcsim/t2hx/internal/sim"
)

// ErrDegradeShortfall reports that DegradeSwitchLinks could not take down the
// requested number of links without disconnecting the switch fabric.
var ErrDegradeShortfall = errors.New("degradation shortfall")

// DegradeSwitchLinks marks n randomly chosen switch-to-switch links as Down,
// modelling the broken/absent AOCs of the paper's deployment (Sec. 2.3).
// Terminal links are never degraded (a node with a broken HCA cable was
// simply replaced on the real system). Degradation never disconnects the
// switch fabric: candidates whose removal would disconnect it are skipped.
//
// Contract: the returned slice holds the links actually taken down, which
// may be fewer than n when connectivity vetoes candidates. In that case the
// error wraps ErrDegradeShortfall; callers that merely want "as degraded as
// possible" may ignore it, but anything reproducing an exact broken-cable
// count must check it.
func DegradeSwitchLinks(g *Graph, n int, seed uint64) ([]*Link, error) {
	rng := sim.NewRand(seed)
	candidates := g.LiveSwitchLinks()
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	var downed []*Link
	for _, l := range candidates {
		if len(downed) == n {
			break
		}
		l.Down = true
		if switchFabricConnected(g) {
			downed = append(downed, l)
		} else {
			l.Down = false
		}
	}
	if len(downed) < n {
		return downed, fmt.Errorf("topo: %w: downed %d of %d requested switch links",
			ErrDegradeShortfall, len(downed), n)
	}
	return downed, nil
}

// SwitchFabricConnected reports whether all switches remain mutually
// reachable over live links — the invariant degradation and runtime fault
// planning both preserve.
func SwitchFabricConnected(g *Graph) bool { return switchFabricConnected(g) }

// switchFabricConnected reports whether all switches remain mutually
// reachable over live links.
func switchFabricConnected(g *Graph) bool {
	switches := g.Switches()
	if len(switches) == 0 {
		return true
	}
	seen := make(map[NodeID]bool, len(switches))
	stack := []NodeID{switches[0]}
	seen[switches[0]] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, l := range g.Nodes[cur].Ports {
			if l == nil || l.Down {
				continue
			}
			o := l.Other(cur)
			if g.Nodes[o].Kind != Switch || seen[o] {
				continue
			}
			seen[o] = true
			stack = append(stack, o)
		}
	}
	return len(seen) == len(switches)
}
