package topo

import "github.com/hpcsim/t2hx/internal/sim"

// DegradeSwitchLinks marks n randomly chosen switch-to-switch links as Down,
// modelling the broken/absent AOCs of the paper's deployment (Sec. 2.3).
// Terminal links are never degraded (a node with a broken HCA cable was
// simply replaced on the real system). Degradation never disconnects the
// switch fabric: candidates whose removal would disconnect it are skipped.
// It returns the links actually taken down.
func DegradeSwitchLinks(g *Graph, n int, seed uint64) []*Link {
	rng := sim.NewRand(seed)
	candidates := g.LiveSwitchLinks()
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	var downed []*Link
	for _, l := range candidates {
		if len(downed) == n {
			break
		}
		l.Down = true
		if switchFabricConnected(g) {
			downed = append(downed, l)
		} else {
			l.Down = false
		}
	}
	return downed
}

// switchFabricConnected reports whether all switches remain mutually
// reachable over live links.
func switchFabricConnected(g *Graph) bool {
	switches := g.Switches()
	if len(switches) == 0 {
		return true
	}
	seen := make(map[NodeID]bool, len(switches))
	stack := []NodeID{switches[0]}
	seen[switches[0]] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, l := range g.Nodes[cur].Ports {
			if l == nil || l.Down {
				continue
			}
			o := l.Other(cur)
			if g.Nodes[o].Kind != Switch || seen[o] {
				continue
			}
			seen[o] = true
			stack = append(stack, o)
		}
	}
	return len(seen) == len(switches)
}
