package topo

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/hpcsim/t2hx/internal/sim"
)

func small2DHyperX() *HyperX {
	return NewHyperX(HyperXConfig{S: []int{4, 4}, T: 2, Bandwidth: 1e9, Latency: 100 * sim.Nanosecond})
}

func TestHyperXCounts(t *testing.T) {
	hx := small2DHyperX()
	if got := hx.NumSwitches(); got != 16 {
		t.Errorf("switches = %d, want 16", got)
	}
	if got := hx.NumTerminals(); got != 32 {
		t.Errorf("terminals = %d, want 32", got)
	}
	// Per dimension line of 4 switches: C(4,2)=6 links; 4 rows + 4 cols =
	// 8 lines -> 48 switch links; plus 32 terminal links.
	term, sw, down := CountLinks(hx.Graph)
	if sw != 48 {
		t.Errorf("switch links = %d, want 48", sw)
	}
	if term != 32 {
		t.Errorf("terminal links = %d, want 32", term)
	}
	if down != 0 {
		t.Errorf("down links = %d, want 0", down)
	}
	if err := hx.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHyperXFullConnectivityPerDimension(t *testing.T) {
	hx := small2DHyperX()
	// Every pair of switches differing in exactly one coordinate must share
	// exactly one link; pairs differing in both must share none.
	adj := make(map[[2]NodeID]int)
	for _, l := range hx.LiveSwitchLinks() {
		a, b := l.A, l.B
		if a > b {
			a, b = b, a
		}
		adj[[2]NodeID{a, b}]++
	}
	for x1 := 0; x1 < 4; x1++ {
		for y1 := 0; y1 < 4; y1++ {
			for x2 := 0; x2 < 4; x2++ {
				for y2 := 0; y2 < 4; y2++ {
					a, b := hx.SwitchAt(x1, y1), hx.SwitchAt(x2, y2)
					if a >= b {
						continue
					}
					want := 0
					if (x1 == x2) != (y1 == y2) { // differ in exactly one dim
						want = 1
					}
					if got := adj[[2]NodeID{a, b}]; got != want {
						t.Fatalf("links between (%d,%d)-(%d,%d) = %d, want %d", x1, y1, x2, y2, got, want)
					}
				}
			}
		}
	}
}

func TestHyperXDiameterEqualsDimensions(t *testing.T) {
	hx := small2DHyperX()
	if d := Diameter(hx.Graph); d != 2 {
		t.Errorf("2-D HyperX diameter = %d, want 2", d)
	}
	hx3 := NewHyperX(HyperXConfig{S: []int{3, 3, 3}, T: 1, Bandwidth: 1e9, Latency: 1e-7})
	if d := Diameter(hx3.Graph); d != 3 {
		t.Errorf("3-D HyperX diameter = %d, want 3", d)
	}
}

func TestHyperXLinkMultiplicity(t *testing.T) {
	hx := NewHyperX(HyperXConfig{S: []int{2, 3}, K: []int{2, 1}, T: 1, Bandwidth: 1e9, Latency: 1e-7})
	// Dimension 0 lines (3 of them, each a single pair) have K=2 links:
	// 3*1*2 = 6; dimension 1 lines (2 lines of 3 switches): 2*3*1 = 6.
	_, sw, _ := CountLinks(hx.Graph)
	if sw != 12 {
		t.Errorf("switch links = %d, want 12", sw)
	}
}

func TestHyperXSwitchAtRoundTrip(t *testing.T) {
	hx := small2DHyperX()
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			id := hx.SwitchAt(x, y)
			c := hx.Coord(id)
			if c[0] != x || c[1] != y {
				t.Fatalf("Coord(SwitchAt(%d,%d)) = %v", x, y, c)
			}
		}
	}
}

func TestHyperXTerminalCoord(t *testing.T) {
	hx := small2DHyperX()
	for _, term := range hx.Terminals() {
		sw := hx.SwitchOf(term)
		tc := hx.Coord(term)
		sc := hx.Coord(sw)
		if tc[0] != sc[0] || tc[1] != sc[1] {
			t.Fatalf("terminal coord %v != its switch coord %v", tc, sc)
		}
	}
}

func TestPaperHyperXInventory(t *testing.T) {
	hx := NewPaperHyperX(false, 0)
	if hx.NumSwitches() != 96 {
		t.Errorf("switches = %d, want 96 (Sec. 2.3)", hx.NumSwitches())
	}
	if hx.NumTerminals() != 672 {
		t.Errorf("terminals = %d, want 672 (Sec. 2.3)", hx.NumTerminals())
	}
	// Inter-switch links: rows 8*C(12,2)=528 + cols 12*C(8,2)=336 = 864.
	_, sw, _ := CountLinks(hx.Graph)
	if sw != 864 {
		t.Errorf("switch links = %d, want 864", sw)
	}
	// Switch radix: 11 + 7 + 7 = 25 ports, within a 36-port Voltaire 4036.
	for _, s := range hx.Switches() {
		if p := len(hx.Nodes[s].Ports); p != 25 {
			t.Fatalf("switch %d radix = %d, want 25", s, p)
		}
	}
	if err := hx.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPaperHyperXBisection571(t *testing.T) {
	hx := NewPaperHyperX(false, 0)
	got := HyperXWorstBisection(hx)
	want := 4.0 / 7.0 // 57.1% per Sec. 2.3
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("worst bisection = %.4f, want %.4f (57.1%%)", got, want)
	}
}

func TestPaperHyperXDegraded(t *testing.T) {
	hx := NewPaperHyperX(true, 42)
	_, _, down := CountLinks(hx.Graph)
	if down != PaperHyperXMissingAOCs {
		t.Errorf("down links = %d, want %d", down, PaperHyperXMissingAOCs)
	}
	if Diameter(hx.Graph) < 0 {
		t.Error("degradation disconnected the switch fabric")
	}
}

func TestDegradeIsSeededDeterministic(t *testing.T) {
	a := NewPaperHyperX(true, 7)
	b := NewPaperHyperX(true, 7)
	for i := range a.Links {
		if a.Links[i].Down != b.Links[i].Down {
			t.Fatal("same seed degraded different links")
		}
	}
}

func TestDegradeNeverKillsTerminalLinks(t *testing.T) {
	g := NewPaperHyperX(true, 3)
	for _, l := range g.Links {
		if l.Down && (g.Nodes[l.A].Kind == Terminal || g.Nodes[l.B].Kind == Terminal) {
			t.Fatal("terminal link degraded")
		}
	}
}

// Property: any 2-D HyperX with even dims has worst bisection
// min(S0,S1)/2 * other * ... ratio — verify against the analytic formula
// cross = S_other * (S_d/2)^2 links over T*N/2 terminal links.
func TestHyperXBisectionFormula(t *testing.T) {
	f := func(a, b, tt uint8) bool {
		s0 := 2 + 2*int(a%3) // 2,4,6
		s1 := 2 + 2*int(b%3)
		T := 1 + int(tt%4)
		hx := NewHyperX(HyperXConfig{S: []int{s0, s1}, T: T, Bandwidth: 1e9, Latency: 1e-7})
		got := HyperXWorstBisection(hx)
		f0 := float64(s1*(s0/2)*(s0/2)) / float64(T*s0*s1/2)
		f1 := float64(s0*(s1/2)*(s1/2)) / float64(T*s0*s1/2)
		want := math.Min(f0, f1)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
