package topo

// Structural metrics used to validate the built topologies against the
// numbers the paper reports in Sec. 2.2/2.3.

// HopDistances returns, for a source switch, the minimal switch-hop count to
// every other switch over live links (BFS). Unreachable switches get -1.
func HopDistances(g *Graph, src NodeID) map[NodeID]int {
	dist := map[NodeID]int{src: 0}
	frontier := []NodeID{src}
	for len(frontier) > 0 {
		var next []NodeID
		for _, cur := range frontier {
			for _, l := range g.Nodes[cur].Ports {
				if l == nil || l.Down {
					continue
				}
				o := l.Other(cur)
				if g.Nodes[o].Kind != Switch {
					continue
				}
				if _, ok := dist[o]; ok {
					continue
				}
				dist[o] = dist[cur] + 1
				next = append(next, o)
			}
		}
		frontier = next
	}
	for _, s := range g.Switches() {
		if _, ok := dist[s]; !ok {
			dist[s] = -1
		}
	}
	return dist
}

// Diameter returns the maximal minimal switch-hop distance between any two
// switches, or -1 if the switch fabric is disconnected.
func Diameter(g *Graph) int {
	max := 0
	for _, s := range g.Switches() {
		for _, d := range HopDistances(g, s) {
			if d < 0 {
				return -1
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

// BisectionRatio computes the bandwidth of a bisection cut relative to full
// bisection (N/2 terminal-link bandwidths for N terminals). The cut is
// specified by a predicate assigning each switch to side A (true) or B
// (false); only live switch-to-switch links crossing the cut count.
func BisectionRatio(g *Graph, sideA func(sw NodeID) bool) float64 {
	var cross float64
	for _, l := range g.LiveSwitchLinks() {
		if sideA(l.A) != sideA(l.B) {
			cross += l.Bandwidth
		}
	}
	n := g.NumTerminals()
	if n == 0 {
		return 0
	}
	// Reference: half the terminals injecting at terminal-link bandwidth.
	var full float64
	terms := g.Terminals()
	for _, t := range terms[:n/2] {
		for _, l := range g.Nodes[t].Ports {
			if l != nil && !l.Down {
				full += l.Bandwidth
			}
		}
	}
	if full == 0 {
		return 0
	}
	return cross / full
}

// HyperXWorstBisection returns the worst coordinate-aligned bisection ratio
// of a HyperX (cutting each even dimension in half). For the paper's 12x8
// this is 4/7 = 57.1%.
func HyperXWorstBisection(hx *HyperX) float64 {
	worst := -1.0
	for d, s := range hx.Cfg.S {
		if s%2 != 0 {
			continue
		}
		half := s / 2
		r := BisectionRatio(hx.Graph, func(sw NodeID) bool {
			return hx.Nodes[sw].Coord[d] < half
		})
		if worst < 0 || r < worst {
			worst = r
		}
	}
	return worst
}

// CountLinks returns (terminalLinks, switchLinks, downLinks).
func CountLinks(g *Graph) (term, sw, down int) {
	for _, l := range g.Links {
		if l.Down {
			down++
			continue
		}
		if g.Nodes[l.A].Kind == Terminal || g.Nodes[l.B].Kind == Terminal {
			term++
		} else {
			sw++
		}
	}
	return
}
