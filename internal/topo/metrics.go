package topo

import "fmt"

// Structural metrics used to validate the built topologies against the
// numbers the paper reports in Sec. 2.2/2.3.

// HopDistances returns, for a source switch, the minimal switch-hop count to
// every other switch over live links (BFS). Unreachable switches get -1.
func HopDistances(g *Graph, src NodeID) map[NodeID]int {
	dist := map[NodeID]int{src: 0}
	frontier := []NodeID{src}
	for len(frontier) > 0 {
		var next []NodeID
		for _, cur := range frontier {
			for _, l := range g.Nodes[cur].Ports {
				if l == nil || l.Down {
					continue
				}
				o := l.Other(cur)
				if g.Nodes[o].Kind != Switch {
					continue
				}
				if _, ok := dist[o]; ok {
					continue
				}
				dist[o] = dist[cur] + 1
				next = append(next, o)
			}
		}
		frontier = next
	}
	for _, s := range g.Switches() {
		if _, ok := dist[s]; !ok {
			dist[s] = -1
		}
	}
	return dist
}

// Diameter returns the maximal minimal switch-hop distance between any two
// switches, or -1 if the switch fabric is disconnected.
func Diameter(g *Graph) int {
	max := 0
	for _, s := range g.Switches() {
		for _, d := range HopDistances(g, s) {
			if d < 0 {
				return -1
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

// BisectionRatio computes the bandwidth of a bisection cut relative to full
// bisection (N/2 terminal-link bandwidths for N terminals). The cut is
// specified by a predicate assigning each switch to side A (true) or B
// (false); only live switch-to-switch links crossing the cut count.
func BisectionRatio(g *Graph, sideA func(sw NodeID) bool) float64 {
	var cross float64
	for _, l := range g.LiveSwitchLinks() {
		if sideA(l.A) != sideA(l.B) {
			cross += l.Bandwidth
		}
	}
	n := g.NumTerminals()
	if n == 0 {
		return 0
	}
	// Reference: half the terminals injecting at terminal-link bandwidth.
	var full float64
	terms := g.Terminals()
	for _, t := range terms[:n/2] {
		for _, l := range g.Nodes[t].Ports {
			if l != nil && !l.Down {
				full += l.Bandwidth
			}
		}
	}
	if full == 0 {
		return 0
	}
	return cross / full
}

// HyperXWorstBisection returns the worst coordinate-aligned bisection ratio
// of a HyperX (cutting each even dimension in half). For the paper's 12x8
// this is 4/7 = 57.1%.
func HyperXWorstBisection(hx *HyperX) float64 {
	worst := -1.0
	for d, s := range hx.Cfg.S {
		if s%2 != 0 {
			continue
		}
		half := s / 2
		r := BisectionRatio(hx.Graph, func(sw NodeID) bool {
			return hx.Nodes[sw].Coord[d] < half
		})
		if worst < 0 || r < worst {
			worst = r
		}
	}
	return worst
}

// LinkCensus is one row of a structural link count: a dimension of a
// HyperX lattice or a level boundary of a fat-tree.
type LinkCensus struct {
	Name       string
	Live, Down int
}

// Degraded reports the fraction of the row's links that are down.
func (c LinkCensus) Degraded() float64 {
	if c.Live+c.Down == 0 {
		return 0
	}
	return float64(c.Down) / float64(c.Live+c.Down)
}

// HyperXDimLinks counts the inter-switch links of each lattice dimension,
// split live/down — the paper's Sec. 2.3 accounting of where the missing
// AOCs land (all of TSUBAME2's absent cables sit in specific dimensions).
func HyperXDimLinks(hx *HyperX) []LinkCensus {
	out := make([]LinkCensus, len(hx.Cfg.S))
	for d := range out {
		out[d].Name = fmt.Sprintf("dim %d (S=%d)", d, hx.Cfg.S[d])
	}
	for _, l := range hx.Graph.Links {
		if hx.Graph.Nodes[l.A].Kind != Switch || hx.Graph.Nodes[l.B].Kind != Switch {
			continue
		}
		ca, cb := hx.Coord(l.A), hx.Coord(l.B)
		for d := range ca {
			if ca[d] != cb[d] {
				if l.Down {
					out[d].Down++
				} else {
					out[d].Live++
				}
				break
			}
		}
	}
	return out
}

// FatTreeLevelLinks counts the links of each level boundary (terminals-L1,
// L1-L2, ...), split live/down — where a fat-tree's broken cables sit
// decides whether degradation costs leaf or spine bandwidth.
func FatTreeLevelLinks(ft *FatTree) []LinkCensus {
	out := make([]LinkCensus, ft.Height)
	for i := range out {
		if i == 0 {
			out[i].Name = "term-L1"
		} else {
			out[i].Name = fmt.Sprintf("L%d-L%d", i, i+1)
		}
	}
	for _, l := range ft.Graph.Links {
		lo, hi := ft.Level(l.A), ft.Level(l.B)
		if hi < lo {
			lo = hi
		}
		if lo < 0 || lo >= len(out) {
			continue
		}
		if l.Down {
			out[lo].Down++
		} else {
			out[lo].Live++
		}
	}
	return out
}

// CountLinks returns (terminalLinks, switchLinks, downLinks).
func CountLinks(g *Graph) (term, sw, down int) {
	for _, l := range g.Links {
		if l.Down {
			down++
			continue
		}
		if g.Nodes[l.A].Kind == Terminal || g.Nodes[l.B].Kind == Terminal {
			term++
		} else {
			sw++
		}
	}
	return
}
