package topo

import (
	"testing"

	"github.com/hpcsim/t2hx/internal/sim"
)

// The mask and the graph must compute the same hash function, or cache keys
// derived from one would miss entries built from the other.
func TestDownMaskHashMatchesGraph(t *testing.T) {
	hx := small2DHyperX()
	chain, err := DegradeChain(hx.Graph, 10, 7)
	if err != nil {
		t.Fatalf("DegradeChain: %v", err)
	}
	if hx.Graph.DownHash() != 0 {
		t.Fatalf("DegradeChain left links down (hash %#x)", hx.Graph.DownHash())
	}
	m := NewDownMask(len(hx.Links))
	for i, id := range chain {
		m.Set(id, true)
		m.Apply(hx.Graph)
		if got, want := hx.Graph.DownHash(), m.Hash(); got != want {
			t.Fatalf("prefix %d: graph hash %#x != mask hash %#x", i+1, got, want)
		}
		if m.Count() != i+1 {
			t.Fatalf("prefix %d: mask count %d", i+1, m.Count())
		}
	}
}

// Regression (issue 6 satellite): two down masks differing by exactly one
// link must never collide on DownHash. Zobrist hashing makes this exact —
// the hashes differ by the flipped link's salt, which is never zero.
func TestDownHashSingleLinkNeverCollides(t *testing.T) {
	hx := small2DHyperX()
	for _, l := range hx.Links {
		if LinkDownSalt(l.ID) == 0 {
			t.Fatalf("link %d has zero salt", l.ID)
		}
	}
	rng := sim.NewRand(99)
	for trial := 0; trial < 50; trial++ {
		m := NewDownMask(len(hx.Links))
		for _, l := range hx.Links {
			if rng.Float64() < 0.3 {
				m.Set(l.ID, true)
			}
		}
		base := m.Hash()
		for _, l := range hx.Links {
			flipped := m.Clone()
			flipped.Set(l.ID, !flipped.Get(l.ID))
			if flipped.Hash() == base {
				t.Fatalf("trial %d: flipping link %d did not change hash %#x", trial, l.ID, base)
			}
		}
	}
}

func TestDownMaskApplyDelta(t *testing.T) {
	hx := small2DHyperX()
	rng := sim.NewRand(3)
	prev := NewDownMask(len(hx.Links))
	for step := 0; step < 20; step++ {
		next := prev.Clone()
		for i := 0; i < 4; i++ {
			id := LinkID(rng.Intn(len(hx.Links)))
			next.Set(id, !next.Get(id))
		}
		flips := next.ApplyDelta(hx.Graph, prev)
		if got := hx.Graph.DownHash(); got != next.Hash() {
			t.Fatalf("step %d: delta-applied graph hash %#x != mask %#x (%d flips)",
				step, got, next.Hash(), flips)
		}
		down := 0
		for _, l := range hx.Links {
			if l.Down {
				down++
			}
		}
		if down != next.Count() {
			t.Fatalf("step %d: graph has %d down links, mask says %d", step, down, next.Count())
		}
		prev = next
	}
}

// Every prefix of a DegradeChain must keep the switch fabric connected:
// that is the property letting one seeded chain serve every failure count
// of a sweep variant.
func TestDegradeChainPrefixConnectivity(t *testing.T) {
	hx := small2DHyperX()
	const n = 14
	chain, err := DegradeChain(hx.Graph, n, 42)
	if err != nil {
		t.Fatalf("DegradeChain: %v", err)
	}
	if len(chain) != n {
		t.Fatalf("chain has %d links, want %d", len(chain), n)
	}
	seen := map[LinkID]bool{}
	m := NewDownMask(len(hx.Links))
	for i, id := range chain {
		l := hx.Links[id]
		if hx.Nodes[l.A].Kind != Switch || hx.Nodes[l.B].Kind != Switch {
			t.Fatalf("chain link %d is not a switch link", id)
		}
		if seen[id] {
			t.Fatalf("chain repeats link %d", id)
		}
		seen[id] = true
		m.Set(id, true)
		m.Apply(hx.Graph)
		if !SwitchFabricConnected(hx.Graph) {
			t.Fatalf("prefix %d disconnects the switch fabric", i+1)
		}
	}
	NewDownMask(len(hx.Links)).Apply(hx.Graph)

	// Same (graph shape, seed) must give the same chain: sweep variants
	// share chains across engines by relying on this.
	hx2 := small2DHyperX()
	chain2, err := DegradeChain(hx2.Graph, n, 42)
	if err != nil {
		t.Fatalf("DegradeChain (second build): %v", err)
	}
	for i := range chain {
		if chain[i] != chain2[i] {
			t.Fatalf("chain diverges at %d: %d vs %d", i, chain[i], chain2[i])
		}
	}
}

func TestHyperXDimSurvivalHealthy(t *testing.T) {
	hx := small2DHyperX() // 4x4: each dim has 4 lines of C(4,2)=6 pairs
	for _, s := range HyperXDimSurvival(hx) {
		if s.Pairs != 24 {
			t.Errorf("dim %d: %d pairs, want 24", s.Dim, s.Pairs)
		}
		if s.Direct != s.Pairs || s.Escape != 0 || s.Stranded != 0 {
			t.Errorf("dim %d: healthy census %+v", s.Dim, s)
		}
	}
}

func TestHyperXDimSurvivalDegraded(t *testing.T) {
	hx := small2DHyperX()
	// Kill the direct link between (0,1) and (0,2): dimension 1, one line.
	a, b := hx.SwitchAt(0, 1), hx.SwitchAt(0, 2)
	for _, l := range hx.Nodes[a].Ports {
		if l != nil && l.Other(a) == b {
			l.Down = true
		}
	}
	surv := HyperXDimSurvival(hx)
	if s := surv[0]; s.Direct != s.Pairs {
		t.Errorf("dim 0 should be untouched: %+v", s)
	}
	s := surv[1]
	if s.Direct != 23 || s.Escape != 1 || s.Stranded != 0 {
		t.Errorf("dim 1 census %+v, want 23 direct / 1 escape", s)
	}
	// The detour (0,1)-(0,0)-(0,2) uses intermediate coordinate 0 < min(1,2),
	// so it satisfies the restricted-escape rule.
	if s.Restricted != 1 {
		t.Errorf("dim 1 restricted %d, want 1", s.Restricted)
	}

	// Also kill (0,0)-(0,1): now 0-1 pair must detour through 2 or 3 (not
	// restricted), and 1-2 loses its restricted detour through 0 but keeps
	// an unrestricted one through 3.
	for _, l := range hx.Nodes[a].Ports {
		if l != nil && l.Other(a) == hx.SwitchAt(0, 0) {
			l.Down = true
		}
	}
	s = HyperXDimSurvival(hx)[1]
	if s.Direct != 22 || s.Escape != 2 || s.Restricted != 0 || s.Stranded != 0 {
		t.Errorf("dim 1 census after second failure %+v, want 22/2/0/0", s)
	}
}
