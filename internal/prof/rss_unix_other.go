//go:build unix && !linux

package prof

// darwin and the BSDs report ru_maxrss in bytes.
const rusageRSSUnit = 1
