//go:build linux

package prof

// Linux getrusage reports ru_maxrss in kilobytes.
const rusageRSSUnit = 1024
