//go:build !unix

package prof

// peakRSSBytes is unavailable without getrusage; callers treat 0 as
// "unsupported" and skip the peak-rss-B metric.
func peakRSSBytes() uint64 { return 0 }
