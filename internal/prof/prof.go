// Package prof wires Go's stdlib profilers into the simulator binaries:
// pprof CPU/heap profiles behind -cpuprofile/-memprofile flags, a
// net/http/pprof listener for poking at a live long-running sweep, and a
// runtime/metrics capture (GC pauses, heap size, goroutine count) that the
// benchmark harness folds into its JSON baselines. Everything here is
// flag-gated and costs nothing when unused.
package prof

import (
	"fmt"
	"math"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"os"
	"runtime"
	"runtime/metrics"
	"runtime/pprof"
	"time"
)

// Session holds the profiling state opened by Start; Stop finalizes it.
// The zero Session is valid and Stop on it is a no-op, so callers can
// unconditionally defer Stop.
type Session struct {
	cpuFile *os.File
	memPath string
	ln      net.Listener
}

// Options selects which profilers Start enables; empty fields are off.
type Options struct {
	// CPUProfile is the output path of a pprof CPU profile covering
	// Start..Stop.
	CPUProfile string
	// MemProfile is the output path of a heap profile written at Stop
	// (after a forced GC, so it reflects live objects).
	MemProfile string
	// HTTPAddr, e.g. "localhost:6060", serves net/http/pprof for live
	// inspection (goroutine dumps, 30s CPU captures) of a running sweep.
	HTTPAddr string
}

// Start enables the requested profilers. The returned Session must be
// Stopped (typically deferred) — an unmatched CPU profile start truncates
// the output file. Errors report which profiler failed; on error no
// profiler is left running.
func Start(o Options) (*Session, error) {
	s := &Session{memPath: o.MemProfile}
	if o.CPUProfile != "" {
		f, err := os.Create(o.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		s.cpuFile = f
	}
	if o.HTTPAddr != "" {
		ln, err := net.Listen("tcp", o.HTTPAddr)
		if err != nil {
			s.Stop()
			return nil, fmt.Errorf("pprof-http: %w", err)
		}
		s.ln = ln
		go http.Serve(ln, nil) //nolint:errcheck // dies with the process
	}
	return s, nil
}

// Stop finalizes the session: the CPU profile is flushed and closed, the
// heap profile written, the HTTP listener shut. Safe on a nil or zero
// Session and idempotent.
func (s *Session) Stop() error {
	if s == nil {
		return nil
	}
	var first error
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := s.cpuFile.Close(); err != nil {
			first = fmt.Errorf("cpuprofile: %w", err)
		}
		s.cpuFile = nil
	}
	if s.memPath != "" {
		if err := writeHeapProfile(s.memPath); err != nil && first == nil {
			first = err
		}
		s.memPath = ""
	}
	if s.ln != nil {
		s.ln.Close()
		s.ln = nil
	}
	return first
}

// Addr reports the HTTP listener's bound address ("" when not serving) —
// useful with ":0" test listeners.
func (s *Session) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// writeHeapProfile GCs and dumps live-object heap state to path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	runtime.GC() // materialize recently freed memory in the profile
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		f.Close()
		return fmt.Errorf("memprofile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}

// RuntimeMetrics is a snapshot of the runtime/metrics counters the bench
// harness tracks alongside ns/op: allocator and GC pressure numbers that
// regress independently of wall time.
type RuntimeMetrics struct {
	// HeapLiveBytes is the live heap after the last GC.
	HeapLiveBytes uint64 `json:"heap_live_bytes"`
	// TotalAllocBytes is cumulative allocation since process start.
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	// GCCycles is the completed GC count.
	GCCycles uint64 `json:"gc_cycles"`
	// GCPauseTotal sums stop-the-world pause time.
	GCPauseTotal time.Duration `json:"gc_pause_total_ns"`
	// GCPauseMax approximates the largest observed pause (the highest
	// non-empty bucket of the pause histogram).
	GCPauseMax time.Duration `json:"gc_pause_max_ns"`
	// Goroutines is the live goroutine count.
	Goroutines int `json:"goroutines"`
	// PeakRSSBytes is the process's high-water resident set size from the
	// OS (getrusage), 0 where unsupported. Unlike the heap numbers it
	// captures everything the kernel charged the process — stacks, runtime
	// overhead, arena slack — which is the number that decides whether a
	// 32k-terminal sweep fits on a build machine.
	PeakRSSBytes uint64 `json:"peak_rss_bytes"`
}

// ReadRuntimeMetrics samples the runtime.
func ReadRuntimeMetrics() RuntimeMetrics {
	samples := []metrics.Sample{
		{Name: "/memory/classes/heap/objects:bytes"},
		{Name: "/gc/heap/allocs:bytes"},
		{Name: "/gc/cycles/total:gc-cycles"},
		{Name: "/gc/pauses:seconds"},
		{Name: "/sched/goroutines:goroutines"},
	}
	metrics.Read(samples)
	var rm RuntimeMetrics
	for _, s := range samples {
		if s.Value.Kind() == metrics.KindBad {
			continue
		}
		switch s.Name {
		case "/memory/classes/heap/objects:bytes":
			rm.HeapLiveBytes = s.Value.Uint64()
		case "/gc/heap/allocs:bytes":
			rm.TotalAllocBytes = s.Value.Uint64()
		case "/gc/cycles/total:gc-cycles":
			rm.GCCycles = s.Value.Uint64()
		case "/gc/pauses:seconds":
			h := s.Value.Float64Histogram()
			var total, max float64
			for i, n := range h.Counts {
				if n == 0 {
					continue
				}
				// Bucket i covers [Buckets[i], Buckets[i+1]); use the finite
				// edge (the first lower edge is -Inf, the last upper +Inf).
				edge := h.Buckets[i]
				if math.IsInf(edge, -1) {
					edge = h.Buckets[i+1]
				}
				if math.IsInf(edge, 1) {
					edge = h.Buckets[i]
				}
				if math.IsInf(edge, 0) {
					continue
				}
				total += float64(n) * edge
				if edge > max {
					max = edge
				}
			}
			rm.GCPauseTotal = time.Duration(total * float64(time.Second))
			rm.GCPauseMax = time.Duration(max * float64(time.Second))
		case "/sched/goroutines:goroutines":
			rm.Goroutines = int(s.Value.Uint64())
		}
	}
	rm.PeakRSSBytes = peakRSSBytes()
	return rm
}

// MetricsReporter is the slice of *testing.B the benchmark helpers need;
// declaring it here keeps "testing" out of the non-test build.
type MetricsReporter interface {
	ReportMetric(n float64, unit string)
}

// ReportRuntimeMetrics attaches the GC/heap numbers to a benchmark result
// (they ride into the -bench output and the benchjson baselines).
func ReportRuntimeMetrics(b MetricsReporter) {
	rm := ReadRuntimeMetrics()
	b.ReportMetric(float64(rm.HeapLiveBytes), "heap-B")
	b.ReportMetric(float64(rm.GCPauseTotal.Nanoseconds()), "gc-pause-ns")
	if rm.PeakRSSBytes > 0 {
		b.ReportMetric(float64(rm.PeakRSSBytes), "peak-rss-B")
	}
}
