//go:build unix

package prof

import "syscall"

// peakRSSBytes reads the process's high-water RSS via getrusage. Linux
// reports ru_maxrss in KiB; darwin/BSD report bytes — normalize to bytes.
func peakRSSBytes() uint64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	if ru.Maxrss <= 0 {
		return 0
	}
	return uint64(ru.Maxrss) * rusageRSSUnit
}
