package prof

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

func TestStartStopWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	s, err := Start(Options{CPUProfile: cpu, MemProfile: mem})
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to write.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
	// Stop is idempotent.
	if err := s.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
}

func TestNilSessionStop(t *testing.T) {
	var s *Session
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPListener(t *testing.T) {
	s, err := Start(Options{HTTPAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", s.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
}

func TestReadRuntimeMetrics(t *testing.T) {
	m := ReadRuntimeMetrics()
	if m.HeapLiveBytes == 0 {
		t.Error("HeapLiveBytes == 0")
	}
	if m.TotalAllocBytes == 0 {
		t.Error("TotalAllocBytes == 0")
	}
	if m.Goroutines == 0 {
		t.Error("Goroutines == 0")
	}
	if m.GCPauseMax > 0 && m.GCPauseTotal < m.GCPauseMax {
		t.Errorf("pause total %v below max %v", m.GCPauseTotal, m.GCPauseMax)
	}
}

type fakeReporter struct{ metrics map[string]float64 }

func (f *fakeReporter) ReportMetric(v float64, unit string) {
	if f.metrics == nil {
		f.metrics = map[string]float64{}
	}
	f.metrics[unit] = v
}

func TestReportRuntimeMetrics(t *testing.T) {
	var r fakeReporter
	ReportRuntimeMetrics(&r)
	if _, ok := r.metrics["heap-B"]; !ok {
		t.Fatalf("heap-B not reported: %v", r.metrics)
	}
	if _, ok := r.metrics["gc-pause-ns"]; !ok {
		t.Fatalf("gc-pause-ns not reported: %v", r.metrics)
	}
}
