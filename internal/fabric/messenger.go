package fabric

import (
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// Messenger is the transport surface the MPI and workload layers run over:
// a discrete-event engine plus point-to-point message delivery between
// terminals. Both the single-plane Fabric and the multi-plane MultiFabric
// implement it, so jobs and benchmarks are oblivious to how many network
// planes the machine they run on has.
type Messenger interface {
	// Engine returns the discrete-event engine driving the transport.
	Engine() *sim.Engine
	// Send transfers size bytes from terminal src to terminal dst and
	// calls onDelivered when the last byte has arrived.
	Send(src, dst topo.NodeID, size int64, onDelivered func(at sim.Time))
}

// Engine returns the fabric's discrete-event engine.
func (f *Fabric) Engine() *sim.Engine { return f.Eng }

// CanRoute reports whether the active tables resolve a live path for a
// message of the given size under the active PML — the reachability probe
// plane-selection policies use to skip planes that are down or whose
// subnet manager has not yet routed around a fault. Loopback is always
// routable. Like Send, it falls back to the base LID when the PML's
// preferred LID is unroutable.
func (f *Fabric) CanRoute(src, dst topo.NodeID, size int64) bool {
	if src == dst {
		return true
	}
	lid := f.selectLID(src, dst, size)
	if _, err := f.pathTo(src, lid); err == nil {
		return true
	}
	_, err := f.pathTo(src, f.Tables.BaseLID[f.Tables.TermIndex(dst)])
	return err == nil
}
