package fabric

import (
	"math"
	"testing"

	"github.com/hpcsim/t2hx/internal/core"
	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

func hxFabric(t *testing.T, pml PML) (*topo.HyperX, *Fabric, *sim.Engine) {
	t.Helper()
	hx := topo.NewHyperX(topo.HyperXConfig{
		S: []int{4, 4}, T: 2,
		Bandwidth: 1e9, Latency: 100 * sim.Nanosecond,
	})
	var tb *route.Tables
	var err error
	if pml == BFO {
		tb, err = core.PARX(hx, core.Config{})
	} else {
		tb, err = route.DFSSSP(hx.Graph, 0, 8)
	}
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	f := New(eng, tb, DefaultParams(), 1)
	if pml == BFO {
		if err := f.EnableBFO(hx, 0); err != nil {
			t.Fatal(err)
		}
	}
	return hx, f, eng
}

func TestSendLatencyDecomposition(t *testing.T) {
	hx, f, eng := hxFabric(t, Ob1)
	src := hx.TerminalsOf(hx.SwitchAt(0, 0))[0]
	dst := hx.TerminalsOf(hx.SwitchAt(1, 0))[0]
	var done sim.Time = -1
	f.Send(src, dst, 0, func(at sim.Time) { done = at })
	eng.Run()
	// 0-byte: overhead 600ns + 3 channels x 100ns + recv 200ns = 1.1us.
	want := 1.1e-6
	if math.Abs(float64(done)-want) > 1e-12 {
		t.Errorf("0B latency = %v, want %v", done, want)
	}
}

func TestSendBandwidthTerm(t *testing.T) {
	hx, f, eng := hxFabric(t, Ob1)
	src := hx.TerminalsOf(hx.SwitchAt(0, 0))[0]
	dst := hx.TerminalsOf(hx.SwitchAt(1, 0))[0]
	var done sim.Time = -1
	size := int64(1e6)
	f.Send(src, dst, size, func(at sim.Time) { done = at })
	eng.Run()
	// 1 MB at 1 GB/s = 1 ms, plus ~1.1us of latency terms.
	want := 1e-3 + 1.1e-6
	if math.Abs(float64(done)-want) > 1e-9 {
		t.Errorf("1MB latency = %v, want %v", done, want)
	}
}

func TestLoopbackSend(t *testing.T) {
	hx, f, eng := hxFabric(t, Ob1)
	src := hx.Terminals()[0]
	var done sim.Time = -1
	f.Send(src, src, 1024, func(at sim.Time) { done = at })
	eng.Run()
	if done <= 0 || done > 2e-6 {
		t.Errorf("loopback latency = %v, want < 2us and > 0", done)
	}
}

func TestSevenFlowsShareOneCable(t *testing.T) {
	// The Fig. 1 mechanism: T flows between adjacent HyperX switches share
	// the single direct cable and each sees ~1/T of its bandwidth.
	hx := topo.NewHyperX(topo.HyperXConfig{
		S: []int{4, 2}, T: 7,
		Bandwidth: 1e9, Latency: 0,
	})
	tb, err := route.DFSSSP(hx.Graph, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	f := New(eng, tb, Params{}, 1)
	a := hx.TerminalsOf(hx.SwitchAt(0, 0))
	b := hx.TerminalsOf(hx.SwitchAt(1, 0))
	size := int64(1e6)
	var last sim.Time
	for i := range a {
		f.Send(a[i], b[i], size, func(at sim.Time) {
			if at > last {
				last = at
			}
		})
	}
	eng.Run()
	// 7 MB over one 1 GB/s cable: 7 ms.
	if math.Abs(float64(last)-7e-3) > 1e-6 {
		t.Errorf("7-flow completion = %v, want 7ms (shared cable)", last)
	}
}

func TestBFOSelectsBySize(t *testing.T) {
	hx, f, _ := hxFabric(t, BFO)
	// Same-quadrant adjacent pair in Q0.
	src := hx.TerminalsOf(hx.SwitchAt(0, 0))[0]
	dst := hx.TerminalsOf(hx.SwitchAt(1, 0))[0]
	// Small messages: minimal (1 switch hop).
	for i := 0; i < 50; i++ {
		hops, lid, err := f.Probe(src, dst, 64)
		if err != nil {
			t.Fatal(err)
		}
		if hops != 1 {
			t.Fatalf("small message hops = %d (LID %d), want 1", hops, lid)
		}
	}
	// Large messages: at least one probe must detour.
	detour := false
	for i := 0; i < 50; i++ {
		hops, _, err := f.Probe(src, dst, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if hops > 1 {
			detour = true
		}
	}
	if !detour {
		t.Error("large messages never detoured under bfo/PARX")
	}
}

func TestBFOPenaltyAppliesToOverhead(t *testing.T) {
	hxO, fO, engO := hxFabric(t, Ob1)
	_, fB, engB := hxFabric(t, BFO)
	src := hxO.TerminalsOf(hxO.SwitchAt(0, 0))[0]
	dst := hxO.TerminalsOf(hxO.SwitchAt(0, 0))[1] // same switch: no detour possible
	var dO, dB sim.Time
	fO.Send(src, dst, 0, func(at sim.Time) { dO = at })
	engO.Run()
	fB.Send(src, dst, 0, func(at sim.Time) { dB = at })
	engB.Run()
	if dB <= dO {
		t.Errorf("bfo latency %v not above ob1 %v", dB, dO)
	}
	if math.Abs(float64(dB-dO)-float64(DefaultParams().BFOPenalty)) > 1e-12 {
		t.Errorf("bfo penalty = %v, want %v", dB-dO, DefaultParams().BFOPenalty)
	}
}

func TestEnableBFORequiresLMC(t *testing.T) {
	hx := topo.NewHyperX(topo.HyperXConfig{S: []int{4, 4}, T: 1, Bandwidth: 1e9, Latency: 0})
	tb, err := route.DFSSSP(hx.Graph, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	f := New(sim.NewEngine(), tb, DefaultParams(), 1)
	if err := f.EnableBFO(hx, 0); err == nil {
		t.Error("EnableBFO accepted LMC=0 tables")
	}
}

func TestFabricCountsTraffic(t *testing.T) {
	hx, f, eng := hxFabric(t, Ob1)
	src := hx.Terminals()[0]
	dst := hx.Terminals()[5]
	for i := 0; i < 3; i++ {
		f.Send(src, dst, 100, func(sim.Time) {})
	}
	eng.Run()
	if f.Messages != 3 || f.Bytes != 300 {
		t.Errorf("counters = %d msgs / %.0f bytes, want 3/300", f.Messages, f.Bytes)
	}
}
