package fabric

import (
	"fmt"

	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/telemetry"
	"github.com/hpcsim/t2hx/internal/topo"
)

// MultiFabric attaches one set of terminals to N network planes — the
// dual-rail reality of TSUBAME2, where every compute node kept an HCA
// port on the Fat-Tree plane while the second rail was rebuilt into the
// 12x8 HyperX. Each plane is a complete Fabric (graph + tables + flow
// network) and all planes share one event engine, so cross-plane timing
// is globally ordered. Every Send is routed through a SelectionPolicy
// that picks the plane.
//
// Terminals are addressed by the NodeIDs of plane 0 (the primary plane);
// the i-th terminal of every plane is the same physical node, so IDs are
// translated between planes by terminal index.
type MultiFabric struct {
	Eng *sim.Engine

	policy  SelectionPolicy
	planes  []*Fabric
	names   []string
	healthy []bool
	// terms[p] is plane p's terminal list indexed by terminal index —
	// the cross-plane NodeID translation table.
	terms [][]topo.NodeID

	// Messages counts logical sends submitted to the machine and Bytes
	// their payload; Delivered/DeliveredBytes count completions on
	// whichever plane ended up carrying each message. Zero loss means
	// Delivered == Messages once the engine drains.
	Messages       uint64
	Bytes          float64
	Delivered      uint64
	DeliveredBytes float64
	// PlaneMessages[p] counts messages handed to plane p, redispatched
	// arrivals included.
	PlaneMessages []uint64
	// Redispatches counts messages migrated to a sibling plane after the
	// plane first chosen for them could no longer route them.
	Redispatches uint64
}

// NewMulti builds a multi-plane fabric over per-plane Fabrics that share
// one engine and attach the same number of terminals. names labels the
// planes for telemetry and reports (nil or short derives "plane<i>").
// policy nil defaults to SinglePlane on plane 0; SizeSplit planes and
// Failover orders left unset are resolved here against the actual plane
// list.
func NewMulti(planes []*Fabric, names []string, policy SelectionPolicy) (*MultiFabric, error) {
	if len(planes) == 0 {
		return nil, fmt.Errorf("fabric: MultiFabric needs at least one plane")
	}
	mf := &MultiFabric{
		Eng:           planes[0].Eng,
		planes:        planes,
		healthy:       make([]bool, len(planes)),
		PlaneMessages: make([]uint64, len(planes)),
	}
	nt := planes[0].Tables.NumTerminals()
	for p, f := range planes {
		if f.Eng != mf.Eng {
			return nil, fmt.Errorf("fabric: plane %d runs on a different engine", p)
		}
		if got := f.Tables.NumTerminals(); got != nt {
			return nil, fmt.Errorf("fabric: plane %d attaches %d terminals, plane 0 attaches %d — planes must serve the same nodes", p, got, nt)
		}
		mf.healthy[p] = true
		mf.terms = append(mf.terms, f.G.Terminals())
		name := fmt.Sprintf("plane%d", p)
		if p < len(names) && names[p] != "" {
			name = names[p]
		}
		mf.names = append(mf.names, name)
	}
	if policy == nil {
		policy = SinglePlane{}
	}
	switch pol := policy.(type) {
	case *SizeSplit:
		pol.resolve(planes)
	case *Failover:
		if len(pol.Order) == 0 {
			pol.Order = failoverOrder(0, len(planes))
		}
		for _, p := range pol.Order {
			if p < 0 || p >= len(planes) {
				return nil, fmt.Errorf("fabric: failover order references plane %d of %d", p, len(planes))
			}
		}
	}
	mf.policy = policy
	return mf, nil
}

// Engine returns the shared discrete-event engine (Messenger).
func (mf *MultiFabric) Engine() *sim.Engine { return mf.Eng }

// NumPlanes returns the number of attached planes.
func (mf *MultiFabric) NumPlanes() int { return len(mf.planes) }

// Plane returns the fabric of plane p.
func (mf *MultiFabric) Plane(p int) *Fabric { return mf.planes[p] }

// PlaneName returns plane p's display label.
func (mf *MultiFabric) PlaneName(p int) string { return mf.names[p] }

// PolicyName returns the name of the active selection policy.
func (mf *MultiFabric) PolicyName() string { return mf.policy.Name() }

// SetPlaneHealth marks plane p healthy or unhealthy. Health is advisory
// state consumed by policies such as Failover — typically wired to
// faults.Manager.OnHealth so a plane whose subnet manager is mid-re-sweep
// is skipped until its rebuilt tables are swapped in.
func (mf *MultiFabric) SetPlaneHealth(p int, healthy bool) { mf.healthy[p] = healthy }

// PlaneHealthy reports plane p's advisory health (planes start healthy).
func (mf *MultiFabric) PlaneHealthy(p int) bool { return mf.healthy[p] }

// SetSolverWorkers bounds every plane's flow-solver shard parallelism
// (flow.Network.SetWorkers); j <= 0 selects GOMAXPROCS. Planes share no
// channels, so each plane's contention graph is its own set of components
// and per-plane re-rates parallelize for free; within a plane the solver
// further shards by component. Rates stay bit-identical at any setting.
func (mf *MultiFabric) SetSolverWorkers(j int) {
	for _, f := range mf.planes {
		f.Net.SetWorkers(j)
	}
}

// termIndex resolves a primary-plane terminal ID to its machine-wide
// terminal index.
func (mf *MultiFabric) termIndex(n topo.NodeID) int {
	return mf.planes[0].Tables.TermIndex(n)
}

// planeNode translates a primary-plane terminal ID to the same physical
// node's ID on plane p.
func (mf *MultiFabric) planeNode(p int, n topo.NodeID) topo.NodeID {
	if p == 0 {
		return n
	}
	return mf.terms[p][mf.termIndex(n)]
}

// CanRoute reports whether plane p can currently route a message between
// two primary-plane terminals.
func (mf *MultiFabric) CanRoute(p int, src, dst topo.NodeID, size int64) bool {
	return mf.planes[p].CanRoute(mf.planeNode(p, src), mf.planeNode(p, dst), size)
}

// Send routes one message through the selection policy onto a plane
// (Messenger). src and dst are primary-plane terminal IDs.
func (mf *MultiFabric) Send(src, dst topo.NodeID, size int64, onDelivered func(at sim.Time)) {
	mf.Messages++
	mf.Bytes += float64(size)
	done := func(at sim.Time) {
		mf.Delivered++
		mf.DeliveredBytes += float64(size)
		if onDelivered != nil {
			onDelivered(at)
		}
	}
	p := mf.policy.SelectPlane(mf, src, dst, size)
	if p < 0 || p >= len(mf.planes) {
		panic(fmt.Sprintf("fabric: policy %s selected plane %d of %d", mf.policy.Name(), p, len(mf.planes)))
	}
	mf.sendOn(p, src, dst, size, done)
}

// sendOn hands a message to plane p, translating the primary-plane IDs.
func (mf *MultiFabric) sendOn(p int, src, dst topo.NodeID, size int64, done func(at sim.Time)) {
	mf.PlaneMessages[p]++
	mf.planes[p].Send(mf.planeNode(p, src), mf.planeNode(p, dst), size, done)
}

// EnableResilience arms every plane's bounded-retry layer and wires the
// cross-plane redispatch hook: a message whose plane can no longer route
// it migrates to a sibling plane that can (counted in Redispatches)
// instead of burning retries against dead tables. Per-plane retry and
// backoff still apply when no sibling can take the message — e.g. while
// every plane's SM is mid-sweep. Call this before handing planes to
// faults.NewManager so the manager reuses this configuration.
func (mf *MultiFabric) EnableResilience(r Resilience) {
	for p, f := range mf.planes {
		rp := r
		from := p
		rp.Redispatch = func(src, dst topo.NodeID, size int64, onDelivered func(at sim.Time)) bool {
			return mf.redispatch(from, src, dst, size, onDelivered)
		}
		f.EnableResilience(rp)
	}
}

// redispatch moves a failed message from plane `from` onto the first
// sibling plane that can route it, preferring healthy planes. Returns
// false when no sibling is reachable, leaving the message to its own
// plane's retry loop.
func (mf *MultiFabric) redispatch(from int, src, dst topo.NodeID, size int64, onDelivered func(at sim.Time)) bool {
	si := mf.planes[from].Tables.TermIndex(src)
	di := mf.planes[from].Tables.TermIndex(dst)
	psrc, pdst := mf.terms[0][si], mf.terms[0][di]
	pick := -1
	for q := range mf.planes {
		if q == from || !mf.CanRoute(q, psrc, pdst, size) {
			continue
		}
		if mf.healthy[q] {
			pick = q
			break
		}
		if pick < 0 {
			pick = q
		}
	}
	if pick < 0 {
		return false
	}
	mf.Redispatches++
	mf.sendOn(pick, psrc, pdst, size, onDelivered)
	return true
}

// AttachTelemetry wires one collector per plane (tm.Planes parallel to
// the plane list); nil detaches all planes.
func (mf *MultiFabric) AttachTelemetry(tm *telemetry.Multi) error {
	if tm == nil {
		for _, f := range mf.planes {
			f.AttachTelemetry(nil)
		}
		return nil
	}
	if len(tm.Planes) != len(mf.planes) {
		return fmt.Errorf("fabric: telemetry has %d plane collectors, fabric has %d planes", len(tm.Planes), len(mf.planes))
	}
	for p, f := range mf.planes {
		f.AttachTelemetry(tm.Planes[p])
	}
	return nil
}

// FlushCounters fans the counter-integration barrier out to every plane's
// flow network (see Fabric.FlushCounters).
func (mf *MultiFabric) FlushCounters() {
	for _, f := range mf.planes {
		f.FlushCounters()
	}
}
