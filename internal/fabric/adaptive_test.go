package fabric

import (
	"testing"

	"github.com/hpcsim/t2hx/internal/core"
	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/telemetry"
	"github.com/hpcsim/t2hx/internal/topo"
)

func adaptiveFixture(t *testing.T) (*topo.HyperX, *Fabric) {
	t.Helper()
	hx := topo.NewHyperX(topo.HyperXConfig{
		S: []int{6, 4}, T: 7,
		Bandwidth: topo.QDRBandwidth, Latency: topo.QDRLinkLatency,
	})
	tb, err := core.PARX(hx, core.Config{MaxVL: 8})
	if err != nil {
		t.Fatal(err)
	}
	f := New(sim.NewEngine(), tb, DefaultParams(), 1)
	if err := f.EnableAdaptive(hx); err != nil {
		t.Fatal(err)
	}
	// Counters on, so MaxChannelOccupancy reads the telemetry
	// high-watermark rather than the adaptive picker's private counts.
	f.AttachTelemetry(telemetry.New(hx.Graph, telemetry.Options{Counters: true}))
	return hx, f
}

func TestAdaptiveSpreadsConcurrentFlows(t *testing.T) {
	hx, f := adaptiveFixture(t)
	if f.PMLName() != "adaptive" {
		t.Fatalf("PML = %s", f.PMLName())
	}
	// 7 concurrent large flows between two adjacent switches: adaptive
	// selection must not put all of them on the same first channel.
	a := hx.TerminalsOf(hx.SwitchAt(0, 0))
	b := hx.TerminalsOf(hx.SwitchAt(1, 0))
	var last sim.Time
	for i := range a {
		f.Send(a[i], b[i], 4<<20, func(at sim.Time) {
			if at > last {
				last = at
			}
		})
	}
	// All 7 on one cable would give occupancy 7 on that channel; adaptive
	// must do better. The flows are pending (nothing decremented yet), so
	// the instantaneous occupancy equals the high-watermark.
	if occ := f.MaxChannelOccupancy(); occ >= 7 {
		t.Errorf("adaptive routing stacked %d flows on one channel", occ)
	}
	f.Eng.Run()
	// 7 x 4 MiB over one 3.2 GiB/s cable would take ~8.5 ms; spreading
	// over >= 3 distinct paths must finish well under that.
	static := 7.0 * float64(4<<20) / topo.QDRBandwidth
	if float64(last) > 0.8*static {
		t.Errorf("adaptive completion %v not clearly better than static %v", last, static)
	}
}

func TestAdaptiveBeatsStaticPARXOnHotspot(t *testing.T) {
	// The paper's Sec. 7 expectation: true adaptive routing beats the
	// static PARX prototype. Compare the same 7-pair hotspot under bfo
	// (static Table-1 choice) and adaptive selection.
	run := func(adaptive bool) sim.Time {
		hx := topo.NewHyperX(topo.HyperXConfig{
			S: []int{6, 4}, T: 7,
			Bandwidth: topo.QDRBandwidth, Latency: topo.QDRLinkLatency,
		})
		tb, err := core.PARX(hx, core.Config{MaxVL: 8})
		if err != nil {
			t.Fatal(err)
		}
		f := New(sim.NewEngine(), tb, DefaultParams(), 1)
		if adaptive {
			if err := f.EnableAdaptive(hx); err != nil {
				t.Fatal(err)
			}
		} else if err := f.EnableBFO(hx, 0); err != nil {
			t.Fatal(err)
		}
		a := hx.TerminalsOf(hx.SwitchAt(0, 0))
		b := hx.TerminalsOf(hx.SwitchAt(1, 0))
		var last sim.Time
		for i := range a {
			f.Send(a[i], b[i], 4<<20, func(at sim.Time) {
				if at > last {
					last = at
				}
			})
		}
		f.Eng.Run()
		return last
	}
	static := run(false)
	adapt := run(true)
	if adapt >= static {
		t.Errorf("adaptive %v not faster than static PARX %v on the hotspot", adapt, static)
	}
}

func TestAdaptiveFallsBackOnLMC0(t *testing.T) {
	// With single-LID tables adaptive selection degenerates to static
	// routing but must still deliver.
	hx := topo.NewHyperX(topo.HyperXConfig{
		S: []int{4, 4}, T: 2, Bandwidth: 1e9, Latency: 1e-7,
	})
	tb, err := route.DFSSSP(hx.Graph, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	f := New(sim.NewEngine(), tb, Params{}, 1)
	if err := f.EnableAdaptive(hx); err != nil {
		t.Fatal(err)
	}
	var done bool
	f.Send(hx.Terminals()[0], hx.Terminals()[9], 1024, func(sim.Time) { done = true })
	f.Eng.Run()
	if !done {
		t.Error("message not delivered under LMC=0 adaptive fallback")
	}
}
