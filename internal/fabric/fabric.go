// Package fabric binds a topology, a routing configuration and the
// flow-level network into a message-delivery service with an InfiniBand
// cost model: per-message software overhead (the MPI/verbs stack),
// per-hop wire+switch latency, and max-min-fair bandwidth sharing on the
// routed path. It also implements the two point-to-point messaging layers
// (PMLs) the paper compares: ob1 (base-LID routing, the OpenMPI default)
// and the modified bfo that selects among PARX's four destination LIDs by
// quadrant and message size (Sec. 3.2.4).
package fabric

import (
	"fmt"

	"github.com/hpcsim/t2hx/internal/core"
	"github.com/hpcsim/t2hx/internal/flow"
	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/telemetry"
	"github.com/hpcsim/t2hx/internal/topo"
)

// PML selects the point-to-point messaging layer.
type PML uint8

const (
	// Ob1 is OpenMPI's default PML: every message targets the base LID.
	Ob1 PML = iota
	// BFO is the paper's modified bfo PML: the destination LID is chosen
	// from Table 1 by quadrant pair and message size. Requires PARX tables
	// on a 2-D HyperX.
	BFO
)

// Params is the fabric cost model. Zero values select the calibrated QDR
// defaults.
type Params struct {
	// SendOverhead is the per-message software overhead on the send side
	// (MPI + verbs + HCA doorbell).
	SendOverhead sim.Duration
	// RecvOverhead is the receive-side completion overhead.
	RecvOverhead sim.Duration
	// BFOPenalty is the additional per-message overhead of the bfo PML,
	// which the paper found markedly less tuned than ob1 (Sec. 5.1:
	// Barrier slows down 2.8x-6.9x under PARX/bfo).
	BFOPenalty sim.Duration
	// NodeBandwidth caps a node's aggregate send+receive rate (the
	// PCIe-gen2/HCA bottleneck of the QDR generation). 0 selects the
	// default; negative disables the cap.
	NodeBandwidth float64
	// SolverWorkers bounds the flow solver's per-component shard
	// parallelism (flow.Network.SetWorkers, DESIGN.md §12). 0, the
	// default, keeps the solver sequential; negative selects GOMAXPROCS.
	// Rates are bit-identical at every setting.
	SolverWorkers int
}

// DefaultNodeBandwidth reflects a ConnectX-2-era HCA behind PCIe gen2 x8:
// ~3.2 GiB/s one way, ~1.5x that when sending and receiving concurrently —
// which is why the paper's mpiGraph tops out near 3 GiB/s and averages
// 2.26 on the contention-free Fat-Tree.
const DefaultNodeBandwidth = 1.5 * 3.2 * 1024 * 1024 * 1024

// DefaultParams yields end-to-end small-message latencies of ~1.3 us on a
// 3-hop path, matching QDR-generation MPI ping-pong numbers.
func DefaultParams() Params {
	return Params{
		SendOverhead: 600 * sim.Nanosecond,
		RecvOverhead: 200 * sim.Nanosecond,
		BFOPenalty:   4000 * sim.Nanosecond,
	}
}

// Fabric delivers messages between terminals.
type Fabric struct {
	Eng    *sim.Engine
	G      *topo.Graph
	Tables *route.Tables
	Net    *flow.Network
	Params Params

	pml       PML
	hx        *topo.HyperX // set when the bfo PML is active
	threshold int64
	rng       *sim.Rand

	// path cache: key = srcTerm index * (maxLID+1) + lid.
	paths     map[int64][]topo.ChannelID
	quadrants []core.Quadrant // per terminal index, when bfo
	// nodeChan0 is the first per-terminal aggregate-bandwidth channel in
	// the flow network, or -1 when the cap is disabled.
	nodeChan0 topo.ChannelID
	// lt tracks per-channel occupancy for adaptive path selection.
	lt *loadTracker

	// Tel is the attached observability collector; nil (the default)
	// keeps every telemetry hook on the send/deliver path a no-op. Use
	// AttachTelemetry rather than setting the field, so the flow network
	// is wired too.
	Tel *telemetry.Collector

	// res enables mid-run fault tolerance; nil keeps the legacy fail-fast
	// behaviour (panic on unroutable sends). See EnableResilience.
	res *Resilience
	// inflight tracks active sends by flow-table slot so channel failures
	// can tear down exactly the affected messages: inflight[flow.Index(id)]
	// is the pendingSend whose flow occupies that slot. Each pendingSend
	// records its full handle, so a slot recycled by the flow network is
	// never mistaken for a send this fabric still owns.
	inflight  []*pendingSend
	inflightN int
	// fpScratch is the reusable buffer attempt() assembles node-channel-
	// wrapped flow paths in; flow.Start copies paths into its arena, so
	// the buffer is free again as soon as Start returns.
	fpScratch []topo.ChannelID

	// Messages counts submitted messages; Bytes the submitted payload.
	Messages uint64
	Bytes    float64
	// Delivered counts messages whose last byte arrived; DeliveredBytes the
	// corresponding payload — the goodput numerator under faults, where
	// submitted and delivered traffic diverge.
	Delivered      uint64
	DeliveredBytes float64
	// TornDown counts in-flight flows killed by channel failures, Retries
	// the re-sends they (and unroutable attempts) triggered, and GiveUps
	// the messages abandoned after the retry budget ran out.
	TornDown uint64
	Retries  uint64
	GiveUps  uint64
	// Redispatched counts messages this fabric handed to a sibling plane
	// via Resilience.Redispatch instead of retrying locally.
	Redispatched uint64
}

// New builds a fabric over routed tables using the ob1 PML.
func New(eng *sim.Engine, t *route.Tables, p Params, seed uint64) *Fabric {
	f := &Fabric{
		Eng:       eng,
		G:         t.G,
		Tables:    t,
		Net:       flow.NewNetwork(eng, t.G),
		Params:    p,
		pml:       Ob1,
		threshold: core.DefaultThreshold,
		rng:       sim.NewRand(seed),
		paths:     make(map[int64][]topo.ChannelID),
		nodeChan0: -1,
	}
	nb := p.NodeBandwidth
	if nb == 0 {
		nb = DefaultNodeBandwidth
	}
	if nb > 0 {
		f.nodeChan0 = f.Net.AddNodeChannels(t.G.NumTerminals(), nb)
	}
	if p.SolverWorkers > 0 {
		f.Net.SetWorkers(p.SolverWorkers)
	} else if p.SolverWorkers < 0 {
		f.Net.SetWorkers(0) // GOMAXPROCS
	}
	return f
}

// AttachTelemetry wires a collector into the fabric, its flow network and
// its engine. Call it before traffic starts; pass nil to detach. Counters
// are sampled on the flow network's rate-recompute events, message records
// and trace spans on the fabric's send/deliver path.
func (f *Fabric) AttachTelemetry(c *telemetry.Collector) {
	f.Tel = c
	if c == nil {
		f.Net.SetCounters(nil)
		return
	}
	f.Net.SetCounters(c.Chans)
	c.AttachEngine(f.Eng)
}

// FlushCounters forces the flow network's lazily-deferred counter
// integrals up to the current instant — the barrier to invoke before
// reading the attached collector's counter slices directly at a snapshot
// boundary (fault teardown, end-of-run, mid-run export). The collector's
// own accessors flush implicitly.
func (f *Fabric) FlushCounters() { f.Net.FlushCounters() }

// EnableBFO switches the fabric to the modified bfo PML for PARX tables on
// the given HyperX. threshold <= 0 selects the paper's 512-byte default.
func (f *Fabric) EnableBFO(hx *topo.HyperX, threshold int64) error {
	if f.Tables.LMC < core.LMC {
		return fmt.Errorf("fabric: bfo PML needs LMC >= %d, tables have %d", core.LMC, f.Tables.LMC)
	}
	f.pml = BFO
	f.hx = hx
	if threshold > 0 {
		f.threshold = threshold
	}
	f.quadrants = make([]core.Quadrant, hx.NumTerminals())
	for i, tm := range hx.Terminals() {
		f.quadrants[i] = core.QuadrantOfTerminal(hx, tm)
	}
	return nil
}

// PMLName reports the active messaging layer.
func (f *Fabric) PMLName() string {
	switch f.pml {
	case BFO:
		return "bfo"
	case adaptive:
		return "adaptive"
	default:
		return "ob1"
	}
}

// selectLID picks the destination LID for a message per the active PML.
func (f *Fabric) selectLID(src, dst topo.NodeID, size int64) route.LID {
	dstIdx := f.Tables.TermIndex(dst)
	switch f.pml {
	case Ob1:
		return f.Tables.BaseLID[dstIdx]
	case adaptive:
		return f.selectAdaptiveLID(src, dst, size)
	}
	sq := f.quadrants[f.Tables.TermIndex(src)]
	dq := f.quadrants[dstIdx]
	off := core.SelectLIDOffset(sq, dq, size, f.threshold, f.rng)
	return f.Tables.BaseLID[dstIdx] + route.LID(off)
}

// pathTo resolves and caches the routed path from src to lid.
func (f *Fabric) pathTo(src topo.NodeID, lid route.LID) ([]topo.ChannelID, error) {
	key := int64(f.Tables.TermIndex(src))*int64(f.Tables.MaxLID()+1) + int64(lid)
	if p, ok := f.paths[key]; ok {
		return p, nil
	}
	p, err := f.Tables.Path(src, lid)
	if err != nil {
		return nil, err
	}
	f.paths[key] = p
	return p, nil
}

// overhead returns the send-side software overhead for the active PML.
func (f *Fabric) overhead() sim.Duration {
	o := f.Params.SendOverhead
	if f.pml == BFO {
		o += f.Params.BFOPenalty
	}
	return o
}

// PathLatency sums the wire latencies along a path.
func (f *Fabric) PathLatency(p []topo.ChannelID) sim.Duration {
	var lat sim.Duration
	for _, c := range p {
		lat += f.G.Link(c).Latency
	}
	return lat
}

// Send transfers size bytes from terminal src to terminal dst and calls
// onDelivered when the last byte arrives. The time decomposes LogGP-style:
// send overhead, per-hop latency, then bandwidth-limited streaming through
// the flow network, then receive overhead. Intra-node (src == dst)
// messages cost only the overheads plus a memcpy term.
//
// Without resilience enabled an unroutable destination panics; with it, the
// message enters the bounded-retry loop and onDelivered may fire only after
// the subnet manager repairs the tables (or never, if the retry budget runs
// out — see Resilience.OnGiveUp).
func (f *Fabric) Send(src, dst topo.NodeID, size int64, onDelivered func(at sim.Time)) {
	f.Messages++
	f.Bytes += float64(size)
	rec := f.Tel.StartMsg(src, dst, size, f.Eng.Now())
	if src == dst {
		// Loopback through shared memory: overhead + copy at ~8 GB/s.
		d := f.overhead() + f.Params.RecvOverhead + sim.Duration(float64(size)/8e9)
		f.Eng.After(d, func(e *sim.Engine) {
			f.Delivered++
			f.DeliveredBytes += float64(size)
			f.Tel.MsgDelivered(rec, e.Now(), 0, true)
			onDelivered(e.Now())
		})
		return
	}
	f.attempt(&pendingSend{src: src, dst: dst, size: size, onDelivered: onDelivered, rec: rec})
}

// Probe returns the switch-hop count the active PML would use for a message
// of the given size (diagnostics and tests).
func (f *Fabric) Probe(src, dst topo.NodeID, size int64) (hops int, lid route.LID, err error) {
	lid = f.selectLID(src, dst, size)
	p, err := f.pathTo(src, lid)
	if err != nil {
		return 0, lid, err
	}
	return route.SwitchHops(p), lid, nil
}
