package fabric

import (
	"testing"

	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// A zero-size (header-only) message occupies the fabric for an instant —
// between wire time and its same-instant completion — and a link dying in
// exactly that window must tear it down and feed the retry loop, not let
// the "delivery" fire over a dead path. Before flow.Start returned live
// IDs for zero-size flows, these messages were invisible to FailChannels
// (the sentinel ID 0 was skipped) and their callbacks fired regardless.
func TestFailChannelsTearsDownZeroSizeFlow(t *testing.T) {
	hx, f, eng := resilientFabric(t)
	f.EnableResilience(Resilience{RetryBackoff: 10 * sim.Microsecond, MaxRetries: 8})
	src := hx.Terminals()[0]
	dst := hx.Terminals()[15]

	path, err := f.Tables.Path(src, f.Tables.BaseLID[f.Tables.TermIndex(dst)])
	if err != nil {
		t.Fatal(err)
	}
	victim := hx.Graph.Link(path[1]) // first switch-to-switch hop
	wire := f.Params.SendOverhead + f.PathLatency(path)

	var deliveries []sim.Time
	f.Send(src, dst, 0, func(at sim.Time) { deliveries = append(deliveries, at) })

	// The flow starts at exactly `wire` and completes at the same instant
	// (zero bytes to stream). This event is scheduled after Send, so it
	// runs between those two: the cable dies while the header is "on the
	// wire".
	eng.Schedule(wire, func(*sim.Engine) {
		victim.Down = true
		if n := f.FailChannels(func(c topo.ChannelID) bool { return hx.Graph.Link(c) == victim }); n != 1 {
			t.Errorf("tore down %d flows, want 1 (the zero-size flow)", n)
		}
	})
	// The "SM" routes around the failure a little later.
	eng.Schedule(100*sim.Microsecond, func(*sim.Engine) {
		nt, err := route.SSSP(hx.Graph, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.SwapTables(nt); err != nil {
			t.Fatal(err)
		}
	})
	eng.Run()

	if len(deliveries) != 1 {
		t.Fatalf("callback fired %d times, want exactly once (after the retry)", len(deliveries))
	}
	if deliveries[0] <= wire {
		t.Errorf("delivered at %v, not after the teardown at %v", deliveries[0], wire)
	}
	if f.TornDown != 1 {
		t.Errorf("TornDown = %d, want 1", f.TornDown)
	}
	if f.Retries == 0 {
		t.Error("no retries recorded for the torn-down zero-size message")
	}
	if f.GiveUps != 0 {
		t.Errorf("GiveUps = %d, want 0", f.GiveUps)
	}
	if f.Delivered != 1 {
		t.Errorf("Delivered = %d, want 1", f.Delivered)
	}
	if f.inflightN != 0 {
		t.Errorf("%d flows left in the inflight table after delivery", f.inflightN)
	}
}

// The redelivered path of a torn-down zero-size message must avoid the
// dead link, and an un-failed zero-size message must still deliver at
// wire time with no retry bookkeeping.
func TestZeroSizeDeliversAtWireTimeUnderResilience(t *testing.T) {
	hx, f, eng := resilientFabric(t)
	f.EnableResilience(Resilience{})
	src := hx.Terminals()[0]
	dst := hx.Terminals()[15]
	path, err := f.Tables.Path(src, f.Tables.BaseLID[f.Tables.TermIndex(dst)])
	if err != nil {
		t.Fatal(err)
	}
	wire := f.Params.SendOverhead + f.PathLatency(path) + f.Params.RecvOverhead
	delivered := sim.Time(-1)
	f.Send(src, dst, 0, func(at sim.Time) { delivered = at })
	eng.Run()
	if delivered != wire {
		t.Errorf("zero-size delivered at %v, want %v", delivered, wire)
	}
	if f.TornDown != 0 || f.Retries != 0 || f.GiveUps != 0 {
		t.Errorf("spurious fault bookkeeping: torndown=%d retries=%d giveups=%d",
			f.TornDown, f.Retries, f.GiveUps)
	}
	if f.inflightN != 0 {
		t.Errorf("%d flows left in the inflight table", f.inflightN)
	}
}
