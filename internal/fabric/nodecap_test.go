package fabric

import (
	"math"
	"testing"

	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// qdrPair builds two switches with one QDR cable and T terminals each,
// routed minimally.
func qdrPair(t *testing.T, T int, params Params) (*topo.HyperX, *Fabric) {
	t.Helper()
	hx := topo.NewHyperX(topo.HyperXConfig{
		S: []int{2, 2}, T: T,
		Bandwidth: topo.QDRBandwidth, Latency: 0,
	})
	tb, err := route.DFSSSP(hx.Graph, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	return hx, New(sim.NewEngine(), tb, params, 1)
}

func TestNodeCapLimitsBidirectional(t *testing.T) {
	// One node sending 1 MiB while receiving 1 MiB: with the default
	// PCIe-era cap of 1.5x wire rate, each direction gets 0.75x wire.
	hx, f := qdrPair(t, 2, Params{})
	a := hx.TerminalsOf(hx.SwitchAt(0, 0))[0]
	b := hx.TerminalsOf(hx.SwitchAt(0, 1))[0]
	c := hx.TerminalsOf(hx.SwitchAt(1, 0))[0]
	size := int64(1 << 20)
	var tAB, tCA sim.Time
	f.Send(a, b, size, func(at sim.Time) { tAB = at })
	f.Send(c, a, size, func(at sim.Time) { tCA = at })
	f.Eng.Run()
	// Each flow shares node a's 4.8 GiB/s budget: 2.4 GiB/s per flow;
	// 1 MiB / 2.4 GiB/s = ~407 us.
	want := float64(size) / (DefaultNodeBandwidth / 2)
	got := math.Max(float64(tAB), float64(tCA))
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("bidirectional transfer took %v, want ~%v (node cap)", got, want)
	}
}

func TestNodeCapUnidirectionalUnaffected(t *testing.T) {
	// A single unidirectional stream still runs at wire rate: the 1.5x
	// node budget does not bind.
	hx, f := qdrPair(t, 1, Params{})
	a := hx.TerminalsOf(hx.SwitchAt(0, 0))[0]
	b := hx.TerminalsOf(hx.SwitchAt(0, 1))[0]
	size := int64(1 << 20)
	var done sim.Time
	f.Send(a, b, size, func(at sim.Time) { done = at })
	f.Eng.Run()
	want := float64(size) / topo.QDRBandwidth
	if math.Abs(float64(done)-want)/want > 0.05 {
		t.Errorf("unidirectional transfer took %v, want ~%v (wire rate)", done, want)
	}
}

func TestNodeCapDisabled(t *testing.T) {
	hx, f := qdrPair(t, 2, Params{NodeBandwidth: -1})
	a := hx.TerminalsOf(hx.SwitchAt(0, 0))[0]
	b := hx.TerminalsOf(hx.SwitchAt(0, 1))[0]
	c := hx.TerminalsOf(hx.SwitchAt(1, 0))[0]
	size := int64(1 << 20)
	var tAB, tCA sim.Time
	f.Send(a, b, size, func(at sim.Time) { tAB = at })
	f.Send(c, a, size, func(at sim.Time) { tCA = at })
	f.Eng.Run()
	// Full duplex, no cap: both at wire rate.
	want := float64(size) / topo.QDRBandwidth
	got := math.Max(float64(tAB), float64(tCA))
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("uncapped duplex took %v, want ~%v", got, want)
	}
}
