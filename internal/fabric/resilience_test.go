package fabric

import (
	"testing"

	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

func resilientFabric(t *testing.T) (*topo.HyperX, *Fabric, *sim.Engine) {
	t.Helper()
	hx := topo.NewHyperX(topo.HyperXConfig{
		S: []int{4, 4}, T: 1,
		Bandwidth: topo.QDRBandwidth, Latency: topo.QDRLinkLatency,
	})
	tb, err := route.SSSP(hx.Graph, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	f := New(eng, tb, DefaultParams(), 1)
	return hx, f, eng
}

// A link dying under an in-flight flow must tear the flow down, and the
// message must be redelivered once the SM-style table swap routes around
// the failure.
func TestFailChannelsRetriesAfterSwap(t *testing.T) {
	hx, f, eng := resilientFabric(t)
	f.EnableResilience(Resilience{RetryBackoff: 10 * sim.Microsecond, MaxRetries: 8})
	src := hx.Terminals()[0]
	dst := hx.Terminals()[15]

	path, err := f.Tables.Path(src, f.Tables.BaseLID[f.Tables.TermIndex(dst)])
	if err != nil {
		t.Fatal(err)
	}
	victim := hx.Graph.Link(path[1]) // first switch-to-switch hop

	delivered := sim.Time(-1)
	f.Send(src, dst, 1<<20, func(at sim.Time) { delivered = at })

	// Mid-transfer (a 1 MiB message streams for ~300 us), the cable dies.
	eng.Schedule(50*sim.Microsecond, func(*sim.Engine) {
		victim.Down = true
		if n := f.FailChannels(func(c topo.ChannelID) bool { return hx.Graph.Link(c) == victim }); n != 1 {
			t.Errorf("tore down %d flows, want 1", n)
		}
	})
	// The "SM" swaps repaired tables a little later.
	eng.Schedule(200*sim.Microsecond, func(*sim.Engine) {
		nt, err := route.SSSP(hx.Graph, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.SwapTables(nt); err != nil {
			t.Fatal(err)
		}
	})
	eng.Run()

	if delivered < 0 {
		t.Fatal("message never delivered after repair")
	}
	if f.TornDown != 1 {
		t.Errorf("TornDown = %d, want 1", f.TornDown)
	}
	if f.Retries == 0 {
		t.Error("no retries recorded")
	}
	if f.GiveUps != 0 {
		t.Errorf("GiveUps = %d, want 0", f.GiveUps)
	}
	if f.Delivered != 1 || f.DeliveredBytes != 1<<20 {
		t.Errorf("delivered %d msgs / %.0f bytes, want 1 / %d", f.Delivered, f.DeliveredBytes, 1<<20)
	}
	// The redelivered path must avoid the dead link.
	p2, err := f.Tables.Path(src, f.Tables.BaseLID[f.Tables.TermIndex(dst)])
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p2 {
		if hx.Graph.Link(c) == victim {
			t.Error("post-swap path still crosses the dead link")
		}
	}
}

// Without a table repair the retry budget must run out and the give-up hook
// must fire exactly once.
func TestResilienceGivesUpAfterBudget(t *testing.T) {
	hx, f, eng := resilientFabric(t)
	gaveUp := 0
	f.EnableResilience(Resilience{
		RetryBackoff: 5 * sim.Microsecond,
		MaxRetries:   3,
		OnGiveUp:     func(topo.NodeID, topo.NodeID, int64, error) { gaveUp++ },
	})
	src := hx.Terminals()[0]
	dst := hx.Terminals()[15]
	path, err := f.Tables.Path(src, f.Tables.BaseLID[f.Tables.TermIndex(dst)])
	if err != nil {
		t.Fatal(err)
	}
	victim := hx.Graph.Link(path[1])
	done := false
	f.Send(src, dst, 1<<20, func(sim.Time) { done = true })
	eng.Schedule(50*sim.Microsecond, func(*sim.Engine) {
		victim.Down = true
		f.FailChannels(func(c topo.ChannelID) bool { return hx.Graph.Link(c) == victim })
	})
	eng.Run()
	if done {
		t.Error("message delivered over a table that routes through a dead link")
	}
	if gaveUp != 1 || f.GiveUps != 1 {
		t.Errorf("give-ups = %d (hook %d), want 1", f.GiveUps, gaveUp)
	}
	if f.Retries != 3 {
		t.Errorf("retries = %d, want 3 (the full budget)", f.Retries)
	}
}

// SwapTables must reject tables that change the addressing contract.
func TestSwapTablesGuardsLIDLayout(t *testing.T) {
	hx, f, _ := resilientFabric(t)
	other := topo.NewHyperX(topo.HyperXConfig{S: []int{4, 4}, T: 1, Bandwidth: 1e9, Latency: 1e-7})
	tbOther, err := route.SSSP(other.Graph, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SwapTables(tbOther); err == nil {
		t.Error("accepted tables for a different graph")
	}
	tbLMC, err := route.SSSP(hx.Graph, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SwapTables(tbLMC); err == nil {
		t.Error("accepted tables with a different LMC")
	}
	tbOK, err := route.SSSP(hx.Graph, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SwapTables(tbOK); err != nil {
		t.Errorf("rejected compatible tables: %v", err)
	}
}

// Fail-fast behaviour is preserved when resilience is off: FailChannels
// only drops caches and an unroutable send panics.
func TestFailFastWithoutResilience(t *testing.T) {
	hx, f, eng := resilientFabric(t)
	src := hx.Terminals()[0]
	dst := hx.Terminals()[15]
	if n := f.FailChannels(func(topo.ChannelID) bool { return true }); n != 0 {
		t.Errorf("tore down %d flows without resilience", n)
	}
	// Cut every link out of the source's switch so no route exists.
	sw := hx.Graph.SwitchOf(src)
	for _, l := range hx.Graph.Nodes[sw].Ports {
		if l != nil && hx.Graph.Nodes[l.Other(sw)].Kind == topo.Switch {
			l.Down = true
		}
	}
	f.InvalidatePaths()
	defer func() {
		if recover() == nil {
			t.Error("unroutable send did not panic without resilience")
		}
	}()
	f.Send(src, dst, 1024, func(sim.Time) {})
	eng.Run()
}
