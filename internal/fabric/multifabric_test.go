package fabric

import (
	"strings"
	"testing"

	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// twoPlaneFixture builds a dual-plane fabric: two independent 4x4 HyperX
// graphs (same terminal count, separate channel spaces) on one engine.
func twoPlaneFixture(t *testing.T, policy SelectionPolicy) (*MultiFabric, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	var planes []*Fabric
	for i := 0; i < 2; i++ {
		hx := topo.NewHyperX(topo.HyperXConfig{
			S: []int{4, 4}, T: 2,
			Bandwidth: 1e9, Latency: 100 * sim.Nanosecond,
		})
		tb, err := route.SSSP(hx.Graph, 0)
		if err != nil {
			t.Fatal(err)
		}
		planes = append(planes, New(eng, tb, DefaultParams(), uint64(i+1)))
	}
	mf, err := NewMulti(planes, []string{"a", "b"}, policy)
	if err != nil {
		t.Fatal(err)
	}
	return mf, eng
}

func fixturePair(mf *MultiFabric) (topo.NodeID, topo.NodeID) {
	terms := mf.Plane(0).G.Terminals()
	return terms[0], terms[len(terms)-1]
}

// TestSolverWorkersThreaded checks the shard-parallelism knob's plumbing:
// Params.SolverWorkers reaches the plane's flow network at construction,
// and MultiFabric.SetSolverWorkers fans the setting out to every plane.
func TestSolverWorkersThreaded(t *testing.T) {
	hx := topo.NewHyperX(topo.HyperXConfig{
		S: []int{2, 2}, T: 2, Bandwidth: 1e9, Latency: 100 * sim.Nanosecond,
	})
	tb, err := route.SSSP(hx.Graph, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	if f := New(sim.NewEngine(), tb, p, 1); f.Net.Workers() != 1 {
		t.Errorf("default Params left solver at %d workers, want sequential 1", f.Net.Workers())
	}
	p.SolverWorkers = 4
	if f := New(sim.NewEngine(), tb, p, 1); f.Net.Workers() != 4 {
		t.Errorf("SolverWorkers=4 reached the flow net as %d", f.Net.Workers())
	}
	p.SolverWorkers = -1
	if f := New(sim.NewEngine(), tb, p, 1); f.Net.Workers() < 1 {
		t.Errorf("SolverWorkers=-1 resolved to %d, want GOMAXPROCS >= 1", f.Net.Workers())
	}

	mf, _ := twoPlaneFixture(t, nil)
	mf.SetSolverWorkers(3)
	for pl := 0; pl < mf.NumPlanes(); pl++ {
		if got := mf.Plane(pl).Net.Workers(); got != 3 {
			t.Errorf("plane %d at %d workers after SetSolverWorkers(3)", pl, got)
		}
	}
}

func TestNewMultiRejectsMismatchedPlanes(t *testing.T) {
	hx := topo.NewHyperX(topo.HyperXConfig{S: []int{4, 4}, T: 2, Bandwidth: 1e9, Latency: 1e-7})
	tb, err := route.SSSP(hx.Graph, 0)
	if err != nil {
		t.Fatal(err)
	}
	small := topo.NewHyperX(topo.HyperXConfig{S: []int{2, 2}, T: 2, Bandwidth: 1e9, Latency: 1e-7})
	tbs, err := route.SSSP(small.Graph, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	if _, err := NewMulti(nil, nil, nil); err == nil {
		t.Error("NewMulti with no planes succeeded")
	}
	if _, err := NewMulti([]*Fabric{
		New(eng, tb, DefaultParams(), 1),
		New(sim.NewEngine(), tb, DefaultParams(), 2),
	}, nil, nil); err == nil || !strings.Contains(err.Error(), "different engine") {
		t.Errorf("cross-engine planes: err = %v", err)
	}
	if _, err := NewMulti([]*Fabric{
		New(eng, tb, DefaultParams(), 1),
		New(eng, tbs, DefaultParams(), 2),
	}, nil, nil); err == nil || !strings.Contains(err.Error(), "same nodes") {
		t.Errorf("mismatched terminal counts: err = %v", err)
	}
}

func TestParsePolicy(t *testing.T) {
	good := []struct {
		spec string
		name string
	}{
		{"", "single"},
		{"single", "single"},
		{"single:1", "single"},
		{"sizesplit", "sizesplit"},
		{"sizesplit:4096", "sizesplit"},
		{"roundrobin", "roundrobin"},
		{"rr", "roundrobin"},
		{"striped", "striped"},
		{"failover", "failover"},
		{"failover:1", "failover"},
	}
	for _, tc := range good {
		pol, err := ParsePolicy(tc.spec, 2)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", tc.spec, err)
			continue
		}
		if pol.Name() != tc.name {
			t.Errorf("ParsePolicy(%q).Name() = %q, want %q", tc.spec, pol.Name(), tc.name)
		}
	}
	for _, spec := range []string{"bogus", "single:5", "single:x", "failover:2", "sizesplit:zero"} {
		if _, err := ParsePolicy(spec, 2); err == nil {
			t.Errorf("ParsePolicy(%q) succeeded, want error", spec)
		}
	}
}

func TestSinglePlanePolicyStaysOnOnePlane(t *testing.T) {
	mf, eng := twoPlaneFixture(t, SinglePlane{Plane: 1})
	src, dst := fixturePair(mf)
	for i := 0; i < 8; i++ {
		mf.Send(src, dst, 1024, nil)
	}
	eng.Run()
	if mf.PlaneMessages[0] != 0 || mf.PlaneMessages[1] != 8 {
		t.Errorf("plane messages = %v, want [0 8]", mf.PlaneMessages)
	}
	if mf.Delivered != 8 {
		t.Errorf("delivered %d of 8", mf.Delivered)
	}
}

func TestRoundRobinAlternatesPlanes(t *testing.T) {
	mf, eng := twoPlaneFixture(t, &RoundRobin{})
	src, dst := fixturePair(mf)
	for i := 0; i < 8; i++ {
		mf.Send(src, dst, 1024, nil)
	}
	eng.Run()
	if mf.PlaneMessages[0] != 4 || mf.PlaneMessages[1] != 4 {
		t.Errorf("plane messages = %v, want [4 4]", mf.PlaneMessages)
	}
}

func TestStripedIsDeterministicPerPair(t *testing.T) {
	mf, eng := twoPlaneFixture(t, Striped{})
	terms := mf.Plane(0).G.Terminals()
	// Same pair always lands on the same plane; pairs of different index
	// parity land on different planes.
	for i := 0; i < 4; i++ {
		mf.Send(terms[0], terms[1], 64, nil)
		mf.Send(terms[0], terms[2], 64, nil)
	}
	eng.Run()
	if mf.PlaneMessages[0] != 4 || mf.PlaneMessages[1] != 4 {
		t.Errorf("striped plane messages = %v, want [4 4]", mf.PlaneMessages)
	}
	if mf.Delivered != mf.Messages {
		t.Errorf("delivered %d of %d", mf.Delivered, mf.Messages)
	}
}

func TestSizeSplitRoutesByThreshold(t *testing.T) {
	mf, eng := twoPlaneFixture(t, &SizeSplit{Threshold: 4096, Small: 1, Large: 0})
	src, dst := fixturePair(mf)
	mf.Send(src, dst, 4095, nil) // < threshold: small plane
	mf.Send(src, dst, 4096, nil) // >= threshold: large plane
	mf.Send(src, dst, 1<<20, nil)
	eng.Run()
	if mf.PlaneMessages[1] != 1 || mf.PlaneMessages[0] != 2 {
		t.Errorf("plane messages = %v, want small plane 1, large plane 2", mf.PlaneMessages)
	}
}

func TestFailoverSkipsUnhealthyPlane(t *testing.T) {
	mf, eng := twoPlaneFixture(t, &Failover{})
	src, dst := fixturePair(mf)
	mf.Send(src, dst, 1024, nil)
	mf.SetPlaneHealth(0, false)
	mf.Send(src, dst, 1024, nil)
	mf.SetPlaneHealth(0, true)
	mf.Send(src, dst, 1024, nil)
	eng.Run()
	if mf.PlaneMessages[0] != 2 || mf.PlaneMessages[1] != 1 {
		t.Errorf("plane messages = %v, want [2 1]", mf.PlaneMessages)
	}
	if mf.Delivered != 3 {
		t.Errorf("delivered %d of 3", mf.Delivered)
	}
}
