package fabric

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/hpcsim/t2hx/internal/topo"
)

// SelectionPolicy picks the network plane that carries a message on a
// MultiFabric. It generalizes PARX's message-size LID switch (Sec. 3.2.4
// of the paper) from "which quadrant path within one plane" to "which
// plane of the machine". src and dst are primary-plane (plane 0) terminal
// IDs; the MultiFabric translates them for whichever plane is chosen.
//
// Policies may keep per-fabric state (RoundRobin does), so a fresh value
// must be constructed per MultiFabric — which is why the exp layer passes
// policies around as ParsePolicy spec strings, not values.
type SelectionPolicy interface {
	// Name identifies the policy in CLI flags and run reports.
	Name() string
	// SelectPlane returns the plane index for one message.
	SelectPlane(mf *MultiFabric, src, dst topo.NodeID, size int64) int
}

// SinglePlane pins all traffic to one plane — byte-for-byte the
// historical single-fabric behaviour, and the compatibility anchor of the
// multi-plane refactor: a MultiFabric under SinglePlane{0} must reproduce
// a plain Fabric run exactly.
type SinglePlane struct {
	Plane int
}

// Name implements SelectionPolicy.
func (s SinglePlane) Name() string { return "single" }

// SelectPlane implements SelectionPolicy.
func (s SinglePlane) SelectPlane(*MultiFabric, topo.NodeID, topo.NodeID, int64) int {
	return s.Plane
}

// DefaultSizeSplitThreshold splits at 16 KiB — past the MPI eager window,
// where a transfer stops being latency-bound and starts being
// bandwidth-bound.
const DefaultSizeSplitThreshold int64 = 16 << 10

// SizeSplit routes messages below Threshold to the Small plane (lowest
// switch-level diameter: fewest hops, lowest latency — the HyperX rail)
// and the rest to the Large plane (highest bisection — the Fat-Tree
// rail). Small/Large left negative are resolved by NewMulti from the
// planes' graph diameters.
type SizeSplit struct {
	Threshold int64
	Small     int
	Large     int
}

// NewSizeSplit returns a SizeSplit with auto-resolved planes; threshold
// <= 0 selects DefaultSizeSplitThreshold.
func NewSizeSplit(threshold int64) *SizeSplit {
	if threshold <= 0 {
		threshold = DefaultSizeSplitThreshold
	}
	return &SizeSplit{Threshold: threshold, Small: -1, Large: -1}
}

// Name implements SelectionPolicy.
func (s *SizeSplit) Name() string { return "sizesplit" }

// SelectPlane implements SelectionPolicy.
func (s *SizeSplit) SelectPlane(_ *MultiFabric, _, _ topo.NodeID, size int64) int {
	if size < s.Threshold {
		return s.Small
	}
	return s.Large
}

// resolve fills unset plane choices from the switch-level diameters of
// the attached planes: the lowest-diameter plane serves small messages,
// the highest-diameter one (on TSUBAME2, the full-bisection Fat-Tree)
// serves large ones.
func (s *SizeSplit) resolve(planes []*Fabric) {
	if s.Threshold <= 0 {
		s.Threshold = DefaultSizeSplitThreshold
	}
	if s.Small >= 0 && s.Large >= 0 {
		return
	}
	small, large := 0, 0
	minD, maxD := int(^uint(0)>>1), -1
	for p, f := range planes {
		d := topo.Diameter(f.G)
		if d < minD {
			minD, small = d, p
		}
		if d > maxD {
			maxD, large = d, p
		}
	}
	if small == large && len(planes) > 1 {
		large = (small + 1) % len(planes)
	}
	if s.Small < 0 {
		s.Small = small
	}
	if s.Large < 0 {
		s.Large = large
	}
}

// RoundRobin cycles sends across all planes in submission order —
// dual-rail bandwidth aggregation with no per-pair affinity. Stateful:
// construct one per MultiFabric.
type RoundRobin struct {
	next int
}

// Name implements SelectionPolicy.
func (r *RoundRobin) Name() string { return "roundrobin" }

// SelectPlane implements SelectionPolicy.
func (r *RoundRobin) SelectPlane(mf *MultiFabric, _, _ topo.NodeID, _ int64) int {
	p := r.next % len(mf.planes)
	r.next = (r.next + 1) % len(mf.planes)
	return p
}

// Striped pins each (src, dst) terminal pair to one plane by index hash:
// bandwidth aggregates across pairs while any single pair's messages stay
// ordered on one rail, preserving MPI point-to-point ordering.
type Striped struct{}

// Name implements SelectionPolicy.
func (Striped) Name() string { return "striped" }

// SelectPlane implements SelectionPolicy.
func (Striped) SelectPlane(mf *MultiFabric, src, dst topo.NodeID, _ int64) int {
	si := mf.termIndex(src)
	di := mf.termIndex(dst)
	return (si*31 + di) % len(mf.planes)
}

// Failover prefers planes in Order (nil means plane order) and skips any
// that is marked unhealthy — its subnet manager is mid-re-sweep after a
// fault, see faults.Manager.OnHealth and MultiFabric.SetPlaneHealth — or
// whose tables cannot currently route the message. If no plane passes
// both filters, reachability alone decides; if none is reachable the
// first preference takes the message into its bounded retry loop.
type Failover struct {
	Order []int
}

// Name implements SelectionPolicy.
func (f *Failover) Name() string { return "failover" }

// SelectPlane implements SelectionPolicy.
func (f *Failover) SelectPlane(mf *MultiFabric, src, dst topo.NodeID, size int64) int {
	for _, p := range f.Order {
		if mf.PlaneHealthy(p) && mf.CanRoute(p, src, dst, size) {
			return p
		}
	}
	for _, p := range f.Order {
		if mf.CanRoute(p, src, dst, size) {
			return p
		}
	}
	return f.Order[0]
}

// failoverOrder builds a preference order starting at primary, then the
// remaining planes ascending.
func failoverOrder(primary, n int) []int {
	order := []int{primary}
	for p := 0; p < n; p++ {
		if p != primary {
			order = append(order, p)
		}
	}
	return order
}

// ParsePolicy builds a selection policy from its CLI spec for a machine
// with numPlanes planes:
//
//	single[:plane]        pin to one plane (default 0)
//	sizesplit[:bytes]     small messages to the low-diameter plane,
//	                      large to the high-bisection one (default 16384)
//	roundrobin            cycle planes per message
//	striped               pin each terminal pair to a plane
//	failover[:primary]    prefer primary, skip unhealthy/unroutable planes
func ParsePolicy(spec string, numPlanes int) (SelectionPolicy, error) {
	if numPlanes < 1 {
		return nil, fmt.Errorf("fabric: policy needs at least one plane")
	}
	name, arg := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, arg = spec[:i], spec[i+1:]
	}
	planeArg := func(def int) (int, error) {
		if arg == "" {
			return def, nil
		}
		p, err := strconv.Atoi(arg)
		if err != nil || p < 0 || p >= numPlanes {
			return 0, fmt.Errorf("fabric: policy %q: plane %q out of range [0,%d)", name, arg, numPlanes)
		}
		return p, nil
	}
	switch name {
	case "", "single":
		p, err := planeArg(0)
		if err != nil {
			return nil, err
		}
		return SinglePlane{Plane: p}, nil
	case "sizesplit":
		thr := DefaultSizeSplitThreshold
		if arg != "" {
			v, err := strconv.ParseInt(arg, 10, 64)
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("fabric: policy sizesplit: bad threshold %q", arg)
			}
			thr = v
		}
		return NewSizeSplit(thr), nil
	case "roundrobin", "rr":
		return &RoundRobin{}, nil
	case "striped":
		return Striped{}, nil
	case "failover":
		p, err := planeArg(0)
		if err != nil {
			return nil, err
		}
		return &Failover{Order: failoverOrder(p, numPlanes)}, nil
	default:
		return nil, fmt.Errorf("fabric: unknown selection policy %q (want single, sizesplit, roundrobin, striped, or failover)", name)
	}
}
