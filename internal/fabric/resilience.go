package fabric

import (
	"fmt"

	"github.com/hpcsim/t2hx/internal/flow"
	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

// Resilience configures mid-run fault tolerance, modelling the InfiniBand
// transport's timeout/retransmit machinery: a message whose path dies (or
// that cannot be routed while the subnet manager is still re-sweeping) is
// re-sent after an escalating backoff until either a usable path appears in
// the tables or the retry budget runs out.
type Resilience struct {
	// RetryBackoff is the delay before the first re-send of a failed
	// message; it doubles per attempt (capped at 2^8 times the base), like
	// the IB local-ACK timeout escalation. Zero selects
	// DefaultRetryBackoff.
	RetryBackoff sim.Duration
	// MaxRetries bounds the re-sends per message (the IB retry_count
	// analogue). Zero selects DefaultMaxRetries; negative disables retries
	// (every failure is final).
	MaxRetries int
	// OnGiveUp is invoked when a message exhausts its retry budget and is
	// dropped. nil just counts the loss in GiveUps.
	OnGiveUp func(src, dst topo.NodeID, size int64, err error)
	// Redispatch, when set, is consulted before a failed message enters
	// the retry loop. Returning true means another transport (a sibling
	// plane of a MultiFabric) has taken ownership of the message, so this
	// fabric closes its record and stops retrying; false leaves the
	// message to the local backoff/retry budget. Redispatched messages do
	// not consume retry budget on the plane they leave.
	Redispatch func(src, dst topo.NodeID, size int64, onDelivered func(at sim.Time)) bool
}

// DefaultRetryBackoff mirrors a QDR-era local-ACK timeout of a few hundred
// microseconds.
const DefaultRetryBackoff sim.Duration = 250 * sim.Microsecond

// DefaultMaxRetries gives messages roughly 60 ms of cumulative patience at
// the default backoff — enough to ride out a detection + re-sweep cycle.
const DefaultMaxRetries = 12

// maxBackoffDoublings caps the exponential escalation so a long retry
// budget does not produce absurd multi-second gaps.
const maxBackoffDoublings = 8

// pendingSend tracks one logical message across delivery attempts.
type pendingSend struct {
	src, dst    topo.NodeID
	size        int64
	onDelivered func(at sim.Time)
	attempts    int
	// path is the routed (switch-fabric) path of the active attempt; nil
	// between attempts.
	path []topo.ChannelID
	// flowID is the handle of the active attempt's flow while the send is
	// registered in Fabric.inflight; it authenticates the inflight slot
	// against flow-table recycling.
	flowID flow.FlowID
	// rec is the telemetry record index, -1 when telemetry is off.
	rec int
}

// setInflight registers m under its flow's table slot.
func (f *Fabric) setInflight(id flow.FlowID, m *pendingSend) {
	idx := int(flow.Index(id))
	for idx >= len(f.inflight) {
		f.inflight = append(f.inflight, nil)
	}
	m.flowID = id
	f.inflight[idx] = m
	f.inflightN++
}

// clearInflight drops the registration for id, verifying the slot still
// belongs to it (the flow network recycles slots; a stale clear must not
// evict a newer send).
func (f *Fabric) clearInflight(id flow.FlowID) {
	idx := int(flow.Index(id))
	if idx < len(f.inflight) {
		if m := f.inflight[idx]; m != nil && m.flowID == id {
			f.inflight[idx] = nil
			f.inflightN--
		}
	}
}

// EnableResilience switches the fabric from fail-fast sends (panic on an
// unroutable message) to the bounded-retry behaviour described on
// Resilience. Call it before injecting runtime faults.
func (f *Fabric) EnableResilience(r Resilience) {
	if r.RetryBackoff == 0 {
		r.RetryBackoff = DefaultRetryBackoff
	}
	if r.MaxRetries == 0 {
		r.MaxRetries = DefaultMaxRetries
	} else if r.MaxRetries < 0 {
		r.MaxRetries = 0
	}
	f.res = &r
}

// ResilienceEnabled reports whether the bounded-retry layer is active.
func (f *Fabric) ResilienceEnabled() bool { return f.res != nil }

// attempt resolves a path for m and launches the transfer. With resilience
// enabled, resolution failures and paths that break before wire time feed
// the retry loop instead of panicking.
func (f *Fabric) attempt(m *pendingSend) {
	lid := f.selectLID(m.src, m.dst, m.size)
	p, err := f.pathTo(m.src, lid)
	if err != nil {
		// Route toward the base LID as a last resort (mirrors IB path
		// migration); if even that fails the destination is unreachable
		// under the current tables.
		p, err = f.pathTo(m.src, f.Tables.BaseLID[f.Tables.TermIndex(m.dst)])
	}
	if err != nil {
		f.sendFailed(m, err)
		return
	}
	pre := f.overhead() + f.PathLatency(p)
	recvO := f.Params.RecvOverhead
	srcChan, dstChan := topo.ChannelID(-1), topo.ChannelID(-1)
	if f.nodeChan0 >= 0 {
		srcChan = f.nodeChan0 + topo.ChannelID(f.Tables.TermIndex(m.src))
		dstChan = f.nodeChan0 + topo.ChannelID(f.Tables.TermIndex(m.dst))
	}
	adaptivePath := f.pml == adaptive
	if adaptivePath {
		f.noteFlow(p, 1)
	}
	m.path = p
	hops := len(p)
	f.Eng.After(pre, func(*sim.Engine) {
		f.Tel.MsgWired(m.rec, f.Eng.Now())
		if f.res != nil && pathBroken(f.G, p) {
			// The wire died while the head of the message was in flight.
			if adaptivePath {
				f.noteFlow(p, -1)
			}
			f.sendFailed(m, fmt.Errorf("fabric: path %s -> %s broke before wire time",
				f.G.Nodes[m.src].Label, f.G.Nodes[m.dst].Label))
			return
		}
		fp := p
		if srcChan >= 0 {
			// Thread the flow through both endpoints' aggregate-bandwidth
			// channels so concurrent sends+receives of one node share its
			// PCIe/HCA budget. The scratch buffer is safe to reuse across
			// attempts: flow.Start copies the path into its arena before
			// returning.
			fp = append(f.fpScratch[:0], srcChan)
			fp = append(fp, p...)
			fp = append(fp, dstChan)
			f.fpScratch = fp[:0]
		}
		var id flow.FlowID
		id = f.Net.Start(fp, float64(m.size), func(sim.Time) {
			if adaptivePath {
				f.noteFlow(p, -1)
			}
			f.clearInflight(id)
			f.Delivered++
			f.DeliveredBytes += float64(m.size)
			f.Eng.After(recvO, func(e *sim.Engine) {
				f.Tel.MsgDelivered(m.rec, e.Now(), hops, false)
				m.onDelivered(e.Now())
			})
		})
		// Zero-size flows get a real, cancellable ID too, so a link dying
		// under a header-only message tears it down like any other.
		if f.res != nil {
			f.setInflight(id, m)
		}
	})
}

// sendFailed feeds a failed attempt into the bounded-retry loop, or gives
// the message up once the budget is spent.
func (f *Fabric) sendFailed(m *pendingSend, err error) {
	if f.res == nil {
		panic(fmt.Sprintf("fabric: no route %s -> %s: %v",
			f.G.Nodes[m.src].Label, f.G.Nodes[m.dst].Label, err))
	}
	m.path = nil
	if f.res.Redispatch != nil && f.res.Redispatch(m.src, m.dst, m.size, m.onDelivered) {
		// A sibling plane took the message; its delivery is tracked there.
		f.Redispatched++
		f.Tel.MsgRedispatched(m.rec, f.Eng.Now())
		return
	}
	m.attempts++
	if m.attempts > f.res.MaxRetries {
		f.GiveUps++
		f.Tel.MsgGiveUp(m.rec, f.Eng.Now())
		if f.res.OnGiveUp != nil {
			f.res.OnGiveUp(m.src, m.dst, m.size, err)
		}
		return
	}
	f.Retries++
	f.Tel.MsgRetry(m.rec)
	d := m.attempts - 1
	if d > maxBackoffDoublings {
		d = maxBackoffDoublings
	}
	backoff := f.res.RetryBackoff * sim.Duration(int64(1)<<d)
	f.Eng.After(backoff, func(*sim.Engine) { f.attempt(m) })
}

// pathBroken reports whether any link along p is down.
func pathBroken(g *topo.Graph, p []topo.ChannelID) bool {
	for _, c := range p {
		if g.Link(c).Down {
			return true
		}
	}
	return false
}

// FailChannels reacts to channel failures: cached paths are dropped, and,
// with resilience enabled, every in-flight flow whose routed path crosses a
// channel for which dead returns true is torn down and fed into the retry
// loop (the IB transport's timeout/retransmit path). It returns the number
// of flows torn down. Callers flip the topo.Link Down flags before calling.
func (f *Fabric) FailChannels(dead func(topo.ChannelID) bool) int {
	// Snapshot boundary: integrate every flow to the fault instant before
	// any teardown, so the counters credit exactly the bytes that crossed
	// the fabric while the links were still up. (Cancel would advance each
	// victim anyway; this also closes the intervals of the survivors.)
	f.Net.FlushCounters()
	f.InvalidatePaths()
	if f.res == nil {
		return 0
	}
	// Scanning the dense slot array in ascending index order is
	// deterministic: the flow table assigns slots deterministically, so the
	// retry events scheduled below enqueue in a reproducible order.
	var victims []*pendingSend
	for _, m := range f.inflight {
		if m == nil {
			continue
		}
		for _, c := range m.path {
			if dead(c) {
				victims = append(victims, m)
				break
			}
		}
	}
	for _, m := range victims {
		id := m.flowID
		f.clearInflight(id)
		f.Net.Cancel(id)
		if f.pml == adaptive {
			f.noteFlow(m.path, -1)
		}
		f.TornDown++
		f.sendFailed(m, fmt.Errorf("fabric: link went down under an in-flight flow"))
	}
	return len(victims)
}

// InvalidatePaths drops the resolved-path cache; the next send re-walks the
// forwarding tables. Must be called after any change to table contents or
// link up/down state.
func (f *Fabric) InvalidatePaths() {
	for k := range f.paths {
		delete(f.paths, k)
	}
}

// SwapTables atomically replaces the routing tables — the subnet manager
// swapping re-programmed LFTs into the switches at the end of a re-sweep —
// and drops cached paths. The new tables must be built over the same graph
// with the same terminal set and LID layout, so in-flight destination LIDs
// keep their meaning across the swap.
func (f *Fabric) SwapTables(t *route.Tables) error {
	if t.G != f.G {
		return fmt.Errorf("fabric: new tables routed over a different graph")
	}
	if t.LMC != f.Tables.LMC || t.NumTerminals() != f.Tables.NumTerminals() {
		return fmt.Errorf("fabric: new tables change the LID layout (LMC %d->%d, terminals %d->%d)",
			f.Tables.LMC, t.LMC, f.Tables.NumTerminals(), t.NumTerminals())
	}
	for i, base := range f.Tables.BaseLID {
		if t.BaseLID[i] != base {
			return fmt.Errorf("fabric: new tables reassign base LID of terminal %d (%d -> %d)",
				i, base, t.BaseLID[i])
		}
	}
	f.Tables = t
	f.InvalidatePaths()
	return nil
}
