package fabric

import (
	"github.com/hpcsim/t2hx/internal/core"
	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/topo"
)

// Adaptive routing is the paper's explicit future-work target: "This PARX
// prototype ... will be replaced by true adaptive routing in future HyperX
// deployments, yielding even better results than ours" (Sec. 7). The
// HyperX was designed for DAL (Dimensionally-Adaptive, Load-balanced
// routing, Ahn et al.), which the authors' QDR InfiniBand could not do.
//
// The simulator can: EnableAdaptive makes the fabric pick, per message,
// the least-loaded of the destination's routed paths (all 2^LMC LIDs when
// the tables carry PARX's minimal+non-minimal set, or the single LID
// otherwise), using instantaneous channel occupancy — a flow-level
// idealization of per-packet adaptive routing.

// EnableAdaptive switches the fabric to load-adaptive path selection among
// the destination's LIDs. With LMC=0 tables it degenerates to static
// routing; it is most useful on PARX tables, where the four LIDs span
// minimal and non-minimal paths (a DAL-like choice set).
func (f *Fabric) EnableAdaptive(hx *topo.HyperX) error {
	if hx != nil && f.Tables.LMC >= core.LMC {
		// Keep quadrant bookkeeping for diagnostics parity with bfo.
		f.quadrants = make([]core.Quadrant, hx.NumTerminals())
		for i, tm := range hx.Terminals() {
			f.quadrants[i] = core.QuadrantOfTerminal(hx, tm)
		}
	}
	f.pml = adaptive
	f.hx = hx
	return nil
}

// adaptive is the internal PML value for load-adaptive selection.
const adaptive PML = 2

// channelLoad counts active flows per channel, maintained lazily from the
// flow network at selection time. To stay O(candidates) per message we
// track loads incrementally in the fabric.
type loadTracker struct {
	counts []int32
}

func (f *Fabric) loads() *loadTracker {
	if f.lt == nil {
		f.lt = &loadTracker{counts: make([]int32, 2*len(f.G.Links))}
	}
	return f.lt
}

// selectAdaptiveLID returns the destination LID whose routed path
// currently crosses the fewest busy channels (ties: lowest LID).
func (f *Fabric) selectAdaptiveLID(src, dst topo.NodeID, _ int64) route.LID {
	lt := f.loads()
	dstIdx := f.Tables.TermIndex(dst)
	base := f.Tables.BaseLID[dstIdx]
	span := route.LID(1) << f.Tables.LMC
	bestLID := base
	bestCost := int32(1 << 30)
	for off := route.LID(0); off < span; off++ {
		lid := base + off
		p, err := f.pathTo(src, lid)
		if err != nil {
			continue
		}
		// Cost: maximum occupancy along the path, then path length as a
		// minor term (prefer minimal among equally loaded).
		var occ int32
		for _, c := range p {
			if int(c) < len(lt.counts) && lt.counts[c] > occ {
				occ = lt.counts[c]
			}
		}
		cost := occ*64 + int32(len(p))
		if cost < bestCost {
			bestCost = cost
			bestLID = lid
		}
	}
	return bestLID
}

// noteFlow adjusts occupancy counters for a path. With telemetry attached
// the selection-time occupancy also raises the channel's concurrent-flow
// high-watermark, so the adaptive picker's view lands in the same counter
// set the flow network maintains.
func (f *Fabric) noteFlow(p []topo.ChannelID, delta int32) {
	lt := f.loads()
	for _, c := range p {
		if int(c) < len(lt.counts) {
			lt.counts[c] += delta
			if delta > 0 && f.Tel != nil && f.Tel.Chans != nil {
				f.Tel.Chans.NoteActive(c, int(lt.counts[c]))
			}
		}
	}
}

// MaxChannelOccupancy reports the highest concurrent-flow count seen on any
// fabric channel: the attached telemetry counters' high-watermark when
// available, else the adaptive PML's instantaneous selection occupancy.
func (f *Fabric) MaxChannelOccupancy() int32 {
	if f.Tel != nil && f.Tel.Chans != nil {
		if m := f.Tel.Chans.MaxActive(); m > 0 {
			return m
		}
	}
	if f.lt == nil {
		return 0
	}
	var m int32
	for _, c := range f.lt.counts {
		if c > m {
			m = c
		}
	}
	return m
}
