package figures

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"github.com/hpcsim/t2hx/internal/exp"
)

// CSV side-channel: when CSVDir is set on Params, every figure also writes
// its data series as CSV files (one per figure, long format), so the
// regenerated rows/series are machine-comparable against the paper's
// plots.

// csvSink buffers rows for one figure.
type csvSink struct {
	dir  string
	name string
	head []string
	rows [][]string
}

func (s *Session) sink(name string, head ...string) *csvSink {
	if s.P.CSVDir == "" {
		return nil
	}
	return &csvSink{dir: s.P.CSVDir, name: name, head: head}
}

func (k *csvSink) add(vals ...any) {
	if k == nil {
		return
	}
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case string:
			row[i] = x
		case int:
			row[i] = strconv.Itoa(x)
		case int64:
			row[i] = strconv.FormatInt(x, 10)
		case float64:
			row[i] = strconv.FormatFloat(x, 'g', 8, 64)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	k.rows = append(k.rows, row)
}

func (k *csvSink) flush() error {
	if k == nil {
		return nil
	}
	if err := os.MkdirAll(k.dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(k.dir, k.name+".csv"))
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	err = w.Write(k.head)
	if err == nil {
		err = w.WriteAll(k.rows)
	}
	if err == nil {
		w.Flush()
		err = w.Error()
	}
	// A failed Close (buffered data hitting a full disk) must fail the
	// figure, not vanish.
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeWhiskerCSV is used by whisker-style figures.
func writeWhiskerCSV(k *csvSink, combo exp.Combo, nodes int, st exp.Stats, gain float64) {
	k.add(combo.Name, nodes, st.Min, st.Q1, st.Median, st.Q3, st.Max, gain)
}
