// Package figures regenerates every table and figure of the paper's
// evaluation (Sec. 5) on the simulated planes: Fig. 1 (mpiGraph heatmaps),
// Table 1 (PARX LID selection), Fig. 4 (IMB collective gain grids),
// Fig. 5a-c (Baidu allreduce, Barrier, eBB), Fig. 6 (proxy apps and x500)
// and Fig. 7 (capacity throughput). Output is plain text (grids and
// whisker rows) written to an io.Writer, so the same code serves the CLI
// and the benchmark harness.
package figures

import (
	"fmt"
	"io"
	"sync"
	"text/tabwriter"

	"github.com/hpcsim/t2hx/internal/capacity"
	"github.com/hpcsim/t2hx/internal/core"
	"github.com/hpcsim/t2hx/internal/exp"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/trace"
	"github.com/hpcsim/t2hx/internal/workloads"
)

// Params configure a regeneration session.
type Params struct {
	// Out receives the rendered figures.
	Out io.Writer
	// MaxNodes caps the scaling ladders (672 reproduces the paper; lower
	// values produce faster, truncated figures).
	MaxNodes int
	// Trials per measurement cell (the paper ran 10).
	Trials int
	// Degrade applies the paper's missing-cable counts.
	Degrade bool
	// Seed drives all randomness.
	Seed uint64
	// Small switches to the 32-node test planes (CI-sized figures).
	Small bool
	// EBBSamples for Fig. 5c (paper: 1000).
	EBBSamples int
	// Sizes optionally restricts the IMB/Baidu message-size ladders.
	Sizes []int64
	// Jitter is the compute-phase lognormal sigma.
	Jitter float64
	// PARXDemands re-routes PARX with each workload's captured
	// communication profile before measuring it (the paper's SAR-style
	// workflow, Sec. 4.4.3). Costly at full scale.
	PARXDemands bool
	// CapacityWindow overrides the 3 h capacity window of Fig. 7.
	CapacityWindow sim.Duration
	// CSVDir, when set, additionally writes each figure's data series as
	// CSV files into that directory.
	CSVDir string
	// Workers sizes the measurement worker pool for the grid/whisker
	// figures; <= 0 uses GOMAXPROCS. Output is identical at any setting:
	// cells are measured in parallel but every cell's seed derives from
	// (Seed, node count), and rendering happens afterwards in figure order.
	Workers int
}

// Defaults fills unset fields.
func (p Params) withDefaults() Params {
	if p.MaxNodes == 0 {
		if p.Small {
			p.MaxNodes = 32
		} else {
			p.MaxNodes = 672
		}
	}
	if p.Trials == 0 {
		p.Trials = 3
	}
	if p.EBBSamples == 0 {
		p.EBBSamples = 1000
		if p.Small {
			p.EBBSamples = 50
		}
	}
	if p.Jitter == 0 {
		p.Jitter = 0.02
	}
	if p.CapacityWindow == 0 {
		p.CapacityWindow = capacity.Window
		if p.Small {
			p.CapacityWindow = 2 * sim.Minute
		}
	}
	return p
}

// Session caches built machines across figures.
type Session struct {
	P        Params
	mu       sync.Mutex // guards machines (cells measure concurrently)
	machines map[string]*exp.Machine
}

// NewSession prepares a regeneration session.
func NewSession(p Params) *Session {
	return &Session{P: p.withDefaults(), machines: make(map[string]*exp.Machine)}
}

// runner is the pool the grid/whisker figures measure their cells over.
func (s *Session) runner() exp.Runner {
	return exp.Runner{Workers: s.P.Workers, BaseSeed: s.P.Seed}
}

// Machine returns the (cached) plane for a combo.
func (s *Session) Machine(c exp.Combo) (*exp.Machine, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.machines[c.Name]; ok {
		return m, nil
	}
	m, err := exp.BuildMachine(c, exp.MachineConfig{
		Degrade: s.P.Degrade, Seed: s.P.Seed, Small: s.P.Small,
	})
	if err != nil {
		return nil, err
	}
	s.machines[c.Name] = m
	return m, nil
}

// parxMachineFor builds a demand-routed PARX plane for one workload
// profile (uncached: profiles differ per workload and rank count).
func (s *Session) parxMachineFor(c exp.Combo, progsBuild func(n int) (*workloads.Instance, error), n int) (*exp.Machine, error) {
	if c.Routing != "parx" || !s.P.PARXDemands {
		return s.Machine(c)
	}
	base, err := s.Machine(c) // for placement + terminals
	if err != nil {
		return nil, err
	}
	inst, err := progsBuild(n)
	if err != nil {
		return nil, err
	}
	norm := trace.Capture(inst.Progs).Normalize()
	ranks, err := base.Place(n, s.P.Seed)
	if err != nil {
		return nil, err
	}
	db := trace.NewDemandBuilder(base.G.Terminals())
	if err := db.AddJob(norm, ranks); err != nil {
		return nil, err
	}
	return exp.BuildMachine(c, exp.MachineConfig{
		Degrade: s.P.Degrade, Seed: s.P.Seed, Small: s.P.Small,
		Demands: db.Demands(),
	})
}

// ladder returns the node-count ladder capped at MaxNodes.
func (s *Session) ladder(powerOfTwo bool) []int {
	a := workloads.App{PowerOfTwo: powerOfTwo}
	return a.Ladder(s.P.MaxNodes)
}

// cell measures one (combo, nodes, builder) cell and returns the trial
// values.
func (s *Session) cell(c exp.Combo, n int, build func(n int) (*workloads.Instance, error)) ([]float64, error) {
	m, err := s.parxMachineFor(c, build, n)
	if err != nil {
		return nil, err
	}
	vals, _, err := exp.RunTrials(exp.TrialSpec{
		Machine: m, Nodes: n, Trials: s.P.Trials, Seed: s.P.Seed + uint64(n),
		Jitter: s.P.Jitter, Build: build,
	})
	return vals, err
}

func (s *Session) printf(format string, args ...any) {
	fmt.Fprintf(s.P.Out, format, args...)
}

// header prints a figure banner.
func (s *Session) header(title string) {
	s.printf("\n===== %s =====\n", title)
}

// gainGrid renders a Fig. 4-style grid: rows = message sizes, columns =
// node counts, entries = relative gain vs. the baseline combo.
func (s *Session) gainGrid(title string, sizes []int64, nodes []int,
	measure func(c exp.Combo, n int, size int64) (float64, error),
	better workloads.Direction) error {

	combos := exp.PaperCombos()
	base := combos[0]
	// Measure every (combo, size, node) cell over the session's pool, then
	// render the grids from the finished slice. Cell values depend only on
	// the session seed and the cell's own coordinates (s.cell seeds trials
	// with Seed+nodes), so the worker count never changes the figure.
	type coord struct {
		c  exp.Combo
		sz int64
		n  int
	}
	cs := make([]coord, 0, len(combos)*len(sizes)*len(nodes))
	for _, c := range combos {
		for _, sz := range sizes {
			for _, n := range nodes {
				cs = append(cs, coord{c, sz, n})
			}
		}
	}
	vals, err := exp.ForEach(s.runner(), len(cs), nil,
		func(i int, _ uint64) (float64, error) {
			v, err := measure(cs[i].c, cs[i].n, cs[i].sz)
			if err != nil {
				return 0, fmt.Errorf("%s %s n=%d size=%d: %w", title, cs[i].c.Name, cs[i].n, cs[i].sz, err)
			}
			return v, nil
		})
	if err != nil {
		return err
	}
	cellAt := func(ci, si, ni int) float64 { return vals[(ci*len(sizes)+si)*len(nodes)+ni] }

	k := s.sink(csvName(title), "combo", "msgsize", "nodes", "value", "gain")
	for ci, c := range combos[1:] {
		s.printf("\n--- %s: %s (gain vs %s) ---\n", title, c.Name, base.Name)
		w := tabwriter.NewWriter(s.P.Out, 4, 0, 1, ' ', tabwriter.AlignRight)
		fmt.Fprintf(w, "msgsize\\nodes\t")
		for _, n := range nodes {
			fmt.Fprintf(w, "%d\t", n)
		}
		fmt.Fprintln(w)
		for si, sz := range sizes {
			fmt.Fprintf(w, "%d\t", sz)
			for ni, n := range nodes {
				v := cellAt(ci+1, si, ni)
				g := exp.Gain(cellAt(0, si, ni), v, better)
				fmt.Fprintf(w, "%+.2f\t", g)
				k.add(c.Name, sz, n, v, g)
			}
			fmt.Fprintln(w)
		}
		w.Flush()
	}
	return k.flush()
}

// whiskerRows renders Fig. 5b/6-style whisker tables: one row per
// (combo, nodes) with min/q1/median/q3/max and gain-of-best.
func (s *Session) whiskerRows(title, unit string, nodes []int,
	measure func(c exp.Combo, n int) ([]float64, error),
	better workloads.Direction) error {

	combos := exp.PaperCombos()
	// Measure all (combo, nodes) rows over the pool before rendering (see
	// gainGrid for the determinism argument).
	rows, err := exp.ForEach(s.runner(), len(combos)*len(nodes), nil,
		func(i int, _ uint64) ([]float64, error) {
			c, n := combos[i/len(nodes)], nodes[i%len(nodes)]
			vals, err := measure(c, n)
			if err != nil {
				return nil, fmt.Errorf("%s %s n=%d: %w", title, c.Name, n, err)
			}
			return vals, nil
		})
	if err != nil {
		return err
	}

	baseBest := make(map[int]float64)
	s.header(title)
	k := s.sink(csvName(title), "combo", "nodes", "min", "q1", "median", "q3", "max", "gain")
	w := tabwriter.NewWriter(s.P.Out, 4, 0, 1, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "combo\tnodes\tmin\tq1\tmedian\tq3\tmax\tgain\t[%s]\n", unit)
	for ci, c := range combos {
		for ni, n := range nodes {
			st := exp.Summarize(rows[ci*len(nodes)+ni])
			best := st.Best(better)
			if ci == 0 {
				baseBest[n] = best
			}
			g := exp.Gain(baseBest[n], best, better)
			fmt.Fprintf(w, "%s\t%d\t%.4g\t%.4g\t%.4g\t%.4g\t%.4g\t%+.2f\t\n",
				c.Name, n, st.Min, st.Q1, st.Median, st.Q3, st.Max, g)
			writeWhiskerCSV(k, c, n, st, g)
		}
	}
	w.Flush()
	return k.flush()
}

// csvName slugs a figure title into a file name.
func csvName(title string) string {
	out := make([]rune, 0, len(title))
	for _, r := range title {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r >= 'A' && r <= 'Z':
			out = append(out, r)
		case r == ' ' || r == ':' || r == '/':
			if len(out) > 0 && out[len(out)-1] != '_' {
				out = append(out, '_')
			}
		}
	}
	return string(out)
}

// Table1 prints the PARX LID-selection matrices (Sec. 3.2.1, Table 1).
func (s *Session) Table1() error {
	s.header("Table 1: PARX virtual destination LID choice")
	for _, large := range []bool{false, true} {
		kind := "(a) small messages"
		if large {
			kind = "(b) large messages"
		}
		s.printf("\n%s\n      ", kind)
		for d := core.Q0; d <= core.Q3; d++ {
			s.printf("%6s", d)
		}
		s.printf("\n")
		for src := core.Q0; src <= core.Q3; src++ {
			s.printf("  %s:", src)
			for dst := core.Q0; dst <= core.Q3; dst++ {
				ch := core.LIDChoices(src, dst, large)
				cell := fmt.Sprintf("%d", ch[0])
				if len(ch) == 2 {
					cell = fmt.Sprintf("%d|%d", ch[0], ch[1])
				}
				s.printf("%6s", cell)
			}
			s.printf("\n")
		}
	}
	return nil
}
