package figures

import (
	"fmt"

	"github.com/hpcsim/t2hx/internal/exp"
	"github.com/hpcsim/t2hx/internal/workloads"
)

// Fig4 regenerates one panel of Fig. 4: the relative-gain grid of an IMB
// collective (bcast, gather, scatter, reduce, allreduce, alltoall) over
// message sizes and node counts, for the four non-baseline combos.
func (s *Session) Fig4(coll string) error {
	sizes := s.P.Sizes
	if sizes == nil {
		sizes = workloads.IMBMessageSizes()
	}
	nodes := s.ladder(false)
	measure := func(c exp.Combo, n int, size int64) (float64, error) {
		mk := func(n int) (*workloads.Instance, error) { return workloads.BuildIMB(coll, n, size) }
		vals, err := s.cell(c, n, mk)
		if err != nil {
			return 0, err
		}
		// The paper plots t_min across the 10 runs.
		return exp.Summarize(vals).Min, nil
	}
	s.header(fmt.Sprintf("Figure 4: IMB %s relative gain grids", coll))
	return s.gainGrid("Fig4/"+coll, sizes, nodes, measure, workloads.LowerIsBetter)
}

// Fig5a regenerates Baidu's DeepBench ring-allreduce gain grid over
// 4-byte-float array lengths and node counts.
func (s *Session) Fig5a() error {
	lengths := s.P.Sizes
	if lengths == nil {
		lengths = workloads.BaiduArrayLengths()
	}
	nodes := s.ladder(false)
	measure := func(c exp.Combo, n int, arrayLen int64) (float64, error) {
		mk := func(n int) (*workloads.Instance, error) {
			return workloads.BuildBaiduAllreduce(n, arrayLen), nil
		}
		vals, err := s.cell(c, n, mk)
		if err != nil {
			return 0, err
		}
		// Baidu reports average latency (Table 2: t_avg).
		return exp.Summarize(vals).Mean, nil
	}
	s.header("Figure 5a: Baidu DeepBench Allreduce relative gain")
	return s.gainGrid("Fig5a", lengths, nodes, measure, workloads.LowerIsBetter)
}

// Fig5b regenerates the IMB Barrier whiskers (latency in us per barrier);
// the paper's headline here is PARX's 2.8-6.9x slowdown from the untuned
// bfo PML.
func (s *Session) Fig5b() error {
	nodes := s.ladder(false)
	measure := func(c exp.Combo, n int) ([]float64, error) {
		mk := func(n int) (*workloads.Instance, error) { return workloads.BuildIMB("barrier", n, 1) }
		return s.cell(c, n, mk)
	}
	return s.whiskerRows("Figure 5b: IMB Barrier", "us", nodes, measure, workloads.LowerIsBetter)
}

// Fig5c regenerates Netgauge's effective bisection bandwidth whiskers
// (GiB/s per node pair, 1 MiB messages, random bisections).
func (s *Session) Fig5c() error {
	nodes := s.ladder(false)
	measure := func(c exp.Combo, n int) ([]float64, error) {
		m, err := s.Machine(c)
		if err != nil {
			return nil, err
		}
		ranks, err := m.Place(n, s.P.Seed)
		if err != nil {
			return nil, err
		}
		f, err := m.NewFabric(s.P.Seed)
		if err != nil {
			return nil, err
		}
		res, err := workloads.EffectiveBisectionBandwidth(f, ranks, s.P.EBBSamples, 1<<20, s.P.Seed+uint64(n))
		if err != nil {
			return nil, err
		}
		out := make([]float64, len(res.Samples))
		for i, v := range res.Samples {
			out[i] = workloads.GiB(v)
		}
		return out, nil
	}
	// eBB whiskers span the per-sample distribution; the "best" is the max.
	return s.whiskerRows("Figure 5c: Netgauge effective bisection bandwidth", "GiB/s",
		nodes, measure, workloads.HigherIsBetter)
}

// Fig6 regenerates one panel of Fig. 6: whisker rows of the app's metric
// across its scaling ladder for all five combos.
func (s *Session) Fig6(abbrev string) error {
	app, err := workloads.FindApp(abbrev)
	if err != nil {
		return err
	}
	nodes := s.ladder(app.PowerOfTwo)
	measure := func(c exp.Combo, n int) ([]float64, error) {
		mk := func(n int) (*workloads.Instance, error) { return app.Instance(n), nil }
		m, err := s.parxMachineFor(c, mk, n)
		if err != nil {
			return nil, err
		}
		vals, _, err := exp.RunTrials(exp.TrialSpec{
			Machine: m, Nodes: n, Trials: s.P.Trials, Seed: s.P.Seed + uint64(n),
			Jitter: s.P.Jitter, Build: mk,
		})
		return vals, err
	}
	title := fmt.Sprintf("Figure 6: %s (%s, %s scaling, %s)", app.Name, app.Abbrev, app.Scaling, app.Metric)
	return s.whiskerRows(title, app.Metric, nodes, measure, app.Better)
}
