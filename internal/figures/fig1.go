package figures

import (
	"github.com/hpcsim/t2hx/internal/exp"
	"github.com/hpcsim/t2hx/internal/workloads"
)

// fig1Nodes is the rack size of Fig. 1 (one 28-node rack).
const fig1Nodes = 28

// Fig1 regenerates the mpiGraph bandwidth comparison of Fig. 1: 28 nodes
// under (a) Fat-Tree/ftree, (b) HyperX/DFSSSP minimal routing, (c)
// HyperX/PARX. The paper's averages are 2.26, 0.84 and 1.39 GiB/s; the
// reproduction must show the same ordering and a PARX recovery of roughly
// +66% over minimal routing.
func (s *Session) Fig1() error {
	n := fig1Nodes
	if s.P.Small {
		n = 8
	}
	combos := []exp.Combo{
		exp.PaperCombos()[0], // Fat-Tree / ftree / linear
		exp.PaperCombos()[2], // HyperX / DFSSSP / linear
		exp.PaperCombos()[4], // HyperX / PARX (linear rack placement)
	}
	s.header("Figure 1: mpiGraph observable bandwidth, one 28-node rack")
	var avgs []float64
	for _, c := range combos {
		res, err := s.fig1One(c, n)
		if err != nil {
			return err
		}
		avgs = append(avgs, res.AvgGiB)
		s.printf("\n%s: avg %.2f GiB/s (min %.2f, max %.2f)\n", c.Name, res.AvgGiB, res.MinGiB, res.MaxGiB)
		s.heatmap(res)
	}
	if len(avgs) == 3 && avgs[1] > 0 {
		s.printf("\nPARX recovery over minimal HyperX routing: %+.0f%% (paper: +66%%)\n",
			100*(avgs[2]/avgs[1]-1))
	}
	return nil
}

// Fig1Averages returns just the three averages (for tests/benches).
func (s *Session) Fig1Averages() ([3]float64, error) {
	n := fig1Nodes
	if s.P.Small {
		n = 8
	}
	var out [3]float64
	for i, ci := range []int{0, 2, 4} {
		res, err := s.fig1One(exp.PaperCombos()[ci], n)
		if err != nil {
			return out, err
		}
		out[i] = res.AvgGiB
	}
	return out, nil
}

func (s *Session) fig1One(c exp.Combo, n int) (*workloads.MpiGraphResult, error) {
	m, err := s.Machine(c)
	if err != nil {
		return nil, err
	}
	// Fig. 1 is one rack: a linear slice of the hostfile, regardless of
	// the combo's job placement strategy.
	ranks := m.G.Terminals()[:n]
	f, err := m.NewFabric(s.P.Seed)
	if err != nil {
		return nil, err
	}
	return workloads.MpiGraph(f, ranks, 1<<20), nil
}

// heatmap prints an ASCII rendition of the bandwidth matrix: '.'=idle
// diagonal, then 1..9/# buckets of GiB/s relative to the global line rate.
func (s *Session) heatmap(res *workloads.MpiGraphResult) {
	if res.MaxGiB <= 0 {
		return
	}
	for i := range res.BW {
		for j := range res.BW[i] {
			if i == j {
				s.printf(".")
				continue
			}
			frac := workloads.GiB(res.BW[i][j]) / res.MaxGiB
			switch {
			case frac > 0.95:
				s.printf("#")
			default:
				s.printf("%d", int(frac*10))
			}
		}
		s.printf("\n")
	}
}
