package figures

import (
	"fmt"

	"github.com/hpcsim/t2hx/internal/exp"
	"github.com/hpcsim/t2hx/internal/fabric"
	"github.com/hpcsim/t2hx/internal/telemetry"
	"github.com/hpcsim/t2hx/internal/workloads"
)

// countersGroup is the shifted-incast group width of the counters figure:
// one switch's worth of HCAs (scaled down from TSUBAME2's 7-plus-1) all
// streaming to a receiver under the next group's subtree.
const countersGroup = 4

// countersMsgSize is the per-sender payload of the counters figure.
const countersMsgSize = 1 << 20

// FigCounters renders the observability figure the paper built from
// perfquery sweeps (Sec. 2): per-link utilization heatmaps (switch x
// switch XmitData) and top-channel counter tables, Fat-Tree/ftree vs
// HyperX/DFSSSP, under a congesting workload. op selects an IMB
// collective; the default "" runs the grouped shift-incast, whose
// signature is the figure's point — the fat-tree funnels the incasts
// through shared downward links (one hot channel with several converging
// flows) while the HyperX spreads them across direct dimension links.
func (s *Session) FigCounters(op string) error {
	n := 64
	if s.P.Small {
		n = 32
	}
	if s.P.MaxNodes > 0 && n > s.P.MaxNodes {
		n = s.P.MaxNodes
	}
	n -= n % countersGroup
	bench := "shift-incast group " + fmt.Sprint(countersGroup)
	build := func(nn int) (*workloads.Instance, error) {
		return workloads.BuildGroupedIncast(nn, countersGroup, countersMsgSize)
	}
	if op != "" {
		bench = "imb:" + op
		build = func(nn int) (*workloads.Instance, error) {
			return workloads.BuildIMB(op, nn, countersMsgSize)
		}
	}
	s.header(fmt.Sprintf("Counters: per-link utilization under %s, %d nodes", bench, n))
	combos := exp.PaperCombos()
	k := s.sink("counters_"+csvName(bench), "combo", "from", "to", "bytes", "wait_s", "hwm")
	for _, c := range []exp.Combo{combos[0], combos[2]} {
		m, err := s.Machine(c)
		if err != nil {
			return err
		}
		var col *telemetry.Collector
		_, _, err = exp.RunTrials(exp.TrialSpec{
			Machine: m, Nodes: n, Trials: 1, Seed: s.P.Seed, Build: build,
			Attach: func(_ int, msgr fabric.Messenger) {
				col = telemetry.New(m.G, telemetry.Options{Counters: true})
				msgr.(*fabric.Fabric).AttachTelemetry(col)
			},
		})
		if err != nil {
			return err
		}
		s.printf("\n%s: switch-to-switch XmitData heatmap (rows = source switch)\n", c.Name)
		s.switchHeatmap(col.Chans.SwitchMatrix())
		s.printf("\n")
		if err := telemetry.FprintHotLinks(s.P.Out, col.Chans, 10, col.Now()); err != nil {
			return err
		}
		for _, h := range col.Chans.HotLinks(0, col.Now()) {
			k.add(c.Name, h.From, h.To, h.Bytes, float64(h.Wait), int(h.HWM))
		}
	}
	return k.flush()
}

// switchHeatmap prints the switch x switch byte matrix with Fig. 1's
// bucket notation: '.' for an idle cell, 1..9 for the fraction of the
// hottest cell, '#' above 95%.
func (s *Session) switchHeatmap(m [][]float64) {
	var max float64
	for _, row := range m {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	if max <= 0 {
		s.printf("(no inter-switch traffic)\n")
		return
	}
	for _, row := range m {
		for _, v := range row {
			frac := v / max
			switch {
			case v == 0:
				s.printf(".")
			case frac > 0.95:
				s.printf("#")
			default:
				d := int(frac * 10)
				if d == 0 {
					d = 1 // traffic present: never render as idle
				}
				s.printf("%d", d)
			}
		}
		s.printf("\n")
	}
}
