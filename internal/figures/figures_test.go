package figures

import (
	"bytes"
	"strings"
	"testing"
)

func smallSession(t *testing.T, buf *bytes.Buffer) *Session {
	t.Helper()
	return NewSession(Params{
		Out: buf, Small: true, Trials: 2, Seed: 9, Degrade: false,
		Sizes: []int64{64, 65536}, PARXDemands: true,
	})
}

func TestTable1Renders(t *testing.T) {
	var buf bytes.Buffer
	s := smallSession(t, &buf)
	if err := s.Table1(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"(a) small messages", "(b) large messages", "1|3", "0|2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig1SmallShowsPARXRecovery(t *testing.T) {
	var buf bytes.Buffer
	s := smallSession(t, &buf)
	avgs, err := s.Fig1Averages()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's ordering: Fat-Tree > PARX > minimal HyperX.
	if !(avgs[0] > avgs[1]) {
		t.Errorf("Fat-Tree avg %.2f not above minimal HyperX %.2f", avgs[0], avgs[1])
	}
	if !(avgs[2] > avgs[1]) {
		t.Errorf("PARX avg %.2f did not recover over minimal HyperX %.2f", avgs[2], avgs[1])
	}
	if err := s.Fig1(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "PARX recovery") {
		t.Error("Fig. 1 output missing recovery line")
	}
}

func TestFig4GridRenders(t *testing.T) {
	var buf bytes.Buffer
	s := smallSession(t, &buf)
	if err := s.Fig4("bcast"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "HyperX / PARX / clustered") {
		t.Error("Fig. 4 missing PARX grid")
	}
	if !strings.Contains(out, "msgsize\\nodes") {
		t.Error("Fig. 4 missing grid header")
	}
}

func TestFig5aRenders(t *testing.T) {
	var buf bytes.Buffer
	s := smallSession(t, &buf)
	s.P.Sizes = []int64{1024}
	if err := s.Fig5a(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Baidu") {
		t.Error("Fig. 5a missing banner")
	}
}

func TestFig5bShowsPARXBarrierPenalty(t *testing.T) {
	var buf bytes.Buffer
	s := smallSession(t, &buf)
	if err := s.Fig5b(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Barrier") {
		t.Fatal("missing banner")
	}
	// The PARX rows must exist and carry negative gains (bfo penalty).
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "PARX") && strings.Contains(line, "-0.") {
			found = true
		}
	}
	if !found {
		t.Errorf("PARX barrier rows show no slowdown:\n%s", out)
	}
}

func TestFig5cRenders(t *testing.T) {
	var buf bytes.Buffer
	s := smallSession(t, &buf)
	s.P.EBBSamples = 10
	if err := s.Fig5c(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bisection") {
		t.Error("Fig. 5c missing banner")
	}
}

func TestFig6RendersApp(t *testing.T) {
	var buf bytes.Buffer
	s := smallSession(t, &buf)
	if err := s.Fig6("CoMD"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "CoMD") || !strings.Contains(out, "median") {
		t.Errorf("Fig. 6 output malformed:\n%s", out)
	}
	if err := s.Fig6("nope"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestFig7SmallRuns(t *testing.T) {
	var buf bytes.Buffer
	s := smallSession(t, &buf)
	totals, err := s.Fig7Totals()
	if err != nil {
		t.Fatal(err)
	}
	if len(totals) != 5 {
		t.Fatalf("totals for %d combos, want 5", len(totals))
	}
	for name, tot := range totals {
		if tot == 0 {
			t.Errorf("%s completed zero runs", name)
		}
	}
	if err := s.Fig7(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TOTAL") {
		t.Error("Fig. 7 missing totals row")
	}
}
