package figures

import (
	"fmt"
	"text/tabwriter"

	"github.com/hpcsim/t2hx/internal/capacity"
	"github.com/hpcsim/t2hx/internal/exp"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/workloads"
)

// Fig7 regenerates the capacity/throughput comparison: completed runs per
// application for each of the five combos over the (configurable) window.
// The paper's headline: HyperX/DFSSSP/linear finishes 12.7% more jobs than
// the Fat-Tree baseline, and MILC collapses under random placement.
func (s *Session) Fig7() error {
	mix := capacity.PaperMix()
	if s.P.Small {
		mix = smallMixFor(s.P)
	}
	s.header(fmt.Sprintf("Figure 7: capacity evaluation (%d apps, %d nodes, %.0f min window)",
		len(mix), capacity.TotalNodes(mix), float64(s.P.CapacityWindow)/60))
	results := make(map[string]*capacity.Result)
	totals := make(map[string]int)
	combos := exp.PaperCombos()
	for _, c := range combos {
		m, err := s.Machine(c)
		if err != nil {
			return err
		}
		res, err := capacity.Run(m, mix, s.P.CapacityWindow, s.P.Seed)
		if err != nil {
			return err
		}
		results[c.Name] = res
		totals[c.Name] = res.Total
	}
	w := tabwriter.NewWriter(s.P.Out, 4, 0, 1, ' ', tabwriter.AlignRight)
	fmt.Fprintf(w, "app\t")
	for _, c := range combos {
		fmt.Fprintf(w, "%s\t", shortCombo(c))
	}
	fmt.Fprintln(w)
	order := capacity.Order()
	if s.P.Small {
		order = nil
		for _, sp := range mix {
			order = append(order, sp.Abbrev)
		}
	}
	for _, app := range order {
		fmt.Fprintf(w, "%s\t", app)
		for _, c := range combos {
			fmt.Fprintf(w, "%d\t", results[c.Name].Runs[app])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "TOTAL\t")
	for _, c := range combos {
		fmt.Fprintf(w, "%d\t", totals[c.Name])
	}
	fmt.Fprintln(w)
	w.Flush()
	base := totals[combos[0].Name]
	if base > 0 {
		for _, c := range combos[1:] {
			s.printf("%s vs baseline: %+.1f%%\n", c.Name,
				100*(float64(totals[c.Name])/float64(base)-1))
		}
	}
	return nil
}

// Fig7Totals runs the capacity study and returns per-combo totals (tests).
func (s *Session) Fig7Totals() (map[string]int, error) {
	mix := capacity.PaperMix()
	if s.P.Small {
		mix = smallMixFor(s.P)
	}
	totals := make(map[string]int)
	for _, c := range exp.PaperCombos() {
		m, err := s.Machine(c)
		if err != nil {
			return nil, err
		}
		res, err := capacity.Run(m, mix, s.P.CapacityWindow, s.P.Seed)
		if err != nil {
			return nil, err
		}
		totals[c.Name] = res.Total
	}
	return totals, nil
}

// smallMixFor is a 4-app mix sized for the 32-node test planes.
func smallMixFor(p Params) []capacity.AppSpec {
	quick := workloads.BuildOpts{IterScale: 0.1, ComputeScale: 1, Prolog: 2 * sim.Second}
	var mix []capacity.AppSpec
	for _, ab := range []string{"AMG", "CoMD", "MILC", "GraD"} {
		app, err := workloads.FindApp(ab)
		if err != nil {
			panic(err)
		}
		mix = append(mix, capacity.AppSpec{
			Abbrev: app.Abbrev, Nodes: 8,
			Build: func(n int) *workloads.Instance { return app.Build(n, quick) },
		})
	}
	return mix
}

// shortCombo abbreviates a combo name for table headers.
func shortCombo(c exp.Combo) string {
	topo := "FT"
	if c.Topology == "hyperx" {
		topo = "HX"
	}
	return fmt.Sprintf("%s/%s/%s", topo, c.Routing, string(c.Placement)[:4])
}
