package figures

import (
	"fmt"
	"text/tabwriter"

	"github.com/hpcsim/t2hx/internal/exp"
	"github.com/hpcsim/t2hx/internal/fabric"
	"github.com/hpcsim/t2hx/internal/telemetry"
	"github.com/hpcsim/t2hx/internal/topo"
	"github.com/hpcsim/t2hx/internal/workloads"
)

// planesSmallMsg is the latency-bound payload of the planes figure; it
// sits well under the sizesplit default, so the policy steers it onto the
// low-diameter HyperX rail.
const planesSmallMsg = 512

// FigPlanes compares the counters figure's grouped shift-incast run on
// each rail alone against the dual-plane TSUBAME2 machine, at a
// latency-bound and a bandwidth-bound message size. The dual-plane rows
// carry the figure's point: the sizesplit policy routes the 512 B incast
// almost entirely over the diameter-2 HyperX plane while the 1 MiB incast
// rides the full-bisection Fat-Tree, so each rail's XmitData share flips
// between the two sizes.
func (s *Session) FigPlanes() error {
	n := 64
	if s.P.Small {
		n = 32
	}
	if s.P.MaxNodes > 0 && n > s.P.MaxNodes {
		n = s.P.MaxNodes
	}
	n -= n % countersGroup
	s.header(fmt.Sprintf("Planes: single- vs dual-plane shift-incast (group %d), %d nodes", countersGroup, n))
	k := s.sink("planes", "machine", "size", "score", "plane", "msgs", "xmit_bytes", "share")
	combos := exp.PaperCombos()
	cases := []exp.Combo{combos[0], combos[4], exp.DualPlaneCombo()}
	w := tabwriter.NewWriter(s.P.Out, 4, 0, 2, ' ', 0)
	fmt.Fprintln(w, "machine\tsize\tus/op\tplane\tmsgs\txmit MiB\tshare")
	for _, c := range cases {
		m, err := s.Machine(c)
		if err != nil {
			return err
		}
		for _, size := range []int64{planesSmallMsg, countersMsgSize} {
			var col *telemetry.Collector
			var tm *telemetry.Multi
			var mf *fabric.MultiFabric
			var single *fabric.Fabric
			vals, _, err := exp.RunTrials(exp.TrialSpec{
				Machine: m, Nodes: n, Trials: 1, Seed: s.P.Seed,
				Build: func(nn int) (*workloads.Instance, error) {
					return workloads.BuildGroupedIncast(nn, countersGroup, size)
				},
				Attach: func(_ int, msgr fabric.Messenger) {
					switch f := msgr.(type) {
					case *fabric.MultiFabric:
						mf = f
						gs := make([]*topo.Graph, len(m.Planes))
						names := make([]string, len(m.Planes))
						for i, p := range m.Planes {
							gs[i] = p.G
							names[i] = p.Spec.Label()
						}
						tm = telemetry.NewMulti(gs, names, telemetry.Options{Counters: true})
						if err := f.AttachTelemetry(tm); err != nil {
							panic(err) // lengths match by construction
						}
					case *fabric.Fabric:
						single = f
						col = telemetry.New(m.G, telemetry.Options{Counters: true})
						f.AttachTelemetry(col)
					}
				},
			})
			if err != nil {
				return err
			}
			score := vals[0]
			const mib = 1 << 20
			if tm != nil {
				total := tm.TotalXmitData()
				for p, cl := range tm.Planes {
					share := 0.0
					if total > 0 {
						share = cl.Chans.TotalXmitData() / total
					}
					fmt.Fprintf(w, "%s\t%d\t%.4g\t%s\t%d\t%.2f\t%.1f%%\n",
						c.Name, size, score, cl.PlaneName, mf.PlaneMessages[p],
						cl.Chans.TotalXmitData()/mib, 100*share)
					k.add(c.Name, size, score, cl.PlaneName, int(mf.PlaneMessages[p]),
						cl.Chans.TotalXmitData(), share)
				}
			} else {
				fmt.Fprintf(w, "%s\t%d\t%.4g\t%s\t%d\t%.2f\t%.1f%%\n",
					c.Name, size, score, "(single)", single.Messages,
					col.Chans.TotalXmitData()/mib, 100.0)
				k.add(c.Name, size, score, "single", int(single.Messages),
					col.Chans.TotalXmitData(), 1.0)
			}
		}
		w.Flush()
	}
	return k.flush()
}
