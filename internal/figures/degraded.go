package figures

import (
	"fmt"
	"text/tabwriter"

	"github.com/hpcsim/t2hx/internal/exp"
	"github.com/hpcsim/t2hx/internal/workloads"
)

// FigDegraded renders the degraded-topology survival table — the study the
// paper's production system could not run (it lived with 15 of its 197
// HyperX links already broken, Sec. 2.3): for each HyperX routing engine
// and failure count, seeded failure-chain variants record survival,
// slowdown, mid-outage goodput, SM re-sweep latency, stranded pairs and the
// deadlock-freedom margin of the final tables as failures climb well past
// the paper's count.
func (s *Session) FigDegraded() error {
	engines := []string{"dfsssp", "hxmin", "hxnm"}
	counts := []int{0, 15, 30, 60, 90}
	variants := 25
	nodes := 56
	if s.P.Small {
		counts = []int{0, 3, 6, 9}
		variants = 8
		nodes = 16
	}
	spec := exp.DegradedSpec{
		Engines: engines,
		Workloads: []exp.DegradedWorkload{{
			Name: "imb:alltoall",
			Build: func(n int) (*workloads.Instance, error) {
				return workloads.BuildIMB("alltoall", n, 64<<10)
			},
		}},
		Counts: counts, Variants: variants,
		Nodes: nodes, Small: s.P.Small, Seed: s.P.Seed,
	}
	results, err := exp.RunDegraded(s.runner(), spec)
	if err != nil {
		return err
	}
	s.header(fmt.Sprintf("Degraded-topology survival: %d engines x %d failure counts x %d variants (alltoall, %d ranks)",
		len(engines), len(counts), variants, nodes))
	k := s.sink("degraded", "engine", "failures", "variants", "survived",
		"slowdown_med", "goodput_during", "sweep_p50_s", "sweep_max_s",
		"unreach_mean", "unreach_max", "margin_min", "margin_mean")
	const gib = 1 << 30
	w := tabwriter.NewWriter(s.P.Out, 4, 0, 1, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "engine\tfailures\tsurvived\tslowdown\tgoodput(GiB/s)\tsweepP50(ms)\tsweepMax(ms)\tunreach(mean/max)\tmargin(min/mean)\t")
	for _, row := range exp.SummarizeDegraded(results) {
		fmt.Fprintf(w, "%s\t%d\t%d/%d\t%+.1f%%\t%.3f\t%.3f\t%.3f\t%.1f/%d\t%.3f/%.3f\t\n",
			row.Engine, row.Failures, row.Survived, row.Variants,
			100*row.SlowdownMed, row.GoodputDuringMed/gib,
			1e3*float64(row.SweepP50Med), 1e3*float64(row.SweepMaxMax),
			row.UnreachableMean, row.UnreachableMax,
			row.MarginMin, row.MarginMean)
		k.add(row.Engine, row.Failures, row.Variants, row.Survived,
			row.SlowdownMed, row.GoodputDuringMed,
			float64(row.SweepP50Med), float64(row.SweepMaxMax),
			row.UnreachableMean, row.UnreachableMax,
			row.MarginMin, row.MarginMean)
	}
	w.Flush()
	return k.flush()
}
