// Package t2hx's benchmark harness: one testing.B benchmark per paper
// table/figure (regenerating it at CI scale; full scale via cmd/figures),
// plus ablation benches for the design choices called out in DESIGN.md.
// Reported custom metrics carry the reproduction's headline numbers so a
// `go test -bench` run doubles as a shape check.
package t2hx

import (
	"fmt"
	"io"
	"testing"

	"github.com/hpcsim/t2hx/internal/core"
	"github.com/hpcsim/t2hx/internal/exp"
	"github.com/hpcsim/t2hx/internal/fabric"
	"github.com/hpcsim/t2hx/internal/figures"
	"github.com/hpcsim/t2hx/internal/flow"
	"github.com/hpcsim/t2hx/internal/mpi"
	"github.com/hpcsim/t2hx/internal/prof"
	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/telemetry"
	"github.com/hpcsim/t2hx/internal/topo"
	"github.com/hpcsim/t2hx/internal/workloads"
)

func benchSession() *figures.Session {
	return figures.NewSession(figures.Params{
		Out: io.Discard, Small: true, Trials: 1, Seed: 1,
		Sizes: []int64{64, 1 << 20}, EBBSamples: 20,
		CapacityWindow: sim.Minute,
	})
}

// BenchmarkTable1 regenerates the PARX LID-selection matrices.
func BenchmarkTable1(b *testing.B) {
	s := benchSession()
	for i := 0; i < b.N; i++ {
		if err := s.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1MpiGraph regenerates the three mpiGraph heatmaps and
// reports the PARX recovery over minimal routing.
func BenchmarkFig1MpiGraph(b *testing.B) {
	var rec float64
	for i := 0; i < b.N; i++ {
		s := benchSession()
		avgs, err := s.Fig1Averages()
		if err != nil {
			b.Fatal(err)
		}
		rec = avgs[2]/avgs[1] - 1
	}
	b.ReportMetric(100*rec, "%PARX-recovery")
}

// BenchmarkFig4 regenerates one IMB gain grid per collective.
func BenchmarkFig4(b *testing.B) {
	for _, coll := range []string{"bcast", "gather", "scatter", "reduce", "allreduce", "alltoall"} {
		coll := coll
		b.Run(coll, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := benchSession()
				if err := s.Fig4(coll); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5aBaidu regenerates the ring-allreduce gain grid.
func BenchmarkFig5aBaidu(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession()
		s.P.Sizes = []int64{1024, 1 << 20}
		if err := s.Fig5a(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5bBarrier regenerates the Barrier whiskers.
func BenchmarkFig5bBarrier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession()
		if err := s.Fig5b(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5cEBB regenerates the effective-bisection-bandwidth
// whiskers.
func BenchmarkFig5cEBB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSession()
		if err := s.Fig5c(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 regenerates one whisker panel per application (Fig. 6a-l).
func BenchmarkFig6(b *testing.B) {
	for _, a := range workloads.Registry() {
		a := a
		b.Run(a.Abbrev, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := benchSession()
				if err := s.Fig6(a.Abbrev); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7Capacity regenerates the capacity table at CI scale and
// reports the HyperX/DFSSSP/linear gain over the baseline.
func BenchmarkFig7Capacity(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		s := benchSession()
		totals, err := s.Fig7Totals()
		if err != nil {
			b.Fatal(err)
		}
		base := totals["Fat-Tree / ftree / linear"]
		if base > 0 {
			gain = float64(totals["HyperX / DFSSSP / linear"])/float64(base) - 1
		}
	}
	b.ReportMetric(100*gain, "%HX-throughput-gain")
}

// --- routing-engine benches (cost of the subnet-manager side) ---

func benchHX() *topo.HyperX {
	return topo.NewHyperX(topo.HyperXConfig{
		S: []int{6, 4}, T: 4,
		Bandwidth: topo.QDRBandwidth, Latency: topo.QDRLinkLatency,
	})
}

// BenchmarkRoutingEngines measures full-table computation on a 6x4 HyperX
// (96 terminals) and on the matching tree.
func BenchmarkRoutingEngines(b *testing.B) {
	b.Run("sssp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hx := benchHX()
			if _, err := route.SSSP(hx.Graph, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dfsssp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hx := benchHX()
			if _, err := route.DFSSSP(hx.Graph, 0, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("updown", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hx := benchHX()
			if _, err := route.UpDown(hx.Graph, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parx", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hx := benchHX()
			if _, err := core.PARX(hx, core.Config{MaxVL: 8}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ftree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ft := topo.NewKaryNTree(4, 3, topo.QDRBandwidth, topo.QDRLinkLatency)
			if _, err := route.FTree(ft, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- ablation benches (DESIGN.md Sec. 4) ---

// BenchmarkAblationFlowRecompute quantifies the max-min allocator: cost of
// progressive filling as concurrent flows grow.
func BenchmarkAblationFlowRecompute(b *testing.B) {
	for _, nflows := range []int{16, 64, 256, 1024} {
		nflows := nflows
		b.Run(fmt.Sprintf("flows=%d", nflows), func(b *testing.B) {
			hx := benchHX()
			tb, err := route.DFSSSP(hx.Graph, 0, 8)
			if err != nil {
				b.Fatal(err)
			}
			terms := hx.Terminals()
			// Pre-resolve paths.
			var paths [][]topo.ChannelID
			for i := 0; len(paths) < nflows; i++ {
				src := terms[i%len(terms)]
				dst := terms[(i*7+3)%len(terms)]
				if src == dst {
					continue
				}
				p, err := tb.Path(src, tb.BaseLID[tb.TermIndex(dst)])
				if err != nil {
					b.Fatal(err)
				}
				paths = append(paths, p)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine()
				net := flow.NewNetwork(eng, hx.Graph)
				for _, p := range paths {
					net.Start(p, 1e6, func(sim.Time) {})
				}
				eng.Run()
			}
		})
	}
}

// BenchmarkAblationPMLOverhead sweeps the bfo penalty and reports the
// resulting Barrier latency — the knob behind the paper's 2.8-6.9x
// Barrier slowdown.
func BenchmarkAblationPMLOverhead(b *testing.B) {
	for _, penaltyUS := range []float64{0, 1.2, 2.4, 4.8} {
		penaltyUS := penaltyUS
		b.Run(fmt.Sprintf("penalty=%.1fus", penaltyUS), func(b *testing.B) {
			hx := topo.NewHyperX(topo.HyperXConfig{
				S: []int{4, 4}, T: 2,
				Bandwidth: topo.QDRBandwidth, Latency: topo.QDRLinkLatency,
			})
			tbl, err := core.PARX(hx, core.Config{MaxVL: 8})
			if err != nil {
				b.Fatal(err)
			}
			var lat float64
			for i := 0; i < b.N; i++ {
				params := fabric.DefaultParams()
				params.BFOPenalty = sim.Duration(penaltyUS) * sim.Microsecond
				f := fabric.New(sim.NewEngine(), tbl, params, 1)
				if err := f.EnableBFO(hx, 0); err != nil {
					b.Fatal(err)
				}
				inst, err := workloads.BuildIMB("barrier", 16, 1)
				if err != nil {
					b.Fatal(err)
				}
				res, err := mpi.Run(f, "barrier", hx.Terminals()[:16], inst.Progs, mpi.Options{})
				if err != nil {
					b.Fatal(err)
				}
				lat = inst.Score(res.Elapsed)
			}
			b.ReportMetric(lat, "us/barrier")
		})
	}
}

// BenchmarkAblationPARXThreshold sweeps the small/large message threshold
// (the paper fixed 512 B, Sec. 3.2.4) and reports mpiGraph average
// bandwidth between two adjacent switches.
func BenchmarkAblationPARXThreshold(b *testing.B) {
	for _, thr := range []int64{64, 512, 65536, 1 << 30} {
		thr := thr
		b.Run(fmt.Sprintf("threshold=%d", thr), func(b *testing.B) {
			hx := topo.NewHyperX(topo.HyperXConfig{
				S: []int{6, 4}, T: 7,
				Bandwidth: topo.QDRBandwidth, Latency: topo.QDRLinkLatency,
			})
			tbl, err := core.PARX(hx, core.Config{MaxVL: 8})
			if err != nil {
				b.Fatal(err)
			}
			var avg float64
			for i := 0; i < b.N; i++ {
				f := fabric.New(sim.NewEngine(), tbl, fabric.DefaultParams(), 1)
				if err := f.EnableBFO(hx, thr); err != nil {
					b.Fatal(err)
				}
				ranks := append(hx.TerminalsOf(hx.SwitchAt(0, 0)), hx.TerminalsOf(hx.SwitchAt(1, 0))...)
				avg = workloads.MpiGraph(f, ranks, 1<<20).AvgGiB
			}
			b.ReportMetric(avg, "GiB/s")
		})
	}
}

// BenchmarkAblationPlacement isolates the Sec. 3.1 mitigation: alltoall
// latency under the three placements on the same DFSSSP HyperX.
func BenchmarkAblationPlacement(b *testing.B) {
	combos := map[string]exp.Combo{
		"linear": exp.PaperCombos()[2],
		"random": exp.PaperCombos()[3],
	}
	for name, cmb := range combos {
		cmb := cmb
		b.Run(name, func(b *testing.B) {
			m, err := exp.BuildMachine(cmb, exp.MachineConfig{Small: true, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			var lat float64
			for i := 0; i < b.N; i++ {
				vals, _, err := exp.RunTrials(exp.TrialSpec{
					Machine: m, Nodes: 8, Trials: 1, Seed: 3,
					Build: func(n int) (*workloads.Instance, error) {
						return workloads.BuildIMB("alltoall", n, 1<<20)
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				lat = vals[0]
			}
			b.ReportMetric(lat, "us/op")
		})
	}
}

// BenchmarkAblationTelemetry quantifies the observability tax: the same
// alltoall run with no collector (the nil-hook hot path, which must stay
// within noise of the pre-telemetry baseline), with counters only, and
// with every recording surface on.
func BenchmarkAblationTelemetry(b *testing.B) {
	modes := []struct {
		name string
		opts *telemetry.Options
	}{
		{"disabled", nil},
		{"counters", &telemetry.Options{Counters: true}},
		{"full", &telemetry.Options{Counters: true, Messages: true, Trace: true}},
	}
	m, err := exp.BuildMachine(exp.PaperCombos()[2], exp.MachineConfig{Small: true, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range modes {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := exp.TrialSpec{
					Machine: m, Nodes: 16, Trials: 1, Seed: 3,
					Build: func(n int) (*workloads.Instance, error) {
						return workloads.BuildIMB("alltoall", n, 1<<20)
					},
				}
				if mode.opts != nil {
					spec.Attach = func(_ int, msgr fabric.Messenger) {
						msgr.(*fabric.Fabric).AttachTelemetry(telemetry.New(m.G, *mode.opts))
					}
				}
				if _, _, err := exp.RunTrials(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtensionAdaptiveRouting compares the paper's future-work
// scenario (Sec. 7): static PARX/bfo vs. idealized adaptive routing over
// the same PARX path set, on the 7-pair adjacent-switch hotspot. Reported
// metric: adaptive speedup factor.
func BenchmarkExtensionAdaptiveRouting(b *testing.B) {
	hotspot := func(adaptiveMode bool) sim.Time {
		hx := topo.NewHyperX(topo.HyperXConfig{
			S: []int{6, 4}, T: 7,
			Bandwidth: topo.QDRBandwidth, Latency: topo.QDRLinkLatency,
		})
		tbl, err := core.PARX(hx, core.Config{MaxVL: 8})
		if err != nil {
			b.Fatal(err)
		}
		f := fabric.New(sim.NewEngine(), tbl, fabric.DefaultParams(), 1)
		if adaptiveMode {
			if err := f.EnableAdaptive(hx); err != nil {
				b.Fatal(err)
			}
		} else if err := f.EnableBFO(hx, 0); err != nil {
			b.Fatal(err)
		}
		src := hx.TerminalsOf(hx.SwitchAt(0, 0))
		dst := hx.TerminalsOf(hx.SwitchAt(1, 0))
		var last sim.Time
		for i := range src {
			f.Send(src[i], dst[i], 4<<20, func(at sim.Time) {
				if at > last {
					last = at
				}
			})
		}
		f.Eng.Run()
		return last
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		speedup = float64(hotspot(false)) / float64(hotspot(true))
	}
	b.ReportMetric(speedup, "x-speedup-vs-static-PARX")
}

// BenchmarkCDGInsertion measures the incremental cycle-detection structure
// underlying every deadlock-freedom proof in the repository.
func BenchmarkCDGInsertion(b *testing.B) {
	r := sim.NewRand(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := route.NewCDG()
		for k := 0; k < 2000; k++ {
			g.AddEdge(topo.ChannelID(r.Intn(200)), topo.ChannelID(r.Intn(200)))
		}
	}
}

// --- sweep-engine benches (DESIGN.md Sec. 8) ---

// BenchmarkSweepParallel measures the multicore sweep engine: one op runs
// a 10-cell mini-sweep (all five paper combos x two alltoall sizes, two
// trials each, small planes) through exp.RunSweep at the given worker
// count. The cells/s metric is what -j buys; the j=8/j=1 ratio is the
// parallel speedup and needs >= 8 host cores to show fully (a 1-CPU
// container reports ~1x). Results are bit-identical across j by
// construction (TestSweepDeterministicAcrossWorkers).
func BenchmarkSweepParallel(b *testing.B) {
	mkCells := func() []exp.SweepCell {
		var cells []exp.SweepCell
		for _, c := range exp.PaperCombos() {
			for _, sz := range []int64{4096, 65536} {
				sz := sz
				cells = append(cells, exp.SweepCell{
					Label: fmt.Sprintf("%s/%d", c.Name, sz),
					Combo: c,
					Cfg:   exp.MachineConfig{Small: true, Degrade: true, Seed: 7},
					Nodes: 16, Trials: 2, Jitter: 0.02,
					Build: func(n int) (*workloads.Instance, error) {
						return workloads.BuildIMB("alltoall", n, sz)
					},
				})
			}
		}
		return cells
	}
	for _, j := range []int{1, 8} {
		j := j
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			cells := mkCells()
			b.ResetTimer()
			done := 0
			for i := 0; i < b.N; i++ {
				res, err := exp.RunSweep(exp.Runner{Workers: j, BaseSeed: 1}, cells)
				if err != nil {
					b.Fatal(err)
				}
				done += len(res)
			}
			b.ReportMetric(float64(done)/b.Elapsed().Seconds(), "cells/s")
		})
	}
}

// BenchmarkTablesBuild measures routing-table production on the 6x4
// HyperX, cold (a full engine run per op) versus through the content-
// addressed TableCache (hit + rebind per op). The builds/s gap is what the
// cache saves every worker that requests an already-built (topology, mask,
// engine) key.
func BenchmarkTablesBuild(b *testing.B) {
	engines := []struct {
		name string
		lmc  uint8
		run  func(hx *topo.HyperX) (*route.Tables, error)
	}{
		{"sssp", 0, func(hx *topo.HyperX) (*route.Tables, error) { return route.SSSP(hx.Graph, 0) }},
		{"dfsssp", 0, func(hx *topo.HyperX) (*route.Tables, error) { return route.DFSSSP(hx.Graph, 0, 8) }},
		{"updown", 0, func(hx *topo.HyperX) (*route.Tables, error) { return route.UpDown(hx.Graph, 0) }},
		{"parx", core.LMC, func(hx *topo.HyperX) (*route.Tables, error) { return core.PARX(hx, core.Config{MaxVL: 8}) }},
	}
	for _, eng := range engines {
		eng := eng
		b.Run(eng.name+"/cold", func(b *testing.B) {
			hx := benchHX()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.run(hx); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "builds/s")
		})
		b.Run(eng.name+"/cached", func(b *testing.B) {
			hx := benchHX()
			cache := exp.NewTableCache(8)
			build := func() (*route.Tables, error) { return eng.run(hx) }
			if _, err := cache.Get(hx.Graph, eng.name, eng.lmc, build); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cache.Get(hx.Graph, eng.name, eng.lmc, build); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "builds/s")
		})
	}
}

// BenchmarkDegradedTables measures routing-table production across a
// degraded-variant chain on the 6x4 HyperX — the inner loop of the
// survival sweeps. Each op walks every prefix of one seeded
// connectivity-preserving failure chain, stepping the graph with
// incremental DownMask deltas (the Zobrist DownHash is the cache key) and
// building tables at each prefix: cold runs the engine per prefix, cached
// hits the TableCache once the prefix has been built. The builds/s gap is
// what hundreds of sweep variants sharing chain prefixes save.
func BenchmarkDegradedTables(b *testing.B) {
	const chainLen = 12
	engines := []struct {
		name string
		run  func(hx *topo.HyperX) (*route.Tables, error)
	}{
		{"dfsssp", func(hx *topo.HyperX) (*route.Tables, error) { return route.DFSSSP(hx.Graph, 0, 8) }},
		{"hxmin", func(hx *topo.HyperX) (*route.Tables, error) { return route.HXMin(hx, 0) }},
		{"hxnm", func(hx *topo.HyperX) (*route.Tables, error) { return route.HXNonMin(hx, 0, 8) }},
	}
	for _, eng := range engines {
		eng := eng
		walk := func(b *testing.B, hx *topo.HyperX, chain []topo.LinkID, build func() error) {
			clean := topo.CaptureDownMask(hx.Graph)
			mask := clean.Clone()
			for _, id := range chain {
				prev := mask.Clone()
				mask.Set(id, true)
				mask.ApplyDelta(hx.Graph, prev)
				if err := build(); err != nil {
					b.Fatal(err)
				}
			}
			clean.ApplyDelta(hx.Graph, mask)
		}
		b.Run(eng.name+"/cold", func(b *testing.B) {
			hx := benchHX()
			chain, err := topo.DegradeChain(hx.Graph, chainLen, 7)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				walk(b, hx, chain, func() error { _, err := eng.run(hx); return err })
			}
			b.ReportMetric(float64(b.N*chainLen)/b.Elapsed().Seconds(), "builds/s")
		})
		b.Run(eng.name+"/cached", func(b *testing.B) {
			hx := benchHX()
			chain, err := topo.DegradeChain(hx.Graph, chainLen, 7)
			if err != nil {
				b.Fatal(err)
			}
			cache := exp.NewTableCache(chainLen + 1)
			get := func() error {
				_, err := cache.Get(hx.Graph, eng.name, 0, func() (*route.Tables, error) { return eng.run(hx) })
				return err
			}
			walk(b, hx, chain, get) // warm every prefix
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				walk(b, hx, chain, get)
			}
			b.ReportMetric(float64(b.N*chainLen)/b.Elapsed().Seconds(), "builds/s")
		})
	}
}

// --- flow-solver microbench (DESIGN.md Sec. 7) ---

// solverChurnPaths pre-resolves nflows paths on the 6x4 HyperX under one
// of two contention shapes:
//
//   - "local": flows are spread round-robin over 12 disjoint
//     adjacent-switch pairs (3-channel paths: inject, direct link,
//     deliver), so the contention graph splits into 12 independent
//     components and a churned flow dirties only its own — the shape the
//     incremental solver's region recompute is built for.
//   - "uniform": DFSSSP-routed paths between scattered terminal pairs,
//     one network-spanning component — the incremental solver's worst
//     case, degenerating into a heap-driven full solve.
func solverChurnPaths(b *testing.B, hx *topo.HyperX, pattern string, nflows int) [][]topo.ChannelID {
	b.Helper()
	g := hx.Graph
	paths := make([][]topo.ChannelID, 0, nflows)
	switch pattern {
	case "local":
		type pair struct {
			a, z   topo.NodeID
			direct topo.ChannelID
		}
		var pairs []pair
		for x := 0; x < 6; x += 2 {
			for y := 0; y < 4; y++ {
				a, z := hx.SwitchAt(x, y), hx.SwitchAt(x+1, y)
				for _, l := range g.UpLinks(a) {
					if l.Other(a) == z {
						pairs = append(pairs, pair{a, z, l.Channel(a)})
						break
					}
				}
			}
		}
		for i := 0; i < nflows; i++ {
			pr := pairs[i%len(pairs)]
			srcs, dsts := hx.TerminalsOf(pr.a), hx.TerminalsOf(pr.z)
			src := srcs[(i/len(pairs))%len(srcs)]
			dst := dsts[(i/len(pairs)+1)%len(dsts)]
			paths = append(paths, []topo.ChannelID{
				g.Nodes[src].Ports[0].Channel(src), pr.direct, g.Nodes[dst].Ports[0].Channel(pr.z),
			})
		}
	case "uniform":
		tb, err := route.DFSSSP(g, 0, 8)
		if err != nil {
			b.Fatal(err)
		}
		terms := hx.Terminals()
		for i := 0; len(paths) < nflows; i++ {
			src := terms[i%len(terms)]
			dst := terms[(i*7+3)%len(terms)]
			if src == dst {
				continue
			}
			p, err := tb.Path(src, tb.BaseLID[tb.TermIndex(dst)])
			if err != nil {
				b.Fatal(err)
			}
			paths = append(paths, p)
		}
	default:
		b.Fatalf("unknown pattern %q", pattern)
	}
	return paths
}

// BenchmarkSolverChurn measures steady-state solver throughput: with N
// long-lived concurrent flows, each op cancels one flow, starts a
// replacement on the same path, and settles the rates. The flows/s metric
// is the churn events absorbed per second. The reference solver is
// skipped at 100k flows: its per-Start advanceAll makes even the harness
// setup quadratic there, which is the point of the incremental solver.
func BenchmarkSolverChurn(b *testing.B) {
	for _, pattern := range []string{"local", "uniform"} {
		pattern := pattern
		b.Run(pattern, func(b *testing.B) {
			for _, nflows := range []int{1000, 10000, 100000} {
				nflows := nflows
				b.Run(fmt.Sprintf("flows=%d", nflows), func(b *testing.B) {
					solvers := []struct {
						name string
						s    flow.Solver
					}{{"incremental", flow.SolverIncremental}}
					if nflows <= 10000 {
						solvers = append(solvers, struct {
							name string
							s    flow.Solver
						}{"reference", flow.SolverReference})
					}
					for _, sv := range solvers {
						sv := sv
						b.Run(sv.name, func(b *testing.B) {
							hx := benchHX()
							paths := solverChurnPaths(b, hx, pattern, nflows)
							eng := sim.NewEngine()
							net := flow.NewNetwork(eng, hx.Graph)
							net.SetSolver(sv.s)
							ids := make([]flow.FlowID, nflows)
							for i, p := range paths {
								// Effectively-infinite sizes: nothing
								// completes, so every op measures pure
								// cancel+start+settle churn.
								ids[i] = net.Start(p, 1e15, func(sim.Time) {})
							}
							eng.RunUntil(0)
							b.ResetTimer()
							for i := 0; i < b.N; i++ {
								k := i % nflows
								net.Cancel(ids[k])
								ids[k] = net.Start(paths[k], 1e15, func(sim.Time) {})
								eng.RunUntil(0)
							}
							b.StopTimer()
							b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "flows/s")
						})
					}
				})
			}
		})
	}
}

// BenchmarkSolverShard measures the sharded component re-solve (DESIGN.md
// §12) at the 100k-flow churn workload across worker counts. The "local"
// pattern is the shard-friendly shape: its flows split across 12 disjoint
// switch-pair contention components, and each op churns one flow in every
// component before a single settle, so the settle re-solves 12 independent
// components — exactly what SetWorkers parallelizes. The "uniform" pattern
// is the documented degenerate case: DFSSSP all-to-all traffic couples the
// whole network into one spanning component, so worker counts cannot
// change anything there (the pool is never even invoked) and its j-variants
// should read flat. flows/s counts churned flows. Note 1-CPU runners read
// ~1x at every j by construction, like bench-sweep.
func BenchmarkSolverShard(b *testing.B) {
	const nflows = 100000
	for _, pattern := range []string{"local", "uniform"} {
		pattern := pattern
		b.Run(pattern, func(b *testing.B) {
			for _, workers := range []int{1, 2, 4, 8} {
				workers := workers
				b.Run(fmt.Sprintf("flows=%d/j=%d", nflows, workers), func(b *testing.B) {
					hx := benchHX()
					paths := solverChurnPaths(b, hx, pattern, nflows)
					eng := sim.NewEngine()
					net := flow.NewNetwork(eng, hx.Graph)
					net.SetWorkers(workers)
					ids := make([]flow.FlowID, nflows)
					for i, p := range paths {
						ids[i] = net.Start(p, 1e15, func(sim.Time) {})
					}
					eng.RunUntil(0)
					// Churn one flow per local component per op: paths cycle
					// through the 12 pairs, so 12 consecutive indices touch 12
					// distinct components.
					const batch = 12
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						for k := 0; k < batch; k++ {
							f := (i*batch + k) % nflows
							net.Cancel(ids[f])
							ids[f] = net.Start(paths[f], 1e15, func(sim.Time) {})
						}
						eng.RunUntil(0)
					}
					b.StopTimer()
					b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "flows/s")
				})
			}
		})
	}
}

// BenchmarkFlowChurn measures the allocation cost of flow lifecycle churn:
// with N long-lived concurrent flows resident, each op cancels one flow and
// starts a replacement on the same path. Unlike BenchmarkSolverChurn (which
// reports solver throughput), this bench runs with -benchmem semantics
// (ReportAllocs) so B/op and allocs/op expose the per-flow storage layout:
// the arena/SoA flow table must hold steady-state churn near zero
// allocations per op, where the pointer-per-flow layout paid a *Flow box
// plus Path/pos slice headers for every Start. Peak RSS and heap/GC
// metrics ride along in the bench JSON via prof.ReportRuntimeMetrics.
func BenchmarkFlowChurn(b *testing.B) {
	for _, pattern := range []string{"local", "uniform"} {
		pattern := pattern
		b.Run(pattern, func(b *testing.B) {
			for _, nflows := range []int{1000, 10000, 100000} {
				nflows := nflows
				b.Run(fmt.Sprintf("flows=%d", nflows), func(b *testing.B) {
					hx := benchHX()
					paths := solverChurnPaths(b, hx, pattern, nflows)
					eng := sim.NewEngine()
					net := flow.NewNetwork(eng, hx.Graph)
					net.SetSolver(flow.SolverIncremental)
					ids := make([]flow.FlowID, nflows)
					for i, p := range paths {
						ids[i] = net.Start(p, 1e15, func(sim.Time) {})
					}
					eng.RunUntil(0)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						k := i % nflows
						net.Cancel(ids[k])
						ids[k] = net.Start(paths[k], 1e15, func(sim.Time) {})
						eng.RunUntil(0)
					}
					b.StopTimer()
					b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "flows/s")
					prof.ReportRuntimeMetrics(b)
				})
			}
		})
	}
}

// BenchmarkScaleRun measures the end-to-end cost of the windowed
// large-terminal endurance loop (exp.RunScale) at a CI-sized lattice: one
// op is a complete build + route + deliver cycle. msgs/s is the headline
// throughput; B/op (via -benchmem) and peak-rss-B track whether per-flow
// or per-terminal state regresses toward the pre-arena layout, which is
// what decides if the full 12x8 T=342 configuration still fits a build
// machine. The full configuration itself runs via `t2hx -scale` or
// T2HX_SCALE=1 (see EXPERIMENTS.md).
func BenchmarkScaleRun(b *testing.B) {
	const msgs = 20000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunScale(exp.ScaleSpec{
			S: []int{6, 4}, T: 32, // 768 terminals
			Window: 128, Messages: msgs, MsgBytes: 16 * 1024,
			Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Delivered != msgs {
			b.Fatalf("delivered %d of %d", res.Delivered, msgs)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*msgs/b.Elapsed().Seconds(), "msgs/s")
	prof.ReportRuntimeMetrics(b)
}

// --- event-core benches (DESIGN.md Sec. 13) ---

// BenchmarkEventChurn measures the dense event arena at steady state: a
// resident population of self-re-arming ticks plus a tracked pool of
// far-future one-shots, where each op executes one event (its reused
// closure immediately re-arms itself), cancels a one-shot, schedules its
// replacement, and re-sequences another — the four mutation paths of the
// event core. The allocs/op column is the headline: the generation-tagged
// slot arena plus the value-indexed 4-ary heap must hold steady-state churn
// at exactly zero allocations per op (a regression here re-boxes every
// event the endurance runs execute by the hundred million). events/s
// counts executed events.
func BenchmarkEventChurn(b *testing.B) {
	for _, pending := range []int{64, 4096} {
		pending := pending
		b.Run(fmt.Sprintf("pending=%d", pending), func(b *testing.B) {
			eng := sim.NewEngine()
			const horizon = sim.Duration(1e-6)
			// The executing population: each tick re-arms itself through the
			// SAME closure value, so Step's pop + the re-arm recycle one slot
			// with no allocation.
			var tick func(*sim.Engine)
			tick = func(e *sim.Engine) { e.After(horizon, tick) }
			for i := 0; i < pending; i++ {
				eng.After(horizon*sim.Duration(i+1)/sim.Duration(pending), tick)
			}
			// The churn victims: far-future one-shots that never execute, so
			// the tracked handles stay live across ops.
			noop := func(*sim.Engine) {}
			const far = sim.Duration(3600)
			victims := make([]sim.EventID, 64)
			for i := range victims {
				victims[i] = eng.After(far, noop)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := i % len(victims)
				eng.Cancel(victims[k])
				victims[k] = eng.After(far, noop)
				if !eng.Reschedule(victims[(k+1)%len(victims)], eng.Now()+far) {
					b.Fatal("live victim handle went stale")
				}
				eng.Step()
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkScaleInstrumented holds the tentpole claim of DESIGN.md §13 to a
// number: the windowed endurance loop with the FULL observability stack
// attached (channel counters, per-message records, engine probe, streaming
// sink) versus the blind run, at the same CI-sized lattice as
// BenchmarkScaleRun. With region-local counter integration and the
// allocation-free event core, the instrumented msgs/s must stay within 15%
// of detached (EXPERIMENTS.md records the measured gap); before this, the
// counter-attached run paid an O(live-flows) advanceAll on every settle and
// was budgeted separately.
func BenchmarkScaleInstrumented(b *testing.B) {
	const msgs = 20000
	for _, mode := range []struct {
		name string
		inst bool
	}{
		{"detached", false},
		{"instrumented", true},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			for i := 0; i < b.N; i++ {
				res, err := exp.RunScale(exp.ScaleSpec{
					S: []int{6, 4}, T: 32, // 768 terminals
					Window: 128, Messages: msgs, MsgBytes: 16 * 1024,
					Seed: 1, Instrumented: mode.inst,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Delivered != msgs {
					b.Fatalf("delivered %d of %d", res.Delivered, msgs)
				}
				events = res.Events
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)*msgs/b.Elapsed().Seconds(), "msgs/s")
			b.ReportMetric(float64(b.N)*float64(events)/b.Elapsed().Seconds(), "events/s")
			prof.ReportRuntimeMetrics(b)
		})
	}
}

// --- telemetry export benches (DESIGN.md Sec. 10) ---

// BenchmarkExportStreaming measures the telemetry pipeline's per-message
// cost at two run lengths, in three modes: streaming to a JSONL sink
// (the -metrics-out path), streaming to a null sink (pure collector
// overhead), and the legacy retained mode. Each op drives one complete
// message lifecycle. The headline metric is retained-recs: streaming must
// hold it at zero at any run length — that flatness (and a B/op that does
// not scale with msgs) is what lets a 10k-terminal sweep stream telemetry
// in constant memory. Runtime heap/GC metrics ride along in the bench
// JSON via prof.ReportRuntimeMetrics.
func BenchmarkExportStreaming(b *testing.B) {
	drive := func(b *testing.B, col *telemetry.Collector, msgs int) {
		for i := 0; i < b.N; i++ {
			for m := 0; m < msgs; m++ {
				rec := col.StartMsg(1, 2, 4096, 0)
				col.MsgDelivered(rec, sim.Time(1e-6*float64(1+m%97)), 3, false)
			}
		}
	}
	for _, msgs := range []int{1000, 10000} {
		msgs := msgs
		b.Run(fmt.Sprintf("streaming-jsonl/msgs=%d", msgs), func(b *testing.B) {
			col := telemetry.New(nil, telemetry.Options{Messages: true})
			col.SetSink(telemetry.NewJSONLSink(nopWriteCloser{io.Discard}))
			b.ReportAllocs()
			b.ResetTimer()
			drive(b, col, msgs)
			b.StopTimer()
			if err := col.FinishStream(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(b.N*msgs)/b.Elapsed().Seconds(), "msgs/s")
			b.ReportMetric(float64(len(col.Msgs)), "retained-recs")
			prof.ReportRuntimeMetrics(b)
		})
		b.Run(fmt.Sprintf("streaming-null/msgs=%d", msgs), func(b *testing.B) {
			col := telemetry.New(nil, telemetry.Options{Messages: true})
			col.SetSink(telemetry.NewCountSink())
			b.ReportAllocs()
			b.ResetTimer()
			drive(b, col, msgs)
			b.StopTimer()
			b.ReportMetric(float64(b.N*msgs)/b.Elapsed().Seconds(), "msgs/s")
			b.ReportMetric(float64(len(col.Msgs)), "retained-recs")
		})
		b.Run(fmt.Sprintf("buffered/msgs=%d", msgs), func(b *testing.B) {
			col := telemetry.New(nil, telemetry.Options{Messages: true})
			b.ReportAllocs()
			b.ResetTimer()
			drive(b, col, msgs)
			b.StopTimer()
			b.ReportMetric(float64(b.N*msgs)/b.Elapsed().Seconds(), "msgs/s")
			b.ReportMetric(float64(len(col.Msgs)), "retained-recs")
		})
	}
}

// nopWriteCloser adapts io.Discard for sink constructors that close their
// underlying writer.
type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }
