// Dual-plane failover: TSUBAME2 kept every compute node attached to two
// rails — the original full-bisection Fat-Tree and the rebuilt 12x8
// HyperX (Sec. 2). This walkthrough runs an Alltoall over the HyperX rail
// under a failover policy, then kills the *entire* HyperX switch fabric
// mid-run: every inter-switch link goes dark at once, the plane's subnet
// manager re-sweeps and (with the fabric shattered) keeps rejecting its
// rebuilt tables, and the multi-fabric redispatches every stranded
// message onto the Fat-Tree rail. The survival criterion is zero lost
// messages — the dual-rail design means a whole-plane outage degrades
// bandwidth, not correctness.
//
// Run with -small for the 32-node test planes (fast); the default uses
// the full 672-node paper planes and takes a minute or two.
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/hpcsim/t2hx/internal/exp"
	"github.com/hpcsim/t2hx/internal/fabric"
	"github.com/hpcsim/t2hx/internal/faults"
	"github.com/hpcsim/t2hx/internal/mpi"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/workloads"
)

func main() {
	small := flag.Bool("small", false, "use the 32-node test planes")
	n := flag.Int("n", 28, "Alltoall ranks")
	size := flag.Int64("size", 256<<10, "message size in bytes")
	seed := flag.Uint64("seed", 1, "master seed")
	flag.Parse()

	if *small {
		// Shrink the defaults to match the 32-node planes, but let an
		// explicit -n / -size win over the -small presets.
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if !explicit["n"] {
			*n = 32
		}
		if !explicit["size"] {
			*size = 64 << 10
		}
	}

	// The machine is the paper's dual-plane configuration, but with the
	// failover policy primed on the HyperX rail (plane 1) so the outage
	// hits the plane actually carrying the traffic.
	combo := exp.DualPlaneCombo()
	m, err := exp.BuildMachine(combo, exp.MachineConfig{
		Degrade: true, Seed: *seed, Small: *small, Policy: "failover:1",
	})
	if err != nil {
		log.Fatal(err)
	}
	ranks, err := m.Place(*n, *seed)
	if err != nil {
		log.Fatal(err)
	}
	build := func() *workloads.Instance {
		inst, err := workloads.BuildIMB("alltoall", *n, *size)
		if err != nil {
			log.Fatal(err)
		}
		return inst
	}

	fmt.Println("Dual-plane failover: full HyperX-plane outage under a live Alltoall")
	fmt.Printf("machine: %s\n", combo.Name)
	for i, p := range m.Planes {
		fmt.Printf("  plane %d: %s — %s (%d nodes)\n", i, p.Spec.Label(), p.G.Name, p.G.NumTerminals())
	}
	fmt.Printf("workload: imb:alltoall, %d ranks, %d B messages, policy failover:1\n\n", *n, *size)

	// Fault-free baseline on the same machine: calibrates the makespan and
	// tells us where mid-run is.
	mfBase, err := m.NewMultiFabric(*seed)
	if err != nil {
		log.Fatal(err)
	}
	base, err := mpi.Run(mfBase, "baseline", ranks, build().Progs, mpi.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline makespan: %.3f ms (all traffic on %s)\n",
		1e3*float64(base.Elapsed), mfBase.PlaneName(1))

	// Faulted run: arm cross-plane redispatch before wiring the subnet
	// manager so the manager reuses the resilience layer, then schedule
	// the whole-plane outage a third of the way into the run.
	mf, err := m.NewMultiFabric(*seed)
	if err != nil {
		log.Fatal(err)
	}
	mf.EnableResilience(fabric.Resilience{})
	mgr, err := faults.NewManager(mf.Plane(1), faults.SMConfig{
		Rebuild:    m.Planes[1].Rebuild,
		Revalidate: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	mgr.OnHealth = func(healthy bool) { mf.SetPlaneHealth(1, healthy) }
	outageAt := sim.Time(base.Elapsed) / 3
	sched := faults.PlaneOutage(m.Planes[1].G, outageAt, 0)
	if err := mgr.Inject(sched); err != nil {
		log.Fatal(err)
	}
	res, err := mpi.Run(mf, "plane-outage", ranks, build().Progs, mpi.Options{})
	if err != nil {
		log.Fatalf("faulted run: %v", err)
	}

	fmt.Printf("outage: %d links of %s killed at %.3f ms\n",
		len(sched), mf.PlaneName(1), 1e3*float64(outageAt))
	fmt.Printf("faulted makespan: %.3f ms (%+.1f%%)\n",
		1e3*float64(res.Elapsed), 100*(float64(res.Elapsed)/float64(base.Elapsed)-1))
	rejected := 0
	for _, s := range mgr.Sweeps {
		if s.Rejected != nil {
			rejected++
		}
	}
	fmt.Printf("SM on %s: %d sweeps, %d rejected (the shattered plane cannot produce valid tables)\n",
		mf.PlaneName(1), len(mgr.Sweeps), rejected)
	fmt.Printf("flows torn down: %d, cross-plane redispatches: %d\n", mgr.TornDown, mf.Redispatches)
	for p := 0; p < mf.NumPlanes(); p++ {
		share := 0.0
		if mf.Messages > 0 {
			share = 100 * float64(mf.PlaneMessages[p]) / float64(mf.Messages)
		}
		fmt.Printf("  %-8s carried %5d msgs (%.1f%%), gave up on %d\n",
			mf.PlaneName(p), mf.PlaneMessages[p], share, mf.Plane(p).GiveUps)
	}
	fmt.Printf("delivered %d of %d messages\n\n", mf.Delivered, mf.Messages)

	if mf.Delivered != mf.Messages || mf.Plane(0).GiveUps != 0 || mf.Plane(1).GiveUps != 0 {
		log.Fatal("messages were lost — dual-plane failover failed")
	}
	fmt.Println("Reading the numbers:")
	fmt.Println("  - Before the outage the failover policy keeps everything on the")
	fmt.Println("    HyperX rail; after it, new sends skip the unhealthy plane and")
	fmt.Println("    in-flight messages whose path died migrate to the Fat-Tree")
	fmt.Println("    without consuming their retry budget.")
	fmt.Println("  - The HyperX SM keeps rejecting re-sweeps: with every inter-switch")
	fmt.Println("    link down there are no valid tables to swap in, so the plane")
	fmt.Println("    stays marked unhealthy for the rest of the run.")
	fmt.Println("  - 'delivered N of N' is the survival criterion: a whole-plane")
	fmt.Println("    outage costs bandwidth, never messages.")
}
