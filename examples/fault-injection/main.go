// Fault injection: the paper's deployment already ran on broken fabrics —
// 15 AOCs missing from the HyperX plane and 197 links from the Fat-Tree
// (Sec. 2.3) — but those cables were dead *before* routing was computed.
// This walkthrough breaks the same number of cables while an Alltoall is
// running and watches the subnet manager recover: detect the failures,
// recompute the combo's routing engine on the degraded graph, revalidate
// deadlock-freedom, and swap the tables under live traffic. Messages whose
// path died are torn down and retried with IB-style timeout escalation.
//
// Compared engines: ftree on the Fat-Tree (paper baseline), DFSSSP and
// PARX on the HyperX — the headline trio of Sec. 4.4.3.
//
// Run with -small for the 32-node test planes (fast); the default uses
// the full 672-node paper planes and takes a minute or two.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"github.com/hpcsim/t2hx/internal/exp"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/workloads"
)

func main() {
	small := flag.Bool("small", false, "use the 32-node test planes")
	n := flag.Int("n", 28, "Alltoall ranks")
	size := flag.Int64("size", 256<<10, "message size in bytes")
	seed := flag.Uint64("seed", 1, "master seed")
	flag.Parse()

	combos := exp.PaperCombos()
	trio := []exp.Combo{combos[0], combos[2], combos[4]}
	if *small {
		// Shrink the defaults to match the 32-node planes, but let an
		// explicit -n / -size win over the -small presets.
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if !explicit["n"] {
			*n = 32
		}
		if !explicit["size"] {
			*size = 64 << 10
		}
	}

	fmt.Println("Runtime fault injection: paper broken-cable counts applied mid-run")
	fmt.Printf("workload: imb:alltoall, %d ranks, %d B messages\n\n", *n, *size)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "combo\tfailures\tbaseline\tfaulted\tslowdown\tsweeps\tmedian outage\tretries\tlost\tgoodput before/during/after GiB/s")
	const gib = 1 << 30
	for _, c := range trio {
		m, err := exp.BuildMachine(c, exp.MachineConfig{Degrade: true, Seed: *seed, Small: *small})
		if err != nil {
			log.Fatal(err)
		}
		res, err := exp.RunFaultScenario(exp.FaultSpec{
			Machine: m,
			Nodes:   *n,
			Seed:    *seed, // Failures 0 = paper count (15 HyperX / 197 Fat-Tree)
			Build: func(nn int) (*workloads.Instance, error) {
				return workloads.BuildIMB("alltoall", nn, *size)
			},
		})
		if err != nil {
			log.Fatalf("%s: %v", c.Name, err)
		}
		for _, s := range res.Sweeps {
			if s.Rejected != nil {
				log.Fatalf("%s: sweep rejected: %v", c.Name, s.Rejected)
			}
			if s.Validated && !s.DeadlockFree {
				log.Fatalf("%s: swapped tables not deadlock-free", c.Name)
			}
		}
		st := res.SweepStats()
		fmt.Fprintf(tw, "%s\t%d\t%.2f ms\t%.2f ms\t+%.1f%%\t%d\t%.2f ms\t%d\t%d/%d\t%.1f / %.1f / %.1f\n",
			c.Name, res.Failures,
			1e3*float64(res.Baseline), 1e3*float64(res.Faulted), 100*res.Slowdown(),
			len(res.Sweeps), 1e3*st.Median,
			res.Retries, res.GiveUps, res.Messages,
			res.GoodputBefore/gib, res.GoodputDuring/gib, res.GoodputAfter/gib)
	}
	tw.Flush()

	fmt.Println("\nReading the table:")
	fmt.Println("  - Every sweep revalidated loop- and deadlock-free before the swap;")
	fmt.Println("    rejected sweeps would keep the old tables (none occurred).")
	fmt.Println("  - 'lost 0/N' is the survival criterion: despite cables dying under")
	fmt.Printf("    live traffic, every message was redelivered within its retry budget\n")
	fmt.Printf("    (detection %.0f ms + re-sweep %.0f ms outage bridged by IB-style\n",
		1e3*float64(sim.Duration(1*sim.Millisecond)), 1e3*float64(sim.Duration(4*sim.Millisecond)))
	fmt.Println("    timeout escalation).")
	fmt.Println("  - Goodput collapses during the outage window and recovers after the")
	fmt.Println("    swapped tables route around the dead cables.")
}
