// Routing comparison: reproduce the paper's pathological 14-node case
// (Sec. 5.1) at example scale. Two adjacent HyperX switches share a single
// QDR cable; minimal routing (DFSSSP) funnels every cross-switch flow over
// it, while PARX's large-message LIDs detour around it and random
// placement sidesteps it statistically.
package main

import (
	"fmt"
	"log"

	"github.com/hpcsim/t2hx/internal/core"
	"github.com/hpcsim/t2hx/internal/exp"
	"github.com/hpcsim/t2hx/internal/fabric"
	"github.com/hpcsim/t2hx/internal/place"
	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
	"github.com/hpcsim/t2hx/internal/workloads"
)

func main() {
	// A 6x4 HyperX with 7 nodes per switch, like one slice of the paper's
	// machine. The "14-node case": all terminals of two row-adjacent
	// switches.
	mk := func() *topo.HyperX {
		return topo.NewHyperX(topo.HyperXConfig{
			S: []int{6, 4}, T: 7,
			Bandwidth: topo.QDRBandwidth, Latency: topo.QDRLinkLatency,
		})
	}

	fmt.Println("mpiGraph over 14 nodes on two adjacent HyperX switches (1 MiB):")

	// (a) minimal DFSSSP, dense (linear) placement — the bottleneck.
	hx := mk()
	tb, err := route.DFSSSP(hx.Graph, 0, 8)
	if err != nil {
		log.Fatal(err)
	}
	dense := append(hx.TerminalsOf(hx.SwitchAt(0, 0)), hx.TerminalsOf(hx.SwitchAt(1, 0))...)
	f := fabric.New(sim.NewEngine(), tb, fabric.DefaultParams(), 1)
	r1 := workloads.MpiGraph(f, dense, 1<<20)
	fmt.Printf("  DFSSSP / dense:  avg %.2f GiB/s (worst pair %.2f)\n", r1.AvgGiB, r1.MinGiB)

	// (b) same routing, random placement (Sec. 3.1 mitigation).
	hx = mk()
	tb, err = route.DFSSSP(hx.Graph, 0, 8)
	if err != nil {
		log.Fatal(err)
	}
	spread, err := place.Place(place.Random, hx.Terminals(), 14, 7)
	if err != nil {
		log.Fatal(err)
	}
	f = fabric.New(sim.NewEngine(), tb, fabric.DefaultParams(), 1)
	r2 := workloads.MpiGraph(f, spread, 1<<20)
	fmt.Printf("  DFSSSP / random: avg %.2f GiB/s (worst pair %.2f)\n", r2.AvgGiB, r2.MinGiB)

	// (c) PARX + bfo PML: non-minimal LIDs for the 1 MiB messages
	// (Sec. 3.2 mitigation).
	hx = mk()
	ptb, err := core.PARX(hx, core.Config{MaxVL: 8})
	if err != nil {
		log.Fatal(err)
	}
	f = fabric.New(sim.NewEngine(), ptb, fabric.DefaultParams(), 1)
	if err := f.EnableBFO(hx, 0); err != nil {
		log.Fatal(err)
	}
	dense = append(hx.TerminalsOf(hx.SwitchAt(0, 0)), hx.TerminalsOf(hx.SwitchAt(1, 0))...)
	r3 := workloads.MpiGraph(f, dense, 1<<20)
	fmt.Printf("  PARX   / dense:  avg %.2f GiB/s (worst pair %.2f)\n", r3.AvgGiB, r3.MinGiB)

	fmt.Printf("\nPARX recovers %+.0f%% over minimal routing (paper Fig. 1: +66%%)\n",
		100*(r3.AvgGiB/r1.AvgGiB-1))

	// For reference, the same experiment through the five-combo harness.
	fmt.Println("\nThe Sec. 4.4.3 combos at a glance (1 MiB alltoall, 14 nodes):")
	for _, c := range exp.PaperCombos() {
		m, err := exp.BuildMachine(c, exp.MachineConfig{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		vals, _, err := exp.RunTrials(exp.TrialSpec{
			Machine: m, Nodes: 14, Trials: 1, Seed: 2,
			Build: func(n int) (*workloads.Instance, error) {
				return workloads.BuildIMB("alltoall", n, 1<<20)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s %8.0f us/op\n", c.Name, vals[0])
	}
}
