// Capacity study: a scaled-down Fig. 7. Four applications run
// back-to-back on dedicated node blocks of a 48-node machine for a
// simulated 20 minutes, under all five topology/routing/placement combos;
// the score is completed runs — system throughput rather than single-job
// speed (Sec. 4.4.2).
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"github.com/hpcsim/t2hx/internal/capacity"
	"github.com/hpcsim/t2hx/internal/exp"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/workloads"
)

func main() {
	quick := workloads.BuildOpts{IterScale: 0.15, ComputeScale: 2, Prolog: 5 * sim.Second}
	var mix []capacity.AppSpec
	for _, ab := range []string{"AMG", "CoMD", "MILC", "GraD"} {
		app, err := workloads.FindApp(ab)
		if err != nil {
			log.Fatal(err)
		}
		mix = append(mix, capacity.AppSpec{
			Abbrev: app.Abbrev, Nodes: 8,
			Build: func(n int) *workloads.Instance { return app.Build(n, quick) },
		})
	}
	const window = 20 * sim.Minute

	w := tabwriter.NewWriter(os.Stdout, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(w, "combo\t")
	for _, s := range mix {
		fmt.Fprintf(w, "%s\t", s.Abbrev)
	}
	fmt.Fprintln(w, "TOTAL\t")
	var baseTotal int
	for i, c := range exp.PaperCombos() {
		m, err := exp.BuildMachine(c, exp.MachineConfig{Small: true, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		res, err := capacity.Run(m, mix, window, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t", c.Name)
		for _, s := range mix {
			fmt.Fprintf(w, "%d\t", res.Runs[s.Abbrev])
		}
		fmt.Fprintf(w, "%d\t\n", res.Total)
		if i == 0 {
			baseTotal = res.Total
		}
	}
	w.Flush()
	fmt.Printf("\n(baseline total: %d completed runs in %.0f simulated minutes)\n",
		baseTotal, float64(window)/60)
}
