// Quickstart: build a HyperX, route it deadlock-free, and time one MPI
// collective on the simulated fabric — the ten-line tour of the public
// pipeline (topology -> routing -> fabric -> MPI program -> metric).
package main

import (
	"fmt"
	"log"

	"github.com/hpcsim/t2hx/internal/fabric"
	"github.com/hpcsim/t2hx/internal/mpi"
	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

func main() {
	// 1. A 4x4 2-D HyperX with two compute nodes per switch, QDR links.
	hx := topo.NewHyperX(topo.HyperXConfig{
		S: []int{4, 4}, T: 2,
		Bandwidth: topo.QDRBandwidth, Latency: topo.QDRLinkLatency,
	})
	fmt.Printf("built %s: %d switches, %d nodes, diameter %d\n",
		hx.Name, hx.NumSwitches(), hx.NumTerminals(), topo.Diameter(hx.Graph))

	// 2. Deadlock-free SSSP routing (what the paper uses on its HyperX).
	tables, err := route.DFSSSP(hx.Graph, 0, 8)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := route.Validate(tables)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routed %d paths on %d virtual lane(s), deadlock-free=%v\n",
		rep.Paths, rep.VLs, rep.DeadlockFree)

	// 3. A fabric: flow-level bandwidth sharing + latency/overhead model.
	f := fabric.New(sim.NewEngine(), tables, fabric.DefaultParams(), 1)

	// 4. An MPI program: 16 ranks, one 1 MiB Alltoall.
	b := mpi.NewBuilder(16)
	b.Alltoall(1 << 20)

	// 5. Run it and read the clock.
	res, err := mpi.Run(f, "quickstart", hx.Terminals()[:16], b.Progs, mpi.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("16-rank 1 MiB Alltoall: %.3f ms (%d messages, %.1f MiB moved)\n",
		1e3*float64(res.Elapsed), f.Messages, f.Bytes/(1<<20))
}
