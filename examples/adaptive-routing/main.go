// Adaptive routing: the paper's closing prediction (Sec. 7) — "this PARX
// prototype ... will be replaced by true adaptive routing in future HyperX
// deployments, yielding even better results". The simulator can do what
// the authors' QDR InfiniBand could not: per-message load-adaptive
// selection among the PARX path set (a DAL-like choice between the
// minimal and non-minimal routes). This example quantifies the ladder
// static-minimal -> static-PARX -> adaptive on the paper's bottleneck
// scenario.
package main

import (
	"fmt"
	"log"

	"github.com/hpcsim/t2hx/internal/core"
	"github.com/hpcsim/t2hx/internal/fabric"
	"github.com/hpcsim/t2hx/internal/route"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
)

func main() {
	mk := func() *topo.HyperX {
		return topo.NewHyperX(topo.HyperXConfig{
			S: []int{6, 4}, T: 7,
			Bandwidth: topo.QDRBandwidth, Latency: topo.QDRLinkLatency,
		})
	}
	// The hotspot: all 7 node pairs of two adjacent switches stream 4 MiB
	// simultaneously — the "seven streams on one cable" case of Fig. 1.
	hotspot := func(f *fabric.Fabric, hx *topo.HyperX) sim.Duration {
		src := hx.TerminalsOf(hx.SwitchAt(0, 0))
		dst := hx.TerminalsOf(hx.SwitchAt(1, 0))
		var last sim.Time
		for i := range src {
			f.Send(src[i], dst[i], 4<<20, func(at sim.Time) {
				if at > last {
					last = at
				}
			})
		}
		f.Eng.Run()
		return last
	}

	fmt.Println("7x 4 MiB between adjacent HyperX switches (one shared QDR cable):")

	// (1) minimal static routing.
	hx := mk()
	tb, err := route.DFSSSP(hx.Graph, 0, 8)
	if err != nil {
		log.Fatal(err)
	}
	f := fabric.New(sim.NewEngine(), tb, fabric.DefaultParams(), 1)
	tMin := hotspot(f, hx)
	fmt.Printf("  DFSSSP (minimal, static):   %6.2f ms\n", 1e3*float64(tMin))

	// (2) static PARX with the bfo PML.
	hx = mk()
	ptb, err := core.PARX(hx, core.Config{MaxVL: 8})
	if err != nil {
		log.Fatal(err)
	}
	f = fabric.New(sim.NewEngine(), ptb, fabric.DefaultParams(), 1)
	if err := f.EnableBFO(hx, 0); err != nil {
		log.Fatal(err)
	}
	tParx := hotspot(f, hx)
	fmt.Printf("  PARX   (non-minimal, static): %4.2f ms  (%.2fx vs minimal)\n",
		1e3*float64(tParx), float64(tMin)/float64(tParx))

	// (3) adaptive selection over the PARX path set (DAL-like).
	hx = mk()
	ptb, err = core.PARX(hx, core.Config{MaxVL: 8})
	if err != nil {
		log.Fatal(err)
	}
	f = fabric.New(sim.NewEngine(), ptb, fabric.DefaultParams(), 1)
	if err := f.EnableAdaptive(hx); err != nil {
		log.Fatal(err)
	}
	tAda := hotspot(f, hx)
	fmt.Printf("  adaptive over PARX paths:     %4.2f ms  (%.2fx vs minimal, %.2fx vs PARX)\n",
		1e3*float64(tAda), float64(tMin)/float64(tAda), float64(tParx)/float64(tAda))

	fmt.Println("\nThe ordering minimal < PARX < adaptive matches the paper's Sec. 7 outlook.")
}
