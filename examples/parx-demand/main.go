// PARX demand optimization: the Sec. 3.2.2/4.4.3 workflow. Capture an
// application's communication profile (as the paper's low-level IB
// profiler does), normalize it to the [0,255] demand range, combine it
// with the job's node allocation, and re-route PARX against it — then
// compare the application's runtime on oblivious vs. demand-aware tables.
package main

import (
	"fmt"
	"log"

	"github.com/hpcsim/t2hx/internal/core"
	"github.com/hpcsim/t2hx/internal/fabric"
	"github.com/hpcsim/t2hx/internal/mpi"
	"github.com/hpcsim/t2hx/internal/place"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/topo"
	"github.com/hpcsim/t2hx/internal/trace"
	"github.com/hpcsim/t2hx/internal/workloads"
)

func main() {
	const nodes = 16
	hx := topo.NewHyperX(topo.HyperXConfig{
		S: []int{6, 4}, T: 2,
		Bandwidth: topo.QDRBandwidth, Latency: topo.QDRLinkLatency,
	})

	// The workload: SWFFT's pencil transposes — a sparse, reoccurring
	// pattern, exactly what Sec. 3.2.2 calls worth optimizing for.
	app, err := workloads.FindApp("FFT")
	if err != nil {
		log.Fatal(err)
	}
	inst := app.Instance(nodes)

	// 1. Capture + normalize the rank-to-rank profile (placement- and
	//    topology-oblivious, footnote 6).
	profile := trace.Capture(inst.Progs)
	norm := profile.Normalize()
	nz := 0
	for _, row := range norm {
		for _, v := range row {
			if v > 0 {
				nz++
			}
		}
	}
	fmt.Printf("captured profile: %d of %d rank pairs carry traffic\n", nz, nodes*(nodes-1))

	// 2. The job's allocation (clustered, like a fragmented machine).
	ranks, err := place.Place(place.Clustered, hx.Terminals(), nodes, 3)
	if err != nil {
		log.Fatal(err)
	}

	// 3. The SAR-like interface: rank profile + allocation -> node demands.
	db := trace.NewDemandBuilder(hx.Terminals())
	if err := db.AddJob(norm, ranks); err != nil {
		log.Fatal(err)
	}

	run := func(label string, demands core.Demands) sim.Duration {
		plane := topo.NewHyperX(hx.Cfg) // fresh plane per routing
		tb, err := core.PARX(plane, core.Config{MaxVL: 8, Demands: demands})
		if err != nil {
			log.Fatal(err)
		}
		f := fabric.New(sim.NewEngine(), tb, fabric.DefaultParams(), 1)
		if err := f.EnableBFO(plane, 0); err != nil {
			log.Fatal(err)
		}
		// Same allocation, fresh program instance.
		res, err := mpi.Run(f, label, ranks, app.Instance(nodes).Progs, mpi.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s kernel %.3f s (PARX on %d VLs)\n", label, float64(res.Elapsed), tb.NumVL)
		return res.Elapsed
	}

	fmt.Printf("\nSWFFT on %d nodes, HyperX 6x4, clustered allocation:\n", nodes)
	obliv := run("demand-oblivious PARX", nil)
	aware := run("demand-aware PARX", db.Demands())
	fmt.Printf("\nre-routing for the profile changed the kernel by %+.1f%% (positive = faster)\n",
		100*(float64(obliv)/float64(aware)-1))
	fmt.Println(`
Note: demand-aware balancing trades unlisted traffic for the listed
pattern (Sec. 3.2.2 assumes "a relatively sparse and reoccurring
communication pattern"); on a lightly loaded fabric the oblivious +1
balancing is already near-optimal, so small deltas of either sign are
expected. The value of the workflow is separating the high-traffic paths
when many jobs share the fabric (see the capacity study).`)
}
