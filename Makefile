# Developer entry points; CI runs the same commands (.github/workflows/ci.yml).

DATE := $(shell date +%F)

.PHONY: all build test race vet check bench bench-check bench-solver bench-sweep bench-sweep-check bench-degraded bench-degraded-check bench-telemetry bench-telemetry-check bench-scale bench-scale-check bench-shard bench-shard-check bench-events bench-events-check

# BASELINE is the committed bench document bench-check compares against;
# override with `make bench-check BASELINE=BENCH_....json`. The sweep-
# engine and degraded-sweep baselines live in their own BENCH_sweep_* /
# BENCH_degraded_* documents (more iterations, different cadence) and must
# not be picked up here.
BASELINE := $(lastword $(sort $(filter-out BENCH_sweep_% BENCH_degraded_% BENCH_telemetry_% BENCH_scale_% BENCH_shard_% BENCH_events_%,$(wildcard BENCH_*.json))))
SWEEPBASELINE := $(lastword $(sort $(wildcard BENCH_sweep_*.json)))
DEGBASELINE := $(lastword $(sort $(wildcard BENCH_degraded_*.json)))
TELBASELINE := $(lastword $(sort $(wildcard BENCH_telemetry_*.json)))
SCALEBASELINE := $(lastword $(sort $(wildcard BENCH_scale_*.json)))
SHARDBASELINE := $(lastword $(sort $(wildcard BENCH_shard_*.json)))
EVENTSBASELINE := $(lastword $(sort $(wildcard BENCH_events_*.json)))

# The sweep-engine benchmarks (parallel runner + table cache).
SWEEPBENCH := BenchmarkSweepParallel|BenchmarkTablesBuild

# The degraded-variant table-production benchmark (fault-tolerant engines
# over failure-chain prefixes, cold vs cached).
DEGBENCH := BenchmarkDegradedTables

# The telemetry export benchmark (streaming sinks vs retained records).
TELBENCH := BenchmarkExportStreaming

# The flow-core scale benchmarks: lifecycle-churn allocation cost over the
# arena/SoA flow table, and the windowed endurance loop end to end.
SCALEBENCH := BenchmarkFlowChurn|BenchmarkScaleRun

# The sharded-solver benchmark: component re-solve flows/s at 1/2/4/8
# workers over the 100k-flow churn workload.
SHARDBENCH := BenchmarkSolverShard

# The event-core benchmarks: steady-state arena churn (the 0 allocs/op
# contract) and the instrumented-vs-detached endurance loop.
EVENTCHURNBENCH := BenchmarkEventChurn
EVENTSCALEBENCH := BenchmarkScaleInstrumented

all: check

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race ./internal/...
	go test -race -tags flowref ./internal/flow/ ./internal/fabric/ ./internal/telemetry/

check: vet build test race
	go run ./cmd/topocheck -degrade -1 -seed 42

# bench regenerates every figure/ablation benchmark once and records the
# machine-readable baseline as BENCH_<date>.json (committed per PR so
# hot-path regressions show up as diffs).
bench:
	go test -run xxx -bench . -benchtime 1x . | go run ./cmd/benchjson -out BENCH_$(DATE).json
	@echo "baseline written to BENCH_$(DATE).json"

# bench-check reruns the benchmarks once and compares ns/op plus the
# "/s" throughput metrics against the newest committed baseline, warning
# (not failing) on >10% regressions.
bench-check:
	go test -run xxx -bench . -benchtime 1x . | go run ./cmd/benchjson -baseline $(BASELINE) > /dev/null

# bench-solver reruns only the flow-solver churn microbench with enough
# iterations for stable flows/s numbers — the 1x figures from bench are
# too noisy to compare solvers on. Use this when touching internal/flow.
bench-solver:
	go test -run xxx -bench BenchmarkSolverChurn -benchtime 100x .

# bench-sweep records the sweep-engine baseline: parallel-runner cells/s
# at -j1 vs -j8 and table builds/s cold vs cached, with enough iterations
# for stable throughput numbers. Committed as BENCH_sweep_<date>.json.
# NOTE: the j=8/j=1 speedup scales with host cores; on a 1-CPU runner the
# two are equal, so compare speedups only across same-shaped machines.
bench-sweep:
	go test -run xxx -bench '$(SWEEPBENCH)' -benchtime 5x . \
		| go run ./cmd/benchjson -filter 'SweepParallel|TablesBuild' -out BENCH_sweep_$(DATE).json
	@echo "sweep baseline written to BENCH_sweep_$(DATE).json"

# bench-sweep-check reruns the sweep-engine benchmarks and compares their
# "/s" throughput metrics against the newest committed sweep baseline
# (warn-only, like bench-check).
bench-sweep-check:
	go test -run xxx -bench '$(SWEEPBENCH)' -benchtime 5x . \
		| go run ./cmd/benchjson -filter 'SweepParallel|TablesBuild' -baseline $(SWEEPBASELINE) > /dev/null

# bench-degraded records the degraded-sweep baseline: table builds/s for
# the fault-tolerant engines walking failure-chain prefixes, cold vs
# through the TableCache. Committed as BENCH_degraded_<date>.json.
bench-degraded:
	go test -run xxx -bench '$(DEGBENCH)' -benchtime 5x . \
		| go run ./cmd/benchjson -filter 'DegradedTables' -out BENCH_degraded_$(DATE).json
	@echo "degraded baseline written to BENCH_degraded_$(DATE).json"

# bench-degraded-check reruns the degraded-variant benchmark and compares
# its builds/s metrics against the newest committed degraded baseline
# (warn-only, like bench-check).
bench-degraded-check:
	go test -run xxx -bench '$(DEGBENCH)' -benchtime 5x . \
		| go run ./cmd/benchjson -filter 'DegradedTables' -baseline $(DEGBASELINE) > /dev/null

# bench-telemetry records the telemetry-export baseline: per-message cost
# of the streaming sink pipeline vs the legacy retained mode, with alloc
# counts (-benchmem) so the per-message B/op is part of the baseline. The
# retained-recs metric must stay 0 for the streaming modes at every run
# length — that is the O(1)-memory contract. Committed as
# BENCH_telemetry_<date>.json.
bench-telemetry:
	go test -run xxx -bench '$(TELBENCH)' -benchtime 20x -benchmem . \
		| go run ./cmd/benchjson -filter 'ExportStreaming' -out BENCH_telemetry_$(DATE).json
	@echo "telemetry baseline written to BENCH_telemetry_$(DATE).json"

# bench-telemetry-check reruns the export benchmark and compares ns/op,
# B/op and msgs/s against the newest committed telemetry baseline
# (warn-only, like bench-check).
bench-telemetry-check:
	go test -run xxx -bench '$(TELBENCH)' -benchtime 20x -benchmem . \
		| go run ./cmd/benchjson -filter 'ExportStreaming' -baseline $(TELBASELINE) > /dev/null

# bench-scale records the flow-core scale baseline: allocs/op + B/op of
# flow lifecycle churn at 1k/10k/100k resident flows, and msgs/s of the
# windowed endurance loop, with heap/GC/peak-RSS metrics folded in via
# internal/prof. Committed as BENCH_scale_<date>.json.
bench-scale:
	go test -run xxx -bench '$(SCALEBENCH)' -benchtime 50x -benchmem . \
		| go run ./cmd/benchjson -filter 'FlowChurn|ScaleRun' -out BENCH_scale_$(DATE).json
	@echo "scale baseline written to BENCH_scale_$(DATE).json"

# bench-scale-check reruns the flow-core scale benchmarks and compares
# flows/s, msgs/s, B/op and peak-rss-B against the newest committed scale
# baseline (warn-only, like bench-check).
bench-scale-check:
	go test -run xxx -bench '$(SCALEBENCH)' -benchtime 50x -benchmem . \
		| go run ./cmd/benchjson -filter 'FlowChurn|ScaleRun' -baseline $(SCALEBASELINE) > /dev/null

# bench-shard records the sharded-solver baseline: component re-solve
# flows/s at -solver-j 1/2/4/8 on the 100k-flow churn workload, for the
# multi-component "local" shape (what sharding parallelizes) and the
# one-spanning-component "uniform" degenerate case (which must read flat
# at every j). Committed as BENCH_shard_<date>.json.
# NOTE: like bench-sweep, the j>1 speedup scales with host cores; on a
# 1-CPU runner every j reads ~1x by construction, so compare speedups only
# across same-shaped machines.
bench-shard:
	go test -run xxx -bench '$(SHARDBENCH)' -benchtime 20x . \
		| go run ./cmd/benchjson -filter 'SolverShard' -out BENCH_shard_$(DATE).json
	@echo "shard baseline written to BENCH_shard_$(DATE).json"

# bench-shard-check reruns the sharded-solver benchmark and compares its
# flows/s metrics against the newest committed shard baseline (warn-only,
# like bench-check).
bench-shard-check:
	go test -run xxx -bench '$(SHARDBENCH)' -benchtime 20x . \
		| go run ./cmd/benchjson -filter 'SolverShard' -baseline $(SHARDBASELINE) > /dev/null

# bench-events records the event-core baseline: steady-state event churn
# (the allocs/op column MUST read 0 — the generation-tagged arena contract)
# plus the windowed endurance loop with the full observability stack
# attached vs detached (the instrumented msgs/s must stay within 15% of
# detached, DESIGN.md §13). The two benches need different iteration
# counts (one is a microbench, one a full run), so they run as two
# invocations feeding one benchjson document. Committed as
# BENCH_events_<date>.json.
bench-events:
	( go test -run xxx -bench '$(EVENTCHURNBENCH)' -benchtime 200000x -benchmem . ; \
	  go test -run xxx -bench '$(EVENTSCALEBENCH)' -benchtime 10x -benchmem . ) \
		| go run ./cmd/benchjson -filter 'EventChurn|ScaleInstrumented' -out BENCH_events_$(DATE).json
	@echo "event-core baseline written to BENCH_events_$(DATE).json"

# bench-events-check reruns the event-core benchmarks and compares ns/op,
# B/op, allocs/op and the msgs/s / events/s throughputs against the newest
# committed events baseline (warn-only, like bench-check).
bench-events-check:
	( go test -run xxx -bench '$(EVENTCHURNBENCH)' -benchtime 200000x -benchmem . ; \
	  go test -run xxx -bench '$(EVENTSCALEBENCH)' -benchtime 10x -benchmem . ) \
		| go run ./cmd/benchjson -filter 'EventChurn|ScaleInstrumented' -baseline $(EVENTSBASELINE) > /dev/null
