# Developer entry points; CI runs the same commands (.github/workflows/ci.yml).

DATE := $(shell date +%F)

.PHONY: all build test race vet check bench bench-check bench-solver

# BASELINE is the committed bench document bench-check compares against;
# override with `make bench-check BASELINE=BENCH_....json`.
BASELINE := $(lastword $(sort $(wildcard BENCH_*.json)))

all: check

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race ./internal/...
	go test -race -tags flowref ./internal/flow/ ./internal/fabric/ ./internal/telemetry/

check: vet build test race
	go run ./cmd/topocheck -degrade -1 -seed 42

# bench regenerates every figure/ablation benchmark once and records the
# machine-readable baseline as BENCH_<date>.json (committed per PR so
# hot-path regressions show up as diffs).
bench:
	go test -run xxx -bench . -benchtime 1x . | go run ./cmd/benchjson -out BENCH_$(DATE).json
	@echo "baseline written to BENCH_$(DATE).json"

# bench-check reruns the benchmarks once and compares ns/op plus the
# "/s" throughput metrics against the newest committed baseline, warning
# (not failing) on >10% regressions.
bench-check:
	go test -run xxx -bench . -benchtime 1x . | go run ./cmd/benchjson -baseline $(BASELINE) > /dev/null

# bench-solver reruns only the flow-solver churn microbench with enough
# iterations for stable flows/s numbers — the 1x figures from bench are
# too noisy to compare solvers on. Use this when touching internal/flow.
bench-solver:
	go test -run xxx -bench BenchmarkSolverChurn -benchtime 100x .
