// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON document, so benchmark baselines can be committed and
// diffed across PRs. Custom b.ReportMetric units are kept alongside
// ns/op, B/op and allocs/op in each benchmark's metric map.
//
// Usage:
//
//	go test -run xxx -bench . -benchtime 1x . | benchjson -out BENCH_$(date +%F).json
//
// With -baseline it additionally compares the run's ns/op against a
// previously committed document and warns on hot-path regressions beyond
// -warn percent. The comparison is advisory (exit status stays 0):
// single-iteration benchmarks are too noisy to gate a merge on, but the
// warning in the CI log flags what to re-measure properly.
//
//	go test -run xxx -bench . -benchtime 1x . | benchjson -baseline BENCH_2026-08-06.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark result line.
type Entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the exported document: the run's environment header plus every
// benchmark line, in input order.
type Doc struct {
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	Pkg        string  `json:"pkg,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "committed BENCH_*.json to compare ns/op against (warn-only)")
	warnPct := flag.Float64("warn", 10, "with -baseline: regression percentage that triggers a warning")
	filter := flag.String("filter", "", "regexp over benchmark names; non-matches are dropped from the document and the baseline comparison")
	flag.Parse()

	var keep *regexp.Regexp
	if *filter != "" {
		re, err := regexp.Compile(*filter)
		if err != nil {
			fatal(fmt.Errorf("bad -filter: %w", err))
		}
		keep = re
	}

	doc := Doc{Benchmarks: []Entry{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		// Echo the input so the command can sit mid-pipeline.
		fmt.Fprintln(os.Stderr, line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if e, ok := parseBench(line); ok && (keep == nil || keep.MatchString(e.Name)) {
				doc.Benchmarks = append(doc.Benchmarks, e)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}

	if *baseline != "" {
		compareBaseline(doc, *baseline, *warnPct, keep)
	}
}

// compareBaseline diffs ns/op (lower is better) and every "/s"-suffixed
// throughput metric (higher is better, e.g. the solver bench's flows/s)
// per benchmark name against a committed document and prints the movers
// to stderr. Regressions past warnPct get a WARNING prefix; benchmarks
// present on only one side are listed so a renamed hot path doesn't
// silently drop out of the comparison.
func compareBaseline(cur Doc, path string, warnPct float64, keep *regexp.Regexp) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var base Doc
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("parsing baseline %s: %w", path, err))
	}
	baseMet := make(map[string]map[string]float64, len(base.Benchmarks))
	for _, e := range base.Benchmarks {
		// The -filter narrows the baseline too, so a partial run doesn't
		// report every out-of-scope benchmark as "missing".
		if keep == nil || keep.MatchString(e.Name) {
			baseMet[e.Name] = e.Metrics
		}
	}
	fmt.Fprintf(os.Stderr, "\nbenchjson: comparing against %s (warn at %.0f%%)\n", path, warnPct)
	var regressions int
	for _, e := range cur.Benchmarks {
		bm, ok := baseMet[e.Name]
		delete(baseMet, e.Name)
		if !ok {
			if v, has := e.Metrics["ns/op"]; has {
				fmt.Fprintf(os.Stderr, "  new       %-50s %14.0f ns/op (no baseline)\n", e.Name, v)
			}
			continue
		}
		for _, unit := range compareUnits(e.Metrics) {
			v, b := e.Metrics[unit], bm[unit]
			if b <= 0 {
				continue
			}
			// For time-per-op an increase regresses; for throughput a
			// decrease does. Normalize so positive pct always means worse.
			pct := 100 * (v/b - 1)
			if strings.HasSuffix(unit, "/s") {
				pct = -pct
			}
			switch {
			case pct > warnPct:
				regressions++
				fmt.Fprintf(os.Stderr, "  WARNING   %-50s %14.1f %s, %.1f%% worse than baseline %.1f\n",
					e.Name, v, unit, pct, b)
			default:
				fmt.Fprintf(os.Stderr, "  ok        %-50s %14.1f %s, %+.1f%% vs baseline\n",
					e.Name, v, unit, -pct)
			}
		}
	}
	for name, bm := range baseMet {
		if b, ok := bm["ns/op"]; ok {
			fmt.Fprintf(os.Stderr, "  missing   %-50s baseline %14.0f ns/op, absent from this run\n", name, b)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed past +%.0f%% — re-measure with a longer -benchtime before trusting this\n",
			regressions, warnPct)
	}
}

// compareUnits lists the comparable metrics of one entry: ns/op, B/op and
// allocs/op (all lower-is-better) plus any throughput ("/s") metrics, in a
// deterministic order.
func compareUnits(m map[string]float64) []string {
	units := make([]string, 0, 4)
	if _, ok := m["ns/op"]; ok {
		units = append(units, "ns/op")
	}
	if _, ok := m["B/op"]; ok {
		units = append(units, "B/op")
	}
	if _, ok := m["allocs/op"]; ok {
		units = append(units, "allocs/op")
	}
	var th []string
	for u := range m {
		if strings.HasSuffix(u, "/s") {
			th = append(th, u)
		}
	}
	sort.Strings(th)
	return append(units, th...)
}

// parseBench decodes one result line: name, iteration count, then
// value/unit pairs ("13827812 ns/op 5.0 %PARX-recovery").
func parseBench(line string) (Entry, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		e.Metrics[f[i+1]] = v
	}
	return e, len(e.Metrics) > 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
