// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON document, so benchmark baselines can be committed and
// diffed across PRs. Custom b.ReportMetric units are kept alongside
// ns/op, B/op and allocs/op in each benchmark's metric map.
//
// Usage:
//
//	go test -run xxx -bench . -benchtime 1x . | benchjson -out BENCH_$(date +%F).json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark result line.
type Entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the exported document: the run's environment header plus every
// benchmark line, in input order.
type Doc struct {
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	Pkg        string  `json:"pkg,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	doc := Doc{Benchmarks: []Entry{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		// Echo the input so the command can sit mid-pipeline.
		fmt.Fprintln(os.Stderr, line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if e, ok := parseBench(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, e)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
}

// parseBench decodes one result line: name, iteration count, then
// value/unit pairs ("13827812 ns/op 5.0 %PARX-recovery").
func parseBench(line string) (Entry, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		e.Metrics[f[i+1]] = v
	}
	return e, len(e.Metrics) > 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
