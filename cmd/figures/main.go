// Command figures regenerates the paper's tables and figures on the
// simulated planes.
//
// Examples:
//
//	figures -fig 1                  # mpiGraph heatmaps (Fig. 1)
//	figures -table 1                # PARX LID-selection matrices
//	figures -fig 4 -coll alltoall   # one IMB gain grid
//	figures -fig 6 -app MILC        # one proxy-app panel
//	figures -fig 7 -window 180      # the 3 h capacity study
//	figures -fig all -small         # everything, CI-sized
//
// Full-scale regeneration (672 nodes, all sizes, 10 trials) reproduces the
// paper's layout but takes hours; -small, -nodes, -trials and -sizes trim
// it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/hpcsim/t2hx/internal/figures"
	"github.com/hpcsim/t2hx/internal/prof"
	"github.com/hpcsim/t2hx/internal/sim"
	"github.com/hpcsim/t2hx/internal/workloads"
)

// profSession is finalized by fatal() so error exits still flush the CPU
// profile instead of truncating it.
var profSession *prof.Session

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 1, 4, 5a, 5b, 5c, 6, 7, counters, planes, degraded, all")
	table := flag.Int("table", 0, "table to regenerate: 1")
	coll := flag.String("coll", "", "Fig. 4 collective (default: all six)")
	app := flag.String("app", "", "Fig. 6 app abbreviation (default: all twelve)")
	nodes := flag.Int("nodes", 0, "cap the node ladders (default 672, or 32 with -small)")
	trials := flag.Int("trials", 3, "trials per cell (paper: 10)")
	small := flag.Bool("small", false, "use 32-node test planes")
	seed := flag.Uint64("seed", 1, "master seed")
	sizes := flag.String("sizes", "", "comma-separated message sizes (Fig. 4/5a)")
	parxDemands := flag.Bool("parx-demands", false, "re-route PARX per workload profile (Sec. 4.4.3; slow at full scale)")
	window := flag.Float64("window", 0, "Fig. 7 window in minutes (default 180, or 2 with -small)")
	ebbSamples := flag.Int("ebb-samples", 0, "Fig. 5c bisection samples (default 1000, or 50 with -small)")
	csvDir := flag.String("csv", "", "also write each figure's data series as CSV into this directory")
	noDegrade := flag.Bool("no-degrade", false, "build ideal fabrics without the paper's missing cables")
	jobs := flag.Int("j", 0, "measurement workers for the grid/whisker figures (default GOMAXPROCS; output is identical at any -j)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	pprofHTTP := flag.String("pprof-http", "", "serve net/http/pprof on this address (e.g. localhost:6060) for live inspection")
	flag.Parse()

	var err error
	profSession, err = prof.Start(prof.Options{
		CPUProfile: *cpuprofile, MemProfile: *memprofile, HTTPAddr: *pprofHTTP,
	})
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := profSession.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
		}
	}()
	if *pprofHTTP != "" {
		fmt.Fprintf(os.Stderr, "pprof serving on http://%s/debug/pprof/\n", profSession.Addr())
	}

	p := figures.Params{
		Out: os.Stdout, MaxNodes: *nodes, Trials: *trials, Small: *small,
		Seed: *seed, Degrade: !*noDegrade, PARXDemands: *parxDemands,
		Workers: *jobs,
	}
	if *window > 0 {
		p.CapacityWindow = sim.Duration(*window) * sim.Minute
	}
	p.EBBSamples = *ebbSamples
	p.CSVDir = *csvDir
	if *sizes != "" {
		for _, part := range strings.Split(*sizes, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				fatal(err)
			}
			p.Sizes = append(p.Sizes, v)
		}
	}
	s := figures.NewSession(p)

	if *table == 1 {
		check(s.Table1())
		if *fig == "" {
			return
		}
	}
	var run func(string)
	run = func(name string) {
		switch name {
		case "1":
			check(s.Fig1())
		case "4":
			ops := []string{"bcast", "gather", "scatter", "reduce", "allreduce", "alltoall"}
			if *coll != "" {
				ops = []string{*coll}
			}
			for _, op := range ops {
				check(s.Fig4(op))
			}
		case "5a":
			check(s.Fig5a())
		case "5b":
			check(s.Fig5b())
		case "5c":
			check(s.Fig5c())
		case "6":
			apps := []string{}
			if *app != "" {
				apps = []string{*app}
			} else {
				for _, a := range workloads.Registry() {
					apps = append(apps, a.Abbrev)
				}
			}
			for _, a := range apps {
				check(s.Fig6(a))
			}
		case "7":
			check(s.Fig7())
		case "counters":
			check(s.FigCounters(*coll))
		case "planes":
			check(s.FigPlanes())
		case "degraded":
			check(s.FigDegraded())
		case "all":
			check(s.Table1())
			for _, f := range []string{"1", "4", "5a", "5b", "5c", "6", "7", "counters", "planes", "degraded"} {
				run(f)
			}
		default:
			fatal(fmt.Errorf("unknown figure %q", name))
		}
	}
	if *fig == "" && *table == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *fig != "" {
		run(*fig)
	}
}

func check(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	if perr := profSession.Stop(); perr != nil {
		fmt.Fprintln(os.Stderr, "figures:", perr)
	}
	os.Exit(1)
}
